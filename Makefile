# Convenience targets; everything is plain `go` underneath.

.PHONY: all build lint lint-json lint-sarif test short bench bench-json bench-repair bench-incremental bench-distance bench-check alloc-smoke experiments fuzz cover examples serve

all: build lint test

build:
	go build ./...

lint:
	go vet ./...
	go run ./cmd/repairlint -baseline=.repairlint.baseline ./...
	@unformatted=$$(gofmt -l .); if [ -n "$$unformatted" ]; then \
		echo "gofmt needed on:"; echo "$$unformatted"; exit 1; fi

# Machine-readable findings (all of them, suppressed included) on stdout.
lint-json:
	go run ./cmd/repairlint -format=json -baseline=.repairlint.baseline ./...

# SARIF 2.1.0 log of the active findings, for CI annotation/upload.
lint-sarif:
	go run ./cmd/repairlint -format=sarif -baseline=.repairlint.baseline ./... > repairlint.sarif || true
	@echo wrote repairlint.sarif

test:
	go test ./...

short:
	go test -short ./...

bench:
	go test -bench=. -benchmem ./...

# Runs the vgraph/detect construction-phase benchmark family and writes
# BENCH_vgraph.json (ns/op, edges/s, cache hit rate, speedups), then the
# repair-phase family into BENCH_repair.json.
bench-json:
	go run ./cmd/repairbench -exp graphbench -benchout BENCH_vgraph.json
	$(MAKE) bench-repair

# Runs the repair-phase benchmark family (greedy growth naive vs heap,
# exact branch-and-bound combination throughput, plan evaluation) and
# writes BENCH_repair.json.
bench-repair:
	go run ./cmd/repairbench -exp repairbench -benchout BENCH_repair.json

# Replays a timed ingest stream against the sharded incremental engine and
# against monolithic per-batch recomputation, and writes
# BENCH_incremental.json (per-batch latency, shard telemetry, ratios).
bench-incremental:
	go run ./cmd/repairbench -exp incrbench -benchout BENCH_incremental.json

# Times the string-distance hot paths (bit-parallel kernels vs the retained
# DPs, one-vs-many Matcher streams, distance-plane vs map cache hits) and
# writes BENCH_strsim.json.
bench-distance:
	go run ./cmd/repairbench -exp distbench -benchout BENCH_strsim.json

# Re-measures the committed BENCH_*.json benchmark families into fresh files
# and fails when any shared entry regressed by more than 25% ns/op.
bench-check:
	go run ./cmd/repairbench -exp graphbench -benchout BENCH_vgraph.ci.json
	go run ./cmd/repairbench -exp distbench -benchout BENCH_strsim.ci.json
	go run ./cmd/benchcheck -threshold 1.25 \
		BENCH_vgraph.json=BENCH_vgraph.ci.json \
		BENCH_strsim.json=BENCH_strsim.ci.json

# Alloc-regression smoke: the gate test asserts steady-state greedy rounds
# perform zero heap allocations (pooled grower + caller-owned buffer), and
# the one-iteration -benchmem runs surface the allocs/op of the other hot
# paths for eyeballing in CI logs.
alloc-smoke:
	go test -run 'TestGreedyGrowthSteadyStateAllocs' ./internal/repair/
	go test -run '^$$' -bench 'BenchmarkGreedyGrowth' -benchtime=1x -benchmem ./internal/repair/
	go test -run '^$$' -bench 'BenchmarkGraphBuildWorkers' -benchtime=1x -benchmem .

experiments:
	go run ./cmd/repairbench -exp all -scale 0.2

serve:
	go run ./cmd/repaird -addr :8080

fuzz:
	go test -fuzz=FuzzLevenshteinBounded -fuzztime=30s ./internal/strsim/
	go test -fuzz=FuzzOSABounded -fuzztime=30s ./internal/strsim/
	go test -fuzz=FuzzReadCSV -fuzztime=30s ./internal/dataset/

cover:
	go test -cover ./internal/... .

examples:
	go run ./examples/quickstart
	go run ./examples/threshold
	go run ./examples/hospital -n 1000
	go run ./examples/tax -n 1000
	go run ./examples/discovery -n 1000
	go run ./examples/streaming -base 800 -stream 200
	go run ./examples/masterdata -n 800
	go run ./examples/denial -n 500
