// Command benchcheck compares committed benchmark JSON against freshly
// measured files and fails when a shared entry's ns/op regressed beyond the
// threshold. It reads the common shape of every BENCH_*.json this repo
// emits — a top-level "entries" array of {name, nsPerOp} objects — so one
// tool gates the vgraph, repair, incremental, and strsim families alike.
//
// Usage:
//
//	benchcheck [-threshold 1.25] committed.json=fresh.json ...
//
// Entries present in only one file are reported but never fail the check
// (benchmark families grow; renaming an entry should not break CI), and
// entries faster than 100ns/op are skipped — at that scale timer noise and
// cache effects dwarf real regressions.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"
)

type benchDoc struct {
	Entries []struct {
		Name    string  `json:"name"`
		NsPerOp float64 `json:"nsPerOp"`
	} `json:"entries"`
}

// minNsPerOp is the floor below which entries are too fast to compare
// reliably in shared CI runners.
const minNsPerOp = 100.0

func load(path string) (map[string]float64, error) {
	buf, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var doc benchDoc
	if err := json.Unmarshal(buf, &doc); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	out := make(map[string]float64, len(doc.Entries))
	for _, e := range doc.Entries {
		out[e.Name] = e.NsPerOp
	}
	return out, nil
}

func main() {
	threshold := flag.Float64("threshold", 1.25, "fail when fresh ns/op exceeds committed ns/op by this ratio")
	flag.Parse()
	if flag.NArg() == 0 {
		fmt.Fprintln(os.Stderr, "usage: benchcheck [-threshold 1.25] committed.json=fresh.json ...")
		os.Exit(2)
	}
	limit := *threshold
	failed := false
	for _, pair := range flag.Args() {
		committedPath, freshPath, ok := strings.Cut(pair, "=")
		if !ok {
			fmt.Fprintf(os.Stderr, "benchcheck: argument %q is not committed.json=fresh.json\n", pair)
			os.Exit(2)
		}
		committed, err := load(committedPath)
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchcheck: %v\n", err)
			os.Exit(2)
		}
		fresh, err := load(freshPath)
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchcheck: %v\n", err)
			os.Exit(2)
		}
		fmt.Printf("%s vs %s:\n", committedPath, freshPath)
		for _, e := range sortedKeys(committed) {
			base := committed[e]
			now, shared := fresh[e]
			switch {
			case !shared:
				fmt.Printf("  %-28s only in committed file (skipped)\n", e)
			case base < minNsPerOp || now < minNsPerOp:
				fmt.Printf("  %-28s %12.0f -> %12.0f ns/op (below %v ns floor, skipped)\n", e, base, now, minNsPerOp)
			case now > base*limit:
				fmt.Printf("  %-28s %12.0f -> %12.0f ns/op  REGRESSED %.2fx (limit %.2fx)\n",
					e, base, now, now/base, limit)
				failed = true
			default:
				fmt.Printf("  %-28s %12.0f -> %12.0f ns/op  ok (%.2fx)\n", e, base, now, now/base)
			}
		}
		for _, e := range sortedKeys(fresh) {
			if _, shared := committed[e]; !shared {
				fmt.Printf("  %-28s only in fresh file (skipped)\n", e)
			}
		}
	}
	if failed {
		fmt.Println("benchcheck: FAIL")
		os.Exit(1)
	}
	fmt.Println("benchcheck: ok")
}

func sortedKeys(m map[string]float64) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		//lint:ignore mapiter the collected keys are insertion-sorted below, so map order never reaches the output
		out = append(out, k)
	}
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j] < out[j-1]; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}
