// Command ftrepair repairs a CSV file against a set of functional
// dependencies using the fault-tolerant cost-based model.
//
// Usage:
//
//	ftrepair -in dirty.csv -fd "City -> State" -fd "City,Street -> District" -out clean.csv
//	ftrepair -in dirty.csv -fd "City -> State" -detect
//	ftrepair -in dirty.csv -discover
//
// Flags select the algorithm (-algo exacts|greedys|exactm|approm|greedym),
// the distance weights (-wl/-wr) and the FT-violation threshold: -tau sets
// a fixed value for every FD, -auto-tau derives one per FD with the paper's
// sudden-gap heuristic. -report prints a full audit trail on stderr. The
// implementation lives in internal/cli.
package main

import (
	"os"

	"ftrepair/internal/cli"
)

func main() {
	os.Exit(cli.Main(os.Args[1:], os.Stdin, os.Stdout, os.Stderr))
}
