// Command genworkload materializes the benchmark workloads as CSV files so
// the experiments can be reproduced from any tool: the clean relation, the
// dirtied copy (§6.1 noise model), the ground-truth ledger of injected
// errors, and the constraint set as -fd specs for the ftrepair command.
//
//	genworkload -workload hosp -n 2000 -rate 0.04 -dir out/
//	ftrepair -in out/dirty.csv $(sed 's/^/-fd /' out/fds.txt) -out repaired.csv
//
// Streaming mode (-stream) materializes a timed ingest workload for the
// repaird session API instead: base.csv (the relation a session starts
// from), stream.jsonl (one JSON batch per line with an arrival offset), and
// fds.txt. The same generation pass produces base and stream, so streamed
// errors can repair toward the standing patterns.
//
//	genworkload -workload hosp -stream -n 2000 -batches 20 -batchsize 100 -interval 250 -dir out/
package main

import (
	"encoding/csv"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"strings"

	"ftrepair/internal/dataset"
	"ftrepair/internal/fd"
	"ftrepair/internal/gen"
)

func main() {
	var (
		workload  = flag.String("workload", "hosp", "workload: hosp, tax, citizens")
		n         = flag.Int("n", 2000, "number of tuples (ignored for citizens); in stream mode, the base relation size")
		rate      = flag.Float64("rate", 0.04, "error rate (ignored for citizens, which carries the paper's 8 errors)")
		seed      = flag.Int64("seed", 1, "RNG seed")
		dir       = flag.String("dir", ".", "output directory")
		stream    = flag.Bool("stream", false, "emit a timed ingest workload (base.csv + stream.jsonl) instead of a batch one")
		batches   = flag.Int("batches", 20, "stream mode: number of arrival batches")
		batchSize = flag.Int("batchsize", 100, "stream mode: rows per arrival batch")
		interval  = flag.Int("interval", 250, "stream mode: milliseconds between arrivals")
		nfds      = flag.Int("fds", 0, "stream mode: limit to the workload's first N FDs (0 = all)")
	)
	flag.Parse()
	var err error
	if *stream {
		err = runStream(gen.StreamConfig{
			Workload: *workload, Base: *n, Batches: *batches, BatchSize: *batchSize,
			FDs: *nfds, Rate: *rate, Seed: *seed, IntervalMs: *interval,
		}, *dir)
	} else {
		err = run(*workload, *n, *rate, *seed, *dir)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "genworkload:", err)
		os.Exit(1)
	}
}

// runStream writes the streaming-ingest triple: base.csv, stream.jsonl
// (one StreamBatch per line), fds.txt.
func runStream(cfg gen.StreamConfig, dir string) error {
	base, stream, fds, err := gen.Stream(cfg)
	if err != nil {
		return err
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	bf, err := os.Create(filepath.Join(dir, "base.csv"))
	if err != nil {
		return err
	}
	defer bf.Close()
	if err := dataset.WriteCSV(bf, base); err != nil {
		return err
	}
	sf, err := os.Create(filepath.Join(dir, "stream.jsonl"))
	if err != nil {
		return err
	}
	defer sf.Close()
	enc := json.NewEncoder(sf)
	for _, b := range stream {
		if err := enc.Encode(b); err != nil {
			return err
		}
	}
	if err := writeFDSpecs(filepath.Join(dir, "fds.txt"), fds); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "%s: wrote base.csv (%d tuples), stream.jsonl (%d batches × %d rows), fds.txt to %s\n",
		cfg.Workload, base.Len(), len(stream), cfg.BatchSize, dir)
	return nil
}

func run(workload string, n int, rate float64, seed int64, dir string) error {
	var clean, dirty *dataset.Relation
	var fds []*fd.FD
	var injections []gen.Injection
	kindOf := func(inj gen.Injection) string { return inj.Kind.String() }
	switch strings.ToLower(workload) {
	case "hosp":
		clean = gen.HOSP{Seed: seed}.Generate(n)
		fds = gen.HOSPFDs(clean.Schema)
		dirty, injections = gen.Inject(clean, fds, rate, seed+1)
	case "tax":
		clean = gen.Tax{Seed: seed}.Generate(n)
		fds = gen.TaxFDs(clean.Schema)
		dirty, injections = gen.Inject(clean, fds, rate, seed+1)
	case "citizens":
		dirty, clean = gen.Citizens()
		fds = gen.CitizensFDs(clean.Schema)
		diff, err := dataset.Diff(clean, dirty)
		if err != nil {
			return err
		}
		for _, c := range diff {
			injections = append(injections, gen.Injection{Cell: c, Clean: clean.Get(c), Dirty: dirty.Get(c)})
		}
		// The paper's seeded errors carry no kind label.
		kindOf = func(gen.Injection) string { return "seeded" }
	default:
		return fmt.Errorf("unknown workload %q (hosp, tax, citizens)", workload)
	}

	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	writeRel := func(name string, rel *dataset.Relation) error {
		f, err := os.Create(filepath.Join(dir, name))
		if err != nil {
			return err
		}
		defer f.Close()
		return dataset.WriteCSV(f, rel)
	}
	if err := writeRel("clean.csv", clean); err != nil {
		return err
	}
	if err := writeRel("dirty.csv", dirty); err != nil {
		return err
	}

	// Ground-truth ledger.
	tf, err := os.Create(filepath.Join(dir, "truth.csv"))
	if err != nil {
		return err
	}
	defer tf.Close()
	tw := csv.NewWriter(tf)
	if err := tw.Write([]string{"row", "attribute", "clean", "dirty", "kind"}); err != nil {
		return err
	}
	for _, inj := range injections {
		if err := tw.Write([]string{
			strconv.Itoa(inj.Cell.Row + 1),
			clean.Schema.Attr(inj.Cell.Col).Name,
			inj.Clean, inj.Dirty, kindOf(inj),
		}); err != nil {
			return err
		}
	}
	tw.Flush()
	if err := tw.Error(); err != nil {
		return err
	}

	if err := writeFDSpecs(filepath.Join(dir, "fds.txt"), fds); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "%s: wrote clean.csv (%d tuples), dirty.csv (%d errors), truth.csv, fds.txt to %s\n",
		workload, clean.Len(), len(injections), dir)
	return nil
}

// writeFDSpecs writes constraint specs, one per line, usable as -fd
// arguments.
func writeFDSpecs(path string, fds []*fd.FD) error {
	ff, err := os.Create(path)
	if err != nil {
		return err
	}
	defer ff.Close()
	for _, f := range fds {
		spec := f.String()
		if i := strings.Index(spec, ": "); i >= 0 {
			spec = spec[i+2:]
		}
		spec = strings.NewReplacer("[", "", "]", "").Replace(spec)
		if _, err := fmt.Fprintln(ff, spec); err != nil {
			return err
		}
	}
	return nil
}
