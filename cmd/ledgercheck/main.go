// Command ledgercheck verifies a repair ledger dump offline. It reads the
// JSONL format written by `ftrepair -ledger` or GET
// /v1/jobs/{id}/ledger?format=jsonl, recomputes every event hash, every
// batch Merkle root, and the chained run root from scratch, and exits
// non-zero if anything — a flipped byte, a dropped event, a reordered
// batch — fails to reproduce the recorded hashes.
//
// Usage:
//
//	ledgercheck ledger.jsonl        # verify a file
//	ledgercheck -                   # verify stdin (curl ... | ledgercheck -)
//
// On success it prints the run root and event/batch counts so CI logs pin
// the verified root next to the job that produced it.
package main

import (
	"fmt"
	"io"
	"os"

	"ftrepair/internal/ledger"
)

func main() {
	if err := run(os.Args[1:], os.Stdin, os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "ledgercheck:", err)
		os.Exit(1)
	}
}

func run(args []string, stdin io.Reader, stdout io.Writer) error {
	if len(args) != 1 {
		return fmt.Errorf("usage: ledgercheck <ledger.jsonl | ->")
	}
	in := stdin
	name := "stdin"
	if args[0] != "-" {
		f, err := os.Open(args[0])
		if err != nil {
			return err
		}
		defer f.Close()
		in = f
		name = args[0]
	}
	dump, err := ledger.ReadJSONL(in)
	if err != nil {
		return fmt.Errorf("reading %s: %w", name, err)
	}
	if err := dump.Verify(); err != nil {
		return fmt.Errorf("%s: %w", name, err)
	}
	fmt.Fprintf(stdout, "ok: %d events in %d batches, run root %s\n",
		len(dump.Events), len(dump.Batches), dump.RunRoot)
	return nil
}
