package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"ftrepair/internal/ledger"
)

func writeDump(t *testing.T, mutate func(string) string) string {
	t.Helper()
	l := ledger.New()
	l.Commit([]ledger.RepairEvent{
		{Row: 0, Col: 1, Attr: "State", Old: "NY", New: "MA", FD: "City -> State", Algorithm: "ExactS", CostDelta: 0.3},
		{Row: 2, Col: 0, Attr: "City", Old: "Boton", New: "Boston", FD: "City -> State", Algorithm: "ExactS", CostDelta: 0.1},
	})
	var buf bytes.Buffer
	if err := l.WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	text := buf.String()
	if mutate != nil {
		text = mutate(text)
	}
	path := filepath.Join(t.TempDir(), "ledger.jsonl")
	if err := os.WriteFile(path, []byte(text), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestLedgercheckAcceptsValidDump(t *testing.T) {
	path := writeDump(t, nil)
	var out strings.Builder
	if err := run([]string{path}, nil, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "ok: 2 events in 1 batches") {
		t.Fatalf("output: %s", out.String())
	}
}

func TestLedgercheckRejectsTamperedDump(t *testing.T) {
	path := writeDump(t, func(s string) string {
		return strings.Replace(s, `"Boston"`, `"Bostom"`, 1)
	})
	var out strings.Builder
	if err := run([]string{path}, nil, &out); err == nil {
		t.Fatal("tampered dump accepted")
	}
}

func TestLedgercheckReadsStdin(t *testing.T) {
	path := writeDump(t, nil)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var out strings.Builder
	if err := run([]string{"-"}, bytes.NewReader(data), &out); err != nil {
		t.Fatal(err)
	}
}

func TestLedgercheckUsage(t *testing.T) {
	if err := run(nil, nil, nil); err == nil {
		t.Fatal("missing argument accepted")
	}
}
