// Command repairbench regenerates every table and figure of the paper's
// evaluation (§6) as text tables or JSON: the effectiveness figures
// (Fig. 5-7), the efficiency figures with and without the target tree
// (Fig. 8-10), the comparison against the NADEEF/URM/Llunatic/Holistic
// baselines (Table 3 and Fig. 11-16), and the ablations DESIGN.md calls
// out (index, tree, grouping, weights, flavors, tau, detection, autotau).
//
// Usage:
//
//	repairbench -exp all -scale 0.2
//	repairbench -exp fig5 -workloads hosp
//	repairbench -exp table3 -scale 0.5 -format json
//
// -scale multiplies the paper's data sizes (HOSP 4k-20k tuples, Tax
// 2k-10k); the default 0.2 finishes every experiment in minutes on a
// laptop. Absolute numbers differ from the paper's testbed; the shapes —
// who wins, trends across sweeps, the effect of the tree index — are the
// reproduction target (see EXPERIMENTS.md).
package main

import (
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"

	"ftrepair/internal/experiments"
	"ftrepair/internal/obs"
)

func main() {
	var (
		exp       = flag.String("exp", "all", "experiment to run (all, fig5..fig16, table3, ablation, weights, flavors, tau, detection, autotau, graphbench, repairbench, incrbench)")
		scale     = flag.Float64("scale", 0.2, "fraction of the paper's data sizes")
		seed      = flag.Int64("seed", 7, "base RNG seed")
		workloads = flag.String("workloads", "hosp,tax", "comma-separated workloads (hosp, tax)")
		exact     = flag.Bool("exact", false, "include the exponential exact algorithms (small scales only)")
		format    = flag.String("format", "text", "output format: text or json")
		benchOut  = flag.String("benchout", "", "path for the graphbench/repairbench/incrbench JSON output (e.g. BENCH_vgraph.json, BENCH_repair.json, BENCH_incremental.json); empty disables the file")
		traceOut  = flag.String("trace", "", "write a Chrome trace-event JSON of every repair's phase spans to this path")
		metricsOn = flag.Bool("metrics", false, "dump the metrics registry (Prometheus text format) on stderr at the end")
	)
	flag.Parse()
	c := experiments.Config{Scale: *scale, Seed: *seed, Exact: *exact, JSON: *format == "json", BenchOut: *benchOut}
	var tr *obs.Trace
	if *traceOut != "" {
		tr = obs.NewTrace("repairbench " + *exp)
		tr.SetMeta(obs.CollectMeta(*workloads))
		c.Trace = tr
	}
	for _, w := range strings.Split(*workloads, ",") {
		if w = strings.TrimSpace(strings.ToLower(w)); w != "" {
			c.Workloads = append(c.Workloads, w)
		}
	}

	// The first SIGINT cancels in-flight repairs through the library hook;
	// the sweep stops at the next experiment boundary. A second SIGINT kills
	// the process the default way.
	cancel := make(chan struct{})
	sigCh := make(chan os.Signal, 1)
	signal.Notify(sigCh, os.Interrupt)
	go func() {
		<-sigCh
		fmt.Fprintln(os.Stderr, "repairbench: interrupt — canceling")
		signal.Stop(sigCh)
		close(cancel)
	}()
	c.Cancel = cancel

	// flush exports the trace and metrics on every exit path (os.Exit skips
	// defers), so even a canceled sweep leaves an inspectable trace behind.
	flush := func() {
		if tr != nil {
			tr.CloseOpen()
			if f, err := os.Create(*traceOut); err != nil {
				fmt.Fprintf(os.Stderr, "repairbench: trace: %v\n", err)
			} else {
				if err := tr.WriteChrome(f); err != nil {
					fmt.Fprintf(os.Stderr, "repairbench: trace: %v\n", err)
				}
				f.Close()
			}
		}
		if *metricsOn {
			_ = obs.Default().WritePrometheus(os.Stderr)
		}
	}

	names := experiments.Names()
	ran := false
	for _, name := range names {
		if *exp != "all" && *exp != name {
			continue
		}
		select {
		case <-cancel:
			fmt.Fprintln(os.Stderr, "repairbench: canceled")
			flush()
			os.Exit(130)
		default:
		}
		ran = true
		fmt.Printf("# %s — %s (scale %g)\n\n", name, experiments.Describe(name), c.Scale)
		if err := experiments.Run(name, c, os.Stdout); err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", name, err)
			flush()
			os.Exit(1)
		}
	}
	if !ran {
		fmt.Fprintf(os.Stderr, "unknown experiment %q; available: all %s\n", *exp, strings.Join(names, " "))
		os.Exit(2)
	}
	flush()
}
