// Command repaird serves the cost-based repair library over HTTP/JSON.
//
// Usage:
//
//	repaird [-addr :8080] [-workers N] [-queue N] [-quiet]
//
// Endpoints (see internal/server for the full surface):
//
//	POST   /v1/jobs                  submit a repair job
//	GET    /v1/jobs/{id}             poll status and result
//	DELETE /v1/jobs/{id}             cancel a queued or running job
//	POST   /v1/sessions              open a streaming repair session
//	POST   /v1/sessions/{id}/tuples  append tuples online
//	GET    /healthz, GET /v1/stats   operations
//	GET    /metrics                  Prometheus exposition (JSON: /v1/metrics)
//	GET    /debug/pprof/*            profiling (only with -pprof)
//
// SIGINT/SIGTERM trigger a graceful shutdown: intake stops, in-flight
// jobs get a drain window, then outstanding work is canceled through the
// repair cancellation hook.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"ftrepair/internal/server"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stderr))
}

func run(args []string, stderr io.Writer) int {
	fs := flag.NewFlagSet("repaird", flag.ContinueOnError)
	fs.SetOutput(stderr)
	addr := fs.String("addr", ":8080", "listen address")
	workers := fs.Int("workers", 0, "job worker pool size (0 = GOMAXPROCS)")
	queue := fs.Int("queue", 0, "job queue depth (0 = 256); full queue rejects with 503")
	drain := fs.Duration("drain", 10*time.Second, "graceful-shutdown drain window before canceling jobs")
	quiet := fs.Bool("quiet", false, "suppress request and lifecycle logs")
	pprofOn := fs.Bool("pprof", false, "mount /debug/pprof/ profiling endpoints")
	if err := fs.Parse(args); err != nil {
		return 2
	}

	var logger *slog.Logger
	if !*quiet {
		logger = slog.New(slog.NewTextHandler(stderr, nil))
	}
	srv := server.New(server.Config{
		Workers:     *workers,
		QueueDepth:  *queue,
		Logger:      logger,
		EnablePprof: *pprofOn,
	})
	httpSrv := &http.Server{Addr: *addr, Handler: srv.Handler()}

	errCh := make(chan error, 1)
	go func() {
		if logger != nil {
			logger.Info("listening", "addr", *addr, "pprof", *pprofOn)
		}
		errCh <- httpSrv.ListenAndServe()
	}()

	sigCh := make(chan os.Signal, 1)
	signal.Notify(sigCh, os.Interrupt, syscall.SIGTERM)

	select {
	case err := <-errCh:
		fmt.Fprintf(stderr, "repaird: serve: %v\n", err)
		return 1
	case sig := <-sigCh:
		if logger != nil {
			logger.Info("shutting down", "signal", sig.String())
		}
	}
	signal.Stop(sigCh)

	ctx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	if err := httpSrv.Shutdown(ctx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		fmt.Fprintf(stderr, "repaird: http shutdown: %v\n", err)
	}
	if err := srv.Shutdown(ctx); err != nil {
		fmt.Fprintf(stderr, "repaird: draining jobs: %v\n", err)
		return 1
	}
	if logger != nil {
		logger.Info("shutdown complete")
	}
	return 0
}
