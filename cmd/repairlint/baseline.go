package main

import (
	"bufio"
	"fmt"
	"os"
	"strings"
)

// The baseline file accepts findings that cannot carry an in-file
// directive. One entry per line:
//
//	internal/server/session.go: mapiter: append to names # response field order is JSON-canonicalized downstream
//
// The first two colon-separated fields are the file path (as repairlint
// prints it) and the analyzer; the rest up to '#' is a substring the
// finding's message must contain; the '#' tail is the mandatory
// justification. Blank lines and '#' comment lines are skipped. Line
// numbers are deliberately absent so unrelated edits above a finding do
// not invalidate the baseline.
//
// Every entry must match at least one finding of the current run — stale
// entries are reported as findings themselves — so the file can only
// shrink truthfully and CI notices when a baselined issue gets fixed.

// baselineEntry is one accepted finding pattern.
type baselineEntry struct {
	file     string
	analyzer string
	substr   string
	reason   string
	line     int // line in the baseline file, for stale reports
	used     bool
}

type baselineSet struct {
	path    string
	entries []*baselineEntry
}

// loadBaseline parses path ("" means an empty baseline).
func loadBaseline(path string) (*baselineSet, error) {
	bl := &baselineSet{path: path}
	if path == "" {
		return bl, nil
	}
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("baseline: %w", err)
	}
	defer f.Close()
	sc := bufio.NewScanner(f)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		entry, reason, ok := strings.Cut(line, "#")
		if !ok || strings.TrimSpace(reason) == "" {
			return nil, fmt.Errorf("baseline: %s:%d: entry has no '# <justification>' tail", path, lineNo)
		}
		parts := strings.SplitN(entry, ":", 3)
		if len(parts) != 3 {
			return nil, fmt.Errorf("baseline: %s:%d: want 'file: analyzer: message substring # reason'", path, lineNo)
		}
		bl.entries = append(bl.entries, &baselineEntry{
			file:     strings.TrimSpace(parts[0]),
			analyzer: strings.TrimSpace(parts[1]),
			substr:   strings.TrimSpace(parts[2]),
			reason:   strings.TrimSpace(reason),
			line:     lineNo,
		})
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("baseline: %w", err)
	}
	return bl, nil
}

// apply marks findings covered by the baseline as suppressed (in place)
// and returns one synthetic finding per stale entry.
func (bl *baselineSet) apply(findings []finding) []finding {
	for i := range findings {
		f := &findings[i]
		if f.Suppressed != "" {
			continue
		}
		for _, e := range bl.entries {
			if e.analyzer != f.Analyzer {
				continue
			}
			if !strings.HasSuffix(f.File, e.file) {
				continue
			}
			if e.substr != "" && !strings.Contains(f.Message, e.substr) {
				continue
			}
			e.used = true
			f.Suppressed = "baseline: " + e.reason
			break
		}
	}
	var stale []finding
	for _, e := range bl.entries {
		if !e.used {
			stale = append(stale, finding{
				File:     bl.path,
				Line:     e.line,
				Col:      1,
				Analyzer: "baseline",
				Message:  fmt.Sprintf("stale baseline entry (%s: %s) matches no current finding; delete it", e.file, e.analyzer),
			})
		}
	}
	return stale
}
