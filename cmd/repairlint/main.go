// Command repairlint runs ftrepair's project-specific static analyzers
// (internal/analysis) over Go packages and reports findings in the usual
// file:line:col style. It exits 1 when any finding or type error is
// reported, so `go run ./cmd/repairlint ./...` gates CI.
//
//	repairlint ./...                         # whole module
//	repairlint -analyzers cancelpoll ./...   # one analyzer
//	repairlint -list                         # describe the suite
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"ftrepair/internal/analysis"
	"ftrepair/internal/analysis/load"
)

func main() {
	var (
		listFlag  = flag.Bool("list", false, "list available analyzers and exit")
		analyzers = flag.String("analyzers", "", "comma-separated analyzer subset (default: all)")
	)
	flag.Parse()
	if *listFlag {
		for _, a := range analysis.All() {
			fmt.Printf("%-12s %s\n", a.Name, a.Doc)
		}
		return
	}
	findings, err := run(os.Stdout, *analyzers, flag.Args())
	if err != nil {
		fmt.Fprintln(os.Stderr, "repairlint:", err)
		os.Exit(2)
	}
	if findings > 0 {
		fmt.Fprintf(os.Stderr, "repairlint: %d finding(s)\n", findings)
		os.Exit(1)
	}
}

// run loads the packages, applies the selected analyzers, prints findings
// to w, and returns how many were reported.
func run(w io.Writer, analyzerSpec string, patterns []string) (int, error) {
	var names []string
	if analyzerSpec != "" {
		names = strings.Split(analyzerSpec, ",")
	}
	selected, err := analysis.ByName(names)
	if err != nil {
		return 0, err
	}
	pkgs, err := load.Packages("", patterns...)
	if err != nil {
		return 0, err
	}
	findings := 0
	for _, pkg := range pkgs {
		for _, terr := range pkg.TypeErrors {
			fmt.Fprintf(w, "%v: typecheck: %v\n", pkg.Path, terr)
			findings++
		}
		for _, a := range selected {
			a := a
			pass := &analysis.Pass{
				Analyzer: a,
				Fset:     pkg.Fset,
				Files:    pkg.Files,
				Pkg:      pkg.Types,
				Info:     pkg.Info,
				Report: func(d analysis.Diagnostic) {
					fmt.Fprintf(w, "%s: %s: %s\n", pkg.Fset.Position(d.Pos), a.Name, d.Message)
					findings++
				},
			}
			if err := a.Run(pass); err != nil {
				return findings, fmt.Errorf("%s on %s: %w", a.Name, pkg.Path, err)
			}
		}
	}
	return findings, nil
}
