// Command repairlint runs ftrepair's project-specific static analyzers
// (internal/analysis) over Go packages and reports findings in the usual
// file:line:col style. It exits 1 when any unsuppressed finding or type
// error is reported, so `go run ./cmd/repairlint ./...` gates CI.
//
//	repairlint ./...                          # whole module, text output
//	repairlint -analyzers cancelpoll ./...    # one analyzer
//	repairlint -format=json ./...             # machine-readable findings
//	repairlint -format=sarif ./... > out.sarif# SARIF 2.1.0 for CI annotation
//	repairlint -baseline=.repairlint.baseline ./...
//	repairlint -list                          # describe the suite
//
// The module is loaded and type-checked once (`go list -export` + go/types)
// and that load is shared by every analyzer pass; packages are then
// analyzed in parallel, bounded by GOMAXPROCS. A wall-time line on stderr
// reports the split between loading and analysis.
//
// Suppression comes in two forms, both requiring a justification:
//
//   - in-file: `//lint:ignore <analyzer> <reason>` on the finding's line or
//     the line above (malformed directives are themselves findings);
//   - baseline file (-baseline): lines of `path/file.go: analyzer: message
//     substring # reason` for findings that cannot carry a comment. Stale
//     entries that match nothing are findings too, so the baseline can only
//     shrink truthfully.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"sort"
	"strings"
	"sync"
	"time"

	"ftrepair/internal/analysis"
	"ftrepair/internal/analysis/load"
)

func main() {
	var (
		listFlag  = flag.Bool("list", false, "list available analyzers and exit")
		analyzers = flag.String("analyzers", "", "comma-separated analyzer subset (default: all)")
		format    = flag.String("format", "text", "output format: text, json, or sarif")
		baseline  = flag.String("baseline", "", "baseline file of accepted findings (empty: none)")
		workers   = flag.Int("parallel", runtime.GOMAXPROCS(0), "max packages analyzed concurrently")
		quiet     = flag.Bool("quiet", false, "suppress the wall-time summary on stderr")
	)
	flag.Parse()
	if *listFlag {
		for _, a := range analysis.All() {
			fmt.Printf("%-12s %s\n", a.Name, a.Doc)
		}
		return
	}
	res, err := run(os.Stdout, config{
		analyzerSpec: *analyzers,
		format:       *format,
		baselineFile: *baseline,
		workers:      *workers,
		patterns:     flag.Args(),
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "repairlint:", err)
		os.Exit(2)
	}
	if !*quiet {
		fmt.Fprintf(os.Stderr, "repairlint: %d analyzer(s) × %d package(s) in %s (load %s, analyze %s); %d finding(s), %d suppressed\n",
			res.analyzers, res.packages, round(res.loadTime+res.analyzeTime),
			round(res.loadTime), round(res.analyzeTime), len(res.active), res.suppressed)
	}
	if len(res.active) > 0 {
		os.Exit(1)
	}
}

// config carries one driver invocation's settings.
type config struct {
	analyzerSpec string
	format       string
	baselineFile string
	workers      int
	patterns     []string
}

// finding is one diagnostic with its provenance, ready for any output
// format.
type finding struct {
	File     string `json:"file"`
	Line     int    `json:"line"`
	Col      int    `json:"col"`
	Analyzer string `json:"analyzer"`
	Message  string `json:"message"`
	// Suppressed notes why the finding does not gate: "directive: <reason>"
	// or "baseline: <reason>". Empty for active findings.
	Suppressed string `json:"suppressed,omitempty"`
}

// result aggregates a run for the summary line and the exit code.
type result struct {
	active      []finding
	suppressed  int
	analyzers   int
	packages    int
	loadTime    time.Duration
	analyzeTime time.Duration
}

// run loads the packages once, fans the analyzer suite out over them, and
// renders the findings in the requested format.
func run(w io.Writer, cfg config) (*result, error) {
	var names []string
	if cfg.analyzerSpec != "" {
		names = strings.Split(cfg.analyzerSpec, ",")
	}
	selected, err := analysis.ByName(names)
	if err != nil {
		return nil, err
	}
	switch cfg.format {
	case "":
		cfg.format = "text"
	case "text", "json", "sarif":
	default:
		return nil, fmt.Errorf("unknown -format %q (want text, json, or sarif)", cfg.format)
	}
	bl, err := loadBaseline(cfg.baselineFile)
	if err != nil {
		return nil, err
	}

	loadStart := time.Now()
	pkgs, err := load.Packages("", cfg.patterns...)
	if err != nil {
		return nil, err
	}
	loadTime := time.Since(loadStart)

	// Analyze packages in parallel: each package runs the full analyzer
	// suite on the one shared load. Findings are collected per package and
	// merged in deterministic order afterwards, so the output is identical
	// at any worker count — the same discipline the analyzers enforce.
	analyzeStart := time.Now()
	workers := cfg.workers
	if workers < 1 {
		workers = 1
	}
	if workers > len(pkgs) {
		workers = len(pkgs)
	}
	perPkg := make([][]finding, len(pkgs))
	errs := make([]error, len(pkgs))
	var wg sync.WaitGroup
	next := make(chan int)
	for k := 0; k < workers; k++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				perPkg[i], errs[i] = analyzePackage(pkgs[i], selected)
			}
		}()
	}
	for i := range pkgs {
		next <- i
	}
	close(next)
	wg.Wait()
	for _, e := range errs {
		if e != nil {
			return nil, e
		}
	}
	var findings []finding
	for _, fs := range perPkg {
		findings = append(findings, fs...)
	}
	sort.Slice(findings, func(i, j int) bool {
		a, b := findings[i], findings[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Col != b.Col {
			return a.Col < b.Col
		}
		return a.Analyzer < b.Analyzer
	})
	findings = append(findings, bl.apply(findings)...)

	res := &result{
		analyzers:   len(selected),
		packages:    len(pkgs),
		loadTime:    loadTime,
		analyzeTime: time.Since(analyzeStart),
	}
	for _, f := range findings {
		if f.Suppressed == "" {
			res.active = append(res.active, f)
		} else {
			res.suppressed++
		}
	}

	switch cfg.format {
	case "text":
		for _, f := range res.active {
			fmt.Fprintf(w, "%s:%d:%d: %s: %s\n", f.File, f.Line, f.Col, f.Analyzer, f.Message)
		}
	case "json":
		if err := writeJSON(w, findings, res); err != nil {
			return nil, err
		}
	case "sarif":
		if err := writeSARIF(w, selected, res.active); err != nil {
			return nil, err
		}
	}
	return res, nil
}

// analyzePackage runs the selected analyzers over one loaded package and
// applies in-file suppression.
func analyzePackage(pkg *load.Package, selected []*analysis.Analyzer) ([]finding, error) {
	var findings []finding
	for _, terr := range pkg.TypeErrors {
		findings = append(findings, finding{
			File:     pkg.Path,
			Analyzer: "typecheck",
			Message:  terr.Error(),
		})
	}
	ignores := analysis.ParseIgnores(pkg.Fset, pkg.Files)
	for _, a := range selected {
		a := a
		pass := &analysis.Pass{
			Analyzer: a,
			Fset:     pkg.Fset,
			Files:    pkg.Files,
			Pkg:      pkg.Types,
			Info:     pkg.Info,
			Report: func(d analysis.Diagnostic) {
				pos := pkg.Fset.Position(d.Pos)
				f := finding{
					File:     pos.Filename,
					Line:     pos.Line,
					Col:      pos.Column,
					Analyzer: a.Name,
					Message:  d.Message,
				}
				if dir := ignores.Suppressed(pos.Filename, pos.Line, a.Name); dir != nil {
					f.Suppressed = "directive: " + dir.Reason
				}
				findings = append(findings, f)
			},
		}
		if err := a.Run(pass); err != nil {
			return nil, fmt.Errorf("%s on %s: %w", a.Name, pkg.Path, err)
		}
	}
	// A directive that does not parse is itself a finding: suppressions
	// must name an analyzer and carry a reason.
	for _, d := range ignores.Malformed() {
		pos := pkg.Fset.Position(d.Pos)
		findings = append(findings, finding{
			File:     pos.Filename,
			Line:     pos.Line,
			Col:      pos.Column,
			Analyzer: "lintdirective",
			Message:  "malformed //lint:ignore directive: want `//lint:ignore <analyzer> <reason>`",
		})
	}
	return findings, nil
}

func round(d time.Duration) time.Duration { return d.Round(time.Millisecond) }
