package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestCleanTree is the repo's lint gate in test form: the analyzer suite
// must report nothing on the current source tree beyond what the shipped
// baseline justifies.
func TestCleanTree(t *testing.T) {
	if testing.Short() {
		t.Skip("loads and type-checks the whole module")
	}
	var buf bytes.Buffer
	res, err := run(&buf, config{patterns: []string{"ftrepair/..."}, baselineFile: baselinePath(t)})
	if err != nil {
		t.Fatalf("repairlint driver failed: %v", err)
	}
	if len(res.active) != 0 {
		t.Fatalf("repairlint reported %d finding(s) on a tree expected to be clean:\n%s", len(res.active), buf.String())
	}
}

// baselinePath finds the checked-in baseline relative to this test's
// directory (cmd/repairlint → repo root).
func baselinePath(t *testing.T) string {
	t.Helper()
	p := filepath.Join("..", "..", ".repairlint.baseline")
	if _, err := os.Stat(p); err != nil {
		t.Fatalf("baseline file missing: %v", err)
	}
	return p
}

// TestAnalyzerSelection exercises the -analyzers subset path.
func TestAnalyzerSelection(t *testing.T) {
	if testing.Short() {
		t.Skip("loads and type-checks packages")
	}
	var buf bytes.Buffer
	res, err := run(&buf, config{
		analyzerSpec: "floateq,lockcopy",
		patterns:     []string{"ftrepair/internal/fd"},
	})
	if err != nil {
		t.Fatalf("repairlint driver failed: %v", err)
	}
	if len(res.active) != 0 {
		t.Fatalf("unexpected findings in internal/fd:\n%s", buf.String())
	}
	if res.analyzers != 2 {
		t.Fatalf("analyzer subset: got %d analyzers, want 2", res.analyzers)
	}
}

// TestUnknownAnalyzer: a typo in -analyzers must be a driver error, not a
// silently empty run.
func TestUnknownAnalyzer(t *testing.T) {
	var buf bytes.Buffer
	if _, err := run(&buf, config{analyzerSpec: "nosuch"}); err == nil || !strings.Contains(err.Error(), "nosuch") {
		t.Fatalf("want unknown-analyzer error naming it, got %v", err)
	}
}

// TestUnknownFormat: a bad -format is a driver error before any load.
func TestUnknownFormat(t *testing.T) {
	var buf bytes.Buffer
	if _, err := run(&buf, config{format: "xml"}); err == nil || !strings.Contains(err.Error(), "xml") {
		t.Fatalf("want unknown-format error naming it, got %v", err)
	}
}

// TestJSONOutput: -format=json emits a parseable document with telemetry.
func TestJSONOutput(t *testing.T) {
	if testing.Short() {
		t.Skip("loads and type-checks packages")
	}
	var buf bytes.Buffer
	res, err := run(&buf, config{
		format:   "json",
		patterns: []string{"ftrepair/internal/fd"},
	})
	if err != nil {
		t.Fatalf("repairlint driver failed: %v", err)
	}
	var doc struct {
		Findings  []finding `json:"findings"`
		Active    int       `json:"active"`
		Analyzers int       `json:"analyzers"`
		Packages  int       `json:"packages"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("json output does not parse: %v\n%s", err, buf.String())
	}
	if doc.Active != len(res.active) {
		t.Fatalf("json active=%d, result active=%d", doc.Active, len(res.active))
	}
	if doc.Analyzers == 0 || doc.Packages == 0 {
		t.Fatalf("json telemetry missing: %+v", doc)
	}
	if doc.Findings == nil {
		t.Fatalf("json findings must be [] even when empty")
	}
}

// TestSARIFOutput: -format=sarif emits a valid SARIF 2.1.0 skeleton with a
// rule per analyzer.
func TestSARIFOutput(t *testing.T) {
	if testing.Short() {
		t.Skip("loads and type-checks packages")
	}
	var buf bytes.Buffer
	_, err := run(&buf, config{
		format:   "sarif",
		patterns: []string{"ftrepair/internal/fd"},
	})
	if err != nil {
		t.Fatalf("repairlint driver failed: %v", err)
	}
	var doc struct {
		Schema  string `json:"$schema"`
		Version string `json:"version"`
		Runs    []struct {
			Tool struct {
				Driver struct {
					Name  string `json:"name"`
					Rules []struct {
						ID string `json:"id"`
					} `json:"rules"`
				} `json:"driver"`
			} `json:"tool"`
			Results []json.RawMessage `json:"results"`
		} `json:"runs"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("sarif output does not parse: %v\n%s", err, buf.String())
	}
	if doc.Version != "2.1.0" || !strings.Contains(doc.Schema, "sarif-schema-2.1.0") {
		t.Fatalf("not a SARIF 2.1.0 log: version=%q schema=%q", doc.Version, doc.Schema)
	}
	if len(doc.Runs) != 1 {
		t.Fatalf("want exactly one run, got %d", len(doc.Runs))
	}
	drv := doc.Runs[0].Tool.Driver
	if drv.Name != "repairlint" {
		t.Fatalf("driver name = %q", drv.Name)
	}
	ids := map[string]bool{}
	for _, r := range drv.Rules {
		ids[r.ID] = true
	}
	for _, want := range []string{"cancelpoll", "mapiter", "nondeterm", "atomicmix", "goguard", "spanend", "typecheck", "lintdirective"} {
		if !ids[want] {
			t.Fatalf("sarif rules missing %q (have %v)", want, ids)
		}
	}
	if doc.Runs[0].Results == nil {
		t.Fatalf("sarif results must be [] even when empty")
	}
}

// TestBaselineRoundTrip: a baseline entry suppresses a matching finding;
// a stale entry becomes a finding of its own.
func TestBaselineRoundTrip(t *testing.T) {
	dir := t.TempDir()
	write := func(name, content string) string {
		t.Helper()
		p := filepath.Join(dir, name)
		if err := os.WriteFile(p, []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
		return p
	}

	good := write("good.baseline",
		"# accepted findings\ninternal/incr/batcher.go: nondeterm: time.Now # arrival stamp only drives flush deadlines\n")
	bl, err := loadBaseline(good)
	if err != nil {
		t.Fatalf("loadBaseline: %v", err)
	}
	findings := []finding{{
		File:     "/abs/path/internal/incr/batcher.go",
		Line:     119,
		Col:      9,
		Analyzer: "nondeterm",
		Message:  "time.Now() result is stored as data",
	}}
	stale := bl.apply(findings)
	if len(stale) != 0 {
		t.Fatalf("no stale entries expected, got %v", stale)
	}
	if !strings.HasPrefix(findings[0].Suppressed, "baseline: ") {
		t.Fatalf("finding not suppressed by baseline: %+v", findings[0])
	}

	// The same baseline against an empty run reports its entry as stale.
	bl2, err := loadBaseline(good)
	if err != nil {
		t.Fatal(err)
	}
	stale = bl2.apply(nil)
	if len(stale) != 1 || stale[0].Analyzer != "baseline" {
		t.Fatalf("want one stale-entry finding, got %v", stale)
	}

	// Entries without a justification are rejected outright.
	bad := write("bad.baseline", "internal/incr/batcher.go: nondeterm: time.Now\n")
	if _, err := loadBaseline(bad); err == nil || !strings.Contains(err.Error(), "justification") {
		t.Fatalf("want missing-justification error, got %v", err)
	}
}

// TestParallelDeterminism: the merged finding order must not depend on the
// worker count.
func TestParallelDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("loads and type-checks packages")
	}
	var serial, parallel bytes.Buffer
	if _, err := run(&serial, config{workers: 1, patterns: []string{"ftrepair/internal/..."}, baselineFile: baselinePath(t)}); err != nil {
		t.Fatalf("serial run failed: %v", err)
	}
	if _, err := run(&parallel, config{workers: 8, patterns: []string{"ftrepair/internal/..."}, baselineFile: baselinePath(t)}); err != nil {
		t.Fatalf("parallel run failed: %v", err)
	}
	if serial.String() != parallel.String() {
		t.Fatalf("output differs between 1 and 8 workers:\n--- serial ---\n%s--- parallel ---\n%s", serial.String(), parallel.String())
	}
}
