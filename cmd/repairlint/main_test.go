package main

import (
	"bytes"
	"strings"
	"testing"
)

// TestCleanTree is the repo's lint gate in test form: the analyzer suite
// must report nothing on the current source tree.
func TestCleanTree(t *testing.T) {
	if testing.Short() {
		t.Skip("loads and type-checks the whole module")
	}
	var buf bytes.Buffer
	findings, err := run(&buf, "", []string{"ftrepair/..."})
	if err != nil {
		t.Fatalf("repairlint driver failed: %v", err)
	}
	if findings != 0 {
		t.Fatalf("repairlint reported %d finding(s) on a tree expected to be clean:\n%s", findings, buf.String())
	}
}

// TestAnalyzerSelection exercises the -analyzers flag path.
func TestAnalyzerSelection(t *testing.T) {
	if testing.Short() {
		t.Skip("loads and type-checks packages")
	}
	var buf bytes.Buffer
	findings, err := run(&buf, "floateq,lockcopy", []string{"ftrepair/internal/fd"})
	if err != nil {
		t.Fatalf("repairlint driver failed: %v", err)
	}
	if findings != 0 {
		t.Fatalf("unexpected findings in internal/fd:\n%s", buf.String())
	}
}

// TestUnknownAnalyzer: a typo in -analyzers must be a driver error, not a
// silently empty run.
func TestUnknownAnalyzer(t *testing.T) {
	var buf bytes.Buffer
	if _, err := run(&buf, "nosuch", nil); err == nil || !strings.Contains(err.Error(), "nosuch") {
		t.Fatalf("want unknown-analyzer error naming it, got %v", err)
	}
}
