package main

import (
	"encoding/json"
	"io"

	"ftrepair/internal/analysis"
)

// writeJSON renders every finding (active and suppressed) plus run
// telemetry, for tooling that wants the full picture.
func writeJSON(w io.Writer, findings []finding, res *result) error {
	doc := struct {
		Findings   []finding `json:"findings"`
		Active     int       `json:"active"`
		Suppressed int       `json:"suppressed"`
		Analyzers  int       `json:"analyzers"`
		Packages   int       `json:"packages"`
		LoadMs     float64   `json:"loadMs"`
		AnalyzeMs  float64   `json:"analyzeMs"`
	}{
		Findings:   findings,
		Active:     len(res.active),
		Suppressed: res.suppressed,
		Analyzers:  res.analyzers,
		Packages:   res.packages,
		LoadMs:     float64(res.loadTime.Microseconds()) / 1000,
		AnalyzeMs:  float64(res.analyzeTime.Microseconds()) / 1000,
	}
	if findings == nil {
		doc.Findings = []finding{}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(doc)
}

// SARIF 2.1.0 minimal model: one run, one tool driver with a rule per
// analyzer, one result per active finding. Enough for GitHub code-scanning
// annotation and for any SARIF viewer.

type sarifLog struct {
	Schema  string     `json:"$schema"`
	Version string     `json:"version"`
	Runs    []sarifRun `json:"runs"`
}

type sarifRun struct {
	Tool    sarifTool     `json:"tool"`
	Results []sarifResult `json:"results"`
}

type sarifTool struct {
	Driver sarifDriver `json:"driver"`
}

type sarifDriver struct {
	Name           string      `json:"name"`
	InformationURI string      `json:"informationUri,omitempty"`
	Rules          []sarifRule `json:"rules"`
}

type sarifRule struct {
	ID               string       `json:"id"`
	ShortDescription sarifMessage `json:"shortDescription"`
}

type sarifMessage struct {
	Text string `json:"text"`
}

type sarifResult struct {
	RuleID    string          `json:"ruleId"`
	Level     string          `json:"level"`
	Message   sarifMessage    `json:"message"`
	Locations []sarifLocation `json:"locations"`
}

type sarifLocation struct {
	PhysicalLocation sarifPhysical `json:"physicalLocation"`
}

type sarifPhysical struct {
	ArtifactLocation sarifArtifact `json:"artifactLocation"`
	Region           sarifRegion   `json:"region"`
}

type sarifArtifact struct {
	URI string `json:"uri"`
}

type sarifRegion struct {
	StartLine   int `json:"startLine"`
	StartColumn int `json:"startColumn,omitempty"`
}

// writeSARIF renders the active findings as a SARIF 2.1.0 log.
func writeSARIF(w io.Writer, selected []*analysis.Analyzer, active []finding) error {
	rules := make([]sarifRule, 0, len(selected)+2)
	for _, a := range selected {
		rules = append(rules, sarifRule{ID: a.Name, ShortDescription: sarifMessage{Text: a.Doc}})
	}
	// Synthetic rule ids the driver can emit besides analyzer findings.
	rules = append(rules,
		sarifRule{ID: "typecheck", ShortDescription: sarifMessage{Text: "package failed to type-check"}},
		sarifRule{ID: "lintdirective", ShortDescription: sarifMessage{Text: "malformed //lint:ignore directive"}},
		sarifRule{ID: "baseline", ShortDescription: sarifMessage{Text: "stale baseline entry"}},
	)
	results := make([]sarifResult, 0, len(active))
	for _, f := range active {
		line := f.Line
		if line < 1 {
			line = 1
		}
		results = append(results, sarifResult{
			RuleID:  f.Analyzer,
			Level:   "error",
			Message: sarifMessage{Text: f.Message},
			Locations: []sarifLocation{{
				PhysicalLocation: sarifPhysical{
					ArtifactLocation: sarifArtifact{URI: f.File},
					Region:           sarifRegion{StartLine: line, StartColumn: f.Col},
				},
			}},
		})
	}
	log := sarifLog{
		Schema:  "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/Schemata/sarif-schema-2.1.0.json",
		Version: "2.1.0",
		Runs: []sarifRun{{
			Tool:    sarifTool{Driver: sarifDriver{Name: "repairlint", Rules: rules}},
			Results: results,
		}},
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(log)
}
