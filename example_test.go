package ftrepair_test

import (
	"fmt"

	"ftrepair"
)

// The running example: one FD, a typo and a classic conflict, repaired
// with the exact single-FD algorithm.
func ExampleRepair() {
	rel, _ := ftrepair.FromRows(ftrepair.Strings("City", "State"), [][]string{
		{"Boston", "MA"}, {"Boston", "MA"}, {"Boston", "MA"},
		{"Boston", "MA"}, {"Boston", "MA"}, {"Boston", "MA"},
		{"Boston", "MA"}, {"Boston", "MA"},
		{"Boton", "MA"},  // LHS typo: invisible to equality-based cleaning
		{"Boston", "NY"}, // classic violation
	})
	set, _ := ftrepair.NewSet([]*ftrepair.FD{
		ftrepair.MustParseFD(rel.Schema, "City -> State"),
	}, 0.3)
	cfg, _ := ftrepair.NewDistConfig(rel, 0.7, 0.3)
	res, _ := ftrepair.Repair(rel, set, cfg, ftrepair.ExactS, ftrepair.Options{})
	for _, c := range res.Changed {
		fmt.Printf("row %d %s: %s -> %s\n",
			c.Row+1, rel.Schema.Attr(c.Col).Name, rel.Get(c), res.Repaired.Get(c))
	}
	// Output:
	// row 9 City: Boton -> Boston
	// row 10 State: NY -> MA
}

// Detection without repairing: similarity-based and classic violations.
func ExampleDetect() {
	rel, _ := ftrepair.FromRows(ftrepair.Strings("City", "State"), [][]string{
		{"Boston", "MA"}, {"Boston", "MA"}, {"Boton", "MA"},
	})
	set, _ := ftrepair.NewSet([]*ftrepair.FD{
		ftrepair.MustParseFD(rel.Schema, "City -> State"),
	}, 0.3)
	cfg, _ := ftrepair.NewDistConfig(rel, 0.7, 0.3)
	for _, v := range ftrepair.Detect(rel, set, cfg, ftrepair.Options{}) {
		fmt.Printf("%v ~ %v (dist %.3f, classic=%v)\n", v.Left, v.Right, v.Dist, v.Classic)
	}
	// Output:
	// [Boston MA] ~ [Boton MA] (dist 0.117, classic=false)
}

// Discovering constraints from the data itself.
func ExampleDiscoverFDs() {
	rel, _ := ftrepair.FromRows(ftrepair.Strings("Zip", "City"), [][]string{
		{"02134", "Boston"}, {"02134", "Boston"}, {"02134", "Boston"},
		{"10001", "New York"}, {"10001", "New York"}, {"10001", "New York"},
	})
	for _, r := range ftrepair.DiscoverFDs(rel, ftrepair.DiscoverOptions{MaxLHS: 1}) {
		fmt.Printf("%s (g3 %.2f)\n", r.FD, r.Error)
	}
	// Output:
	// [Zip] -> [City] (g3 0.00)
	// [City] -> [Zip] (g3 0.00)
}

// Denial constraints express rules FDs cannot, like rate monotonicity.
func ExampleParseDC() {
	schema := ftrepair.MustSchema(
		ftrepair.Attribute{Name: "State"},
		ftrepair.Attribute{Name: "Salary", Type: ftrepair.Numeric},
		ftrepair.Attribute{Name: "Rate", Type: ftrepair.Numeric},
	)
	rel, _ := ftrepair.FromRows(schema, [][]string{
		{"NY", "50000", "5.0"},
		{"NY", "90000", "3.0"},
	})
	d, _ := ftrepair.ParseDC(schema, "mono: t1.State = t2.State ; t1.Salary > t2.Salary ; t1.Rate < t2.Rate")
	for _, v := range ftrepair.DetectDC(rel, []*ftrepair.DC{d}) {
		fmt.Printf("rows %d and %d violate %s\n", v.Row1+1, v.Row2+1, v.DC.Name)
	}
	fmt.Println("consistent:", ftrepair.DCConsistent(rel, []*ftrepair.DC{d}))
	// Output:
	// rows 2 and 1 violate mono
	// consistent: false
}

// Append-time maintenance: new tuples repair against the standing data.
func ExampleNewIncremental() {
	rel, _ := ftrepair.FromRows(ftrepair.Strings("City", "State"), [][]string{
		{"Boston", "MA"}, {"Boston", "MA"}, {"Boston", "MA"},
	})
	set, _ := ftrepair.NewSet([]*ftrepair.FD{
		ftrepair.MustParseFD(rel.Schema, "City -> State"),
	}, 0.3)
	cfg, _ := ftrepair.NewDistConfig(rel, 0.7, 0.3)
	inc, _ := ftrepair.NewIncremental(rel, set, cfg)
	out, changed, _ := inc.Add(ftrepair.Tuple{"Bostn", "MA"})
	fmt.Println(out, changed)
	// Output:
	// [Boston MA] true
}
