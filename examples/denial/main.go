// Denial: constraints FDs cannot express — within a state, a higher salary
// must not pay a lower rate. Detect and repair with denial constraints on
// the Tax workload, alongside the FD set expressed as DCs.
//
//	go run ./examples/denial [-n 800]
package main

import (
	"flag"
	"fmt"
	"log"

	"ftrepair"
	"ftrepair/internal/gen"
)

func main() {
	n := flag.Int("n", 800, "number of tuples")
	seed := flag.Int64("seed", 9, "RNG seed")
	flag.Parse()

	clean := gen.Tax{Seed: *seed}.Generate(*n)
	rel := clean.Clone()
	// Corrupt a few Rate cells downward to create monotonicity violations
	// the FD set cannot see (Rate depends on State+MaritalStatus, but the
	// order relation between salaries is a genuine denial constraint).
	rate := rel.Schema.MustIndex("Rate")
	salary := rel.Schema.MustIndex("Salary")
	corrupted := 0
	for i := 0; i < rel.Len() && corrupted < 5; i += rel.Len() / 7 {
		rel.Tuples[i][rate] = "0.1"
		corrupted++
	}
	fmt.Printf("Tax: %d tuples, %d corrupted rates\n\n", *n, corrupted)

	mono, err := ftrepair.ParseDC(rel.Schema,
		"mono: t1.State = t2.State ; t1.MaritalStatus = t2.MaritalStatus ; t1.Salary > t2.Salary ; t1.Rate < t2.Rate")
	if err != nil {
		log.Fatal(err)
	}
	dcs := []*ftrepair.DC{mono}
	// The FD set rides along as DCs (they detect the same corruption from
	// the equality side).
	for _, f := range gen.TaxFDs(rel.Schema) {
		dcs = append(dcs, ftrepair.DCFromFD(f)...)
	}

	violations := ftrepair.DetectDC(rel, []*ftrepair.DC{mono})
	fmt.Printf("monotonicity violations (pairs): %d\n", len(violations))
	for i, v := range violations {
		if i >= 3 {
			fmt.Printf("  ... %d more\n", len(violations)-3)
			break
		}
		t1, t2 := rel.Tuples[v.Row1], rel.Tuples[v.Row2]
		fmt.Printf("  row %d (salary %s, rate %s) vs row %d (salary %s, rate %s)\n",
			v.Row1+1, t1[salary], t1[rate], v.Row2+1, t2[salary], t2[rate])
	}

	repaired := ftrepair.RepairDC(rel, dcs, 0)
	if !ftrepair.DCConsistent(repaired, dcs) {
		log.Fatal("repair left DC violations")
	}
	fixed := 0
	for i := range repaired.Tuples {
		if repaired.Tuples[i][rate] != rel.Tuples[i][rate] && repaired.Tuples[i][rate] == clean.Tuples[i][rate] {
			fixed++
		}
	}
	fmt.Printf("\nafter repair: DC-consistent; %d/%d corrupted rates restored to ground truth\n", fixed, corrupted)
}
