// Discovery: the no-constraints-in-hand workflow — profile a dirty
// relation for approximate functional dependencies, turn the findings into
// a constraint set, and repair with it. The discovered set is then
// validated against the planted one.
//
//	go run ./examples/discovery [-n 1500]
package main

import (
	"flag"
	"fmt"
	"log"

	"ftrepair"
	"ftrepair/internal/eval"
	"ftrepair/internal/gen"
)

func main() {
	n := flag.Int("n", 1500, "number of tuples")
	seed := flag.Int64("seed", 5, "RNG seed")
	flag.Parse()

	clean := gen.HOSP{Seed: *seed}.Generate(*n)
	planted := gen.HOSPFDs(clean.Schema)
	dirty, injections := gen.Inject(clean, planted, 0.04, *seed+1)
	fmt.Printf("dirty HOSP instance: %d tuples, %d injected errors, constraints unknown\n\n", *n, len(injections))

	// 1. Profile for approximate FDs. The error budget tracks the expected
	// dirtiness; the support floor rejects vacuous near-key candidates.
	results := ftrepair.DiscoverFDs(dirty, ftrepair.DiscoverOptions{
		MaxLHS:     1,
		MaxError:   0.12,
		MinSupport: 0.3,
	})
	fmt.Printf("discovered %d candidate FDs:\n", len(results))
	for _, r := range results {
		fmt.Printf("  g3=%.3f support=%.2f  %s\n", r.Error, r.Support, r.FD)
	}

	// 2. Vet each candidate for FT-safety: a discovered FD whose
	// legitimate patterns sit within the threshold of each other (e.g.
	// StateAvg -> City, where StateAvg embeds near-identical codes) would
	// make the repair merge real values. SeparationCheck measures that.
	cfg, err := ftrepair.NewDistConfig(dirty, eval.BenchWL, eval.BenchWR)
	if err != nil {
		log.Fatal(err)
	}
	var fds []*ftrepair.FD
	fmt.Println("\nFT-safety vetting at tau=0.3 (merge mass ~ error rate = safe):")
	for _, r := range results {
		sep := ftrepair.SeparationCheck(dirty, r.FD, cfg, eval.BenchTau, ftrepair.SeparationOptions{})
		verdict := "ok"
		if sep.MergeMass > 0.15 {
			verdict = "rejected (would rewrite a large fraction of the table)"
		} else {
			fds = append(fds, r.FD)
		}
		fmt.Printf("  merge mass %.3f  %-40s %s\n", sep.MergeMass, r.FD, verdict)
	}
	if len(fds) == 0 {
		log.Fatal("no FT-safe constraints discovered")
	}

	// 2b. Drop logically redundant FDs (a minimal cover): with both
	// Zip -> Provider and Provider -> City kept, Zip -> City is implied
	// and only adds repair ambiguity.
	fds = ftrepair.MinimalCover(fds)
	fmt.Printf("\nminimal cover keeps %d constraints:\n", len(fds))
	for _, f := range fds {
		fmt.Printf("  %s\n", f)
	}

	// 3. Repair with the vetted set.
	set, err := ftrepair.NewSet(fds, eval.BenchTau)
	if err != nil {
		log.Fatal(err)
	}
	res, err := ftrepair.Repair(dirty, set, cfg, ftrepair.GreedyM, ftrepair.Options{})
	if err != nil {
		log.Fatal(err)
	}
	q, err := eval.Evaluate(clean, dirty, res.Repaired, eval.Options{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nrepair with discovered constraints: P=%.3f R=%.3f (%d repairs, %d errors) in %v\n",
		q.Precision, q.Recall, q.Repaired, q.Errors, res.Elapsed)

	// 4. How much of the planted set did discovery recover?
	recovered := 0
	for _, p := range planted {
		for _, r := range results {
			if sameFD(p, r.FD) {
				recovered++
				break
			}
		}
	}
	fmt.Printf("recovered %d/%d planted constraints\n", recovered, len(planted))
}

func sameFD(a, b *ftrepair.FD) bool {
	if len(a.LHS) != len(b.LHS) || len(a.RHS) != len(b.RHS) {
		return false
	}
	for i := range a.LHS {
		if a.LHS[i] != b.LHS[i] {
			return false
		}
	}
	for i := range a.RHS {
		if a.RHS[i] != b.RHS[i] {
			return false
		}
	}
	return true
}
