// Hospital: repair a synthetic HOSP-like workload (the paper's primary
// dataset) and compare the fault-tolerant model against the three §6.4
// baselines on the same dirty instance.
//
//	go run ./examples/hospital [-n 2000] [-rate 0.04]
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"text/tabwriter"
	"time"

	"ftrepair"
	"ftrepair/internal/baselines"
	"ftrepair/internal/eval"
	"ftrepair/internal/gen"
)

func main() {
	n := flag.Int("n", 2000, "number of tuples")
	rate := flag.Float64("rate", 0.04, "error rate (fraction of FD cells dirtied)")
	seed := flag.Int64("seed", 1, "RNG seed")
	flag.Parse()

	clean := gen.HOSP{Seed: *seed}.Generate(*n)
	fds := gen.HOSPFDs(clean.Schema)
	dirty, injections := gen.Inject(clean, fds, *rate, *seed+1)
	fmt.Printf("HOSP workload: %d tuples, %d FDs, %d injected errors\n\n", *n, len(fds), len(injections))

	set, err := ftrepair.NewSet(fds, eval.BenchTau)
	if err != nil {
		log.Fatal(err)
	}
	cfg, err := ftrepair.NewDistConfig(dirty, eval.BenchWL, eval.BenchWR)
	if err != nil {
		log.Fatal(err)
	}

	tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "algorithm\tprecision\trecall\tF1\ttime")
	report := func(name string, repaired *ftrepair.Relation, elapsed time.Duration, opts eval.Options) {
		q, err := eval.Evaluate(clean, dirty, repaired, opts)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Fprintf(tw, "%s\t%.3f\t%.3f\t%.3f\t%v\n", name, q.Precision, q.Recall, q.F1, elapsed.Round(time.Millisecond))
	}

	for _, algo := range []ftrepair.Algorithm{ftrepair.GreedyM, ftrepair.ApproM} {
		res, err := ftrepair.Repair(dirty, set, cfg, algo, ftrepair.Options{})
		if err != nil {
			log.Fatal(err)
		}
		report(string(algo), res.Repaired, res.Elapsed, eval.Options{})
	}

	start := time.Now()
	report("NADEEF", baselines.NADEEF(dirty, set, nil), time.Since(start), eval.Options{})
	start = time.Now()
	report("URM", baselines.URM(dirty, set, baselines.URMOptions{}, nil), time.Since(start), eval.Options{})
	start = time.Now()
	report("Llunatic", baselines.Llunatic(dirty, set, nil), time.Since(start),
		eval.Options{PartialMarker: baselines.VariableMarker})
	tw.Flush()
}
