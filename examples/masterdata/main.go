// Masterdata: the complementarity §2.3 describes — rule-based repairing
// with master data gives certain fixes where it has coverage; the
// cost-based FT model repairs the rest. The hybrid beats either alone.
//
//	go run ./examples/masterdata [-n 1500] [-coverage 0.5]
package main

import (
	"flag"
	"fmt"
	"log"

	"ftrepair"
	"ftrepair/internal/dataset"
	"ftrepair/internal/eval"
	"ftrepair/internal/gen"
)

func main() {
	n := flag.Int("n", 1500, "number of tuples")
	coverage := flag.Float64("coverage", 0.5, "fraction of localities covered by master data")
	seed := flag.Int64("seed", 8, "RNG seed")
	flag.Parse()

	clean := gen.HOSP{Seed: *seed}.Generate(*n)
	fds := gen.HOSPFDs(clean.Schema)
	dirty, injections := gen.Inject(clean, fds, 0.04, *seed+1)
	fmt.Printf("HOSP: %d tuples, %d errors; master data covers ~%.0f%% of zips\n\n",
		*n, len(injections), *coverage*100)

	// Master data: the locality table for a COVERED SUBSET of zips (real
	// master data is always partial).
	zip := clean.Schema.MustIndex("Zip")
	masterSchema := ftrepair.Strings("Zip", "City", "State", "County")
	master := dataset.NewRelation(masterSchema)
	seen := map[string]bool{}
	for _, t := range clean.Tuples {
		z := t[zip]
		if seen[z] {
			continue
		}
		seen[z] = true
		if len(seen)%2 == 0 && *coverage <= 0.5 { // crude coverage split
			continue
		}
		if err := master.Append(ftrepair.Tuple{
			z,
			t[clean.Schema.MustIndex("City")],
			t[clean.Schema.MustIndex("State")],
			t[clean.Schema.MustIndex("County")],
		}); err != nil {
			log.Fatal(err)
		}
	}
	// The rule verifies City before copying: a tuple whose Zip was
	// corrupted toward another covered zip will not also carry that zip's
	// city, so the fixes stay certain.
	rule, err := ftrepair.NewEditingRule(clean.Schema, "zip2loc", []string{"Zip"}, []string{"State", "County"})
	if err != nil {
		log.Fatal(err)
	}
	rule, err = rule.WithVerify(clean.Schema, "City")
	if err != nil {
		log.Fatal(err)
	}
	engine, err := ftrepair.NewRuleEngine(master, clean.Schema, []*ftrepair.EditingRule{rule})
	if err != nil {
		log.Fatal(err)
	}

	set, err := ftrepair.NewSet(fds, eval.BenchTau)
	if err != nil {
		log.Fatal(err)
	}
	cfg, err := ftrepair.NewDistConfig(dirty, eval.BenchWL, eval.BenchWR)
	if err != nil {
		log.Fatal(err)
	}

	measure := func(name string, repaired *ftrepair.Relation) {
		q, err := eval.Evaluate(clean, dirty, repaired, eval.Options{})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-14s P=%.3f R=%.3f (%d repairs)\n", name, q.Precision, q.Recall, q.Repaired)
	}

	// Rules alone: certain but partial.
	rulesOnly, fixes := engine.Repair(dirty)
	measure(fmt.Sprintf("rules (%d)", len(fixes)), rulesOnly)

	// FT model alone.
	ft, err := ftrepair.Repair(dirty, set, cfg, ftrepair.GreedyM, ftrepair.Options{})
	if err != nil {
		log.Fatal(err)
	}
	measure("FT model", ft.Repaired)

	// Hybrid: rules first, FT on the remainder.
	hybrid, err := ftrepair.RepairWithMaster(dirty, engine, set, cfg, ftrepair.GreedyM, ftrepair.Options{})
	if err != nil {
		log.Fatal(err)
	}
	measure("hybrid", hybrid.Repaired)
}
