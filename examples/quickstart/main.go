// Quickstart: repair the paper's running example (Table 1, the Citizens
// relation) end to end with the public API and print every repaired cell.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"os"
	"text/tabwriter"

	"ftrepair"
)

func main() {
	// The Citizens schema: Level is numeric, everything else a string.
	schema := ftrepair.MustSchema(
		ftrepair.Attribute{Name: "Name"},
		ftrepair.Attribute{Name: "Education"},
		ftrepair.Attribute{Name: "Level", Type: ftrepair.Numeric},
		ftrepair.Attribute{Name: "City"},
		ftrepair.Attribute{Name: "Street"},
		ftrepair.Attribute{Name: "District"},
		ftrepair.Attribute{Name: "State"},
	)
	// Table 1 with its eight seeded errors (t4[State], t5[City],
	// t6[Education], t8[Level], t8[City], t9[Level], t10[Education],
	// t10[State]).
	rel, err := ftrepair.FromRows(schema, [][]string{
		{"Janaina", "Bachelors", "3", "New York", "Main", "Manhattan", "NY"},
		{"Aloke", "Bachelors", "3", "New York", "Main", "Manhattan", "NY"},
		{"Jieyu", "Bachelors", "3", "New York", "Western", "Queens", "NY"},
		{"Paulo", "Masters", "4", "New York", "Western", "Queens", "MA"},
		{"Zoe", "Masters", "4", "Boston", "Main", "Manhattan", "NY"},
		{"Gara", "Masers", "4", "Boston", "Main", "Financial", "MA"},
		{"Mitchell", "HS-grad", "9", "Boston", "Main", "Financial", "MA"},
		{"Pavol", "Masters", "3", "Boton", "Arlingto", "Brookside", "MA"},
		{"Thilo", "Bachelors", "1", "Boston", "Arlingto", "Brookside", "MA"},
		{"Nenad", "Bachelers", "3", "Boston", "Arlingto", "Brookside", "NY"},
	})
	if err != nil {
		log.Fatal(err)
	}

	// The three FDs of the running example.
	fds := []*ftrepair.FD{
		ftrepair.MustParseFD(schema, "phi1: Education -> Level"),
		ftrepair.MustParseFD(schema, "phi2: City -> State"),
		ftrepair.MustParseFD(schema, "phi3: City, Street -> District"),
	}
	// Per-FD thresholds: phi1's Level distances are small numerics;
	// phi2/phi3 need tau = 0.5 to cover classic violations between
	// two-letter states under the default 0.5/0.5 weights.
	set, err := ftrepair.NewSet(fds, 0.2, 0.5, 0.5)
	if err != nil {
		log.Fatal(err)
	}
	cfg := ftrepair.DefaultDistConfig(rel)

	// The instance is small enough for the exact multi-FD algorithm.
	res, err := ftrepair.Repair(rel, set, cfg, ftrepair.ExactM, ftrepair.Options{})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("ExactM repaired %d cells at cost %.3f in %v\n\n", len(res.Changed), res.Cost, res.Elapsed)
	tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "tuple\tattribute\tbefore\tafter")
	for _, c := range res.Changed {
		fmt.Fprintf(tw, "t%d\t%s\t%s\t%s\n",
			c.Row+1, schema.Attr(c.Col).Name, rel.Get(c), res.Repaired.Get(c))
	}
	tw.Flush()

	if err := ftrepair.VerifyFTConsistent(res.Repaired, set, cfg); err != nil {
		log.Fatal(err)
	}
	if err := ftrepair.VerifyValid(rel, res.Repaired, set); err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nrepair is FT-consistent and closed-world valid")
}
