// Streaming: repair a batch once, then keep the relation FT-consistent as
// new (dirty) tuples arrive, using the incremental repair state — no full
// recompute per append.
//
//	go run ./examples/streaming [-base 1500] [-stream 500]
package main

import (
	"flag"
	"fmt"
	"log"
	"time"

	"ftrepair"
	"ftrepair/internal/dataset"
	"ftrepair/internal/eval"
	"ftrepair/internal/gen"
)

func main() {
	base := flag.Int("base", 1500, "tuples repaired in the initial batch")
	stream := flag.Int("stream", 500, "tuples streamed afterwards")
	seed := flag.Int64("seed", 6, "RNG seed")
	flag.Parse()

	total := *base + *stream
	clean := gen.HOSP{Seed: *seed}.Generate(total)
	fds := gen.HOSPFDs(clean.Schema)
	dirty, _ := gen.Inject(clean, fds, 0.04, *seed+1)

	set, err := ftrepair.NewSet(fds, eval.BenchTau)
	if err != nil {
		log.Fatal(err)
	}
	cfg, err := ftrepair.NewDistConfig(dirty, eval.BenchWL, eval.BenchWR)
	if err != nil {
		log.Fatal(err)
	}

	// Phase 1: batch-repair the standing data.
	prefix := &dataset.Relation{Schema: dirty.Schema, Tuples: dirty.Tuples[:*base]}
	start := time.Now()
	res, err := ftrepair.Repair(prefix, set, cfg, ftrepair.GreedyM, ftrepair.Options{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("batch: repaired %d cells across %d tuples in %v\n", len(res.Changed), *base, time.Since(start).Round(time.Millisecond))

	// Phase 2: stream the remainder through the incremental state.
	inc, err := ftrepair.NewIncremental(res.Repaired, set, cfg)
	if err != nil {
		log.Fatal(err)
	}
	start = time.Now()
	for _, t := range dirty.Tuples[*base:] {
		if _, _, err := inc.Add(t); err != nil {
			log.Fatal(err)
		}
	}
	accepted, repaired := inc.Stats()
	elapsed := time.Since(start)
	fmt.Printf("stream: %d tuples in %v (%.2f ms/tuple), %d needed repair\n",
		accepted, elapsed.Round(time.Millisecond), float64(elapsed.Microseconds())/1000/float64(accepted), repaired)

	if err := ftrepair.VerifyFTConsistent(inc.Relation(), set, cfg); err != nil {
		log.Fatal(err)
	}
	q, err := eval.Evaluate(clean, dirty, inc.Relation(), eval.Options{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("overall quality vs ground truth: P=%.3f R=%.3f\n", q.Precision, q.Recall)
}
