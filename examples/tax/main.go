// Tax: repair the synthetic Tax workload at scale with the per-FD greedy
// algorithm, demonstrating automatic threshold selection and per-error-kind
// recall (LHS active-domain swaps, RHS swaps, typos — the paper's §6.1
// noise mix).
//
//	go run ./examples/tax [-n 4000] [-rate 0.06]
package main

import (
	"flag"
	"fmt"
	"log"

	"ftrepair"
	"ftrepair/internal/eval"
	"ftrepair/internal/gen"
)

func main() {
	n := flag.Int("n", 4000, "number of tuples")
	rate := flag.Float64("rate", 0.06, "error rate")
	seed := flag.Int64("seed", 2, "RNG seed")
	auto := flag.Bool("auto-tau", false, "derive per-FD thresholds with the sudden-gap heuristic")
	flag.Parse()

	clean := gen.Tax{Seed: *seed}.Generate(*n)
	fds := gen.TaxFDs(clean.Schema)
	dirty, injections := gen.Inject(clean, fds, *rate, *seed+1)

	cfg, err := ftrepair.NewDistConfig(dirty, eval.BenchWL, eval.BenchWR)
	if err != nil {
		log.Fatal(err)
	}
	taus := make([]float64, len(fds))
	for i, f := range fds {
		if *auto {
			taus[i] = ftrepair.SelectTau(dirty, f, cfg, ftrepair.TauOptions{Fallback: eval.BenchTau})
		} else {
			taus[i] = eval.BenchTau
		}
		fmt.Printf("%-40s tau = %.3f\n", f, taus[i])
	}
	set, err := ftrepair.NewSet(fds, taus...)
	if err != nil {
		log.Fatal(err)
	}

	res, err := ftrepair.Repair(dirty, set, cfg, ftrepair.ApproM, ftrepair.Options{})
	if err != nil {
		log.Fatal(err)
	}
	q, err := eval.Evaluate(clean, dirty, res.Repaired, eval.Options{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nApproM on %d tuples: P=%.3f R=%.3f F1=%.3f (%d repairs for %d errors) in %v\n",
		*n, q.Precision, q.Recall, q.F1, q.Repaired, q.Errors, res.Elapsed)

	// Recall per error kind: which injected errors were restored?
	inst := &eval.Instance{Clean: clean, Dirty: dirty, Injections: injections}
	byKind := inst.RecallByKind(res.Repaired)
	fmt.Println("\nrecall by error kind:")
	for _, k := range []gen.ErrorKind{gen.Typo, gen.RHSError, gen.LHSError} {
		kq, ok := byKind[k]
		if !ok {
			continue
		}
		fmt.Printf("  %-5s %4.0f/%4d = %.3f\n", k, kq.Correct, kq.Errors, kq.Recall)
	}
}
