// Threshold: a walkthrough of the fault-tolerant violation semantics — how
// the pair-distance distribution separates typo pairs from legitimate
// pattern pairs, where the sudden-gap heuristic places tau, and what each
// tau detects on the Citizens example.
//
//	go run ./examples/threshold
package main

import (
	"fmt"
	"log"
	"sort"

	"ftrepair"
	"ftrepair/internal/gen"
)

func main() {
	dirty, _ := gen.Citizens()
	fds := gen.CitizensFDs(dirty.Schema)
	cfg := ftrepair.DefaultDistConfig(dirty)
	phi1 := fds[0] // Education -> Level

	// Distinct projections of phi1 and their pairwise distances (Eq. 2).
	type pair struct {
		a, b string
		d    float64
	}
	var patterns []ftrepair.Tuple
	seen := map[string]bool{}
	for _, t := range dirty.Tuples {
		k := t[1] + "|" + t[2]
		if !seen[k] {
			seen[k] = true
			patterns = append(patterns, t)
		}
	}
	var pairs []pair
	for i := 0; i < len(patterns); i++ {
		for j := i + 1; j < len(patterns); j++ {
			pairs = append(pairs, pair{
				a: fmt.Sprintf("(%s,%s)", patterns[i][1], patterns[i][2]),
				b: fmt.Sprintf("(%s,%s)", patterns[j][1], patterns[j][2]),
				d: cfg.Dist(phi1, patterns[i], patterns[j]),
			})
		}
	}
	sort.Slice(pairs, func(i, j int) bool { return pairs[i].d < pairs[j].d })

	fmt.Printf("pairwise distances of the %d distinct (Education, Level) patterns:\n", len(patterns))
	for _, p := range pairs {
		bar := ""
		for k := 0.0; k < p.d; k += 0.02 {
			bar += "#"
		}
		fmt.Printf("  %.3f %-28s %-28s %s\n", p.d, p.a, p.b, bar)
	}

	tau := ftrepair.SelectTau(dirty, phi1, cfg, ftrepair.TauOptions{})
	fmt.Printf("\nsudden-gap heuristic selects tau = %.3f\n", tau)

	for _, t := range []float64{0, 0.1, tau, 0.35} {
		count := 0
		for _, p := range pairs {
			if p.d <= t {
				count++
			}
		}
		fmt.Printf("  tau=%.3f -> %d FT-violating pattern pairs\n", t, count)
	}

	// Repair phi1 alone at the selected threshold.
	set, err := ftrepair.NewSet(fds[:1], tau)
	if err != nil {
		log.Fatal(err)
	}
	res, err := ftrepair.Repair(dirty, set, cfg, ftrepair.ExactS, ftrepair.Options{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nExactS at tau=%.3f repaired %d cells:\n", tau, len(res.Changed))
	for _, c := range res.Changed {
		fmt.Printf("  t%d[%s]: %s -> %s\n", c.Row+1, dirty.Schema.Attr(c.Col).Name, dirty.Get(c), res.Repaired.Get(c))
	}
}
