package ftrepair_test

import (
	"os/exec"
	"strings"
	"testing"
)

// TestExamplesSmoke builds and runs every example main at a small size,
// guarding the documented entry points against regressions. Skipped in
// -short mode (each example costs up to a few seconds).
func TestExamplesSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("examples skipped in -short mode")
	}
	cases := []struct {
		dir  string
		args []string
		want string
	}{
		{"quickstart", nil, "FT-consistent and closed-world valid"},
		{"threshold", nil, "sudden-gap heuristic selects"},
		{"hospital", []string{"-n", "600"}, "GreedyM"},
		{"tax", []string{"-n", "600"}, "recall by error kind"},
		{"discovery", []string{"-n", "800"}, "repair with discovered constraints"},
		{"streaming", []string{"-base", "400", "-stream", "100"}, "overall quality"},
		{"masterdata", []string{"-n", "600"}, "hybrid"},
		{"denial", []string{"-n", "400"}, "DC-consistent"},
	}
	for _, c := range cases {
		c := c
		t.Run(c.dir, func(t *testing.T) {
			args := append([]string{"run", "./examples/" + c.dir}, c.args...)
			out, err := exec.Command("go", args...).CombinedOutput()
			if err != nil {
				t.Fatalf("example %s failed: %v\n%s", c.dir, err, out)
			}
			if !strings.Contains(string(out), c.want) {
				t.Fatalf("example %s output missing %q:\n%s", c.dir, c.want, out)
			}
		})
	}
}
