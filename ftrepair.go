// Package ftrepair is a cost-based, fault-tolerant data-repairing library,
// reproducing "A Novel Cost-Based Model for Data Repairing" (Hao, Tang, Li,
// He, Ta, Feng — ICDE/TKDE 2017).
//
// Given a relation and a set of functional dependencies, the library
// detects fault-tolerant (similarity-based) violations and computes a
// minimum-cost, closed-world repair: every repaired projection is a value
// combination that already occurs in the data, chosen through maximal
// independent sets of the per-FD violation graphs.
//
// Quick start:
//
//	rel, _ := ftrepair.ReadCSV(f, "string,string")
//	phi := ftrepair.MustParseFD(rel.Schema, "City -> State")
//	set, _ := ftrepair.NewSet([]*ftrepair.FD{phi}, 0.3)
//	cfg, _ := ftrepair.NewDistConfig(rel, 0.7, 0.3)
//	res, _ := ftrepair.Repair(rel, set, cfg, ftrepair.GreedyM, ftrepair.Options{})
//	// res.Repaired is FT-consistent; res.Changed lists modified cells.
//
// The five algorithms of the paper are available through the Algorithm
// enum: ExactS and GreedyS for a single FD (the exact one solves an NP-hard
// problem and is exponential in the worst case), ExactM, ApproM and GreedyM
// for FD sets. Conditional functional dependencies repair through
// RepairCFD.
package ftrepair

import (
	"fmt"
	"io"

	"ftrepair/internal/dataset"
	"ftrepair/internal/dc"
	"ftrepair/internal/discover"
	"ftrepair/internal/fd"
	"ftrepair/internal/ind"
	"ftrepair/internal/ledger"
	"ftrepair/internal/profile"
	"ftrepair/internal/repair"
	"ftrepair/internal/rules"
	"ftrepair/internal/server"
)

// ErrCanceled reports that a repair stopped early because Options.Cancel
// fired. The accompanying Result, when non-nil, is a partial repair: valid
// and measured, but not FT-consistent in general. Test with errors.Is.
var ErrCanceled = repair.ErrCanceled

// Service-layer types re-exported from internal/server: an HTTP/JSON
// daemon (cmd/repaird) over the repair library with batch jobs, streaming
// sessions and operational endpoints.
type (
	// Server is the repair service behind an http.Handler.
	Server = server.Server
	// ServerConfig tunes the service (worker pool, queue depth, logging).
	ServerConfig = server.Config
	// JobSpec describes one batch repair job submitted to the service.
	JobSpec = server.JobSpec
	// SessionSpec describes one streaming repair session.
	SessionSpec = server.SessionSpec
)

// NewServer builds a repair service and starts its worker pool.
var NewServer = server.New

// Re-exported core types. They alias the internal implementations so that
// every method documented there is available on these names.
type (
	// Schema is an ordered, typed attribute list.
	Schema = dataset.Schema
	// Attribute is a named, typed column.
	Attribute = dataset.Attribute
	// Type is an attribute domain type (String or Numeric).
	Type = dataset.Type
	// Tuple is a row of cell values.
	Tuple = dataset.Tuple
	// Relation is an instance of a schema.
	Relation = dataset.Relation
	// Cell addresses one value in a relation.
	Cell = dataset.Cell
	// CSVOptions tunes CSV parsing (delimiter, comments, trimming).
	CSVOptions = dataset.CSVOptions
	// FD is a functional dependency X -> Y.
	FD = fd.FD
	// CFD is a conditional functional dependency.
	CFD = fd.CFD
	// Set is a set Σ of FDs with per-FD FT-violation thresholds.
	Set = fd.Set
	// DistConfig is the distance model: LHS/RHS weights and numeric spans.
	DistConfig = fd.DistConfig
	// TauOptions tunes automatic threshold selection.
	TauOptions = fd.TauOptions
	// Separation reports pattern-separation quality of an FD.
	Separation = fd.Separation
	// SeparationOptions tunes SeparationCheck.
	SeparationOptions = fd.SeparationOptions
	// Result reports a repair.
	Result = repair.Result
	// Options tunes the repair algorithms.
	Options = repair.Options
	// Violation describes one detected FT-violation.
	Violation = repair.Violation
	// CFDSet pairs conditional FDs with FT thresholds.
	CFDSet = repair.CFDSet
	// Incremental maintains FT-consistency as tuples are appended.
	Incremental = repair.Incremental
	// DiscoverOptions tunes approximate FD discovery.
	DiscoverOptions = discover.Options
	// DiscoveredFD is one discovery result with its g3 error and support.
	DiscoveredFD = discover.Result
	// DiscoverCFDOptions tunes constant-CFD discovery.
	DiscoverCFDOptions = discover.CFDOptions
	// DiscoveredCFD is one constant-CFD discovery result.
	DiscoveredCFD = discover.CFDResult
	// DC is a denial constraint (generalizing FDs with order, inequality
	// and similarity predicates).
	DC = dc.DC
	// DCViolation is one violating tuple pair of a denial constraint.
	DCViolation = dc.Violation
	// ColumnProfile is one attribute's statistics.
	ColumnProfile = profile.Column
	// EditingRule copies attributes from master data on a key match.
	EditingRule = rules.Rule
	// RuleEngine applies editing rules against a master relation.
	RuleEngine = rules.Engine
	// CertainFix is one applied rule-based fix.
	CertainFix = rules.Fix
	// IND is an inclusion dependency into a reference relation.
	IND = ind.IND
)

// Attribute type constants.
const (
	String  = dataset.String
	Numeric = dataset.Numeric
)

// Repair-ledger types re-exported from internal/ledger: the tamper-evident
// repair ledger with cell-level provenance. Attach a ledger via
// Options.Ledger; Commit batches events under Merkle roots chained into a
// run root, Prove produces inclusion proofs, and Undo replays a suffix of
// the event log backwards with per-cell verification.
type (
	// Ledger is the append-only, hash-chained repair event log.
	Ledger = ledger.Ledger
	// RepairEvent is one applied cell repair with its provenance.
	RepairEvent = ledger.RepairEvent
	// LedgerSink receives committed repair events (Options.Ledger).
	LedgerSink = ledger.Sink
	// LedgerProof is an inclusion proof for one event in its batch tree.
	LedgerProof = ledger.Proof
	// LedgerBatch summarizes one committed batch and its chained root.
	LedgerBatch = ledger.Batch
	// LedgerDump is a parsed JSONL ledger dump (self-verifying).
	LedgerDump = ledger.Dump
)

var (
	// NewLedger returns an empty ledger with a zero run root.
	NewLedger = ledger.New
	// UndoRepairs reverses the last n ledger events over a relation,
	// replay-verified cell by cell.
	UndoRepairs = ledger.Undo
	// ReadLedgerJSONL parses a dump written by Ledger.WriteJSONL.
	ReadLedgerJSONL = ledger.ReadJSONL
	// VerifyLedgerProof checks an inclusion proof against a batch root.
	VerifyLedgerProof = ledger.VerifyProof
	// LedgerEventHash is the canonical leaf hash of one event.
	LedgerEventHash = ledger.EventHash
)

// Construction helpers re-exported from the internal packages.
var (
	// NewSchema builds a schema from attributes.
	NewSchema = dataset.NewSchema
	// MustSchema is NewSchema that panics on error.
	MustSchema = dataset.MustSchema
	// Strings builds an all-string schema from attribute names.
	Strings = dataset.Strings
	// NewRelation builds an empty relation.
	NewRelation = dataset.NewRelation
	// FromRows builds a relation from raw rows.
	FromRows = dataset.FromRows
	// ReadCSV loads a relation from CSV (header row; optional type spec).
	ReadCSV = dataset.ReadCSV
	// ReadCSVOpts is ReadCSV with dialect options (delimiter, comments,
	// trimming).
	ReadCSVOpts = dataset.ReadCSVOpts
	// WriteCSV writes a relation as CSV.
	WriteCSV = dataset.WriteCSV
	// Diff lists the cells at which two aligned relations differ.
	Diff = dataset.Diff

	// ParseFD parses "Name: A,B -> C" into an FD.
	ParseFD = fd.Parse
	// MustParseFD is ParseFD that panics on error.
	MustParseFD = fd.MustParse
	// NewFD builds an FD from attribute name lists.
	NewFD = fd.New
	// ParseCFD parses "A -> B | const,_ ; ..." into a CFD.
	ParseCFD = fd.ParseCFD
	// NewSet pairs FDs with FT-violation thresholds.
	NewSet = fd.NewSet
	// NewDistConfig builds the distance model with explicit weights.
	NewDistConfig = fd.NewDistConfig
	// DefaultDistConfig uses the paper's default weights (0.5/0.5).
	DefaultDistConfig = fd.DefaultDistConfig
	// SelectTau picks a threshold with the paper's sudden-gap heuristic.
	SelectTau = fd.SelectTau
	// SeparationCheck vets an FD's pattern separation at a threshold.
	SeparationCheck = fd.SeparationCheck
	// Closure computes an attribute set's closure under FDs.
	Closure = fd.Closure
	// Implies reports logical implication of an FD by a set.
	Implies = fd.Implies
	// Redundant lists FDs implied by the rest of their set.
	Redundant = fd.Redundant
	// MinimalCover computes a minimal equivalent FD set.
	MinimalCover = fd.MinimalCover

	// Detect lists the FT-violations of a relation without repairing it.
	Detect = repair.Detect
	// NewCFDSet pairs CFDs with thresholds.
	NewCFDSet = repair.NewCFDSet
	// RepairCFDSet repairs a relation against a set of CFDs.
	RepairCFDSet = repair.RepairCFDSet
	// DetectCFDs lists classic CFD violations.
	DetectCFDs = repair.DetectCFDs
	// VerifyCFDs checks classic CFD satisfaction.
	VerifyCFDs = repair.VerifyCFDs
	// NewIncremental builds append-time repair state over a consistent
	// relation.
	NewIncremental = repair.NewIncremental
	// DiscoverFDs profiles a relation for minimal approximate FDs.
	DiscoverFDs = discover.FDs
	// DiscoverCFDs profiles a relation for constant conditional FDs.
	DiscoverCFDs = discover.CFDs

	// ParseDC parses a denial-constraint spec like
	// "t1.State = t2.State ; t1.Salary > t2.Salary ; t1.Rate < t2.Rate".
	ParseDC = dc.Parse
	// DetectDC lists every violating tuple pair of a DC set.
	DetectDC = dc.Detect
	// RepairDC resolves DC violations with the holistic baseline strategy.
	RepairDC = dc.Repair
	// DCConsistent reports whether a relation satisfies every DC.
	DCConsistent = dc.Consistent
	// DCFromFD expresses an FD as equivalent denial constraints.
	DCFromFD = dc.FromFDAll

	// ProfileColumns computes per-attribute statistics.
	ProfileColumns = profile.Columns
	// InferTypes infers attribute domain types from the data.
	InferTypes = profile.InferTypes
	// Retype applies inferred types to a relation's schema.
	Retype = profile.Retype
	// CandidateKeys lists unique single attributes and pairs.
	CandidateKeys = profile.CandidateKeys

	// NewEditingRule builds a master-data editing rule.
	NewEditingRule = rules.NewRule
	// NewRuleEngine indexes master data for a rule set.
	NewRuleEngine = rules.NewEngine
	// NewIND builds an inclusion dependency into a reference relation.
	NewIND = ind.New
	// VerifyFTConsistent checks FT-consistency of a repair.
	VerifyFTConsistent = repair.VerifyFTConsistent
	// VerifyValid checks closed-world validity of a repair.
	VerifyValid = repair.VerifyValid
)

// Algorithm selects one of the paper's repair algorithms.
type Algorithm string

// The five algorithms of the paper (Table 2).
const (
	// ExactS: expansion-based optimal repair for a single FD (§3.1).
	ExactS Algorithm = "ExactS"
	// GreedyS: greedy repair for a single FD (§3.2).
	GreedyS Algorithm = "GreedyS"
	// ExactM: optimal repair for multiple FDs over joined maximal
	// independent sets (§4.2).
	ExactM Algorithm = "ExactM"
	// ApproM: per-FD greedy repair joined into targets (§4.3).
	ApproM Algorithm = "ApproM"
	// GreedyM: joint greedy repair with cross-FD synchronization (§4.4).
	GreedyM Algorithm = "GreedyM"
)

// Algorithms lists every available algorithm in presentation order.
func Algorithms() []Algorithm {
	return []Algorithm{ExactS, GreedyS, ExactM, ApproM, GreedyM}
}

// Repair computes an FT-consistent, closed-world repair of rel w.r.t. set
// using the chosen algorithm. The single-FD algorithms (ExactS, GreedyS)
// require len(set.FDs) == 1. The input relation is never modified.
func Repair(rel *Relation, set *Set, cfg *DistConfig, algo Algorithm, opts Options) (*Result, error) {
	switch algo {
	case ExactS, GreedyS:
		if len(set.FDs) != 1 {
			return nil, fmt.Errorf("ftrepair: %s repairs a single FD, set has %d", algo, len(set.FDs))
		}
		if algo == ExactS {
			return repair.ExactS(rel, set.FDs[0], cfg, set.Tau[0], opts)
		}
		return repair.GreedyS(rel, set.FDs[0], cfg, set.Tau[0], opts)
	case ExactM:
		return repair.ExactM(rel, set, cfg, opts)
	case ApproM:
		return repair.ApproM(rel, set, cfg, opts)
	case GreedyM:
		return repair.GreedyM(rel, set, cfg, opts)
	default:
		return nil, fmt.Errorf("ftrepair: unknown algorithm %q", algo)
	}
}

// RepairCFD repairs rel w.r.t. a single conditional functional dependency:
// the tuples matching the CFD's pattern tableau are restricted, repaired
// against the embedded FD with the chosen single-FD algorithm, and written
// back. Unconstrained tuples are untouched. (A set of pure-FD constraints —
// all-wildcard tableaux — should use Repair with ExactM/ApproM/GreedyM
// instead, which repairs them jointly.)
func RepairCFD(rel *Relation, c *CFD, cfg *DistConfig, tau float64, algo Algorithm, opts Options) (*Result, error) {
	if algo != ExactS && algo != GreedyS {
		return nil, fmt.Errorf("ftrepair: RepairCFD supports ExactS or GreedyS, got %q", algo)
	}
	sub, rows := c.Restrict(rel)
	var res *Result
	var err error
	if algo == ExactS {
		res, err = repair.ExactS(sub, c.Embedded, cfg, tau, opts)
	} else {
		res, err = repair.GreedyS(sub, c.Embedded, cfg, tau, opts)
	}
	if err != nil {
		return nil, err
	}
	out := rel.Clone()
	for i, row := range rows {
		copy(out.Tuples[row], res.Repaired.Tuples[i])
	}
	changed, err := dataset.Diff(rel, out)
	if err != nil {
		return nil, err
	}
	stats := res.Stats
	if stats == nil {
		stats = make(map[string]int)
	}
	return &Result{
		Repaired:  out,
		Cost:      cfg.DatabaseCost(rel, out),
		Changed:   changed,
		Algorithm: res.Algorithm + "+CFD",
		Elapsed:   res.Elapsed,
		Stats:     stats,
	}, nil
}

// ReadCSVFile is a small convenience for examples and tools: ReadCSV over
// an opened reader with a type spec.
func ReadCSVFile(r io.Reader, typeSpec string) (*Relation, error) {
	return dataset.ReadCSV(r, typeSpec)
}

// RepairWithMaster composes the two repair families the paper discusses as
// complementary (§2.3): the rule engine first applies its certain,
// master-data-backed fixes, then the cost-based algorithm repairs what the
// rules could not reach. The returned result is measured against the
// original relation; its Stats carry the count of certain fixes.
func RepairWithMaster(rel *Relation, engine *RuleEngine, set *Set, cfg *DistConfig, algo Algorithm, opts Options) (*Result, error) {
	prefixed, fixes := engine.Repair(rel)
	res, err := Repair(prefixed, set, cfg, algo, opts)
	if err != nil {
		return nil, err
	}
	changed, err := dataset.Diff(rel, res.Repaired)
	if err != nil {
		return nil, err
	}
	out := *res
	out.Changed = changed
	out.Cost = cfg.DatabaseCost(rel, res.Repaired)
	out.AddStat("certainFixes", len(fixes))
	return &out, nil
}
