package ftrepair_test

import (
	"errors"
	"strings"
	"testing"

	"ftrepair"
	"ftrepair/internal/gen"
)

func TestRepairDispatch(t *testing.T) {
	dirty, clean := gen.Citizens()
	fds := gen.CitizensFDs(dirty.Schema)
	set, err := ftrepair.NewSet(fds, 0.2, 0.5, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	cfg := ftrepair.DefaultDistConfig(dirty)
	for _, algo := range []ftrepair.Algorithm{ftrepair.ExactM, ftrepair.ApproM, ftrepair.GreedyM} {
		res, err := ftrepair.Repair(dirty, set, cfg, algo, ftrepair.Options{})
		if err != nil {
			t.Fatalf("%s: %v", algo, err)
		}
		if err := ftrepair.VerifyFTConsistent(res.Repaired, set, cfg); err != nil {
			t.Fatalf("%s: %v", algo, err)
		}
		if err := ftrepair.VerifyValid(dirty, res.Repaired, set); err != nil {
			t.Fatalf("%s: %v", algo, err)
		}
	}
	// The exact multi-FD repair recovers the ground truth end to end.
	res, err := ftrepair.Repair(dirty, set, cfg, ftrepair.ExactM, ftrepair.Options{})
	if err != nil {
		t.Fatal(err)
	}
	cells, err := ftrepair.Diff(res.Repaired, clean)
	if err != nil || len(cells) != 0 {
		t.Fatalf("ExactM missed ground truth: %v %v", cells, err)
	}
}

func TestRepairSingleFDDispatch(t *testing.T) {
	dirty, _ := gen.Citizens()
	phi1 := gen.CitizensFDs(dirty.Schema)[0]
	set, err := ftrepair.NewSet([]*ftrepair.FD{phi1}, 0.2)
	if err != nil {
		t.Fatal(err)
	}
	cfg := ftrepair.DefaultDistConfig(dirty)
	for _, algo := range []ftrepair.Algorithm{ftrepair.ExactS, ftrepair.GreedyS} {
		if _, err := ftrepair.Repair(dirty, set, cfg, algo, ftrepair.Options{}); err != nil {
			t.Fatalf("%s: %v", algo, err)
		}
	}
	// Single-FD algorithms reject multi-FD sets.
	multi, err := ftrepair.NewSet(gen.CitizensFDs(dirty.Schema), 0.3)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ftrepair.Repair(dirty, multi, cfg, ftrepair.ExactS, ftrepair.Options{}); err == nil {
		t.Fatal("ExactS accepted a multi-FD set")
	}
	if _, err := ftrepair.Repair(dirty, set, cfg, "Bogus", ftrepair.Options{}); err == nil {
		t.Fatal("unknown algorithm accepted")
	}
}

func TestAlgorithmsList(t *testing.T) {
	if got := ftrepair.Algorithms(); len(got) != 5 || got[0] != ftrepair.ExactS {
		t.Fatalf("Algorithms = %v", got)
	}
}

func TestRepairCFD(t *testing.T) {
	// A CFD constraining only NYC rows: errors in other cities survive.
	schema := ftrepair.Strings("City", "State")
	rel, err := ftrepair.FromRows(schema, [][]string{
		{"NYC", "NY"}, {"NYC", "NY"}, {"NYC", "NJ"}, // NJ conflicts within the pattern
		{"Boston", "MA"}, {"Boston", "RI"}, // unconstrained conflict
	})
	if err != nil {
		t.Fatal(err)
	}
	c, err := ftrepair.ParseCFD(schema, "City -> State | NYC, _")
	if err != nil {
		t.Fatal(err)
	}
	cfg, err := ftrepair.NewDistConfig(rel, 0.7, 0.3)
	if err != nil {
		t.Fatal(err)
	}
	res, err := ftrepair.RepairCFD(rel, c, cfg, 0.3, ftrepair.ExactS, ftrepair.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Repaired.Tuples[2][1] != "NY" {
		t.Fatalf("NYC conflict unrepaired: %v", res.Repaired.Tuples[2])
	}
	if res.Repaired.Tuples[4][1] != "RI" {
		t.Fatalf("unconstrained tuple modified: %v", res.Repaired.Tuples[4])
	}
	if !strings.HasSuffix(res.Algorithm, "+CFD") {
		t.Fatalf("algorithm tag = %q", res.Algorithm)
	}
	if len(res.Changed) != 1 {
		t.Fatalf("changed = %v", res.Changed)
	}
	// Stats is always usable, even when the inner repair reported none.
	if res.Stats == nil {
		t.Fatal("RepairCFD returned nil Stats")
	}
	res.Stats["probe"] = 1 // must not panic on a guarded empty map
	// GreedyS path and validation.
	gres, err := ftrepair.RepairCFD(rel, c, cfg, 0.3, ftrepair.GreedyS, ftrepair.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if gres.Stats == nil {
		t.Fatal("RepairCFD(GreedyS) returned nil Stats")
	}
	if _, err := ftrepair.RepairCFD(rel, c, cfg, 0.3, ftrepair.ExactM, ftrepair.Options{}); err == nil {
		t.Fatal("RepairCFD accepted a multi-FD algorithm")
	}
	if _, err := ftrepair.RepairCFD(rel, c, cfg, 0.3, "Bogus", ftrepair.Options{}); err == nil {
		t.Fatal("RepairCFD accepted an unknown algorithm")
	}
}

func TestRepairCanceledThroughFacade(t *testing.T) {
	dirty, _ := gen.Citizens()
	set, err := ftrepair.NewSet(gen.CitizensFDs(dirty.Schema), 0.2, 0.5, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	cfg := ftrepair.DefaultDistConfig(dirty)
	cancel := make(chan struct{})
	close(cancel)
	res, err := ftrepair.Repair(dirty, set, cfg, ftrepair.GreedyM, ftrepair.Options{Cancel: cancel})
	if !errors.Is(err, ftrepair.ErrCanceled) {
		t.Fatalf("err = %v, want ErrCanceled", err)
	}
	if res == nil {
		t.Fatal("canceled repair returned no partial result")
	}
	if len(res.Changed) != 0 {
		t.Fatalf("pre-canceled repair changed %d cells", len(res.Changed))
	}
}

func TestCSVRoundTripThroughFacade(t *testing.T) {
	in := "City,State\nBoston,MA\nBoston,NY\n"
	rel, err := ftrepair.ReadCSVFile(strings.NewReader(in), "")
	if err != nil {
		t.Fatal(err)
	}
	set, err := ftrepair.NewSet([]*ftrepair.FD{ftrepair.MustParseFD(rel.Schema, "City->State")}, 0.3)
	if err != nil {
		t.Fatal(err)
	}
	cfg, err := ftrepair.NewDistConfig(rel, 0.7, 0.3)
	if err != nil {
		t.Fatal(err)
	}
	res, err := ftrepair.Repair(rel, set, cfg, ftrepair.ExactS, ftrepair.Options{})
	if err != nil {
		t.Fatal(err)
	}
	var out strings.Builder
	if err := ftrepair.WriteCSV(&out, res.Repaired); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "Boston") {
		t.Fatalf("output CSV:\n%s", out.String())
	}
}

func TestRepairWithMaster(t *testing.T) {
	schema := ftrepair.Strings("Zip", "City", "State")
	dirty, err := ftrepair.FromRows(schema, [][]string{
		{"02134", "Boston", "MA"},
		{"02134", "Boston", "MA"},
		{"02134", "Bostn", "MA"}, // typo: rules fix it via master
		{"77701", "Beaumont", "TX"},
		{"77701", "Beaumont", "KS"}, // no master coverage; FT repair fixes it
		{"77701", "Beaumont", "TX"},
		{"77701", "Beaumont", "TX"},
	})
	if err != nil {
		t.Fatal(err)
	}
	master, err := ftrepair.FromRows(ftrepair.Strings("Zip", "City"), [][]string{
		{"02134", "Boston"},
	})
	if err != nil {
		t.Fatal(err)
	}
	rule, err := ftrepair.NewEditingRule(schema, "zip2city", []string{"Zip"}, []string{"City"})
	if err != nil {
		t.Fatal(err)
	}
	engine, err := ftrepair.NewRuleEngine(master, schema, []*ftrepair.EditingRule{rule})
	if err != nil {
		t.Fatal(err)
	}
	set, err := ftrepair.NewSet([]*ftrepair.FD{ftrepair.MustParseFD(schema, "Zip -> State")}, 0.3)
	if err != nil {
		t.Fatal(err)
	}
	cfg, err := ftrepair.NewDistConfig(dirty, 0.7, 0.3)
	if err != nil {
		t.Fatal(err)
	}
	res, err := ftrepair.RepairWithMaster(dirty, engine, set, cfg, ftrepair.GreedyM, ftrepair.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Repaired.Tuples[2][1] != "Boston" {
		t.Fatalf("rule fix missing: %v", res.Repaired.Tuples[2])
	}
	if res.Repaired.Tuples[4][2] != "TX" {
		t.Fatalf("FT fix missing: %v", res.Repaired.Tuples[4])
	}
	if res.Stats["certainFixes"] != 1 {
		t.Fatalf("certainFixes = %d", res.Stats["certainFixes"])
	}
	// Changed cells measured against the ORIGINAL input (both stages).
	if len(res.Changed) != 2 {
		t.Fatalf("changed = %v", res.Changed)
	}
}
