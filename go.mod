module ftrepair

go 1.22
