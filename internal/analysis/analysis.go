// Package analysis is ftrepair's project-specific static-analysis suite: a
// set of analyzers over go/ast + go/types that pin down invariants the
// repair algorithms rely on but the compiler cannot check — cooperative
// cancellation polled inside unbounded loops, nil-guarded Stats maps,
// Stats writes routed through Result.AddStat outside the packages that own
// the obs-registry flush, epsilon-based float comparisons, locks never
// copied by value, and idiomatic error construction.
//
// The analyzer logic is framework-agnostic: each analyzer is a pure
// function from a type-checked package (a Pass) to diagnostics, mirroring
// golang.org/x/tools/go/analysis so the suite can be rehosted on
// multichecker unchanged when the dependency is available. The build
// environment here has no module proxy, so cmd/repairlint drives the same
// analyzers on a small stdlib-only loader (internal/analysis/load).
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// Diagnostic is one finding: a position in the analyzed package and a
// human-readable message.
type Diagnostic struct {
	Pos     token.Pos
	Message string
}

// Pass carries one type-checked package through an analyzer run. It is the
// stdlib-only mirror of x/tools' analysis.Pass.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	Files    []*ast.File
	Pkg      *types.Package
	Info     *types.Info
	Report   func(Diagnostic)
}

// Reportf reports a formatted diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.Report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// Analyzer is one named check. Run inspects the Pass and reports findings;
// a non-nil error means the analyzer itself failed (not that code is bad).
type Analyzer struct {
	Name string
	Doc  string
	Run  func(*Pass) error
}

// All returns every analyzer in the suite, in stable order: the AST-local
// checks from the original suite first, then the determinism, concurrency
// and observability analyzers that came with the CFG layer.
func All() []*Analyzer {
	return []*Analyzer{
		CancelPoll,
		StatsGuard,
		ObsGuard,
		FloatEq,
		LockCopy,
		ErrFmt,
		MapIter,
		BitsetIter,
		NonDeterm,
		AtomicMix,
		GoGuard,
		SpanEnd,
		LedgerWrite,
	}
}

// ByName resolves a comma-separated analyzer list against the suite,
// erroring on unknown names. An empty spec selects every analyzer.
func ByName(names []string) ([]*Analyzer, error) {
	if len(names) == 0 {
		return All(), nil
	}
	byName := make(map[string]*Analyzer)
	for _, a := range All() {
		byName[a.Name] = a
	}
	out := make([]*Analyzer, 0, len(names))
	for _, n := range names {
		a, ok := byName[n]
		if !ok {
			return nil, fmt.Errorf("analysis: unknown analyzer %q", n)
		}
		out = append(out, a)
	}
	return out, nil
}

// funcUnit is one function body analyzed in isolation: a FuncDecl or a
// FuncLit. Nested function literals are split into their own units so that
// a closure's loops are judged against the closure's own signature, not the
// enclosing function's.
type funcUnit struct {
	name string
	sig  *types.Signature
	body *ast.BlockStmt
}

// funcUnits collects every function body in the file set of the pass.
func funcUnits(pass *Pass) []funcUnit {
	var units []funcUnit
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			sig, _ := pass.Info.Defs[fd.Name].Type().(*types.Signature)
			units = append(units, funcUnit{name: fd.Name.Name, sig: sig, body: fd.Body})
			units = append(units, literalUnits(pass, fd.Name.Name, fd.Body)...)
		}
	}
	return units
}

// literalUnits extracts nested FuncLit bodies (recursively) as units.
func literalUnits(pass *Pass, outer string, body *ast.BlockStmt) []funcUnit {
	var units []funcUnit
	ast.Inspect(body, func(n ast.Node) bool {
		lit, ok := n.(*ast.FuncLit)
		if !ok {
			return true
		}
		sig, _ := pass.Info.Types[lit].Type.(*types.Signature)
		units = append(units, funcUnit{name: outer + ".func", sig: sig, body: lit.Body})
		units = append(units, literalUnits(pass, outer+".func", lit.Body)...)
		return false
	})
	return units
}

// inspectShallow walks n without descending into nested function literals,
// so statements of a unit are attributed to that unit alone.
func inspectShallow(n ast.Node, fn func(ast.Node) bool) {
	ast.Inspect(n, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		return fn(n)
	})
}
