// Package analyzertest runs an analyzer over a testdata package and checks
// its diagnostics against // want annotations, in the style of
// golang.org/x/tools/go/analysis/analysistest (stdlib-only, so it works in
// the offline build environment).
//
// A source line expecting diagnostics carries a trailing comment:
//
//	res.Stats["k"] = 1 // want `nil check`
//
// Each back-quoted or double-quoted string is a regular expression that
// must match the message of one diagnostic reported on that line; lines
// without annotations must produce no diagnostics.
//
// The harness applies //lint:ignore suppression exactly as cmd/repairlint
// does: a diagnostic covered by a well-formed directive for its analyzer is
// dropped before matching, so fixtures prove both that an analyzer fires
// and that its findings can be suppressed with a justified directive.
//
// Fixtures may span multiple files (every non-test .go file in dir is one
// package) and may import sibling fixture packages by a path relative to
// dir's parent — see load.Dir — for cross-package cases.
package analyzertest

import (
	"fmt"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"testing"

	"ftrepair/internal/analysis"
	"ftrepair/internal/analysis/load"
)

// wantRE captures the quoted expectations of a // want comment.
var wantRE = regexp.MustCompile("`[^`]*`|\"[^\"]*\"")

// Run loads the package in dir, applies the analyzer, and reports any
// mismatch between diagnostics and // want annotations as test failures.
func Run(t *testing.T, analyzer *analysis.Analyzer, dir string) {
	t.Helper()
	pkg, err := load.Dir(dir)
	if err != nil {
		t.Fatalf("loading %s: %v", dir, err)
	}
	for _, terr := range pkg.TypeErrors {
		t.Fatalf("type error in %s: %v", dir, terr)
	}

	wants := collectWants(t, pkg)
	var diags []analysis.Diagnostic
	pass := &analysis.Pass{
		Analyzer: analyzer,
		Fset:     pkg.Fset,
		Files:    pkg.Files,
		Pkg:      pkg.Types,
		Info:     pkg.Info,
		Report:   func(d analysis.Diagnostic) { diags = append(diags, d) },
	}
	if err := analyzer.Run(pass); err != nil {
		t.Fatalf("%s failed on %s: %v", analyzer.Name, dir, err)
	}

	// Drop suppressed diagnostics the same way the driver does, so
	// fixtures can carry //lint:ignore cases.
	ignores := analysis.ParseIgnores(pkg.Fset, pkg.Files)
	kept := diags[:0]
	for _, d := range diags {
		pos := pkg.Fset.Position(d.Pos)
		if ignores.Suppressed(pos.Filename, pos.Line, analyzer.Name) == nil {
			kept = append(kept, d)
		}
	}
	diags = kept

	matched := make([]bool, len(wants))
	for _, d := range diags {
		pos := pkg.Fset.Position(d.Pos)
		key := fmt.Sprintf("%s:%d", pos.Filename, pos.Line)
		found := false
		for i, w := range wants {
			if matched[i] || w.key != key {
				continue
			}
			if w.re.MatchString(d.Message) {
				matched[i] = true
				found = true
				break
			}
		}
		if !found {
			t.Errorf("%s: unexpected diagnostic: %s", pos, d.Message)
		}
	}
	for i, w := range wants {
		if !matched[i] {
			t.Errorf("%s: no diagnostic matching %q", w.key, w.re)
		}
	}
}

type want struct {
	key string // "filename:line"
	re  *regexp.Regexp
}

// collectWants extracts every // want annotation of the package, keyed by
// the line the comment sits on.
func collectWants(t *testing.T, pkg *load.Package) []want {
	t.Helper()
	var wants []want
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimPrefix(c.Text, "//")
				idx := strings.Index(text, "want ")
				if idx < 0 {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				for _, q := range wantRE.FindAllString(text[idx+len("want "):], -1) {
					expr := q[1 : len(q)-1]
					if q[0] == '"' {
						if unq, err := strconv.Unquote(q); err == nil {
							expr = unq
						}
					}
					re, err := regexp.Compile(expr)
					if err != nil {
						t.Fatalf("%s: bad want pattern %s: %v", pos, q, err)
					}
					wants = append(wants, want{key: fmt.Sprintf("%s:%d", pos.Filename, pos.Line), re: re})
				}
			}
		}
	}
	sort.Slice(wants, func(i, j int) bool { return wants[i].key < wants[j].key })
	return wants
}
