package analysis

import (
	"go/ast"
	"go/types"
)

// AtomicMix reports struct fields accessed both through sync/atomic
// call-style primitives (atomic.AddInt64(&s.n, 1), atomic.LoadUint64(&s.w))
// and by plain loads or stores elsewhere in the package. A field either
// belongs to the atomic domain or it does not: one plain `s.n++` next to
// atomic adders is a lost-update and torn-read bug the race detector only
// catches when the interleaving happens to fire. The B&B incumbent
// watermark pattern (PR 4) is the local precedent — it avoided the trap by
// using the atomic.Uint64 wrapper type, which makes plain access
// impossible; this analyzer pins the discipline for fields that stay on
// the call-style API.
//
// Fields of the wrapper types (atomic.Int64, atomic.Uint64, ...) are out of
// scope: methods are the only access path, and `go vet -copylocks` guards
// their copying.
var AtomicMix = &Analyzer{
	Name: "atomicmix",
	Doc:  "flags struct fields accessed both via sync/atomic calls and by plain load/store",
	Run:  runAtomicMix,
}

func runAtomicMix(pass *Pass) error {
	// Pass 1: fields handed by address to a sync/atomic function, plus the
	// exact selector nodes used there (excluded from pass 2).
	atomicFields := make(map[*types.Var]string) // field -> atomic func name seen
	inAtomicCall := make(map[*ast.SelectorExpr]bool)
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn, ok := call.Fun.(*ast.SelectorExpr)
			if !ok || !isPkgFunc(pass, fn, "sync/atomic", fn.Sel.Name) {
				return true
			}
			for _, arg := range call.Args {
				un, ok := arg.(*ast.UnaryExpr)
				if !ok || un.Op.String() != "&" {
					continue
				}
				sel, ok := un.X.(*ast.SelectorExpr)
				if !ok {
					continue
				}
				if fv := fieldOf(pass, sel); fv != nil {
					if _, seen := atomicFields[fv]; !seen {
						atomicFields[fv] = "atomic." + fn.Sel.Name
					}
					inAtomicCall[sel] = true
				}
			}
			return true
		})
	}
	if len(atomicFields) == 0 {
		return nil
	}
	// Pass 2: any other selector reaching one of those fields is a plain
	// access.
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok || inAtomicCall[sel] {
				return true
			}
			fv := fieldOf(pass, sel)
			if fv == nil {
				return true
			}
			if fnName, mixed := atomicFields[fv]; mixed {
				pass.Reportf(sel.Pos(), "plain access to field %s, elsewhere accessed via %s: mixing atomic and non-atomic access tears reads and loses updates; use atomic for every access (or an atomic.%s-style wrapper field)", fv.Name(), fnName, wrapperHint(fv.Type()))
			}
			return true
		})
	}
	return nil
}

// fieldOf resolves sel to the struct field it selects, or nil.
func fieldOf(pass *Pass, sel *ast.SelectorExpr) *types.Var {
	s, ok := pass.Info.Selections[sel]
	if !ok || s.Kind() != types.FieldVal {
		return nil
	}
	v, _ := s.Obj().(*types.Var)
	return v
}

// wrapperHint names the sync/atomic wrapper type matching a field's type.
func wrapperHint(t types.Type) string {
	b, ok := t.Underlying().(*types.Basic)
	if !ok {
		return "Value"
	}
	switch b.Kind() {
	case types.Int32:
		return "Int32"
	case types.Int64, types.Int:
		return "Int64"
	case types.Uint32:
		return "Uint32"
	case types.Uint64, types.Uint, types.Uintptr:
		return "Uint64"
	case types.Bool:
		return "Bool"
	}
	return "Value"
}
