package analysis_test

import (
	"testing"

	"ftrepair/internal/analysis"
	"ftrepair/internal/analysis/analyzertest"
)

// TestAtomicMix: fields mixing atomic.* access with plain loads/stores are
// flagged at the plain site; consistently atomic and consistently plain
// fields are not, and a justified directive suppresses.
func TestAtomicMix(t *testing.T) {
	analyzertest.Run(t, analysis.AtomicMix, "testdata/src/atomicmix")
}
