package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// BitsetIter enforces the index-addressed iteration discipline of the hot
// enumeration packages — internal/mis and internal/vgraph. Since the
// arena/bitset refactor, every per-vertex structure there is addressed by
// dense vertex index (CSR adjacency, bitset membership), and iteration is
// expected to go through bitset.Set.IterateOnes, a CSR offset range, or a
// sorted index slice — all deterministic, allocation-free, and
// cache-friendly. A `range` over a map inside these packages defeats all
// three properties at once: Go randomizes map order (a determinism hazard
// the bit-identical contract cannot tolerate in enumeration loops), and a
// map in the hot path usually marks state that regressed from the arena
// layout back to pointer-chasing hashing.
//
// The analyzer therefore flags EVERY range-over-map in the gated packages,
// regardless of loop body — stricter than mapiter (which allows
// order-insensitive folds everywhere else). Maps remain fine as lookup
// tables (byKey[k], byHash[h]); only ranging over one is flagged. The rare
// legitimate map walk (e.g. draining a cache where order provably cannot
// escape) is suppressed with //lint:ignore bitsetiter <reason>.
var BitsetIter = &Analyzer{
	Name: "bitsetiter",
	Doc:  "flags range-over-map in internal/mis and internal/vgraph; hot enumeration must use IterateOnes or sorted index order",
	Run:  runBitsetIter,
}

// bitsetIterChecked reports whether pkg is one of the index-addressed hot
// packages. The gate is by import-path suffix, mirroring nondeterm, so the
// testdata fixtures can opt in by directory layout.
func bitsetIterChecked(pkg string) bool {
	for _, suf := range []string{"internal/mis", "internal/vgraph"} {
		if strings.HasSuffix(pkg, suf) {
			return true
		}
	}
	return false
}

func runBitsetIter(pass *Pass) error {
	if pass.Pkg == nil || !bitsetIterChecked(pass.Pkg.Path()) {
		return nil
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			rng, ok := n.(*ast.RangeStmt)
			if !ok {
				return true
			}
			tv, ok := pass.Info.Types[rng.X]
			if !ok || tv.Type == nil {
				return true
			}
			if _, isMap := tv.Type.Underlying().(*types.Map); !isMap {
				return true
			}
			pass.Reportf(rng.Pos(), "range over map %s in an index-addressed hot package: map order is randomized and map iteration bypasses the arena layout; iterate bitset.IterateOnes or a sorted index range instead", exprText(rng.X))
			return true
		})
	}
	return nil
}
