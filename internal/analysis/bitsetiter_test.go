package analysis_test

import (
	"testing"

	"ftrepair/internal/analysis"
	"ftrepair/internal/analysis/analyzertest"
)

// TestBitsetIter runs the gated fixture, whose import path ends in
// internal/mis: every range-over-map is flagged (even order-insensitive
// folds), lookups and slice ranges are not, and a justified //lint:ignore
// suppresses.
func TestBitsetIter(t *testing.T) {
	analyzertest.Run(t, analysis.BitsetIter, "testdata/src/bitsetiter/internal/mis")
}

// TestBitsetIterUngated runs the same shapes outside the hot packages: the
// import-path gate keeps the analyzer silent.
func TestBitsetIterUngated(t *testing.T) {
	analyzertest.Run(t, analysis.BitsetIter, "testdata/src/bitsetiter")
}
