package analysis

import (
	"go/ast"
	"go/types"
	"strings"

	"ftrepair/internal/analysis/cfg"
)

// CancelPoll reports loops that can run unboundedly long without polling
// the cooperative-cancellation channel.
//
// A function participates in cooperative cancellation when its signature
// (receiver or parameters) carries a cancel channel: a chan struct{} in any
// direction, or a struct — like repair.Options or mis.Options — with a
// channel field named Cancel. Inside such functions, two loop shapes are
// required to poll:
//
//   - condition-only and infinite for loops (for { ... }, for cond { ... }),
//     whose trip count is data-dependent — the ExactS/ExactM expansion
//     search, the greedy set growth, the best-first target search;
//   - range loops that dispatch into cancellation-aware work: somewhere in
//     the loop a call passes a cancel channel or a cancel-carrying options
//     value (repairComp(..., opts, ...), greedySet(g, opts.Cancel),
//     mis.BestMIS(g, mis.Options{Cancel: ...})). Skipping the poll in such
//     a loop breaks end-to-end cancellation: the callee unwinds promptly
//     but the loop marches on to the next component, FD or candidate.
//
// A loop nest is considered responsive when a poll — a call whose name
// mentions cancel (canceled(ch), pollCancel(...)), a direct receive, or a
// select with a receive from a cancel/done/quit-style channel — lies on an
// iterating path of the loop or of an enclosing loop. That judgment is
// control-flow based (internal/analysis/cfg.OnCycle): the poll's block
// must sit on a cycle through the loop header, so a poll parked on an arm
// that immediately returns or breaks does not count — it runs once on the
// way out, not once per iteration, which is exactly the shape the old
// syntactic matcher was blind to. Bounded three-clause setup scans
// (for i := 0; i < n; i++) and range loops doing plain per-element work
// are exempt: their trip counts are input-sized and each iteration is
// cheap, so flagging them would drown the signal.
var CancelPoll = &Analyzer{
	Name: "cancelpoll",
	Doc:  "flags unbounded loops in cancellation-aware functions that never poll the Cancel channel",
	Run:  runCancelPoll,
}

func runCancelPoll(pass *Pass) error {
	for _, unit := range funcUnits(pass) {
		if unit.sig == nil || !signatureCarriesCancel(unit.sig) {
			continue
		}
		// One CFG per gated unit answers every on-cycle poll query for its
		// loops; ungated units never pay for construction.
		g := cfg.New(unit.body)
		checkCancelLoops(pass, g, unit.body.List, nil, false)
	}
	return nil
}

// checkCancelLoops walks statements, tracking the enclosing loop statements
// and whether an enclosing loop was already reported, and flags checked
// loops with no poll on an iterating path.
func checkCancelLoops(pass *Pass, g *cfg.Graph, stmts []ast.Stmt, enclosing []ast.Stmt, reported bool) {
	for _, s := range stmts {
		checkCancelStmt(pass, g, s, enclosing, reported)
	}
}

// checkCancelStmt dispatches one statement. enclosing holds the loop
// statements the walk is currently inside (innermost last).
func checkCancelStmt(pass *Pass, g *cfg.Graph, s ast.Stmt, enclosing []ast.Stmt, reported bool) {
	switch st := s.(type) {
	case *ast.ForStmt:
		checked := st.Init == nil && st.Post == nil
		reported = flagCancelLoop(pass, g, s, "for", checked, enclosing, reported)
		checkCancelLoops(pass, g, st.Body.List, append(enclosing, s), reported)
	case *ast.RangeStmt:
		checked := containsCancelAwareCall(pass, st.Body)
		reported = flagCancelLoop(pass, g, s, "range", checked, enclosing, reported)
		checkCancelLoops(pass, g, st.Body.List, append(enclosing, s), reported)
	case *ast.BlockStmt:
		checkCancelLoops(pass, g, st.List, enclosing, reported)
	case *ast.IfStmt:
		checkCancelStmt(pass, g, st.Body, enclosing, reported)
		if st.Else != nil {
			checkCancelStmt(pass, g, st.Else, enclosing, reported)
		}
	case *ast.SwitchStmt:
		for _, c := range st.Body.List {
			if cc, ok := c.(*ast.CaseClause); ok {
				checkCancelLoops(pass, g, cc.Body, enclosing, reported)
			}
		}
	case *ast.TypeSwitchStmt:
		for _, c := range st.Body.List {
			if cc, ok := c.(*ast.CaseClause); ok {
				checkCancelLoops(pass, g, cc.Body, enclosing, reported)
			}
		}
	case *ast.SelectStmt:
		for _, c := range st.Body.List {
			if cc, ok := c.(*ast.CommClause); ok {
				checkCancelLoops(pass, g, cc.Body, enclosing, reported)
			}
		}
	case *ast.LabeledStmt:
		checkCancelStmt(pass, g, st.Stmt, enclosing, reported)
	}
}

// flagCancelLoop reports the loop when it is a checked shape with no poll
// on an iterating path of its own cycle or any enclosing loop's, and
// nothing enclosing was already reported. It returns whether the subtree
// now counts as reported.
func flagCancelLoop(pass *Pass, g *cfg.Graph, loop ast.Stmt, kind string, checked bool, enclosing []ast.Stmt, reported bool) bool {
	if !checked || reported {
		return reported
	}
	if g.OnCycle(loop, containsCancelPoll) {
		return reported
	}
	for _, enc := range enclosing {
		if g.OnCycle(enc, containsCancelPoll) {
			return reported
		}
	}
	pass.Reportf(loop.Pos(), "%s loop never polls the cancel channel on an iterating path; poll canceled(...) or select on it so the loop stays cancelable", kind)
	return true
}

// signatureCarriesCancel reports whether the receiver or a parameter makes
// a cancel channel reachable.
func signatureCarriesCancel(sig *types.Signature) bool {
	if r := sig.Recv(); r != nil && typeCarriesCancel(r.Type()) {
		return true
	}
	params := sig.Params()
	for i := 0; i < params.Len(); i++ {
		if typeCarriesCancel(params.At(i).Type()) {
			return true
		}
	}
	return false
}

// typeCarriesCancel reports whether t is a cancel channel (chan struct{} in
// any direction) or a struct — possibly behind a pointer — with a channel
// field named Cancel.
func typeCarriesCancel(t types.Type) bool {
	switch u := t.Underlying().(type) {
	case *types.Chan:
		elem, ok := u.Elem().Underlying().(*types.Struct)
		return ok && elem.NumFields() == 0
	case *types.Pointer:
		return typeCarriesCancel(u.Elem())
	case *types.Struct:
		for i := 0; i < u.NumFields(); i++ {
			f := u.Field(i)
			if f.Name() != "Cancel" {
				continue
			}
			if _, ok := f.Type().Underlying().(*types.Chan); ok {
				return true
			}
		}
	}
	return false
}

// containsCancelAwareCall reports whether n contains a call that hands
// cancellation to the callee: any argument is a cancel channel or a
// cancel-carrying options value (per typeCarriesCancel). Such calls mark
// the loop as part of a cancellation-aware pipeline, so the loop itself
// must also poll — otherwise a canceled callee unwinds promptly but the
// loop keeps dispatching the next component or candidate.
func containsCancelAwareCall(pass *Pass, n ast.Node) bool {
	found := false
	ast.Inspect(n, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if strings.Contains(strings.ToLower(leafName(call.Fun)), "cancel") {
			// Polls like canceled(opts.Cancel) are handled by
			// containsCancelPoll; they do not make a loop "checked".
			return true
		}
		for _, arg := range call.Args {
			tv, ok := pass.Info.Types[arg]
			if ok && tv.Type != nil && typeCarriesCancel(tv.Type) {
				found = true
				return false
			}
		}
		return true
	})
	return found
}

// containsCancelPoll reports whether n contains a cancellation poll: a call
// whose name mentions cancel, a receive from a cancel-style channel, or a
// select with such a receive. Function literals inside n count — a poll in
// a per-iteration closure still keeps the nest responsive.
func containsCancelPoll(n ast.Node) bool {
	found := false
	ast.Inspect(n, func(n ast.Node) bool {
		if found {
			return false
		}
		switch e := n.(type) {
		case *ast.CallExpr:
			if strings.Contains(strings.ToLower(leafName(e.Fun)), "cancel") {
				found = true
			}
		case *ast.UnaryExpr:
			if e.Op.String() == "<-" && cancelChannelName(leafName(e.X)) {
				found = true
			}
		}
		return !found
	})
	return found
}

// cancelChannelName reports whether a channel identifier reads like a
// cancellation signal.
func cancelChannelName(name string) bool {
	l := strings.ToLower(name)
	for _, s := range []string{"cancel", "done", "quit", "stop"} {
		if strings.Contains(l, s) {
			return true
		}
	}
	return false
}

// leafName extracts the rightmost identifier of an expression chain:
// x → x, a.b.C → C, f() → f, (x) → x.
func leafName(e ast.Expr) string {
	switch x := e.(type) {
	case *ast.Ident:
		return x.Name
	case *ast.SelectorExpr:
		return x.Sel.Name
	case *ast.CallExpr:
		return leafName(x.Fun)
	case *ast.ParenExpr:
		return leafName(x.X)
	case *ast.IndexExpr:
		return leafName(x.X)
	}
	return ""
}
