package analysis_test

import (
	"testing"

	"ftrepair/internal/analysis"
	"ftrepair/internal/analysis/analyzertest"
)

func TestCancelPoll(t *testing.T) {
	analyzertest.Run(t, analysis.CancelPoll, "testdata/src/cancelpoll")
}
