// Package cfg builds intraprocedural control-flow graphs over go/ast
// statements, with no dependency outside the standard library. It exists so
// the analyzers in internal/analysis can answer path questions the AST
// alone cannot: "does every return path End this span?" (spanend), "is this
// cancellation poll on an iterating path of the loop, or only on the way
// out?" (cancelpoll). The graphs are deliberately small and conservative —
// one graph per function body, basic blocks of ast.Stmt, a virtual Exit
// block that return statements, panics and the fall-off-the-end path all
// feed — because the analyzers need reachability and all-paths queries, not
// SSA.
//
// Branch conditions (if/for conditions, switch tags and case expressions,
// select communication clauses) are attached to the block that evaluates
// them (Block.Conds), not to the successor blocks, so a predicate like "this
// block polls the cancel channel" sees `case <-cancel:` at the select's
// dispatch point — the place it actually blocks — rather than inside the
// clause body that runs afterwards.
package cfg

import (
	"go/ast"
	"go/token"
)

// Block is one basic block: a maximal run of statements with a single entry
// point, ending at a control transfer. Succs are the blocks control can
// reach next; the virtual Exit block collects every way out of the function.
type Block struct {
	Index int
	// Stmts are the statements executed in this block, in order. Compound
	// statements (if/for/switch/select) never appear here — their pieces are
	// split across blocks — but plain statements (assignments, calls, sends,
	// defers, go statements, declarations) do.
	Stmts []ast.Stmt
	// Conds are the expressions or communication clauses this block
	// evaluates to choose a successor: an if or for condition, a range
	// operand, switch tag and case expressions, select comm statements.
	Conds []ast.Node
	// Succs are the possible next blocks.
	Succs []*Block
	// Panics marks a block that ends in a call that never returns (panic,
	// runtime.Goexit, os.Exit, log.Fatal*, testing's t.Fatal*). Its edge to
	// Exit models unwinding, and queries can choose to exempt such paths.
	Panics bool
	// unreachable marks blocks created for code after an unconditional
	// control transfer (statements after return/break/goto). They are kept
	// so every statement maps to a block, but they have no predecessors.
	unreachable bool
}

// Graph is the control-flow graph of one function body.
type Graph struct {
	Blocks []*Block
	Entry  *Block
	// Exit is virtual: it holds no statements and collects returns, panics
	// and the implicit return at the end of the body.
	Exit *Block

	stmtBlock map[ast.Stmt]*Block
	loopHead  map[ast.Stmt]*Block
}

// New builds the CFG of body. A nil body yields a graph whose entry falls
// straight through to exit.
func New(body *ast.BlockStmt) *Graph {
	g := &Graph{
		stmtBlock: make(map[ast.Stmt]*Block),
		loopHead:  make(map[ast.Stmt]*Block),
	}
	b := &builder{g: g, labels: make(map[string]*Block)}
	g.Entry = b.newBlock()
	g.Exit = b.newBlock()
	b.cur = g.Entry
	if body != nil {
		b.stmtList(body.List)
	}
	b.jump(b.cur, g.Exit)
	b.resolveGotos()
	return g
}

// BlockOf returns the block executing statement s, or nil when s is not a
// plain statement of this graph (compound statements span several blocks).
func (g *Graph) BlockOf(s ast.Stmt) *Block { return g.stmtBlock[s] }

// LoopHead returns the header block of a For or Range statement: the block
// re-entered on every iteration (it evaluates the loop condition or the
// next range element). Nil when s is not a loop of this graph.
func (g *Graph) LoopHead(s ast.Stmt) *Block { return g.loopHead[s] }

// Reaches reports whether control can flow from block `from` to block `to`
// along one or more edges (a block does not trivially reach itself; it does
// when it sits on a cycle).
func (g *Graph) Reaches(from, to *Block) bool {
	seen := make([]bool, len(g.Blocks))
	var stack []*Block
	stack = append(stack, from.Succs...)
	for len(stack) > 0 {
		b := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if b == to {
			return true
		}
		if seen[b.Index] {
			continue
		}
		seen[b.Index] = true
		stack = append(stack, b.Succs...)
	}
	return false
}

// OnCycle reports whether some statement or condition inside loop (a For or
// Range statement of this graph) satisfying hit lies on a cycle through the
// loop header — i.e. it runs on iterating paths, not only on the way out of
// the loop. The loop's own condition counts: a poll in `for !canceled(ch)`
// or in a select the loop blocks on is executed every iteration.
func (g *Graph) OnCycle(loop ast.Stmt, hit func(ast.Node) bool) bool {
	head := g.loopHead[loop]
	if head == nil {
		return false
	}
	lo, hi := loop.Pos(), loop.End()
	within := func(n ast.Node) bool { return n.Pos() >= lo && n.End() <= hi }
	for _, b := range g.Blocks {
		found := false
		for _, s := range b.Stmts {
			if within(s) && hit(s) {
				found = true
				break
			}
		}
		if !found {
			for _, c := range b.Conds {
				if within(c) && hit(c) {
					found = true
					break
				}
			}
		}
		if !found {
			continue
		}
		// The hit must iterate: its block is the header itself (re-entered
		// each round) on a real cycle, or a body block that can reach the
		// header again.
		if b == head {
			if g.Reaches(head, head) {
				return true
			}
			continue
		}
		if g.Reaches(head, b) && g.Reaches(b, head) {
			return true
		}
	}
	return false
}

// EveryPathHits reports whether every path from just after statement index
// i of block b to Exit passes a statement or condition for which hit
// returns true. Pass i = -1 to start at the beginning of b. When
// exemptPanic is true, paths that unwind through a panicking block are not
// required to hit (a deferred cleanup covers them instead). Paths trapped
// in an infinite loop never reach Exit and so never fail the query.
func (g *Graph) EveryPathHits(b *Block, i int, hit func(ast.Node) bool, exemptPanic bool) bool {
	// A block is "clean" when scanning it start-to-end finds no hit; the
	// query fails iff Exit is reachable through clean blocks only.
	clean := func(blk *Block, from int) bool {
		for j := from; j < len(blk.Stmts); j++ {
			if hit(blk.Stmts[j]) {
				return false
			}
		}
		for _, c := range blk.Conds {
			if hit(c) {
				return false
			}
		}
		return true
	}
	if !clean(b, i+1) {
		return true
	}
	if b == g.Exit {
		return false
	}
	seen := make([]bool, len(g.Blocks))
	var stack []*Block
	push := func(blk *Block) {
		if !seen[blk.Index] {
			seen[blk.Index] = true
			stack = append(stack, blk)
		}
	}
	if !(exemptPanic && b.Panics) {
		for _, s := range b.Succs {
			push(s)
		}
	}
	for len(stack) > 0 {
		blk := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if blk == g.Exit {
			return false
		}
		if !clean(blk, 0) {
			continue
		}
		if exemptPanic && blk.Panics {
			continue
		}
		for _, s := range blk.Succs {
			push(s)
		}
	}
	return true
}

// builder threads the construction state: the current block (nil after an
// unconditional transfer — following statements are unreachable), the
// break/continue target stacks, and label bookkeeping for goto.
type builder struct {
	g   *Graph
	cur *Block

	// breakables and continuables are target stacks; entries carry the
	// optional statement label so `break L` / `continue L` resolve.
	breakables   []ctrlTarget
	continuables []ctrlTarget

	// pendingLabel is the label of a LabeledStmt whose inner statement is
	// about to be built; loops and switches consume it.
	pendingLabel string

	labels map[string]*Block
	gotos  []pendingGoto
}

type ctrlTarget struct {
	label string
	block *Block
}

type pendingGoto struct {
	from  *Block
	label string
}

func (b *builder) newBlock() *Block {
	blk := &Block{Index: len(b.g.Blocks)}
	b.g.Blocks = append(b.g.Blocks, blk)
	return blk
}

func (b *builder) jump(from, to *Block) {
	if from == nil {
		return
	}
	for _, s := range from.Succs {
		if s == to {
			return
		}
	}
	from.Succs = append(from.Succs, to)
}

// ensure returns the current block, materializing an unreachable one for
// statements that follow an unconditional transfer.
func (b *builder) ensure() *Block {
	if b.cur == nil {
		b.cur = b.newBlock()
		b.cur.unreachable = true
	}
	return b.cur
}

func (b *builder) stmtList(list []ast.Stmt) {
	for _, s := range list {
		b.stmt(s)
	}
}

func (b *builder) add(s ast.Stmt) {
	blk := b.ensure()
	blk.Stmts = append(blk.Stmts, s)
	b.g.stmtBlock[s] = blk
}

func (b *builder) stmt(s ast.Stmt) {
	label := b.pendingLabel
	b.pendingLabel = ""
	switch st := s.(type) {
	case *ast.BlockStmt:
		b.stmtList(st.List)
	case *ast.LabeledStmt:
		// Start a fresh block so goto targets and labeled loops have a
		// well-defined entry point.
		lbl := b.newBlock()
		b.jump(b.cur, lbl)
		b.cur = lbl
		b.labels[st.Label.Name] = lbl
		b.pendingLabel = st.Label.Name
		b.stmt(st.Stmt)
	case *ast.ReturnStmt:
		b.add(st)
		b.jump(b.cur, b.g.Exit)
		b.cur = nil
	case *ast.BranchStmt:
		b.branch(st)
	case *ast.IfStmt:
		b.ifStmt(st)
	case *ast.ForStmt:
		b.forStmt(st, label)
	case *ast.RangeStmt:
		b.rangeStmt(st, label)
	case *ast.SwitchStmt:
		if st.Init != nil {
			b.stmt(st.Init)
		}
		b.switchBody(st, st.Tag, nil, st.Body, label)
	case *ast.TypeSwitchStmt:
		if st.Init != nil {
			b.stmt(st.Init)
		}
		b.switchBody(st, nil, st.Assign, st.Body, label)
	case *ast.SelectStmt:
		b.selectStmt(st, label)
	default:
		// Plain statement: assignment, call, send, inc/dec, defer, go,
		// declaration, empty. Calls that never return end the block.
		b.add(s)
		if terminates(s) {
			blk := b.cur
			blk.Panics = true
			b.jump(blk, b.g.Exit)
			b.cur = nil
		}
	}
}

func (b *builder) branch(st *ast.BranchStmt) {
	b.add(st)
	name := ""
	if st.Label != nil {
		name = st.Label.Name
	}
	switch st.Tok {
	case token.BREAK:
		if t := findTarget(b.breakables, name); t != nil {
			b.jump(b.cur, t)
		} else {
			b.jump(b.cur, b.g.Exit)
		}
	case token.CONTINUE:
		if t := findTarget(b.continuables, name); t != nil {
			b.jump(b.cur, t)
		} else {
			b.jump(b.cur, b.g.Exit)
		}
	case token.GOTO:
		b.gotos = append(b.gotos, pendingGoto{from: b.cur, label: name})
	case token.FALLTHROUGH:
		// Handled by switchBody, which links the clause to its successor;
		// nothing to do here.
		return
	}
	b.cur = nil
}

func findTarget(stack []ctrlTarget, label string) *Block {
	for i := len(stack) - 1; i >= 0; i-- {
		if label == "" || stack[i].label == label {
			return stack[i].block
		}
	}
	return nil
}

func (b *builder) ifStmt(st *ast.IfStmt) {
	if st.Init != nil {
		b.stmt(st.Init)
	}
	cond := b.ensure()
	cond.Conds = append(cond.Conds, st.Cond)
	then := b.newBlock()
	after := b.newBlock()
	b.jump(cond, then)
	b.cur = then
	b.stmtList(st.Body.List)
	b.jump(b.cur, after)
	if st.Else != nil {
		els := b.newBlock()
		b.jump(cond, els)
		b.cur = els
		b.stmt(st.Else)
		b.jump(b.cur, after)
	} else {
		b.jump(cond, after)
	}
	b.cur = after
}

func (b *builder) forStmt(st *ast.ForStmt, label string) {
	if st.Init != nil {
		b.stmt(st.Init)
	}
	head := b.newBlock()
	if st.Cond != nil {
		head.Conds = append(head.Conds, st.Cond)
	}
	b.jump(b.cur, head)
	b.g.loopHead[st] = head

	body := b.newBlock()
	after := b.newBlock()
	b.jump(head, body)
	if st.Cond != nil {
		b.jump(head, after)
	}

	// continue re-runs Post (when present) before re-testing the condition.
	cont := head
	var post *Block
	if st.Post != nil {
		post = b.newBlock()
		cont = post
	}
	b.breakables = append(b.breakables, ctrlTarget{label, after})
	b.continuables = append(b.continuables, ctrlTarget{label, cont})
	b.cur = body
	b.stmtList(st.Body.List)
	b.breakables = b.breakables[:len(b.breakables)-1]
	b.continuables = b.continuables[:len(b.continuables)-1]
	if post != nil {
		b.jump(b.cur, post)
		b.cur = post
		b.stmt(st.Post)
		// stmt(Post) keeps cur == post for plain statements.
		b.jump(b.cur, head)
	} else {
		b.jump(b.cur, head)
	}
	b.cur = after
}

func (b *builder) rangeStmt(st *ast.RangeStmt, label string) {
	head := b.newBlock()
	head.Conds = append(head.Conds, st.X)
	b.jump(b.ensure(), head)
	b.g.loopHead[st] = head

	body := b.newBlock()
	after := b.newBlock()
	b.jump(head, body)
	b.jump(head, after)

	b.breakables = append(b.breakables, ctrlTarget{label, after})
	b.continuables = append(b.continuables, ctrlTarget{label, head})
	b.cur = body
	b.stmtList(st.Body.List)
	b.breakables = b.breakables[:len(b.breakables)-1]
	b.continuables = b.continuables[:len(b.continuables)-1]
	b.jump(b.cur, head)
	b.cur = after
}

// switchBody builds expression and type switches: the dispatch block
// evaluates the tag (or the type-switch assign) and every case expression,
// then branches to one clause block. Fallthrough links a clause to the next
// clause's block.
func (b *builder) switchBody(sw ast.Stmt, tag ast.Expr, assign ast.Stmt, body *ast.BlockStmt, label string) {
	dispatch := b.ensure()
	if tag != nil {
		dispatch.Conds = append(dispatch.Conds, tag)
	}
	if assign != nil {
		dispatch.Conds = append(dispatch.Conds, assign)
	}
	after := b.newBlock()
	b.breakables = append(b.breakables, ctrlTarget{label, after})

	var clauses []*ast.CaseClause
	for _, c := range body.List {
		if cc, ok := c.(*ast.CaseClause); ok {
			clauses = append(clauses, cc)
		}
	}
	blocks := make([]*Block, len(clauses))
	hasDefault := false
	for i, cc := range clauses {
		blocks[i] = b.newBlock()
		b.jump(dispatch, blocks[i])
		if cc.List == nil {
			hasDefault = true
		}
		for _, e := range cc.List {
			dispatch.Conds = append(dispatch.Conds, e)
		}
	}
	if !hasDefault {
		b.jump(dispatch, after)
	}
	for i, cc := range clauses {
		b.cur = blocks[i]
		stmts := cc.Body
		fallsThrough := false
		if n := len(stmts); n > 0 {
			if br, ok := stmts[n-1].(*ast.BranchStmt); ok && br.Tok == token.FALLTHROUGH {
				fallsThrough = true
				stmts = stmts[:n-1]
			}
		}
		b.stmtList(stmts)
		if fallsThrough && i+1 < len(blocks) {
			b.jump(b.cur, blocks[i+1])
			b.cur = nil
		} else {
			b.jump(b.cur, after)
		}
	}
	b.breakables = b.breakables[:len(b.breakables)-1]
	b.cur = after
}

func (b *builder) selectStmt(st *ast.SelectStmt, label string) {
	dispatch := b.ensure()
	after := b.newBlock()
	b.breakables = append(b.breakables, ctrlTarget{label, after})
	hasDefault := false
	for _, c := range st.Body.List {
		cc, ok := c.(*ast.CommClause)
		if !ok {
			continue
		}
		if cc.Comm == nil {
			hasDefault = true
		} else {
			// The dispatch block is where the select blocks on (or polls)
			// its channels, so the comm statements belong to it.
			dispatch.Conds = append(dispatch.Conds, cc.Comm)
		}
		blk := b.newBlock()
		b.jump(dispatch, blk)
		b.cur = blk
		b.stmtList(cc.Body)
		b.jump(b.cur, after)
	}
	_ = hasDefault // a select without default blocks, but some case always fires eventually
	b.breakables = b.breakables[:len(b.breakables)-1]
	b.cur = after
}

func (b *builder) resolveGotos() {
	for _, pg := range b.gotos {
		if t, ok := b.labels[pg.label]; ok {
			b.jump(pg.from, t)
		} else {
			// Unresolvable label (malformed source); be conservative.
			b.jump(pg.from, b.g.Exit)
		}
	}
}

// terminates reports whether a plain statement is a call that never
// returns: panic, runtime.Goexit, os.Exit, log.Fatal*, or a testing
// Fatal/Fatalf/Skip via any receiver named like a *testing.T.
func terminates(s ast.Stmt) bool {
	es, ok := s.(*ast.ExprStmt)
	if !ok {
		return false
	}
	call, ok := es.X.(*ast.CallExpr)
	if !ok {
		return false
	}
	switch fn := call.Fun.(type) {
	case *ast.Ident:
		return fn.Name == "panic"
	case *ast.SelectorExpr:
		name := fn.Sel.Name
		if name == "Goexit" || name == "Exit" {
			if id, ok := fn.X.(*ast.Ident); ok {
				return id.Name == "runtime" || id.Name == "os"
			}
			return false
		}
		if name == "Fatal" || name == "Fatalf" || name == "FailNow" {
			return true
		}
	}
	return false
}
