package cfg_test

import (
	"go/ast"
	"go/parser"
	"go/token"
	"strings"
	"testing"

	"ftrepair/internal/analysis/cfg"
)

// build parses src as the body of a function and returns its CFG plus the
// parsed file for node lookups. src is the full function declaration.
func build(t *testing.T, src string) (*cfg.Graph, *ast.FuncDecl, *token.FileSet) {
	t.Helper()
	fset := token.NewFileSet()
	file, err := parser.ParseFile(fset, "x.go", "package x\n"+src, parser.SkipObjectResolution)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	fd := file.Decls[0].(*ast.FuncDecl)
	return cfg.New(fd.Body), fd, fset
}

// hitCall returns a predicate matching any node containing a call to a
// function whose printed name contains substr.
func hitCall(substr string) func(ast.Node) bool {
	return func(n ast.Node) bool {
		found := false
		ast.Inspect(n, func(m ast.Node) bool {
			if found {
				return false
			}
			call, ok := m.(*ast.CallExpr)
			if !ok {
				return true
			}
			switch f := call.Fun.(type) {
			case *ast.Ident:
				if strings.Contains(f.Name, substr) {
					found = true
				}
			case *ast.SelectorExpr:
				if strings.Contains(f.Sel.Name, substr) {
					found = true
				}
			}
			return !found
		})
		return found
	}
}

// firstStmtBlock returns the block of the first statement of the body.
func firstStmtBlock(t *testing.T, g *cfg.Graph, fd *ast.FuncDecl) *cfg.Block {
	t.Helper()
	b := g.BlockOf(fd.Body.List[0])
	if b == nil {
		t.Fatalf("first statement has no block")
	}
	return b
}

// TestDiamond: both arms of an if/else End, so every path hits; removing
// one arm's End breaks the all-paths property.
func TestDiamond(t *testing.T) {
	g, fd, _ := build(t, `
func f(c bool) {
	start()
	if c {
		end()
	} else {
		end()
	}
	tail()
}`)
	b := firstStmtBlock(t, g, fd)
	if !g.EveryPathHits(b, 0, hitCall("end"), true) {
		t.Fatalf("diamond with end() in both arms must satisfy EveryPathHits")
	}

	g2, fd2, _ := build(t, `
func f(c bool) {
	start()
	if c {
		end()
	}
	tail()
}`)
	b2 := firstStmtBlock(t, g2, fd2)
	if g2.EveryPathHits(b2, 0, hitCall("end"), true) {
		t.Fatalf("one-armed diamond must fail EveryPathHits (else path skips end)")
	}
}

// TestEarlyReturn: a return before the cleanup call escapes to Exit without
// hitting it; ending before the early return fixes the property.
func TestEarlyReturn(t *testing.T) {
	g, fd, _ := build(t, `
func f(c bool) {
	start()
	if c {
		return
	}
	end()
}`)
	b := firstStmtBlock(t, g, fd)
	if g.EveryPathHits(b, 0, hitCall("end"), true) {
		t.Fatalf("early return must be reported as a path that skips end()")
	}

	g2, fd2, _ := build(t, `
func f(c bool) {
	start()
	if c {
		end()
		return
	}
	end()
}`)
	b2 := firstStmtBlock(t, g2, fd2)
	if !g2.EveryPathHits(b2, 0, hitCall("end"), true) {
		t.Fatalf("ending before the early return must satisfy EveryPathHits")
	}
}

// TestPanicPath: a panicking arm is exempt when exemptPanic is true (a
// deferred cleanup owns unwinds) and a failing path otherwise.
func TestPanicPath(t *testing.T) {
	src := `
func f(c bool) {
	start()
	if c {
		panic("boom")
	}
	end()
}`
	g, fd, _ := build(t, src)
	b := firstStmtBlock(t, g, fd)
	if !g.EveryPathHits(b, 0, hitCall("end"), true) {
		t.Fatalf("panic path must be exempt when exemptPanic is set")
	}
	if g.EveryPathHits(b, 0, hitCall("end"), false) {
		t.Fatalf("panic path must count as an escape when exemptPanic is false")
	}
}

// TestLoopCycle: OnCycle distinguishes polls that run every iteration from
// polls only on the way out of the loop.
func TestLoopCycle(t *testing.T) {
	// Poll in the loop condition path: executes every iteration.
	g, fd, _ := build(t, `
func f() {
	for i := 0; cond(i); i++ {
		if poll() {
			break
		}
		work()
	}
}`)
	loop := fd.Body.List[0]
	if !g.OnCycle(loop, hitCall("poll")) {
		t.Fatalf("poll guarding a break must be on the iterating cycle")
	}
	if g.OnCycle(loop, hitCall("nosuch")) {
		t.Fatalf("absent call reported on cycle")
	}

	// Poll only on an exiting arm: hit, then unconditional return. The
	// common (non-exiting) iteration never polls.
	g2, fd2, _ := build(t, `
func f() {
	for {
		if rare() {
			poll()
			return
		}
		work()
	}
}`)
	loop2 := fd2.Body.List[0]
	if g2.OnCycle(loop2, hitCall("poll")) {
		t.Fatalf("poll on an exit-only arm must not count as iterating")
	}
	if !g2.OnCycle(loop2, hitCall("rare")) {
		t.Fatalf("the guard condition runs every iteration; it is on the cycle")
	}
}

// TestSelectComms: the comm clauses of a select belong to the dispatch
// block, so a `case <-cancel` receive counts on the iterating cycle even
// when its clause body immediately returns.
func TestSelectComms(t *testing.T) {
	g, fd, _ := build(t, `
func f(cancel chan struct{}, ticks chan int) {
	for {
		select {
		case <-cancel:
			return
		case <-ticks:
			work()
		}
	}
}`)
	loop := fd.Body.List[0]
	recv := func(n ast.Node) bool {
		found := false
		ast.Inspect(n, func(m ast.Node) bool {
			if u, ok := m.(*ast.UnaryExpr); ok && u.Op == token.ARROW {
				if id, ok := u.X.(*ast.Ident); ok && id.Name == "cancel" {
					found = true
				}
			}
			return !found
		})
		return found
	}
	if !g.OnCycle(loop, recv) {
		t.Fatalf("select receive from cancel must sit at the dispatch point, on the cycle")
	}
}

// TestRangeLoop: range loops have a head re-entered per element; body hits
// reach it back.
func TestRangeLoop(t *testing.T) {
	g, fd, _ := build(t, `
func f(xs []int) {
	for _, x := range xs {
		poll()
		use(x)
	}
}`)
	loop := fd.Body.List[0]
	if !g.OnCycle(loop, hitCall("poll")) {
		t.Fatalf("poll in range body must be on the cycle")
	}
	if g.LoopHead(loop) == nil {
		t.Fatalf("range loop must have a head block")
	}
}

// TestLabeledBreak: break L from the inner loop leaves the outer loop, so
// a poll placed after it is not on the outer cycle.
func TestLabeledBreak(t *testing.T) {
	g, fd, _ := build(t, `
func f(xs []int) {
outer:
	for {
		for _, x := range xs {
			if bad(x) {
				break outer
			}
		}
		poll()
	}
}`)
	var outer ast.Stmt
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if ls, ok := n.(*ast.LabeledStmt); ok && ls.Label.Name == "outer" {
			outer = ls.Stmt
			return false
		}
		return true
	})
	if outer == nil {
		t.Fatalf("no labeled loop found")
	}
	if !g.OnCycle(outer, hitCall("poll")) {
		t.Fatalf("poll at the tail of the outer body iterates with the outer loop")
	}
	if !g.OnCycle(outer, hitCall("bad")) {
		t.Fatalf("inner guard runs on outer iterations too")
	}
}

// TestSwitchFallthrough: fallthrough chains clause blocks, so a hit in the
// fallen-into clause covers paths through the preceding clause.
func TestSwitchFallthrough(t *testing.T) {
	g, fd, _ := build(t, `
func f(n int) {
	start()
	switch n {
	case 0:
		fallthrough
	case 1:
		end()
	default:
		end()
	}
}`)
	b := firstStmtBlock(t, g, fd)
	if !g.EveryPathHits(b, 0, hitCall("end"), true) {
		t.Fatalf("fallthrough into an ending clause must cover the case 0 path")
	}
}

// TestInfiniteLoopNoEscape: paths stuck in `for {}` never reach Exit and
// must not fail EveryPathHits.
func TestInfiniteLoopNoEscape(t *testing.T) {
	g, fd, _ := build(t, `
func f(c bool) {
	start()
	if c {
		for {
			work()
		}
	}
	end()
}`)
	b := firstStmtBlock(t, g, fd)
	if !g.EveryPathHits(b, 0, hitCall("end"), true) {
		t.Fatalf("a non-terminating branch is not an escape path")
	}
}

// TestReaches: basic reachability, including non-trivial self-reach.
func TestReaches(t *testing.T) {
	g, fd, _ := build(t, `
func f(xs []int) {
	before()
	for _, x := range xs {
		use(x)
	}
	after()
}`)
	loop := fd.Body.List[1]
	head := g.LoopHead(loop)
	if head == nil {
		t.Fatalf("no loop head")
	}
	if !g.Reaches(head, head) {
		t.Fatalf("loop head must reach itself around the back edge")
	}
	entry := firstStmtBlock(t, g, fd)
	if !g.Reaches(entry, g.Exit) {
		t.Fatalf("entry must reach exit")
	}
	if g.Reaches(g.Exit, entry) {
		t.Fatalf("exit must not reach entry")
	}
}

// TestGoto: goto transfers to the labeled block.
func TestGoto(t *testing.T) {
	g, fd, _ := build(t, `
func f(c bool) {
	start()
	if c {
		goto done
	}
	end()
done:
	tail()
}`)
	b := firstStmtBlock(t, g, fd)
	if g.EveryPathHits(b, 0, hitCall("end"), true) {
		t.Fatalf("goto around end() must count as a skipping path")
	}
	if !g.EveryPathHits(b, 0, hitCall("tail"), true) {
		t.Fatalf("every path runs the labeled tail")
	}
}
