package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"strconv"
	"strings"
	"unicode"
	"unicode/utf8"
)

// ErrFmt reports error-construction mistakes in fmt.Errorf and errors.New
// calls:
//
//   - a fmt.Errorf that passes an error value (a sentinel like ErrCanceled,
//     or an err from a callee) without a %w verb — the result cannot be
//     unwrapped, so errors.Is(err, repair.ErrCanceled) silently stops
//     matching;
//   - error strings that start with a capitalized word or end in
//     punctuation or a newline, which read badly when wrapped into larger
//     messages (Go convention; acronyms and proper-noun-style all-caps
//     words are allowed).
var ErrFmt = &Analyzer{
	Name: "errfmt",
	Doc:  "flags fmt.Errorf wrapping errors without %w and capitalized/punctuated error strings",
	Run:  runErrFmt,
}

func runErrFmt(pass *Pass) error {
	errType := types.Universe.Lookup("error").Type().Underlying().(*types.Interface)
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			pkg, fn := calleePkgFunc(pass, call)
			switch {
			case pkg == "errors" && fn == "New" && len(call.Args) == 1:
				checkErrString(pass, call.Args[0])
			case pkg == "fmt" && fn == "Errorf" && len(call.Args) >= 1:
				checkErrString(pass, call.Args[0])
				checkErrWrap(pass, call, errType)
			}
			return true
		})
	}
	return nil
}

// calleePkgFunc resolves a call's package path and function name for
// package-level functions ("" when the callee is not one).
func calleePkgFunc(pass *Pass, call *ast.CallExpr) (string, string) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return "", ""
	}
	obj := pass.Info.Uses[sel.Sel]
	if obj == nil || obj.Pkg() == nil {
		return "", ""
	}
	return obj.Pkg().Path(), obj.Name()
}

// checkErrWrap flags Errorf calls with an error-typed argument and no %w
// in the format string.
func checkErrWrap(pass *Pass, call *ast.CallExpr, errType *types.Interface) {
	format, ok := stringLit(call.Args[0])
	if !ok || strings.Contains(format, "%w") {
		return
	}
	for _, arg := range call.Args[1:] {
		tv, ok := pass.Info.Types[arg]
		if !ok || tv.Type == nil {
			continue
		}
		if types.Implements(tv.Type, errType) {
			pass.Reportf(arg.Pos(), "fmt.Errorf formats an error without %%w; wrap it so errors.Is/As keep working")
			return
		}
	}
}

// checkErrString flags capitalized or punctuation-terminated error string
// literals.
func checkErrString(pass *Pass, arg ast.Expr) {
	s, ok := stringLit(arg)
	if !ok || s == "" {
		return
	}
	first, _ := utf8.DecodeRuneInString(s)
	if unicode.IsUpper(first) && !allCapsWord(s) {
		pass.Reportf(arg.Pos(), "error string starts with a capitalized word; error strings are lowercase fragments")
	}
	last, _ := utf8.DecodeLastRuneInString(s)
	if last == '.' || last == '!' || last == '?' || last == '\n' {
		pass.Reportf(arg.Pos(), "error string ends with %q; error strings are unterminated fragments", last)
	}
}

// allCapsWord reports whether the string's first word is all uppercase —
// an acronym like "CSV" or "FD" — which convention permits.
func allCapsWord(s string) bool {
	word := s
	if i := strings.IndexFunc(s, func(r rune) bool { return r == ' ' || r == ':' || r == '-' }); i > 0 {
		word = s[:i]
	}
	for _, r := range word {
		if unicode.IsLetter(r) && !unicode.IsUpper(r) {
			return false
		}
	}
	return true
}

// stringLit extracts a basic string literal's value.
func stringLit(e ast.Expr) (string, bool) {
	lit, ok := e.(*ast.BasicLit)
	if !ok || lit.Kind != token.STRING {
		return "", false
	}
	s, err := strconv.Unquote(lit.Value)
	if err != nil {
		return "", false
	}
	return s, true
}
