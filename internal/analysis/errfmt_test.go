package analysis_test

import (
	"testing"

	"ftrepair/internal/analysis"
	"ftrepair/internal/analysis/analyzertest"
)

func TestErrFmt(t *testing.T) {
	analyzertest.Run(t, analysis.ErrFmt, "testdata/src/errfmt")
}
