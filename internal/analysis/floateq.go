package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// FloatEq reports == and != comparisons between floating-point values.
//
// Repair costs and distances are sums of normalized float64 terms; two
// mathematically equal costs routinely differ in the last bits, so exact
// equality silently misclassifies ties (greedy selection order, sort
// comparators, threshold checks). Comparisons must go through the shared
// epsilon helper fd.FloatEq (internal/fd/float.go). Ordering comparisons
// (<, <=, >, >=) are allowed — only equality is ill-conditioned.
var FloatEq = &Analyzer{
	Name: "floateq",
	Doc:  "flags ==/!= comparisons on floating-point values; use fd.FloatEq instead",
	Run:  runFloatEq,
}

func runFloatEq(pass *Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			be, ok := n.(*ast.BinaryExpr)
			if !ok || (be.Op != token.EQL && be.Op != token.NEQ) {
				return true
			}
			if isFloat(pass, be.X) && isFloat(pass, be.Y) {
				pass.Reportf(be.Pos(), "%s compares floats exactly; use fd.FloatEq for epsilon comparison", be.Op)
			}
			return true
		})
	}
	return nil
}

// isFloat reports whether the expression's type is a floating-point basic
// type (after any named-type indirection).
func isFloat(pass *Pass, e ast.Expr) bool {
	tv, ok := pass.Info.Types[e]
	if !ok || tv.Type == nil {
		return false
	}
	b, ok := tv.Type.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsFloat != 0
}
