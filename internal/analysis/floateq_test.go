package analysis_test

import (
	"testing"

	"ftrepair/internal/analysis"
	"ftrepair/internal/analysis/analyzertest"
)

func TestFloatEq(t *testing.T) {
	analyzertest.Run(t, analysis.FloatEq, "testdata/src/floateq")
}
