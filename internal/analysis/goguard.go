package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// GoGuard reports `go` statements inside loops whose goroutines have no
// completion discipline: neither a sync.WaitGroup Add/Done pairing nor a
// completion-channel send received by the spawning function. A loop that
// fans out workers and does not join them lets goroutines from one phase
// run into the next — the exact hazard the repo's parallel stages (vgraph
// fan-out, B&B workers, shard re-repair, planner chunks) avoid by joining
// before merging, because the bit-identical merge step is only correct
// once every worker's output is complete.
//
// Accepted disciplines, judged per enclosing function:
//
//   - WaitGroup: the function calls Add on a sync.WaitGroup and the spawned
//     goroutine (or its callee, approximated by any Done in the function,
//     commonly `defer wg.Done()` inside the closure) calls Done;
//   - completion channel: the goroutine's closure sends on a channel that
//     the function also receives from (the errs <- run(); <-errs pattern).
//
// The check is function-local and name-free, so helper-managed lifecycles
// (a pool struct joining in a different method) need a
// //lint:ignore goguard <reason> at the go statement.
var GoGuard = &Analyzer{
	Name: "goguard",
	Doc:  "flags goroutines launched in loops without WaitGroup or completion-channel discipline",
	Run:  runGoGuard,
}

func runGoGuard(pass *Pass) error {
	for _, unit := range funcUnits(pass) {
		unit := unit
		var loops []ast.Stmt
		var walk func(s ast.Stmt)
		checkStmts := func(list []ast.Stmt) {
			for _, s := range list {
				walk(s)
			}
		}
		walk = func(s ast.Stmt) {
			switch st := s.(type) {
			case *ast.GoStmt:
				if len(loops) > 0 {
					checkGoStmt(pass, unit, st)
				}
			case *ast.ForStmt:
				loops = append(loops, s)
				checkStmts(st.Body.List)
				loops = loops[:len(loops)-1]
			case *ast.RangeStmt:
				loops = append(loops, s)
				checkStmts(st.Body.List)
				loops = loops[:len(loops)-1]
			case *ast.BlockStmt:
				checkStmts(st.List)
			case *ast.IfStmt:
				walk(st.Body)
				if st.Else != nil {
					walk(st.Else)
				}
			case *ast.SwitchStmt:
				for _, c := range st.Body.List {
					if cc, ok := c.(*ast.CaseClause); ok {
						checkStmts(cc.Body)
					}
				}
			case *ast.TypeSwitchStmt:
				for _, c := range st.Body.List {
					if cc, ok := c.(*ast.CaseClause); ok {
						checkStmts(cc.Body)
					}
				}
			case *ast.SelectStmt:
				for _, c := range st.Body.List {
					if cc, ok := c.(*ast.CommClause); ok {
						checkStmts(cc.Body)
					}
				}
			case *ast.LabeledStmt:
				walk(st.Stmt)
			}
		}
		checkStmts(unit.body.List)
	}
	return nil
}

// checkGoStmt flags one in-loop go statement lacking both disciplines.
func checkGoStmt(pass *Pass, unit funcUnit, g *ast.GoStmt) {
	if waitGroupDiscipline(pass, unit) {
		return
	}
	if completionChannelDiscipline(pass, unit, g) {
		return
	}
	pass.Reportf(g.Pos(), "goroutine launched in a loop without WaitGroup Add/Done or a completion-channel receive in this function; un-joined workers can outlive the phase and corrupt the merge")
}

// waitGroupDiscipline reports whether the unit both Adds and Dones a
// sync.WaitGroup somewhere (defer wg.Done() in the closure counts — the
// closure's body is inside the unit's AST).
func waitGroupDiscipline(pass *Pass, unit funcUnit) bool {
	var adds, dones bool
	ast.Inspect(unit.body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok || !isWaitGroup(pass, sel.X) {
			return true
		}
		switch sel.Sel.Name {
		case "Add":
			adds = true
		case "Done":
			dones = true
		}
		return true
	})
	return adds && dones
}

// isWaitGroup reports whether e's type is sync.WaitGroup (possibly behind a
// pointer).
func isWaitGroup(pass *Pass, e ast.Expr) bool {
	tv, ok := pass.Info.Types[e]
	if !ok || tv.Type == nil {
		return false
	}
	t := tv.Type
	if p, ok := t.Underlying().(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok || named.Obj().Pkg() == nil {
		return false
	}
	return named.Obj().Pkg().Path() == "sync" && named.Obj().Name() == "WaitGroup"
}

// completionChannelDiscipline reports whether the goroutine sends on a
// channel the unit also receives from outside the closure: the spawner can
// account for every worker by counting receives.
func completionChannelDiscipline(pass *Pass, unit funcUnit, g *ast.GoStmt) bool {
	// Channels the goroutine (its closure body or call arguments) sends on.
	sent := make(map[types.Object]bool)
	ast.Inspect(g.Call, func(n ast.Node) bool {
		if s, ok := n.(*ast.SendStmt); ok {
			if id, ok := chanIdent(s.Chan); ok {
				if obj := pass.Info.Uses[id]; obj != nil {
					sent[obj] = true
				}
			}
		}
		return true
	})
	if len(sent) == 0 {
		return false
	}
	// Receives anywhere else in the unit from one of those channels.
	found := false
	ast.Inspect(unit.body, func(n ast.Node) bool {
		if found {
			return false
		}
		if n == ast.Node(g) {
			return false // skip the goroutine itself
		}
		switch e := n.(type) {
		case *ast.UnaryExpr:
			if e.Op == token.ARROW {
				if id, ok := chanIdent(e.X); ok {
					if obj := pass.Info.Uses[id]; obj != nil && sent[obj] {
						found = true
					}
				}
			}
		case *ast.RangeStmt:
			if id, ok := chanIdent(e.X); ok {
				if obj := pass.Info.Uses[id]; obj != nil && sent[obj] {
					found = true
				}
			}
		}
		return !found
	})
	return found
}

// chanIdent unwraps a channel expression to its identifier.
func chanIdent(e ast.Expr) (*ast.Ident, bool) {
	switch x := e.(type) {
	case *ast.Ident:
		return x, true
	case *ast.ParenExpr:
		return chanIdent(x.X)
	}
	return nil, false
}
