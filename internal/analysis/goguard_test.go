package analysis_test

import (
	"testing"

	"ftrepair/internal/analysis"
	"ftrepair/internal/analysis/analyzertest"
)

// TestGoGuard: in-loop goroutines need WaitGroup or completion-channel
// discipline; both sanctioned shapes pass, the unjoined ones are flagged,
// and a justified directive suppresses.
func TestGoGuard(t *testing.T) {
	analyzertest.Run(t, analysis.GoGuard, "testdata/src/goguard")
}
