package analysis

import (
	"go/ast"
	"go/token"
	"strings"
)

// Ignore directives suppress one analyzer's findings on one line:
//
//	x := pick(m) //lint:ignore nondeterm seeding only; order-insensitive fold
//
// The directive names the analyzer and must carry a justification; it
// applies to findings reported on its own line (trailing form) and on the
// line directly below (standalone form). Malformed directives (unknown
// shape, missing reason) are themselves surfaced as findings by the driver
// so suppressions cannot silently rot.
//
// This is the in-file half of the suppression story; cmd/repairlint also
// supports a checked-in baseline file for findings that cannot carry a
// comment (generated code, cross-cutting groups). Both require a reason.

// IgnoreDirective is one parsed //lint:ignore comment.
type IgnoreDirective struct {
	Pos      token.Pos
	File     string
	Line     int // line the directive sits on; it suppresses this line and the next
	Analyzer string
	Reason   string
	// Malformed is set when the directive does not parse (missing analyzer
	// or missing reason); such directives suppress nothing.
	Malformed bool
}

// IgnoreSet indexes the directives of one package for suppression lookups.
type IgnoreSet struct {
	byLine map[string]map[int][]*IgnoreDirective
	all    []*IgnoreDirective
}

// ParseIgnores collects every //lint:ignore directive in files.
func ParseIgnores(fset *token.FileSet, files []*ast.File) *IgnoreSet {
	s := &IgnoreSet{byLine: make(map[string]map[int][]*IgnoreDirective)}
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text, ok := strings.CutPrefix(c.Text, "//lint:ignore")
				if !ok {
					continue
				}
				pos := fset.Position(c.Pos())
				d := &IgnoreDirective{Pos: c.Pos(), File: pos.Filename, Line: pos.Line}
				fields := strings.Fields(text)
				if len(fields) >= 2 {
					d.Analyzer = fields[0]
					d.Reason = strings.Join(fields[1:], " ")
				} else {
					d.Malformed = true
				}
				// A trailing directive guards its own line; a standalone
				// one guards the line below. Registering both sides avoids
				// guessing which form this is.
				s.all = append(s.all, d)
				m := s.byLine[d.File]
				if m == nil {
					m = make(map[int][]*IgnoreDirective)
					s.byLine[d.File] = m
				}
				m[d.Line] = append(m[d.Line], d)
				m[d.Line+1] = append(m[d.Line+1], d)
			}
		}
	}
	return s
}

// Suppressed returns the directive covering a finding of analyzer at
// file:line, or nil.
func (s *IgnoreSet) Suppressed(file string, line int, analyzer string) *IgnoreDirective {
	if s == nil {
		return nil
	}
	for _, d := range s.byLine[file][line] {
		if !d.Malformed && (d.Analyzer == analyzer || d.Analyzer == "all") {
			return d
		}
	}
	return nil
}

// Malformed returns every directive that failed to parse, for the driver to
// report.
func (s *IgnoreSet) Malformed() []*IgnoreDirective {
	var out []*IgnoreDirective
	for _, d := range s.all {
		if d.Malformed {
			out = append(out, d)
		}
	}
	return out
}
