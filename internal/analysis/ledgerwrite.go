package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// LedgerWrite reports direct mutations of RepairEvent slices — append or
// element assignment — outside the packages allowed to build them.
//
// The tamper-evident ledger only certifies what flows through its sanctioned
// entry points: internal/repair's eventBuf collects events at the apply
// sites and hands them to Ledger.Commit, and internal/ledger owns the Buffer
// type other layers (incr's shard write-back) use to stage events. A bare
// `append(events, ...)` anywhere else creates provenance records that skip
// sequencing, Merkle hashing, and the obs counters — the event looks ledgered
// but no proof will ever cover it. Reads and iteration stay unrestricted.
var LedgerWrite = &Analyzer{
	Name: "ledgerwrite",
	Doc:  "flags direct writes to []RepairEvent outside internal/ledger and internal/repair; stage events through ledger.Buffer or eventBuf",
	Run:  runLedgerWrite,
}

// ledgerWriteExempt reports whether pkg may build RepairEvent slices
// directly: ledger owns the type and the Buffer staging API, and repair owns
// the apply-site collectors that feed Commit.
func ledgerWriteExempt(pkg string) bool {
	return strings.HasSuffix(pkg, "internal/ledger") ||
		strings.HasSuffix(pkg, "internal/repair")
}

func runLedgerWrite(pass *Pass) error {
	if pass.Pkg != nil && ledgerWriteExempt(pass.Pkg.Path()) {
		return nil
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch st := n.(type) {
			case *ast.CallExpr:
				id, ok := st.Fun.(*ast.Ident)
				if ok && id.Name == "append" && len(st.Args) > 0 &&
					isRepairEventSlice(pass, st.Args[0]) {
					pass.Reportf(st.Pos(), "append to %s outside internal/ledger/internal/repair; stage events through ledger.Buffer so they are sequenced and hashed", types.ExprString(st.Args[0]))
				}
			case *ast.AssignStmt:
				for _, lhs := range st.Lhs {
					idx, ok := lhs.(*ast.IndexExpr)
					if !ok || !isRepairEventSlice(pass, idx.X) {
						continue
					}
					pass.Reportf(lhs.Pos(), "direct write to %s[...] outside internal/ledger/internal/repair; stage events through ledger.Buffer so they are sequenced and hashed", types.ExprString(idx.X))
				}
			}
			return true
		})
	}
	return nil
}

// isRepairEventSlice reports whether e's type is a slice whose element is a
// named type called RepairEvent (any package — the fixture and the real
// ledger package both qualify, keeping the check robust to vendoring).
func isRepairEventSlice(pass *Pass, e ast.Expr) bool {
	tv, ok := pass.Info.Types[e]
	if !ok || tv.Type == nil {
		return false
	}
	sl, ok := tv.Type.Underlying().(*types.Slice)
	if !ok {
		return false
	}
	named, ok := sl.Elem().(*types.Named)
	if !ok {
		return false
	}
	return named.Obj().Name() == "RepairEvent"
}
