package analysis_test

import (
	"testing"

	"ftrepair/internal/analysis"
	"ftrepair/internal/analysis/analyzertest"
)

func TestLedgerWrite(t *testing.T) {
	analyzertest.Run(t, analysis.LedgerWrite, "testdata/src/ledgerwrite")
}

// TestLedgerWriteExemptPath runs the analyzer over a package whose import
// path ends in internal/ledger: the whole package is exempt, so its direct
// RepairEvent-slice writes (Buffer's own append among them) must produce no
// diagnostics. load.Dir uses the directory as the package path, which is
// exactly what the exemption matches on.
func TestLedgerWriteExemptPath(t *testing.T) {
	analyzertest.Run(t, analysis.LedgerWrite, "testdata/src/ledgerwrite/internal/ledger")
}
