// Package load type-checks Go packages for the static-analysis suite
// without golang.org/x/tools: it resolves packages and compiled export
// data through `go list -deps -export -json`, parses target sources with
// go/parser, and type-checks them with go/types using the stdlib gc
// importer fed from the export files. This trades x/tools' generality for
// zero dependencies, which the offline build environment requires; the
// analyzers themselves never see the difference.
package load

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strings"
	"sync"
)

// Package is one type-checked target package.
type Package struct {
	Path  string
	Dir   string
	Fset  *token.FileSet
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
	// TypeErrors collects type-checking problems; analyses still run on
	// what checked, but drivers should surface these.
	TypeErrors []error
}

// listPackage mirrors the `go list -json` fields the loader consumes.
type listPackage struct {
	ImportPath string
	Dir        string
	Export     string
	GoFiles    []string
	Standard   bool
	DepOnly    bool
	Error      *struct{ Err string }
}

// Packages loads and type-checks every package matched by patterns,
// resolving imports (stdlib and intra-module alike) from compiled export
// data. dir is the working directory for the go tool ("" for the current
// one).
func Packages(dir string, patterns ...string) ([]*Package, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	args := append([]string{
		"list", "-e", "-deps", "-export",
		"-json=ImportPath,Dir,Export,GoFiles,Standard,DepOnly,Error",
	}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var out, stderr bytes.Buffer
	cmd.Stdout = &out
	cmd.Stderr = &stderr
	if err := cmd.Run(); err != nil {
		return nil, fmt.Errorf("load: go list %s: %w (%s)", strings.Join(patterns, " "), err, strings.TrimSpace(stderr.String()))
	}

	exports := make(map[string]string)
	var targets []listPackage
	dec := json.NewDecoder(&out)
	for {
		var p listPackage
		if err := dec.Decode(&p); errors.Is(err, io.EOF) {
			break
		} else if err != nil {
			return nil, fmt.Errorf("load: decoding go list output: %w", err)
		}
		if p.Error != nil {
			return nil, fmt.Errorf("load: %s: %s", p.ImportPath, p.Error.Err)
		}
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
		if !p.Standard && !p.DepOnly {
			targets = append(targets, p)
		}
	}
	sort.Slice(targets, func(i, j int) bool { return targets[i].ImportPath < targets[j].ImportPath })

	fset := token.NewFileSet()
	imp := exportImporter(fset, func(path string) (string, bool) {
		e, ok := exports[path]
		return e, ok
	})
	pkgs := make([]*Package, 0, len(targets))
	for _, t := range targets {
		var files []string
		for _, gf := range t.GoFiles {
			files = append(files, filepath.Join(t.Dir, gf))
		}
		pkg, err := check(fset, imp, t.ImportPath, t.Dir, files)
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, pkg)
	}
	return pkgs, nil
}

// Dir loads the single package rooted at dir (every non-test .go file),
// type-checking against export data resolved lazily through the go tool.
// It serves the analyzer test harness, whose testdata directories are
// invisible to package patterns.
//
// Imports resolve in two tiers: real packages (stdlib and module-internal)
// through `go list -export`, and fixture-local packages from source,
// relative to dir's parent. A fixture at testdata/src/spanend may import
// "spanend/obs", which loads testdata/src/spanend/obs recursively with the
// same importer — that is how cross-package analyzer cases (a fake obs
// package, a helper type library) stay self-contained under testdata.
func Dir(dir string) (*Package, error) {
	files, err := dirGoFiles(dir)
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	imp := &fixtureImporter{
		fset:    fset,
		root:    filepath.Dir(dir),
		exports: lazyExports(dir),
		cache:   make(map[string]*types.Package),
	}
	imp.gc = exportImporter(fset, imp.exports)
	return check(fset, imp, dir, dir, files)
}

// dirGoFiles lists the non-test Go sources of dir.
func dirGoFiles(dir string) ([]string, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("load: %w", err)
	}
	var files []string
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		files = append(files, filepath.Join(dir, name))
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("load: no Go files in %s", dir)
	}
	return files, nil
}

// fixtureImporter resolves real packages through export data and fixture
// sub-packages from source under root.
type fixtureImporter struct {
	fset    *token.FileSet
	root    string
	exports func(string) (string, bool)
	gc      types.Importer
	cache   map[string]*types.Package
	loading map[string]bool
}

func (im *fixtureImporter) Import(path string) (*types.Package, error) {
	if p, ok := im.cache[path]; ok {
		return p, nil
	}
	if _, ok := im.exports(path); ok {
		return im.gc.Import(path)
	}
	dir := filepath.Join(im.root, filepath.FromSlash(path))
	files, err := dirGoFiles(dir)
	if err != nil {
		return nil, fmt.Errorf("load: import %q: not an exported package and no fixture source at %s", path, dir)
	}
	if im.loading == nil {
		im.loading = make(map[string]bool)
	}
	if im.loading[path] {
		return nil, fmt.Errorf("load: fixture import cycle through %q", path)
	}
	im.loading[path] = true
	defer delete(im.loading, path)
	pkg, err := check(im.fset, im, path, dir, files)
	if err != nil {
		return nil, err
	}
	if len(pkg.TypeErrors) > 0 {
		return nil, fmt.Errorf("load: fixture package %q: %w", path, pkg.TypeErrors[0])
	}
	pkg.Types.MarkComplete()
	im.cache[path] = pkg.Types
	return pkg.Types, nil
}

// check parses and type-checks one package.
func check(fset *token.FileSet, imp types.Importer, path, dir string, filenames []string) (*Package, error) {
	pkg := &Package{Path: path, Dir: dir, Fset: fset}
	for _, fn := range filenames {
		f, err := parser.ParseFile(fset, fn, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, fmt.Errorf("load: %w", err)
		}
		pkg.Files = append(pkg.Files, f)
	}
	pkg.Info = &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
	}
	conf := types.Config{
		Importer: imp,
		Error:    func(err error) { pkg.TypeErrors = append(pkg.TypeErrors, err) },
	}
	tpkg, err := conf.Check(path, fset, pkg.Files, pkg.Info)
	if err != nil && len(pkg.TypeErrors) == 0 {
		pkg.TypeErrors = append(pkg.TypeErrors, err)
	}
	pkg.Types = tpkg
	return pkg, nil
}

// exportImporter builds a gc importer whose export data comes from lookup
// (import path -> export file).
func exportImporter(fset *token.FileSet, lookup func(string) (string, bool)) types.Importer {
	return importer.ForCompiler(fset, "gc", func(path string) (io.ReadCloser, error) {
		file, ok := lookup(path)
		if !ok {
			return nil, fmt.Errorf("load: no export data for %q", path)
		}
		return os.Open(file)
	})
}

// lazyExports resolves export files one import path at a time, caching
// results; used when the import set is not known up front (testdata
// packages importing arbitrary stdlib packages).
func lazyExports(dir string) func(string) (string, bool) {
	var mu sync.Mutex
	cache := make(map[string]string)
	return func(path string) (string, bool) {
		mu.Lock()
		defer mu.Unlock()
		if e, ok := cache[path]; ok {
			return e, e != ""
		}
		cmd := exec.Command("go", "list", "-export", "-f", "{{.Export}}", path)
		cmd.Dir = dir
		out, err := cmd.Output()
		export := strings.TrimSpace(string(out))
		if err != nil || export == "" {
			cache[path] = ""
			return "", false
		}
		cache[path] = export
		return export, true
	}
}
