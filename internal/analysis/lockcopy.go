package analysis

import (
	"go/types"
)

// LockCopy reports function signatures that move a lock by value: a
// receiver, parameter or result whose type contains sync.Mutex,
// sync.RWMutex, sync.WaitGroup, sync.Once or sync.Cond directly (not
// behind a pointer).
//
// The server's session, job and pool types embed mutexes; copying one
// forks the lock state, so two goroutines can hold "the same" lock
// simultaneously. go vet's copylocks catches many cases, but this analyzer
// runs in the same repairlint pass as the project-specific checks so CI
// fails with one tool, and it also flags by-value results (a constructor
// returning pool instead of *pool), which escape some vet configurations.
var LockCopy = &Analyzer{
	Name: "lockcopy",
	Doc:  "flags receivers, parameters and results that pass lock-bearing structs by value",
	Run:  runLockCopy,
}

func runLockCopy(pass *Pass) error {
	for _, unit := range funcUnits(pass) {
		if unit.sig == nil {
			continue
		}
		if r := unit.sig.Recv(); r != nil {
			if lock := lockInType(r.Type(), nil); lock != "" {
				pass.Reportf(r.Pos(), "receiver of %s copies %s; use a pointer receiver", unit.name, lock)
			}
		}
		tuples := []struct {
			vars *types.Tuple
			kind string
		}{
			{unit.sig.Params(), "parameter"},
			{unit.sig.Results(), "result"},
		}
		for _, tp := range tuples {
			for i := 0; i < tp.vars.Len(); i++ {
				v := tp.vars.At(i)
				if lock := lockInType(v.Type(), nil); lock != "" {
					pos := v.Pos()
					if !pos.IsValid() {
						pos = unit.body.Pos()
					}
					pass.Reportf(pos, "%s %q of %s passes %s by value; use a pointer", tp.kind, v.Name(), unit.name, lock)
				}
			}
		}
	}
	return nil
}

// lockInType returns the name of the first sync lock type contained by
// value in t ("" when none). Pointers, slices, maps, channels and
// interfaces are indirections and stop the walk; structs and arrays are
// traversed. seen breaks cycles through named types.
func lockInType(t types.Type, seen map[*types.Named]bool) string {
	if named, ok := t.(*types.Named); ok {
		if isSyncLock(named) {
			return "sync." + named.Obj().Name()
		}
		if seen[named] {
			return ""
		}
		if seen == nil {
			seen = make(map[*types.Named]bool)
		}
		seen[named] = true
	}
	switch u := t.Underlying().(type) {
	case *types.Struct:
		for i := 0; i < u.NumFields(); i++ {
			if lock := lockInType(u.Field(i).Type(), seen); lock != "" {
				return lock
			}
		}
	case *types.Array:
		return lockInType(u.Elem(), seen)
	}
	return ""
}

// isSyncLock reports whether the named type is one of the sync primitives
// that must not be copied after first use.
func isSyncLock(named *types.Named) bool {
	obj := named.Obj()
	if obj.Pkg() == nil || obj.Pkg().Path() != "sync" {
		return false
	}
	switch obj.Name() {
	case "Mutex", "RWMutex", "WaitGroup", "Once", "Cond":
		return true
	}
	return false
}
