package analysis_test

import (
	"testing"

	"ftrepair/internal/analysis"
	"ftrepair/internal/analysis/analyzertest"
)

func TestLockCopy(t *testing.T) {
	analyzertest.Run(t, analysis.LockCopy, "testdata/src/lockcopy")
}
