package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// MapIter reports `range` loops over maps whose bodies build order-sensitive
// output: appending to a slice declared outside the loop, or sending on a
// channel, without a deterministic sort between the loop and the value's
// escape. Go randomizes map iteration order on purpose, so any slice grown
// in map order differs run to run — the exact bug class behind the repo's
// bit-identical-output audits: a violation-graph edge list, a repair list,
// or a shard worklist assembled from a map must be sorted before it feeds
// the repair pipeline.
//
// The analyzer accepts the idiomatic fix without complaint: collect, then
// sort — a call to sort.* or slices.Sort* (or any function whose name
// contains "sort") after the loop, in the same function, mentioning the
// accumulated slice. Order-insensitive folds (counters, sums, map-to-map
// copies, min/max under a strict total order) are never flagged because
// they do not append.
//
// Known soundness gaps (see DESIGN.md §15): a sort performed by the caller
// is invisible, as is a sort routed through a helper that does not mention
// the slice by name; suppress those with //lint:ignore mapiter <reason>.
var MapIter = &Analyzer{
	Name: "mapiter",
	Doc:  "flags range-over-map loops that append to slices or send on channels without a deterministic sort afterwards",
	Run:  runMapIter,
}

func runMapIter(pass *Pass) error {
	for _, unit := range funcUnits(pass) {
		unit := unit
		inspectShallow(unit.body, func(n ast.Node) bool {
			rng, ok := n.(*ast.RangeStmt)
			if !ok {
				return true
			}
			tv, ok := pass.Info.Types[rng.X]
			if !ok || tv.Type == nil {
				return true
			}
			if _, isMap := tv.Type.Underlying().(*types.Map); !isMap {
				return true
			}
			checkMapRangeBody(pass, unit, rng)
			return true
		})
	}
	return nil
}

// checkMapRangeBody flags order-sensitive accumulation inside one map-range
// body.
func checkMapRangeBody(pass *Pass, unit funcUnit, rng *ast.RangeStmt) {
	inspectShallow(rng.Body, func(n ast.Node) bool {
		switch st := n.(type) {
		case *ast.AssignStmt:
			for i, rhs := range st.Rhs {
				call, ok := rhs.(*ast.CallExpr)
				if !ok {
					continue
				}
				if id, ok := call.Fun.(*ast.Ident); !ok || id.Name != "append" {
					continue
				}
				if i >= len(st.Lhs) {
					continue
				}
				dst := st.Lhs[i]
				if declaredWithin(pass, dst, rng) {
					continue
				}
				if sortedAfter(pass, unit, rng, dst) {
					continue
				}
				pass.Reportf(st.Pos(), "append to %s inside range over map: iteration order is randomized, so the slice order differs run to run; sort it after the loop or iterate sorted keys", exprText(dst))
			}
		case *ast.SendStmt:
			pass.Reportf(st.Pos(), "send on %s inside range over map: receivers see a randomized order; iterate sorted keys instead", exprText(st.Chan))
		}
		return true
	})
}

// declaredWithin reports whether e's root identifier (unwrapping selectors,
// indexing, derefs) is declared inside the loop — a per-iteration scratch
// value cannot leak map order out of the loop by itself; if it escapes, the
// escaping append is checked in its own right.
func declaredWithin(pass *Pass, e ast.Expr, rng *ast.RangeStmt) bool {
	id := rootIdent(e)
	if id == nil {
		return false
	}
	obj := pass.Info.Uses[id]
	if obj == nil {
		obj = pass.Info.Defs[id]
	}
	if obj == nil {
		return false
	}
	return obj.Pos() >= rng.Pos() && obj.Pos() < rng.End()
}

// rootIdent unwraps e to the identifier at the base of a selector/index/
// deref/paren chain (cv.vals → cv, ix.gram[g] → ix), or nil.
func rootIdent(e ast.Expr) *ast.Ident {
	for {
		switch x := e.(type) {
		case *ast.Ident:
			return x
		case *ast.SelectorExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.ParenExpr:
			e = x.X
		default:
			return nil
		}
	}
}

// sortedAfter reports whether, after the range loop, the enclosing function
// deterministically sorts dst: a statement past the loop's end containing a
// sort-like call that mentions dst.
func sortedAfter(pass *Pass, unit funcUnit, rng *ast.RangeStmt, dst ast.Expr) bool {
	name := leafName(dst)
	if name == "" {
		name = exprText(dst)
	}
	found := false
	inspectShallow(unit.body, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() < rng.End() {
			return true
		}
		if !sortLikeCall(call) {
			return true
		}
		if callMentions(call, name) {
			found = true
			return false
		}
		return true
	})
	return found
}

// sortLikeCall reports whether call is a sorting call: sort.* and
// slices.Sort* from the stdlib, or any function whose name contains "sort".
func sortLikeCall(call *ast.CallExpr) bool {
	l := strings.ToLower(leafName(call.Fun))
	if strings.Contains(l, "sort") {
		return true
	}
	if sel, ok := call.Fun.(*ast.SelectorExpr); ok {
		if id, ok := sel.X.(*ast.Ident); ok && (id.Name == "sort" || id.Name == "slices") {
			// sort.Strings, sort.Slice, slices.SortFunc, ... — every entry
			// point of the stdlib sorting packages establishes an order.
			return true
		}
	}
	return false
}

// callMentions reports whether the identifier name appears anywhere in the
// call's arguments (including inside closures — sort.Slice(xs, func...)).
func callMentions(call *ast.CallExpr, name string) bool {
	found := false
	for _, arg := range call.Args {
		ast.Inspect(arg, func(n ast.Node) bool {
			if found {
				return false
			}
			if id, ok := n.(*ast.Ident); ok && id.Name == name {
				found = true
			}
			if sel, ok := n.(*ast.SelectorExpr); ok && sel.Sel.Name == name {
				found = true
			}
			return !found
		})
		if found {
			return true
		}
	}
	return false
}

// exprText renders a short printable form of e for messages.
func exprText(e ast.Expr) string {
	switch x := e.(type) {
	case *ast.Ident:
		return x.Name
	case *ast.SelectorExpr:
		return exprText(x.X) + "." + x.Sel.Name
	case *ast.IndexExpr:
		return exprText(x.X) + "[...]"
	case *ast.StarExpr:
		return "*" + exprText(x.X)
	}
	if n := leafName(e); n != "" {
		return n
	}
	return "expression"
}
