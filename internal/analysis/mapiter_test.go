package analysis_test

import (
	"testing"

	"ftrepair/internal/analysis"
	"ftrepair/internal/analysis/analyzertest"
)

// TestMapIter runs the multi-file fixture: collection without sort, the
// sorted idioms, scratch slices, channel sends, and a suppression case.
func TestMapIter(t *testing.T) {
	analyzertest.Run(t, analysis.MapIter, "testdata/src/mapiter")
}
