package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// NonDeterm reports nondeterminism sources inside the repair decision
// packages — internal/repair, internal/vgraph, internal/incr,
// internal/targettree, internal/mis — whose outputs the bit-identical
// contract covers:
//
//   - time.Now (and friends) whose result is used as data rather than
//     purely for duration measurement. Wall-clock timing of phases is fine
//     (start := time.Now(); ...; time.Since(start) feeds Stats); a
//     timestamp stored in a struct, compared against repair state, or used
//     to pick between candidates is not.
//   - any use of math/rand or math/rand/v2: a randomized tie-break or
//     sampling step in a decision path destroys reproducibility.
//   - "first element wins" map selection: a range over a map whose body
//     unconditionally assigns/returns/breaks on the first iteration, so the
//     chosen element depends on iteration order.
//
// Packages outside the decision set (obs, server, cli, benchmarks,
// generators) are exempt: timing, request ids and synthetic-noise seeding
// are their job. The exemption is by import-path suffix, mirroring
// obsguard.
var NonDeterm = &Analyzer{
	Name: "nondeterm",
	Doc:  "flags time/rand/map-order nondeterminism inside repair decision packages",
	Run:  runNonDeterm,
}

// nonDetermChecked reports whether pkg is a repair decision package.
func nonDetermChecked(pkg string) bool {
	for _, suf := range []string{
		"internal/repair", "internal/vgraph", "internal/incr",
		"internal/targettree", "internal/mis",
	} {
		if strings.HasSuffix(pkg, suf) {
			return true
		}
	}
	return false
}

func runNonDeterm(pass *Pass) error {
	if pass.Pkg == nil || !nonDetermChecked(pass.Pkg.Path()) {
		return nil
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch e := n.(type) {
			case *ast.CallExpr:
				checkClockCall(pass, e)
			case *ast.SelectorExpr:
				checkRandUse(pass, e)
			case *ast.RangeStmt:
				checkMapSelection(pass, e)
			}
			return true
		})
	}
	return nil
}

// checkClockCall flags time.Now()/time.Since() results used as data. The
// duration-measurement idiom is exempt:
//
//	start := time.Now()          // every use of start is Since/Sub/Before...
//	elapsed := time.Since(start) // durations are deterministic *inputs* only
//	                             // when they never steer repair decisions;
//	                             // Stats attachment is fine.
//
// Exempt shapes: the call is the receiver of a comparison/difference method
// (Sub, Before, After, Equal, Compare), the argument of time.Since/Until,
// or it initializes a variable whose every use is one of those shapes or an
// argument to a duration conversion (.Seconds() etc. on the derived value
// are beyond this analyzer's reach and judged by their own use sites).
func checkClockCall(pass *Pass, call *ast.CallExpr) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || !isPkgFunc(pass, sel, "time", "Now") {
		return
	}
	parent := clockParent(pass, call)
	switch p := parent.(type) {
	case *ast.SelectorExpr:
		// time.Now().Sub(x) / .Before(x) / ... — comparison against another
		// instant, duration math; deterministic inputs don't flow out.
		if isDurationMethod(p.Sel.Name) {
			return
		}
	case *ast.CallExpr:
		// time.Since is itself duration measurement.
		if s, ok := p.Fun.(*ast.SelectorExpr); ok && isPkgFunc(pass, s, "time", "Since") {
			return
		}
	case *ast.AssignStmt:
		// start := time.Now(): exempt when every use of start is duration
		// measurement.
		if obj := assignedObj(pass, p, call); obj != nil && usesAreDurationOnly(pass, obj) {
			return
		}
	}
	pass.Reportf(call.Pos(), "time.Now() result used as data in a repair decision package; wall-clock values vary run to run — restrict it to duration measurement or //lint:ignore nondeterm with a reason")
}

// clockParent finds the immediate enclosing expression/statement of call in
// its file, so the use shape can be classified.
func clockParent(pass *Pass, call *ast.CallExpr) ast.Node {
	for _, f := range pass.Files {
		if call.Pos() < f.Pos() || call.Pos() > f.End() {
			continue
		}
		var parent ast.Node
		var stack []ast.Node
		ast.Inspect(f, func(n ast.Node) bool {
			if n == nil {
				if len(stack) > 0 {
					stack = stack[:len(stack)-1]
				}
				return true
			}
			if n == ast.Node(call) && len(stack) > 0 {
				parent = stack[len(stack)-1]
				return false
			}
			stack = append(stack, n)
			return parent == nil
		})
		if parent != nil {
			return parent
		}
	}
	return nil
}

// assignedObj returns the object bound to call in assignment st (handles
// multi-assign by position).
func assignedObj(pass *Pass, st *ast.AssignStmt, call *ast.CallExpr) types.Object {
	for i, rhs := range st.Rhs {
		if rhs != ast.Expr(call) || i >= len(st.Lhs) {
			continue
		}
		if id, ok := st.Lhs[i].(*ast.Ident); ok {
			if obj := pass.Info.Defs[id]; obj != nil {
				return obj
			}
			return pass.Info.Uses[id]
		}
	}
	return nil
}

// usesAreDurationOnly reports whether every use of obj is duration
// measurement: receiver of Sub/Before/After/Equal/Compare, or argument to
// time.Since/time.Until.
func usesAreDurationOnly(pass *Pass, obj types.Object) bool {
	for id, o := range pass.Info.Uses {
		if o != obj {
			continue
		}
		if !durationUse(pass, id) {
			return false
		}
	}
	return true
}

// durationUse classifies one identifier occurrence.
func durationUse(pass *Pass, id *ast.Ident) bool {
	for _, f := range pass.Files {
		if id.Pos() < f.Pos() || id.Pos() > f.End() {
			continue
		}
		ok := false
		var stack []ast.Node
		ast.Inspect(f, func(n ast.Node) bool {
			if n == nil {
				if len(stack) > 0 {
					stack = stack[:len(stack)-1]
				}
				return true
			}
			if n == ast.Node(id) {
				ok = durationContext(pass, stack, id)
				return false
			}
			stack = append(stack, n)
			return !ok
		})
		return ok
	}
	return false
}

// durationContext judges an identifier against its enclosing nodes
// (innermost last): x.Sub(...) receiver, time.Since(x)/time.Until(x)
// argument.
func durationContext(pass *Pass, stack []ast.Node, id *ast.Ident) bool {
	if len(stack) == 0 {
		return false
	}
	switch p := stack[len(stack)-1].(type) {
	case *ast.SelectorExpr:
		return p.X == ast.Expr(id) && isDurationMethod(p.Sel.Name)
	case *ast.CallExpr:
		for _, arg := range p.Args {
			if arg == ast.Expr(id) {
				if s, ok := p.Fun.(*ast.SelectorExpr); ok {
					return isPkgFunc(pass, s, "time", "Since") || isPkgFunc(pass, s, "time", "Until")
				}
			}
		}
	}
	return false
}

func isDurationMethod(name string) bool {
	switch name {
	case "Sub", "Before", "After", "Equal", "Compare":
		return true
	}
	return false
}

// isPkgFunc reports whether sel resolves (via type info) to pkgPath.name.
func isPkgFunc(pass *Pass, sel *ast.SelectorExpr, pkgPath, name string) bool {
	if sel.Sel.Name != name {
		return false
	}
	obj := pass.Info.Uses[sel.Sel]
	if obj == nil || obj.Pkg() == nil {
		return false
	}
	return obj.Pkg().Path() == pkgPath
}

// checkRandUse flags any reference into math/rand or math/rand/v2.
func checkRandUse(pass *Pass, sel *ast.SelectorExpr) {
	obj := pass.Info.Uses[sel.Sel]
	if obj == nil || obj.Pkg() == nil {
		return
	}
	switch obj.Pkg().Path() {
	case "math/rand", "math/rand/v2":
		pass.Reportf(sel.Pos(), "%s.%s in a repair decision package: randomized choices break the bit-identical contract; derive tie-breaks from stable keys instead", obj.Pkg().Name(), sel.Sel.Name)
	}
}

// checkMapSelection flags "first element wins" ranges: a map range whose
// body's statement list ends in an unconditional break or return after only
// plain assignments — the selected element is whichever key Go happens to
// yield first. Conditional breaks (search loops: if k == want { break })
// are deterministic and exempt.
func checkMapSelection(pass *Pass, rng *ast.RangeStmt) {
	tv, ok := pass.Info.Types[rng.X]
	if !ok || tv.Type == nil {
		return
	}
	if _, isMap := tv.Type.Underlying().(*types.Map); !isMap {
		return
	}
	for _, s := range rng.Body.List {
		switch st := s.(type) {
		case *ast.AssignStmt, *ast.IncDecStmt, *ast.DeclStmt, *ast.ExprStmt:
			continue
		case *ast.BranchStmt:
			if st.Tok == token.BREAK {
				pass.Reportf(rng.Pos(), "range over map breaks unconditionally on the first element: the selection depends on randomized iteration order; pick by sorted key or an explicit criterion")
			}
			return
		case *ast.ReturnStmt:
			pass.Reportf(rng.Pos(), "range over map returns unconditionally on the first element: the selection depends on randomized iteration order; pick by sorted key or an explicit criterion")
			return
		default:
			return
		}
	}
}
