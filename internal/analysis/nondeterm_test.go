package analysis_test

import (
	"testing"

	"ftrepair/internal/analysis"
	"ftrepair/internal/analysis/analyzertest"
)

// TestNonDeterm runs the gated fixture, whose import path ends in
// internal/repair: clock-as-data, math/rand, first-element map selection,
// the duration-measurement exemptions, and a suppression case.
func TestNonDeterm(t *testing.T) {
	analyzertest.Run(t, analysis.NonDeterm, "testdata/src/nondeterm/internal/repair")
}

// TestNonDetermAllowlisted runs the same patterns in a package outside the
// decision set: no diagnostics.
func TestNonDetermAllowlisted(t *testing.T) {
	analyzertest.Run(t, analysis.NonDeterm, "testdata/src/nondeterm")
}
