package analysis

import (
	"go/ast"
	"strings"
)

// ObsGuard reports direct writes to Stats maps (index assignment, op-assign,
// ++/--, or delete) outside the packages allowed to own them.
//
// Since the obs registry landed, Result.Stats is a per-run view whose totals
// are flushed into the registry exactly once, inside internal/repair's
// finish. A direct map write anywhere else bypasses that bookkeeping: the
// value shows up in the run's Stats but never in /metrics, silently
// desynchronizing the two. Callers outside internal/repair (and
// internal/obs, which defines the flush) must go through Result.AddStat,
// which keeps the sanctioned write sites enumerable. Reads (res.Stats[k] on
// the right-hand side) stay unrestricted.
var ObsGuard = &Analyzer{
	Name: "obsguard",
	Doc:  "flags direct writes to Stats maps outside internal/obs and internal/repair; use Result.AddStat",
	Run:  runObsGuard,
}

// obsGuardExempt reports whether pkg may write Stats maps directly: the
// repair package owns the maps and the flush point, and obs defines the
// registry they flush into.
func obsGuardExempt(pkg string) bool {
	return strings.HasSuffix(pkg, "internal/repair") ||
		strings.HasSuffix(pkg, "internal/obs")
}

func runObsGuard(pass *Pass) error {
	if pass.Pkg != nil && obsGuardExempt(pass.Pkg.Path()) {
		return nil
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch st := n.(type) {
			case *ast.AssignStmt:
				for _, lhs := range st.Lhs {
					reportObsGuardWrite(pass, lhs)
				}
			case *ast.IncDecStmt:
				reportObsGuardWrite(pass, st.X)
			case *ast.CallExpr:
				if id, ok := st.Fun.(*ast.Ident); ok && id.Name == "delete" && len(st.Args) > 0 {
					if sel := statsSelector(pass, st.Args[0]); sel != "" {
						pass.Reportf(st.Pos(), "delete from %s outside internal/obs/internal/repair; Stats is a registry view — use Result.AddStat for writes", sel)
					}
				}
			}
			return true
		})
	}
	return nil
}

// reportObsGuardWrite flags lhs when it indexes a Stats-map selector.
func reportObsGuardWrite(pass *Pass, lhs ast.Expr) {
	idx, ok := lhs.(*ast.IndexExpr)
	if !ok {
		return
	}
	sel := statsSelector(pass, idx.X)
	if sel == "" {
		return
	}
	pass.Reportf(lhs.Pos(), "direct write to %s[...] outside internal/obs/internal/repair; use Result.AddStat so registry totals stay in sync", sel)
}
