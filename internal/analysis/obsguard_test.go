package analysis_test

import (
	"testing"

	"ftrepair/internal/analysis"
	"ftrepair/internal/analysis/analyzertest"
)

func TestObsGuard(t *testing.T) {
	analyzertest.Run(t, analysis.ObsGuard, "testdata/src/obsguard")
}

// TestObsGuardExemptPath runs the analyzer over a package whose import path
// ends in internal/repair: the whole package is exempt, so its direct Stats
// writes (which would all be flagged elsewhere) must produce no
// diagnostics. load.Dir uses the directory as the package path, which is
// exactly what the exemption matches on.
func TestObsGuardExemptPath(t *testing.T) {
	analyzertest.Run(t, analysis.ObsGuard, "testdata/src/obsguard/internal/repair")
}
