package analysis

import (
	"go/ast"
	"go/types"

	"ftrepair/internal/analysis/cfg"
)

// SpanEnd proves, per function, that every obs span started locally is
// Ended on every return path — including early returns on ErrCanceled,
// which is where leaks hide: the happy path Ends at the bottom, the cancel
// unwind forgets, OpenSpans never drains, and phase-duration histograms
// silently under-report the canceled phase. The check is control-flow
// based (internal/analysis/cfg): from the statement that starts the span,
// every path to the function's exit must pass an End on that same span.
//
// A span "starts locally" when a call result is bound to a variable whose
// type is a pointer to a named type Span (obs.Span in the real tree; any
// *Span in fixtures). Coverage is satisfied by:
//
//   - an End on every Exit-reaching path (the CFG query), or
//   - a defer that Ends the span (directly or inside a deferred closure) —
//     defers run on every exit including panics, so they cover all paths.
//
// Escape hatches that end the span elsewhere are trusted, with the
// imprecision documented in DESIGN.md §15: a span passed to another
// function, stored in a struct or slice, returned, or captured by a
// non-deferred closure is assumed managed by its new owner. Panic paths
// are exempt unless a defer exists — End is idempotent, and CloseOpen
// sweeps abandoned traces at export time.
var SpanEnd = &Analyzer{
	Name: "spanend",
	Doc:  "flags obs spans that are not Ended on every return path (CFG all-paths check)",
	Run:  runSpanEnd,
}

func runSpanEnd(pass *Pass) error {
	for _, unit := range funcUnits(pass) {
		var g *cfg.Graph // built lazily, once per unit that starts spans
		inspectShallow(unit.body, func(n ast.Node) bool {
			st, ok := n.(*ast.AssignStmt)
			if !ok {
				return true
			}
			for i, rhs := range st.Rhs {
				if i >= len(st.Lhs) {
					break
				}
				if _, ok := rhs.(*ast.CallExpr); !ok {
					continue // aliases are not fresh spans
				}
				id, ok := st.Lhs[i].(*ast.Ident)
				if !ok || id.Name == "_" {
					continue
				}
				obj := pass.Info.Defs[id]
				if obj == nil {
					obj = pass.Info.Uses[id]
				}
				if obj == nil || !isSpanPtr(obj.Type()) {
					continue
				}
				if spanEscapes(pass, unit, st, obj) {
					continue
				}
				if deferredEnd(pass, unit, obj) {
					continue
				}
				if g == nil {
					g = cfg.New(unit.body)
				}
				blk := g.BlockOf(st)
				if blk == nil {
					continue
				}
				idx := stmtIndex(blk, st)
				endsHere := func(n ast.Node) bool { return containsEndCall(pass, n, obj) }
				if !g.EveryPathHits(blk, idx, endsHere, true) {
					pass.Reportf(st.Pos(), "span %s is not Ended on every return path; End it before each return (eagerly on cancel unwinds) or add defer %s.End()", id.Name, id.Name)
				}
			}
			return true
		})
	}
	return nil
}

// isSpanPtr reports whether t is *Span for a named type Span.
func isSpanPtr(t types.Type) bool {
	p, ok := t.(*types.Pointer)
	if !ok {
		return false
	}
	named, ok := p.Elem().(*types.Named)
	return ok && named.Obj().Name() == "Span"
}

// stmtIndex finds s's position within its block.
func stmtIndex(b *cfg.Block, s ast.Stmt) int {
	for i, st := range b.Stmts {
		if st == s {
			return i
		}
	}
	return -1
}

// containsEndCall reports whether n contains obj.End() — without descending
// into nested function literals, whose execution is not guaranteed at this
// program point (deferred closures are handled separately).
func containsEndCall(pass *Pass, n ast.Node, obj types.Object) bool {
	found := false
	ast.Inspect(n, func(m ast.Node) bool {
		if found {
			return false
		}
		if _, ok := m.(*ast.FuncLit); ok {
			return false
		}
		if isEndCallOn(pass, m, obj) {
			found = true
		}
		return !found
	})
	return found
}

// isEndCallOn reports whether m is the call obj.End().
func isEndCallOn(pass *Pass, m ast.Node, obj types.Object) bool {
	call, ok := m.(*ast.CallExpr)
	if !ok {
		return false
	}
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "End" {
		return false
	}
	id, ok := sel.X.(*ast.Ident)
	return ok && pass.Info.Uses[id] == obj
}

// deferredEnd reports whether the unit defers obj.End(), directly or inside
// a deferred closure.
func deferredEnd(pass *Pass, unit funcUnit, obj types.Object) bool {
	found := false
	inspectShallow(unit.body, func(n ast.Node) bool {
		if found {
			return false
		}
		d, ok := n.(*ast.DeferStmt)
		if !ok {
			return true
		}
		if isEndCallOn(pass, d.Call, obj) {
			found = true
			return false
		}
		if lit, ok := d.Call.Fun.(*ast.FuncLit); ok {
			ast.Inspect(lit.Body, func(m ast.Node) bool {
				if found {
					return false
				}
				if isEndCallOn(pass, m, obj) {
					found = true
				}
				return !found
			})
		}
		return !found
	})
	return found
}

// spanEscapes reports whether obj leaves the unit's direct control: passed
// as a call argument (not as the method receiver), stored, returned, or
// captured by a non-deferred closure. Such spans are assumed Ended by their
// new owner.
func spanEscapes(pass *Pass, unit funcUnit, start *ast.AssignStmt, obj types.Object) bool {
	escapes := false
	ast.Inspect(unit.body, func(n ast.Node) bool {
		if escapes {
			return false
		}
		switch e := n.(type) {
		case *ast.CallExpr:
			for _, arg := range e.Args {
				if identIs(pass, arg, obj) {
					escapes = true
					return false
				}
			}
		case *ast.AssignStmt:
			if e == start {
				return true
			}
			for _, rhs := range e.Rhs {
				if identIs(pass, rhs, obj) {
					escapes = true
					return false
				}
			}
		case *ast.ReturnStmt:
			for _, r := range e.Results {
				if identIs(pass, r, obj) {
					escapes = true
					return false
				}
			}
		case *ast.CompositeLit:
			for _, el := range e.Elts {
				v := el
				if kv, ok := el.(*ast.KeyValueExpr); ok {
					v = kv.Value
				}
				if identIs(pass, v, obj) {
					escapes = true
					return false
				}
			}
		case *ast.FuncLit:
			// A capture in a non-deferred closure: the closure may End it
			// later (goroutine per-iteration spans) — out of this unit's
			// CFG, so trust it. Deferred closures were already credited.
			uses := false
			ast.Inspect(e.Body, func(m ast.Node) bool {
				if id, ok := m.(*ast.Ident); ok && pass.Info.Uses[id] == obj {
					uses = true
				}
				return !uses
			})
			if uses {
				escapes = true
				return false
			}
			return false
		}
		return true
	})
	return escapes
}

// identIs reports whether e is exactly the identifier bound to obj.
func identIs(pass *Pass, e ast.Expr, obj types.Object) bool {
	id, ok := e.(*ast.Ident)
	return ok && pass.Info.Uses[id] == obj
}
