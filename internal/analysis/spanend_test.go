package analysis_test

import (
	"testing"

	"ftrepair/internal/analysis"
	"ftrepair/internal/analysis/analyzertest"
)

// TestSpanEnd runs the cross-package fixture (it imports the fixture-local
// spanend/obs package through load.Dir's source fallback): cancel-unwind
// leaks and one-armed diamonds are flagged; explicit all-path Ends, defers,
// ownership hand-off, goroutine capture, panic-path exemption and a
// justified directive are not.
func TestSpanEnd(t *testing.T) {
	analyzertest.Run(t, analysis.SpanEnd, "testdata/src/spanend")
}
