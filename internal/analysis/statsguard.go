package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// StatsGuard reports map writes through a Stats field that no preceding
// statement in the same function guards against nil.
//
// Result.Stats (and the JobResult.Stats mirror in the server) is documented
// as possibly nil; writing res.Stats[k] = v without first checking
// res.Stats == nil or assigning the field panics at runtime — the exact bug
// RepairCFD shipped with and had to be patched for. The analyzer flags
// index assignments (including op-assign and ++/--) whose base is a
// selector named Stats with map type, unless an earlier statement of the
// same function either compares that selector against nil or assigns to it
// (res.Stats = make(...)). The guard search is lexical — a guard later in
// the function does not dominate an earlier write.
var StatsGuard = &Analyzer{
	Name: "statsguard",
	Doc:  "flags writes to possibly-nil Stats maps not preceded by a nil check or assignment",
	Run:  runStatsGuard,
}

func runStatsGuard(pass *Pass) error {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkStatsWrites(pass, fd.Body)
		}
	}
	return nil
}

// checkStatsWrites flags unguarded Stats-map writes in one function body
// (closures included: a guard in the enclosing function is visible to its
// literals, so the whole declaration is one guard scope).
func checkStatsWrites(pass *Pass, body *ast.BlockStmt) {
	// guards maps the printed base selector ("res.Stats") to the position
	// of its first nil check or assignment.
	guards := make(map[string]token.Pos)
	ast.Inspect(body, func(n ast.Node) bool {
		switch st := n.(type) {
		case *ast.AssignStmt:
			for _, lhs := range st.Lhs {
				if sel := statsSelector(pass, lhs); sel != "" {
					recordGuard(guards, sel, st.Pos())
				}
			}
		case *ast.BinaryExpr:
			if st.Op != token.EQL && st.Op != token.NEQ {
				return true
			}
			if isNilIdent(st.X) || isNilIdent(st.Y) {
				for _, side := range []ast.Expr{st.X, st.Y} {
					if sel := statsSelector(pass, side); sel != "" {
						recordGuard(guards, sel, st.Pos())
					}
				}
			}
		}
		return true
	})
	ast.Inspect(body, func(n ast.Node) bool {
		switch st := n.(type) {
		case *ast.AssignStmt:
			for _, lhs := range st.Lhs {
				reportUnguardedStatsWrite(pass, guards, lhs, st.Pos())
			}
		case *ast.IncDecStmt:
			reportUnguardedStatsWrite(pass, guards, st.X, st.Pos())
		}
		return true
	})
}

// reportUnguardedStatsWrite flags lhs when it indexes a Stats-map selector
// with no guard lexically before writePos.
func reportUnguardedStatsWrite(pass *Pass, guards map[string]token.Pos, lhs ast.Expr, writePos token.Pos) {
	idx, ok := lhs.(*ast.IndexExpr)
	if !ok {
		return
	}
	sel := statsSelector(pass, idx.X)
	if sel == "" {
		return
	}
	if pos, ok := guards[sel]; ok && pos < writePos {
		return
	}
	pass.Reportf(lhs.Pos(), "write to %s[...] without a preceding nil check or assignment; Stats maps may be nil", sel)
}

// statsSelector returns the printed form of e ("res.Stats") when e is a
// selector of a field named Stats with map type, and "" otherwise.
func statsSelector(pass *Pass, e ast.Expr) string {
	sel, ok := e.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "Stats" {
		return ""
	}
	tv, ok := pass.Info.Types[sel]
	if !ok {
		return ""
	}
	if _, ok := tv.Type.Underlying().(*types.Map); !ok {
		return ""
	}
	return types.ExprString(sel)
}

func recordGuard(guards map[string]token.Pos, sel string, pos token.Pos) {
	if old, ok := guards[sel]; !ok || pos < old {
		guards[sel] = pos
	}
}

func isNilIdent(e ast.Expr) bool {
	id, ok := e.(*ast.Ident)
	return ok && id.Name == "nil"
}
