package analysis_test

import (
	"testing"

	"ftrepair/internal/analysis"
	"ftrepair/internal/analysis/analyzertest"
)

func TestStatsGuard(t *testing.T) {
	analyzertest.Run(t, analysis.StatsGuard, "testdata/src/statsguard")
}
