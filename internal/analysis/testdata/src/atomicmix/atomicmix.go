// Package atomicmix exercises the atomicmix analyzer: a struct field is
// either fully in the atomic domain or fully outside it.
package atomicmix

import "sync/atomic"

type counters struct {
	hits   int64 // accessed only via atomic — fine
	misses int64 // mixed: atomic adds plus a plain read — flagged
	plain  int64 // never touched by atomic — fine
}

func (c *counters) record(hit bool) {
	if hit {
		atomic.AddInt64(&c.hits, 1)
	} else {
		atomic.AddInt64(&c.misses, 1)
	}
}

func (c *counters) hitCount() int64 {
	return atomic.LoadInt64(&c.hits)
}

// torn reads the mixed field without atomic: on 32-bit targets the load can
// tear, and on any target the racing read is undefined.
func (c *counters) torn() int64 {
	return c.misses // want `plain access to field misses`
}

// lostUpdate is the write-side version of the same bug.
func (c *counters) lostUpdate() {
	c.misses++ // want `plain access to field misses`
}

func (c *counters) plainOnly() int64 {
	c.plain++
	return c.plain
}

// suppressed documents a single-goroutine init-time read.
func (c *counters) suppressed() int64 {
	//lint:ignore atomicmix read happens before any worker starts; no concurrent writer exists yet
	return c.misses
}
