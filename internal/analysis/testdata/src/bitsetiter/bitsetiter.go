// Package bitsetiter (ungated fixture) runs the same map-iteration shapes
// outside the index-addressed hot packages: the import-path gate must keep
// the analyzer silent here, so nothing in this file carries a want.
package bitsetiter

func foldCounts(m map[string]int) int {
	total := 0
	for _, v := range m {
		total += v
	}
	return total
}

func collectKeys(m map[int]bool) []int {
	keys := make([]int, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	return keys
}
