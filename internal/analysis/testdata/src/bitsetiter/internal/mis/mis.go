// Package mis (under the bitsetiter fixture) exercises the analyzer inside
// a gated hot package: the fixture's import path ends in internal/mis, so
// every range-over-map must be flagged regardless of loop body, while map
// lookups, slice ranges, and suppressed walks stay silent.
package mis

type set []uint64

type dedup struct {
	byHash map[uint64][]int32
	sets   []set
}

// lookupOnly indexes maps without ranging over them: never flagged.
func lookupOnly(d *dedup, h uint64) []int32 {
	return d.byHash[h]
}

// sliceRange iterates a slice, the sanctioned dense form: never flagged.
func sliceRange(sets []set) int {
	n := 0
	for _, s := range sets {
		n += len(s)
	}
	return n
}

// mapFold is an order-insensitive fold that mapiter would allow; the
// stricter hot-package discipline flags it anyway.
func mapFold(seen map[int]bool) int {
	n := 0
	for v := range seen { // want `range over map seen in an index-addressed hot package`
		n += v
	}
	return n
}

// mapCollect builds output in map order — the classic determinism bug.
func mapCollect(seen map[string]bool) []string {
	var out []string
	for k := range seen { // want `iterate bitset\.IterateOnes or a sorted index range instead`
		out = append(out, k)
	}
	return out
}

// hashWalk drains the dedup index; hash-bucket order provably cannot reach
// the output here, so the walk is justified and suppressed.
func hashWalk(d *dedup) int {
	n := 0
	//lint:ignore bitsetiter counting only; bucket order never escapes
	for _, bucket := range d.byHash {
		n += len(bucket)
	}
	return n
}
