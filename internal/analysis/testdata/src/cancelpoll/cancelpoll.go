// Package cancelpoll exercises the cancelpoll analyzer: functions whose
// signature carries a cancel channel must poll it inside unbounded loops
// and inside range loops that dispatch cancellation-aware work.
package cancelpoll

// Options mirrors repair.Options: a struct carrying a cancel channel.
type Options struct {
	Cancel <-chan struct{}
}

// canceled is the project's poll idiom.
func canceled(ch <-chan struct{}) bool {
	select {
	case <-ch:
		return true
	default:
		return false
	}
}

// work stands in for a cancellation-aware callee.
func work(opts Options) int { return len(opts.Cancel) }

// condLoopNoPoll: a condition-only loop with no poll in a gated function.
func condLoopNoPoll(opts Options) int {
	n := 0
	for n < 1000000 { // want `never polls the cancel channel`
		n++
	}
	return n
}

// condLoopPolled: the canceled(...) call keeps the loop quiet.
func condLoopPolled(opts Options) int {
	n := 0
	for n < 1000000 {
		if canceled(opts.Cancel) {
			break
		}
		n++
	}
	return n
}

// rangeDispatch: a range loop forwarding cancellation to a callee must
// itself poll, or a canceled callee unwinds and the loop marches on.
func rangeDispatch(items []int, opts Options) int {
	total := 0
	for range items { // want `never polls the cancel channel`
		total += work(opts)
	}
	return total
}

// rangeDispatchPolled is the fixed version of rangeDispatch.
func rangeDispatchPolled(items []int, opts Options) int {
	total := 0
	for range items {
		if canceled(opts.Cancel) {
			break
		}
		total += work(opts)
	}
	return total
}

// rangePlain: per-element work without cancel-aware calls is exempt.
func rangePlain(items []int, opts Options) int {
	sum := 0
	for _, v := range items {
		sum += v
	}
	return sum
}

// threeClause: bounded three-clause setup scans are exempt.
func threeClause(opts Options) int {
	sum := 0
	for i := 0; i < 100; i++ {
		sum += i
	}
	return sum
}

// notGated: functions without a cancel channel in their signature are
// never checked.
func notGated(items []int) {
	for len(items) > 0 {
		items = items[1:]
	}
}

// selectPolled: receiving from the channel in a select counts as a poll.
func selectPolled(cancel <-chan struct{}, ticks <-chan int) int {
	n := 0
	for {
		select {
		case <-cancel:
			return n
		case <-ticks:
			n++
		}
	}
}

// chanParam: a bare chan struct{} parameter gates the function too.
func chanParam(cancel <-chan struct{}) int {
	n := 0
	for n >= 0 { // want `never polls the cancel channel`
		n++
	}
	return n
}

// litOwnSignature: function literals are separate units with their own
// gating; this one carries its own cancel-bearing parameter.
func litOwnSignature() func(Options) int {
	return func(opts Options) int {
		n := 0
		for n < 1000 { // want `never polls the cancel channel`
			n++
		}
		return n
	}
}

// pollOnExitArmOnly: the poll sits on an arm that immediately returns, so
// the iterating path never polls — the CFG-backed check catches what the
// old syntactic matcher (any poll anywhere in the body) was blind to.
func pollOnExitArmOnly(opts Options) int {
	n := 0
	for n < 1000000 { // want `never polls the cancel channel`
		if n == 999999 {
			_ = canceled(opts.Cancel)
			return n
		}
		n++
	}
	return n
}

// pollInLoopCondition: a poll folded into the loop condition runs every
// iteration — on the cycle by construction.
func pollInLoopCondition(opts Options) int {
	n := 0
	for !canceled(opts.Cancel) {
		n++
	}
	return n
}

// outerPollCoversNest: a poll in the enclosing loop keeps the whole nest
// responsive.
func outerPollCoversNest(groups [][]int, opts Options) int {
	total := 0
	for _, g := range groups {
		if canceled(opts.Cancel) {
			break
		}
		for range g {
			total += work(opts)
		}
	}
	return total
}
