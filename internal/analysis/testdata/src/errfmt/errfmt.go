// Package errfmt exercises the errfmt analyzer: wrapping without %w and
// badly shaped error strings.
package errfmt

import (
	"errors"
	"fmt"
)

var errBase = errors.New("base failure")

// wrapped keeps the chain intact.
func wrapped(err error) error {
	return fmt.Errorf("reading config: %w", err)
}

// notWrapped breaks errors.Is/As on the wrapped sentinel.
func notWrapped(err error) error {
	return fmt.Errorf("reading config: %v", err) // want `without %w`
}

// sentinelNotWrapped: the error value need not be named err.
func sentinelNotWrapped() error {
	return fmt.Errorf("stage two: %s", errBase) // want `without %w`
}

// capitalized error strings read badly when wrapped.
func capitalized() error {
	return errors.New("Bad input row") // want `starts with a capitalized word`
}

// punctuated error strings double up when composed.
func punctuated() error {
	return errors.New("bad input row.") // want `ends with`
}

// acronym: all-caps leading words are conventional.
func acronym() error {
	return errors.New("CSV header missing")
}

// fine is the conventional shape.
func fine() error {
	return errors.New("bad input row")
}

// formatted non-error arguments need no %w.
func formatted(n int) error {
	return fmt.Errorf("row %d out of range", n)
}
