// Package floateq exercises the floateq analyzer: == and != on floating
// point operands (costs, distances) are flagged.
package floateq

// cost is a named float type, as repair costs tend to be.
type cost float64

func eq(a, b float64) bool {
	return a == b // want `compares floats exactly`
}

func ne(a, b float64) bool {
	return a != b // want `compares floats exactly`
}

func named(a, b cost) bool {
	return a == b // want `compares floats exactly`
}

func narrow(a, b float32) bool {
	return a != b // want `compares floats exactly`
}

// ints: integer equality is exact and fine.
func ints(a, b int) bool {
	return a == b
}

// ordered comparisons carry no exact-representation trap.
func ordered(a, b float64) bool {
	return a <= b
}

// strings are not floats.
func labels(a, b string) bool {
	return a == b
}
