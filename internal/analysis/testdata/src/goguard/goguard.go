// Package goguard exercises the goguard analyzer: goroutines launched in
// loops need a join discipline the spawning function can see.
package goguard

import "sync"

// waitGroupFanOut is the sanctioned worker-pool shape.
func waitGroupFanOut(jobs []int, run func(int)) {
	var wg sync.WaitGroup
	for _, j := range jobs {
		j := j
		wg.Add(1)
		go func() {
			defer wg.Done()
			run(j)
		}()
	}
	wg.Wait()
}

// completionChannel is the errs-channel shape: one send per goroutine, one
// receive per goroutine.
func completionChannel(workers int, run func() error) error {
	errs := make(chan error, workers)
	for w := 0; w < workers; w++ {
		go func() { errs <- run() }()
	}
	var first error
	for w := 0; w < workers; w++ {
		if e := <-errs; e != nil && first == nil {
			first = e
		}
	}
	return first
}

// unjoined launches per-item goroutines nothing ever waits for.
func unjoined(jobs []int, run func(int)) {
	for _, j := range jobs {
		j := j
		go run(j) // want `goroutine launched in a loop without WaitGroup`
	}
}

// unjoinedClosure is the closure-flavored version.
func unjoinedClosure(jobs []int, sink chan<- int) {
	for _, j := range jobs {
		j := j
		go func() { // want `goroutine launched in a loop without WaitGroup`
			sink <- j * j
		}()
	}
}

// singleGoroutine outside a loop is not goguard's business.
func singleGoroutine(run func()) {
	go run()
}

// suppressed documents a helper-managed lifecycle: the pool joins these
// workers in a different method, which the function-local check cannot see.
func suppressed(jobs []int, run func(int)) {
	for _, j := range jobs {
		j := j
		//lint:ignore goguard workers are joined by pool.close in the owning struct
		go run(j)
	}
}
