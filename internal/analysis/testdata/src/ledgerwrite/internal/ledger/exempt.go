// Package ledger stands in for the real internal/ledger: the whole package
// is exempt from ledgerwrite, so the same direct writes that are flagged in
// the parent fixture must produce no diagnostics here.
package ledger

// RepairEvent mirrors ledger.RepairEvent.
type RepairEvent struct {
	Row, Col int
	Old, New string
}

// Buffer is the sanctioned staging sink; in the exempt package its direct
// append is the implementation, not a bypass.
type Buffer struct {
	events []RepairEvent
}

func (b *Buffer) Add(e RepairEvent) { b.events = append(b.events, e) }

func directWrites(events []RepairEvent, e RepairEvent) []RepairEvent {
	events = append(events, e)
	events[0] = e
	return events
}
