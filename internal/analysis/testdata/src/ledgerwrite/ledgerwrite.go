// Package ledgerwrite exercises the ledgerwrite analyzer: outside
// internal/ledger and internal/repair, RepairEvent slices must be built
// through the ledger.Buffer staging API so every event is sequenced and
// Merkle-hashed; direct appends and element writes are flagged, reads and
// iteration are not.
package ledgerwrite

// RepairEvent mirrors ledger.RepairEvent; the analyzer matches the named
// element type, not the import path.
type RepairEvent struct {
	Row, Col int
	Old, New string
}

// Buffer mirrors ledger.Buffer, the sanctioned staging sink; its methods
// live in an exempt package in the real tree, so calling them here is fine.
type Buffer struct {
	events []RepairEvent
}

func (b *Buffer) Add(e RepairEvent) { b.events = append(b.events, e) } // want `append to b\.events`

// directWrites builds provenance records that skip hashing in every shape
// the analyzer covers.
func directWrites(events []RepairEvent, e RepairEvent) []RepairEvent {
	events = append(events, e)           // want `stage events through ledger\.Buffer`
	events[0] = e                        // want `direct write to events\[\.\.\.\]`
	more := append([]RepairEvent{}, e)   // want `append to \[\]RepairEvent\{\}`
	events = append(events, more[:1]...) // want `stage events through ledger\.Buffer`
	return events
}

// sanctioned stages through the Buffer and only reads the slice directly.
func sanctioned(b *Buffer, e RepairEvent) int {
	b.Add(e)
	total := 0
	for _, ev := range b.events {
		total += ev.Row + ev.Col
	}
	return total + len(b.events)
}

// otherSlices writes to slices of other element types; out of scope.
func otherSlices(rows []string, counts []int) {
	rows = append(rows, "x")
	counts[0] = 1
	_ = rows
}
