// Package lockcopy exercises the lockcopy analyzer: signatures moving a
// sync primitive by value fork the lock state.
package lockcopy

import "sync"

// pool embeds a mutex directly, like the server's worker pool.
type pool struct {
	mu   sync.Mutex
	jobs []int
}

// wrapper contains a lock transitively through a struct field.
type wrapper struct {
	p pool
}

// byValueReceiver copies the lock on every call.
func (p pool) byValueReceiver() int { // want `receiver of byValueReceiver copies sync.Mutex`
	return len(p.jobs)
}

// pointerReceiver shares the lock correctly.
func (p *pool) pointerReceiver() int {
	return len(p.jobs)
}

// byValueParam copies the lock into the callee.
func byValueParam(p pool) int { // want `passes sync.Mutex by value`
	return len(p.jobs)
}

// transitiveParam finds locks nested inside struct fields.
func transitiveParam(w wrapper) int { // want `passes sync.Mutex by value`
	return len(w.p.jobs)
}

// byValueResult returns a forked lock from a constructor.
func byValueResult() pool { // want `passes sync.Mutex by value`
	return pool{}
}

// pointerParam is the correct shape.
func pointerParam(p *pool) int {
	return len(p.jobs)
}

// slices are indirections, so the callee shares the elements.
func sliceParam(ps []pool) int {
	return len(ps)
}

// waitGroupByValue: all no-copy sync primitives are covered.
func waitGroupByValue(wg sync.WaitGroup) { // want `passes sync.WaitGroup by value`
	wg.Wait()
}
