// Package mapiter exercises the mapiter analyzer: ranges over maps must
// not build order-sensitive output (slice appends, channel sends) without
// a deterministic sort before the value escapes.
package mapiter

import "sort"

// collectUnsorted grows a result slice in map order and never sorts it: the
// classic nondeterministic-output bug.
func collectUnsorted(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k) // want `append to keys inside range over map`
	}
	return keys
}

// collectSorted is the idiomatic fix: collect, then sort.
func collectSorted(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// collectSortSlice also counts: sort.Slice mentioning the slice.
func collectSortSlice(m map[string]int) []int {
	var vals []int
	for _, v := range m {
		vals = append(vals, v)
	}
	sort.Slice(vals, func(i, j int) bool { return vals[i] < vals[j] })
	return vals
}

// scratchInsideLoop appends to a slice declared inside the loop body; the
// per-iteration scratch cannot leak map order by itself.
func scratchInsideLoop(m map[string][]int) int {
	total := 0
	for _, vs := range m {
		var local []int
		local = append(local, vs...)
		total += len(local)
	}
	return total
}

// commutativeFold sums values: order-insensitive, never flagged.
func commutativeFold(m map[string]int) int {
	sum := 0
	for _, v := range m {
		sum += v
	}
	return sum
}

// mapToMap rebuilds a map from a map: insertion order is irrelevant to the
// resulting map, so nothing is flagged.
func mapToMap(m map[string]int) map[string]int {
	out := make(map[string]int, len(m))
	for k, v := range m {
		out[k] = v
	}
	return out
}

// bucket is a per-iteration accumulator used by the struct-field cases.
type bucket struct {
	key  string
	vals []string
}

// scratchStructField appends to a field of a struct declared inside the
// loop: the root identifier is per-iteration scratch, and the escape into
// out is sorted before the function returns — nothing to flag.
func scratchStructField(m map[string]map[string]bool) []bucket {
	var out []bucket
	for k, vs := range m {
		b := bucket{key: k}
		for v := range vs {
			b.vals = append(b.vals, v)
		}
		sort.Strings(b.vals)
		out = append(out, b)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].key < out[j].key })
	return out
}

// outerStructField appends to a field rooted outside the loop without a
// sort: map order leaks through the field exactly like a bare slice.
func outerStructField(m map[string]bool) bucket {
	var b bucket
	for k := range m {
		b.vals = append(b.vals, k) // want `append to b.vals inside range over map`
	}
	return b
}

// sendInMapOrder streams elements to a consumer in randomized order.
func sendInMapOrder(m map[string]int, ch chan<- string) {
	for k := range m {
		ch <- k // want `send on ch inside range over map`
	}
}

// suppressed documents an order-irrelevant accumulation with a justified
// directive; the harness must drop the diagnostic.
func suppressed(m map[string]int) []string {
	var keys []string
	for k := range m {
		//lint:ignore mapiter feeds a set-membership check; order never observed
		keys = append(keys, k)
	}
	return keys
}
