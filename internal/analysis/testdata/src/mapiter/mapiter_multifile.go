package mapiter

import "sort"

// Second file of the fixture package: multi-file fixtures load as one
// package, so analyzers and // want matching span files.

// edgesUnsorted mirrors the violation-graph shape the analyzer exists for:
// emitting edge records from a map-keyed registry.
type edge struct{ u, v int }

func edgesUnsorted(adj map[int][]int) []edge {
	var edges []edge
	for u, vs := range adj {
		for _, v := range vs {
			edges = append(edges, edge{u, v}) // want `append to edges inside range over map`
		}
	}
	return edges
}

// edgesSorted sorts before returning, restoring determinism.
func edgesSorted(adj map[int][]int) []edge {
	var edges []edge
	for u, vs := range adj {
		for _, v := range vs {
			edges = append(edges, edge{u, v})
		}
	}
	sort.Slice(edges, func(i, j int) bool {
		if edges[i].u != edges[j].u {
			return edges[i].u < edges[j].u
		}
		return edges[i].v < edges[j].v
	})
	return edges
}
