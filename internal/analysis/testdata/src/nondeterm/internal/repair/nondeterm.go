// Package repair (under the nondeterm fixture) exercises the nondeterm
// analyzer inside a checked decision package: the fixture's import path
// ends in internal/repair, which is one of the gated suffixes.
package repair

import (
	"math/rand"
	"time"
)

type record struct {
	value string
	stamp time.Time
}

// durationOnly is the sanctioned wall-clock idiom: the instant only ever
// feeds duration measurement.
func durationOnly() float64 {
	start := time.Now()
	work()
	return time.Since(start).Seconds()
}

// durationMethod compares instants with Before: still measurement.
func durationMethod(deadline time.Time) bool {
	return time.Now().Before(deadline)
}

// stampAsData stores the wall clock into repair state: two runs now differ.
func stampAsData(r *record) {
	r.stamp = time.Now() // want `time.Now\(\) result used as data`
}

// mixedUse measures AND leaks the instant; the leak taints it.
func mixedUse() int64 {
	start := time.Now() // want `time.Now\(\) result used as data`
	work()
	_ = time.Since(start)
	return start.UnixNano()
}

// randomTieBreak uses math/rand in a decision path.
func randomTieBreak(n int) int {
	return rand.Intn(n) // want `rand.Intn in a repair decision package`
}

// firstKeyWins selects whichever element the runtime yields first.
func firstKeyWins(m map[string]int) int {
	for _, v := range m { // want `returns unconditionally on the first element`
		return v
	}
	return 0
}

// pickAnyBreak is the break-flavored version of the same bug.
func pickAnyBreak(m map[string]int) string {
	var k string
	for key := range m { // want `breaks unconditionally on the first element`
		k = key
		break
	}
	return k
}

// conditionalSearch tests a predicate per element: any iteration order
// produces the same answer, so it is exempt.
func conditionalSearch(m map[string]int, want int) bool {
	for _, v := range m {
		if v == want {
			return true
		}
	}
	return false
}

// suppressedRand documents a justified exception.
func suppressedRand(n int) int {
	//lint:ignore nondeterm synthetic jitter for a benchmark harness, not a repair decision
	return rand.Intn(n)
}

func work() {}
