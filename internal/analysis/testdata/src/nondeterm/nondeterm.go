// Package nondeterm is the allowlisted half of the nondeterm fixture: its
// import path matches no gated suffix, so wall-clock and rand use produce
// no diagnostics — timing, ids and seeding are legitimate outside the
// repair decision packages.
package nondeterm

import (
	"math/rand"
	"time"
)

// requestID is the kind of code the obs/server allowlist exists for.
func requestID() int64 {
	return time.Now().UnixNano() + int64(rand.Intn(1024))
}
