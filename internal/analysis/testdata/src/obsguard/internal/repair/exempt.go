// Package repair sits under an internal/repair path, so obsguard exempts
// it entirely: this package owns the Stats maps and the registry flush, and
// its direct writes are the sanctioned ones. No line here may produce a
// diagnostic.
package repair

type Result struct {
	Stats map[string]int
}

func fill(r *Result) {
	r.Stats = make(map[string]int)
	r.Stats["nodes"] = 4
	r.Stats["treeVisited"] += 2
	r.Stats["combinations"]++
	delete(r.Stats, "nodes")
}
