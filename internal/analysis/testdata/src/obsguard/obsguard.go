// Package obsguard exercises the obsguard analyzer: outside internal/obs
// and internal/repair, Stats maps must be written through Result.AddStat so
// the obs registry sees every counter; direct writes are flagged, reads are
// not.
package obsguard

// Result mirrors repair.Result's accounting map and its sanctioned writer.
type Result struct {
	Stats map[string]int
}

func (r *Result) AddStat(key string, n int) {
	if r.Stats == nil {
		r.Stats = make(map[string]int)
	}
	r.Stats[key] += n // want `direct write`
}

// Meter has a Stats field that is not a map; indexing it is out of scope.
type Meter struct {
	Stats [4]int
}

// directWrites bypass the registry bookkeeping in every assignment shape.
func directWrites(r *Result) {
	r.Stats["certainFixes"] = 1 // want `use Result\.AddStat`
	r.Stats["rounds"] += 2      // want `use Result\.AddStat`
	r.Stats["hits"]++           // want `use Result\.AddStat`
	delete(r.Stats, "rounds")   // want `delete from r\.Stats`
}

// sanctioned goes through the helper and only reads the map directly.
func sanctioned(r *Result) int {
	r.AddStat("certainFixes", 1)
	return r.Stats["certainFixes"] + len(r.Stats)
}

// notAMap indexes a non-map Stats field; out of scope.
func notAMap(m *Meter) {
	m.Stats[0] = 7
}

// localMap writes to a map that is not a Stats selector; out of scope.
func localMap() {
	stats := map[string]int{}
	stats["x"] = 1
}
