// Package obs is a minimal mirror of the real internal/obs surface for the
// spanend fixture: a Span type with End, reached through Begin and Child.
// The spanend analyzer matches structurally (*Span with an End method), so
// this fixture package stands in for the real one and doubles as the
// cross-package loading case for the analyzer test harness.
package obs

// Phase names a pipeline phase.
type Phase string

// Trace collects spans.
type Trace struct{ open int }

// Span is one timed region.
type Span struct{ tr *Trace }

// Begin opens a span.
func Begin(t *Trace, p Phase) *Span { return &Span{tr: t} }

// Child opens a sub-span.
func (s *Span) Child(p Phase) *Span { return &Span{} }

// End closes the span (idempotent in the real package).
func (s *Span) End() {}

// Add attaches a counter.
func (s *Span) Add(key string, n int64) {}
