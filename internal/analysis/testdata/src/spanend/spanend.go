// Package spanend exercises the spanend analyzer: every locally started
// span must be Ended on every path to return, with defers and ownership
// transfer as the accepted alternatives. The obs import is a fixture-local
// package (cross-package loading through load.Dir's source fallback).
package spanend

import (
	"errors"

	"spanend/obs"
)

var errCanceled = errors.New("canceled")

func work() error { return nil }

// happyAndCancel ends on both the cancel unwind and the happy path.
func happyAndCancel(tr *obs.Trace, canceled bool) error {
	sp := obs.Begin(tr, "expand")
	if canceled {
		sp.End()
		return errCanceled
	}
	err := work()
	sp.End()
	return err
}

// cancelLeak forgets the span on the early return — the exact leak class
// the analyzer exists for.
func cancelLeak(tr *obs.Trace, canceled bool) error {
	sp := obs.Begin(tr, "expand") // want `span sp is not Ended on every return path`
	if canceled {
		return errCanceled
	}
	err := work()
	sp.End()
	return err
}

// deferred covers every exit, panics included.
func deferred(tr *obs.Trace, canceled bool) error {
	sp := obs.Begin(tr, "greedygrow")
	defer sp.End()
	if canceled {
		return errCanceled
	}
	return work()
}

// deferredClosure ends inside a deferred closure.
func deferredClosure(tr *obs.Trace) error {
	sp := obs.Begin(tr, "apply")
	defer func() {
		sp.Add("rows", 1)
		sp.End()
	}()
	return work()
}

// diamond ends in both arms.
func diamond(tr *obs.Trace, fast bool) {
	sp := obs.Begin(tr, "targetsearch")
	if fast {
		sp.Add("fast", 1)
		sp.End()
	} else {
		sp.End()
	}
}

// oneArm misses the else arm.
func oneArm(tr *obs.Trace, fast bool) {
	sp := obs.Begin(tr, "targetsearch") // want `span sp is not Ended on every return path`
	if fast {
		sp.End()
	}
}

// handedOff transfers ownership: the callee is responsible now.
func finishSpan(sp *obs.Span) { sp.End() }

func handedOff(tr *obs.Trace) {
	sp := obs.Begin(tr, "detect")
	finishSpan(sp)
}

// capturedByWorker hands the span to a goroutine closure (per-worker spans
// in the shard pool do this); outside the unit's CFG, so trusted.
func capturedByWorker(tr *obs.Trace, done chan struct{}) {
	sp := obs.Begin(tr, "increpair")
	go func() {
		defer close(done)
		sp.End()
	}()
}

// childSpans are spans too.
func childSpans(parent *obs.Span, canceled bool) error {
	child := parent.Child("apply") // want `span child is not Ended on every return path`
	if canceled {
		return errCanceled
	}
	child.End()
	return nil
}

// panicPathExempt: the panic arm unwinds without End, but panic paths are
// exempt when no defer exists (CloseOpen sweeps abandoned traces); the
// return path Ends properly, so nothing is flagged.
func panicPathExempt(tr *obs.Trace, bad bool) {
	sp := obs.Begin(tr, "detect")
	if bad {
		panic("invariant broken")
	}
	sp.End()
}

// suppressed documents a span intentionally left open (progress UI owns
// it); the directive must silence the finding.
func suppressed(tr *obs.Trace) {
	//lint:ignore spanend progress spinner span is ended by the UI loop on shutdown
	sp := obs.Begin(tr, "detect")
	sp.Add("n", 1)
}
