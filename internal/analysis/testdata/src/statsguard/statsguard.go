// Package statsguard exercises the statsguard analyzer: writes into a
// Stats map must be dominated by a nil check or an assignment to the map.
package statsguard

// Result mirrors repair.Result's optional accounting map.
type Result struct {
	Stats map[string]int
	Name  string
}

// Meter has a Stats field that is not a map; indexing it is out of scope.
type Meter struct {
	Stats [4]int
}

// unguarded writes into a possibly-nil Stats map.
func unguarded(r *Result) {
	r.Stats["certainFixes"]++ // want `without a preceding nil check`
}

// unguardedAssign is the assignment form of the same bug.
func unguardedAssign(r *Result) {
	r.Stats["rounds"] = 3 // want `without a preceding nil check`
}

// guarded initializes the map when nil before writing.
func guarded(r *Result) {
	if r.Stats == nil {
		r.Stats = make(map[string]int)
	}
	r.Stats["certainFixes"]++
}

// assigned writes only after assigning a fresh map.
func assigned() *Result {
	r := &Result{}
	r.Stats = make(map[string]int)
	r.Stats["rounds"] = 1
	return r
}

// otherReceiver: a guard on one value does not cover another.
func otherReceiver(a, b *Result) {
	if a.Stats == nil {
		a.Stats = make(map[string]int)
	}
	a.Stats["ok"] = 1
	b.Stats["ok"] = 1 // want `without a preceding nil check`
}

// nonMapStats: indexing a non-map Stats field cannot panic on nil.
func nonMapStats(m *Meter) {
	m.Stats[0] = 7
}

// notStats: other map fields are out of scope for this analyzer.
func notStats(counts map[string]int) {
	counts["x"]++
}
