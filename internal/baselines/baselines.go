// Package baselines reimplements the algorithmic cores of the three
// comparators in the paper's §6.4, as it describes them:
//
//   - NADEEF (Dallachiesa et al., SIGMOD 2013): equality-based violation
//     detection; within each left-hand-side equivalence class, conflicting
//     right-hand-side cells repair to the class's most frequent value. It
//     "only repairs RHS errors" — LHS typos and swaps are invisible to it.
//   - URM, the Unified Repair Model (Chiang & Miller, ICDE 2011), data
//     repair option only: per FD, patterns over X∪Y split into frequent
//     "core" patterns and infrequent "deviant" patterns; each deviant
//     rewrites to its nearest core pattern when doing so shortens the
//     description length, processing FDs one at a time and always mapping
//     the same deviant to the same core.
//   - Llunatic (Geerts et al., PVLDB 2013) with the frequency cost-manager:
//     like the equivalence-class repair, but when no value dominates the
//     class, the conflicting cells are set to a fresh variable (an unknown
//     to be resolved by a user), which the paper scores as half-correct
//     ("Metric 0.5").
//
// These reimplementations preserve the behaviours the paper's comparison
// figures measure — which error kinds each baseline can and cannot repair —
// rather than the systems' full engineering.
package baselines

import (
	"fmt"
	"sort"

	"ftrepair/internal/dataset"
	"ftrepair/internal/fd"
	"ftrepair/internal/strsim"
)

// VariableMarker prefixes the variables Llunatic-style repairs introduce.
const VariableMarker = "_V"

// maxRounds bounds the chase: repairing one FD can surface violations of
// another, so the algorithms sweep the FD list until a fixpoint or this
// many rounds.
const maxRounds = 5

// NADEEF repairs rel with equality-based equivalence classes: for every FD
// and every LHS group whose RHS values conflict, all the group's RHS cells
// take the group's most frequent RHS value (ties break lexicographically).
// A fired cancel channel (nil = never) stops the chase early and returns
// the partially repaired relation.
func NADEEF(rel *dataset.Relation, set *fd.Set, cancel <-chan struct{}) *dataset.Relation {
	out := rel.Clone()
	for round := 0; round < maxRounds; round++ {
		changed := false
		for _, f := range set.FDs {
			if canceled(cancel) {
				return out
			}
			if repairGroupsToMode(out, f, nil, cancel) {
				changed = true
			}
		}
		if !changed {
			break
		}
	}
	return out
}

// Llunatic repairs rel like NADEEF but with the frequency cost-manager's
// confidence rule: a group repairs to its modal RHS only when the mode
// covers a strict majority of the group; otherwise every conflicting RHS
// cell becomes a fresh variable. Cancellation behaves as in NADEEF.
func Llunatic(rel *dataset.Relation, set *fd.Set, cancel <-chan struct{}) *dataset.Relation {
	out := rel.Clone()
	fresh := 0
	nextVar := func() string {
		fresh++
		return fmt.Sprintf("%s%d", VariableMarker, fresh)
	}
	for round := 0; round < maxRounds; round++ {
		changed := false
		for _, f := range set.FDs {
			if canceled(cancel) {
				return out
			}
			if repairGroupsToMode(out, f, nextVar, cancel) {
				changed = true
			}
		}
		if !changed {
			break
		}
	}
	return out
}

// repairGroupsToMode applies one equivalence-class sweep for f. When
// nextVar is nil the modal value always wins (NADEEF); otherwise the mode
// must cover a strict majority, and groups without one get a variable
// (Llunatic). It reports whether anything changed; a fired cancel channel
// stops the sweep between groups.
func repairGroupsToMode(out *dataset.Relation, f *fd.FD, nextVar func() string, cancel <-chan struct{}) bool {
	groups := make(map[string][]int) // LHS key -> rows
	for i, t := range out.Tuples {
		k := t.Key(f.LHS)
		groups[k] = append(groups[k], i)
	}
	keys := make([]string, 0, len(groups))
	for k := range groups {
		keys = append(keys, k)
	}
	sort.Strings(keys) // deterministic sweep order
	changed := false
	for _, k := range keys {
		if canceled(cancel) {
			return changed
		}
		rows := groups[k]
		counts := make(map[string]int)
		for _, r := range rows {
			counts[out.Tuples[r].Key(f.RHS)]++
		}
		if len(counts) < 2 {
			continue
		}
		mode, modeCount := "", 0
		for v, c := range counts {
			if c > modeCount || (c == modeCount && v < mode) {
				mode, modeCount = v, c
			}
		}
		if nextVar != nil && modeCount*2 <= len(rows) {
			// No dominant value: set every conflicting RHS cell of the
			// group to one fresh variable (they must eventually be equal).
			v := nextVar()
			for _, r := range rows {
				for _, c := range f.RHS {
					if out.Tuples[r][c] != v {
						out.Tuples[r][c] = v
						changed = true
					}
				}
			}
			continue
		}
		// Repair the group to the modal RHS: copy the cell values of a
		// row carrying the mode.
		var src dataset.Tuple
		for _, r := range rows {
			if out.Tuples[r].Key(f.RHS) == mode {
				src = out.Tuples[r]
				break
			}
		}
		for _, r := range rows {
			for _, c := range f.RHS {
				if out.Tuples[r][c] != src[c] {
					out.Tuples[r][c] = src[c]
					changed = true
				}
			}
		}
	}
	return changed
}

// URMOptions tunes the Unified-Repair-Model baseline.
type URMOptions struct {
	// CoreFactor scales the frequency threshold separating core from
	// deviant patterns: a pattern is core when its frequency is at least
	// CoreFactor times the mean pattern frequency of its FD. Zero means 1.
	CoreFactor float64
	// MaxDist is the normalized distance above which rewriting a deviant
	// to its nearest core does not pay off in description length and the
	// deviant is left untouched. Zero means 0.5.
	MaxDist float64
}

// URM repairs rel with the core/deviant-pattern model: per FD (processed in
// order, one at a time), the patterns over X∪Y with frequency at least the
// threshold become core; every deviant pattern rewrites all its attributes
// to the nearest core pattern, provided the rewrite is close enough to
// shorten the description length. The same deviant always maps to the same
// core, whatever tuple carries it. A fired cancel channel (nil = never)
// stops between FDs and returns the partially repaired relation.
func URM(rel *dataset.Relation, set *fd.Set, opts URMOptions, cancel <-chan struct{}) *dataset.Relation {
	if opts.CoreFactor <= 0 {
		opts.CoreFactor = 1
	}
	if opts.MaxDist <= 0 {
		opts.MaxDist = 0.5
	}
	out := rel.Clone()
	for _, f := range set.FDs {
		if canceled(cancel) {
			return out
		}
		attrs := f.Attrs()
		freq := make(map[string]int)
		rep := make(map[string][]string)
		for _, t := range out.Tuples {
			k := t.Key(attrs)
			freq[k]++
			if _, ok := rep[k]; !ok {
				rep[k] = t.Project(attrs)
			}
		}
		if len(freq) == 0 {
			continue
		}
		total := 0
		for _, c := range freq {
			total += c
		}
		threshold := opts.CoreFactor * float64(total) / float64(len(freq))
		var cores []string
		for k, c := range freq {
			if float64(c) >= threshold {
				cores = append(cores, k)
			}
		}
		sort.Strings(cores)
		if len(cores) == 0 {
			continue
		}
		// Map each deviant pattern to its nearest core (or nothing).
		target := make(map[string][]string)
		for k := range freq {
			if float64(freq[k]) >= threshold {
				continue
			}
			best, bestDist := "", opts.MaxDist
			for _, ck := range cores {
				d := patternDist(rep[k], rep[ck])
				if d <= bestDist {
					best, bestDist = ck, d
				}
			}
			if best != "" {
				target[k] = rep[best]
			}
		}
		for _, t := range out.Tuples {
			if vals, ok := target[t.Key(attrs)]; ok {
				for i, c := range attrs {
					t[c] = vals[i]
				}
			}
		}
	}
	return out
}

// canceled reports whether the cancel channel has fired; a nil channel
// never cancels.
func canceled(ch <-chan struct{}) bool {
	select {
	case <-ch:
		return true
	default:
		return false
	}
}

// patternDist is the mean normalized edit distance between two aligned
// projections.
func patternDist(a, b []string) float64 {
	var sum float64
	for i := range a {
		sum += strsim.NormalizedEdit(a[i], b[i])
	}
	return sum / float64(len(a))
}
