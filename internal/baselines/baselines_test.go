package baselines_test

import (
	"strings"
	"testing"

	"ftrepair/internal/baselines"
	"ftrepair/internal/dataset"
	"ftrepair/internal/eval"
	"ftrepair/internal/fd"
	"ftrepair/internal/gen"
	"ftrepair/internal/repair"
)

func citizens(t *testing.T) (*dataset.Relation, *dataset.Relation, *fd.Set) {
	t.Helper()
	dirty, clean := gen.Citizens()
	set, err := fd.NewSet(gen.CitizensFDs(dirty.Schema), 0.3)
	if err != nil {
		t.Fatal(err)
	}
	return dirty, clean, set
}

func TestNADEEFCitizens(t *testing.T) {
	// NADEEF repairs only the errors visible as RHS conflicts inside
	// equality groups: t4[State] (New York group), t9[Level] (Bachelors
	// group), t10[State] (Boston group, MA majority). It cannot see the
	// typos t6[Education], t8[City], t10[Education], misses t8[Level]
	// (Masters-group minority is 3 vs... depends on group), and wrongly
	// repairs t5[State] to MA — the paper's Example 2.
	dirty, clean, set := citizens(t)
	out := baselines.NADEEF(dirty, set, nil)
	schema := dirty.Schema
	state := schema.MustIndex("State")
	lvl := schema.MustIndex("Level")
	edu := schema.MustIndex("Education")
	city := schema.MustIndex("City")
	if out.Tuples[3][state] != "NY" {
		t.Errorf("t4 State = %q, want NY", out.Tuples[3][state])
	}
	if out.Tuples[8][lvl] != "3" {
		t.Errorf("t9 Level = %q, want 3", out.Tuples[8][lvl])
	}
	if out.Tuples[9][state] != "MA" {
		t.Errorf("t10 State = %q, want MA", out.Tuples[9][state])
	}
	// The bad grouping: t5 keeps City=Boston, so its State is dragged to
	// the Boston majority MA — the wrong repair the paper opens with.
	if out.Tuples[4][state] != "MA" {
		t.Errorf("t5 State = %q; expected the characteristic wrong repair to MA", out.Tuples[4][state])
	}
	// Typos invisible to equality-based detection survive.
	if out.Tuples[5][edu] != "Masers" || out.Tuples[7][city] != "Boton" || out.Tuples[9][edu] != "Bachelers" {
		t.Error("NADEEF repaired a typo it cannot detect")
	}
	// Overall it must do worse than the FT model on the same input.
	q, err := eval.Evaluate(clean, dirty, out, eval.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if q.Recall >= 0.7 {
		t.Errorf("NADEEF recall %.3f suspiciously high", q.Recall)
	}
}

func TestLlunaticCitizens(t *testing.T) {
	dirty, clean, set := citizens(t)
	out := baselines.Llunatic(dirty, set, nil)
	state := dirty.Schema.MustIndex("State")
	// Boston group States: {NY(t5), MA(t6), MA(t7), MA(t9), NY(t10)} — MA
	// is a strict majority (3/5), so the group repairs to MA.
	if out.Tuples[9][state] != "MA" {
		t.Errorf("t10 State = %q, want MA", out.Tuples[9][state])
	}
	// New York group States: {NY,NY,NY,MA}: NY is a strict majority.
	if out.Tuples[3][state] != "NY" {
		t.Errorf("t4 State = %q, want NY", out.Tuples[3][state])
	}
	q, err := eval.Evaluate(clean, dirty, out, eval.Options{PartialMarker: baselines.VariableMarker})
	if err != nil {
		t.Fatal(err)
	}
	if q.Recall >= 0.7 {
		t.Errorf("Llunatic recall %.3f suspiciously high", q.Recall)
	}
}

func TestLlunaticEmitsVariables(t *testing.T) {
	// A 50/50 conflict has no dominant value: Llunatic must emit one fresh
	// variable for the whole group where NADEEF just picks a value.
	schema := dataset.Strings("X", "Y")
	rel, _ := dataset.FromRows(schema, [][]string{
		{"a", "1"}, {"a", "2"},
	})
	set, err := fd.NewSet([]*fd.FD{fd.MustParse(schema, "X->Y")}, 0.3)
	if err != nil {
		t.Fatal(err)
	}
	out := baselines.Llunatic(rel, set, nil)
	v0, v1 := out.Tuples[0][1], out.Tuples[1][1]
	if !strings.HasPrefix(v0, baselines.VariableMarker) || v0 != v1 {
		t.Fatalf("variables = %q, %q", v0, v1)
	}
	// NADEEF picks the lexicographically smaller mode on ties.
	nOut := baselines.NADEEF(rel, set, nil)
	if nOut.Tuples[0][1] != "1" || nOut.Tuples[1][1] != "1" {
		t.Fatalf("NADEEF tie repair = %q, %q", nOut.Tuples[0][1], nOut.Tuples[1][1])
	}
}

func TestURMCitizens(t *testing.T) {
	dirty, clean, set := citizens(t)
	out := baselines.URM(dirty, set, baselines.URMOptions{}, nil)
	edu := dirty.Schema.MustIndex("Education")
	// URM handles typos when the deviant pattern is close to a core
	// pattern: (Masers,4) x1 is deviant, (Masters,4) x2 is core-ish.
	if out.Tuples[5][edu] != "Masters" {
		t.Errorf("t6 Education = %q, want Masters (deviant -> core)", out.Tuples[5][edu])
	}
	q, err := eval.Evaluate(clean, dirty, out, eval.Options{})
	if err != nil {
		t.Fatal(err)
	}
	// URM catches more than NADEEF (it sees LHS deviants) but is
	// frequency-driven, so precision suffers.
	nQ, err := eval.Evaluate(clean, dirty, baselines.NADEEF(dirty, set, nil), eval.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if q.Recall < nQ.Recall {
		t.Errorf("URM recall %.3f below NADEEF %.3f", q.Recall, nQ.Recall)
	}
}

func TestURMDeviantTooFarStays(t *testing.T) {
	schema := dataset.Strings("X", "Y")
	rel, _ := dataset.FromRows(schema, [][]string{
		{"aaaa", "1"}, {"aaaa", "1"}, {"aaaa", "1"},
		{"zzzz", "9"}, // deviant, far from the core
	})
	set, err := fd.NewSet([]*fd.FD{fd.MustParse(schema, "X->Y")}, 0.3)
	if err != nil {
		t.Fatal(err)
	}
	out := baselines.URM(rel, set, baselines.URMOptions{}, nil)
	if out.Tuples[3][0] != "zzzz" {
		t.Fatalf("far deviant rewritten to %q", out.Tuples[3][0])
	}
	// A close deviant rewrites.
	rel2, _ := dataset.FromRows(schema, [][]string{
		{"aaaa", "1"}, {"aaaa", "1"}, {"aaaa", "1"},
		{"aaab", "1"},
	})
	out2 := baselines.URM(rel2, set, baselines.URMOptions{}, nil)
	if out2.Tuples[3][0] != "aaaa" {
		t.Fatalf("close deviant = %q, want aaaa", out2.Tuples[3][0])
	}
}

func TestBaselinesDeterministicAndNonMutating(t *testing.T) {
	dirty, _, set := citizens(t)
	orig := dirty.Clone()
	a := baselines.NADEEF(dirty, set, nil)
	b := baselines.NADEEF(dirty, set, nil)
	if cells, err := dataset.Diff(a, b); err != nil || len(cells) != 0 {
		t.Fatalf("NADEEF nondeterministic: %v %v", cells, err)
	}
	u1 := baselines.URM(dirty, set, baselines.URMOptions{}, nil)
	u2 := baselines.URM(dirty, set, baselines.URMOptions{}, nil)
	if cells, err := dataset.Diff(u1, u2); err != nil || len(cells) != 0 {
		t.Fatalf("URM nondeterministic: %v %v", cells, err)
	}
	l1 := baselines.Llunatic(dirty, set, nil)
	l2 := baselines.Llunatic(dirty, set, nil)
	if cells, err := dataset.Diff(l1, l2); err != nil || len(cells) != 0 {
		t.Fatalf("Llunatic nondeterministic: %v %v", cells, err)
	}
	if cells, err := dataset.Diff(orig, dirty); err != nil || len(cells) != 0 {
		t.Fatalf("baseline mutated input: %v %v", cells, err)
	}
}

func TestBaselinesVsFTModelOnHOSP(t *testing.T) {
	// The paper's Table 3 shape: our repair beats every baseline on both
	// precision and recall on the HOSP workload.
	inst, err := eval.Prepare(eval.Setup{Workload: "hosp", N: 1000, ErrorRate: 0.04, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	ours, err := repair.GreedyM(inst.Dirty, inst.Set, inst.Cfg, repair.Options{})
	if err != nil {
		t.Fatal(err)
	}
	oursQ, err := eval.Evaluate(inst.Clean, inst.Dirty, ours.Repaired, eval.Options{})
	if err != nil {
		t.Fatal(err)
	}
	for _, b := range []struct {
		name string
		out  *dataset.Relation
		opts eval.Options
	}{
		{"NADEEF", baselines.NADEEF(inst.Dirty, inst.Set, nil), eval.Options{}},
		{"URM", baselines.URM(inst.Dirty, inst.Set, baselines.URMOptions{}, nil), eval.Options{}},
		{"Llunatic", baselines.Llunatic(inst.Dirty, inst.Set, nil), eval.Options{PartialMarker: baselines.VariableMarker}},
	} {
		q, err := eval.Evaluate(inst.Clean, inst.Dirty, b.out, b.opts)
		if err != nil {
			t.Fatal(err)
		}
		t.Logf("%-8s P=%.3f R=%.3f (ours: P=%.3f R=%.3f)", b.name, q.Precision, q.Recall, oursQ.Precision, oursQ.Recall)
		if q.Recall >= oursQ.Recall {
			t.Errorf("%s recall %.3f >= ours %.3f", b.name, q.Recall, oursQ.Recall)
		}
	}
}

func TestBaselinesCanceled(t *testing.T) {
	dirty, _, set := citizens(t)
	cancel := make(chan struct{})
	close(cancel)
	// A fired channel stops each baseline before it repairs anything; the
	// result is an untouched clone of the input.
	for name, out := range map[string]*dataset.Relation{
		"NADEEF":   baselines.NADEEF(dirty, set, cancel),
		"Llunatic": baselines.Llunatic(dirty, set, cancel),
		"URM":      baselines.URM(dirty, set, baselines.URMOptions{}, cancel),
	} {
		changed, err := dataset.Diff(dirty, out)
		if err != nil {
			t.Fatal(err)
		}
		if len(changed) != 0 {
			t.Fatalf("%s repaired %d cells despite cancellation", name, len(changed))
		}
	}
}
