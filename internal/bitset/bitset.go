// Package bitset provides the fixed-capacity bit vector shared by the
// hot-core packages (vgraph, mis, repair): vertex sets addressed by dense
// index, with word-parallel combination operators. A Set never grows — the
// capacity is fixed at construction and every operand of a binary operation
// must have the same word length — which keeps every operation a straight
// loop over equal-length []uint64 with no bounds juggling.
//
// Determinism contract: all iteration primitives (IterateOnes, NextOneFrom,
// AppendMembers) visit bits in ascending index order, so code iterating a
// Set is deterministic by construction — unlike ranging over the
// map[int]bool sets they replaced. Hash is a pure function of the bit
// pattern (FNV-1a over the words), usable as a dedup pre-key as long as
// collisions are resolved with Equal.
package bitset

import "math/bits"

// Set is a bit vector over a dense index universe [0, n). The zero value is
// an empty set of capacity 0; use New for a sized one.
type Set []uint64

// WordsFor returns the number of 64-bit words needed for capacity n.
func WordsFor(n int) int { return (n + 63) / 64 }

// New returns an empty set with capacity for indices [0, n).
func New(n int) Set { return make(Set, WordsFor(n)) }

// Set adds index i.
func (s Set) Set(i int) { s[i>>6] |= 1 << (uint(i) & 63) }

// Clear removes index i.
func (s Set) Clear(i int) { s[i>>6] &^= 1 << (uint(i) & 63) }

// Has reports whether index i is present.
func (s Set) Has(i int) bool { return s[i>>6]&(1<<(uint(i)&63)) != 0 }

// Reset empties the set in place.
func (s Set) Reset() {
	for i := range s {
		s[i] = 0
	}
}

// Clone returns an independent copy of s.
func (s Set) Clone() Set {
	c := make(Set, len(s))
	copy(c, s)
	return c
}

// Copy overwrites s with o. The two must have equal word length.
func (s Set) Copy(o Set) { copy(s, o) }

// Count returns the number of set bits.
func (s Set) Count() int {
	n := 0
	for _, w := range s {
		n += bits.OnesCount64(w)
	}
	return n
}

// Intersects reports whether s and o share a bit.
func (s Set) Intersects(o Set) bool {
	for i, w := range s {
		if w&o[i] != 0 {
			return true
		}
	}
	return false
}

// Equal reports whether s and o hold exactly the same bits.
func (s Set) Equal(o Set) bool {
	for i, w := range s {
		if w != o[i] {
			return false
		}
	}
	return true
}

// And sets s = a ∩ b word-parallel. Any of s, a, b may alias: each word of
// the result depends only on the same word of the operands.
func (s Set) And(a, b Set) {
	for i := range s {
		s[i] = a[i] & b[i]
	}
}

// AndNot sets s = a \ b word-parallel. Aliasing-safe like And.
func (s Set) AndNot(a, b Set) {
	for i := range s {
		s[i] = a[i] &^ b[i]
	}
}

// Or sets s = a ∪ b word-parallel. Aliasing-safe like And.
func (s Set) Or(a, b Set) {
	for i := range s {
		s[i] = a[i] | b[i]
	}
}

// IterateOnes calls fn for every set bit in ascending index order, stopping
// early when fn returns false.
func (s Set) IterateOnes(fn func(i int) bool) {
	for wi, w := range s {
		for w != 0 {
			j := bits.TrailingZeros64(w)
			if !fn(wi<<6 + j) {
				return
			}
			w &= w - 1
		}
	}
}

// NextOneFrom returns the smallest set index >= i, or -1 when none exists.
func (s Set) NextOneFrom(i int) int {
	if i < 0 {
		i = 0
	}
	wi := i >> 6
	if wi >= len(s) {
		return -1
	}
	// Mask off bits below i in the first word, then scan whole words.
	w := s[wi] &^ ((1 << (uint(i) & 63)) - 1)
	for {
		if w != 0 {
			return wi<<6 + bits.TrailingZeros64(w)
		}
		wi++
		if wi >= len(s) {
			return -1
		}
		w = s[wi]
	}
}

// AppendMembers appends the set indices in ascending order to dst and
// returns the extended slice. Passing dst[:0] reuses its backing array.
func (s Set) AppendMembers(dst []int) []int {
	for wi, w := range s {
		for w != 0 {
			j := bits.TrailingZeros64(w)
			dst = append(dst, wi<<6+j)
			w &= w - 1
		}
	}
	return dst
}

// Hash returns an FNV-1a hash of the words — a pure function of the bit
// pattern and the capacity. Callers deduplicating by Hash must confirm
// candidate matches with Equal; the dedup outcome is then independent of
// collisions.
func (s Set) Hash() uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for _, w := range s {
		for b := 0; b < 64; b += 8 {
			h ^= (w >> uint(b)) & 0xff
			h *= prime64
		}
	}
	return h
}
