package bitset

import (
	"math/rand"
	"sort"
	"testing"
)

// boundarySizes exercises the word-boundary capacities: one bit short of a
// word, exactly one word, and one bit into the second word.
var boundarySizes = []int{1, 63, 64, 65, 127, 128, 129, 1000}

func TestSetClearHasBoundaries(t *testing.T) {
	for _, n := range boundarySizes {
		s := New(n)
		if got, want := len(s), WordsFor(n); got != want {
			t.Fatalf("New(%d): %d words, want %d", n, got, want)
		}
		for i := 0; i < n; i++ {
			if s.Has(i) {
				t.Fatalf("n=%d: fresh set has bit %d", n, i)
			}
			s.Set(i)
			if !s.Has(i) {
				t.Fatalf("n=%d: Set(%d) not visible", n, i)
			}
		}
		if got := s.Count(); got != n {
			t.Fatalf("n=%d: Count=%d after setting all", n, got)
		}
		for i := 0; i < n; i++ {
			s.Clear(i)
			if s.Has(i) {
				t.Fatalf("n=%d: Clear(%d) not visible", n, i)
			}
		}
		if got := s.Count(); got != 0 {
			t.Fatalf("n=%d: Count=%d after clearing all", n, got)
		}
	}
}

func TestEmptySets(t *testing.T) {
	var zero Set // capacity 0
	if zero.Count() != 0 {
		t.Fatalf("zero-value Count = %d", zero.Count())
	}
	if zero.NextOneFrom(0) != -1 {
		t.Fatalf("zero-value NextOneFrom(0) != -1")
	}
	zero.IterateOnes(func(int) bool { t.Fatal("zero-value iterated a bit"); return false })
	if got := zero.AppendMembers(nil); len(got) != 0 {
		t.Fatalf("zero-value AppendMembers = %v", got)
	}
	if !zero.Equal(Set{}) {
		t.Fatalf("empty sets not Equal")
	}

	s := New(65) // sized but empty
	if s.Intersects(New(65)) {
		t.Fatalf("empty sets intersect")
	}
	if s.NextOneFrom(0) != -1 || s.NextOneFrom(64) != -1 || s.NextOneFrom(200) != -1 {
		t.Fatalf("empty set NextOneFrom != -1")
	}
	if s.Hash() != New(65).Hash() {
		t.Fatalf("equal empty sets hash differently")
	}
}

func TestAndNotAliasing(t *testing.T) {
	mk := func(n int, bits ...int) Set {
		s := New(n)
		for _, b := range bits {
			s.Set(b)
		}
		return s
	}
	const n = 130
	a := mk(n, 0, 5, 63, 64, 65, 127, 128, 129)
	b := mk(n, 5, 64, 129)
	want := mk(n, 0, 63, 65, 127, 128)

	// Distinct destination.
	dst := New(n)
	dst.AndNot(a, b)
	if !dst.Equal(want) {
		t.Fatalf("AndNot fresh dst: %v, want %v", dst.AppendMembers(nil), want.AppendMembers(nil))
	}
	// dst aliases the first operand.
	s1 := a.Clone()
	s1.AndNot(s1, b)
	if !s1.Equal(want) {
		t.Fatalf("AndNot dst==a: %v, want %v", s1.AppendMembers(nil), want.AppendMembers(nil))
	}
	// dst aliases the second operand.
	s2 := b.Clone()
	s2.AndNot(a, s2)
	if !s2.Equal(want) {
		t.Fatalf("AndNot dst==b: %v, want %v", s2.AppendMembers(nil), want.AppendMembers(nil))
	}
	// All three alias: a \ a = empty.
	s3 := a.Clone()
	s3.AndNot(s3, s3)
	if s3.Count() != 0 {
		t.Fatalf("AndNot all-alias: %v, want empty", s3.AppendMembers(nil))
	}

	// And/Or under the same aliasing contract.
	s4 := a.Clone()
	s4.And(s4, b)
	if !s4.Equal(mk(n, 5, 64, 129)) {
		t.Fatalf("And dst==a: %v", s4.AppendMembers(nil))
	}
	s5 := b.Clone()
	s5.Or(a, s5)
	if !s5.Equal(mk(n, 0, 5, 63, 64, 65, 127, 128, 129)) {
		t.Fatalf("Or dst==b: %v", s5.AppendMembers(nil))
	}
}

func TestIterateOnesOrder(t *testing.T) {
	s := New(200)
	members := []int{0, 1, 62, 63, 64, 65, 100, 126, 127, 128, 190, 199}
	for _, m := range members {
		s.Set(m)
	}
	var got []int
	s.IterateOnes(func(i int) bool {
		got = append(got, i)
		return true
	})
	if !sort.IntsAreSorted(got) {
		t.Fatalf("IterateOnes out of order: %v", got)
	}
	if len(got) != len(members) {
		t.Fatalf("IterateOnes visited %v, want %v", got, members)
	}
	for i := range got {
		if got[i] != members[i] {
			t.Fatalf("IterateOnes visited %v, want %v", got, members)
		}
	}

	// Early stop.
	var first []int
	s.IterateOnes(func(i int) bool {
		first = append(first, i)
		return len(first) < 3
	})
	if len(first) != 3 || first[0] != 0 || first[1] != 1 || first[2] != 62 {
		t.Fatalf("IterateOnes early stop visited %v", first)
	}

	// AppendMembers agrees with IterateOnes.
	if app := s.AppendMembers(nil); len(app) != len(got) {
		t.Fatalf("AppendMembers %v != IterateOnes %v", app, got)
	}
}

func TestNextOneFrom(t *testing.T) {
	s := New(200)
	for _, m := range []int{3, 63, 64, 128, 199} {
		s.Set(m)
	}
	cases := [][2]int{
		{-5, 3}, {0, 3}, {3, 3}, {4, 63}, {63, 63}, {64, 64}, {65, 128},
		{128, 128}, {129, 199}, {199, 199}, {200 - 1, 199},
	}
	for _, c := range cases {
		if got := s.NextOneFrom(c[0]); got != c[1] {
			t.Fatalf("NextOneFrom(%d) = %d, want %d", c[0], got, c[1])
		}
	}
	if got := s.NextOneFrom(200); got != -1 {
		t.Fatalf("NextOneFrom past capacity = %d, want -1", got)
	}
}

// model is the naive reference: a map[int]bool plus the capacity.
type model struct {
	n  int
	in map[int]bool
}

func (m *model) members() []int {
	var out []int
	for i := range m.in {
		out = append(out, i)
	}
	sort.Ints(out)
	return out
}

// TestFuzzAgainstMapModel drives random op sequences through a Set and a
// map[int]bool side by side and cross-checks every observable.
func TestFuzzAgainstMapModel(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 200; trial++ {
		n := boundarySizes[rng.Intn(len(boundarySizes))]
		s := New(n)
		m := &model{n: n, in: map[int]bool{}}
		other := New(n)
		om := &model{n: n, in: map[int]bool{}}
		for step := 0; step < 300; step++ {
			i := rng.Intn(n)
			switch rng.Intn(6) {
			case 0:
				s.Set(i)
				m.in[i] = true
			case 1:
				s.Clear(i)
				delete(m.in, i)
			case 2:
				other.Set(i)
				om.in[i] = true
			case 3:
				if got, want := s.Has(i), m.in[i]; got != want {
					t.Fatalf("trial %d: Has(%d)=%v, model %v", trial, i, got, want)
				}
			case 4:
				got := s.NextOneFrom(i)
				want := -1
				for j := i; j < n; j++ {
					if m.in[j] {
						want = j
						break
					}
				}
				if got != want {
					t.Fatalf("trial %d: NextOneFrom(%d)=%d, model %d", trial, i, got, want)
				}
			case 5:
				tmp := New(n)
				var tm []int
				switch rng.Intn(3) {
				case 0:
					tmp.And(s, other)
					for j := range m.in {
						if om.in[j] {
							tm = append(tm, j)
						}
					}
				case 1:
					tmp.AndNot(s, other)
					for j := range m.in {
						if !om.in[j] {
							tm = append(tm, j)
						}
					}
				case 2:
					tmp.Or(s, other)
					seen := map[int]bool{}
					for j := range m.in {
						seen[j] = true
					}
					for j := range om.in {
						seen[j] = true
					}
					for j := range seen {
						tm = append(tm, j)
					}
				}
				sort.Ints(tm)
				got := tmp.AppendMembers(nil)
				if len(got) != len(tm) {
					t.Fatalf("trial %d: op result %v, model %v", trial, got, tm)
				}
				for k := range got {
					if got[k] != tm[k] {
						t.Fatalf("trial %d: op result %v, model %v", trial, got, tm)
					}
				}
			}
		}
		// End-of-trial full sweep.
		got := s.AppendMembers(nil)
		want := m.members()
		if len(got) != len(want) {
			t.Fatalf("trial %d: members %v, model %v", trial, got, want)
		}
		for k := range got {
			if got[k] != want[k] {
				t.Fatalf("trial %d: members %v, model %v", trial, got, want)
			}
		}
		if s.Count() != len(want) {
			t.Fatalf("trial %d: Count=%d, model %d", trial, s.Count(), len(want))
		}
		if s.Intersects(other) != anyShared(m.in, om.in) {
			t.Fatalf("trial %d: Intersects mismatch", trial)
		}
		clone := s.Clone()
		if !clone.Equal(s) || s.Hash() != clone.Hash() {
			t.Fatalf("trial %d: clone not equal / hash differs", trial)
		}
		clone.Reset()
		if clone.Count() != 0 {
			t.Fatalf("trial %d: Reset left bits", trial)
		}
		if s.Count() != len(want) {
			t.Fatalf("trial %d: Reset of clone affected source", trial)
		}
	}
}

func anyShared(a, b map[int]bool) bool {
	for k := range a {
		if b[k] {
			return true
		}
	}
	return false
}

// FuzzSetOps is the go-native fuzz entry: a byte string drives ops against
// the map model.
func FuzzSetOps(f *testing.F) {
	f.Add([]byte{1, 2, 3, 64, 65, 0, 130})
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		const n = 130
		s := New(n)
		in := map[int]bool{}
		for k, b := range data {
			i := int(b) % n
			if k%3 == 0 {
				s.Set(i)
				in[i] = true
			} else if k%3 == 1 {
				s.Clear(i)
				delete(in, i)
			} else if s.Has(i) != in[i] {
				t.Fatalf("Has(%d) diverged", i)
			}
		}
		if s.Count() != len(in) {
			t.Fatalf("Count=%d, model %d", s.Count(), len(in))
		}
	})
}
