package cli

import (
	"strings"
	"testing"
)

// A pre-canceled run still writes output (the untouched partial repair)
// and exits 130 so scripts can tell an interrupt from a failure.
func TestRunCanceledWritesPartial(t *testing.T) {
	in := "City,State\nBoston,MA\nBoston,MA\nBoston,MA\nBostn,MA\n"
	cancel := make(chan struct{})
	close(cancel)
	var stdout, stderr strings.Builder
	code := run([]string{"-in", "-", "-fd", "City -> State", "-q"},
		strings.NewReader(in), &stdout, &stderr, cancel)
	if code != 130 {
		t.Fatalf("exit code = %d, want 130 (stderr: %s)", code, stderr.String())
	}
	if !strings.Contains(stderr.String(), "canceled") {
		t.Fatalf("stderr does not mention cancellation: %s", stderr.String())
	}
	// The partial repair of a pre-canceled run is the input unchanged.
	if got := stdout.String(); got != in {
		t.Fatalf("partial output = %q, want input unchanged", got)
	}
}

// A nil cancel channel behaves exactly like before the hook existed.
func TestRunNilCancel(t *testing.T) {
	in := "City,State\nBoston,MA\nBoston,MA\nBoston,MA\nBostn,MA\n"
	var stdout, stderr strings.Builder
	code := run([]string{"-in", "-", "-fd", "City -> State", "-q"},
		strings.NewReader(in), &stdout, &stderr, nil)
	if code != 0 {
		t.Fatalf("exit code = %d (stderr: %s)", code, stderr.String())
	}
	if !strings.Contains(stdout.String(), "Boston,MA\nBoston,MA\nBoston,MA\nBoston,MA\n") {
		t.Fatalf("typo not repaired: %s", stdout.String())
	}
}
