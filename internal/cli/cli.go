// Package cli implements the ftrepair command: flag parsing, the
// repair/detect/discover flows, and reporting. It lives outside the main
// package so the whole command surface is unit-testable with injected
// streams.
package cli

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"strings"

	"ftrepair"
	"ftrepair/internal/obs"
	"ftrepair/internal/report"
)

type stringList []string

func (l *stringList) String() string     { return strings.Join(*l, "; ") }
func (l *stringList) Set(v string) error { *l = append(*l, v); return nil }

// Main runs the ftrepair command with the given arguments and streams,
// returning the process exit code. The first SIGINT cancels the running
// repair through the library's cancellation hook; the partial repair is
// still written and the exit code is 130. A second SIGINT kills the
// process the default way.
func Main(args []string, stdin io.Reader, stdout, stderr io.Writer) int {
	cancel, stop := interruptChannel(stderr)
	defer stop()
	return run(args, stdin, stdout, stderr, cancel)
}

// interruptChannel converts the first SIGINT into a closed channel and
// then restores default signal handling.
func interruptChannel(stderr io.Writer) (<-chan struct{}, func()) {
	cancel := make(chan struct{})
	sigCh := make(chan os.Signal, 1)
	signal.Notify(sigCh, os.Interrupt)
	go func() {
		if _, ok := <-sigCh; !ok {
			return
		}
		fmt.Fprintln(stderr, "ftrepair: interrupt — canceling (partial output follows)")
		signal.Stop(sigCh)
		close(cancel)
	}()
	return cancel, func() { signal.Stop(sigCh); close(sigCh) }
}

func run(args []string, stdin io.Reader, stdout, stderr io.Writer, cancel <-chan struct{}) int {
	var fds stringList
	fs := flag.NewFlagSet("ftrepair", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		in        = fs.String("in", "", "input CSV path (required; '-' for stdin)")
		out       = fs.String("out", "-", "output CSV path ('-' for stdout)")
		types     = fs.String("types", "", "comma-separated attribute types aligned with the header (string|numeric); default inferred")
		algo      = fs.String("algo", "greedym", "repair algorithm: exacts, greedys, exactm, approm, greedym")
		tau       = fs.Float64("tau", 0.3, "FT-violation threshold for every FD")
		autoTau   = fs.Bool("auto-tau", false, "derive tau per FD with the sudden-gap heuristic")
		wl        = fs.Float64("wl", 0.7, "LHS distance weight")
		wr        = fs.Float64("wr", 0.3, "RHS distance weight")
		quiet     = fs.Bool("q", false, "suppress the summary on stderr")
		detect    = fs.Bool("detect", false, "only detect and print FT-violations; no repair")
		discover  = fs.Bool("discover", false, "profile the input for approximate FDs and exit (no -fd needed)")
		repReport = fs.Bool("report", false, "print a full repair report (violations before/after, edits by attribute) on stderr")
		traceOut  = fs.String("trace", "", "write a Chrome trace-event JSON of the repair's phase spans to this path (load via chrome://tracing or go tool trace -http)")
		metricsOn = fs.Bool("metrics", false, "dump the metrics registry (Prometheus text format) on stderr after the run")
		ledgerOut = fs.String("ledger", "", "write the tamper-evident repair ledger (JSONL, verifiable with ledgercheck) to this path")
	)
	fs.Var(&fds, "fd", "functional dependency spec, e.g. \"City,Street -> District\" (repeatable)")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	c := command{
		stdin: stdin, stdout: stdout, stderr: stderr, cancel: cancel,
		in: *in, out: *out, types: *types, algoName: *algo,
		fdSpecs: fds, tau: *tau, autoTau: *autoTau, wl: *wl, wr: *wr,
		quiet: *quiet, detect: *detect, report: *repReport,
		traceOut: *traceOut, metrics: *metricsOn, ledgerOut: *ledgerOut,
	}
	var err error
	if *discover {
		err = c.runDiscover()
	} else {
		err = c.run()
	}
	if errors.Is(err, ftrepair.ErrCanceled) {
		fmt.Fprintln(stderr, "ftrepair:", err)
		return 130
	}
	if err != nil {
		fmt.Fprintln(stderr, "ftrepair:", err)
		return 1
	}
	return 0
}

type command struct {
	stdin          io.Reader
	stdout, stderr io.Writer
	cancel         <-chan struct{}

	in, out, types, algoName string
	fdSpecs                  []string
	tau, wl, wr              float64
	autoTau                  bool
	quiet, detect, report    bool
	traceOut                 string
	metrics                  bool
	ledgerOut                string
}

// newTrace builds the run trace when -trace was given (nil otherwise) and
// returns a flush function that exports it; the trace is written even after
// a canceled run so partial repairs stay inspectable.
func (c *command) newTrace() (*obs.Trace, func() error) {
	if c.traceOut == "" {
		return nil, func() error { return nil }
	}
	tr := obs.NewTrace("ftrepair " + c.in)
	tr.SetMeta(obs.CollectMeta(c.in))
	return tr, func() error {
		tr.CloseOpen()
		f, err := os.Create(c.traceOut)
		if err != nil {
			return err
		}
		if err := tr.WriteChrome(f); err != nil {
			f.Close()
			return err
		}
		return f.Close()
	}
}

// writeLedger dumps the run's repair ledger as self-verifying JSONL and
// notes the run root on stderr so operators can pin it out of band.
func (c *command) writeLedger(led *ftrepair.Ledger) error {
	f, err := os.Create(c.ledgerOut)
	if err != nil {
		return err
	}
	if err := led.WriteJSONL(f); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	if !c.quiet {
		fmt.Fprintf(c.stderr, "ledger: %d events in %d batches, run root %s\n",
			led.Len(), len(led.Batches()), led.RunRootHex())
	}
	return nil
}

// dumpMetrics writes the default registry on stderr when -metrics was given.
func (c *command) dumpMetrics() {
	if c.metrics {
		_ = obs.Default().WritePrometheus(c.stderr)
	}
}

func (c *command) load() (*ftrepair.Relation, error) {
	reader := c.stdin
	if c.in != "-" {
		f, err := os.Open(c.in)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		reader = f
	}
	rel, err := ftrepair.ReadCSV(reader, c.types)
	if err != nil {
		return nil, err
	}
	if c.types == "" {
		// No type spec: infer numeric columns from the data (fixed-width
		// digit identifiers stay strings).
		rel = ftrepair.Retype(rel)
	}
	return rel, nil
}

func (c *command) runDiscover() error {
	if c.in == "" {
		return fmt.Errorf("-in is required")
	}
	rel, err := c.load()
	if err != nil {
		return err
	}
	cfg, err := ftrepair.NewDistConfig(rel, c.wl, c.wr)
	if err != nil {
		return err
	}
	results := ftrepair.DiscoverFDs(rel, ftrepair.DiscoverOptions{MaxLHS: 2, MaxError: 0.1, MinSupport: 0.1})
	for _, r := range results {
		sep := ftrepair.SeparationCheck(rel, r.FD, cfg, c.tau, ftrepair.SeparationOptions{})
		safety := "ok"
		if sep.MergeMass > 0.15 {
			safety = "UNSAFE at this tau"
		}
		fmt.Fprintf(c.stdout, "g3=%.3f support=%.2f mergeMass=%.3f [%s]  %s\n", r.Error, r.Support, sep.MergeMass, safety, r.FD)
	}
	if !c.quiet {
		fmt.Fprintf(c.stderr, "%d candidate FDs (pass safe ones back as -fd specs)\n", len(results))
	}
	return nil
}

func (c *command) run() error {
	if c.in == "" {
		return fmt.Errorf("-in is required")
	}
	if len(c.fdSpecs) == 0 {
		return fmt.Errorf("at least one -fd is required")
	}
	var algo ftrepair.Algorithm
	switch strings.ToLower(c.algoName) {
	case "exacts":
		algo = ftrepair.ExactS
	case "greedys":
		algo = ftrepair.GreedyS
	case "exactm":
		algo = ftrepair.ExactM
	case "approm":
		algo = ftrepair.ApproM
	case "greedym":
		algo = ftrepair.GreedyM
	default:
		return fmt.Errorf("unknown algorithm %q", c.algoName)
	}

	rel, err := c.load()
	if err != nil {
		return err
	}
	parsed := make([]*ftrepair.FD, len(c.fdSpecs))
	for i, spec := range c.fdSpecs {
		f, err := ftrepair.ParseFD(rel.Schema, spec)
		if err != nil {
			return err
		}
		parsed[i] = f
	}
	cfg, err := ftrepair.NewDistConfig(rel, c.wl, c.wr)
	if err != nil {
		return err
	}
	taus := make([]float64, len(parsed))
	for i, f := range parsed {
		if c.autoTau {
			taus[i] = ftrepair.SelectTau(rel, f, cfg, ftrepair.TauOptions{Fallback: c.tau})
		} else {
			taus[i] = c.tau
		}
	}
	set, err := ftrepair.NewSet(parsed, taus...)
	if err != nil {
		return err
	}

	tr, flushTrace := c.newTrace()
	if c.detect {
		report.WriteViolations(c.stdout, ftrepair.Detect(rel, set, cfg, ftrepair.Options{Cancel: c.cancel, Trace: tr}))
		c.dumpMetrics()
		return flushTrace()
	}

	opts := ftrepair.Options{Cancel: c.cancel, Trace: tr}
	var led *ftrepair.Ledger
	if c.ledgerOut != "" {
		// Assigned only when non-nil: a nil *Ledger inside the Sink
		// interface would read as an attached ledger.
		led = ftrepair.NewLedger()
		opts.Ledger = led
	}
	res, err := ftrepair.Repair(rel, set, cfg, algo, opts)
	if terr := flushTrace(); terr != nil && err == nil {
		err = terr
	}
	if led != nil {
		// Written even after a canceled run: the ledger records exactly the
		// cells the partial repair applied.
		if lerr := c.writeLedger(led); lerr != nil && err == nil {
			err = lerr
		}
	}
	c.dumpMetrics()
	canceled := errors.Is(err, ftrepair.ErrCanceled)
	if err != nil && !(canceled && res != nil) {
		return err
	}

	writer := c.stdout
	if c.out != "-" {
		f, err := os.Create(c.out)
		if err != nil {
			return err
		}
		defer f.Close()
		writer = f
	}
	if err := ftrepair.WriteCSV(writer, res.Repaired); err != nil {
		return err
	}
	if c.report {
		if err := report.Write(c.stderr, rel, res, set, cfg, report.Options{}); err != nil {
			return err
		}
	} else if !c.quiet {
		fmt.Fprintf(c.stderr, "%s repaired %d cells across %d tuples (cost %.3f) in %v\n",
			res.Algorithm, len(res.Changed), rel.Len(), res.Cost, res.Elapsed)
		for i, f := range parsed {
			fmt.Fprintf(c.stderr, "  %s  tau=%.3f\n", f, taus[i])
		}
	}
	if !c.quiet {
		if err := ftrepair.VerifyFTConsistent(res.Repaired, set, cfg); err != nil {
			fmt.Fprintf(c.stderr, "  warning: %v\n", err)
		}
	}
	if canceled {
		return fmt.Errorf("%w (wrote partial repair: %d cells)", ftrepair.ErrCanceled, len(res.Changed))
	}
	return nil
}
