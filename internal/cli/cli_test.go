package cli_test

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"ftrepair/internal/cli"
	"ftrepair/internal/ledger"
)

const sampleCSV = `City,State
Boston,MA
Boston,MA
Boston,MA
Boston,MA
Boston,MA
Boston,MA
Boston,MA
Boston,MA
Boton,MA
Boston,NY
`

func runCLI(t *testing.T, stdin string, args ...string) (code int, stdout, stderr string) {
	t.Helper()
	var out, errb strings.Builder
	code = cli.Main(args, strings.NewReader(stdin), &out, &errb)
	return code, out.String(), errb.String()
}

func TestCLIRepairStdinToStdout(t *testing.T) {
	code, out, errb := runCLI(t, sampleCSV, "-in", "-", "-fd", "City -> State", "-algo", "exacts")
	if code != 0 {
		t.Fatalf("exit %d: %s", code, errb)
	}
	if strings.Contains(out, "Boton") || strings.Contains(out, ",NY") {
		t.Fatalf("repairs missing:\n%s", out)
	}
	if !strings.Contains(errb, "repaired 2 cells") {
		t.Fatalf("summary:\n%s", errb)
	}
}

func TestCLIDetect(t *testing.T) {
	code, out, _ := runCLI(t, sampleCSV, "-in", "-", "-fd", "City -> State", "-detect")
	if code != 0 {
		t.Fatalf("exit %d", code)
	}
	if !strings.Contains(out, "similar") || !strings.Contains(out, "classic") {
		t.Fatalf("detect output:\n%s", out)
	}
	if !strings.Contains(out, "2 FT-violations") {
		t.Fatalf("violation count:\n%s", out)
	}
}

func TestCLIDiscover(t *testing.T) {
	code, out, errb := runCLI(t, sampleCSV, "-in", "-", "-discover", "-q")
	if code != 0 {
		t.Fatalf("exit %d: %s", code, errb)
	}
	if !strings.Contains(out, "[City] -> [State]") {
		t.Fatalf("discover output:\n%s", out)
	}
}

func TestCLIReport(t *testing.T) {
	code, _, errb := runCLI(t, sampleCSV, "-in", "-", "-fd", "City -> State", "-report", "-out", os.DevNull)
	if code != 0 {
		t.Fatalf("exit %d: %s", code, errb)
	}
	if !strings.Contains(errb, "repair report") || !strings.Contains(errb, "repairs by attribute") {
		t.Fatalf("report:\n%s", errb)
	}
}

func TestCLIFileIO(t *testing.T) {
	dir := t.TempDir()
	in := filepath.Join(dir, "in.csv")
	out := filepath.Join(dir, "out.csv")
	if err := os.WriteFile(in, []byte(sampleCSV), 0o644); err != nil {
		t.Fatal(err)
	}
	code, _, errb := runCLI(t, "", "-in", in, "-out", out, "-fd", "City -> State", "-q")
	if code != 0 {
		t.Fatalf("exit %d: %s", code, errb)
	}
	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(string(data), "Boton") {
		t.Fatalf("output file unrepaired:\n%s", data)
	}
}

func TestCLIAutoTau(t *testing.T) {
	code, _, errb := runCLI(t, sampleCSV, "-in", "-", "-fd", "City -> State", "-auto-tau", "-out", os.DevNull)
	if code != 0 {
		t.Fatalf("exit %d: %s", code, errb)
	}
	if !strings.Contains(errb, "tau=") {
		t.Fatalf("tau not reported:\n%s", errb)
	}
}

func TestCLIErrors(t *testing.T) {
	cases := [][]string{
		{},           // missing -in
		{"-in", "-"}, // missing -fd
		{"-in", "-", "-fd", "City -> State", "-algo", "bogus"},
		{"-in", "-", "-fd", "Nope -> State"}, // unknown attribute
		{"-in", "/nonexistent/x.csv", "-fd", "City -> State"},
		{"-in", "-", "-fd", "City -> State", "-wl", "0.9", "-wr", "0.9"},
	}
	for _, args := range cases {
		code, _, errb := runCLI(t, sampleCSV, args...)
		if code == 0 {
			t.Errorf("args %v succeeded", args)
		}
		if !strings.Contains(errb, "ftrepair:") {
			t.Errorf("args %v: no error message: %s", args, errb)
		}
	}
	// Unknown flags exit 2 via the flag package.
	code, _, _ := runCLI(t, "", "-definitely-not-a-flag")
	if code != 2 {
		t.Errorf("unknown flag exit = %d", code)
	}
}

func TestCLITypeInference(t *testing.T) {
	// Without -types, Score is inferred numeric; with an explicit spec it
	// stays as declared. Either way the repair runs.
	csv := "City,Score\nBoston,85\nBoston,90\nBoston,85\n"
	code, _, errb := runCLI(t, csv, "-in", "-", "-fd", "City -> Score", "-q", "-out", os.DevNull)
	if code != 0 {
		t.Fatalf("exit %d: %s", code, errb)
	}
}

// TestCLILedgerOutput writes the repair ledger next to the repair and
// verifies the dump offline — the same check cmd/ledgercheck performs —
// then undoes it back to the input.
func TestCLILedgerOutput(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "ledger.jsonl")
	code, _, errb := runCLI(t, sampleCSV, "-in", "-", "-fd", "City -> State",
		"-algo", "exacts", "-ledger", path, "-out", os.DevNull)
	if code != 0 {
		t.Fatalf("exit %d: %s", code, errb)
	}
	if !strings.Contains(errb, "run root ") {
		t.Fatalf("no run root note on stderr:\n%s", errb)
	}
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	dump, err := ledger.ReadJSONL(f)
	if err != nil {
		t.Fatal(err)
	}
	if err := dump.Verify(); err != nil {
		t.Fatal(err)
	}
	if len(dump.Events) != 2 {
		t.Fatalf("ledgered %d events, want 2", len(dump.Events))
	}
	for _, e := range dump.Events {
		if e.Attr == "" || e.FD == "" || e.Algorithm != "ExactS" {
			t.Fatalf("event lacks provenance: %+v", e)
		}
	}
}

// TestCLILedgerOmittedByDefault leaves no ledger file and no note when the
// flag is absent.
func TestCLILedgerOmittedByDefault(t *testing.T) {
	code, _, errb := runCLI(t, sampleCSV, "-in", "-", "-fd", "City -> State", "-out", os.DevNull)
	if code != 0 {
		t.Fatalf("exit %d: %s", code, errb)
	}
	if strings.Contains(errb, "run root") {
		t.Fatalf("unexpected ledger note:\n%s", errb)
	}
}
