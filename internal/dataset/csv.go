package dataset

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// CSVOptions tunes CSV parsing beyond the defaults.
type CSVOptions struct {
	// Comma is the field delimiter (default ',').
	Comma rune
	// Comment, when non-zero, makes lines starting with it skipped.
	Comment rune
	// TrimSpace trims surrounding whitespace from every cell.
	TrimSpace bool
}

// ReadCSV loads a relation from CSV data. The first record is the header.
// Attribute types are given by typeSpec, a comma-separated list aligned with
// the header such as "string,string,numeric"; an empty typeSpec makes every
// attribute a string. Numeric cells must parse as float64 (empty cells are
// nulls and allowed).
func ReadCSV(r io.Reader, typeSpec string) (*Relation, error) {
	return ReadCSVOpts(r, typeSpec, CSVOptions{})
}

// ReadCSVOpts is ReadCSV with dialect options.
func ReadCSVOpts(r io.Reader, typeSpec string, opts CSVOptions) (*Relation, error) {
	cr := csv.NewReader(r)
	cr.FieldsPerRecord = -1
	if opts.Comma != 0 {
		cr.Comma = opts.Comma
	}
	if opts.Comment != 0 {
		cr.Comment = opts.Comment
	}
	header, err := cr.Read()
	if err != nil {
		return nil, fmt.Errorf("dataset: reading CSV header: %w", err)
	}
	types, err := parseTypeSpec(typeSpec, len(header))
	if err != nil {
		return nil, err
	}
	attrs := make([]Attribute, len(header))
	for i, name := range header {
		attrs[i] = Attribute{Name: strings.TrimSpace(name), Type: types[i]}
	}
	schema, err := NewSchema(attrs...)
	if err != nil {
		return nil, err
	}
	rel := NewRelation(schema)
	for line := 2; ; line++ {
		rec, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("dataset: reading CSV line %d: %w", line, err)
		}
		if len(rec) != len(header) {
			return nil, fmt.Errorf("dataset: CSV line %d has %d fields, header has %d", line, len(rec), len(header))
		}
		if opts.TrimSpace {
			for i := range rec {
				rec[i] = strings.TrimSpace(rec[i])
			}
		}
		if err := rel.Append(Tuple(rec)); err != nil {
			return nil, fmt.Errorf("dataset: CSV line %d: %w", line, err)
		}
	}
	return rel, nil
}

func parseTypeSpec(spec string, n int) ([]Type, error) {
	types := make([]Type, n)
	if spec == "" {
		return types, nil
	}
	parts := strings.Split(spec, ",")
	if len(parts) != n {
		return nil, fmt.Errorf("dataset: type spec has %d entries, header has %d columns", len(parts), n)
	}
	for i, p := range parts {
		switch strings.TrimSpace(strings.ToLower(p)) {
		case "string", "str", "s", "":
			types[i] = String
		case "numeric", "num", "n", "float", "int":
			types[i] = Numeric
		default:
			return nil, fmt.Errorf("dataset: unknown type %q in type spec", p)
		}
	}
	return types, nil
}

// WriteCSV writes the relation as CSV with a header row.
func WriteCSV(w io.Writer, r *Relation) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(r.Schema.Names()); err != nil {
		return fmt.Errorf("dataset: writing CSV header: %w", err)
	}
	for i, t := range r.Tuples {
		if err := cw.Write(t); err != nil {
			return fmt.Errorf("dataset: writing CSV row %d: %w", i, err)
		}
	}
	cw.Flush()
	return cw.Error()
}

// ParseFloat parses a numeric cell. It is the single parsing point used by
// distance code so behaviour stays consistent.
func ParseFloat(v string) (float64, error) {
	return strconv.ParseFloat(strings.TrimSpace(v), 64)
}
