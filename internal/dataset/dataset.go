// Package dataset provides the relational substrate used by the repair
// library: typed schemas, tuples, relations with active-domain and numeric
// range computation, cell addressing, and database diffing.
//
// Cells are stored as strings; the schema records which attributes are
// numeric so that distance functions can parse and normalize them. This
// mirrors the paper's setting where a table mixes string attributes (City,
// Street, ...) and numeric ones (Level).
package dataset

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
)

// Type is the domain type of an attribute.
type Type uint8

const (
	// String attributes compare with normalized edit distance.
	String Type = iota
	// Numeric attributes compare with normalized Euclidean distance.
	Numeric
)

// String returns a human-readable name for the type.
func (t Type) String() string {
	switch t {
	case String:
		return "string"
	case Numeric:
		return "numeric"
	default:
		return fmt.Sprintf("Type(%d)", uint8(t))
	}
}

// Attribute is a named, typed column.
type Attribute struct {
	Name string
	Type Type
}

// Schema is an ordered list of attributes with fast name lookup.
// The zero value is an empty schema; use NewSchema to construct one.
type Schema struct {
	attrs []Attribute
	index map[string]int
}

// NewSchema builds a schema from the given attributes. Attribute names must
// be unique and non-empty.
func NewSchema(attrs ...Attribute) (*Schema, error) {
	s := &Schema{
		attrs: append([]Attribute(nil), attrs...),
		index: make(map[string]int, len(attrs)),
	}
	for i, a := range attrs {
		if a.Name == "" {
			return nil, fmt.Errorf("dataset: attribute %d has empty name", i)
		}
		if _, dup := s.index[a.Name]; dup {
			return nil, fmt.Errorf("dataset: duplicate attribute %q", a.Name)
		}
		s.index[a.Name] = i
	}
	return s, nil
}

// MustSchema is like NewSchema but panics on error. Intended for tests,
// examples and generators with statically known attribute lists.
func MustSchema(attrs ...Attribute) *Schema {
	s, err := NewSchema(attrs...)
	if err != nil {
		panic(err)
	}
	return s
}

// Strings builds a schema of all-string attributes from names.
func Strings(names ...string) *Schema {
	attrs := make([]Attribute, len(names))
	for i, n := range names {
		attrs[i] = Attribute{Name: n, Type: String}
	}
	return MustSchema(attrs...)
}

// Len reports the number of attributes.
func (s *Schema) Len() int { return len(s.attrs) }

// Attr returns the i-th attribute.
func (s *Schema) Attr(i int) Attribute { return s.attrs[i] }

// Index returns the position of the named attribute.
func (s *Schema) Index(name string) (int, bool) {
	i, ok := s.index[name]
	return i, ok
}

// MustIndex returns the position of the named attribute and panics if the
// attribute does not exist. Use when the name is statically known.
func (s *Schema) MustIndex(name string) int {
	i, ok := s.index[name]
	if !ok {
		panic(fmt.Sprintf("dataset: unknown attribute %q", name))
	}
	return i
}

// Indices maps attribute names to positions, failing on the first unknown
// name.
func (s *Schema) Indices(names ...string) ([]int, error) {
	out := make([]int, len(names))
	for i, n := range names {
		idx, ok := s.index[n]
		if !ok {
			return nil, fmt.Errorf("dataset: unknown attribute %q", n)
		}
		out[i] = idx
	}
	return out, nil
}

// Names returns the attribute names in schema order.
func (s *Schema) Names() []string {
	names := make([]string, len(s.attrs))
	for i, a := range s.attrs {
		names[i] = a.Name
	}
	return names
}

// Tuple is a row: one string cell per schema attribute.
type Tuple []string

// Clone returns a deep copy of the tuple.
func (t Tuple) Clone() Tuple {
	return append(Tuple(nil), t...)
}

// keySep separates cell values inside projection keys. Values containing
// NUL or the escape byte are escaped so keys stay injective even on
// adversarial data.
const (
	keySep    = "\x00"
	keyEscape = "\x01"
)

// escapeKeyPart makes a cell value safe inside a key. The fast path (no
// NUL, no escape byte) returns the value unchanged.
func escapeKeyPart(v string) string {
	if !strings.ContainsAny(v, keySep+keyEscape) {
		return v
	}
	v = strings.ReplaceAll(v, keyEscape, keyEscape+"\x02")
	return strings.ReplaceAll(v, keySep, keyEscape+"\x03")
}

// Key builds a canonical key for the projection of t onto cols. Two tuples
// have equal keys iff they agree on every projected cell.
func (t Tuple) Key(cols []int) string {
	switch len(cols) {
	case 0:
		return ""
	case 1:
		return escapeKeyPart(t[cols[0]])
	}
	var b strings.Builder
	n := len(cols) - 1
	for _, c := range cols {
		n += len(t[c])
	}
	b.Grow(n)
	for i, c := range cols {
		if i > 0 {
			b.WriteString(keySep)
		}
		b.WriteString(escapeKeyPart(t[c]))
	}
	return b.String()
}

// Project copies the projected cells of t onto cols.
func (t Tuple) Project(cols []int) []string {
	out := make([]string, len(cols))
	for i, c := range cols {
		out[i] = t[c]
	}
	return out
}

// Cell addresses one value in a relation.
type Cell struct {
	Row int // tuple index
	Col int // attribute index
}

// Relation is an instance of a schema: an ordered bag of tuples.
type Relation struct {
	Schema *Schema
	Tuples []Tuple
}

// NewRelation builds an empty relation over the schema.
func NewRelation(s *Schema) *Relation {
	return &Relation{Schema: s}
}

// FromRows builds a relation from raw rows, validating arity and numeric
// cells.
func FromRows(s *Schema, rows [][]string) (*Relation, error) {
	r := NewRelation(s)
	for i, row := range rows {
		if err := r.Append(Tuple(row)); err != nil {
			return nil, fmt.Errorf("row %d: %w", i, err)
		}
	}
	return r, nil
}

// Append validates t against the schema and adds it to the relation.
func (r *Relation) Append(t Tuple) error {
	if len(t) != r.Schema.Len() {
		return fmt.Errorf("dataset: tuple has %d cells, schema has %d attributes", len(t), r.Schema.Len())
	}
	for i, v := range t {
		if r.Schema.Attr(i).Type == Numeric && v != "" {
			// Empty cells are nulls and allowed in numeric columns; the
			// distance layer compares them as strings.
			if _, err := strconv.ParseFloat(v, 64); err != nil {
				return fmt.Errorf("dataset: attribute %q: %q is not numeric", r.Schema.Attr(i).Name, v)
			}
		}
	}
	r.Tuples = append(r.Tuples, t)
	return nil
}

// Len reports the number of tuples.
func (r *Relation) Len() int { return len(r.Tuples) }

// Clone deep-copies the relation (the schema is shared; schemas are
// immutable after construction).
func (r *Relation) Clone() *Relation {
	out := &Relation{Schema: r.Schema, Tuples: make([]Tuple, len(r.Tuples))}
	for i, t := range r.Tuples {
		out.Tuples[i] = t.Clone()
	}
	return out
}

// Get returns the value at the cell.
func (r *Relation) Get(c Cell) string { return r.Tuples[c.Row][c.Col] }

// Set overwrites the value at the cell.
func (r *Relation) Set(c Cell, v string) { r.Tuples[c.Row][c.Col] = v }

// ActiveDomain returns the distinct values of the attribute in sorted order.
// The closed-world repair model restricts repaired values to this set.
func (r *Relation) ActiveDomain(col int) []string {
	seen := make(map[string]struct{})
	for _, t := range r.Tuples {
		seen[t[col]] = struct{}{}
	}
	out := make([]string, 0, len(seen))
	for v := range seen {
		out = append(out, v)
	}
	sort.Strings(out)
	return out
}

// NumericRange returns the min and max of a numeric attribute, for
// normalizing Euclidean distances into [0,1]. It returns ok=false when the
// relation is empty or the attribute is not numeric.
func (r *Relation) NumericRange(col int) (min, max float64, ok bool) {
	if r.Schema.Attr(col).Type != Numeric || len(r.Tuples) == 0 {
		return 0, 0, false
	}
	for i, t := range r.Tuples {
		v, err := strconv.ParseFloat(t[col], 64)
		if err != nil {
			continue
		}
		if i == 0 || v < min {
			min = v
		}
		if i == 0 || v > max {
			max = v
		}
	}
	return min, max, true
}

// Diff returns the cells at which a and b differ, in row-major order. The
// relations must have the same schema and cardinality; repairs never insert
// or delete tuples.
func Diff(a, b *Relation) ([]Cell, error) {
	if a.Schema != b.Schema && !sameSchema(a.Schema, b.Schema) {
		return nil, fmt.Errorf("dataset: diff across different schemas")
	}
	if len(a.Tuples) != len(b.Tuples) {
		return nil, fmt.Errorf("dataset: diff across different cardinalities (%d vs %d)", len(a.Tuples), len(b.Tuples))
	}
	var cells []Cell
	for i := range a.Tuples {
		for j := range a.Tuples[i] {
			if a.Tuples[i][j] != b.Tuples[i][j] {
				cells = append(cells, Cell{Row: i, Col: j})
			}
		}
	}
	return cells, nil
}

func sameSchema(a, b *Schema) bool {
	if a.Len() != b.Len() {
		return false
	}
	for i := 0; i < a.Len(); i++ {
		if a.Attr(i) != b.Attr(i) {
			return false
		}
	}
	return true
}
