package dataset

import (
	"bytes"
	"reflect"
	"strings"
	"testing"
	"testing/quick"
)

func TestNewSchemaValidation(t *testing.T) {
	if _, err := NewSchema(Attribute{Name: "A"}, Attribute{Name: "A"}); err == nil {
		t.Fatal("duplicate attribute accepted")
	}
	if _, err := NewSchema(Attribute{Name: ""}); err == nil {
		t.Fatal("empty attribute name accepted")
	}
	s, err := NewSchema(Attribute{Name: "A"}, Attribute{Name: "B", Type: Numeric})
	if err != nil {
		t.Fatal(err)
	}
	if s.Len() != 2 {
		t.Fatalf("Len = %d, want 2", s.Len())
	}
	if i, ok := s.Index("B"); !ok || i != 1 {
		t.Fatalf("Index(B) = %d,%v, want 1,true", i, ok)
	}
	if _, ok := s.Index("C"); ok {
		t.Fatal("Index(C) found nonexistent attribute")
	}
	if got := s.Names(); !reflect.DeepEqual(got, []string{"A", "B"}) {
		t.Fatalf("Names = %v", got)
	}
}

func TestMustIndexPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustIndex did not panic on unknown attribute")
		}
	}()
	Strings("A").MustIndex("Z")
}

func TestIndices(t *testing.T) {
	s := Strings("A", "B", "C")
	got, err := s.Indices("C", "A")
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, []int{2, 0}) {
		t.Fatalf("Indices = %v", got)
	}
	if _, err := s.Indices("C", "Z"); err == nil {
		t.Fatal("Indices accepted unknown attribute")
	}
}

func TestTypeString(t *testing.T) {
	if String.String() != "string" || Numeric.String() != "numeric" {
		t.Fatal("Type.String mismatch")
	}
	if Type(9).String() != "Type(9)" {
		t.Fatalf("Type(9).String() = %q", Type(9).String())
	}
}

func TestAppendValidation(t *testing.T) {
	s := MustSchema(Attribute{Name: "A"}, Attribute{Name: "N", Type: Numeric})
	r := NewRelation(s)
	if err := r.Append(Tuple{"x"}); err == nil {
		t.Fatal("wrong arity accepted")
	}
	if err := r.Append(Tuple{"x", "abc"}); err == nil {
		t.Fatal("non-numeric cell accepted")
	}
	if err := r.Append(Tuple{"x", "3.5"}); err != nil {
		t.Fatal(err)
	}
	if r.Len() != 1 {
		t.Fatalf("Len = %d", r.Len())
	}
}

func TestTupleKeyUniqueSeparation(t *testing.T) {
	// Keys must not confuse ("ab","c") with ("a","bc").
	t1 := Tuple{"ab", "c"}
	t2 := Tuple{"a", "bc"}
	cols := []int{0, 1}
	if t1.Key(cols) == t2.Key(cols) {
		t.Fatal("distinct projections produced equal keys")
	}
	if t1.Key(nil) != "" {
		t.Fatal("empty projection key not empty")
	}
	if t1.Key([]int{1}) != "c" {
		t.Fatal("single-column key mismatch")
	}
}

func TestTupleKeyEqualsIffProjectionEqual(t *testing.T) {
	f := func(a, b [3]string, pick uint8) bool {
		ta := Tuple{a[0], a[1], a[2]}
		tb := Tuple{b[0], b[1], b[2]}
		cols := []int{int(pick % 3), int((pick / 3) % 3)}
		eq := ta[cols[0]] == tb[cols[0]] && ta[cols[1]] == tb[cols[1]]
		return (ta.Key(cols) == tb.Key(cols)) == eq
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestProjectAndClone(t *testing.T) {
	tp := Tuple{"a", "b", "c"}
	if got := tp.Project([]int{2, 0}); !reflect.DeepEqual(got, []string{"c", "a"}) {
		t.Fatalf("Project = %v", got)
	}
	c := tp.Clone()
	c[0] = "z"
	if tp[0] != "a" {
		t.Fatal("Clone aliases original")
	}
}

func TestActiveDomain(t *testing.T) {
	s := Strings("A")
	r, err := FromRows(s, [][]string{{"b"}, {"a"}, {"b"}, {"c"}})
	if err != nil {
		t.Fatal(err)
	}
	if got := r.ActiveDomain(0); !reflect.DeepEqual(got, []string{"a", "b", "c"}) {
		t.Fatalf("ActiveDomain = %v", got)
	}
}

func TestNumericRange(t *testing.T) {
	s := MustSchema(Attribute{Name: "N", Type: Numeric}, Attribute{Name: "S"})
	r, err := FromRows(s, [][]string{{"3", "x"}, {"-1", "y"}, {"7", "z"}})
	if err != nil {
		t.Fatal(err)
	}
	min, max, ok := r.NumericRange(0)
	if !ok || min != -1 || max != 7 {
		t.Fatalf("NumericRange = %v,%v,%v", min, max, ok)
	}
	if _, _, ok := r.NumericRange(1); ok {
		t.Fatal("NumericRange succeeded on string attribute")
	}
	empty := NewRelation(s)
	if _, _, ok := empty.NumericRange(0); ok {
		t.Fatal("NumericRange succeeded on empty relation")
	}
}

func TestCloneAndCells(t *testing.T) {
	r, err := FromRows(Strings("A", "B"), [][]string{{"1", "2"}, {"3", "4"}})
	if err != nil {
		t.Fatal(err)
	}
	c := r.Clone()
	c.Set(Cell{Row: 1, Col: 0}, "x")
	if r.Get(Cell{Row: 1, Col: 0}) != "3" {
		t.Fatal("Clone aliases tuples")
	}
	if c.Get(Cell{Row: 1, Col: 0}) != "x" {
		t.Fatal("Set did not stick")
	}
}

func TestDiff(t *testing.T) {
	a, _ := FromRows(Strings("A", "B"), [][]string{{"1", "2"}, {"3", "4"}})
	b := a.Clone()
	b.Set(Cell{0, 1}, "x")
	b.Set(Cell{1, 0}, "y")
	cells, err := Diff(a, b)
	if err != nil {
		t.Fatal(err)
	}
	want := []Cell{{0, 1}, {1, 0}}
	if !reflect.DeepEqual(cells, want) {
		t.Fatalf("Diff = %v, want %v", cells, want)
	}
	short, _ := FromRows(Strings("A", "B"), [][]string{{"1", "2"}})
	if _, err := Diff(a, short); err == nil {
		t.Fatal("Diff accepted different cardinalities")
	}
	other, _ := FromRows(Strings("A", "C"), [][]string{{"1", "2"}, {"3", "4"}})
	if _, err := Diff(a, other); err == nil {
		t.Fatal("Diff accepted different schemas")
	}
	same, _ := FromRows(Strings("A", "B"), [][]string{{"1", "2"}, {"3", "4"}})
	cells, err = Diff(a, same) // equal schemas by value, different pointers
	if err != nil || len(cells) != 0 {
		t.Fatalf("Diff on equal-valued schema = %v, %v", cells, err)
	}
}

func TestCSVRoundTrip(t *testing.T) {
	in := "A,N\nx,1\ny,2.5\n"
	r, err := ReadCSV(strings.NewReader(in), "string,numeric")
	if err != nil {
		t.Fatal(err)
	}
	if r.Len() != 2 || r.Schema.Attr(1).Type != Numeric {
		t.Fatalf("bad relation: len=%d", r.Len())
	}
	var buf bytes.Buffer
	if err := WriteCSV(&buf, r); err != nil {
		t.Fatal(err)
	}
	r2, err := ReadCSV(strings.NewReader(buf.String()), "string,numeric")
	if err != nil {
		t.Fatal(err)
	}
	cells, err := Diff(r, r2)
	if err != nil || len(cells) != 0 {
		t.Fatalf("round trip changed data: %v %v", cells, err)
	}
}

func TestCSVErrors(t *testing.T) {
	if _, err := ReadCSV(strings.NewReader(""), ""); err == nil {
		t.Fatal("empty input accepted")
	}
	if _, err := ReadCSV(strings.NewReader("A,B\nx\n"), ""); err == nil {
		t.Fatal("ragged row accepted")
	}
	if _, err := ReadCSV(strings.NewReader("A\nx\n"), "string,string"); err == nil {
		t.Fatal("mismatched type spec accepted")
	}
	if _, err := ReadCSV(strings.NewReader("A\nx\n"), "blob"); err == nil {
		t.Fatal("unknown type accepted")
	}
	if _, err := ReadCSV(strings.NewReader("A\nx\n"), "numeric"); err == nil {
		t.Fatal("non-numeric cell accepted for numeric column")
	}
}

func TestParseTypeSpecAliases(t *testing.T) {
	types, err := parseTypeSpec("s,STR,n,Float", 4)
	if err != nil {
		t.Fatal(err)
	}
	want := []Type{String, String, Numeric, Numeric}
	if !reflect.DeepEqual(types, want) {
		t.Fatalf("parseTypeSpec = %v", types)
	}
}

func TestParseFloat(t *testing.T) {
	if v, err := ParseFloat(" 2.5 "); err != nil || v != 2.5 {
		t.Fatalf("ParseFloat = %v, %v", v, err)
	}
	if _, err := ParseFloat("x"); err == nil {
		t.Fatal("ParseFloat accepted garbage")
	}
}

func TestNumericNullsAllowed(t *testing.T) {
	s := MustSchema(Attribute{Name: "N", Type: Numeric})
	r := NewRelation(s)
	if err := r.Append(Tuple{""}); err != nil {
		t.Fatalf("empty numeric cell rejected: %v", err)
	}
	if err := r.Append(Tuple{"abc"}); err == nil {
		t.Fatal("garbage numeric cell accepted")
	}
}

func TestReadCSVOpts(t *testing.T) {
	in := "# a comment\nA;N\n x ;1\ny;2\n"
	rel, err := ReadCSVOpts(strings.NewReader(in), "string,numeric", CSVOptions{
		Comma:     ';',
		Comment:   '#',
		TrimSpace: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rel.Len() != 2 || rel.Tuples[0][0] != "x" {
		t.Fatalf("relation: %v", rel.Tuples)
	}
	if rel.Schema.Attr(1).Type != Numeric {
		t.Fatal("type spec ignored")
	}
}
