package dataset

import "unicode/utf8"

// Dict interns the distinct values of one column: each value gets a dense
// int32 code in first-occurrence order. The distance layer keys its
// per-column triangular distance planes by code pairs, so repeated value
// pairs pay an integer-indexed load instead of a hash probe, and the
// memoized rune lengths feed the normalized-distance denominators without
// re-decoding UTF-8.
//
// A Dict is immutable after construction: values appearing later (streamed
// tuples, out-of-domain repairs) simply miss and take the non-interned
// path. Under the closed-world repair model (see ActiveDomain), repaired
// cells draw from the relation's existing values, so the dictionary stays
// authoritative across a repair run.
type Dict struct {
	codes map[string]int32
	vals  []string
	lens  []int32 // rune lengths, aligned with vals
}

// ColumnDict builds the dictionary of column col's distinct values in
// first-occurrence order.
func (r *Relation) ColumnDict(col int) *Dict {
	d := &Dict{codes: make(map[string]int32)}
	for _, t := range r.Tuples {
		v := t[col]
		if _, ok := d.codes[v]; ok {
			continue
		}
		d.codes[v] = int32(len(d.vals))
		d.vals = append(d.vals, v)
		d.lens = append(d.lens, int32(utf8.RuneCountInString(v)))
	}
	return d
}

// Len reports the number of distinct values.
func (d *Dict) Len() int { return len(d.vals) }

// Code returns the value's code, if interned.
func (d *Dict) Code(s string) (int32, bool) {
	c, ok := d.codes[s]
	return c, ok
}

// Value returns the interned value for a code.
func (d *Dict) Value(c int32) string { return d.vals[c] }

// RuneLen returns the rune length of the value with the given code.
func (d *Dict) RuneLen(c int32) int { return int(d.lens[c]) }
