package dataset

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzReadCSV ensures the loader never panics and that accepted inputs
// round-trip through WriteCSV.
func FuzzReadCSV(f *testing.F) {
	f.Add("A,B\nx,y\n", "")
	f.Add("A\n1\n2\n", "numeric")
	f.Add("A,B\n\"q,w\",z\n", "string,string")
	f.Add("", "")
	f.Add("A,A\nx,y\n", "")
	f.Fuzz(func(t *testing.T, csvData, typeSpec string) {
		if len(csvData) > 1<<12 || len(typeSpec) > 64 {
			t.Skip()
		}
		rel, err := ReadCSV(strings.NewReader(csvData), typeSpec)
		if err != nil {
			return // rejected input is fine; panics are not
		}
		var buf bytes.Buffer
		if err := WriteCSV(&buf, rel); err != nil {
			t.Fatalf("WriteCSV failed on accepted input: %v", err)
		}
		again, err := ReadCSV(bytes.NewReader(buf.Bytes()), "")
		if err != nil {
			t.Fatalf("round trip rejected: %v\noriginal: %q\nwritten: %q", err, csvData, buf.String())
		}
		if again.Len() != rel.Len() {
			t.Fatalf("round trip changed cardinality: %d vs %d", again.Len(), rel.Len())
		}
	})
}

// FuzzTupleKey checks the projection-key injectivity contract.
func FuzzTupleKey(f *testing.F) {
	f.Add("ab", "c", "a", "bc")
	f.Fuzz(func(t *testing.T, a1, a2, b1, b2 string) {
		ta := Tuple{a1, a2}
		tb := Tuple{b1, b2}
		cols := []int{0, 1}
		eq := a1 == b1 && a2 == b2
		if (ta.Key(cols) == tb.Key(cols)) != eq {
			t.Fatalf("key collision: %q/%q vs %q/%q", a1, a2, b1, b2)
		}
	})
}

func TestKeyEscaping(t *testing.T) {
	// The classic collision shapes without escaping.
	a := Tuple{"x\x00y", "z"}
	b := Tuple{"x", "y\x00z"}
	if a.Key([]int{0, 1}) == b.Key([]int{0, 1}) {
		t.Fatal("NUL-splitting collision")
	}
	c := Tuple{"x\x01", "y"}
	d := Tuple{"x", "\x01y"}
	if c.Key([]int{0, 1}) == d.Key([]int{0, 1}) {
		t.Fatal("escape-byte collision")
	}
	// Equal values keep equal keys.
	same := Tuple{"x\x00y"}
	if a.Key([]int{0}) != same.Key([]int{0}) {
		t.Fatal("escaping broke equality")
	}
}
