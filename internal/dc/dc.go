// Package dc implements denial constraints, the constraint language of the
// holistic-repair line of work the paper compares against (Chu et al.,
// ICDE 2013): a denial constraint forbids any pair of tuples from jointly
// satisfying a conjunction of predicates, e.g.
//
//	¬( t1.City = t2.City  ∧  t1.State ≠ t2.State )            — the FD City→State
//	¬( t1.State = t2.State ∧ t1.Salary > t2.Salary ∧ t1.Rate < t2.Rate )
//
// DCs strictly generalize FDs with order and inequality predicates, and
// with the ≈ operator they also express similarity conditions. The package
// provides parsing, detection (with equality-prefix blocking), and a
// violation-driven repair in the holistic style, used as an additional
// baseline and as a validation surface for constraints FDs cannot express.
package dc

import (
	"fmt"
	"strings"

	"ftrepair/internal/dataset"
	"ftrepair/internal/fd"
	"ftrepair/internal/strsim"
)

// Op is a predicate operator.
type Op uint8

// Predicate operators. Sim/NotSim compare normalized string distance
// against the predicate's Theta.
const (
	Eq Op = iota
	Neq
	Lt
	Leq
	Gt
	Geq
	Sim
	NotSim
)

var opNames = map[Op]string{
	Eq: "=", Neq: "!=", Lt: "<", Leq: "<=", Gt: ">", Geq: ">=", Sim: "~", NotSim: "!~",
}

// String renders the operator symbol.
func (o Op) String() string { return opNames[o] }

// Pred is one predicate over a tuple pair: t1.Left <op> t2.Right, or
// t1.Left <op> Const when Right is negative.
type Pred struct {
	Left  int
	Right int // -1 for constant comparisons
	Const string
	Op    Op
	// Theta is the normalized-distance threshold for Sim/NotSim
	// (default 0.2 when unset at parse time).
	Theta float64
}

// DC is a denial constraint: no tuple pair may satisfy every predicate.
type DC struct {
	Name   string
	Schema *dataset.Schema
	Preds  []Pred
}

// Parse reads a DC spec: ';'-separated predicates of the form
// "t1.A <op> t2.B" or "t1.A <op> 'literal'", with ops =, !=, <, <=, >, >=,
// ~, !~. An optional "name:" prefix labels the constraint. The similarity
// threshold of ~/!~ can be given as "~0.25".
func Parse(schema *dataset.Schema, spec string) (*DC, error) {
	name := ""
	body := spec
	if i := strings.Index(spec, ":"); i >= 0 && !strings.Contains(spec[:i], ".") {
		name = strings.TrimSpace(spec[:i])
		body = spec[i+1:]
	}
	var preds []Pred
	for _, ps := range strings.Split(body, ";") {
		ps = strings.TrimSpace(ps)
		if ps == "" {
			continue
		}
		p, err := parsePred(schema, ps)
		if err != nil {
			return nil, fmt.Errorf("dc: %q: %w", spec, err)
		}
		preds = append(preds, p)
	}
	if len(preds) == 0 {
		return nil, fmt.Errorf("dc: %q has no predicates", spec)
	}
	return &DC{Name: name, Schema: schema, Preds: preds}, nil
}

// MustParse is Parse that panics on error.
func MustParse(schema *dataset.Schema, spec string) *DC {
	d, err := Parse(schema, spec)
	if err != nil {
		panic(err)
	}
	return d
}

func parsePred(schema *dataset.Schema, s string) (Pred, error) {
	// Longest operators first so "<=" is not read as "<".
	for _, cand := range []struct {
		sym string
		op  Op
	}{
		{"!=", Neq}, {"<=", Leq}, {">=", Geq}, {"!~", NotSim},
		{"=", Eq}, {"<", Lt}, {">", Gt}, {"~", Sim},
	} {
		i := strings.Index(s, cand.sym)
		if i < 0 {
			continue
		}
		lhs := strings.TrimSpace(s[:i])
		rhs := strings.TrimSpace(s[i+len(cand.sym):])
		p := Pred{Op: cand.op, Theta: 0.2}
		// Optional numeric theta glued to ~ / !~: "t1.A ~0.3 t2.A".
		if (cand.op == Sim || cand.op == NotSim) && rhs != "" {
			var theta float64
			var rest string
			if n, _ := fmt.Sscanf(rhs, "%f %s", &theta, &rest); n == 2 {
				p.Theta = theta
				rhs = rest
			}
		}
		col, err := tupleAttr(schema, lhs, "t1")
		if err != nil {
			return Pred{}, err
		}
		p.Left = col
		if strings.HasPrefix(rhs, "'") && strings.HasSuffix(rhs, "'") && len(rhs) >= 2 {
			p.Right = -1
			p.Const = rhs[1 : len(rhs)-1]
			return p, nil
		}
		rcol, err := tupleAttr(schema, rhs, "t2")
		if err != nil {
			return Pred{}, err
		}
		p.Right = rcol
		return p, nil
	}
	return Pred{}, fmt.Errorf("no operator in predicate %q", s)
}

func tupleAttr(schema *dataset.Schema, s, wantTuple string) (int, error) {
	parts := strings.SplitN(s, ".", 2)
	if len(parts) != 2 {
		return 0, fmt.Errorf("predicate side %q must be %s.Attr", s, wantTuple)
	}
	if parts[0] != wantTuple {
		return 0, fmt.Errorf("predicate side %q must reference %s", s, wantTuple)
	}
	col, ok := schema.Index(strings.TrimSpace(parts[1]))
	if !ok {
		return 0, fmt.Errorf("unknown attribute %q", parts[1])
	}
	return col, nil
}

// String renders the DC.
func (d *DC) String() string {
	parts := make([]string, len(d.Preds))
	for i, p := range d.Preds {
		rhs := "t2." + attrName(d.Schema, p.Right)
		if p.Right < 0 {
			rhs = "'" + p.Const + "'"
		}
		parts[i] = fmt.Sprintf("t1.%s %s %s", attrName(d.Schema, p.Left), p.Op, rhs)
	}
	s := "not(" + strings.Join(parts, " and ") + ")"
	if d.Name != "" {
		return d.Name + ": " + s
	}
	return s
}

func attrName(s *dataset.Schema, col int) string {
	if col < 0 {
		return "?"
	}
	return s.Attr(col).Name
}

// holds evaluates one predicate on an ordered tuple pair.
func (p Pred) holds(schema *dataset.Schema, t1, t2 dataset.Tuple) bool {
	a := t1[p.Left]
	var b string
	if p.Right < 0 {
		b = p.Const
	} else {
		b = t2[p.Right]
	}
	switch p.Op {
	case Eq:
		return a == b
	case Neq:
		return a != b
	case Sim:
		_, within := strsim.NormalizedEditWithin(a, b, p.Theta)
		return within && a != b
	case NotSim:
		_, within := strsim.NormalizedEditWithin(a, b, p.Theta)
		return !within
	}
	// Order predicates: numeric when both parse, lexicographic otherwise.
	av, errA := dataset.ParseFloat(a)
	bv, errB := dataset.ParseFloat(b)
	if errA == nil && errB == nil {
		switch p.Op {
		case Lt:
			return av < bv
		case Leq:
			return av <= bv
		case Gt:
			return av > bv
		case Geq:
			return av >= bv
		}
	}
	switch p.Op {
	case Lt:
		return a < b
	case Leq:
		return a <= b
	case Gt:
		return a > b
	case Geq:
		return a >= b
	}
	return false
}

// Violates reports whether the ordered pair (t1, t2) satisfies every
// predicate (i.e. violates the constraint). Pairs are ordered: asymmetric
// DCs (with order predicates) must be checked both ways.
func (d *DC) Violates(t1, t2 dataset.Tuple) bool {
	for _, p := range d.Preds {
		if !p.holds(d.Schema, t1, t2) {
			return false
		}
	}
	return true
}

// FromFD expresses an FD as the equivalent denial constraint.
func FromFD(f *fd.FD) *DC {
	d := &DC{Name: f.Name, Schema: f.Schema}
	for _, c := range f.LHS {
		d.Preds = append(d.Preds, Pred{Left: c, Right: c, Op: Eq})
	}
	// ¬(X equal ∧ some Y differs) needs one DC per RHS attribute for
	// multi-attribute Y; FDs in this codebase repair per constraint, so
	// the conjunction "all Y differ" would be wrong. Use the first RHS for
	// single-attribute FDs and one Neq per attribute joined as separate
	// DCs via FromFDAll.
	d.Preds = append(d.Preds, Pred{Left: f.RHS[0], Right: f.RHS[0], Op: Neq})
	return d
}

// FromFDAll expresses an FD with a multi-attribute RHS as one DC per RHS
// attribute (their conjunction is the FD).
func FromFDAll(f *fd.FD) []*DC {
	out := make([]*DC, len(f.RHS))
	for i, r := range f.RHS {
		d := &DC{Name: f.Name, Schema: f.Schema}
		for _, c := range f.LHS {
			d.Preds = append(d.Preds, Pred{Left: c, Right: c, Op: Eq})
		}
		d.Preds = append(d.Preds, Pred{Left: r, Right: r, Op: Neq})
		out[i] = d
	}
	return out
}
