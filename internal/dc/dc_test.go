package dc_test

import (
	"strings"
	"testing"

	"ftrepair/internal/dataset"
	"ftrepair/internal/dc"
	"ftrepair/internal/fd"
	"ftrepair/internal/gen"
)

func TestParseDC(t *testing.T) {
	schema := dataset.Strings("City", "State", "Salary", "Rate")
	d, err := dc.Parse(schema, "fdlike: t1.City = t2.City ; t1.State != t2.State")
	if err != nil {
		t.Fatal(err)
	}
	if d.Name != "fdlike" || len(d.Preds) != 2 {
		t.Fatalf("parsed %+v", d)
	}
	if got := d.String(); !strings.Contains(got, "t1.City = t2.City") || !strings.Contains(got, "t1.State != t2.State") {
		t.Fatalf("String = %q", got)
	}
	// Order predicates and constants.
	d2, err := dc.Parse(schema, "t1.Salary > t2.Salary ; t1.Rate < t2.Rate")
	if err != nil {
		t.Fatal(err)
	}
	if len(d2.Preds) != 2 {
		t.Fatalf("preds = %d", len(d2.Preds))
	}
	d3, err := dc.Parse(schema, "t1.City = 'NYC' ; t1.State != 'NY'")
	if err != nil {
		t.Fatal(err)
	}
	if d3.Preds[0].Right != -1 || d3.Preds[0].Const != "NYC" {
		t.Fatalf("constant predicate = %+v", d3.Preds[0])
	}
	if !strings.Contains(d3.String(), "'NYC'") {
		t.Fatalf("String = %q", d3.String())
	}
	// Similarity with explicit theta.
	d4, err := dc.Parse(schema, "t1.City ~0.3 t2.City ; t1.State != t2.State")
	if err != nil {
		t.Fatal(err)
	}
	if d4.Preds[0].Theta != 0.3 {
		t.Fatalf("theta = %v", d4.Preds[0].Theta)
	}
}

func TestParseDCErrors(t *testing.T) {
	schema := dataset.Strings("A", "B")
	for _, spec := range []string{
		"",            // empty
		"t1.A t2.A",   // no operator
		"t1.Z = t2.A", // unknown attribute
		"t2.A = t2.B", // wrong tuple on the left
		"t1.A = t3.B", // wrong tuple on the right
		"A = t2.B",    // missing tuple qualifier
	} {
		if _, err := dc.Parse(schema, spec); err == nil {
			t.Errorf("Parse(%q) accepted", spec)
		}
	}
}

func TestMustParsePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	dc.MustParse(dataset.Strings("A"), "bogus")
}

func TestViolatesFDShape(t *testing.T) {
	schema := dataset.Strings("City", "State")
	d := dc.MustParse(schema, "t1.City = t2.City ; t1.State != t2.State")
	if !d.Violates(dataset.Tuple{"Boston", "MA"}, dataset.Tuple{"Boston", "NY"}) {
		t.Fatal("classic violation missed")
	}
	if d.Violates(dataset.Tuple{"Boston", "MA"}, dataset.Tuple{"Boston", "MA"}) {
		t.Fatal("consistent pair flagged")
	}
	if d.Violates(dataset.Tuple{"Boston", "MA"}, dataset.Tuple{"Albany", "NY"}) {
		t.Fatal("different cities flagged")
	}
}

func TestViolatesOrderPredicates(t *testing.T) {
	schema := dataset.MustSchema(
		dataset.Attribute{Name: "State"},
		dataset.Attribute{Name: "Salary", Type: dataset.Numeric},
		dataset.Attribute{Name: "Rate", Type: dataset.Numeric},
	)
	// Within a state, a higher salary must not have a lower rate.
	d := dc.MustParse(schema, "t1.State = t2.State ; t1.Salary > t2.Salary ; t1.Rate < t2.Rate")
	hi := dataset.Tuple{"NY", "90000", "3.0"}
	lo := dataset.Tuple{"NY", "50000", "5.0"}
	if !d.Violates(hi, lo) {
		t.Fatal("regressive-tax pair missed")
	}
	if d.Violates(lo, hi) {
		t.Fatal("ordered pair misfired in reverse")
	}
	ok := dataset.Tuple{"NY", "90000", "7.0"}
	if d.Violates(ok, lo) {
		t.Fatal("progressive pair flagged")
	}
	// Numeric comparison, not lexicographic: 9000 < 50000.
	small := dataset.Tuple{"NY", "9000", "1.0"}
	if d.Violates(small, lo) {
		t.Fatal("lexicographic comparison used for numerics")
	}
}

func TestSimilarityPredicate(t *testing.T) {
	schema := dataset.Strings("City", "State")
	d := dc.MustParse(schema, "t1.City ~0.2 t2.City ; t1.State != t2.State")
	if !d.Violates(dataset.Tuple{"Boston", "MA"}, dataset.Tuple{"Boton", "NY"}) {
		t.Fatal("similar-city violation missed")
	}
	// Equal cities are not "similar but different".
	if d.Violates(dataset.Tuple{"Boston", "MA"}, dataset.Tuple{"Boston", "NY"}) {
		t.Fatal("equal cities matched the ~ predicate")
	}
}

func TestFromFD(t *testing.T) {
	schema := dataset.Strings("A", "B", "C")
	f := fd.MustParse(schema, "phi: A -> B")
	d := dc.FromFD(f)
	if !d.Violates(dataset.Tuple{"x", "1", "-"}, dataset.Tuple{"x", "2", "-"}) {
		t.Fatal("FD-derived DC missed a violation")
	}
	multi := fd.MustParse(schema, "A -> B, C")
	ds := dc.FromFDAll(multi)
	if len(ds) != 2 {
		t.Fatalf("FromFDAll = %d DCs", len(ds))
	}
	if !ds[1].Violates(dataset.Tuple{"x", "1", "p"}, dataset.Tuple{"x", "1", "q"}) {
		t.Fatal("second RHS attribute not covered")
	}
}

func TestDetectWithBlocking(t *testing.T) {
	dirty, _ := gen.Citizens()
	f := gen.CitizensFDs(dirty.Schema)[1] // City -> State
	d := dc.FromFD(f)
	violations := dc.Detect(dirty, []*dc.DC{d})
	// Classic violations of phi2: (New York: NY vs MA) and (Boston: NY vs
	// MA) group pairs, both directions.
	if len(violations) == 0 {
		t.Fatal("no violations detected")
	}
	for _, v := range violations {
		if !d.Violates(dirty.Tuples[v.Row1], dirty.Tuples[v.Row2]) {
			t.Fatalf("reported non-violation %+v", v)
		}
	}
	// Blocking must agree with the brute-force path: strip the equality
	// prefix by checking an unblocked constraint on the same semantics.
	unblocked := dc.MustParse(dirty.Schema, "t1.City ~0 t2.City ; t1.State != t2.State")
	_ = unblocked // ~0 means equal-only similarity: different semantics; just exercise the path
	if vs := dc.Detect(dirty, []*dc.DC{unblocked}); len(vs) != 0 {
		// ~ requires a != b, so theta 0 can never hold.
		t.Fatalf("theta-0 similarity produced %d violations", len(vs))
	}
}

func TestConsistentAndRepair(t *testing.T) {
	schema := dataset.Strings("City", "State")
	rel, err := dataset.FromRows(schema, [][]string{
		{"Boston", "MA"}, {"Boston", "MA"}, {"Boston", "MA"},
		{"Boston", "NY"},
		{"Albany", "NY"}, {"Albany", "NY"},
	})
	if err != nil {
		t.Fatal(err)
	}
	d := dc.MustParse(schema, "t1.City = t2.City ; t1.State != t2.State")
	if dc.Consistent(rel, []*dc.DC{d}) {
		t.Fatal("violations missed")
	}
	repaired := dc.Repair(rel, []*dc.DC{d}, 0)
	if !dc.Consistent(repaired, []*dc.DC{d}) {
		t.Fatal("repair left violations")
	}
	// Input untouched.
	if rel.Tuples[3][1] != "NY" {
		t.Fatal("input mutated")
	}
}

func TestRepairOrderDC(t *testing.T) {
	schema := dataset.MustSchema(
		dataset.Attribute{Name: "State"},
		dataset.Attribute{Name: "Salary", Type: dataset.Numeric},
		dataset.Attribute{Name: "Rate", Type: dataset.Numeric},
	)
	rel, err := dataset.FromRows(schema, [][]string{
		{"NY", "50000", "5.0"},
		{"NY", "90000", "3.0"}, // violates monotonicity with row 0
		{"NY", "70000", "6.0"},
	})
	if err != nil {
		t.Fatal(err)
	}
	d := dc.MustParse(schema, "t1.State = t2.State ; t1.Salary > t2.Salary ; t1.Rate < t2.Rate")
	repaired := dc.Repair(rel, []*dc.DC{d}, 0)
	if !dc.Consistent(repaired, []*dc.DC{d}) {
		t.Fatalf("order DC still violated: %v", repaired.Tuples)
	}
}
