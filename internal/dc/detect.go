package dc

import (
	"sort"

	"ftrepair/internal/dataset"
)

// Violation is one violating ordered tuple pair of one DC.
type Violation struct {
	DC   *DC
	Row1 int
	Row2 int
}

// Detect finds every violating pair of every DC. Constraints whose leading
// predicates are cross-tuple equalities are blocked on those attributes
// (only pairs inside an equality group are compared), which covers
// FD-shaped DCs in near-linear time; fully inequality-shaped DCs fall back
// to all ordered pairs.
func Detect(rel *dataset.Relation, dcs []*DC) []Violation {
	var out []Violation
	for _, d := range dcs {
		out = append(out, detectOne(rel, d)...)
	}
	return out
}

func detectOne(rel *dataset.Relation, d *DC) []Violation {
	eqCols := equalityPrefix(d)
	var out []Violation
	check := func(i, j int) {
		if d.Violates(rel.Tuples[i], rel.Tuples[j]) {
			out = append(out, Violation{DC: d, Row1: i, Row2: j})
		}
	}
	if len(eqCols) > 0 {
		groups := make(map[string][]int)
		for i, t := range rel.Tuples {
			k := t.Key(eqCols)
			groups[k] = append(groups[k], i)
		}
		keys := make([]string, 0, len(groups))
		for k := range groups {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			rows := groups[k]
			for a := 0; a < len(rows); a++ {
				for b := 0; b < len(rows); b++ {
					if a != b {
						check(rows[a], rows[b])
					}
				}
			}
		}
		return out
	}
	for i := range rel.Tuples {
		for j := range rel.Tuples {
			if i != j {
				check(i, j)
			}
		}
	}
	return out
}

// equalityPrefix returns the attributes compared with cross-tuple equality
// on the same column (usable as a blocking key).
func equalityPrefix(d *DC) []int {
	var cols []int
	for _, p := range d.Preds {
		if p.Op == Eq && p.Right == p.Left {
			cols = append(cols, p.Left)
		}
	}
	return cols
}

// Consistent reports whether rel has no DC violations.
func Consistent(rel *dataset.Relation, dcs []*DC) bool {
	for _, d := range dcs {
		if len(detectOne(rel, d)) > 0 {
			return false
		}
	}
	return true
}

// breakable reports whether adopting the partner's (or constant) value at
// the predicate's left cell falsifies the predicate: strict comparisons and
// disequalities become false on equal values; Eq/Leq/Geq stay true.
func breakable(op Op) bool {
	switch op {
	case Neq, Lt, Gt, Sim, NotSim:
		return true
	}
	return false
}

// Repair resolves DC violations in the holistic baseline style: violations
// are collected, and per violating pair the cell whose repair covers the
// most violations is updated (greedy cover of the conflict hypergraph),
// adopting the partner's value at a breakable predicate — which falsifies
// that predicate and thus the conjunction. The process iterates until
// consistency or the round budget. This deliberately mirrors the
// straightforward strategy of the DC-repair baseline, not the paper's
// cost-based model.
func Repair(rel *dataset.Relation, dcs []*DC, maxRounds int) *dataset.Relation {
	if maxRounds <= 0 {
		maxRounds = 5
	}
	out := rel.Clone()
	type cellKey struct{ row, col int }
	type choice struct {
		cell cellKey
		val  string
	}
	// choices lists the single-cell repairs that falsify one predicate of
	// the violation: either side of a breakable cross-tuple predicate
	// adopts the other side's value; constant predicates repair the left
	// cell to the constant.
	choices := func(v Violation) []choice {
		var out2 []choice
		for _, p := range v.DC.Preds {
			if !breakable(p.Op) {
				continue
			}
			if p.Right < 0 {
				out2 = append(out2, choice{cellKey{v.Row1, p.Left}, p.Const})
				continue
			}
			out2 = append(out2,
				choice{cellKey{v.Row1, p.Left}, out.Tuples[v.Row2][p.Right]},
				choice{cellKey{v.Row2, p.Right}, out.Tuples[v.Row1][p.Left]},
			)
		}
		return out2
	}
	for round := 0; round < maxRounds; round++ {
		violations := Detect(out, dcs)
		if len(violations) == 0 {
			break
		}
		// Greedy cover: cells appearing in many violations repair first,
		// resolving the whole group toward its majority value.
		counts := make(map[cellKey]int)
		for _, v := range violations {
			for _, c := range choices(v) {
				counts[c.cell]++
			}
		}
		done := make(map[cellKey]bool)
		for _, v := range violations {
			if !v.DC.Violates(out.Tuples[v.Row1], out.Tuples[v.Row2]) {
				continue // an earlier repair already resolved this pair
			}
			var best choice
			bestCount := -1
			for _, c := range choices(v) {
				if !done[c.cell] && counts[c.cell] > bestCount {
					best, bestCount = c, counts[c.cell]
				}
			}
			if bestCount < 0 {
				continue
			}
			done[best.cell] = true
			out.Tuples[best.cell.row][best.cell.col] = best.val
		}
	}
	return out
}
