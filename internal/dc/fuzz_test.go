package dc_test

import (
	"testing"

	"ftrepair/internal/dataset"
	"ftrepair/internal/dc"
)

// FuzzParse ensures the DC parser never panics and accepted constraints
// evaluate without panicking.
func FuzzParse(f *testing.F) {
	f.Add("t1.A = t2.A ; t1.B != t2.B")
	f.Add("t1.A > t2.B")
	f.Add("t1.A ~0.3 t2.A")
	f.Add("t1.A = 'lit'")
	f.Fuzz(func(t *testing.T, spec string) {
		if len(spec) > 256 {
			t.Skip()
		}
		schema := dataset.Strings("A", "B")
		d, err := dc.Parse(schema, spec)
		if err != nil {
			return
		}
		if len(d.Preds) == 0 {
			t.Fatalf("accepted DC without predicates: %q", spec)
		}
		// Evaluation must not panic on arbitrary tuples.
		d.Violates(dataset.Tuple{"x", "1"}, dataset.Tuple{"y", "2"})
		_ = d.String()
	})
}
