package discover

import (
	"sort"

	"ftrepair/internal/dataset"
	"ftrepair/internal/fd"
)

// CFDOptions tunes constant-CFD discovery.
type CFDOptions struct {
	// MaxLHS bounds the embedded FD's left-hand side (default 1).
	MaxLHS int
	// MinSupport is the minimum number of tuples a constant pattern must
	// cover (default 5).
	MinSupport int
	// MinConfidence is the minimal fraction of a pattern's tuples agreeing
	// on the modal RHS value (default 0.95).
	MinConfidence float64
	// MaxTableau caps tableau rows per embedded FD (default 32, by
	// descending support).
	MaxTableau int
}

func (o CFDOptions) withDefaults() CFDOptions {
	if o.MaxLHS <= 0 {
		o.MaxLHS = 1
	}
	if o.MinSupport <= 0 {
		o.MinSupport = 5
	}
	if o.MinConfidence <= 0 {
		o.MinConfidence = 0.95
	}
	if o.MaxTableau <= 0 {
		o.MaxTableau = 32
	}
	return o
}

// CFDResult is one discovered conditional dependency: an embedded FD whose
// global g3 error is too high for a plain FD, together with the constant
// patterns under which it does hold.
type CFDResult struct {
	CFD *fd.CFD
	// Support is the total number of tuples the tableau covers;
	// Confidence the support-weighted mean of per-row confidences.
	Support    int
	Confidence float64
}

// CFDs discovers constant conditional functional dependencies: X -> A
// pairs that do not hold globally, but whose individual LHS patterns agree
// on the RHS with high confidence. This captures rules like
// (City = "NYC") -> (State = "NY") in data where City -> State is globally
// violated. Results sort by descending support.
func CFDs(rel *dataset.Relation, opts CFDOptions) []CFDResult {
	opts = opts.withDefaults()
	n := rel.Len()
	if n == 0 {
		return nil
	}
	nattrs := rel.Schema.Len()
	names := func(cols ...int) []string {
		out := make([]string, len(cols))
		for i, c := range cols {
			out[i] = rel.Schema.Attr(c).Name
		}
		return out
	}

	var results []CFDResult
	var lhsSets [][]int
	for a := 0; a < nattrs; a++ {
		lhsSets = append(lhsSets, []int{a})
	}
	for level := 1; level <= opts.MaxLHS; level++ {
		for _, lhs := range lhsSets {
			groups := make(map[string][]int)
			for i, t := range rel.Tuples {
				groups[t.Key(lhs)] = append(groups[t.Key(lhs)], i)
			}
			for rhs := 0; rhs < nattrs; rhs++ {
				if containsAttr(lhs, rhs) {
					continue
				}
				type row struct {
					lhsVals []string
					rhsVal  string
					support int
					conf    float64
				}
				var rows []row
				globallyClean := true
				for _, idx := range groups {
					counts := make(map[string]int)
					for _, r := range idx {
						counts[rel.Tuples[r][rhs]]++
					}
					if len(counts) > 1 {
						globallyClean = false
					}
					if len(idx) < opts.MinSupport {
						continue
					}
					modal, modalCount := "", 0
					for v, c := range counts {
						if c > modalCount || (c == modalCount && v < modal) {
							modal, modalCount = v, c
						}
					}
					conf := float64(modalCount) / float64(len(idx))
					if conf < opts.MinConfidence {
						continue
					}
					rows = append(rows, row{
						lhsVals: rel.Tuples[idx[0]].Project(lhs),
						rhsVal:  modal,
						support: len(idx),
						conf:    conf,
					})
				}
				if globallyClean || len(rows) == 0 {
					// A globally clean pair is a plain FD (see FDs); no
					// conditional value.
					continue
				}
				sort.Slice(rows, func(a, b int) bool {
					if rows[a].support != rows[b].support {
						return rows[a].support > rows[b].support
					}
					return rows[a].rhsVal < rows[b].rhsVal
				})
				if len(rows) > opts.MaxTableau {
					rows = rows[:opts.MaxTableau]
				}
				embedded, err := fd.New(rel.Schema, "", names(lhs...), names(rhs))
				if err != nil {
					continue
				}
				tableau := make([]fd.PatternRow, len(rows))
				support := 0
				weightedConf := 0.0
				for i, r := range rows {
					tableau[i] = fd.PatternRow{LHS: r.lhsVals, RHS: []string{r.rhsVal}}
					support += r.support
					weightedConf += r.conf * float64(r.support)
				}
				c, err := fd.NewCFD(embedded, tableau)
				if err != nil {
					continue
				}
				results = append(results, CFDResult{
					CFD:        c,
					Support:    support,
					Confidence: weightedConf / float64(support),
				})
			}
		}
		if level == opts.MaxLHS {
			break
		}
		lhsSets = nextLevel(lhsSets, nattrs)
	}
	sort.SliceStable(results, func(i, j int) bool {
		if results[i].Support != results[j].Support {
			return results[i].Support > results[j].Support
		}
		return lessAttrs(results[i].CFD.Embedded, results[j].CFD.Embedded)
	})
	return results
}
