package discover_test

import (
	"testing"

	"ftrepair/internal/dataset"
	"ftrepair/internal/discover"
	"ftrepair/internal/fd"
	"ftrepair/internal/repair"
)

func TestDiscoverCFDs(t *testing.T) {
	// City -> State fails globally ("Albany" exists in NY and GA here),
	// but NYC -> NY holds with full confidence.
	schema := dataset.Strings("City", "State")
	rel := dataset.NewRelation(schema)
	add := func(city, state string, times int) {
		for i := 0; i < times; i++ {
			if err := rel.Append(dataset.Tuple{city, state}); err != nil {
				t.Fatal(err)
			}
		}
	}
	add("NYC", "NY", 10)
	add("Albany", "NY", 6)
	add("Albany", "GA", 6) // makes City -> State globally false
	add("Tiny", "TX", 2)   // below support

	results := discover.CFDs(rel, discover.CFDOptions{MinSupport: 5, MinConfidence: 0.9})
	var cityState *discover.CFDResult
	for i := range results {
		f := results[i].CFD.Embedded
		if len(f.LHS) == 1 && f.Schema.Attr(f.LHS[0]).Name == "City" && f.Schema.Attr(f.RHS[0]).Name == "State" {
			cityState = &results[i]
		}
	}
	if cityState == nil {
		t.Fatalf("City->State CFD not discovered: %d results", len(results))
	}
	// The tableau has the NYC row; Albany is ambiguous (50/50 split per
	// value? no — each (Albany,NY)/(Albany,GA) is its own City group
	// "Albany" with two states, confidence 0.5 < 0.9, so excluded).
	foundNYC := false
	for _, row := range cityState.CFD.Tableau {
		if row.LHS[0] == "NYC" {
			foundNYC = true
			if row.RHS[0] != "NY" {
				t.Fatalf("NYC row RHS = %q", row.RHS[0])
			}
		}
		if row.LHS[0] == "Albany" {
			t.Fatal("ambiguous Albany pattern in tableau")
		}
		if row.LHS[0] == "Tiny" {
			t.Fatal("under-supported pattern in tableau")
		}
	}
	if !foundNYC {
		t.Fatalf("NYC pattern missing: %+v", cityState.CFD.Tableau)
	}
	if cityState.Support < 10 || cityState.Confidence < 0.9 {
		t.Fatalf("support/confidence = %d/%.2f", cityState.Support, cityState.Confidence)
	}
}

func TestDiscoverCFDsSkipsCleanFDs(t *testing.T) {
	schema := dataset.Strings("A", "B")
	rel, err := dataset.FromRows(schema, [][]string{
		{"x", "1"}, {"x", "1"}, {"x", "1"}, {"x", "1"}, {"x", "1"},
		{"y", "2"}, {"y", "2"}, {"y", "2"}, {"y", "2"}, {"y", "2"},
	})
	if err != nil {
		t.Fatal(err)
	}
	// A -> B holds globally: it is a plain FD, not a CFD.
	for _, r := range discover.CFDs(rel, discover.CFDOptions{}) {
		f := r.CFD.Embedded
		if f.Schema.Attr(f.LHS[0]).Name == "A" && f.Schema.Attr(f.RHS[0]).Name == "B" {
			t.Fatal("globally clean FD reported as CFD")
		}
	}
}

func TestDiscoverCFDsEmptyInput(t *testing.T) {
	rel := dataset.NewRelation(dataset.Strings("A", "B"))
	if got := discover.CFDs(rel, discover.CFDOptions{}); got != nil {
		t.Fatalf("empty relation produced %v", got)
	}
}

func TestDiscoveredCFDRepairs(t *testing.T) {
	// The discovered CFD plugs into RepairCFDSet and enforces its
	// constant rows.
	schema := dataset.Strings("City", "State")
	rel := dataset.NewRelation(schema)
	for i := 0; i < 12; i++ {
		state := "NY"
		if i == 0 {
			state = "CA" // the error
		}
		if err := rel.Append(dataset.Tuple{"NYC", state}); err != nil {
			t.Fatal(err)
		}
	}
	// Make the global FD fail so the pair is CFD territory.
	for i := 0; i < 6; i++ {
		st := "NY"
		if i%2 == 0 {
			st = "GA"
		}
		if err := rel.Append(dataset.Tuple{"Albany", st}); err != nil {
			t.Fatal(err)
		}
	}
	results := discover.CFDs(rel, discover.CFDOptions{MinSupport: 5, MinConfidence: 0.9})
	if len(results) == 0 {
		t.Fatal("nothing discovered")
	}
	var c *fd.CFD
	for _, r := range results {
		f := r.CFD.Embedded
		if f.Schema.Attr(f.LHS[0]).Name == "City" {
			c = r.CFD
		}
	}
	if c == nil {
		t.Fatal("City CFD missing")
	}
	s, err := repair.NewCFDSet([]*fd.CFD{c}, 0.3)
	if err != nil {
		t.Fatal(err)
	}
	cfg, err := fd.NewDistConfig(rel, 0.7, 0.3)
	if err != nil {
		t.Fatal(err)
	}
	res, err := repair.RepairCFDSet(rel, s, cfg, repair.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Repaired.Tuples[0][1] != "NY" {
		t.Fatalf("NYC error unrepaired: %v", res.Repaired.Tuples[0])
	}
}
