// Package discover profiles a relation for functional dependencies, the
// constraint-acquisition substrate the repair model assumes: users rarely
// have Σ written down, and dirty data never satisfies candidate FDs
// exactly. The discovery is TANE-style — level-wise search over
// left-hand-side attribute sets with partition refinement — and tolerant:
// an FD is reported when its g3 error (the fraction of tuples that would
// have to be removed for the FD to hold exactly) is at most a budget,
// which is what makes discovery work on data that still contains the very
// errors one wants to repair.
package discover

import (
	"sort"

	"ftrepair/internal/dataset"
	"ftrepair/internal/fd"
)

// Options tunes discovery.
type Options struct {
	// MaxLHS bounds the left-hand-side size (default 2; 3 is practical for
	// narrow schemas).
	MaxLHS int
	// MaxError is the g3 tolerance: the fraction of tuples violating the
	// candidate that is still acceptable (default 0.01; set near the
	// expected dirtiness).
	MaxError float64
	// MinSupport is the minimum fraction of tuples lying in LHS groups of
	// size >= 2 (default 0.05). Candidates below it have almost no
	// witnesses — near-key LHSs that "hold" vacuously.
	MinSupport float64
	// MaxResults caps the number of reported FDs (0 = unlimited).
	MaxResults int
}

func (o Options) withDefaults() Options {
	if o.MaxLHS <= 0 {
		o.MaxLHS = 2
	}
	if o.MaxError < 0 {
		o.MaxError = 0
	} else if fd.FloatEq(o.MaxError, 0) {
		o.MaxError = 0.01
	}
	if fd.FloatEq(o.MinSupport, 0) {
		o.MinSupport = 0.05
	}
	return o
}

// Result is one discovered dependency with its quality measures.
type Result struct {
	FD *fd.FD
	// Error is the g3 measure: violating tuples / all tuples.
	Error float64
	// Support is the fraction of tuples in LHS groups with at least two
	// members (the witnessed fraction).
	Support float64
}

// FDs discovers minimal approximate functional dependencies of rel.
// Results sort by ascending error, then descending support, then by
// attribute order. Only minimal FDs are reported: when X -> A holds, no
// superset of X is reported for A.
func FDs(rel *dataset.Relation, opts Options) []Result {
	opts = opts.withDefaults()
	n := rel.Len()
	if n == 0 {
		return nil
	}
	nattrs := rel.Schema.Len()

	// Per-attribute value partitions as class ids per row.
	attrClass := make([][]int, nattrs)
	for a := 0; a < nattrs; a++ {
		attrClass[a] = classIDs(rel, []int{a})
	}

	// found[rhs] lists the minimal LHS sets already reported for rhs.
	found := make([][][]int, nattrs)

	var results []Result
	names := func(cols ...int) []string {
		out := make([]string, len(cols))
		for i, c := range cols {
			out[i] = rel.Schema.Attr(c).Name
		}
		return out
	}
	report := func(lhs []int, rhs int, errRate, support float64) {
		built, err := fd.New(rel.Schema, "", names(lhs...), names(rhs))
		if err != nil {
			return // overlapping LHS/RHS cannot happen; defensive
		}
		results = append(results, Result{FD: built, Error: errRate, Support: support})
		found[rhs] = append(found[rhs], append([]int(nil), lhs...))
	}

	// Level-wise over LHS sizes.
	var lhsSets [][]int
	for a := 0; a < nattrs; a++ {
		lhsSets = append(lhsSets, []int{a})
	}
	for level := 1; level <= opts.MaxLHS; level++ {
		for _, lhs := range lhsSets {
			classes := classIDsMulti(attrClass, lhs)
			groups, support := groupRows(classes, n)
			if support < opts.MinSupport {
				continue
			}
			for rhs := 0; rhs < nattrs; rhs++ {
				if containsAttr(lhs, rhs) {
					continue
				}
				if coveredByMinimal(found[rhs], lhs) {
					continue
				}
				errRate := g3(groups, attrClass[rhs], n)
				if errRate <= opts.MaxError {
					report(lhs, rhs, errRate, support)
				}
			}
		}
		if level == opts.MaxLHS {
			break
		}
		lhsSets = nextLevel(lhsSets, nattrs)
	}

	sort.SliceStable(results, func(i, j int) bool {
		if !fd.FloatEq(results[i].Error, results[j].Error) {
			return results[i].Error < results[j].Error
		}
		if !fd.FloatEq(results[i].Support, results[j].Support) {
			return results[i].Support > results[j].Support
		}
		return lessAttrs(results[i].FD, results[j].FD)
	})
	if opts.MaxResults > 0 && len(results) > opts.MaxResults {
		results = results[:opts.MaxResults]
	}
	return results
}

// classIDs assigns each row a dense class id by its values on cols.
func classIDs(rel *dataset.Relation, cols []int) []int {
	ids := make([]int, rel.Len())
	seen := make(map[string]int)
	for i, t := range rel.Tuples {
		k := t.Key(cols)
		id, ok := seen[k]
		if !ok {
			id = len(seen)
			seen[k] = id
		}
		ids[i] = id
	}
	return ids
}

// classIDsMulti combines per-attribute class ids into class ids for the
// attribute set (partition intersection).
func classIDsMulti(attrClass [][]int, lhs []int) []int {
	n := len(attrClass[lhs[0]])
	if len(lhs) == 1 {
		return attrClass[lhs[0]]
	}
	ids := make([]int, n)
	seen := make(map[string]int)
	var key []byte
	for i := 0; i < n; i++ {
		key = key[:0]
		for _, a := range lhs {
			key = appendInt(key, attrClass[a][i])
			key = append(key, ',')
		}
		id, ok := seen[string(key)]
		if !ok {
			id = len(seen)
			seen[string(key)] = id
		}
		ids[i] = id
	}
	return ids
}

func appendInt(b []byte, v int) []byte {
	if v == 0 {
		return append(b, '0')
	}
	start := len(b)
	for v > 0 {
		b = append(b, byte('0'+v%10))
		v /= 10
	}
	// reverse the appended digits
	for i, j := start, len(b)-1; i < j; i, j = i+1, j-1 {
		b[i], b[j] = b[j], b[i]
	}
	return b
}

// groupRows buckets row indices by class id, stripped of singletons, and
// reports the witnessed support.
func groupRows(classes []int, n int) ([][]int, float64) {
	byClass := make(map[int][]int)
	for i, c := range classes {
		byClass[c] = append(byClass[c], i)
	}
	// Iterate class ids in sorted order so the group list is identical run
	// to run — callers fold over it, but partial-support ties downstream
	// break on group order.
	ids := make([]int, 0, len(byClass))
	for c := range byClass {
		ids = append(ids, c)
	}
	sort.Ints(ids)
	var groups [][]int
	witnessed := 0
	for _, c := range ids {
		rows := byClass[c]
		if len(rows) >= 2 {
			groups = append(groups, rows)
			witnessed += len(rows)
		}
	}
	return groups, float64(witnessed) / float64(n)
}

// g3 is the minimum fraction of tuples to delete so that every LHS group
// agrees on the RHS: per group, everything outside the modal RHS class.
func g3(groups [][]int, rhsClass []int, n int) float64 {
	violations := 0
	counts := make(map[int]int)
	for _, rows := range groups {
		for k := range counts {
			delete(counts, k)
		}
		max := 0
		for _, r := range rows {
			counts[rhsClass[r]]++
			if counts[rhsClass[r]] > max {
				max = counts[rhsClass[r]]
			}
		}
		violations += len(rows) - max
	}
	return float64(violations) / float64(n)
}

func containsAttr(lhs []int, a int) bool {
	for _, x := range lhs {
		if x == a {
			return true
		}
	}
	return false
}

// coveredByMinimal reports whether some already-reported LHS for this RHS
// is a subset of lhs (so lhs would be non-minimal).
func coveredByMinimal(minimal [][]int, lhs []int) bool {
	for _, m := range minimal {
		sub := true
		for _, a := range m {
			if !containsAttr(lhs, a) {
				sub = false
				break
			}
		}
		if sub {
			return true
		}
	}
	return false
}

// nextLevel extends each LHS with every larger attribute index (sorted
// candidate generation without duplicates).
func nextLevel(lhsSets [][]int, nattrs int) [][]int {
	var out [][]int
	for _, lhs := range lhsSets {
		for a := lhs[len(lhs)-1] + 1; a < nattrs; a++ {
			ext := append(append([]int{}, lhs...), a)
			out = append(out, ext)
		}
	}
	return out
}

func lessAttrs(a, b *fd.FD) bool {
	if len(a.LHS) != len(b.LHS) {
		return len(a.LHS) < len(b.LHS)
	}
	for i := range a.LHS {
		if a.LHS[i] != b.LHS[i] {
			return a.LHS[i] < b.LHS[i]
		}
	}
	return a.RHS[0] < b.RHS[0]
}
