package discover_test

import (
	"strings"
	"testing"

	"ftrepair/internal/dataset"
	"ftrepair/internal/discover"
	"ftrepair/internal/fd"
	"ftrepair/internal/gen"
)

func hasFD(results []discover.Result, spec string) bool {
	for _, r := range results {
		if strings.Contains(r.FD.String(), spec) {
			return true
		}
	}
	return false
}

func TestDiscoverSimple(t *testing.T) {
	schema := dataset.Strings("City", "State", "Name")
	rel, err := dataset.FromRows(schema, [][]string{
		{"Boston", "MA", "a"},
		{"Boston", "MA", "b"},
		{"Boston", "MA", "c"},
		{"Albany", "NY", "d"},
		{"Albany", "NY", "e"},
		{"Buffalo", "NY", "f"},
		{"Buffalo", "NY", "g"},
	})
	if err != nil {
		t.Fatal(err)
	}
	results := discover.FDs(rel, discover.Options{})
	if !hasFD(results, "[City] -> [State]") {
		t.Fatalf("City->State not discovered: %v", render(results))
	}
	// State does NOT determine City (NY has two cities).
	if hasFD(results, "[State] -> [City]") {
		t.Fatalf("spurious State->City: %v", render(results))
	}
	// Name is a key: its groups are singletons, below the support floor.
	if hasFD(results, "[Name] ->") {
		t.Fatalf("vacuous key FD reported: %v", render(results))
	}
	// All reported errors are zero on clean data.
	for _, r := range results {
		if r.Error != 0 {
			t.Fatalf("clean data with error %v: %s", r.Error, r.FD)
		}
		if r.Support <= 0 || r.Support > 1 {
			t.Fatalf("support out of range: %+v", r)
		}
	}
}

func render(results []discover.Result) []string {
	var out []string
	for _, r := range results {
		out = append(out, r.FD.String())
	}
	return out
}

func TestDiscoverToleratesNoise(t *testing.T) {
	schema := dataset.Strings("City", "State")
	rel := dataset.NewRelation(schema)
	for i := 0; i < 50; i++ {
		state := "MA"
		if i == 0 {
			state = "NY" // one violating tuple
		}
		if err := rel.Append(dataset.Tuple{"Boston", state}); err != nil {
			t.Fatal(err)
		}
	}
	// Strict discovery misses the FD...
	strict := discover.FDs(rel, discover.Options{MaxError: 1e-9})
	if hasFD(strict, "[City] -> [State]") {
		t.Fatal("strict discovery accepted a violated FD")
	}
	// ...tolerant discovery finds it with the right error (1/50).
	loose := discover.FDs(rel, discover.Options{MaxError: 0.05})
	found := false
	for _, r := range loose {
		if strings.Contains(r.FD.String(), "[City] -> [State]") {
			found = true
			if r.Error != 1.0/50 {
				t.Fatalf("error = %v, want %v", r.Error, 1.0/50)
			}
		}
	}
	if !found {
		t.Fatal("tolerant discovery missed City->State")
	}
}

func TestDiscoverMinimality(t *testing.T) {
	schema := dataset.Strings("A", "B", "C")
	rel := dataset.NewRelation(schema)
	vals := []string{"x", "y", "z"}
	for i := 0; i < 30; i++ {
		a := vals[i%3]
		if err := rel.Append(dataset.Tuple{a, vals[(i/3)%3], a + "!"}); err != nil {
			t.Fatal(err)
		}
	}
	// A -> C holds; (A,B) -> C must not be reported.
	results := discover.FDs(rel, discover.Options{MaxLHS: 2})
	if !hasFD(results, "[A] -> [C]") {
		t.Fatalf("A->C missing: %v", render(results))
	}
	if hasFD(results, "[A,B] -> [C]") {
		t.Fatalf("non-minimal FD reported: %v", render(results))
	}
}

func TestDiscoverRecoversWorkloadFDs(t *testing.T) {
	// On a dirty HOSP instance, tolerant discovery must recover the
	// planted constraint set (single-attribute LHSs).
	clean := gen.HOSP{Seed: 21}.Generate(1500)
	fds := gen.HOSPFDs(clean.Schema)
	dirty, _ := gen.Inject(clean, fds, 0.04, 22)
	results := discover.FDs(dirty, discover.Options{MaxLHS: 1, MaxError: 0.12, MinSupport: 0.3})
	for _, want := range fds {
		spec := want.String()
		// Strip the name prefix ("h1: ...").
		if i := strings.Index(spec, ": "); i >= 0 {
			spec = spec[i+2:]
		}
		if !hasFD(results, spec) {
			t.Errorf("planted FD not recovered: %s\nfound: %v", spec, render(results))
		}
	}
}

func TestDiscoverEmptyAndCaps(t *testing.T) {
	rel := dataset.NewRelation(dataset.Strings("A", "B"))
	if got := discover.FDs(rel, discover.Options{}); got != nil {
		t.Fatalf("empty relation discovered %v", got)
	}
	rel2, _ := dataset.FromRows(dataset.Strings("A", "B", "C"), [][]string{
		{"x", "1", "p"}, {"x", "1", "p"}, {"y", "2", "q"}, {"y", "2", "q"},
	})
	capped := discover.FDs(rel2, discover.Options{MaxResults: 2})
	if len(capped) != 2 {
		t.Fatalf("MaxResults ignored: %d results", len(capped))
	}
}

func TestDiscoveredFDsAreUsableForRepair(t *testing.T) {
	// Discovery output plugs straight into a constraint set.
	clean := gen.Tax{Seed: 23}.Generate(400)
	results := discover.FDs(clean, discover.Options{MaxLHS: 1, MinSupport: 0.3, MaxResults: 6})
	if len(results) == 0 {
		t.Fatal("nothing discovered")
	}
	var fds []*fd.FD
	for _, r := range results {
		fds = append(fds, r.FD)
	}
	if _, err := fd.NewSet(fds, 0.3); err != nil {
		t.Fatal(err)
	}
}
