package eval

import (
	"ftrepair/internal/dataset"
	"ftrepair/internal/fd"
	"ftrepair/internal/repair"
)

// DetectionQuality measures error *localization*, the paper's step 1: a
// cell is flagged when it belongs to the constrained attributes of a tuple
// participating in at least one detected violation. Precision is the
// fraction of flagged cells that are truly erroneous, recall the fraction
// of injected errors (on constrained attributes) that get flagged. The
// FT semantics' headline claim is higher recall than equality-based
// detection at comparable precision.
func DetectionQuality(inst *Instance, violations []repair.Violation) Quality {
	flagged := make(map[dataset.Cell]bool)
	for _, v := range violations {
		attrs := v.FD.Attrs()
		for _, rows := range [][]int{v.LeftRows, v.RightRows} {
			for _, row := range rows {
				for _, col := range attrs {
					flagged[dataset.Cell{Row: row, Col: col}] = true
				}
			}
		}
	}
	// Errors on constrained attributes only: detection cannot see errors
	// outside every FD.
	constrained := make(map[int]bool)
	for _, f := range inst.Set.FDs {
		for _, c := range f.Attrs() {
			constrained[c] = true
		}
	}
	q := Quality{Repaired: len(flagged)}
	for _, inj := range inst.Injections {
		if !constrained[inj.Cell.Col] {
			continue
		}
		q.Errors++
		if flagged[inj.Cell] {
			q.Correct++
		}
	}
	if q.Repaired > 0 {
		truePos := 0.0
		errSet := make(map[dataset.Cell]bool, len(inst.Injections))
		for _, inj := range inst.Injections {
			errSet[inj.Cell] = true
		}
		for c := range flagged {
			if errSet[c] {
				truePos++
			}
		}
		q.Precision = truePos / float64(q.Repaired)
	} else {
		q.Precision = 1
	}
	if q.Errors > 0 {
		q.Recall = q.Correct / float64(q.Errors)
	} else {
		q.Recall = 1
	}
	if q.Precision+q.Recall > 0 {
		q.F1 = 2 * q.Precision * q.Recall / (q.Precision + q.Recall)
	}
	return q
}

// ClassicDetect runs equality-based violation detection (the w_l=1, w_r=0,
// tau=0 degeneration of Remark §2.1) over the instance's FDs, for the
// detection comparison.
func ClassicDetect(inst *Instance) []repair.Violation {
	cfg, err := fd.NewDistConfig(inst.Dirty, 1, 0)
	if err != nil {
		return nil
	}
	set, err := fd.NewSet(inst.Set.FDs, 0)
	if err != nil {
		return nil
	}
	return repair.Detect(inst.Dirty, set, cfg, repair.Options{})
}
