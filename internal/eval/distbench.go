package eval

import (
	"fmt"
	"io"
	"math/rand"
	"runtime"
	"strings"
	"time"

	"ftrepair/internal/dataset"
	"ftrepair/internal/fd"
	"ftrepair/internal/obs"
	"ftrepair/internal/strsim"
)

// DistBenchConfig selects the distance-kernel microbenchmark run.
type DistBenchConfig struct {
	Seed int64
	// MinTime is the minimum measured wall-clock per entry. Defaults to
	// 200ms.
	MinTime time.Duration
	Cancel  <-chan struct{}
}

// DistBenchEntry is one measured distance path. NsPerOp is per *comparison*
// (a batch iterates a fixed pair list), unlike the build benches' per-build
// figure; allocs and bytes are per comparison too.
type DistBenchEntry struct {
	Name        string  `json:"name"`
	Len         int     `json:"len"` // string length in characters; 0 when not length-keyed
	Iters       int     `json:"iters"`
	NsPerOp     float64 `json:"nsPerOp"`
	AllocsPerOp float64 `json:"allocsPerOp"`
	BytesPerOp  float64 `json:"bytesPerOp"`
}

// DistBenchDoc is the BENCH_strsim.json payload: the bit-parallel kernels
// against the retained DP baselines at several string lengths, the
// one-vs-many Matcher amortization, and the distance-plane hit path against
// the sharded-map hit path, plus derived speedup ratios.
type DistBenchDoc struct {
	GOMAXPROCS int              `json:"gomaxprocs"`
	Meta       obs.RunMeta      `json:"meta"`
	Entries    []DistBenchEntry `json:"entries"`
	// Speedups are ns/op ratios: "kernel/lenL" (DP → kernel),
	// "matcher/lenL" (one-shot kernel → streamed Matcher), and "plane"
	// (map hit → plane hit).
	Speedups map[string]float64 `json:"speedups"`
}

// distSink accumulates benchmark results so the measured calls cannot be
// dead-code eliminated.
var distSink int

// dbWord draws a lowercase word; the 16-letter alphabet mirrors the mixed
// density of relational attribute values.
func dbWord(rng *rand.Rand, n int) string {
	const alphabet = "abcdefghijklmnop"
	var sb strings.Builder
	for i := 0; i < n; i++ {
		sb.WriteByte(alphabet[rng.Intn(len(alphabet))])
	}
	return sb.String()
}

// dbMutate applies up to k random character edits to s.
func dbMutate(rng *rand.Rand, s string, k int) string {
	const alphabet = "abcdefghijklmnop"
	b := []byte(s)
	for i := 0; i < k; i++ {
		switch op := rng.Intn(3); {
		case op == 0 && len(b) > 0:
			p := rng.Intn(len(b))
			b = append(b[:p], b[p+1:]...)
		case op == 1:
			p := rng.Intn(len(b) + 1)
			b = append(b[:p], append([]byte{alphabet[rng.Intn(len(alphabet))]}, b[p:]...)...)
		default:
			if len(b) > 0 {
				b[rng.Intn(len(b))] = alphabet[rng.Intn(len(alphabet))]
			}
		}
	}
	return string(b)
}

// DistBench times the string-distance hot paths: the bit-parallel edit
// kernels against the retained DP oracles at lengths straddling the 64-char
// word boundary, the one-vs-many Matcher (pattern tables built once per
// stream), and a warmed DistCache answering interned pairs from the
// distance plane versus the sharded map. Candidates are near pairs (a few
// edits apart) — the case the length prefilters cannot reject, which is
// what survives to the kernels in real builds.
func DistBench(c DistBenchConfig) (*DistBenchDoc, error) {
	if c.MinTime <= 0 {
		c.MinTime = 200 * time.Millisecond
	}
	doc := &DistBenchDoc{
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		Meta:       obs.CollectMeta("synthetic"),
		Speedups:   make(map[string]float64),
	}
	canceled := func() bool { return benchCanceled(c.Cancel) }

	// measure runs batches of `ops` comparisons until MinTime elapses.
	measure := func(name string, length, ops int, batch func()) DistBenchEntry {
		iters := 0
		m0, b0 := allocSnap()
		start := time.Now()
		for time.Since(start) < c.MinTime {
			if canceled() {
				break
			}
			batch()
			iters++
		}
		elapsed := time.Since(start)
		m1, b1 := allocSnap()
		if iters == 0 {
			iters = 1
		}
		e := DistBenchEntry{
			Name:        name,
			Len:         length,
			Iters:       iters,
			NsPerOp:     float64(elapsed.Nanoseconds()) / float64(iters*ops),
			AllocsPerOp: float64(m1-m0) / float64(uint64(iters*ops)),
			BytesPerOp:  float64(b1-b0) / float64(uint64(iters*ops)),
		}
		doc.Entries = append(doc.Entries, e)
		return e
	}

	rng := rand.New(rand.NewSource(c.Seed))
	const streamLen = 64
	for _, length := range []int{8, 16, 64, 128} {
		pat := dbWord(rng, length)
		cands := make([]string, streamLen)
		for i := range cands {
			cands[i] = dbMutate(rng, pat, 1+rng.Intn(3))
		}
		dp := measure(fmt.Sprintf("dp/len%d", length), length, streamLen, func() {
			for _, cand := range cands {
				distSink += strsim.LevenshteinDP(pat, cand)
			}
		})
		kernel := measure(fmt.Sprintf("kernel/len%d", length), length, streamLen, func() {
			for _, cand := range cands {
				distSink += strsim.Levenshtein(pat, cand)
			}
		})
		matcher := measure(fmt.Sprintf("matcher/len%d", length), length, streamLen, func() {
			mt := strsim.AcquireMatcher(pat)
			for _, cand := range cands {
				distSink += mt.Distance(cand)
			}
			mt.Release()
		})
		if kernel.NsPerOp > 0 {
			doc.Speedups[fmt.Sprintf("kernel/len%d", length)] = dp.NsPerOp / kernel.NsPerOp
		}
		if matcher.NsPerOp > 0 {
			doc.Speedups[fmt.Sprintf("matcher/len%d", length)] = kernel.NsPerOp / matcher.NsPerOp
		}
		if canceled() {
			return doc, nil
		}
	}

	// Cache hit paths: one column of distinct 12-char values, every pair
	// warmed, then re-queried — the plane (interned codes, one atomic load)
	// against the sharded map (hash + RWMutex).
	const domain = 128
	const alphabet = "abcdefghijklmnop"
	vals := make([]string, domain)
	for i := range vals {
		// 8 random chars plus a 4-char base-16 index tag: 12 chars from the
		// same alphabet, distinct by construction (no retry loop needed).
		tag := []byte{
			alphabet[(i>>12)&15], alphabet[(i>>8)&15],
			alphabet[(i>>4)&15], alphabet[i&15],
		}
		vals[i] = dbWord(rng, 8) + string(tag)
	}
	rows := make([][]string, domain)
	for i, v := range vals {
		rows[i] = []string{v}
	}
	rel, err := dataset.FromRows(dataset.Strings("A"), rows)
	if err != nil {
		return doc, err
	}
	pairs := make([][2]string, 4096)
	for i := range pairs {
		a, b := rng.Intn(domain), rng.Intn(domain-1)
		if b >= a {
			b++
		}
		pairs[i] = [2]string{vals[a], vals[b]}
	}
	hitBatch := func(cfg *fd.DistConfig) func() {
		return func() {
			for _, p := range pairs {
				distSink += int(cfg.AttrDist(0, p[0], p[1]) * 64)
			}
		}
	}
	planed := fd.DefaultDistConfig(rel)
	hitBatch(planed)() // warm: every pair resolved exactly
	mapped := fd.DefaultDistConfig(rel)
	mapped.Dicts = nil
	mapped.Cache = fd.NewDistCache()
	hitBatch(mapped)()
	mapHit := measure("maphit", 0, len(pairs), hitBatch(mapped))
	planeHit := measure("planehit", 0, len(pairs), hitBatch(planed))
	if planeHit.NsPerOp > 0 {
		doc.Speedups["plane"] = mapHit.NsPerOp / planeHit.NsPerOp
	}
	return doc, nil
}

// PrintDistBench renders the microbenchmark table.
func PrintDistBench(w io.Writer, doc *DistBenchDoc) {
	fmt.Fprintf(w, "## Distance kernel bench (GOMAXPROCS=%d)\n", doc.GOMAXPROCS)
	fmt.Fprintf(w, "%-18s %10s %12s %12s %12s\n", "path", "iters", "ns/op", "allocs/op", "B/op")
	for _, e := range doc.Entries {
		fmt.Fprintf(w, "%-18s %10d %12.1f %12.3f %12.1f\n",
			e.Name, e.Iters, e.NsPerOp, e.AllocsPerOp, e.BytesPerOp)
	}
	for _, k := range []string{"kernel/len8", "kernel/len16", "kernel/len64", "kernel/len128",
		"matcher/len8", "matcher/len16", "matcher/len64", "matcher/len128", "plane"} {
		if v, ok := doc.Speedups[k]; ok {
			fmt.Fprintf(w, "speedup %-18s %6.2fx\n", k, v)
		}
	}
	fmt.Fprintln(w)
}
