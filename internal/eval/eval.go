// Package eval measures repair quality exactly as §6.1 does — precision is
// the fraction of repaired cells whose new value matches the ground truth,
// recall the fraction of erroneous cells correctly repaired — and prepares
// the benchmark instances (workload + noise + constraint configuration)
// shared by the repairbench command and the bench suite.
package eval

import (
	"fmt"
	"strings"

	"ftrepair/internal/dataset"
	"ftrepair/internal/fd"
	"ftrepair/internal/gen"
)

// Quality is a precision/recall measurement.
type Quality struct {
	Precision float64
	Recall    float64
	F1        float64
	// Repaired counts cells the algorithm changed; Correct how many of
	// them now match the ground truth (fractional with partial credit);
	// Errors the injected error count.
	Repaired int
	Correct  float64
	Errors   int
}

// Options tunes the measurement.
type Options struct {
	// PartialMarker, when non-empty, grants 0.5 credit for a repaired cell
	// whose value starts with the marker and whose original value was
	// erroneous — the paper's "Metric 0.5" accounting for Llunatic's
	// variables (cells repaired to an unknown).
	PartialMarker string
}

// Evaluate compares a repair against the ground truth. clean, dirty and
// repaired must be row-aligned instances of one schema.
func Evaluate(clean, dirty, repaired *dataset.Relation, opts Options) (Quality, error) {
	repairedCells, err := dataset.Diff(dirty, repaired)
	if err != nil {
		return Quality{}, fmt.Errorf("eval: %w", err)
	}
	errorCells, err := dataset.Diff(clean, dirty)
	if err != nil {
		return Quality{}, fmt.Errorf("eval: %w", err)
	}
	wasError := make(map[dataset.Cell]bool, len(errorCells))
	for _, c := range errorCells {
		wasError[c] = true
	}
	var correct float64
	for _, c := range repairedCells {
		v := repaired.Get(c)
		switch {
		case v == clean.Get(c):
			correct++
		case opts.PartialMarker != "" && strings.HasPrefix(v, opts.PartialMarker) && wasError[c]:
			correct += 0.5
		}
	}
	q := Quality{Repaired: len(repairedCells), Correct: correct, Errors: len(errorCells)}
	if q.Repaired > 0 {
		q.Precision = correct / float64(q.Repaired)
	} else {
		q.Precision = 1
	}
	if q.Errors > 0 {
		q.Recall = correct / float64(q.Errors)
	} else {
		q.Recall = 1
	}
	if q.Precision+q.Recall > 0 {
		q.F1 = 2 * q.Precision * q.Recall / (q.Precision + q.Recall)
	}
	return q, nil
}

// Benchmark configuration: w_l = 0.7, w_r = 0.3, tau = 0.3 = w_r * |Y|.
// At this setting every classic FD violation is also an FT-violation
// (Theorem 1 boundary), single-character typos sit far below the threshold,
// and the generators keep legitimate key values separated above it.
const (
	BenchWL  = 0.7
	BenchWR  = 0.3
	BenchTau = 0.3
)

// Instance is a prepared benchmark instance.
type Instance struct {
	Name       string
	Clean      *dataset.Relation
	Dirty      *dataset.Relation
	Set        *fd.Set
	Cfg        *fd.DistConfig
	Injections []gen.Injection
}

// Setup selects a benchmark instance.
type Setup struct {
	// Workload is "hosp" or "tax".
	Workload string
	// N is the number of tuples.
	N int
	// FDs is how many of the workload's 9 FDs to use (0 means all).
	FDs int
	// ErrorRate is the dirty-cell fraction (the paper's e%), e.g. 0.04.
	ErrorRate float64
	// Seed drives generation and noise.
	Seed int64
	// WL/WR/Tau override the benchmark distance configuration when all are
	// non-zero (used by the weight-split ablation).
	WL, WR, Tau float64
}

// RecallByKind splits recall by the §6.1 error kinds using the instance's
// injection ledger: of the errors injected as typos / RHS swaps / LHS
// swaps, how many did the repair restore to the clean value.
func (inst *Instance) RecallByKind(repaired *dataset.Relation) map[gen.ErrorKind]Quality {
	out := make(map[gen.ErrorKind]Quality)
	for _, inj := range inst.Injections {
		q := out[inj.Kind]
		q.Errors++
		if repaired.Get(inj.Cell) == inj.Clean {
			q.Correct++
		}
		out[inj.Kind] = q
	}
	for k, q := range out {
		if q.Errors > 0 {
			q.Recall = q.Correct / float64(q.Errors)
		}
		out[k] = q
	}
	return out
}

// Prepare builds the instance: generate clean data, inject noise, assemble
// the constraint set and distance configuration.
func Prepare(s Setup) (*Instance, error) {
	if s.N <= 0 {
		return nil, fmt.Errorf("eval: N must be positive")
	}
	var clean *dataset.Relation
	var fds []*fd.FD
	switch strings.ToLower(s.Workload) {
	case "hosp":
		clean = gen.HOSP{Seed: s.Seed}.Generate(s.N)
		fds = gen.HOSPFDs(clean.Schema)
	case "tax":
		clean = gen.Tax{Seed: s.Seed}.Generate(s.N)
		fds = gen.TaxFDs(clean.Schema)
	default:
		return nil, fmt.Errorf("eval: unknown workload %q (want hosp or tax)", s.Workload)
	}
	if s.FDs > 0 {
		if s.FDs > len(fds) {
			return nil, fmt.Errorf("eval: workload has %d FDs, %d requested", len(fds), s.FDs)
		}
		fds = fds[:s.FDs]
	}
	dirty, injections := gen.Inject(clean, fds, s.ErrorRate, s.Seed+1)
	wl, wr, tau := BenchWL, BenchWR, BenchTau
	if !fd.FloatEq(s.WL, 0) || !fd.FloatEq(s.WR, 0) {
		wl, wr, tau = s.WL, s.WR, s.Tau
	}
	set, err := fd.NewSet(fds, tau)
	if err != nil {
		return nil, err
	}
	cfg, err := fd.NewDistConfig(dirty, wl, wr)
	if err != nil {
		return nil, err
	}
	return &Instance{
		Name:       fmt.Sprintf("%s-n%d-fds%d-e%g", strings.ToLower(s.Workload), s.N, len(fds), s.ErrorRate),
		Clean:      clean,
		Dirty:      dirty,
		Set:        set,
		Cfg:        cfg,
		Injections: injections,
	}, nil
}
