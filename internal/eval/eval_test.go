package eval_test

import (
	"encoding/json"
	"strings"
	"testing"

	"ftrepair/internal/dataset"
	"ftrepair/internal/eval"
	"ftrepair/internal/repair"
)

func tinyTrio(t *testing.T) (clean, dirty, repaired *dataset.Relation) {
	t.Helper()
	schema := dataset.Strings("A", "B")
	mk := func(rows [][]string) *dataset.Relation {
		r, err := dataset.FromRows(schema, rows)
		if err != nil {
			t.Fatal(err)
		}
		return r
	}
	clean = mk([][]string{{"x", "1"}, {"y", "2"}, {"z", "3"}})
	dirty = mk([][]string{{"x", "9"}, {"q", "2"}, {"z", "3"}}) // two errors
	repaired = mk([][]string{{"x", "1"}, {"w", "2"}, {"z", "4"}})
	// repairs: (0,1) correct; (1,0) wrong value; (2,1) false positive.
	return
}

func TestEvaluate(t *testing.T) {
	clean, dirty, repaired := tinyTrio(t)
	q, err := eval.Evaluate(clean, dirty, repaired, eval.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if q.Repaired != 3 || q.Errors != 2 || q.Correct != 1 {
		t.Fatalf("counts: %+v", q)
	}
	if q.Precision != 1.0/3 || q.Recall != 0.5 {
		t.Fatalf("P=%v R=%v", q.Precision, q.Recall)
	}
	if q.F1 <= 0 || q.F1 >= 1 {
		t.Fatalf("F1=%v", q.F1)
	}
}

func TestEvaluatePerfectAndEmpty(t *testing.T) {
	clean, dirty, _ := tinyTrio(t)
	q, err := eval.Evaluate(clean, dirty, clean.Clone(), eval.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if q.Precision != 1 || q.Recall != 1 {
		t.Fatalf("perfect repair: %+v", q)
	}
	// No repairs at all: precision defined as 1, recall 0.
	q, err = eval.Evaluate(clean, dirty, dirty.Clone(), eval.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if q.Precision != 1 || q.Recall != 0 {
		t.Fatalf("noop repair: %+v", q)
	}
	// Clean input, clean output: both 1.
	q, err = eval.Evaluate(clean, clean.Clone(), clean.Clone(), eval.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if q.Precision != 1 || q.Recall != 1 {
		t.Fatalf("clean noop: %+v", q)
	}
}

func TestEvaluatePartialCredit(t *testing.T) {
	schema := dataset.Strings("A")
	mk := func(rows ...string) *dataset.Relation {
		r := dataset.NewRelation(schema)
		for _, v := range rows {
			if err := r.Append(dataset.Tuple{v}); err != nil {
				t.Fatal(err)
			}
		}
		return r
	}
	clean := mk("x", "y")
	dirty := mk("x", "q")
	repaired := mk("x", "_V1")
	q, err := eval.Evaluate(clean, dirty, repaired, eval.Options{PartialMarker: "_V"})
	if err != nil {
		t.Fatal(err)
	}
	if q.Correct != 0.5 || q.Precision != 0.5 || q.Recall != 0.5 {
		t.Fatalf("partial credit: %+v", q)
	}
	// Without the marker option the variable counts as wrong.
	q, err = eval.Evaluate(clean, dirty, repaired, eval.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if q.Correct != 0 {
		t.Fatalf("no marker: %+v", q)
	}
	// A variable written over a clean cell gets no credit.
	repaired2 := mk("_V2", "q")
	q, err = eval.Evaluate(clean, dirty, repaired2, eval.Options{PartialMarker: "_V"})
	if err != nil {
		t.Fatal(err)
	}
	if q.Correct != 0 {
		t.Fatalf("variable on clean cell: %+v", q)
	}
}

func TestEvaluateSchemaMismatch(t *testing.T) {
	a, _ := dataset.FromRows(dataset.Strings("A"), [][]string{{"x"}})
	b, _ := dataset.FromRows(dataset.Strings("B"), [][]string{{"x"}})
	if _, err := eval.Evaluate(a, b, b, eval.Options{}); err == nil {
		t.Fatal("schema mismatch accepted")
	}
}

func TestPrepareValidation(t *testing.T) {
	if _, err := eval.Prepare(eval.Setup{Workload: "hosp"}); err == nil {
		t.Fatal("N=0 accepted")
	}
	if _, err := eval.Prepare(eval.Setup{Workload: "nope", N: 10}); err == nil {
		t.Fatal("unknown workload accepted")
	}
	if _, err := eval.Prepare(eval.Setup{Workload: "hosp", N: 10, FDs: 99}); err == nil {
		t.Fatal("too many FDs accepted")
	}
	inst, err := eval.Prepare(eval.Setup{Workload: "tax", N: 50, FDs: 3, ErrorRate: 0.05, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(inst.Set.FDs) != 3 || inst.Dirty.Len() != 50 {
		t.Fatalf("instance: %d fds, %d tuples", len(inst.Set.FDs), inst.Dirty.Len())
	}
}

func TestEndToEndQualityHOSP(t *testing.T) {
	// The integration smoke test of the whole pipeline: a HOSP instance at
	// the paper's default error rate, repaired with GreedyM, must achieve
	// solid precision and recall (the paper reports both around 0.9; we
	// require >= 0.6 to keep the test robust to noise-mix variance).
	inst, err := eval.Prepare(eval.Setup{Workload: "hosp", N: 1000, ErrorRate: 0.04, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	res, err := repair.GreedyM(inst.Dirty, inst.Set, inst.Cfg, repair.Options{})
	if err != nil {
		t.Fatal(err)
	}
	q, err := eval.Evaluate(inst.Clean, inst.Dirty, res.Repaired, eval.Options{})
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("HOSP GreedyM: P=%.3f R=%.3f (repaired %d, errors %d) in %v",
		q.Precision, q.Recall, q.Repaired, q.Errors, res.Elapsed)
	if q.Precision < 0.6 {
		t.Fatalf("precision %.3f too low", q.Precision)
	}
	if q.Recall < 0.6 {
		t.Fatalf("recall %.3f too low", q.Recall)
	}
}

func TestEndToEndQualityTax(t *testing.T) {
	inst, err := eval.Prepare(eval.Setup{Workload: "tax", N: 600, ErrorRate: 0.04, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	res, err := repair.ApproM(inst.Dirty, inst.Set, inst.Cfg, repair.Options{})
	if err != nil {
		t.Fatal(err)
	}
	q, err := eval.Evaluate(inst.Clean, inst.Dirty, res.Repaired, eval.Options{})
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("Tax ApproM: P=%.3f R=%.3f (repaired %d, errors %d) in %v",
		q.Precision, q.Recall, q.Repaired, q.Errors, res.Elapsed)
	if q.Precision < 0.5 || q.Recall < 0.5 {
		t.Fatalf("quality too low: %+v", q)
	}
}

func TestPrintTables(t *testing.T) {
	series := []eval.Series{
		{Name: "GreedyM", Points: []eval.Point{
			{X: 1, Quality: eval.Quality{Precision: 0.9, Recall: 0.8}, Millis: 10},
			{X: 2, Quality: eval.Quality{Precision: 0.91, Recall: 0.81}, Millis: 20},
		}},
		{Name: "NADEEF", Points: []eval.Point{
			{X: 1, Quality: eval.Quality{Precision: 0.6, Recall: 0.3}, Millis: 5},
			{X: 2, Err: "unsupported"},
		}},
	}
	var qb, tb strings.Builder
	eval.PrintQuality(&qb, "Fig 5 (a,b)", "N", series)
	eval.PrintTime(&tb, "Fig 8", "N", series)
	q := qb.String()
	if !strings.Contains(q, "GreedyM-P") || !strings.Contains(q, "0.900") || !strings.Contains(q, "-") {
		t.Fatalf("quality table:\n%s", q)
	}
	tt := tb.String()
	if !strings.Contains(tt, "GreedyM(ms)") || !strings.Contains(tt, "10.0") {
		t.Fatalf("time table:\n%s", tt)
	}
}

func TestWriteJSON(t *testing.T) {
	series := []eval.Series{{
		Name: "GreedyM",
		Points: []eval.Point{{
			X:       800,
			Quality: eval.Quality{Precision: 0.9, Recall: 0.8, F1: 0.847, Repaired: 10, Correct: 9, Errors: 11},
			Millis:  42,
		}},
	}}
	var sb strings.Builder
	if err := eval.WriteJSON(&sb, "Fig 5", "N", series); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		Title  string `json:"title"`
		XLabel string `json:"xlabel"`
		Series []struct {
			Name   string `json:"name"`
			Points []struct {
				X         float64 `json:"x"`
				Precision float64 `json:"precision"`
				Millis    float64 `json:"millis"`
			} `json:"points"`
		} `json:"series"`
	}
	if err := json.Unmarshal([]byte(sb.String()), &doc); err != nil {
		t.Fatalf("invalid JSON: %v\n%s", err, sb.String())
	}
	if doc.Title != "Fig 5" || doc.XLabel != "N" || len(doc.Series) != 1 {
		t.Fatalf("doc = %+v", doc)
	}
	p := doc.Series[0].Points[0]
	if p.X != 800 || p.Precision != 0.9 || p.Millis != 42 {
		t.Fatalf("point = %+v", p)
	}
}

func TestSoakLargeInstances(t *testing.T) {
	if testing.Short() {
		t.Skip("soak test skipped in -short mode")
	}
	for _, wk := range []struct {
		name string
		n    int
	}{{"hosp", 5000}, {"tax", 4000}} {
		inst, err := eval.Prepare(eval.Setup{Workload: wk.name, N: wk.n, ErrorRate: 0.06, Seed: 99})
		if err != nil {
			t.Fatal(err)
		}
		res, err := repair.GreedyM(inst.Dirty, inst.Set, inst.Cfg, repair.Options{Parallel: 4})
		if err != nil {
			t.Fatal(err)
		}
		if err := repair.VerifyFTConsistent(res.Repaired, inst.Set, inst.Cfg); err != nil {
			t.Fatalf("%s: %v", wk.name, err)
		}
		if err := repair.VerifyValid(inst.Dirty, res.Repaired, inst.Set); err != nil {
			t.Fatalf("%s: %v", wk.name, err)
		}
		q, err := eval.Evaluate(inst.Clean, inst.Dirty, res.Repaired, eval.Options{})
		if err != nil {
			t.Fatal(err)
		}
		t.Logf("%s n=%d: P=%.3f R=%.3f in %v", wk.name, wk.n, q.Precision, q.Recall, res.Elapsed)
		if q.Precision < 0.8 || q.Recall < 0.8 {
			t.Fatalf("%s quality regression: P=%.3f R=%.3f", wk.name, q.Precision, q.Recall)
		}
	}
}
