package eval

import (
	"fmt"
	"io"
	"runtime"
	"time"

	"ftrepair/internal/fd"
	"ftrepair/internal/obs"
	"ftrepair/internal/repair"
	"ftrepair/internal/vgraph"
)

// GraphBenchConfig selects the construction-phase benchmark instance.
type GraphBenchConfig struct {
	// Workload is "hosp" or "tax"; N the tuple count.
	Workload string
	N        int
	Seed     int64
	// MinTime is the minimum measured wall-clock per entry; each entry
	// repeats its operation until it elapses. Defaults to 200ms.
	MinTime time.Duration
	Cancel  <-chan struct{}
}

// GraphBenchEntry is one measured build configuration.
type GraphBenchEntry struct {
	Name         string  `json:"name"`
	Mode         string  `json:"mode"` // allpairs, indexed, or detect
	Workers      int     `json:"workers"`
	Cache        bool    `json:"cache"`
	Iters        int     `json:"iters"`
	NsPerOp      float64 `json:"nsPerOp"`
	AllocsPerOp  float64 `json:"allocsPerOp"`
	BytesPerOp   float64 `json:"bytesPerOp"`
	Vertices     int     `json:"vertices"`
	Edges        int     `json:"edges"`
	EdgesPerSec  float64 `json:"edgesPerSec"`
	CacheHitRate float64 `json:"cacheHitRate"`
}

// GraphBenchDoc is the BENCH_vgraph.json payload: the vgraph/detect timing
// family on one instance, plus derived speedup ratios.
type GraphBenchDoc struct {
	Workload   string `json:"workload"`
	N          int    `json:"n"`
	GOMAXPROCS int    `json:"gomaxprocs"`
	// Meta records the run environment (go version, commit, dataset) so a
	// checked-in BENCH_*.json is self-describing.
	Meta    obs.RunMeta       `json:"meta"`
	Entries []GraphBenchEntry `json:"entries"`
	// Speedups are ns/op ratios: "<mode>-cache" (cache off → on, sequential),
	// "<mode>-workers" (1 → GOMAXPROCS workers, cached), "<mode>-combined".
	Speedups map[string]float64 `json:"speedups"`
}

// allocSnap reads the cumulative heap-allocation counters. Mallocs and
// TotalAlloc are monotonic, so a before/after delta divided by the
// iteration count yields allocs/op and bytes/op — the same quantities
// `go test -benchmem` reports — without a testing.B. The single
// ReadMemStats pause per entry is outside the per-iteration loop and
// negligible against a 200ms MinTime.
func allocSnap() (mallocs, bytes uint64) {
	var m runtime.MemStats
	runtime.ReadMemStats(&m)
	return m.Mallocs, m.TotalAlloc
}

// benchCanceled polls the cancellation channel between timed iterations.
func benchCanceled(ch <-chan struct{}) bool {
	if ch == nil {
		return false
	}
	select {
	case <-ch:
		return true
	default:
		return false
	}
}

// GraphBench times violation-graph construction (all-pairs and indexed, with
// the distance cache on/off and the worker pool at 1 and GOMAXPROCS) plus
// end-to-end multi-FD detection on a generated instance. Each entry uses a
// fresh cache that persists across its iterations — the pipeline reality,
// where the cache built during graph construction keeps serving repair-cost
// and target-search queries.
func GraphBench(c GraphBenchConfig) (*GraphBenchDoc, error) {
	if c.MinTime <= 0 {
		c.MinTime = 200 * time.Millisecond
	}
	single, err := Prepare(Setup{Workload: c.Workload, N: c.N, FDs: 1, ErrorRate: 0.04, Seed: c.Seed})
	if err != nil {
		return nil, err
	}
	full, err := Prepare(Setup{Workload: c.Workload, N: c.N, ErrorRate: 0.04, Seed: c.Seed})
	if err != nil {
		return nil, err
	}
	doc := &GraphBenchDoc{
		Workload:   c.Workload,
		N:          c.N,
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		Meta:       obs.CollectMeta(c.Workload),
		Speedups:   make(map[string]float64),
	}

	f, tau := single.Set.FDs[0], single.Set.Tau[0]
	measureBuild := func(mode string, workers int, useCache bool) error {
		cfg := *single.Cfg // shallow copy: only the cache differs per entry
		if useCache {
			cfg.Cache = fd.NewDistCache()
			cfg.AttachPlanes()
		} else {
			cfg.Cache = nil
		}
		opts := vgraph.Options{DisableIndex: mode == "allpairs", Workers: workers, Cancel: c.Cancel}
		var g *vgraph.Graph
		iters := 0
		m0, b0 := allocSnap()
		start := time.Now()
		for time.Since(start) < c.MinTime {
			if benchCanceled(c.Cancel) {
				return repair.ErrCanceled
			}
			g = vgraph.Build(single.Dirty, f, &cfg, tau, opts)
			iters++
		}
		elapsed := time.Since(start)
		m1, b1 := allocSnap()
		e := GraphBenchEntry{
			Name:        fmt.Sprintf("%s/w%d/%s", mode, workers, onOff(useCache)),
			Mode:        mode,
			Workers:     workers,
			Cache:       useCache,
			Iters:       iters,
			NsPerOp:     float64(elapsed.Nanoseconds()) / float64(iters),
			AllocsPerOp: float64(m1-m0) / float64(iters),
			BytesPerOp:  float64(b1-b0) / float64(iters),
			Vertices:    len(g.Vertices),
			Edges:       g.NumEdges(),
		}
		if e.NsPerOp > 0 {
			e.EdgesPerSec = float64(g.NumEdges()) / (e.NsPerOp / 1e9)
		}
		if useCache {
			hits, misses := cfg.Cache.Counters()
			if hits+misses > 0 {
				e.CacheHitRate = float64(hits) / float64(hits+misses)
			}
		}
		doc.Entries = append(doc.Entries, e)
		return nil
	}

	for _, mode := range []string{"allpairs", "indexed"} {
		for _, v := range []struct {
			workers int
			cache   bool
		}{
			{1, false},
			{1, true},
			{doc.GOMAXPROCS, true},
		} {
			if doc.nsPerOp(mode, v.workers, v.cache) > 0 {
				continue // GOMAXPROCS=1: the parallel variant duplicates {1, cache}
			}
			if err := measureBuild(mode, v.workers, v.cache); err != nil {
				return doc, err
			}
		}
		base := doc.nsPerOp(mode, 1, false)
		cached := doc.nsPerOp(mode, 1, true)
		par := doc.nsPerOp(mode, doc.GOMAXPROCS, true)
		if cached > 0 {
			doc.Speedups[mode+"-cache"] = base / cached
		}
		if par > 0 {
			doc.Speedups[mode+"-workers"] = cached / par
			doc.Speedups[mode+"-combined"] = base / par
		}
	}

	// End-to-end detection over the full FD set: concurrent per-FD builds +
	// warm cache + Edge.D reuse.
	cfg := *full.Cfg
	cfg.Cache = fd.NewDistCache()
	cfg.AttachPlanes()
	var viols []repair.Violation
	iters := 0
	m0, b0 := allocSnap()
	start := time.Now()
	for time.Since(start) < c.MinTime {
		if benchCanceled(c.Cancel) {
			return doc, repair.ErrCanceled
		}
		viols = repair.Detect(full.Dirty, full.Set, &cfg, repair.Options{Cancel: c.Cancel})
		iters++
	}
	elapsed := time.Since(start)
	m1, b1 := allocSnap()
	e := GraphBenchEntry{
		Name:        fmt.Sprintf("detect/%dfds/cache", len(full.Set.FDs)),
		Mode:        "detect",
		Workers:     doc.GOMAXPROCS,
		Cache:       true,
		Iters:       iters,
		NsPerOp:     float64(elapsed.Nanoseconds()) / float64(iters),
		AllocsPerOp: float64(m1-m0) / float64(iters),
		BytesPerOp:  float64(b1-b0) / float64(iters),
		Edges:       len(viols),
	}
	if hits, misses := cfg.Cache.Counters(); hits+misses > 0 {
		e.CacheHitRate = float64(hits) / float64(hits+misses)
	}
	doc.Entries = append(doc.Entries, e)
	return doc, nil
}

// nsPerOp looks up the measured ns/op of one build configuration (0 when
// absent).
func (doc *GraphBenchDoc) nsPerOp(mode string, workers int, cache bool) float64 {
	for _, e := range doc.Entries {
		if e.Mode == mode && e.Workers == workers && e.Cache == cache {
			return e.NsPerOp
		}
	}
	return 0
}

func onOff(b bool) string {
	if b {
		return "cache"
	}
	return "nocache"
}

// PrintGraphBench renders the document as the text table the graphbench
// experiment emits.
func PrintGraphBench(w io.Writer, doc *GraphBenchDoc) {
	fmt.Fprintf(w, "## Graph construction bench — %s (N=%d, GOMAXPROCS=%d)\n",
		doc.Workload, doc.N, doc.GOMAXPROCS)
	fmt.Fprintf(w, "%-24s %8s %14s %12s %12s %10s %14s %10s\n",
		"config", "iters", "ns/op", "allocs/op", "B/op", "edges", "edges/s", "hit rate")
	for _, e := range doc.Entries {
		fmt.Fprintf(w, "%-24s %8d %14.0f %12.0f %12.0f %10d %14.0f %10.3f\n",
			e.Name, e.Iters, e.NsPerOp, e.AllocsPerOp, e.BytesPerOp, e.Edges, e.EdgesPerSec, e.CacheHitRate)
	}
	for _, k := range []string{"allpairs-cache", "allpairs-workers", "allpairs-combined", "indexed-cache", "indexed-workers", "indexed-combined"} {
		if v, ok := doc.Speedups[k]; ok {
			fmt.Fprintf(w, "speedup %-20s %6.2fx\n", k, v)
		}
	}
	fmt.Fprintln(w)
}
