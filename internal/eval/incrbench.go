package eval

import (
	"fmt"
	"io"
	"runtime"
	"sort"
	"time"

	"ftrepair/internal/dataset"
	"ftrepair/internal/fd"
	"ftrepair/internal/gen"
	"ftrepair/internal/incr"
	"ftrepair/internal/obs"
	"ftrepair/internal/repair"
)

// IncrBenchConfig selects the incremental-ingest benchmark instance.
type IncrBenchConfig struct {
	// Workload is "hosp" or "tax"; N the total row count of the largest
	// instance (N/4 and N/2 are also replayed for scaling).
	Workload string
	N        int
	Seed     int64
	Cancel   <-chan struct{}
}

// incrBenchFDs limits the FD subset the stream is checked against. The full
// HOSP set contains low-cardinality FDs whose shared patterns chain every
// row into one shard (locality degrades to from-scratch by design); the
// first three FDs have real locality, which is the regime the sharded
// engine exists for.
const incrBenchFDs = 3

// IncrBenchEntry is one replayed ingest configuration: a fixed arrival
// stream applied to one relation size in one mode.
type IncrBenchEntry struct {
	Name string `json:"name"`
	// Mode is "incremental" (warm sharded engine, per-batch flush),
	// "spot" (small localized batches into the warm engine — the direct
	// probe of the touched-component bound), or "fromscratch" (monolithic
	// GreedyM over the whole accumulated relation per batch).
	Mode string `json:"mode"`
	// N is the relation size after the full stream; Workers the engine or
	// repair parallelism.
	N       int `json:"n"`
	Workers int `json:"workers"`
	// Batches and BatchRows shape the replayed stream.
	Batches   int `json:"batches"`
	BatchRows int `json:"batchRows"`
	// Per-batch wall-clock statistics over the stream.
	AvgBatchMs float64 `json:"avgBatchMs"`
	MaxBatchMs float64 `json:"maxBatchMs"`
	// Per-batch heap-allocation averages over the stream (the "op" here is
	// one ingest batch).
	AllocsPerOp float64 `json:"allocsPerOp"`
	BytesPerOp  float64 `json:"bytesPerOp"`
	// Shard telemetry, incremental mode only: live shards after the stream,
	// mean shards touched per batch, and the largest row count any touched
	// shard had across the stream — the quantity that bounds per-batch work.
	Shards              int     `json:"shards,omitempty"`
	AvgShardsTouched    float64 `json:"avgShardsTouched,omitempty"`
	MaxTouchedShardRows int     `json:"maxTouchedShardRows,omitempty"`
}

// IncrBenchDoc is the BENCH_incremental.json payload: per-batch ingest
// latency of the sharded incremental engine vs recomputing from scratch, at
// three relation sizes, plus derived ratios.
type IncrBenchDoc struct {
	Workload   string `json:"workload"`
	N          int    `json:"n"`
	FDs        int    `json:"fds"`
	GOMAXPROCS int    `json:"gomaxprocs"`
	// Meta records the run environment so a checked-in BENCH_*.json is
	// self-describing.
	Meta    obs.RunMeta      `json:"meta"`
	Entries []IncrBenchEntry `json:"entries"`
	// Ratios: "fromscratch-vs-incremental-n<size>" (per-batch speedup at
	// each size), "incremental-n<max>-vs-n<min>" (how scatter-batch latency
	// grows with standing relation size — it tracks the rows of the touched
	// shards, which a wide 100-row batch scatters across), and
	// "spot-n<max>-vs-n<min>" (how a small localized batch scales — near 1
	// means a batch pays for the components it touches, not the relation).
	Ratios map[string]float64 `json:"ratios"`
	// Equivalent reports the end-of-stream oracle check at the largest size:
	// the engine's relation is identical to a from-scratch rebuild over the
	// same input.
	Equivalent bool `json:"equivalent"`
}

// IncrBench replays a timed ingest stream (gen.Stream) against the sharded
// incremental engine and against monolithic per-batch recomputation, at
// N/4, N/2 and N total rows. The arrival batch size is fixed across sizes,
// so comparing per-batch latencies across sizes isolates the standing
// relation's contribution.
func IncrBench(c IncrBenchConfig) (*IncrBenchDoc, error) {
	workers := runtime.GOMAXPROCS(0)
	doc := &IncrBenchDoc{
		Workload:   c.Workload,
		N:          c.N,
		FDs:        incrBenchFDs,
		GOMAXPROCS: workers,
		Meta:       obs.CollectMeta(c.Workload),
		Ratios:     make(map[string]float64),
	}
	sizes := []int{c.N / 4, c.N / 2, c.N}
	const batches = 8
	incAvg := make(map[int]float64)
	spotAvg := make(map[int]float64)
	for i, size := range sizes {
		if size < 100 || (i > 0 && size == sizes[i-1]) {
			continue
		}
		// Fixed arrival size across relation sizes (capped only when the
		// whole instance is tiny), so the cross-size comparison is fair.
		batchRows := 100
		if cap := size * 2 / (3 * batches); cap < batchRows {
			batchRows = cap
		}
		if batchRows < 1 {
			batchRows = 1
		}
		base, stream, fds, err := gen.Stream(gen.StreamConfig{
			Workload: c.Workload, Base: size - batches*batchRows,
			Batches: batches, BatchSize: batchRows,
			FDs: incrBenchFDs, Rate: 0.05, Seed: c.Seed,
		})
		if err != nil {
			return nil, err
		}
		set, err := fd.NewSet(fds, BenchTau)
		if err != nil {
			return nil, err
		}
		// Both modes share one distance model derived from the full stream,
		// so their repairs see identical numeric spans.
		full := base.Clone()
		for _, b := range stream {
			for _, row := range b.Rows {
				if err := full.Append(row); err != nil {
					return nil, err
				}
			}
		}
		cfg, err := fd.NewDistConfig(full, BenchWL, BenchWR)
		if err != nil {
			return nil, err
		}

		// Incremental: one warm engine, one flush per arrival batch.
		eng, _, err := incr.NewEngine(base, set, cfg, incr.Options{Workers: workers})
		if err != nil {
			return nil, err
		}
		inc := IncrBenchEntry{
			Name: fmt.Sprintf("incremental/n%d", size), Mode: "incremental",
			N: size, Workers: workers, Batches: len(stream), BatchRows: batchRows,
		}
		touched := 0
		m0, b0 := allocSnap()
		for _, b := range stream {
			if benchCanceled(c.Cancel) {
				return doc, repair.ErrCanceled
			}
			br, err := eng.Append(b.Rows, "bench", c.Cancel)
			if err != nil {
				return doc, err
			}
			ms := float64(br.Elapsed.Microseconds()) / 1000
			inc.AvgBatchMs += ms
			if ms > inc.MaxBatchMs {
				inc.MaxBatchMs = ms
			}
			touched += br.ShardsTouched
			if br.MaxShardRows > inc.MaxTouchedShardRows {
				inc.MaxTouchedShardRows = br.MaxShardRows
			}
		}
		m1, b1 := allocSnap()
		inc.AvgBatchMs /= float64(len(stream))
		inc.AllocsPerOp = float64(m1-m0) / float64(len(stream))
		inc.BytesPerOp = float64(b1-b0) / float64(len(stream))
		inc.AvgShardsTouched = float64(touched) / float64(len(stream))
		inc.Shards = eng.Stats().Shards
		doc.Entries = append(doc.Entries, inc)
		incAvg[size] = inc.AvgBatchMs

		if size == sizes[len(sizes)-1] {
			oracle, _, err := incr.RepairAll(eng.InputSnapshot(), set, cfg, incr.Options{Workers: workers})
			if err != nil {
				return doc, err
			}
			doc.Equivalent = relationsEqual(eng.Snapshot(), oracle)
		}

		// Spot latency: small batches of rows the relation already holds, so
		// each lands in a handful of existing shards. This is the direct
		// probe of the touched-component bound — its cost must track those
		// shards' sizes, staying near-flat as the relation grows.
		const spotReps, spotRows = 5, 10
		spot := IncrBenchEntry{
			Name: fmt.Sprintf("spot/n%d", size), Mode: "spot",
			N: size, Workers: workers, Batches: spotReps, BatchRows: spotRows,
		}
		spotTouched := 0
		m0, b0 = allocSnap()
		for r := 0; r < spotReps; r++ {
			rows := make([][]string, spotRows)
			for j := range rows {
				rows[j] = full.Tuples[(r*spotRows+j*97)%full.Len()]
			}
			if benchCanceled(c.Cancel) {
				return doc, repair.ErrCanceled
			}
			br, err := eng.Append(rows, "bench", c.Cancel)
			if err != nil {
				return doc, err
			}
			ms := float64(br.Elapsed.Microseconds()) / 1000
			spot.AvgBatchMs += ms
			if ms > spot.MaxBatchMs {
				spot.MaxBatchMs = ms
			}
			spotTouched += br.ShardsTouched
			if br.MaxShardRows > spot.MaxTouchedShardRows {
				spot.MaxTouchedShardRows = br.MaxShardRows
			}
		}
		m1, b1 = allocSnap()
		spot.AvgBatchMs /= spotReps
		spot.AllocsPerOp = float64(m1-m0) / spotReps
		spot.BytesPerOp = float64(b1-b0) / spotReps
		spot.AvgShardsTouched = float64(spotTouched) / spotReps
		spot.Shards = eng.Stats().Shards
		doc.Entries = append(doc.Entries, spot)
		spotAvg[size] = spot.AvgBatchMs

		// From scratch: each arrival triggers a monolithic repair of the
		// whole accumulated (original, dirty) relation.
		accum := base.Clone()
		fs := IncrBenchEntry{
			Name: fmt.Sprintf("fromscratch/n%d", size), Mode: "fromscratch",
			N: size, Workers: workers, Batches: len(stream), BatchRows: batchRows,
		}
		m0, b0 = allocSnap()
		for _, b := range stream {
			if benchCanceled(c.Cancel) {
				return doc, repair.ErrCanceled
			}
			for _, row := range b.Rows {
				if err := accum.Append(row); err != nil {
					return doc, err
				}
			}
			start := time.Now()
			if _, err := repair.GreedyM(accum, set, cfg, repair.Options{
				Parallel: workers, Cancel: c.Cancel,
			}); err != nil {
				return doc, err
			}
			ms := float64(time.Since(start).Microseconds()) / 1000
			fs.AvgBatchMs += ms
			if ms > fs.MaxBatchMs {
				fs.MaxBatchMs = ms
			}
		}
		m1, b1 = allocSnap()
		fs.AvgBatchMs /= float64(len(stream))
		fs.AllocsPerOp = float64(m1-m0) / float64(len(stream))
		fs.BytesPerOp = float64(b1-b0) / float64(len(stream))
		doc.Entries = append(doc.Entries, fs)
		if inc.AvgBatchMs > 0 {
			doc.Ratios[fmt.Sprintf("fromscratch-vs-incremental-n%d", size)] = fs.AvgBatchMs / inc.AvgBatchMs
		}
	}
	lo, hi := sizes[0], sizes[len(sizes)-1]
	if incAvg[lo] > 0 && incAvg[hi] > 0 {
		doc.Ratios[fmt.Sprintf("incremental-n%d-vs-n%d", hi, lo)] = incAvg[hi] / incAvg[lo]
	}
	if spotAvg[lo] > 0 && spotAvg[hi] > 0 {
		doc.Ratios[fmt.Sprintf("spot-n%d-vs-n%d", hi, lo)] = spotAvg[hi] / spotAvg[lo]
	}
	return doc, nil
}

// relationsEqual reports cell-for-cell equality of two aligned relations.
func relationsEqual(a, b *dataset.Relation) bool {
	if a.Len() != b.Len() {
		return false
	}
	for i := range a.Tuples {
		for j := range a.Tuples[i] {
			if a.Tuples[i][j] != b.Tuples[i][j] {
				return false
			}
		}
	}
	return true
}

// PrintIncrBench renders the document as the text table the incrbench
// experiment emits.
func PrintIncrBench(w io.Writer, doc *IncrBenchDoc) {
	fmt.Fprintf(w, "## Incremental ingest bench — %s (N=%d, FDs=%d, GOMAXPROCS=%d, equivalent=%v)\n",
		doc.Workload, doc.N, doc.FDs, doc.GOMAXPROCS, doc.Equivalent)
	fmt.Fprintf(w, "%-24s %8s %10s %12s %12s %12s %12s %10s %12s\n",
		"config", "batches", "batchRows", "avg ms", "max ms", "allocs/op", "B/op", "shards", "maxTouched")
	for _, e := range doc.Entries {
		fmt.Fprintf(w, "%-24s %8d %10d %12.2f %12.2f %12.0f %12.0f %10d %12d\n",
			e.Name, e.Batches, e.BatchRows, e.AvgBatchMs, e.MaxBatchMs, e.AllocsPerOp, e.BytesPerOp, e.Shards, e.MaxTouchedShardRows)
	}
	keys := make([]string, 0, len(doc.Ratios))
	for k := range doc.Ratios {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		fmt.Fprintf(w, "ratio %-38s %6.2fx\n", k, doc.Ratios[k])
	}
	fmt.Fprintln(w)
}
