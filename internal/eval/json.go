package eval

import (
	"encoding/json"
	"io"
)

// jsonPoint is the stable wire form of a Point.
type jsonPoint struct {
	X         float64 `json:"x"`
	Precision float64 `json:"precision"`
	Recall    float64 `json:"recall"`
	F1        float64 `json:"f1"`
	Millis    float64 `json:"millis"`
	Repaired  int     `json:"repaired"`
	Correct   float64 `json:"correct"`
	Errors    int     `json:"errors"`
	Err       string  `json:"error,omitempty"`
}

// jsonSeries is the stable wire form of a Series.
type jsonSeries struct {
	Name   string      `json:"name"`
	Points []jsonPoint `json:"points"`
}

// jsonExperiment wraps one experiment's series with its identity.
type jsonExperiment struct {
	Title  string       `json:"title"`
	XLabel string       `json:"xlabel"`
	Series []jsonSeries `json:"series"`
}

// WriteJSON emits one experiment's sweep as a JSON document, the
// plot-ready alternative to the text tables.
func WriteJSON(w io.Writer, title, xlabel string, series []Series) error {
	doc := jsonExperiment{Title: title, XLabel: xlabel}
	for _, s := range series {
		js := jsonSeries{Name: s.Name}
		for _, p := range s.Points {
			js.Points = append(js.Points, jsonPoint{
				X:         p.X,
				Precision: p.Quality.Precision,
				Recall:    p.Quality.Recall,
				F1:        p.Quality.F1,
				Millis:    p.Millis,
				Repaired:  p.Quality.Repaired,
				Correct:   p.Quality.Correct,
				Errors:    p.Quality.Errors,
				Err:       p.Err,
			})
		}
		doc.Series = append(doc.Series, js)
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(doc)
}
