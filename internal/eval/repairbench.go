package eval

import (
	"errors"
	"fmt"
	"io"
	"runtime"
	"sort"
	"time"

	"ftrepair/internal/obs"
	"ftrepair/internal/repair"
	"ftrepair/internal/vgraph"
)

// RepairBenchConfig selects the repair-phase benchmark instance.
type RepairBenchConfig struct {
	// Workload is "hosp" or "tax"; N the tuple count of the largest greedy
	// instance (growth is also timed at N/4 and N/2 for scaling).
	Workload string
	N        int
	Seed     int64
	// MinTime is the minimum measured wall-clock per entry; each entry
	// repeats its operation until it elapses. Defaults to 200ms.
	MinTime time.Duration
	Cancel  <-chan struct{}
}

// RepairBenchEntry is one measured repair-phase configuration.
type RepairBenchEntry struct {
	Name        string  `json:"name"`
	Mode        string  `json:"mode"` // greedy-naive, greedy-heap, exact, plan
	N           int     `json:"n,omitempty"`
	Workers     int     `json:"workers,omitempty"`
	Iters       int     `json:"iters"`
	NsPerOp     float64 `json:"nsPerOp"`
	AllocsPerOp float64 `json:"allocsPerOp"`
	BytesPerOp  float64 `json:"bytesPerOp"`
	// Greedy growth: instance shape and the grown set size.
	Vertices int `json:"vertices,omitempty"`
	Edges    int `json:"edges,omitempty"`
	SetSize  int `json:"setSize,omitempty"`
	// ExactM: enumerated combinations per run and throughput.
	Combos       int     `json:"combos,omitempty"`
	CombosPerSec float64 `json:"combosPerSec,omitempty"`
	// Plan evaluation: repairing tuple groups per run and throughput.
	Groups       int     `json:"groups,omitempty"`
	GroupsPerSec float64 `json:"groupsPerSec,omitempty"`
}

// RepairBenchDoc is the BENCH_repair.json payload: greedy-growth scaling
// (naive rescan vs indexed heap), branch-and-bound combination throughput
// vs workers, and parallel plan-evaluation throughput, plus derived
// speedup ratios.
type RepairBenchDoc struct {
	Workload   string `json:"workload"`
	N          int    `json:"n"`
	GOMAXPROCS int    `json:"gomaxprocs"`
	// Meta records the run environment (go version, commit, dataset) so a
	// checked-in BENCH_*.json is self-describing.
	Meta    obs.RunMeta        `json:"meta"`
	Entries []RepairBenchEntry `json:"entries"`
	// Speedups are ns/op ratios: "greedy-heap-n<size>" (naive → heap at each
	// greedy size), "exact-workers" and "plan-workers" (1 → GOMAXPROCS
	// workers; present only on multicore hosts).
	Speedups map[string]float64 `json:"speedups"`
}

// RepairBench times the repair-phase hot paths on generated HOSP/Tax
// instances: Algorithm-2 greedy growth at three sizes on both the naive
// full-rescan reference and the indexed-heap path, exact branch-and-bound
// over MIS combinations at several worker counts, and multi-FD plan
// evaluation (target-tree build + nearest searches) at several worker
// counts.
func RepairBench(c RepairBenchConfig) (*RepairBenchDoc, error) {
	if c.MinTime <= 0 {
		c.MinTime = 200 * time.Millisecond
	}
	doc := &RepairBenchDoc{
		Workload:   c.Workload,
		N:          c.N,
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		Meta:       obs.CollectMeta(c.Workload),
		Speedups:   make(map[string]float64),
	}

	// Greedy growth N-scaling. Single-FD instances isolate the growth loop;
	// the graph is built once per size and reused, so each iteration times
	// growth alone.
	sizes := []int{c.N / 4, c.N / 2, c.N}
	for i, size := range sizes {
		if size < 50 || (i > 0 && size == sizes[i-1]) {
			continue
		}
		// ErrorRate 0.1 (vs the pipeline default 0.04) doubles the violation
		// graph: growth over dense graphs is the regime the heap exists for,
		// and the naive rescan's cost there is what Fig. 9/10-scale runs pay.
		inst, err := Prepare(Setup{Workload: c.Workload, N: size, FDs: 1, ErrorRate: 0.1, Seed: c.Seed})
		if err != nil {
			return nil, err
		}
		f, tau := inst.Set.FDs[0], inst.Set.Tau[0]
		g := vgraph.Build(inst.Dirty, f, inst.Cfg, tau,
			vgraph.Options{Workers: doc.GOMAXPROCS, Cancel: c.Cancel})
		var perMode [2]float64
		for mi, naive := range []bool{true, false} {
			if benchCanceled(c.Cancel) {
				return doc, repair.ErrCanceled
			}
			// One untimed warm-up run primes the grower/scratch pools and the
			// reused result buffer, so the heap entry's allocs/op reports the
			// steady state the pools exist for (the naive reference allocates
			// fresh state per run by design).
			set := repair.GrowGreedyInto(g, naive, nil)
			iters := 0
			m0, b0 := allocSnap()
			start := time.Now()
			for time.Since(start) < c.MinTime {
				if benchCanceled(c.Cancel) {
					return doc, repair.ErrCanceled
				}
				set = repair.GrowGreedyInto(g, naive, set)
				iters++
			}
			elapsed := time.Since(start)
			m1, b1 := allocSnap()
			mode := "greedy-heap"
			if naive {
				mode = "greedy-naive"
			}
			e := RepairBenchEntry{
				Name:        fmt.Sprintf("%s/n%d", mode, size),
				Mode:        mode,
				N:           size,
				Iters:       iters,
				NsPerOp:     float64(elapsed.Nanoseconds()) / float64(iters),
				AllocsPerOp: float64(m1-m0) / float64(iters),
				BytesPerOp:  float64(b1-b0) / float64(iters),
				Vertices:    len(g.Vertices),
				Edges:       g.NumEdges(),
				SetSize:     len(set),
			}
			doc.Entries = append(doc.Entries, e)
			perMode[mi] = e.NsPerOp
		}
		if perMode[1] > 0 {
			doc.Speedups[fmt.Sprintf("greedy-heap-n%d", size)] = perMode[0] / perMode[1]
		}
	}

	// Exact branch-and-bound combination throughput. The instance is fixed
	// small (the combination budget, not N, bounds exact repair). MIS
	// family sizes vary wildly across workloads, so the first rung of a
	// shrinking ladder whose combination count fits the budget is used —
	// each rung is probed with one untimed run. On HOSP the first rung
	// enumerates ~18k combinations (~1s per run); tiny scales start lower
	// (shape over stable timings, like the experiment runner's MinTime
	// cut).
	ladder := []Setup{
		{Workload: c.Workload, N: 120, FDs: 4, ErrorRate: 0.03, Seed: c.Seed},
		{Workload: c.Workload, N: 120, FDs: 3, ErrorRate: 0.05, Seed: c.Seed},
		{Workload: c.Workload, N: 120, FDs: 3, ErrorRate: 0.03, Seed: c.Seed},
		{Workload: c.Workload, N: 120, FDs: 2, ErrorRate: 0.05, Seed: c.Seed},
		{Workload: c.Workload, N: 100, FDs: 2, ErrorRate: 0.03, Seed: c.Seed},
	}
	if c.N < 1000 {
		ladder = ladder[1:]
	}
	var exactInst *Instance
	for _, s := range ladder {
		inst, err := Prepare(s)
		if err != nil {
			return nil, err
		}
		if benchCanceled(c.Cancel) {
			return doc, repair.ErrCanceled
		}
		_, err = repair.ExactM(inst.Dirty, inst.Set, inst.Cfg, repair.Options{Cancel: c.Cancel})
		if errors.Is(err, repair.ErrTooManyMIS) {
			continue
		}
		if err != nil {
			return doc, err
		}
		exactInst = inst
		break
	}
	// exactInst == nil means every rung overflowed: leave the exact entries
	// out rather than fail the greedy/plan measurements.
	exactNs := make(map[int]float64)
	if exactInst != nil {
		for _, workers := range []int{1, 2, doc.GOMAXPROCS} {
			if _, done := exactNs[workers]; done {
				continue
			}
			var res *repair.Result
			var err error
			iters := 0
			m0, b0 := allocSnap()
			start := time.Now()
			for time.Since(start) < c.MinTime {
				if benchCanceled(c.Cancel) {
					return doc, repair.ErrCanceled
				}
				res, err = repair.ExactM(exactInst.Dirty, exactInst.Set, exactInst.Cfg,
					repair.Options{Parallel: workers, Cancel: c.Cancel})
				if err != nil {
					return doc, err
				}
				iters++
			}
			elapsed := time.Since(start)
			m1, b1 := allocSnap()
			e := RepairBenchEntry{
				Name:        fmt.Sprintf("exact/w%d", workers),
				Mode:        "exact",
				N:           exactInst.Dirty.Len(),
				Workers:     workers,
				Iters:       iters,
				NsPerOp:     float64(elapsed.Nanoseconds()) / float64(iters),
				AllocsPerOp: float64(m1-m0) / float64(iters),
				BytesPerOp:  float64(b1-b0) / float64(iters),
				Combos:      res.Stats["combinations"],
			}
			if e.NsPerOp > 0 {
				e.CombosPerSec = float64(e.Combos) / (e.NsPerOp / 1e9)
			}
			doc.Entries = append(doc.Entries, e)
			exactNs[workers] = e.NsPerOp
		}
		if par := exactNs[doc.GOMAXPROCS]; par > 0 && doc.GOMAXPROCS > 1 {
			doc.Speedups["exact-workers"] = exactNs[1] / par
		}
	}

	// Plan-evaluation throughput over the full FD set at N: one target-tree
	// build plus a nearest-target search per repairing tuple group.
	full, err := Prepare(Setup{Workload: c.Workload, N: c.N, ErrorRate: 0.04, Seed: c.Seed})
	if err != nil {
		return nil, err
	}
	pb, err := repair.NewPlanBench(full.Dirty, full.Set, full.Cfg, false)
	if err != nil {
		return nil, err
	}
	planNs := make(map[int]float64)
	for _, workers := range []int{1, doc.GOMAXPROCS} {
		if _, done := planNs[workers]; done {
			continue
		}
		iters := 0
		m0, b0 := allocSnap()
		start := time.Now()
		for time.Since(start) < c.MinTime {
			if benchCanceled(c.Cancel) {
				return doc, repair.ErrCanceled
			}
			if _, _, err := pb.Run(workers); err != nil {
				return doc, err
			}
			iters++
		}
		elapsed := time.Since(start)
		m1, b1 := allocSnap()
		e := RepairBenchEntry{
			Name:        fmt.Sprintf("plan/%dfds/w%d", pb.FDs, workers),
			Mode:        "plan",
			N:           c.N,
			Workers:     workers,
			Iters:       iters,
			NsPerOp:     float64(elapsed.Nanoseconds()) / float64(iters),
			AllocsPerOp: float64(m1-m0) / float64(iters),
			BytesPerOp:  float64(b1-b0) / float64(iters),
			Groups:      pb.Groups,
		}
		if e.NsPerOp > 0 {
			e.GroupsPerSec = float64(pb.Groups) / (e.NsPerOp / 1e9)
		}
		doc.Entries = append(doc.Entries, e)
		planNs[workers] = e.NsPerOp
	}
	if par := planNs[doc.GOMAXPROCS]; par > 0 && doc.GOMAXPROCS > 1 {
		doc.Speedups["plan-workers"] = planNs[1] / par
	}
	return doc, nil
}

// PrintRepairBench renders the document as the text table the repairbench
// experiment emits.
func PrintRepairBench(w io.Writer, doc *RepairBenchDoc) {
	fmt.Fprintf(w, "## Repair phase bench — %s (N=%d, GOMAXPROCS=%d)\n",
		doc.Workload, doc.N, doc.GOMAXPROCS)
	fmt.Fprintf(w, "%-24s %8s %14s %12s %12s %10s %12s %12s\n",
		"config", "iters", "ns/op", "allocs/op", "B/op", "set/combos", "combos/s", "groups/s")
	for _, e := range doc.Entries {
		size := e.SetSize
		if e.Mode == "exact" {
			size = e.Combos
		} else if e.Mode == "plan" {
			size = e.Groups
		}
		fmt.Fprintf(w, "%-24s %8d %14.0f %12.0f %12.0f %10d %12.0f %12.0f\n",
			e.Name, e.Iters, e.NsPerOp, e.AllocsPerOp, e.BytesPerOp, size, e.CombosPerSec, e.GroupsPerSec)
	}
	keys := make([]string, 0, len(doc.Speedups))
	for k := range doc.Speedups {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		fmt.Fprintf(w, "speedup %-20s %6.2fx\n", k, doc.Speedups[k])
	}
	fmt.Fprintln(w)
}
