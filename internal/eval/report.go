package eval

import (
	"fmt"
	"io"
	"sort"
	"text/tabwriter"

	"ftrepair/internal/fd"
)

// Point is one measurement in a sweep: the swept parameter value, the
// quality achieved and the elapsed milliseconds.
type Point struct {
	X       float64
	Quality Quality
	Millis  float64
	// Err records a skipped point (e.g. the exact algorithm exceeding its
	// budget), printed as "-".
	Err string
}

// Series is one algorithm's measurements across a sweep.
type Series struct {
	Name   string
	Points []Point
}

// PrintQuality renders precision/recall tables in the shape of the paper's
// effectiveness figures: one row per swept value, one column pair per
// algorithm.
func PrintQuality(w io.Writer, title, xlabel string, series []Series) {
	fmt.Fprintf(w, "## %s\n", title)
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintf(tw, "%s", xlabel)
	for _, s := range series {
		fmt.Fprintf(tw, "\t%s-P\t%s-R", s.Name, s.Name)
	}
	fmt.Fprintln(tw)
	for _, x := range xValues(series) {
		fmt.Fprintf(tw, "%g", x)
		for _, s := range series {
			p, ok := pointAt(s, x)
			if !ok || p.Err != "" {
				fmt.Fprint(tw, "\t-\t-")
				continue
			}
			fmt.Fprintf(tw, "\t%.3f\t%.3f", p.Quality.Precision, p.Quality.Recall)
		}
		fmt.Fprintln(tw)
	}
	tw.Flush()
	fmt.Fprintln(w)
}

// PrintTime renders runtime tables in the shape of the paper's efficiency
// figures.
func PrintTime(w io.Writer, title, xlabel string, series []Series) {
	fmt.Fprintf(w, "## %s\n", title)
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintf(tw, "%s", xlabel)
	for _, s := range series {
		fmt.Fprintf(tw, "\t%s(ms)", s.Name)
	}
	fmt.Fprintln(tw)
	for _, x := range xValues(series) {
		fmt.Fprintf(tw, "%g", x)
		for _, s := range series {
			p, ok := pointAt(s, x)
			if !ok || p.Err != "" {
				fmt.Fprint(tw, "\t-")
				continue
			}
			fmt.Fprintf(tw, "\t%.1f", p.Millis)
		}
		fmt.Fprintln(tw)
	}
	tw.Flush()
	fmt.Fprintln(w)
}

func xValues(series []Series) []float64 {
	seen := map[float64]bool{}
	var xs []float64
	for _, s := range series {
		for _, p := range s.Points {
			if !seen[p.X] {
				seen[p.X] = true
				xs = append(xs, p.X)
			}
		}
	}
	sort.Float64s(xs)
	return xs
}

func pointAt(s Series, x float64) (Point, bool) {
	for _, p := range s.Points {
		if fd.FloatEq(p.X, x) {
			return p, true
		}
	}
	return Point{}, false
}
