package eval

import (
	"fmt"
	"time"

	"ftrepair/internal/baselines"
	"ftrepair/internal/dataset"
	"ftrepair/internal/dc"
	"ftrepair/internal/repair"
)

// AlgoSpec names a repair procedure for sweeps: ours or a baseline.
type AlgoSpec struct {
	Name string
	// Partial marks algorithms whose repairs may contain variables scored
	// with the paper's Metric 0.5 (Llunatic).
	Partial bool
	// Run repairs the instance's dirty relation.
	Run func(inst *Instance) (*dataset.Relation, error)
}

// OurAlgos returns the paper's multi-FD algorithms. ExactM is included only
// when exact is true (it is exponential; sweeps cap it via MaxMISPerFD and
// report "-" when the cap is hit). Target-tree usage follows opts.
func OurAlgos(exact bool, opts repair.Options) []AlgoSpec {
	algos := []AlgoSpec{
		{Name: "GreedyM", Run: func(inst *Instance) (*dataset.Relation, error) {
			res, err := repair.GreedyM(inst.Dirty, inst.Set, inst.Cfg, opts)
			if err != nil {
				return nil, err
			}
			return res.Repaired, nil
		}},
		{Name: "ApproM", Run: func(inst *Instance) (*dataset.Relation, error) {
			res, err := repair.ApproM(inst.Dirty, inst.Set, inst.Cfg, opts)
			if err != nil {
				return nil, err
			}
			return res.Repaired, nil
		}},
	}
	if exact {
		exactOpts := opts
		if exactOpts.MaxMISPerFD == 0 {
			exactOpts.MaxMISPerFD = 4096
		}
		algos = append([]AlgoSpec{{Name: "ExactM", Run: func(inst *Instance) (*dataset.Relation, error) {
			res, err := repair.ExactM(inst.Dirty, inst.Set, inst.Cfg, exactOpts)
			if err != nil {
				return nil, err
			}
			return res.Repaired, nil
		}}}, algos...)
	}
	return algos
}

// SingleAlgos returns the paper's single-FD algorithms; they repair the
// first FD of the instance's set, so pair them with Setup.FDs = 1.
func SingleAlgos(exact bool, opts repair.Options) []AlgoSpec {
	algos := []AlgoSpec{
		{Name: "GreedyS", Run: func(inst *Instance) (*dataset.Relation, error) {
			res, err := repair.GreedyS(inst.Dirty, inst.Set.FDs[0], inst.Cfg, inst.Set.Tau[0], opts)
			if err != nil {
				return nil, err
			}
			return res.Repaired, nil
		}},
	}
	if exact {
		exactOpts := opts
		algos = append([]AlgoSpec{{Name: "ExactS", Run: func(inst *Instance) (*dataset.Relation, error) {
			res, err := repair.ExactS(inst.Dirty, inst.Set.FDs[0], inst.Cfg, inst.Set.Tau[0], exactOpts)
			if err != nil {
				return nil, err
			}
			return res.Repaired, nil
		}}}, algos...)
	}
	return algos
}

// BaselineAlgos returns the §6.4 comparators plus a holistic
// denial-constraint repair (Chu et al., the DC line of related work),
// running on the FD set expressed as DCs.
func BaselineAlgos() []AlgoSpec {
	return []AlgoSpec{
		{Name: "NADEEF", Run: func(inst *Instance) (*dataset.Relation, error) {
			return baselines.NADEEF(inst.Dirty, inst.Set, nil), nil
		}},
		{Name: "URM", Run: func(inst *Instance) (*dataset.Relation, error) {
			return baselines.URM(inst.Dirty, inst.Set, baselines.URMOptions{}, nil), nil
		}},
		{Name: "Llunatic", Partial: true, Run: func(inst *Instance) (*dataset.Relation, error) {
			return baselines.Llunatic(inst.Dirty, inst.Set, nil), nil
		}},
		{Name: "Holistic", Run: func(inst *Instance) (*dataset.Relation, error) {
			var dcs []*dc.DC
			for _, f := range inst.Set.FDs {
				dcs = append(dcs, dc.FromFDAll(f)...)
			}
			return dc.Repair(inst.Dirty, dcs, 0), nil
		}},
	}
}

// Measure runs one algorithm on one instance and evaluates it.
func Measure(inst *Instance, spec AlgoSpec) Point {
	start := time.Now()
	repaired, err := spec.Run(inst)
	elapsed := time.Since(start)
	if err != nil {
		return Point{Err: err.Error()}
	}
	opts := Options{}
	if spec.Partial {
		opts.PartialMarker = baselines.VariableMarker
	}
	q, err := Evaluate(inst.Clean, inst.Dirty, repaired, opts)
	if err != nil {
		return Point{Err: err.Error()}
	}
	return Point{Quality: q, Millis: float64(elapsed.Microseconds()) / 1000}
}

// Sweep runs every algorithm at every swept value. The setup function maps
// a swept value to an instance Setup; instances are prepared once per value
// and shared across algorithms.
func Sweep(xs []float64, setup func(x float64) Setup, algos []AlgoSpec) ([]Series, error) {
	series := make([]Series, len(algos))
	for i, a := range algos {
		series[i].Name = a.Name
	}
	for _, x := range xs {
		inst, err := Prepare(setup(x))
		if err != nil {
			return nil, fmt.Errorf("eval: preparing x=%g: %w", x, err)
		}
		for i, a := range algos {
			p := Measure(inst, a)
			p.X = x
			series[i].Points = append(series[i].Points, p)
		}
	}
	return series, nil
}
