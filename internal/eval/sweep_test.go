package eval_test

import (
	"errors"
	"testing"

	"ftrepair/internal/dataset"
	"ftrepair/internal/eval"
	"ftrepair/internal/gen"
	"ftrepair/internal/repair"
)

func TestOurAlgosShape(t *testing.T) {
	specs := eval.OurAlgos(false, repair.Options{})
	if len(specs) != 2 || specs[0].Name != "GreedyM" || specs[1].Name != "ApproM" {
		t.Fatalf("OurAlgos = %v", names(specs))
	}
	withExact := eval.OurAlgos(true, repair.Options{})
	if len(withExact) != 3 || withExact[0].Name != "ExactM" {
		t.Fatalf("OurAlgos(exact) = %v", names(withExact))
	}
	single := eval.SingleAlgos(true, repair.Options{})
	if len(single) != 2 || single[0].Name != "ExactS" || single[1].Name != "GreedyS" {
		t.Fatalf("SingleAlgos = %v", names(single))
	}
	base := eval.BaselineAlgos()
	if len(base) != 4 || base[3].Name != "Holistic" {
		t.Fatalf("BaselineAlgos = %v", names(base))
	}
	if !base[2].Partial {
		t.Fatal("Llunatic not marked Partial")
	}
}

func names(specs []eval.AlgoSpec) []string {
	out := make([]string, len(specs))
	for i, s := range specs {
		out[i] = s.Name
	}
	return out
}

func TestMeasureRunsEverySpec(t *testing.T) {
	inst, err := eval.Prepare(eval.Setup{Workload: "tax", N: 150, ErrorRate: 0.05, Seed: 71})
	if err != nil {
		t.Fatal(err)
	}
	specs := append(eval.OurAlgos(false, repair.Options{}), eval.BaselineAlgos()...)
	for _, spec := range specs {
		p := eval.Measure(inst, spec)
		if p.Err != "" {
			t.Fatalf("%s: %s", spec.Name, p.Err)
		}
		if p.Quality.Precision < 0 || p.Quality.Precision > 1 || p.Millis < 0 {
			t.Fatalf("%s: %+v", spec.Name, p)
		}
	}
}

func TestMeasureReportsErrors(t *testing.T) {
	inst, err := eval.Prepare(eval.Setup{Workload: "tax", N: 50, ErrorRate: 0.05, Seed: 72})
	if err != nil {
		t.Fatal(err)
	}
	failing := eval.AlgoSpec{Name: "boom", Run: func(*eval.Instance) (*dataset.Relation, error) {
		return nil, errors.New("synthetic failure")
	}}
	p := eval.Measure(inst, failing)
	if p.Err != "synthetic failure" {
		t.Fatalf("Err = %q", p.Err)
	}
}

func TestSweepAlignsSeries(t *testing.T) {
	xs := []float64{100, 200}
	series, err := eval.Sweep(xs, func(x float64) eval.Setup {
		return eval.Setup{Workload: "tax", N: int(x), ErrorRate: 0.05, Seed: 73}
	}, eval.OurAlgos(false, repair.Options{}))
	if err != nil {
		t.Fatal(err)
	}
	if len(series) != 2 {
		t.Fatalf("series = %d", len(series))
	}
	for _, s := range series {
		if len(s.Points) != 2 || s.Points[0].X != 100 || s.Points[1].X != 200 {
			t.Fatalf("%s points = %+v", s.Name, s.Points)
		}
	}
	// Bad setup propagates.
	_, err = eval.Sweep([]float64{1}, func(float64) eval.Setup {
		return eval.Setup{Workload: "nope", N: 1}
	}, eval.OurAlgos(false, repair.Options{}))
	if err == nil {
		t.Fatal("bad setup accepted")
	}
}

func TestWeightOverrides(t *testing.T) {
	inst, err := eval.Prepare(eval.Setup{Workload: "tax", N: 60, ErrorRate: 0.05, Seed: 74, WL: 1, WR: 0, Tau: 0.2})
	if err != nil {
		t.Fatal(err)
	}
	if inst.Cfg.WL != 1 || inst.Cfg.WR != 0 || inst.Set.Tau[0] != 0.2 {
		t.Fatalf("override not applied: %v/%v tau %v", inst.Cfg.WL, inst.Cfg.WR, inst.Set.Tau[0])
	}
}

func TestRecallByKind(t *testing.T) {
	inst, err := eval.Prepare(eval.Setup{Workload: "hosp", N: 400, ErrorRate: 0.05, Seed: 75})
	if err != nil {
		t.Fatal(err)
	}
	res, err := repair.GreedyM(inst.Dirty, inst.Set, inst.Cfg, repair.Options{})
	if err != nil {
		t.Fatal(err)
	}
	byKind := inst.RecallByKind(res.Repaired)
	if len(byKind) != 3 {
		t.Fatalf("kinds = %d", len(byKind))
	}
	total := 0
	for k, q := range byKind {
		if q.Errors == 0 || q.Recall < 0 || q.Recall > 1 {
			t.Fatalf("kind %v: %+v", k, q)
		}
		total += q.Errors
	}
	if total != len(inst.Injections) {
		t.Fatalf("kind totals %d != injections %d", total, len(inst.Injections))
	}
	// Typos are the easiest kind for the FT model.
	if byKind[gen.Typo].Recall < 0.5 {
		t.Fatalf("typo recall %.3f suspiciously low", byKind[gen.Typo].Recall)
	}
}

func TestDetectionQuality(t *testing.T) {
	inst, err := eval.Prepare(eval.Setup{Workload: "hosp", N: 500, ErrorRate: 0.04, Seed: 76})
	if err != nil {
		t.Fatal(err)
	}
	ft := eval.DetectionQuality(inst, repair.Detect(inst.Dirty, inst.Set, inst.Cfg, repair.Options{}))
	classic := eval.DetectionQuality(inst, eval.ClassicDetect(inst))
	if ft.Recall <= classic.Recall {
		t.Fatalf("FT recall %.3f not above classic %.3f", ft.Recall, classic.Recall)
	}
	if ft.Recall < 0.9 {
		t.Fatalf("FT detection recall %.3f too low", ft.Recall)
	}
	for _, q := range []eval.Quality{ft, classic} {
		if q.Precision < 0 || q.Precision > 1 || q.Recall < 0 || q.Recall > 1 {
			t.Fatalf("out of range: %+v", q)
		}
	}
	// No violations flags nothing: precision 1, recall 0 (if errors exist).
	empty := eval.DetectionQuality(inst, nil)
	if empty.Precision != 1 || empty.Recall != 0 {
		t.Fatalf("empty detection: %+v", empty)
	}
}
