// Package experiments regenerates every table and figure of the paper's
// evaluation (§6) plus the ablations DESIGN.md calls out. The repairbench
// command is a thin wrapper; keeping the experiment code here makes each
// experiment unit-testable.
package experiments

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"strings"
	"time"

	"ftrepair/internal/eval"
	"ftrepair/internal/fd"
	"ftrepair/internal/obs"
	"ftrepair/internal/repair"
	"ftrepair/internal/vgraph"
)

type Config struct {
	Scale     float64
	Seed      int64
	Workloads []string
	Exact     bool
	JSON      bool
	// Cancel stops in-flight repairs early (e.g. on SIGINT); measurements
	// taken after it fires report "repair: canceled" instead of numbers.
	Cancel <-chan struct{}
	// BenchOut, when non-empty, makes the graphbench and repairbench
	// experiments also write their measurements as JSON to this path
	// (e.g. BENCH_vgraph.json, BENCH_repair.json).
	BenchOut string
	// Trace, when non-nil, collects phase spans from every repair the
	// experiments run (observational only).
	Trace *obs.Trace
}

// opts is the baseline repair.Options every experiment starts from.
func (c Config) opts() repair.Options {
	return repair.Options{Cancel: c.Cancel, Trace: c.Trace}
}

// canceled reports whether the cancel channel has fired; a nil channel
// never cancels. Ablation sweeps poll it between measurements so a SIGINT
// stops the whole experiment, not just the repair in flight.
func canceled(ch <-chan struct{}) bool {
	select {
	case <-ch:
		return true
	default:
		return false
	}
}

// paperN returns the paper's #-tuples sweep for a workload, scaled.
func (c Config) paperN(workload string) []float64 {
	var xs []int
	if workload == "hosp" {
		xs = []int{4000, 8000, 12000, 16000, 20000}
	} else {
		xs = []int{2000, 4000, 6000, 8000, 10000}
	}
	out := make([]float64, len(xs))
	for i, x := range xs {
		n := int(float64(x) * c.Scale)
		if n < 200 {
			n = 200
		}
		out[i] = float64(n)
	}
	return out
}

// defaultN is the paper's fixed size for non-N sweeps (HOSP 8k, Tax 4k).
func (c Config) defaultN(workload string) int {
	base := 8000
	if workload == "tax" {
		base = 4000
	}
	n := int(float64(base) * c.Scale)
	if n < 200 {
		n = 200
	}
	return n
}

type experiment struct {
	name string
	desc string
	run  func(c Config, w io.Writer) error
}

func list() []experiment {
	return []experiment{
		{"fig5", "precision/recall varying #-tuples", fig5},
		{"fig6", "precision/recall varying #-FDs", fig6},
		{"fig7", "precision/recall varying error rate", fig7},
		{"fig8", "runtime varying #-tuples (tree vs no tree)", fig8},
		{"fig9", "runtime varying #-FDs (tree vs no tree)", fig9},
		{"fig10", "runtime varying error rate (tree vs no tree)", fig10},
		{"table3", "algorithm comparison at the default configuration", table3},
		{"fig11", "quality vs baselines varying #-tuples", fig11},
		{"fig12", "quality vs baselines varying #-FDs", fig12},
		{"fig13", "quality vs baselines varying error rate", fig13},
		{"fig14", "runtime vs baselines varying #-tuples", fig14},
		{"fig15", "runtime vs baselines varying #-FDs", fig15},
		{"fig16", "runtime vs baselines varying error rate", fig16},
		{"ablation", "design-choice ablations (index, pruning, order, tree)", ablation},
		{"weights", "holistic (w_l,w_r) vs LHS-only (MD-like) vs equal split", weightsAblation},
		{"flavors", "string-distance flavor ablation (Levenshtein/OSA/Jaccard)", flavorAblation},
		{"tau", "FT-threshold sensitivity sweep", tauAblation},
		{"detection", "FT vs classic error localization", detectionAblation},
		{"autotau", "SelectTau heuristic vs fixed threshold", autotauAblation},
		{"graphbench", "construction-phase timings: parallel + memoized graph build", graphbench},
		{"distbench", "distance-kernel timings: bit-parallel vs DP, matcher streams, plane hits", distbench},
		{"repairbench", "repair-phase timings: heap greedy growth, parallel B&B, plan evaluation", repairbench},
		{"incrbench", "incremental-ingest timings: sharded engine per-batch latency vs from-scratch", incrbench},
	}
}

func (c Config) setup(workload string, n, fds int, rate float64) eval.Setup {
	return eval.Setup{Workload: workload, N: n, FDs: fds, ErrorRate: rate, Seed: c.Seed}
}

// qualitySweep prints one quality table per workload for the given sweep.
func qualitySweep(c Config, w io.Writer, title string, xs func(string) []float64, setup func(string, float64) eval.Setup, algos func() []eval.AlgoSpec) error {
	for _, wk := range c.Workloads {
		series, err := eval.Sweep(xs(wk), func(x float64) eval.Setup { return setup(wk, x) }, algos())
		if err != nil {
			return err
		}
		full := fmt.Sprintf("%s — %s", title, strings.ToUpper(wk))
		if c.JSON {
			if err := eval.WriteJSON(w, full, xLabel(title), series); err != nil {
				return err
			}
			continue
		}
		eval.PrintQuality(w, full, xLabel(title), series)
	}
	return nil
}

func timeSweep(c Config, w io.Writer, title string, xs func(string) []float64, setup func(string, float64) eval.Setup, algos func() []eval.AlgoSpec) error {
	for _, wk := range c.Workloads {
		series, err := eval.Sweep(xs(wk), func(x float64) eval.Setup { return setup(wk, x) }, algos())
		if err != nil {
			return err
		}
		full := fmt.Sprintf("%s — %s", title, strings.ToUpper(wk))
		if c.JSON {
			if err := eval.WriteJSON(w, full, xLabel(title), series); err != nil {
				return err
			}
			continue
		}
		eval.PrintTime(w, full, xLabel(title), series)
	}
	return nil
}

func xLabel(title string) string {
	switch {
	case strings.Contains(title, "#-tuples"):
		return "N"
	case strings.Contains(title, "#-FDs"):
		return "|Sigma|"
	default:
		return "e%"
	}
}

func (c Config) ourAlgos() []eval.AlgoSpec {
	return eval.OurAlgos(c.Exact, c.opts())
}

// treeContrast pairs each multi-FD heuristic with its no-tree variant, the
// paper's X vs X-Tree series.
func treeContrast(c Config) []eval.AlgoSpec {
	withTree := eval.OurAlgos(c.Exact, c.opts())
	noTreeOpts := c.opts()
	noTreeOpts.DisableTargetTree = true
	noTree := eval.OurAlgos(c.Exact, noTreeOpts)
	var out []eval.AlgoSpec
	for i := range withTree {
		wt := withTree[i]
		wt.Name += "-Tree"
		out = append(out, wt, noTree[i])
	}
	return out
}

func fig5(c Config, w io.Writer) error {
	// Single-constraint panel.
	if err := qualitySweep(c, w, "Fig 5 single FD: quality varying #-tuples", c.paperN,
		func(wk string, x float64) eval.Setup { return c.setup(wk, int(x), 1, 0.04) },
		func() []eval.AlgoSpec { return eval.SingleAlgos(true, c.opts()) },
	); err != nil {
		return err
	}
	// Multi-constraint panel.
	return qualitySweep(c, w, "Fig 5 multi FD: quality varying #-tuples", c.paperN,
		func(wk string, x float64) eval.Setup { return c.setup(wk, int(x), 0, 0.04) },
		c.ourAlgos,
	)
}

func fdSweep() []float64 { return []float64{1, 3, 5, 7, 9} }

func fig6(c Config, w io.Writer) error {
	return qualitySweep(c, w, "Fig 6: quality varying #-FDs",
		func(string) []float64 { return fdSweep() },
		func(wk string, x float64) eval.Setup { return c.setup(wk, c.defaultN(wk), int(x), 0.04) },
		c.ourAlgos,
	)
}

func rateSweep() []float64 { return []float64{0.02, 0.04, 0.06, 0.08, 0.10} }

func fig7(c Config, w io.Writer) error {
	return qualitySweep(c, w, "Fig 7: quality varying error rate",
		func(string) []float64 { return rateSweep() },
		func(wk string, x float64) eval.Setup { return c.setup(wk, c.defaultN(wk), 0, x) },
		c.ourAlgos,
	)
}

func fig8(c Config, w io.Writer) error {
	return timeSweep(c, w, "Fig 8: runtime varying #-tuples", c.paperN,
		func(wk string, x float64) eval.Setup { return c.setup(wk, int(x), 0, 0.04) },
		func() []eval.AlgoSpec { return treeContrast(c) },
	)
}

func fig9(c Config, w io.Writer) error {
	return timeSweep(c, w, "Fig 9: runtime varying #-FDs",
		func(string) []float64 { return fdSweep() },
		func(wk string, x float64) eval.Setup { return c.setup(wk, c.defaultN(wk), int(x), 0.04) },
		func() []eval.AlgoSpec { return treeContrast(c) },
	)
}

func fig10(c Config, w io.Writer) error {
	return timeSweep(c, w, "Fig 10: runtime varying error rate",
		func(string) []float64 { return rateSweep() },
		func(wk string, x float64) eval.Setup { return c.setup(wk, c.defaultN(wk), 0, x) },
		func() []eval.AlgoSpec { return treeContrast(c) },
	)
}

func withBaselines(ours []eval.AlgoSpec) []eval.AlgoSpec {
	return append(ours, eval.BaselineAlgos()...)
}

func table3(c Config, w io.Writer) error {
	for _, wk := range c.Workloads {
		inst, err := eval.Prepare(c.setup(wk, c.defaultN(wk), 0, 0.04))
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "## Table 3 — %s (N=%d, 9 FDs, e%%=4)\n", strings.ToUpper(wk), c.defaultN(wk))
		fmt.Fprintf(w, "%-10s %10s %10s %12s\n", "algorithm", "precision", "recall", "time(ms)")
		for _, spec := range withBaselines(c.ourAlgos()) {
			p := eval.Measure(inst, spec)
			if p.Err != "" {
				fmt.Fprintf(w, "%-10s %10s %10s %12s  (%s)\n", spec.Name, "-", "-", "-", p.Err)
				continue
			}
			fmt.Fprintf(w, "%-10s %10.3f %10.3f %12.1f\n", spec.Name, p.Quality.Precision, p.Quality.Recall, p.Millis)
		}
		fmt.Fprintln(w)
	}
	return nil
}

func fig11(c Config, w io.Writer) error {
	return qualitySweep(c, w, "Fig 11: quality vs baselines varying #-tuples", c.paperN,
		func(wk string, x float64) eval.Setup { return c.setup(wk, int(x), 0, 0.04) },
		func() []eval.AlgoSpec { return withBaselines(c.ourAlgos()) },
	)
}

func fig12(c Config, w io.Writer) error {
	return qualitySweep(c, w, "Fig 12: quality vs baselines varying #-FDs",
		func(string) []float64 { return fdSweep() },
		func(wk string, x float64) eval.Setup { return c.setup(wk, c.defaultN(wk), int(x), 0.04) },
		func() []eval.AlgoSpec { return withBaselines(c.ourAlgos()) },
	)
}

func fig13(c Config, w io.Writer) error {
	return qualitySweep(c, w, "Fig 13: quality vs baselines varying error rate",
		func(string) []float64 { return rateSweep() },
		func(wk string, x float64) eval.Setup { return c.setup(wk, c.defaultN(wk), 0, x) },
		func() []eval.AlgoSpec { return withBaselines(c.ourAlgos()) },
	)
}

func fig14(c Config, w io.Writer) error {
	return timeSweep(c, w, "Fig 14: runtime vs baselines varying #-tuples", c.paperN,
		func(wk string, x float64) eval.Setup { return c.setup(wk, int(x), 0, 0.04) },
		func() []eval.AlgoSpec { return withBaselines(c.ourAlgos()) },
	)
}

func fig15(c Config, w io.Writer) error {
	return timeSweep(c, w, "Fig 15: runtime vs baselines varying #-FDs",
		func(string) []float64 { return fdSweep() },
		func(wk string, x float64) eval.Setup { return c.setup(wk, c.defaultN(wk), int(x), 0.04) },
		func() []eval.AlgoSpec { return withBaselines(c.ourAlgos()) },
	)
}

func fig16(c Config, w io.Writer) error {
	return timeSweep(c, w, "Fig 16: runtime vs baselines varying error rate",
		func(string) []float64 { return rateSweep() },
		func(wk string, x float64) eval.Setup { return c.setup(wk, c.defaultN(wk), 0, x) },
		func() []eval.AlgoSpec { return withBaselines(c.ourAlgos()) },
	)
}

func ablation(c Config, w io.Writer) error {
	wk := c.Workloads[0]
	n := c.defaultN(wk)
	variants := []eval.AlgoSpec{
		namedGreedyM("GreedyM", c.opts()),
		namedGreedyM("NoIndex", repair.Options{Graph: graphNoIndex(), Cancel: c.Cancel}),
		namedGreedyM("NoTree", repair.Options{DisableTargetTree: true, Cancel: c.Cancel}),
	}
	series, err := eval.Sweep([]float64{float64(n)},
		func(x float64) eval.Setup { return c.setup(wk, int(x), 0, 0.04) }, variants)
	if err != nil {
		return err
	}
	eval.PrintTime(w, fmt.Sprintf("Ablations — %s (GreedyM variants)", strings.ToUpper(wk)), "N", series)
	eval.PrintQuality(w, fmt.Sprintf("Ablations quality — %s", strings.ToUpper(wk)), "N", series)
	return nil
}

func namedGreedyM(name string, opts repair.Options) eval.AlgoSpec {
	specs := eval.OurAlgos(false, opts)
	spec := specs[0] // GreedyM
	spec.Name = name
	return spec
}

// weightsAblation compares the paper's holistic weighting (both sides
// contribute) against an MD-style LHS-only similarity and the equal split,
// supporting the paper's §2.3 argument against metric/differential
// dependencies. Every variant sees the same dirty instance.
func weightsAblation(c Config, w io.Writer) error {
	for _, wk := range c.Workloads {
		if canceled(c.Cancel) {
			return repair.ErrCanceled
		}
		n := c.defaultN(wk)
		variants := []struct {
			name        string
			wl, wr, tau float64
		}{
			{"Holistic(.7/.3)", 0.7, 0.3, 0.3},
			{"Equal(.5/.5)", 0.5, 0.5, 0.5},
			{"LHS-only(1/0)", 1.0, 0.0, 0.2},
		}
		fmt.Fprintf(w, "## Weight-split ablation — %s (N=%d, e%%=4, GreedyM)\n", strings.ToUpper(wk), n)
		fmt.Fprintf(w, "%-16s %10s %10s\n", "variant", "precision", "recall")
		for _, v := range variants {
			inst, err := eval.Prepare(eval.Setup{
				Workload: wk, N: n, ErrorRate: 0.04, Seed: c.Seed,
				WL: v.wl, WR: v.wr, Tau: v.tau,
			})
			if err != nil {
				return err
			}
			p := eval.Measure(inst, eval.OurAlgos(false, c.opts())[0])
			if p.Err != "" {
				fmt.Fprintf(w, "%-16s %10s %10s  (%s)\n", v.name, "-", "-", p.Err)
				continue
			}
			fmt.Fprintf(w, "%-16s %10.3f %10.3f\n", v.name, p.Quality.Precision, p.Quality.Recall)
		}
		fmt.Fprintln(w)
	}
	return nil
}

func graphNoIndex() vgraph.Options {
	return vgraph.Options{DisableIndex: true}
}

// flavorAblation compares string-distance flavors on the same instance:
// Levenshtein (the paper's default), OSA (transpositions at unit cost,
// matching a quarter of the injected typos), and Jaccard over 2-grams.
func flavorAblation(c Config, w io.Writer) error {
	for _, wk := range c.Workloads {
		if canceled(c.Cancel) {
			return repair.ErrCanceled
		}
		n := c.defaultN(wk)
		fmt.Fprintf(w, "## Edit-flavor ablation — %s (N=%d, e%%=4, GreedyM)\n", strings.ToUpper(wk), n)
		fmt.Fprintf(w, "%-14s %10s %10s %12s\n", "flavor", "precision", "recall", "time(ms)")
		for _, fl := range []struct {
			name   string
			flavor fd.EditFlavor
		}{
			{"Levenshtein", fd.EditLevenshtein},
			{"OSA", fd.EditOSA},
			{"Jaccard", fd.EditJaccard},
		} {
			inst, err := eval.Prepare(eval.Setup{Workload: wk, N: n, ErrorRate: 0.04, Seed: c.Seed})
			if err != nil {
				return err
			}
			inst.Cfg.Edit = fl.flavor
			p := eval.Measure(inst, eval.OurAlgos(false, c.opts())[0])
			if p.Err != "" {
				fmt.Fprintf(w, "%-14s %10s %10s %12s  (%s)\n", fl.name, "-", "-", "-", p.Err)
				continue
			}
			fmt.Fprintf(w, "%-14s %10.3f %10.3f %12.1f\n", fl.name, p.Quality.Precision, p.Quality.Recall, p.Millis)
		}
		fmt.Fprintln(w)
	}
	return nil
}

// tauAblation sweeps the FT threshold at fixed weights, exposing the
// sweet spot between missing errors (tau too small) and merging legitimate
// patterns (tau too large).
func tauAblation(c Config, w io.Writer) error {
	for _, wk := range c.Workloads {
		if canceled(c.Cancel) {
			return repair.ErrCanceled
		}
		n := c.defaultN(wk)
		fmt.Fprintf(w, "## Tau sensitivity — %s (N=%d, e%%=4, w=0.7/0.3, GreedyM)\n", strings.ToUpper(wk), n)
		fmt.Fprintf(w, "%-8s %10s %10s %10s\n", "tau", "precision", "recall", "repairs")
		for _, tau := range []float64{0.05, 0.1, 0.2, 0.3, 0.4, 0.5} {
			inst, err := eval.Prepare(eval.Setup{
				Workload: wk, N: n, ErrorRate: 0.04, Seed: c.Seed,
				WL: 0.7, WR: 0.3, Tau: tau,
			})
			if err != nil {
				return err
			}
			p := eval.Measure(inst, eval.OurAlgos(false, c.opts())[0])
			if p.Err != "" {
				fmt.Fprintf(w, "%-8.2f %10s %10s %10s  (%s)\n", tau, "-", "-", "-", p.Err)
				continue
			}
			fmt.Fprintf(w, "%-8.2f %10.3f %10.3f %10d\n", tau, p.Quality.Precision, p.Quality.Recall, p.Quality.Repaired)
		}
		fmt.Fprintln(w)
	}
	return nil
}

// detectionAblation contrasts FT (similarity-based) error localization
// against the classic equality semantics — the paper's central claim that
// the revised semantics detects errors equality cannot see (t8's Boton).
func detectionAblation(c Config, w io.Writer) error {
	for _, wk := range c.Workloads {
		if canceled(c.Cancel) {
			return repair.ErrCanceled
		}
		n := c.defaultN(wk)
		inst, err := eval.Prepare(eval.Setup{Workload: wk, N: n, ErrorRate: 0.04, Seed: c.Seed})
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "## Detection quality — %s (N=%d, e%%=4)\n", strings.ToUpper(wk), n)
		fmt.Fprintf(w, "%-22s %10s %10s %10s %10s\n", "semantics", "precision", "recall", "flagged", "violations")
		ft := repair.Detect(inst.Dirty, inst.Set, inst.Cfg, c.opts())
		classic := eval.ClassicDetect(inst)
		for _, row := range []struct {
			name       string
			violations []repair.Violation
		}{
			{"fault-tolerant (FT)", ft},
			{"classic equality", classic},
		} {
			q := eval.DetectionQuality(inst, row.violations)
			fmt.Fprintf(w, "%-22s %10.3f %10.3f %10d %10d\n", row.name, q.Precision, q.Recall, q.Repaired, len(row.violations))
		}
		fmt.Fprintln(w)
	}
	return nil
}

// autotauAblation validates the sudden-gap threshold heuristic end to end:
// per-FD SelectTau vs the fixed benchmark threshold.
func autotauAblation(c Config, w io.Writer) error {
	for _, wk := range c.Workloads {
		if canceled(c.Cancel) {
			return repair.ErrCanceled
		}
		n := c.defaultN(wk)
		fmt.Fprintf(w, "## Auto-tau vs fixed — %s (N=%d, e%%=4, GreedyM)\n", strings.ToUpper(wk), n)
		fmt.Fprintf(w, "%-24s %10s %10s\n", "threshold policy", "precision", "recall")
		for _, policy := range []string{"fixed 0.3", "SelectTau per FD"} {
			inst, err := eval.Prepare(eval.Setup{Workload: wk, N: n, ErrorRate: 0.04, Seed: c.Seed})
			if err != nil {
				return err
			}
			if policy != "fixed 0.3" {
				for i, f := range inst.Set.FDs {
					inst.Set.Tau[i] = fd.SelectTau(inst.Dirty, f, inst.Cfg, fd.TauOptions{Fallback: eval.BenchTau})
				}
			}
			p := eval.Measure(inst, eval.OurAlgos(false, c.opts())[0])
			if p.Err != "" {
				fmt.Fprintf(w, "%-24s %10s %10s  (%s)\n", policy, "-", "-", p.Err)
				continue
			}
			fmt.Fprintf(w, "%-24s %10.3f %10.3f\n", policy, p.Quality.Precision, p.Quality.Recall)
		}
		fmt.Fprintln(w)
	}
	return nil
}

// graphbench times the violation-graph construction family (all-pairs and
// indexed builds × cache on/off × worker counts, plus end-to-end Detect)
// and optionally writes the measurements to Config.BenchOut as JSON. The
// instance is sized from the scale so the default run lands at N=5000 —
// large enough for the all-pairs build to dominate.
func graphbench(c Config, w io.Writer) error {
	wk := c.Workloads[0]
	n := int(25000 * c.Scale)
	if n < 200 {
		n = 200
	}
	minTime := 500 * time.Millisecond
	if n < 1000 {
		// Tiny scales (tests) need the shape, not stable timings.
		minTime = 10 * time.Millisecond
	}
	doc, err := eval.GraphBench(eval.GraphBenchConfig{
		Workload: wk,
		N:        n,
		Seed:     c.Seed,
		MinTime:  minTime,
		Cancel:   c.Cancel,
	})
	if err != nil {
		return err
	}
	eval.PrintGraphBench(w, doc)
	if c.BenchOut != "" {
		buf, err := json.MarshalIndent(doc, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(c.BenchOut, append(buf, '\n'), 0o644); err != nil {
			return fmt.Errorf("experiments: writing %s: %w", c.BenchOut, err)
		}
		fmt.Fprintf(w, "wrote %s\n\n", c.BenchOut)
	}
	return nil
}

// distbench times the string-distance hot paths (bit-parallel kernels vs
// the retained DPs at several lengths, Matcher streaming, plane vs map
// cache hits) and optionally writes the measurements to Config.BenchOut as
// JSON (BENCH_strsim.json). Input sizes are fixed — the kernels are
// length-keyed, not relation-sized — so only the per-entry measuring time
// scales down for tiny (test) runs.
func distbench(c Config, w io.Writer) error {
	minTime := 500 * time.Millisecond
	if c.Scale < 0.04 {
		minTime = 10 * time.Millisecond
	}
	doc, err := eval.DistBench(eval.DistBenchConfig{
		Seed:    c.Seed,
		MinTime: minTime,
		Cancel:  c.Cancel,
	})
	if err != nil {
		return err
	}
	eval.PrintDistBench(w, doc)
	if c.BenchOut != "" {
		buf, err := json.MarshalIndent(doc, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(c.BenchOut, append(buf, '\n'), 0o644); err != nil {
			return fmt.Errorf("experiments: writing %s: %w", c.BenchOut, err)
		}
		fmt.Fprintf(w, "wrote %s\n\n", c.BenchOut)
	}
	return nil
}

// repairbench times the repair-phase hot paths (greedy growth naive vs
// indexed heap at three sizes, exact branch-and-bound combination
// throughput vs workers, and multi-FD plan evaluation vs workers) and
// optionally writes the measurements to Config.BenchOut as JSON. The
// greedy instance is sized from the scale so the default run lands at
// N=5000 — large enough for the naive rescan's quadratic term to show.
func repairbench(c Config, w io.Writer) error {
	wk := c.Workloads[0]
	n := int(25000 * c.Scale)
	if n < 200 {
		n = 200
	}
	minTime := 500 * time.Millisecond
	if n < 1000 {
		// Tiny scales (tests) need the shape, not stable timings.
		minTime = 10 * time.Millisecond
	}
	doc, err := eval.RepairBench(eval.RepairBenchConfig{
		Workload: wk,
		N:        n,
		Seed:     c.Seed,
		MinTime:  minTime,
		Cancel:   c.Cancel,
	})
	if err != nil {
		return err
	}
	eval.PrintRepairBench(w, doc)
	if c.BenchOut != "" {
		buf, err := json.MarshalIndent(doc, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(c.BenchOut, append(buf, '\n'), 0o644); err != nil {
			return fmt.Errorf("experiments: writing %s: %w", c.BenchOut, err)
		}
		fmt.Fprintf(w, "wrote %s\n\n", c.BenchOut)
	}
	return nil
}

// incrbench replays a timed ingest stream against the sharded incremental
// engine and against monolithic per-batch recomputation, at three relation
// sizes, and optionally writes the measurements to Config.BenchOut as JSON
// (BENCH_incremental.json). The claim under test: per-batch latency tracks
// the touched components, not the standing relation size.
func incrbench(c Config, w io.Writer) error {
	wk := c.Workloads[0]
	n := int(25000 * c.Scale)
	if n < 400 {
		n = 400
	}
	doc, err := eval.IncrBench(eval.IncrBenchConfig{
		Workload: wk,
		N:        n,
		Seed:     c.Seed,
		Cancel:   c.Cancel,
	})
	if err != nil {
		return err
	}
	eval.PrintIncrBench(w, doc)
	if c.BenchOut != "" {
		buf, err := json.MarshalIndent(doc, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(c.BenchOut, append(buf, '\n'), 0o644); err != nil {
			return fmt.Errorf("experiments: writing %s: %w", c.BenchOut, err)
		}
		fmt.Fprintf(w, "wrote %s\n\n", c.BenchOut)
	}
	return nil
}

// Names lists the available experiment names in presentation order.
func Names() []string {
	var out []string
	for _, e := range list() {
		out = append(out, e.name)
	}
	return out
}

// Describe returns the one-line description of an experiment, or "".
func Describe(name string) string {
	for _, e := range list() {
		if e.name == name {
			return e.desc
		}
	}
	return ""
}

// Run executes one experiment by name.
func Run(name string, c Config, w io.Writer) error {
	for _, e := range list() {
		if canceled(c.Cancel) {
			return repair.ErrCanceled
		}
		if e.name == name {
			return e.run(c, w)
		}
	}
	return fmt.Errorf("experiments: unknown experiment %q", name)
}
