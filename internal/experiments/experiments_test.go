package experiments_test

import (
	"strings"
	"testing"

	"ftrepair/internal/experiments"
)

func tinyConfig() experiments.Config {
	return experiments.Config{Scale: 0.02, Seed: 7, Workloads: []string{"tax"}}
}

func TestNamesAndDescribe(t *testing.T) {
	names := experiments.Names()
	if len(names) < 16 {
		t.Fatalf("only %d experiments", len(names))
	}
	for _, want := range []string{"fig5", "fig16", "table3", "weights", "flavors", "tau", "detection", "autotau", "ablation"} {
		found := false
		for _, n := range names {
			if n == want {
				found = true
			}
		}
		if !found {
			t.Errorf("experiment %q missing from %v", want, names)
		}
		if experiments.Describe(want) == "" {
			t.Errorf("no description for %q", want)
		}
	}
	if experiments.Describe("nope") != "" {
		t.Error("description for unknown experiment")
	}
}

func TestRunUnknown(t *testing.T) {
	var sb strings.Builder
	if err := experiments.Run("nope", tinyConfig(), &sb); err == nil {
		t.Fatal("unknown experiment accepted")
	}
}

func TestEveryExperimentRunsAtTinyScale(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment smoke test skipped in -short mode")
	}
	for _, name := range experiments.Names() {
		name := name
		t.Run(name, func(t *testing.T) {
			var sb strings.Builder
			if err := experiments.Run(name, tinyConfig(), &sb); err != nil {
				t.Fatalf("%s: %v", name, err)
			}
			if sb.Len() == 0 {
				t.Fatalf("%s produced no output", name)
			}
			if !strings.Contains(sb.String(), "##") {
				t.Fatalf("%s output lacks a section header:\n%s", name, sb.String())
			}
		})
	}
}

func TestJSONFormat(t *testing.T) {
	c := tinyConfig()
	c.JSON = true
	var sb strings.Builder
	if err := experiments.Run("fig7", c, &sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), `"series"`) || !strings.Contains(sb.String(), `"precision"`) {
		t.Fatalf("JSON output:\n%s", sb.String())
	}
}
