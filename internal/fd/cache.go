package fd

import (
	"hash/maphash"
	"sync"
	"sync/atomic"

	"ftrepair/internal/dataset"
)

// DistCache memoizes per-attribute normalized string distances. The same
// value pairs recur thousands of times across a repair run — pattern pairs
// share attribute values after tuple grouping, and PatternDist, Dist,
// DistWithin, target-tree plan costs, and greedy rescoring all re-derive
// the same Levenshtein distances — so caching the per-attribute result
// removes the pipeline's dominant repeated work.
//
// The cache is sharded: each shard owns an independent map guarded by its
// own RWMutex, and a key is routed to a shard by hashing, so concurrent
// graph-construction workers contend only when they touch the same shard.
// Distances are symmetric, so the key orders the value pair (a <= b) and
// both argument orders hit the same entry. The key also carries the edit
// flavor because callers mutate DistConfig.Edit between builds (flavor
// ablations do exactly that) and a Levenshtein result must never answer an
// OSA query.
//
// Entries are either exact distances or lower bounds. A bounded evaluation
// (StringDistWithin) that *accepts* a pair yields the exact distance
// (bitwise equal to the full computation — both evaluate d/m in float64);
// one that *rejects* at budget t proves only that the distance exceeds t,
// which is stored as a lower bound. A memoized lower bound b answers any
// later bounded query with budget <= b (the distance exceeds b, hence the
// budget) — and on FT workloads almost all candidate pairs are rejections,
// so bounding them is what makes repeated builds and multi-FD detection
// cheap. Exact entries always win over bounds; a bound is upgraded in
// place when a larger budget re-rejects or an acceptance resolves the
// pair.
//
// In front of the sharded maps sit optional per-column distance planes
// (AttachPlanes): flat triangular arrays over interned value-pair codes
// holding integer edit distances and bounds. A pair whose both values are
// interned is answered by one atomic load; everything else — un-interned
// values, columns whose domain exceeds the plane caps, flavors other than
// the attached one — falls through to the maps. See plane.go for the
// encoding and the bit-identity argument.
//
// A DistCache must not be copied after first use.
type DistCache struct {
	seed   maphash.Seed
	shards [cacheShards]cacheShard

	// planes[col] answers value pairs interned in col's dictionary; nil
	// entries (and a nil slice) fall through to the sharded maps. Written
	// once by AttachPlanes before concurrent use.
	planes      []*distPlane
	planeFlavor EditFlavor
	planeHits   atomic.Uint64
	planeMisses atomic.Uint64
}

const (
	cacheShards = 32
	// cacheShardCap bounds each shard's entry count. When a shard fills up
	// it is reset wholesale (epoch eviction): recurring values repopulate
	// it within one build, and the bound keeps long-lived servers from
	// accumulating unbounded distinct-pair state across jobs.
	cacheShardCap = 1 << 16
)

type cacheShard struct {
	mu     sync.RWMutex
	m      map[pairKey]cacheVal
	hits   atomic.Uint64
	misses atomic.Uint64
}

// pairKey identifies one memoized distance: the column (numeric spans and
// schema types are per-column), the edit flavor, and the ordered value
// pair.
type pairKey struct {
	col    int
	flavor EditFlavor
	a, b   string
}

// cacheVal is one memoized result: the exact distance, or (exact=false) a
// proven lower bound — the true distance is strictly greater than d.
type cacheVal struct {
	d     float64
	exact bool
}

// NewDistCache returns an empty cache ready for concurrent use.
func NewDistCache() *DistCache {
	return &DistCache{seed: maphash.MakeSeed()}
}

func (c *DistCache) shard(k pairKey) *cacheShard {
	var h maphash.Hash
	h.SetSeed(c.seed)
	h.WriteString(k.a)
	h.WriteByte(0)
	h.WriteString(k.b)
	h.WriteByte(byte(k.col))
	h.WriteByte(byte(k.flavor))
	return &c.shards[h.Sum64()%cacheShards]
}

func orderPair(col int, flavor EditFlavor, a, b string) pairKey {
	if b < a {
		a, b = b, a
	}
	return pairKey{col: col, flavor: flavor, a: a, b: b}
}

// lookup fetches the memoized entry without touching the counters; the
// caller records a hit or miss once it knows whether the entry answers its
// query (a lower bound may be too weak for the budget at hand).
func (c *DistCache) lookup(col int, flavor EditFlavor, a, b string) (cacheVal, *cacheShard, bool) {
	k := orderPair(col, flavor, a, b)
	s := c.shard(k)
	s.mu.RLock()
	v, ok := s.m[k]
	s.mu.RUnlock()
	return v, s, ok
}

// getExact returns the memoized exact distance, counting the hit or miss.
// Lower-bound entries cannot answer an unbounded query and count as
// misses.
func (c *DistCache) getExact(col int, flavor EditFlavor, a, b string) (float64, bool) {
	v, s, ok := c.lookup(col, flavor, a, b)
	if ok && v.exact {
		s.hits.Add(1)
		return v.d, true
	}
	s.misses.Add(1)
	return 0, false
}

// putExact stores a fully computed distance, superseding any bound.
func (c *DistCache) putExact(col int, flavor EditFlavor, a, b string, d float64) {
	c.store(orderPair(col, flavor, a, b), cacheVal{d: d, exact: true})
}

// putBound records that the distance of the pair strictly exceeds t. An
// existing exact entry or a stronger bound is left in place.
func (c *DistCache) putBound(col int, flavor EditFlavor, a, b string, t float64) {
	k := orderPair(col, flavor, a, b)
	s := c.shard(k)
	s.mu.Lock()
	if old, ok := s.m[k]; ok && (old.exact || old.d >= t) {
		s.mu.Unlock()
		return
	}
	s.storeLocked(k, cacheVal{d: t})
	s.mu.Unlock()
}

func (c *DistCache) store(k pairKey, v cacheVal) {
	s := c.shard(k)
	s.mu.Lock()
	s.storeLocked(k, v)
	s.mu.Unlock()
}

func (s *cacheShard) storeLocked(k pairKey, v cacheVal) {
	if s.m == nil || len(s.m) >= cacheShardCap {
		s.m = make(map[pairKey]cacheVal)
	}
	s.m[k] = v
}

// AttachPlanes equips the cache with per-column distance planes over the
// given dictionaries for one edit flavor. Columns with a nil dictionary,
// fewer than two distinct values, or a domain exceeding the plane size caps
// are skipped (their pairs keep using the sharded maps), and the Jaccard
// flavor attaches nothing (its distances are not integer edit counts).
// Attach before sharing the cache across goroutines; attaching replaces any
// previous planes.
func (c *DistCache) AttachPlanes(dicts []*dataset.Dict, flavor EditFlavor) {
	c.planes = nil
	c.planeFlavor = flavor
	if flavor == EditJaccard || len(dicts) == 0 {
		return
	}
	planes := make([]*distPlane, len(dicts))
	attached := false
	budget := planeTotalCells
	for col, d := range dicts {
		if d == nil || d.Len() < 2 {
			continue
		}
		cells := planeCells(d.Len())
		if cells > planeMaxCells || cells > budget {
			continue
		}
		planes[col] = newDistPlane(d)
		budget -= cells
		attached = true
	}
	if attached {
		c.planes = planes
	}
}

// plane returns col's distance plane when one is attached for the flavor.
func (c *DistCache) plane(col int, flavor EditFlavor) *distPlane {
	if c.planes == nil || flavor != c.planeFlavor || col >= len(c.planes) {
		return nil
	}
	return c.planes[col]
}

// Counters returns the cumulative hit and miss counts across all shards and
// planes.
func (c *DistCache) Counters() (hits, misses uint64) {
	for i := range c.shards {
		hits += c.shards[i].hits.Load()
		misses += c.shards[i].misses.Load()
	}
	hits += c.planeHits.Load()
	misses += c.planeMisses.Load()
	return hits, misses
}

// PlaneCounters returns the cumulative plane-only hit and miss counts: how
// many lookups the per-column distance planes answered with one atomic load
// versus how many fell through to the sharded maps. The same counts are
// folded into Counters' totals; this accessor splits them out so per-run
// deltas can attribute cache traffic to the plane fast path.
func (c *DistCache) PlaneCounters() (hits, misses uint64) {
	return c.planeHits.Load(), c.planeMisses.Load()
}

// Len returns the number of memoized entries currently held, occupied plane
// cells included.
func (c *DistCache) Len() int {
	n := 0
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.RLock()
		n += len(s.m)
		s.mu.RUnlock()
	}
	for _, p := range c.planes {
		if p != nil {
			n += p.occupied()
		}
	}
	return n
}
