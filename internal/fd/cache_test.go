package fd_test

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"ftrepair/internal/dataset"
	"ftrepair/internal/fd"
	"ftrepair/internal/gen"
)

// randomWords returns noisy word pairs with plenty of repeats, so both the
// hit and miss paths of the cache get exercised.
func randomWords(rng *rand.Rand, n int) []string {
	base := []string{"boston", "chicago", "seattle", "denver", "austin", "houston", "", "a"}
	out := make([]string, n)
	for i := range out {
		w := base[rng.Intn(len(base))]
		if rng.Intn(3) == 0 && len(w) > 0 {
			b := []byte(w)
			b[rng.Intn(len(b))] = byte('a' + rng.Intn(26))
			w = string(b)
		}
		out[i] = w
	}
	return out
}

func TestCachedDistancesBitwiseEqual(t *testing.T) {
	// A cached config must return exactly — bitwise — the distances an
	// uncached config computes, for every edit flavor, including after
	// mutating Edit on the live config (the flavor is part of the key).
	dirty, _ := gen.Citizens()
	cached := fd.DefaultDistConfig(dirty)
	bare := fd.DefaultDistConfig(dirty)
	bare.Cache = nil
	if cached.Cache == nil {
		t.Fatal("DefaultDistConfig did not enable the cache")
	}
	rng := rand.New(rand.NewSource(1))
	words := randomWords(rng, 40)
	col := 3 // City: a string attribute
	for _, flavor := range []fd.EditFlavor{fd.EditLevenshtein, fd.EditOSA, fd.EditJaccard} {
		cached.Edit, bare.Edit = flavor, flavor
		for range [2]struct{}{} { // second pass answers from the cache
			for _, a := range words {
				for _, b := range words {
					if got, want := cached.AttrDist(col, a, b), bare.AttrDist(col, a, b); got != want {
						t.Fatalf("flavor %d AttrDist(%q,%q) = %v, uncached %v", flavor, a, b, got, want)
					}
					if got, want := cached.RepairDist(col, a, b), bare.RepairDist(col, a, b); got != want {
						t.Fatalf("flavor %d RepairDist(%q,%q) = %v, uncached %v", flavor, a, b, got, want)
					}
				}
			}
		}
	}
}

func TestCachedDistWithinAgrees(t *testing.T) {
	// DistWithin routes string attributes through the cache with a budget;
	// accept/reject decisions and accepted distances must match the
	// uncached evaluation exactly at every threshold.
	dirty, _ := gen.Citizens()
	f := gen.CitizensFDs(dirty.Schema)[1] // City -> State
	cached := fd.DefaultDistConfig(dirty)
	bare := fd.DefaultDistConfig(dirty)
	bare.Cache = nil
	for _, flavor := range []fd.EditFlavor{fd.EditLevenshtein, fd.EditOSA, fd.EditJaccard} {
		cached.Edit, bare.Edit = flavor, flavor
		for _, tau := range []float64{0, 0.05, 0.2, 0.35, 0.8} {
			for range [2]struct{}{} {
				for i := range dirty.Tuples {
					for j := range dirty.Tuples {
						d1, ok1 := cached.DistWithin(f, tau, dirty.Tuples[i], dirty.Tuples[j])
						d2, ok2 := bare.DistWithin(f, tau, dirty.Tuples[i], dirty.Tuples[j])
						if ok1 != ok2 || d1 != d2 {
							t.Fatalf("flavor %d tau %v tuples %d,%d: cached (%v,%v) vs uncached (%v,%v)",
								flavor, tau, i, j, d1, ok1, d2, ok2)
						}
					}
				}
			}
		}
	}
}

func TestDistCacheCounters(t *testing.T) {
	schema := dataset.Strings("A")
	rel, err := dataset.FromRows(schema, [][]string{{"x"}})
	if err != nil {
		t.Fatal(err)
	}
	cfg := fd.DefaultDistConfig(rel)
	if h, m := cfg.Cache.Counters(); h != 0 || m != 0 {
		t.Fatalf("fresh cache counters = %d/%d", h, m)
	}
	cfg.AttrDist(0, "boston", "bostom") // miss, then stored
	if h, m := cfg.Cache.Counters(); h != 0 || m != 1 {
		t.Fatalf("after first query: hits %d, misses %d", h, m)
	}
	cfg.AttrDist(0, "bostom", "boston") // symmetric: same entry
	if h, m := cfg.Cache.Counters(); h != 1 || m != 1 {
		t.Fatalf("after symmetric query: hits %d, misses %d", h, m)
	}
	if cfg.Cache.Len() != 1 {
		t.Fatalf("Len = %d, want 1", cfg.Cache.Len())
	}
	// Equal strings short-circuit before the cache.
	cfg.AttrDist(0, "boston", "boston")
	if h, m := cfg.Cache.Counters(); h != 1 || m != 1 {
		t.Fatalf("equal-string query touched the cache: hits %d, misses %d", h, m)
	}
	// A different flavor is a different key.
	cfg.Edit = fd.EditOSA
	cfg.AttrDist(0, "boston", "bostom")
	if h, m := cfg.Cache.Counters(); h != 1 || m != 2 {
		t.Fatalf("flavor change hit the wrong entry: hits %d, misses %d", h, m)
	}
	if cfg.Cache.Len() != 2 {
		t.Fatalf("Len = %d, want 2", cfg.Cache.Len())
	}
}

// lowerBoundRel is the two-tuple fixture for the lower-bound tests:
// dist(A) = 1/4, weighted 0.125 under the default w_l = 0.5.
func lowerBoundRel(t *testing.T) (*dataset.Relation, *fd.FD) {
	t.Helper()
	schema := dataset.Strings("A", "B")
	rel, err := dataset.FromRows(schema, [][]string{{"abcd", "x"}, {"abce", "x"}})
	if err != nil {
		t.Fatal(err)
	}
	return rel, fd.MustParse(schema, "A->B")
}

func checkLowerBound(t *testing.T, cfg *fd.DistConfig, f *fd.FD, t1, t2 dataset.Tuple,
	step string, tau float64, wantOK bool, wantHits, wantMisses uint64) {
	t.Helper()
	if _, ok := cfg.DistWithin(f, tau, t1, t2); ok != wantOK {
		t.Fatalf("%s: DistWithin ok = %v, want %v", step, ok, wantOK)
	}
	if h, m := cfg.Cache.Counters(); h != wantHits || m != wantMisses {
		t.Fatalf("%s: counters = %d/%d, want %d/%d", step, h, m, wantHits, wantMisses)
	}
}

func TestDistCacheLowerBounds(t *testing.T) {
	// A bounded rejection is memoized as a lower bound: it answers repeat
	// queries at the same or smaller budget, is recomputed (and upgraded)
	// at a larger budget, and is superseded by an exact entry once some
	// query accepts the pair. This exercises the sharded-map path, so the
	// planes are detached (no dictionaries, fresh cache).
	rel, f := lowerBoundRel(t)
	cfg := fd.DefaultDistConfig(rel)
	cfg.Dicts = nil
	cfg.Cache = fd.NewDistCache()
	t1, t2 := rel.Tuples[0], rel.Tuples[1]
	check := func(step string, tau float64, wantOK bool, wantHits, wantMisses uint64) {
		t.Helper()
		checkLowerBound(t, cfg, f, t1, t2, step, tau, wantOK, wantHits, wantMisses)
	}
	check("first rejection", 0.05, false, 0, 1)  // miss, bound stored
	check("repeat rejection", 0.05, false, 1, 1) // answered by the bound
	check("larger budget", 0.08, false, 1, 2)    // float bound too weak: recompute
	check("acceptance", 0.2, true, 1, 3)         // exact entry replaces bound
	check("reject via exact", 0.05, false, 2, 3)
	if d := cfg.AttrDist(0, "abcd", "abce"); !fd.FloatEq(d, 0.25) {
		t.Fatalf("AttrDist = %v, want 0.25", d)
	}
	if h, m := cfg.Cache.Counters(); h != 3 || m != 3 {
		t.Fatalf("final counters = %d/%d, want 3/3", h, m)
	}
	if cfg.Cache.Len() != 1 {
		t.Fatalf("Len = %d, want 1", cfg.Cache.Len())
	}
}

func TestDistPlaneLowerBounds(t *testing.T) {
	// Same sequence on the distance-plane path (both values interned).
	// Plane bounds live in integer space — a rejection at band int(t*m)
	// answers every later budget with the same band — so the "larger
	// budget" step that recomputes on the map path is a plane hit: tau
	// 0.08 still yields band int(0.16*4) = 0, covered by the stored bound.
	rel, f := lowerBoundRel(t)
	cfg := fd.DefaultDistConfig(rel) // planes attached by NewDistConfig
	t1, t2 := rel.Tuples[0], rel.Tuples[1]
	check := func(step string, tau float64, wantOK bool, wantHits, wantMisses uint64) {
		t.Helper()
		checkLowerBound(t, cfg, f, t1, t2, step, tau, wantOK, wantHits, wantMisses)
	}
	check("first rejection", 0.05, false, 0, 1)  // miss, bound L=0 stored
	check("repeat rejection", 0.05, false, 1, 1) // answered by the bound
	check("same-band budget", 0.08, false, 2, 1) // band still 0: bound answers
	check("acceptance", 0.2, true, 2, 2)         // band 1: exact cell replaces bound
	check("reject via exact", 0.05, false, 3, 2)
	if d := cfg.AttrDist(0, "abcd", "abce"); !fd.FloatEq(d, 0.25) {
		t.Fatalf("AttrDist = %v, want 0.25", d)
	}
	if h, m := cfg.Cache.Counters(); h != 4 || m != 2 {
		t.Fatalf("final counters = %d/%d, want 4/2", h, m)
	}
	if cfg.Cache.Len() != 1 {
		t.Fatalf("Len = %d, want 1 (one occupied plane cell)", cfg.Cache.Len())
	}
}

func TestDistCacheNumericBypass(t *testing.T) {
	schema := dataset.MustSchema(dataset.Attribute{Name: "N", Type: dataset.Numeric})
	rel, err := dataset.FromRows(schema, [][]string{{"1"}, {"100"}})
	if err != nil {
		t.Fatal(err)
	}
	cfg := fd.DefaultDistConfig(rel)
	cfg.AttrDist(0, "1", "100")
	if h, m := cfg.Cache.Counters(); h != 0 || m != 0 {
		t.Fatalf("numeric comparison touched the cache: hits %d, misses %d", h, m)
	}
	// Unparseable numerics fall back to the string path, which does cache.
	cfg.AttrDist(0, "one", "two")
	if _, m := cfg.Cache.Counters(); m != 1 {
		t.Fatalf("unparseable numeric bypassed the cache: misses %d", m)
	}
}

func TestDistCacheConcurrent(t *testing.T) {
	// Hammer one shared cache from many goroutines; correctness is checked
	// against an uncached config, and the race detector checks the locking.
	dirty, _ := gen.Citizens()
	cached := fd.DefaultDistConfig(dirty)
	bare := fd.DefaultDistConfig(dirty)
	bare.Cache = nil
	words := randomWords(rand.New(rand.NewSource(2)), 30)
	var wg sync.WaitGroup
	errs := make(chan error, 8)
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w)))
			for i := 0; i < 2000; i++ {
				a, b := words[rng.Intn(len(words))], words[rng.Intn(len(words))]
				if got, want := cached.AttrDist(3, a, b), bare.AttrDist(3, a, b); got != want {
					select {
					case errs <- fmt.Errorf("AttrDist(%q,%q) = %v, want %v", a, b, got, want):
					default:
					}
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	if err := <-errs; err != nil {
		t.Fatal(err)
	}
	if h, m := cached.Cache.Counters(); h == 0 || m == 0 {
		t.Fatalf("expected both hits and misses, got %d/%d", h, m)
	}
}
