package fd

import (
	"fmt"
	"strings"

	"ftrepair/internal/dataset"
)

// Wildcard is the unconstrained pattern symbol in a CFD tableau.
const Wildcard = "_"

// PatternRow is one row of a CFD pattern tableau: a pattern value (constant
// or Wildcard) per LHS attribute followed by one per RHS attribute.
type PatternRow struct {
	LHS []string
	RHS []string
}

// CFD is a conditional functional dependency: an embedded FD plus a pattern
// tableau restricting which tuples it constrains (Fan et al., TODS 2008; the
// paper states its model and algorithms extend to CFDs, which is realized
// here by restricting the relation to pattern-matching tuples and repairing
// the embedded FD on the restriction).
type CFD struct {
	Embedded *FD
	Tableau  []PatternRow
}

// NewCFD validates tableau arity against the embedded FD.
func NewCFD(f *FD, tableau []PatternRow) (*CFD, error) {
	if len(tableau) == 0 {
		return nil, fmt.Errorf("fd: CFD %s has empty tableau", f)
	}
	for i, row := range tableau {
		if len(row.LHS) != len(f.LHS) || len(row.RHS) != len(f.RHS) {
			return nil, fmt.Errorf("fd: CFD %s tableau row %d has arity %d/%d, want %d/%d",
				f, i, len(row.LHS), len(row.RHS), len(f.LHS), len(f.RHS))
		}
	}
	return &CFD{Embedded: f, Tableau: tableau}, nil
}

// ParseCFD parses "City->State | NYC,_" style specs: an FD spec, a '|', and
// one or more ';'-separated tableau rows, each a comma-separated list of LHS
// patterns followed by RHS patterns.
func ParseCFD(schema *dataset.Schema, spec string) (*CFD, error) {
	parts := strings.SplitN(spec, "|", 2)
	f, err := Parse(schema, strings.TrimSpace(parts[0]))
	if err != nil {
		return nil, err
	}
	if len(parts) == 1 {
		// No tableau: a plain FD is a CFD with an all-wildcard row.
		row := PatternRow{LHS: make([]string, len(f.LHS)), RHS: make([]string, len(f.RHS))}
		for i := range row.LHS {
			row.LHS[i] = Wildcard
		}
		for i := range row.RHS {
			row.RHS[i] = Wildcard
		}
		return NewCFD(f, []PatternRow{row})
	}
	var tableau []PatternRow
	for _, rowSpec := range strings.Split(parts[1], ";") {
		vals := strings.Split(rowSpec, ",")
		if len(vals) != len(f.LHS)+len(f.RHS) {
			return nil, fmt.Errorf("fd: CFD row %q has %d patterns, want %d", rowSpec, len(vals), len(f.LHS)+len(f.RHS))
		}
		for i := range vals {
			vals[i] = strings.TrimSpace(vals[i])
		}
		tableau = append(tableau, PatternRow{
			LHS: vals[:len(f.LHS)],
			RHS: vals[len(f.LHS):],
		})
	}
	return NewCFD(f, tableau)
}

// matchesLHS reports whether t matches the constants of the row's LHS
// pattern.
func (c *CFD) matchesLHS(row PatternRow, t dataset.Tuple) bool {
	for i, col := range c.Embedded.LHS {
		if row.LHS[i] != Wildcard && t[col] != row.LHS[i] {
			return false
		}
	}
	return true
}

// MatchRow returns the index of the first tableau row whose LHS constants
// match t, or -1 when t is unconstrained by this CFD.
func (c *CFD) MatchRow(t dataset.Tuple) int {
	for i, row := range c.Tableau {
		if c.matchesLHS(row, t) {
			return i
		}
	}
	return -1
}

// SingleViolates reports whether t alone violates a tableau row with RHS
// constants (t matches the LHS pattern but disagrees with an RHS constant).
func (c *CFD) SingleViolates(t dataset.Tuple) bool {
	for _, row := range c.Tableau {
		if !c.matchesLHS(row, t) {
			continue
		}
		for i, col := range c.Embedded.RHS {
			if row.RHS[i] != Wildcard && t[col] != row.RHS[i] {
				return true
			}
		}
	}
	return false
}

// Violates reports the classic pairwise CFD violation: both tuples match
// the same row's LHS pattern, agree on X, and differ on Y.
func (c *CFD) Violates(t1, t2 dataset.Tuple) bool {
	for _, row := range c.Tableau {
		if c.matchesLHS(row, t1) && c.matchesLHS(row, t2) && c.Embedded.Violates(t1, t2) {
			return true
		}
	}
	return false
}

// Restrict returns the sub-relation of tuples constrained by the CFD along
// with their original row indices, so a repair of the restriction can be
// written back.
func (c *CFD) Restrict(rel *dataset.Relation) (*dataset.Relation, []int) {
	sub := dataset.NewRelation(rel.Schema)
	var rows []int
	for i, t := range rel.Tuples {
		if c.MatchRow(t) >= 0 {
			sub.Tuples = append(sub.Tuples, t.Clone())
			rows = append(rows, i)
		}
	}
	return sub, rows
}
