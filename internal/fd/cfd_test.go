package fd_test

import (
	"testing"

	"ftrepair/internal/dataset"
	"ftrepair/internal/fd"
)

func TestParseCFD(t *testing.T) {
	schema := dataset.Strings("City", "AC", "State")
	c, err := fd.ParseCFD(schema, "City -> State | NYC, NY; _, _")
	if err != nil {
		t.Fatal(err)
	}
	if len(c.Tableau) != 2 {
		t.Fatalf("tableau rows = %d", len(c.Tableau))
	}
	if c.Tableau[0].LHS[0] != "NYC" || c.Tableau[0].RHS[0] != "NY" {
		t.Fatalf("row 0 = %+v", c.Tableau[0])
	}
	// Plain FD spec becomes an all-wildcard CFD.
	c2, err := fd.ParseCFD(schema, "City -> State")
	if err != nil {
		t.Fatal(err)
	}
	if c2.Tableau[0].LHS[0] != fd.Wildcard || c2.Tableau[0].RHS[0] != fd.Wildcard {
		t.Fatalf("wildcard row = %+v", c2.Tableau[0])
	}
}

func TestParseCFDErrors(t *testing.T) {
	schema := dataset.Strings("City", "State")
	if _, err := fd.ParseCFD(schema, "City -> State | NYC"); err == nil {
		t.Fatal("short tableau row accepted")
	}
	if _, err := fd.ParseCFD(schema, "Bogus -> State | _, _"); err == nil {
		t.Fatal("bad embedded FD accepted")
	}
}

func TestNewCFDValidation(t *testing.T) {
	schema := dataset.Strings("City", "State")
	f := fd.MustParse(schema, "City->State")
	if _, err := fd.NewCFD(f, nil); err == nil {
		t.Fatal("empty tableau accepted")
	}
	if _, err := fd.NewCFD(f, []fd.PatternRow{{LHS: []string{"a", "b"}, RHS: []string{"c"}}}); err == nil {
		t.Fatal("wrong arity accepted")
	}
}

func TestCFDSemantics(t *testing.T) {
	schema := dataset.Strings("City", "State")
	rel, _ := dataset.FromRows(schema, [][]string{
		{"NYC", "NY"},
		{"NYC", "CA"},    // pairwise violation with row 0, and single violation of the constant row
		{"Boston", "MA"}, // unconstrained by the constant row
	})
	c, err := fd.ParseCFD(schema, "City -> State | NYC, NY")
	if err != nil {
		t.Fatal(err)
	}
	if c.MatchRow(rel.Tuples[0]) != 0 {
		t.Fatal("t0 should match")
	}
	if c.MatchRow(rel.Tuples[2]) != -1 {
		t.Fatal("Boston should not match the NYC row")
	}
	if c.SingleViolates(rel.Tuples[0]) {
		t.Fatal("(NYC,NY) should satisfy the constant row")
	}
	if !c.SingleViolates(rel.Tuples[1]) {
		t.Fatal("(NYC,CA) should violate the constant row")
	}
	if !c.Violates(rel.Tuples[0], rel.Tuples[1]) {
		t.Fatal("pairwise violation missed")
	}
	if c.Violates(rel.Tuples[0], rel.Tuples[2]) {
		t.Fatal("unconstrained pair flagged")
	}
	sub, rows := c.Restrict(rel)
	if sub.Len() != 2 || rows[0] != 0 || rows[1] != 1 {
		t.Fatalf("Restrict = %d rows, idx %v", sub.Len(), rows)
	}
}
