package fd

import (
	"fmt"
	"unicode/utf8"

	"ftrepair/internal/dataset"
	"ftrepair/internal/strsim"
)

// DistConfig carries everything needed to evaluate the paper's distance
// function: the LHS/RHS weights of Eq. 2 and the per-attribute numeric spans
// used to normalize Euclidean distances into [0,1] (Eq. 1).
type DistConfig struct {
	Schema *dataset.Schema
	WL, WR float64   // weight of LHS and RHS distance; WL+WR = 1
	Spans  []float64 // max-min per attribute; 0 for string attributes
	// Conf holds per-attribute confidence weights in (0, +inf) scaling the
	// *repair cost* of changing a cell in that column (Eq. 3); violation
	// detection (Eq. 2) is unaffected. A confidence above 1 makes a column
	// expensive to touch (user-verified data), below 1 cheap (known-noisy
	// data). Nil means 1 everywhere. This realizes the confidence-guided
	// repairing the paper cites as complementary work.
	Conf []float64
	// Edit selects the string distance flavor. The default Levenshtein
	// matches the paper; OSA (Damerau-Levenshtein with adjacent
	// transpositions at cost 1) models keyboard typos more closely.
	Edit EditFlavor
	// Cache memoizes per-attribute string distances across the whole
	// pipeline (graph construction, repair costs, target search). Nil
	// bypasses memoization. NewDistConfig enables it by default; callers
	// constructing a DistConfig literal opt in explicitly. The cache keys
	// include the edit flavor, so mutating Edit on a live config is safe.
	Cache *DistCache
	// Dicts holds the per-column value dictionaries (nil for numeric
	// columns) backing the cache's distance planes: pairs of interned
	// values resolve to integer codes and their distances memoize in flat
	// triangular arrays instead of the sharded maps. NewDistConfig builds
	// them from the relation; a nil slice simply keeps every pair on the
	// map path. Call AttachPlanes after replacing Cache or mutating Edit
	// so the planes follow.
	Dicts []*dataset.Dict
}

// EditFlavor selects the string edit-distance variant.
type EditFlavor uint8

const (
	// EditLevenshtein is the paper's default: insert/delete/substitute.
	EditLevenshtein EditFlavor = iota
	// EditOSA adds adjacent transpositions at unit cost.
	EditOSA
	// EditJaccard uses the Jaccard distance over 2-gram sets — the other
	// string distance Eq. 1 names. Cheap on long strings, coarser on
	// short ones.
	EditJaccard
)

// StringDist is the normalized string distance under the configured
// flavor.
func (cfg *DistConfig) StringDist(a, b string) float64 {
	switch cfg.Edit {
	case EditOSA:
		return strsim.NormalizedOSA(a, b)
	case EditJaccard:
		return strsim.JaccardDistance(a, b, 2)
	default:
		return strsim.NormalizedEdit(a, b)
	}
}

// StringDistWithin is StringDist with early exit at threshold t.
func (cfg *DistConfig) StringDistWithin(a, b string, t float64) (float64, bool) {
	switch cfg.Edit {
	case EditOSA:
		return strsim.NormalizedOSAWithin(a, b, t)
	case EditJaccard:
		d := strsim.JaccardDistance(a, b, 2)
		if d > t {
			return 0, false
		}
		return d, true
	default:
		return strsim.NormalizedEditWithin(a, b, t)
	}
}

// SetConfidence assigns a repair-cost confidence to one attribute. It
// panics on non-positive confidence values.
func (cfg *DistConfig) SetConfidence(col int, c float64) {
	if c <= 0 {
		panic("fd: confidence must be positive")
	}
	if cfg.Conf == nil {
		cfg.Conf = make([]float64, cfg.Schema.Len())
		for i := range cfg.Conf {
			cfg.Conf[i] = 1
		}
	}
	cfg.Conf[col] = c
}

// RepairDist is the per-attribute repair cost: the Eq-1 distance scaled by
// the attribute's confidence. All Eq-3 cost accounting (edge weights,
// tuple costs, target search) goes through it.
func (cfg *DistConfig) RepairDist(col int, a, b string) float64 {
	d := cfg.AttrDist(col, a, b)
	if cfg.Conf != nil {
		d *= cfg.Conf[col]
	}
	return d
}

// DefaultWL and DefaultWR are the paper's default weight split
// (w_l = w_r = 0.5).
const (
	DefaultWL = 0.5
	DefaultWR = 0.5
)

// NewDistConfig derives a distance configuration from a relation, computing
// numeric spans from the data. Weights must be non-negative and sum to 1.
func NewDistConfig(rel *dataset.Relation, wl, wr float64) (*DistConfig, error) {
	if wl < 0 || wr < 0 || !close1(wl+wr) {
		return nil, fmt.Errorf("fd: weights w_l=%v, w_r=%v must be non-negative and sum to 1", wl, wr)
	}
	cfg := &DistConfig{
		Schema: rel.Schema,
		WL:     wl,
		WR:     wr,
		Spans:  make([]float64, rel.Schema.Len()),
		Cache:  NewDistCache(),
	}
	cfg.Dicts = make([]*dataset.Dict, rel.Schema.Len())
	for c := 0; c < rel.Schema.Len(); c++ {
		if min, max, ok := rel.NumericRange(c); ok {
			cfg.Spans[c] = max - min
		}
		if rel.Schema.Attr(c).Type != dataset.Numeric {
			cfg.Dicts[c] = rel.ColumnDict(c)
		}
	}
	cfg.AttachPlanes()
	return cfg, nil
}

// AttachPlanes (re)attaches the cache's per-column distance planes for the
// config's current edit flavor. Call it after swapping Cache (fresh caches
// start plane-less) or mutating Edit; without dictionaries or a cache it is
// a no-op and every pair stays on the sharded-map path.
func (cfg *DistConfig) AttachPlanes() {
	if cfg.Cache == nil || cfg.Dicts == nil {
		return
	}
	cfg.Cache.AttachPlanes(cfg.Dicts, cfg.Edit)
}

// DefaultDistConfig is NewDistConfig with the paper's default weights.
func DefaultDistConfig(rel *dataset.Relation) *DistConfig {
	cfg, err := NewDistConfig(rel, DefaultWL, DefaultWR)
	if err != nil {
		panic(err) // unreachable: constants are valid
	}
	return cfg
}

func close1(x float64) bool {
	const eps = 1e-9
	return x > 1-eps && x < 1+eps
}

// AttrDist is the per-attribute distance of Eq. 1: normalized edit distance
// for strings, normalized Euclidean distance for numerics. Numeric cells
// that fail to parse fall back to string comparison, so dirty numeric cells
// (a real-world occurrence) degrade gracefully rather than aborting.
//
// String comparisons consult Cache when set — the column's distance plane
// when both values are interned, the sharded map otherwise. Numeric
// comparisons bypass both: parsing plus a subtraction is cheaper than any
// lookup.
func (cfg *DistConfig) AttrDist(col int, a, b string) float64 {
	return cfg.attrDist(col, a, b, nil)
}

func (cfg *DistConfig) attrDist(col int, a, b string, mt *strsim.Matcher) float64 {
	if a == b {
		return 0
	}
	if cfg.Schema.Attr(col).Type == dataset.Numeric {
		av, errA := dataset.ParseFloat(a)
		bv, errB := dataset.ParseFloat(b)
		if errA == nil && errB == nil {
			return strsim.Euclidean(av, bv, cfg.Spans[col])
		}
	}
	if cfg.Cache != nil {
		if p := cfg.Cache.plane(col, cfg.Edit); p != nil {
			if ca, okA := p.dict.Code(a); okA {
				if cb, okB := p.dict.Code(b); okB {
					return cfg.planeDist(p, ca, cb, a, b, mt)
				}
			}
		}
		if d, ok := cfg.Cache.getExact(col, cfg.Edit, a, b); ok {
			return d
		}
		d := cfg.stringDist(a, b, mt)
		cfg.Cache.putExact(col, cfg.Edit, a, b, d)
		return d
	}
	return cfg.stringDist(a, b, mt)
}

// planeDist answers an unbounded per-attribute query from the column's
// distance plane. The normalized result is float64(k)/float64(m) — the
// exact expression NormalizedEdit/NormalizedOSA evaluate — so a plane hit
// is bitwise equal to recomputation.
func (cfg *DistConfig) planeDist(p *distPlane, ca, cb int32, a, b string, mt *strsim.Matcher) float64 {
	m := p.dict.RuneLen(ca)
	if l := p.dict.RuneLen(cb); l > m {
		m = l
	}
	if v := p.load(ca, cb); v&planeExactBit != 0 {
		cfg.Cache.planeHits.Add(1)
		return float64(v&^planeExactBit) / float64(m)
	}
	cfg.Cache.planeMisses.Add(1)
	var k int
	switch {
	case mt != nil:
		k = mt.Distance(b)
	case cfg.Edit == EditOSA:
		k = strsim.OSA(a, b)
	default:
		k = strsim.Levenshtein(a, b)
	}
	p.storeExact(ca, cb, k)
	return float64(k) / float64(m)
}

// stringDist is StringDist with an optional prebuilt matcher for a
// (Levenshtein flavor only; callers pass nil otherwise).
func (cfg *DistConfig) stringDist(a, b string, mt *strsim.Matcher) float64 {
	if mt == nil {
		return cfg.StringDist(a, b)
	}
	la, lb := mt.Len(), runeLen(b)
	m := la
	if lb > m {
		m = lb
	}
	if m == 0 {
		return 0
	}
	return float64(mt.Distance(b)) / float64(m)
}

// Dist evaluates Eq. 2 for the FD: w_l * Σ_{A∈X} dist(A) + w_r * Σ_{A∈Y}
// dist(A).
func (cfg *DistConfig) Dist(f *FD, t1, t2 dataset.Tuple) float64 {
	var dl, dr float64
	for _, c := range f.LHS {
		dl += cfg.AttrDist(c, t1[c], t2[c])
	}
	for _, c := range f.RHS {
		dr += cfg.AttrDist(c, t1[c], t2[c])
	}
	return cfg.WL*dl + cfg.WR*dr
}

// TupleCost is Eq. 3: the cost of repairing tuple t into t', the sum of
// per-attribute confidence-scaled distances.
func (cfg *DistConfig) TupleCost(t, t2 dataset.Tuple) float64 {
	var sum float64
	for c := range t {
		sum += cfg.RepairDist(c, t[c], t2[c])
	}
	return sum
}

// DatabaseCost is Eq. 4: the total repair cost between two instances with
// aligned rows.
func (cfg *DistConfig) DatabaseCost(d, d2 *dataset.Relation) float64 {
	var sum float64
	for i := range d.Tuples {
		sum += cfg.TupleCost(d.Tuples[i], d2.Tuples[i])
	}
	return sum
}

// DistWithin evaluates the Eq-2 distance with early exit once the running
// sum exceeds tau; per-attribute string distances are themselves bounded by
// the remaining budget. Returns ok=false as soon as the pair cannot be
// within tau.
func (cfg *DistConfig) DistWithin(f *FD, tau float64, t1, t2 dataset.Tuple) (float64, bool) {
	return cfg.distWithin(f, tau, t1, t2, nil)
}

// distWithin is DistWithin with an optional PairMatcher carrying prebuilt
// bitmask tables for t1's attribute values.
func (cfg *DistConfig) distWithin(f *FD, tau float64, t1, t2 dataset.Tuple, pm *PairMatcher) (float64, bool) {
	var sum float64
	add := func(cols []int, w float64) bool {
		for _, c := range cols {
			a, b := t1[c], t2[c]
			if a == b {
				continue
			}
			var d float64
			if cfg.Schema.Attr(c).Type == dataset.Numeric {
				d = cfg.AttrDist(c, a, b)
			} else if w > 0 {
				budget := (tau - sum) / w
				if budget > 1 {
					budget = 1
				}
				var mt *strsim.Matcher
				if pm != nil {
					mt = pm.matcher(c, a)
				}
				nd, ok := cfg.stringDistWithinCached(c, a, b, budget, mt)
				if !ok {
					return false
				}
				d = nd
			}
			sum += w * d
			if sum > tau {
				return false
			}
		}
		return true
	}
	if !add(f.LHS, cfg.WL) {
		return 0, false
	}
	if !add(f.RHS, cfg.WR) {
		return 0, false
	}
	return sum, true
}

// stringDistWithinCached is StringDistWithin routed through the length
// lower bound and the distance cache. The length bound applies to the edit
// flavors only (a q-gram Jaccard distance can undercut it). An exact cache
// entry answers the bounded query outright; a memoized lower bound answers
// it when the budget does not exceed the bound (the distance provably
// does). Accepted bounded results are bitwise equal to the full distance
// (both evaluate d/m in float64) and are stored exactly; rejections are
// stored as lower bounds at the rejecting budget. Either way, cached and
// uncached runs agree exactly.
//
// When both values are interned in an attached distance plane the query is
// answered there instead: exact cells reject or accept in integer space and
// reconstruct the same d/m float, bound cells reject any budget whose
// integer band int(t*m) the stored bound covers. mt optionally carries a's
// prebuilt matcher (Levenshtein flavor only) for the compute path.
func (cfg *DistConfig) stringDistWithinCached(col int, a, b string, t float64, mt *strsim.Matcher) (float64, bool) {
	if cfg.Edit != EditJaccard && strsim.MinDistByLength(a, b) > t {
		return 0, false
	}
	if cfg.Cache == nil {
		return cfg.stringDistWithin(a, b, t, mt)
	}
	if p := cfg.Cache.plane(col, cfg.Edit); p != nil {
		if ca, okA := p.dict.Code(a); okA {
			if cb, okB := p.dict.Code(b); okB {
				return cfg.planeDistWithin(p, ca, cb, a, b, t, mt)
			}
		}
	}
	v, s, ok := cfg.Cache.lookup(col, cfg.Edit, a, b)
	if ok && (v.exact || t <= v.d) {
		s.hits.Add(1)
		if !v.exact || v.d > t {
			return 0, false
		}
		return v.d, true
	}
	s.misses.Add(1)
	d, ok := cfg.stringDistWithin(a, b, t, mt)
	if ok {
		cfg.Cache.putExact(col, cfg.Edit, a, b, d)
	} else {
		cfg.Cache.putBound(col, cfg.Edit, a, b, t)
	}
	return d, ok
}

// planeDistWithin answers a bounded query from the column's distance plane
// with NormalizedEditWithin's exact semantics: the absolute band is
// int(t*m), acceptance reconstructs float64(k)/float64(m), and the final
// nd > t guard is preserved. A stored lower bound L rejects any query whose
// band does not exceed it — the distance provably exceeds L >= int(t*m).
func (cfg *DistConfig) planeDistWithin(p *distPlane, ca, cb int32, a, b string, t float64, mt *strsim.Matcher) (float64, bool) {
	if t < 0 {
		return 0, false
	}
	m := p.dict.RuneLen(ca)
	if l := p.dict.RuneLen(cb); l > m {
		m = l
	}
	// a != b and both interned, so m >= 1.
	maxDist := int(t * float64(m))
	v := p.load(ca, cb)
	if v&planeExactBit != 0 {
		cfg.Cache.planeHits.Add(1)
		nd := float64(v&^planeExactBit) / float64(m)
		if nd > t {
			return 0, false
		}
		return nd, true
	}
	if v != 0 && maxDist <= int(v)-1 {
		cfg.Cache.planeHits.Add(1)
		return 0, false
	}
	cfg.Cache.planeMisses.Add(1)
	var k int
	var ok bool
	switch {
	case mt != nil:
		k, ok = mt.DistanceBounded(b, maxDist)
	case cfg.Edit == EditOSA:
		k, ok = strsim.OSABounded(a, b, maxDist)
	default:
		k, ok = strsim.LevenshteinBounded(a, b, maxDist)
	}
	if !ok {
		p.storeBound(ca, cb, maxDist)
		return 0, false
	}
	p.storeExact(ca, cb, k)
	nd := float64(k) / float64(m)
	if nd > t {
		return 0, false
	}
	return nd, true
}

// stringDistWithin is StringDistWithin with an optional prebuilt matcher
// for a (Levenshtein flavor only; callers pass nil otherwise). The matcher
// path mirrors NormalizedEditWithin term for term.
func (cfg *DistConfig) stringDistWithin(a, b string, t float64, mt *strsim.Matcher) (float64, bool) {
	if mt == nil {
		return cfg.StringDistWithin(a, b, t)
	}
	if t < 0 {
		return 0, false
	}
	if a == b {
		return 0, true
	}
	m := mt.Len()
	if lb := runeLen(b); lb > m {
		m = lb
	}
	if m == 0 {
		return 0, true
	}
	d, ok := mt.DistanceBounded(b, int(t*float64(m)))
	if !ok {
		return 0, false
	}
	nd := float64(d) / float64(m)
	if nd > t {
		return 0, false
	}
	return nd, true
}

// runeLen is utf8.RuneCountInString.
func runeLen(s string) int { return utf8.RuneCountInString(s) }

// FTViolates reports the fault-tolerant violation of the FD at threshold
// tau: the projections differ and their distance is at most tau.
func (cfg *DistConfig) FTViolates(f *FD, tau float64, t1, t2 dataset.Tuple) bool {
	if f.ProjEqual(t1, t2) {
		return false
	}
	return cfg.Dist(f, t1, t2) <= tau
}

// IsConsistent reports classic consistency of rel w.r.t. the FD (no two
// tuples agree on X and differ on Y). It groups by the LHS projection.
func IsConsistent(rel *dataset.Relation, f *FD) bool {
	byLHS := make(map[string]string) // lhs key -> rhs key of first occurrence
	for _, t := range rel.Tuples {
		lk := t.Key(f.LHS)
		rk := t.Key(f.RHS)
		if prev, ok := byLHS[lk]; ok {
			if prev != rk {
				return false
			}
			continue
		}
		byLHS[lk] = rk
	}
	return true
}

// IsFTConsistent reports FT-consistency of rel w.r.t. the FD at threshold
// tau: no pair of tuples is an FT-violation. Tuples sharing a projection are
// grouped, so the check is quadratic in the number of distinct projections,
// not tuples.
func IsFTConsistent(rel *dataset.Relation, f *FD, cfg *DistConfig, tau float64) bool {
	patterns := DistinctProjections(rel, f)
	for i := 0; i < len(patterns); i++ {
		for j := i + 1; j < len(patterns); j++ {
			if cfg.Dist(f, patterns[i], patterns[j]) <= tau {
				return false
			}
		}
	}
	return true
}

// DistinctProjections returns one representative tuple per distinct value of
// the FD's projection, in first-occurrence order.
func DistinctProjections(rel *dataset.Relation, f *FD) []dataset.Tuple {
	seen := make(map[string]bool)
	var out []dataset.Tuple
	for _, t := range rel.Tuples {
		k := t.Key(f.attrs)
		if seen[k] {
			continue
		}
		seen[k] = true
		out = append(out, t)
	}
	return out
}
