package fd

import (
	"fmt"

	"ftrepair/internal/dataset"
	"ftrepair/internal/strsim"
)

// DistConfig carries everything needed to evaluate the paper's distance
// function: the LHS/RHS weights of Eq. 2 and the per-attribute numeric spans
// used to normalize Euclidean distances into [0,1] (Eq. 1).
type DistConfig struct {
	Schema *dataset.Schema
	WL, WR float64   // weight of LHS and RHS distance; WL+WR = 1
	Spans  []float64 // max-min per attribute; 0 for string attributes
	// Conf holds per-attribute confidence weights in (0, +inf) scaling the
	// *repair cost* of changing a cell in that column (Eq. 3); violation
	// detection (Eq. 2) is unaffected. A confidence above 1 makes a column
	// expensive to touch (user-verified data), below 1 cheap (known-noisy
	// data). Nil means 1 everywhere. This realizes the confidence-guided
	// repairing the paper cites as complementary work.
	Conf []float64
	// Edit selects the string distance flavor. The default Levenshtein
	// matches the paper; OSA (Damerau-Levenshtein with adjacent
	// transpositions at cost 1) models keyboard typos more closely.
	Edit EditFlavor
	// Cache memoizes per-attribute string distances across the whole
	// pipeline (graph construction, repair costs, target search). Nil
	// bypasses memoization. NewDistConfig enables it by default; callers
	// constructing a DistConfig literal opt in explicitly. The cache keys
	// include the edit flavor, so mutating Edit on a live config is safe.
	Cache *DistCache
}

// EditFlavor selects the string edit-distance variant.
type EditFlavor uint8

const (
	// EditLevenshtein is the paper's default: insert/delete/substitute.
	EditLevenshtein EditFlavor = iota
	// EditOSA adds adjacent transpositions at unit cost.
	EditOSA
	// EditJaccard uses the Jaccard distance over 2-gram sets — the other
	// string distance Eq. 1 names. Cheap on long strings, coarser on
	// short ones.
	EditJaccard
)

// StringDist is the normalized string distance under the configured
// flavor.
func (cfg *DistConfig) StringDist(a, b string) float64 {
	switch cfg.Edit {
	case EditOSA:
		return strsim.NormalizedOSA(a, b)
	case EditJaccard:
		return strsim.JaccardDistance(a, b, 2)
	default:
		return strsim.NormalizedEdit(a, b)
	}
}

// StringDistWithin is StringDist with early exit at threshold t.
func (cfg *DistConfig) StringDistWithin(a, b string, t float64) (float64, bool) {
	switch cfg.Edit {
	case EditOSA:
		return strsim.NormalizedOSAWithin(a, b, t)
	case EditJaccard:
		d := strsim.JaccardDistance(a, b, 2)
		if d > t {
			return 0, false
		}
		return d, true
	default:
		return strsim.NormalizedEditWithin(a, b, t)
	}
}

// SetConfidence assigns a repair-cost confidence to one attribute. It
// panics on non-positive confidence values.
func (cfg *DistConfig) SetConfidence(col int, c float64) {
	if c <= 0 {
		panic("fd: confidence must be positive")
	}
	if cfg.Conf == nil {
		cfg.Conf = make([]float64, cfg.Schema.Len())
		for i := range cfg.Conf {
			cfg.Conf[i] = 1
		}
	}
	cfg.Conf[col] = c
}

// RepairDist is the per-attribute repair cost: the Eq-1 distance scaled by
// the attribute's confidence. All Eq-3 cost accounting (edge weights,
// tuple costs, target search) goes through it.
func (cfg *DistConfig) RepairDist(col int, a, b string) float64 {
	d := cfg.AttrDist(col, a, b)
	if cfg.Conf != nil {
		d *= cfg.Conf[col]
	}
	return d
}

// DefaultWL and DefaultWR are the paper's default weight split
// (w_l = w_r = 0.5).
const (
	DefaultWL = 0.5
	DefaultWR = 0.5
)

// NewDistConfig derives a distance configuration from a relation, computing
// numeric spans from the data. Weights must be non-negative and sum to 1.
func NewDistConfig(rel *dataset.Relation, wl, wr float64) (*DistConfig, error) {
	if wl < 0 || wr < 0 || !close1(wl+wr) {
		return nil, fmt.Errorf("fd: weights w_l=%v, w_r=%v must be non-negative and sum to 1", wl, wr)
	}
	cfg := &DistConfig{
		Schema: rel.Schema,
		WL:     wl,
		WR:     wr,
		Spans:  make([]float64, rel.Schema.Len()),
		Cache:  NewDistCache(),
	}
	for c := 0; c < rel.Schema.Len(); c++ {
		if min, max, ok := rel.NumericRange(c); ok {
			cfg.Spans[c] = max - min
		}
	}
	return cfg, nil
}

// DefaultDistConfig is NewDistConfig with the paper's default weights.
func DefaultDistConfig(rel *dataset.Relation) *DistConfig {
	cfg, err := NewDistConfig(rel, DefaultWL, DefaultWR)
	if err != nil {
		panic(err) // unreachable: constants are valid
	}
	return cfg
}

func close1(x float64) bool {
	const eps = 1e-9
	return x > 1-eps && x < 1+eps
}

// AttrDist is the per-attribute distance of Eq. 1: normalized edit distance
// for strings, normalized Euclidean distance for numerics. Numeric cells
// that fail to parse fall back to string comparison, so dirty numeric cells
// (a real-world occurrence) degrade gracefully rather than aborting.
//
// String comparisons consult Cache when set. Numeric comparisons bypass it:
// parsing plus a subtraction is cheaper than a map lookup.
func (cfg *DistConfig) AttrDist(col int, a, b string) float64 {
	if a == b {
		return 0
	}
	if cfg.Schema.Attr(col).Type == dataset.Numeric {
		av, errA := dataset.ParseFloat(a)
		bv, errB := dataset.ParseFloat(b)
		if errA == nil && errB == nil {
			return strsim.Euclidean(av, bv, cfg.Spans[col])
		}
	}
	if cfg.Cache != nil {
		if d, ok := cfg.Cache.getExact(col, cfg.Edit, a, b); ok {
			return d
		}
		d := cfg.StringDist(a, b)
		cfg.Cache.putExact(col, cfg.Edit, a, b, d)
		return d
	}
	return cfg.StringDist(a, b)
}

// Dist evaluates Eq. 2 for the FD: w_l * Σ_{A∈X} dist(A) + w_r * Σ_{A∈Y}
// dist(A).
func (cfg *DistConfig) Dist(f *FD, t1, t2 dataset.Tuple) float64 {
	var dl, dr float64
	for _, c := range f.LHS {
		dl += cfg.AttrDist(c, t1[c], t2[c])
	}
	for _, c := range f.RHS {
		dr += cfg.AttrDist(c, t1[c], t2[c])
	}
	return cfg.WL*dl + cfg.WR*dr
}

// TupleCost is Eq. 3: the cost of repairing tuple t into t', the sum of
// per-attribute confidence-scaled distances.
func (cfg *DistConfig) TupleCost(t, t2 dataset.Tuple) float64 {
	var sum float64
	for c := range t {
		sum += cfg.RepairDist(c, t[c], t2[c])
	}
	return sum
}

// DatabaseCost is Eq. 4: the total repair cost between two instances with
// aligned rows.
func (cfg *DistConfig) DatabaseCost(d, d2 *dataset.Relation) float64 {
	var sum float64
	for i := range d.Tuples {
		sum += cfg.TupleCost(d.Tuples[i], d2.Tuples[i])
	}
	return sum
}

// DistWithin evaluates the Eq-2 distance with early exit once the running
// sum exceeds tau; per-attribute string distances are themselves bounded by
// the remaining budget. Returns ok=false as soon as the pair cannot be
// within tau.
func (cfg *DistConfig) DistWithin(f *FD, tau float64, t1, t2 dataset.Tuple) (float64, bool) {
	var sum float64
	add := func(cols []int, w float64) bool {
		for _, c := range cols {
			a, b := t1[c], t2[c]
			if a == b {
				continue
			}
			var d float64
			if cfg.Schema.Attr(c).Type == dataset.Numeric {
				d = cfg.AttrDist(c, a, b)
			} else if w > 0 {
				budget := (tau - sum) / w
				if budget > 1 {
					budget = 1
				}
				nd, ok := cfg.stringDistWithinCached(c, a, b, budget)
				if !ok {
					return false
				}
				d = nd
			}
			sum += w * d
			if sum > tau {
				return false
			}
		}
		return true
	}
	if !add(f.LHS, cfg.WL) {
		return 0, false
	}
	if !add(f.RHS, cfg.WR) {
		return 0, false
	}
	return sum, true
}

// stringDistWithinCached is StringDistWithin routed through the length
// lower bound and the distance cache. The length bound applies to the edit
// flavors only (a q-gram Jaccard distance can undercut it). An exact cache
// entry answers the bounded query outright; a memoized lower bound answers
// it when the budget does not exceed the bound (the distance provably
// does). Accepted bounded results are bitwise equal to the full distance
// (both evaluate d/m in float64) and are stored exactly; rejections are
// stored as lower bounds at the rejecting budget. Either way, cached and
// uncached runs agree exactly.
func (cfg *DistConfig) stringDistWithinCached(col int, a, b string, t float64) (float64, bool) {
	if cfg.Edit != EditJaccard && strsim.MinDistByLength(a, b) > t {
		return 0, false
	}
	if cfg.Cache == nil {
		return cfg.StringDistWithin(a, b, t)
	}
	v, s, ok := cfg.Cache.lookup(col, cfg.Edit, a, b)
	if ok && (v.exact || t <= v.d) {
		s.hits.Add(1)
		if !v.exact || v.d > t {
			return 0, false
		}
		return v.d, true
	}
	s.misses.Add(1)
	d, ok := cfg.StringDistWithin(a, b, t)
	if ok {
		cfg.Cache.putExact(col, cfg.Edit, a, b, d)
	} else {
		cfg.Cache.putBound(col, cfg.Edit, a, b, t)
	}
	return d, ok
}

// FTViolates reports the fault-tolerant violation of the FD at threshold
// tau: the projections differ and their distance is at most tau.
func (cfg *DistConfig) FTViolates(f *FD, tau float64, t1, t2 dataset.Tuple) bool {
	if f.ProjEqual(t1, t2) {
		return false
	}
	return cfg.Dist(f, t1, t2) <= tau
}

// IsConsistent reports classic consistency of rel w.r.t. the FD (no two
// tuples agree on X and differ on Y). It groups by the LHS projection.
func IsConsistent(rel *dataset.Relation, f *FD) bool {
	byLHS := make(map[string]string) // lhs key -> rhs key of first occurrence
	for _, t := range rel.Tuples {
		lk := t.Key(f.LHS)
		rk := t.Key(f.RHS)
		if prev, ok := byLHS[lk]; ok {
			if prev != rk {
				return false
			}
			continue
		}
		byLHS[lk] = rk
	}
	return true
}

// IsFTConsistent reports FT-consistency of rel w.r.t. the FD at threshold
// tau: no pair of tuples is an FT-violation. Tuples sharing a projection are
// grouped, so the check is quadratic in the number of distinct projections,
// not tuples.
func IsFTConsistent(rel *dataset.Relation, f *FD, cfg *DistConfig, tau float64) bool {
	patterns := DistinctProjections(rel, f)
	for i := 0; i < len(patterns); i++ {
		for j := i + 1; j < len(patterns); j++ {
			if cfg.Dist(f, patterns[i], patterns[j]) <= tau {
				return false
			}
		}
	}
	return true
}

// DistinctProjections returns one representative tuple per distinct value of
// the FD's projection, in first-occurrence order.
func DistinctProjections(rel *dataset.Relation, f *FD) []dataset.Tuple {
	seen := make(map[string]bool)
	var out []dataset.Tuple
	for _, t := range rel.Tuples {
		k := t.Key(f.attrs)
		if seen[k] {
			continue
		}
		seen[k] = true
		out = append(out, t)
	}
	return out
}
