// Package fd implements the constraint layer: functional dependencies and
// their conditional extension, the paper's distance function over constraint
// projections (Eq. 1-2), the classic equality-based violation semantics, and
// the fault-tolerant (FT-) violation semantics with automatic threshold
// selection.
package fd

import (
	"fmt"
	"strings"

	"ftrepair/internal/dataset"
)

// FD is a functional dependency X -> Y over a schema, with attributes
// referenced by position.
type FD struct {
	Name   string // optional label, e.g. "phi2"
	Schema *dataset.Schema
	LHS    []int // X
	RHS    []int // Y
	attrs  []int // X followed by Y, cached
}

// New builds an FD from attribute names. LHS and RHS must be non-empty and
// disjoint.
func New(schema *dataset.Schema, name string, lhs, rhs []string) (*FD, error) {
	if len(lhs) == 0 || len(rhs) == 0 {
		return nil, fmt.Errorf("fd: %s: LHS and RHS must be non-empty", name)
	}
	l, err := schema.Indices(lhs...)
	if err != nil {
		return nil, fmt.Errorf("fd: %s: %w", name, err)
	}
	r, err := schema.Indices(rhs...)
	if err != nil {
		return nil, fmt.Errorf("fd: %s: %w", name, err)
	}
	seen := make(map[int]bool)
	for _, c := range l {
		if seen[c] {
			return nil, fmt.Errorf("fd: %s: duplicate attribute in LHS", name)
		}
		seen[c] = true
	}
	for _, c := range r {
		if seen[c] {
			return nil, fmt.Errorf("fd: %s: attribute appears twice (LHS/RHS must be disjoint)", name)
		}
		seen[c] = true
	}
	f := &FD{Name: name, Schema: schema, LHS: l, RHS: r}
	f.attrs = append(append([]int{}, l...), r...)
	return f, nil
}

// Parse builds an FD from a spec of the form "City,Street->District". An
// optional "name:" prefix labels the FD.
func Parse(schema *dataset.Schema, spec string) (*FD, error) {
	name := ""
	body := spec
	if i := strings.Index(spec, ":"); i >= 0 && !strings.Contains(spec[:i], "->") {
		name = strings.TrimSpace(spec[:i])
		body = spec[i+1:]
	}
	parts := strings.SplitN(body, "->", 2)
	if len(parts) != 2 {
		return nil, fmt.Errorf("fd: spec %q missing \"->\"", spec)
	}
	lhs := splitAttrs(parts[0])
	rhs := splitAttrs(parts[1])
	if name == "" {
		name = strings.TrimSpace(body)
	}
	return New(schema, name, lhs, rhs)
}

// MustParse is Parse that panics on error, for statically known specs.
func MustParse(schema *dataset.Schema, spec string) *FD {
	f, err := Parse(schema, spec)
	if err != nil {
		panic(err)
	}
	return f
}

func splitAttrs(s string) []string {
	var out []string
	for _, p := range strings.Split(s, ",") {
		if p = strings.TrimSpace(p); p != "" {
			out = append(out, p)
		}
	}
	return out
}

// Attrs returns the attribute positions of X followed by Y. Callers must not
// modify the returned slice.
func (f *FD) Attrs() []int { return f.attrs }

// String renders the FD as "Name: [A,B] -> [C]".
func (f *FD) String() string {
	names := func(cols []int) string {
		parts := make([]string, len(cols))
		for i, c := range cols {
			parts[i] = f.Schema.Attr(c).Name
		}
		return strings.Join(parts, ",")
	}
	s := fmt.Sprintf("[%s] -> [%s]", names(f.LHS), names(f.RHS))
	if f.Name != "" && f.Name != s {
		return f.Name + ": " + s
	}
	return s
}

// SharesAttrs reports whether two FDs have a common attribute (over X ∪ Y),
// the condition under which they must be repaired jointly (§4.1).
func (f *FD) SharesAttrs(g *FD) bool {
	set := make(map[int]bool, len(f.attrs))
	for _, c := range f.attrs {
		set[c] = true
	}
	for _, c := range g.attrs {
		if set[c] {
			return true
		}
	}
	return false
}

// Violates reports the classic FD violation: equal on X, different on Y.
func (f *FD) Violates(t1, t2 dataset.Tuple) bool {
	for _, c := range f.LHS {
		if t1[c] != t2[c] {
			return false
		}
	}
	for _, c := range f.RHS {
		if t1[c] != t2[c] {
			return true
		}
	}
	return false
}

// ProjEqual reports whether the two tuples agree on every attribute of the
// FD (t1^phi == t2^phi).
func (f *FD) ProjEqual(t1, t2 dataset.Tuple) bool {
	for _, c := range f.attrs {
		if t1[c] != t2[c] {
			return false
		}
	}
	return true
}
