package fd_test

import (
	"math"
	"strings"
	"testing"

	"ftrepair/internal/dataset"
	"ftrepair/internal/fd"
	"ftrepair/internal/gen"
)

func TestParse(t *testing.T) {
	schema := dataset.Strings("A", "B", "C", "D")
	f, err := fd.Parse(schema, "phi: A, B -> C")
	if err != nil {
		t.Fatal(err)
	}
	if f.Name != "phi" || len(f.LHS) != 2 || len(f.RHS) != 1 {
		t.Fatalf("parsed %+v", f)
	}
	if got := f.String(); !strings.Contains(got, "[A,B] -> [C]") {
		t.Fatalf("String = %q", got)
	}
	if got := f.Attrs(); len(got) != 3 || got[0] != 0 || got[2] != 2 {
		t.Fatalf("Attrs = %v", got)
	}
	// Unnamed FD.
	g, err := fd.Parse(schema, "A->B")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(g.String(), "[A] -> [B]") {
		t.Fatalf("String = %q", g.String())
	}
}

func TestParseErrors(t *testing.T) {
	schema := dataset.Strings("A", "B")
	for _, spec := range []string{
		"A",        // no arrow
		"-> B",     // empty LHS
		"A ->",     // empty RHS
		"Z -> B",   // unknown LHS attr
		"A -> Z",   // unknown RHS attr
		"A,A -> B", // duplicate in LHS
		"A -> A",   // overlap LHS/RHS
	} {
		if _, err := fd.Parse(schema, spec); err == nil {
			t.Errorf("Parse(%q) accepted", spec)
		}
	}
}

func TestMustParsePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustParse did not panic")
		}
	}()
	fd.MustParse(dataset.Strings("A"), "bogus")
}

func TestSharesAttrs(t *testing.T) {
	schema := dataset.Strings("A", "B", "C", "D", "E")
	f1 := fd.MustParse(schema, "A->B")
	f2 := fd.MustParse(schema, "B->C")
	f3 := fd.MustParse(schema, "D->E")
	if !f1.SharesAttrs(f2) {
		t.Fatal("f1/f2 share B")
	}
	if f1.SharesAttrs(f3) {
		t.Fatal("f1/f3 share nothing")
	}
}

func TestViolatesClassic(t *testing.T) {
	dirty, _ := gen.Citizens()
	fds := gen.CitizensFDs(dirty.Schema)
	phi1 := fds[0]
	t1, t9, t4, t6 := dirty.Tuples[0], dirty.Tuples[8], dirty.Tuples[3], dirty.Tuples[5]
	if !phi1.Violates(t1, t9) {
		t.Fatal("(t1,t9) should violate phi1 (same Education, different Level)")
	}
	if phi1.Violates(t4, t6) {
		t.Fatal("(t4,t6) must not classically violate phi1 (different Education)")
	}
	if phi1.Violates(t1, t1) {
		t.Fatal("tuple cannot violate with itself")
	}
}

func TestProjEqual(t *testing.T) {
	dirty, _ := gen.Citizens()
	phi1 := gen.CitizensFDs(dirty.Schema)[0]
	if !phi1.ProjEqual(dirty.Tuples[0], dirty.Tuples[1]) {
		t.Fatal("t1,t2 agree on Education,Level")
	}
	if phi1.ProjEqual(dirty.Tuples[0], dirty.Tuples[3]) {
		t.Fatal("t1,t4 differ on Education")
	}
}

func almostEqual(a, b float64) bool { return math.Abs(a-b) < 1e-9 }

func TestDistExample5(t *testing.T) {
	// Example 5: dist(t4^phi1, t6^phi1) = 0.5*dist(Masters,Masers) +
	// 0.5*dist(4,4) = 0.5*(1/7) = 0.0714...
	dirty, _ := gen.Citizens()
	phi1 := gen.CitizensFDs(dirty.Schema)[0]
	cfg := fd.DefaultDistConfig(dirty)
	got := cfg.Dist(phi1, dirty.Tuples[3], dirty.Tuples[5])
	if !almostEqual(got, 0.5/7) {
		t.Fatalf("Dist = %v, want %v", got, 0.5/7)
	}
}

func TestFTViolates(t *testing.T) {
	// Example 6: with tau = 0.35, (t4,t6) is an FT-violation of phi1.
	dirty, _ := gen.Citizens()
	phi1 := gen.CitizensFDs(dirty.Schema)[0]
	cfg := fd.DefaultDistConfig(dirty)
	if !cfg.FTViolates(phi1, 0.35, dirty.Tuples[3], dirty.Tuples[5]) {
		t.Fatal("(t4,t6) should FT-violate phi1 at tau=0.35")
	}
	// Identical projections never FT-violate.
	if cfg.FTViolates(phi1, 0.35, dirty.Tuples[0], dirty.Tuples[1]) {
		t.Fatal("identical projections flagged as FT-violation")
	}
	// Very different tuples are beyond the threshold.
	if cfg.FTViolates(phi1, 0.1, dirty.Tuples[0], dirty.Tuples[6]) {
		t.Fatal("(t1,t7) within tau=0.1?")
	}
}

func TestFTViolationCapturesTypoPairT8T9(t *testing.T) {
	// Example 3: t8 is in no classic conflict w.r.t. phi2, but FT-violates
	// with t9 because (Boton, MA) is similar to (Boston, MA).
	dirty, _ := gen.Citizens()
	phi2 := gen.CitizensFDs(dirty.Schema)[1]
	cfg := fd.DefaultDistConfig(dirty)
	t8, t9 := dirty.Tuples[7], dirty.Tuples[8]
	classic := false
	for _, u := range dirty.Tuples {
		if phi2.Violates(t8, u) {
			classic = true
		}
	}
	if classic {
		t.Fatal("t8 should have no classic phi2 violation")
	}
	if !cfg.FTViolates(phi2, 0.35, t8, t9) {
		t.Fatalf("(t8,t9) should FT-violate phi2: dist=%v", cfg.Dist(phi2, t8, t9))
	}
}

func TestTheorem1(t *testing.T) {
	// Theorem 1: when tau <= w_r * |Y|, FT-consistency implies classic
	// consistency. Check on a range of small instances: whenever
	// IsFTConsistent holds at such tau, IsConsistent must hold.
	schema := dataset.MustSchema(
		dataset.Attribute{Name: "X"},
		dataset.Attribute{Name: "Y"},
	)
	f := fd.MustParse(schema, "X->Y")
	vals := []string{"aa", "ab", "bb"}
	// Enumerate all 3-tuple instances over a tiny domain.
	for i := 0; i < len(vals); i++ {
		for j := 0; j < len(vals); j++ {
			for k := 0; k < len(vals); k++ {
				for l := 0; l < len(vals); l++ {
					rel, err := dataset.FromRows(schema, [][]string{
						{vals[i], vals[j]},
						{vals[k], vals[l]},
					})
					if err != nil {
						t.Fatal(err)
					}
					cfg := fd.DefaultDistConfig(rel)
					tau := cfg.WR * float64(len(f.RHS)) // boundary value
					if fd.IsFTConsistent(rel, f, cfg, tau) && !fd.IsConsistent(rel, f) {
						t.Fatalf("Theorem 1 violated on %v", rel.Tuples)
					}
				}
			}
		}
	}
}

func TestIsConsistent(t *testing.T) {
	schema := dataset.Strings("X", "Y")
	ok, _ := dataset.FromRows(schema, [][]string{{"a", "1"}, {"a", "1"}, {"b", "2"}})
	bad, _ := dataset.FromRows(schema, [][]string{{"a", "1"}, {"a", "2"}})
	f := fd.MustParse(schema, "X->Y")
	if !fd.IsConsistent(ok, f) {
		t.Fatal("consistent instance flagged")
	}
	if fd.IsConsistent(bad, f) {
		t.Fatal("violation missed")
	}
}

func TestDistConfigWeights(t *testing.T) {
	rel, _ := dataset.FromRows(dataset.Strings("X", "Y"), [][]string{{"a", "b"}})
	if _, err := fd.NewDistConfig(rel, 0.7, 0.2); err == nil {
		t.Fatal("weights not summing to 1 accepted")
	}
	if _, err := fd.NewDistConfig(rel, -0.5, 1.5); err == nil {
		t.Fatal("negative weight accepted")
	}
	cfg, err := fd.NewDistConfig(rel, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	f := fd.MustParse(rel.Schema, "X->Y")
	// With w_r = 0, RHS differences contribute nothing.
	d := cfg.Dist(f, dataset.Tuple{"a", "b"}, dataset.Tuple{"a", "zzz"})
	if d != 0 {
		t.Fatalf("w_r=0 Dist = %v", d)
	}
}

func TestNumericFallbackToString(t *testing.T) {
	schema := dataset.MustSchema(dataset.Attribute{Name: "N", Type: dataset.Numeric})
	rel, _ := dataset.FromRows(schema, [][]string{{"1"}, {"9"}})
	cfg := fd.DefaultDistConfig(rel)
	// Unparseable numerics compare as strings rather than panicking.
	if d := cfg.AttrDist(0, "abc", "abd"); d != 1.0/3.0 {
		t.Fatalf("fallback dist = %v", d)
	}
	if d := cfg.AttrDist(0, "1", "9"); d != 1 {
		t.Fatalf("numeric dist = %v (span 8)", d)
	}
	if d := cfg.AttrDist(0, "5", "5"); d != 0 {
		t.Fatalf("identical numeric dist = %v", d)
	}
}

func TestTupleAndDatabaseCost(t *testing.T) {
	dirty, clean := gen.Citizens()
	cfg := fd.DefaultDistConfig(dirty)
	// Identical tuples cost 0.
	if c := cfg.TupleCost(dirty.Tuples[0], clean.Tuples[0]); c != 0 {
		t.Fatalf("t1 cost = %v", c)
	}
	// t6: one typo repaired, Masers -> Masters: 1 edit / 7 runes.
	if c := cfg.TupleCost(dirty.Tuples[5], clean.Tuples[5]); !almostEqual(c, 1.0/7) {
		t.Fatalf("t6 cost = %v", c)
	}
	total := cfg.DatabaseCost(dirty, clean)
	if total <= 0 {
		t.Fatalf("DatabaseCost = %v", total)
	}
	// Cost is symmetric because every attribute distance is.
	if back := cfg.DatabaseCost(clean, dirty); !almostEqual(total, back) {
		t.Fatalf("asymmetric cost: %v vs %v", total, back)
	}
}

func TestSetAndComponents(t *testing.T) {
	dirty, _ := gen.Citizens()
	fds := gen.CitizensFDs(dirty.Schema)
	set, err := fd.NewSet(fds, 0.35)
	if err != nil {
		t.Fatal(err)
	}
	comps := set.Components()
	// phi1 is independent; phi2 and phi3 share City.
	if len(comps) != 2 {
		t.Fatalf("components = %v", comps)
	}
	if len(comps[0]) != 1 || comps[0][0] != 0 {
		t.Fatalf("first component = %v", comps[0])
	}
	if len(comps[1]) != 2 {
		t.Fatalf("second component = %v", comps[1])
	}
	sub := set.Subset(comps[1])
	if len(sub.FDs) != 2 || sub.FDs[0] != fds[1] {
		t.Fatalf("Subset = %v", sub.FDs)
	}
}

func TestNewSetValidation(t *testing.T) {
	dirty, _ := gen.Citizens()
	fds := gen.CitizensFDs(dirty.Schema)
	if _, err := fd.NewSet(nil, 0.3); err == nil {
		t.Fatal("empty set accepted")
	}
	if _, err := fd.NewSet(fds); err == nil {
		t.Fatal("no thresholds accepted")
	}
	if _, err := fd.NewSet(fds, 0.1, 0.2); err == nil {
		t.Fatal("mismatched threshold count accepted")
	}
	if _, err := fd.NewSet(fds, -0.1); err == nil {
		t.Fatal("negative threshold accepted")
	}
	s, err := fd.NewSet(fds, 0.1, 0.2, 0.3)
	if err != nil {
		t.Fatal(err)
	}
	if s.Tau[2] != 0.3 {
		t.Fatalf("per-FD thresholds = %v", s.Tau)
	}
}

func TestDistinctProjections(t *testing.T) {
	dirty, _ := gen.Citizens()
	phi1 := gen.CitizensFDs(dirty.Schema)[0]
	got := fd.DistinctProjections(dirty, phi1)
	// Distinct (Education, Level) pairs in the dirty table:
	// (Bachelors,3) (Masters,4) (Masers,4) (HS-grad,9) (Masters,3)
	// (Bachelors,1) (Bachelers,3) = 7.
	if len(got) != 7 {
		t.Fatalf("DistinctProjections = %d patterns", len(got))
	}
}

func TestSelectTauFindsKnee(t *testing.T) {
	// Construct an instance where typo pairs are at distance ~0.07 and
	// unrelated pairs far away; the knee heuristic must pick a tau between.
	schema := dataset.Strings("X", "Y")
	rel, _ := dataset.FromRows(schema, [][]string{
		{"alphabet", "one"},
		{"alphabex", "one"}, // typo of the first
		{"zzzzzzzz", "two"},
		{"qqqqqqqq", "three"},
		{"mmmmmmmm", "four"},
	})
	f := fd.MustParse(schema, "X->Y")
	cfg := fd.DefaultDistConfig(rel)
	tau := fd.SelectTau(rel, f, cfg, fd.TauOptions{})
	typoDist := cfg.Dist(f, rel.Tuples[0], rel.Tuples[1])
	farDist := cfg.Dist(f, rel.Tuples[0], rel.Tuples[2])
	if tau < typoDist || tau >= farDist {
		t.Fatalf("tau = %v, want in [%v, %v)", tau, typoDist, farDist)
	}
}

func TestSelectTauFallbacks(t *testing.T) {
	schema := dataset.Strings("X", "Y")
	// One pattern only: no pairs, fallback applies.
	rel, _ := dataset.FromRows(schema, [][]string{{"a", "1"}, {"a", "1"}})
	f := fd.MustParse(schema, "X->Y")
	cfg := fd.DefaultDistConfig(rel)
	if tau := fd.SelectTau(rel, f, cfg, fd.TauOptions{Fallback: 0.25}); tau != 0.25 {
		t.Fatalf("fallback tau = %v", tau)
	}
	// Shrink scales the result.
	if tau := fd.SelectTau(rel, f, cfg, fd.TauOptions{Fallback: 0.25, Shrink: 0.5}); tau != 0.125 {
		t.Fatalf("shrunk tau = %v", tau)
	}
}

func TestSelectTauSampling(t *testing.T) {
	// Many patterns: sampling path must still return something sane.
	schema := dataset.Strings("X", "Y")
	rel := dataset.NewRelation(schema)
	for i := 0; i < 100; i++ {
		v := strings.Repeat("ab", 3) + string(rune('a'+i%26)) + string(rune('a'+(i/26)%26))
		if err := rel.Append(dataset.Tuple{v, "y"}); err != nil {
			t.Fatal(err)
		}
	}
	f := fd.MustParse(schema, "X->Y")
	cfg := fd.DefaultDistConfig(rel)
	tau := fd.SelectTau(rel, f, cfg, fd.TauOptions{MaxPatterns: 20, Seed: 7})
	if tau <= 0 || tau > 1 {
		t.Fatalf("sampled tau = %v", tau)
	}
}

func TestEditFlavorOSA(t *testing.T) {
	rel, _ := dataset.FromRows(dataset.Strings("X", "Y"), [][]string{{"ab", "1"}})
	cfg := fd.DefaultDistConfig(rel)
	// Levenshtein counts a transposition as two edits; OSA as one.
	if d := cfg.AttrDist(0, "boston", "bsoton"); d != 2.0/6 {
		t.Fatalf("Levenshtein transposition dist = %v", d)
	}
	cfg.Edit = fd.EditOSA
	if d := cfg.AttrDist(0, "boston", "bsoton"); d != 1.0/6 {
		t.Fatalf("OSA transposition dist = %v", d)
	}
	if d, ok := cfg.StringDistWithin("boston", "bsoton", 0.2); !ok || d != 1.0/6 {
		t.Fatalf("StringDistWithin OSA = %v, %v", d, ok)
	}
	if _, ok := cfg.StringDistWithin("boston", "dallas", 0.2); ok {
		t.Fatal("far pair accepted")
	}
}
