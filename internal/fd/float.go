package fd

// Eps is the shared tolerance for floating-point cost and distance
// comparisons. Repair costs are sums of normalized per-attribute distances
// in [0,1]; after a handful of additions two mathematically equal costs can
// differ in the last few bits, so every equality decision on costs or
// distances goes through FloatEq (and the greedy tie-breaking compares
// against Eps margins) instead of ==. The repairlint floateq analyzer
// enforces this repo-wide.
const Eps = 1e-9

// FloatEq reports whether two costs or distances are equal within Eps. It
// deliberately avoids == so that it is itself clean under the floateq
// analyzer; NaN compares unequal to everything, matching ==.
func FloatEq(a, b float64) bool {
	d := a - b
	return d <= Eps && d >= -Eps
}
