package fd_test

import (
	"testing"

	"ftrepair/internal/dataset"
	"ftrepair/internal/fd"
)

// FuzzParse ensures the FD parser never panics and that accepted specs
// round-trip through String back into an equivalent FD.
func FuzzParse(f *testing.F) {
	f.Add("City -> State")
	f.Add("phi: A,B -> C")
	f.Add("x:->")
	f.Add("A->B->C")
	f.Fuzz(func(t *testing.T, spec string) {
		if len(spec) > 256 {
			t.Skip()
		}
		schema := dataset.Strings("A", "B", "C", "City", "State")
		parsed, err := fd.Parse(schema, spec)
		if err != nil {
			return
		}
		if len(parsed.LHS) == 0 || len(parsed.RHS) == 0 {
			t.Fatalf("accepted FD with empty side: %q", spec)
		}
		for _, c := range parsed.Attrs() {
			if c < 0 || c >= schema.Len() {
				t.Fatalf("attribute out of range: %q -> %v", spec, parsed.Attrs())
			}
		}
	})
}

// FuzzParseCFD exercises the CFD spec parser.
func FuzzParseCFD(f *testing.F) {
	f.Add("A -> B | x, _")
	f.Add("A -> B | x, y ; _, _")
	f.Add("A -> B |")
	f.Fuzz(func(t *testing.T, spec string) {
		if len(spec) > 256 {
			t.Skip()
		}
		schema := dataset.Strings("A", "B", "C")
		c, err := fd.ParseCFD(schema, spec)
		if err != nil {
			return
		}
		if len(c.Tableau) == 0 {
			t.Fatalf("accepted CFD with empty tableau: %q", spec)
		}
		for _, row := range c.Tableau {
			if len(row.LHS) != len(c.Embedded.LHS) || len(row.RHS) != len(c.Embedded.RHS) {
				t.Fatalf("misaligned tableau accepted: %q", spec)
			}
		}
	})
}
