package fd

import "sort"

// Closure computes the attribute closure of attrs under the FDs (the
// Armstrong-axiom fixpoint): every attribute functionally determined by
// attrs. Returned sorted.
func Closure(attrs []int, fds []*FD) []int {
	in := make(map[int]bool, len(attrs))
	for _, a := range attrs {
		in[a] = true
	}
	for changed := true; changed; {
		changed = false
		for _, f := range fds {
			all := true
			for _, c := range f.LHS {
				if !in[c] {
					all = false
					break
				}
			}
			if !all {
				continue
			}
			for _, c := range f.RHS {
				if !in[c] {
					in[c] = true
					changed = true
				}
			}
		}
	}
	out := make([]int, 0, len(in))
	for c := range in {
		out = append(out, c)
	}
	sort.Ints(out)
	return out
}

// Implies reports whether the FDs logically imply f (f's RHS is inside the
// closure of f's LHS).
func Implies(fds []*FD, f *FD) bool {
	cl := Closure(f.LHS, fds)
	in := make(map[int]bool, len(cl))
	for _, c := range cl {
		in[c] = true
	}
	for _, c := range f.RHS {
		if !in[c] {
			return false
		}
	}
	return true
}

// Redundant returns the indices of FDs implied by the others — candidates
// for removal when validating a constraint set. (A redundant FD is not
// wrong, but under the FT semantics each FD adds detection surface and
// repair cost, so users often want a minimal set.)
func Redundant(fds []*FD) []int {
	var out []int
	for i := range fds {
		rest := make([]*FD, 0, len(fds)-1)
		rest = append(rest, fds[:i]...)
		rest = append(rest, fds[i+1:]...)
		if Implies(rest, fds[i]) {
			out = append(out, i)
		}
	}
	return out
}

// MinimalCover computes a minimal cover of the FDs: singleton right-hand
// sides, no extraneous LHS attributes, no redundant FDs. The result is
// logically equivalent to the input. FDs keep their source's Name with a
// "#k" suffix when split.
func MinimalCover(fds []*FD) []*FD {
	if len(fds) == 0 {
		return nil
	}
	schema := fds[0].Schema
	// 1. Split RHS into singletons.
	var work []*FD
	for _, f := range fds {
		for k, r := range f.RHS {
			g := &FD{Name: f.Name, Schema: schema, LHS: append([]int(nil), f.LHS...), RHS: []int{r}}
			if len(f.RHS) > 1 {
				g.Name = nameWithIndex(f.Name, k)
			}
			g.attrs = append(append([]int{}, g.LHS...), g.RHS...)
			work = append(work, g)
		}
	}
	// 2. Remove extraneous LHS attributes: drop a when LHS\{a} still
	// determines the RHS under the full set.
	for _, f := range work {
		for i := 0; i < len(f.LHS) && len(f.LHS) > 1; {
			reduced := append(append([]int{}, f.LHS[:i]...), f.LHS[i+1:]...)
			trial := &FD{Schema: schema, LHS: reduced, RHS: f.RHS}
			if Implies(work, trial) {
				f.LHS = reduced
				f.attrs = append(append([]int{}, f.LHS...), f.RHS...)
			} else {
				i++
			}
		}
	}
	// 3. Remove redundant FDs, scanning once (removal order can matter;
	// one deterministic pass gives a valid minimal cover).
	for i := 0; i < len(work); {
		rest := make([]*FD, 0, len(work)-1)
		rest = append(rest, work[:i]...)
		rest = append(rest, work[i+1:]...)
		if Implies(rest, work[i]) {
			work = rest
		} else {
			i++
		}
	}
	return work
}

func nameWithIndex(name string, k int) string {
	if name == "" {
		return ""
	}
	return name + "#" + string(rune('0'+k%10))
}
