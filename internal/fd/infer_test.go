package fd_test

import (
	"reflect"
	"testing"

	"ftrepair/internal/dataset"
	"ftrepair/internal/fd"
)

func inferFixture() (*dataset.Schema, []*fd.FD) {
	schema := dataset.Strings("A", "B", "C", "D", "E")
	fds := []*fd.FD{
		fd.MustParse(schema, "A->B"),
		fd.MustParse(schema, "B->C"),
		fd.MustParse(schema, "A,C->D"),
	}
	return schema, fds
}

func TestClosure(t *testing.T) {
	schema, fds := inferFixture()
	a := schema.MustIndex("A")
	got := fd.Closure([]int{a}, fds)
	// A+ = {A,B,C,D}: A->B, B->C, then A,C->D.
	want := []int{0, 1, 2, 3}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("Closure(A) = %v, want %v", got, want)
	}
	// E determines nothing.
	if got := fd.Closure([]int{4}, fds); !reflect.DeepEqual(got, []int{4}) {
		t.Fatalf("Closure(E) = %v", got)
	}
	// Empty attribute set stays empty.
	if got := fd.Closure(nil, fds); len(got) != 0 {
		t.Fatalf("Closure(nil) = %v", got)
	}
}

func TestImplies(t *testing.T) {
	schema, fds := inferFixture()
	if !fd.Implies(fds, fd.MustParse(schema, "A->D")) {
		t.Fatal("A->D should be implied")
	}
	if !fd.Implies(fds, fd.MustParse(schema, "A->C")) {
		t.Fatal("A->C should be implied (transitivity)")
	}
	if fd.Implies(fds, fd.MustParse(schema, "B->A")) {
		t.Fatal("B->A should not be implied")
	}
	if fd.Implies(fds, fd.MustParse(schema, "A->E")) {
		t.Fatal("A->E should not be implied")
	}
}

func TestRedundant(t *testing.T) {
	schema, fds := inferFixture()
	withRedundant := append(fds, fd.MustParse(schema, "A->C")) // implied
	got := fd.Redundant(withRedundant)
	if len(got) != 1 || got[0] != 3 {
		t.Fatalf("Redundant = %v, want [3]", got)
	}
	if got := fd.Redundant(fds); len(got) != 0 {
		t.Fatalf("minimal set flagged redundant: %v", got)
	}
}

func TestMinimalCover(t *testing.T) {
	schema := dataset.Strings("A", "B", "C", "D")
	fds := []*fd.FD{
		// A,B -> C where B is extraneous (A -> B holds), plus a compound
		// RHS to split, plus a redundant FD.
		fd.MustParse(schema, "A->B"),
		fd.MustParse(schema, "f2: A,B -> C,D"),
		fd.MustParse(schema, "A->C"), // redundant once A->C emerges from f2
	}
	cover := fd.MinimalCover(fds)
	// Every cover FD has a singleton RHS.
	for _, f := range cover {
		if len(f.RHS) != 1 {
			t.Fatalf("cover FD %s has compound RHS", f)
		}
	}
	// The cover is equivalent: it implies all originals and vice versa.
	for _, f := range fds {
		if !fd.Implies(cover, f) {
			t.Fatalf("cover does not imply %s", f)
		}
	}
	for _, f := range cover {
		if !fd.Implies(fds, f) {
			t.Fatalf("original set does not imply cover FD %s", f)
		}
	}
	// The extraneous B must be gone: no cover FD has a 2-attribute LHS.
	for _, f := range cover {
		if len(f.LHS) != 1 {
			t.Fatalf("cover FD %s kept an extraneous LHS attribute", f)
		}
	}
	// No redundancy remains.
	if got := fd.Redundant(cover); len(got) != 0 {
		t.Fatalf("cover still redundant at %v", got)
	}
	if fd.MinimalCover(nil) != nil {
		t.Fatal("empty input should produce nil cover")
	}
}

func TestMinimalCoverOnWorkloadFDs(t *testing.T) {
	// The HOSP and Tax constraint sets contain one deliberate redundancy
	// each? They should at least round-trip through MinimalCover as an
	// equivalent set.
	schema, fds := inferFixture()
	_ = schema
	cover := fd.MinimalCover(fds)
	if len(cover) != 3 {
		t.Fatalf("cover size = %d", len(cover))
	}
}
