package fd

import (
	"sync"

	"ftrepair/internal/dataset"
	"ftrepair/internal/strsim"
)

// PairMatcher evaluates the Eq-2 distance of one fixed tuple against a
// stream of candidate tuples. The hot detection loops — all-pairs ranging,
// per-bucket indexed verification, incremental candidate probing — hold one
// tuple fixed across hundreds of comparisons, so the fixed side's
// bit-parallel equivalence tables (strsim.Matcher) are built once per
// column and reused for every candidate that misses the distance plane and
// cache. Results are identical to DistConfig.DistWithin; only the kernel
// preprocessing is amortized.
//
// Matchers apply to the Levenshtein flavor only (the bit-parallel kernels
// implement unrestricted edit distance); other flavors run exactly as
// before. A PairMatcher is not safe for concurrent use: each worker
// acquires its own and releases it when the stream ends.
type PairMatcher struct {
	cfg *DistConfig
	f   *FD
	t1  dataset.Tuple
	use bool              // Levenshtein flavor: matchers apply
	mts []*strsim.Matcher // per column, bound lazily on first miss
}

var pairMatcherPool = sync.Pool{New: func() any { return new(PairMatcher) }}

// AcquirePairMatcher returns a pooled PairMatcher holding t1 fixed for the
// FD's attributes. Release it when the candidate stream is exhausted.
func (cfg *DistConfig) AcquirePairMatcher(f *FD, t1 dataset.Tuple) *PairMatcher {
	pm := pairMatcherPool.Get().(*PairMatcher)
	pm.cfg = cfg
	pm.f = f
	pm.t1 = t1
	pm.use = cfg.Edit == EditLevenshtein
	if n := cfg.Schema.Len(); cap(pm.mts) < n {
		pm.mts = make([]*strsim.Matcher, n)
	} else {
		pm.mts = pm.mts[:n]
	}
	return pm
}

// Release returns the PairMatcher and its column matchers to their pools.
func (pm *PairMatcher) Release() {
	for i, mt := range pm.mts {
		if mt != nil {
			mt.Release()
			pm.mts[i] = nil
		}
	}
	pm.cfg = nil
	pm.f = nil
	pm.t1 = nil
	pairMatcherPool.Put(pm)
}

// matcher returns the column's matcher bound to a (== t1[col]), building it
// on first use; nil when matchers do not apply to the configured flavor.
func (pm *PairMatcher) matcher(col int, a string) *strsim.Matcher {
	if !pm.use {
		return nil
	}
	mt := pm.mts[col]
	if mt == nil {
		mt = strsim.AcquireMatcher(a)
		pm.mts[col] = mt
	}
	return mt
}

// DistWithin is DistConfig.DistWithin(f, tau, t1, t2) with the fixed side's
// prebuilt tables.
func (pm *PairMatcher) DistWithin(tau float64, t2 dataset.Tuple) (float64, bool) {
	return pm.cfg.distWithin(pm.f, tau, pm.t1, t2, pm)
}

// Dist is DistConfig.Dist(f, t1, t2) with the fixed side's prebuilt tables.
func (pm *PairMatcher) Dist(t2 dataset.Tuple) float64 {
	var dl, dr float64
	for _, c := range pm.f.LHS {
		dl += pm.attrDist(c, t2)
	}
	for _, c := range pm.f.RHS {
		dr += pm.attrDist(c, t2)
	}
	return pm.cfg.WL*dl + pm.cfg.WR*dr
}

// RepairDist is DistConfig.RepairDist(col, t1[col], t2[col]) with the fixed
// side's prebuilt tables.
func (pm *PairMatcher) RepairDist(col int, t2 dataset.Tuple) float64 {
	d := pm.attrDist(col, t2)
	if pm.cfg.Conf != nil {
		d *= pm.cfg.Conf[col]
	}
	return d
}

func (pm *PairMatcher) attrDist(col int, t2 dataset.Tuple) float64 {
	a, b := pm.t1[col], t2[col]
	if a == b {
		return 0
	}
	var mt *strsim.Matcher
	if pm.cfg.Schema.Attr(col).Type != dataset.Numeric {
		mt = pm.matcher(col, a)
	}
	return pm.cfg.attrDist(col, a, b, mt)
}

// RepairScorer evaluates per-attribute repair costs of one fixed tuple
// against streamed repair candidates — the target-tree nearest scans, which
// call a distance function column by column with the repaired tuple's value
// always on the left. Wrapping RepairDist, it reuses the fixed side's
// bit-parallel tables on cache misses and falls back to the plain path
// whenever the left value is not the fixed tuple's (interior tree nodes
// probe representative values too). Results are identical to RepairDist.
//
// Not safe for concurrent use; acquire one per scan and release it after.
type RepairScorer struct {
	cfg *DistConfig
	t   dataset.Tuple
	use bool
	mts []*strsim.Matcher
}

var repairScorerPool = sync.Pool{New: func() any { return new(RepairScorer) }}

// AcquireRepairScorer returns a pooled scorer holding t fixed on the left.
func (cfg *DistConfig) AcquireRepairScorer(t dataset.Tuple) *RepairScorer {
	rs := repairScorerPool.Get().(*RepairScorer)
	rs.cfg = cfg
	rs.t = t
	rs.use = cfg.Edit == EditLevenshtein
	if n := cfg.Schema.Len(); cap(rs.mts) < n {
		rs.mts = make([]*strsim.Matcher, n)
	} else {
		rs.mts = rs.mts[:n]
	}
	return rs
}

// Release returns the scorer and its column matchers to their pools.
func (rs *RepairScorer) Release() {
	for i, mt := range rs.mts {
		if mt != nil {
			mt.Release()
			rs.mts[i] = nil
		}
	}
	rs.cfg = nil
	rs.t = nil
	repairScorerPool.Put(rs)
}

// RepairDist is DistConfig.RepairDist with the fixed tuple's prebuilt
// tables; it has the tree scans' DistFunc shape.
func (rs *RepairScorer) RepairDist(col int, a, b string) float64 {
	var mt *strsim.Matcher
	if rs.use && a != b && a == rs.t[col] && rs.cfg.Schema.Attr(col).Type != dataset.Numeric {
		mt = rs.mts[col]
		if mt == nil {
			mt = strsim.AcquireMatcher(a)
			rs.mts[col] = mt
		}
	}
	d := rs.cfg.attrDist(col, a, b, mt)
	if rs.cfg.Conf != nil {
		d *= rs.cfg.Conf[col]
	}
	return d
}
