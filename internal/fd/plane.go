package fd

import (
	"sync/atomic"

	"ftrepair/internal/dataset"
)

// distPlane memoizes the integer edit distances of one column's interned
// value pairs in a flat triangular array: cell(a, b) with a < b lives at
// b*(b-1)/2 + a. Reads are a single atomic load — no hashing, no locks —
// which is what the 99%-hit distance paths of graph construction pay per
// pair. Writes are improve-only compare-and-swap upgrades, so concurrent
// build workers race benignly: a lost race leaves a weaker (still correct)
// entry, never a wrong one, and cached runs stay bit-identical to uncached
// ones at any worker count.
//
// Cell encoding (uint32):
//
//	0                  — empty
//	planeExactBit | k  — the exact integer edit distance is k
//	L + 1              — lower bound: the distance strictly exceeds L, the
//	                     maxDist of a rejecting bounded evaluation
//
// The normalized distance is reconstructed as float64(k) / float64(m) with
// m the longer rune length from the dictionary — the exact expression
// NormalizedEdit/NormalizedOSA evaluate, so reconstruction is bitwise equal
// to recomputation. Storing the integer rather than a rounded float is what
// keeps the repair output bit-identical (a float32 cell would perturb the
// last bits of cost sums). A bound is consulted in integer space: a bounded
// query with budget t rejects outright when its int(t*m) does not exceed a
// stored L.
type distPlane struct {
	dict  *dataset.Dict
	cells []atomic.Uint32
}

const (
	planeExactBit = uint32(1) << 31
	// planeMaxCells caps one column's triangular cell count (pairs of
	// distinct values); 1<<22 cells is 16 MiB. Columns with larger active
	// domains keep using the sharded map.
	planeMaxCells = 1 << 22
	// planeTotalCells caps the summed cell count across all columns of one
	// cache, bounding a config's plane memory at 32 MiB.
	planeTotalCells = 1 << 23
)

// planeCells is the triangular size for n distinct values.
func planeCells(n int) int { return n * (n - 1) / 2 }

// newDistPlane allocates the empty plane over a column dictionary.
func newDistPlane(dict *dataset.Dict) *distPlane {
	return &distPlane{dict: dict, cells: make([]atomic.Uint32, planeCells(dict.Len()))}
}

// cell addresses the pair's triangular slot; codes must differ.
func (p *distPlane) cell(a, b int32) *atomic.Uint32 {
	if a > b {
		a, b = b, a
	}
	return &p.cells[int(b)*(int(b)-1)/2+int(a)]
}

// load fetches the raw cell value (0 when the pair was never evaluated).
func (p *distPlane) load(a, b int32) uint32 { return p.cell(a, b).Load() }

// storeExact records the exact integer distance k, superseding any bound.
// An exact value is a pure function of the pair, so once a cell is exact it
// never changes.
func (p *distPlane) storeExact(a, b int32, k int) {
	c := p.cell(a, b)
	v := planeExactBit | uint32(k)
	for {
		old := c.Load()
		if old&planeExactBit != 0 || c.CompareAndSwap(old, v) {
			return
		}
	}
}

// storeBound records that the pair's distance strictly exceeds L. Exact
// entries and stronger (larger) bounds are kept.
func (p *distPlane) storeBound(a, b int32, L int) {
	c := p.cell(a, b)
	v := uint32(L) + 1
	for {
		old := c.Load()
		if old&planeExactBit != 0 || old >= v || c.CompareAndSwap(old, v) {
			return
		}
	}
}

// occupied counts non-empty cells, for DistCache.Len.
func (p *distPlane) occupied() int {
	n := 0
	for i := range p.cells {
		if p.cells[i].Load() != 0 {
			n++
		}
	}
	return n
}
