package fd_test

import (
	"math/rand"
	"testing"

	"ftrepair/internal/dataset"
	"ftrepair/internal/fd"
	"ftrepair/internal/gen"
)

// TestPlaneDistancesBitwiseEqual drives the distance-plane path with the
// relation's own (interned) values and checks bitwise equality against an
// uncached config, for both unbounded and bounded queries, across the edit
// flavors the planes serve.
func TestPlaneDistancesBitwiseEqual(t *testing.T) {
	dirty, _ := gen.Citizens()
	f := gen.CitizensFDs(dirty.Schema)[1] // City -> State
	for _, flavor := range []fd.EditFlavor{fd.EditLevenshtein, fd.EditOSA} {
		planed := fd.DefaultDistConfig(dirty)
		planed.Edit = flavor
		planed.AttachPlanes()
		bare := fd.DefaultDistConfig(dirty)
		bare.Edit = flavor
		bare.Cache = nil
		col := 3                          // City: a string attribute
		for pass := 0; pass < 2; pass++ { // second pass answers from the plane
			for _, t1 := range dirty.Tuples {
				for _, t2 := range dirty.Tuples {
					a, b := t1[col], t2[col]
					if got, want := planed.AttrDist(col, a, b), bare.AttrDist(col, a, b); got != want {
						t.Fatalf("flavor %d AttrDist(%q,%q) = %v, uncached %v", flavor, a, b, got, want)
					}
					for _, tau := range []float64{0, 0.05, 0.2, 0.5} {
						d1, ok1 := planed.DistWithin(f, tau, t1, t2)
						d2, ok2 := bare.DistWithin(f, tau, t1, t2)
						if ok1 != ok2 || d1 != d2 {
							t.Fatalf("flavor %d tau %v (%q,%q): plane (%v,%v) vs uncached (%v,%v)",
								flavor, tau, a, b, d1, ok1, d2, ok2)
						}
					}
				}
			}
		}
		if h, _ := planed.Cache.Counters(); h == 0 {
			t.Fatalf("flavor %d: no cache hits — plane never engaged", flavor)
		}
	}
}

// TestPairMatcherAgrees streams candidate tuples through PairMatchers and
// checks exact agreement with the plain DistWithin/Dist paths, for every
// flavor (matchers engage on Levenshtein only but must be transparent
// everywhere) and with the cache warm and cold.
func TestPairMatcherAgrees(t *testing.T) {
	dirty, _ := gen.Citizens()
	fds := gen.CitizensFDs(dirty.Schema)
	for _, flavor := range []fd.EditFlavor{fd.EditLevenshtein, fd.EditOSA, fd.EditJaccard} {
		cfg := fd.DefaultDistConfig(dirty)
		cfg.Edit = flavor
		cfg.AttachPlanes()
		ref := fd.DefaultDistConfig(dirty)
		ref.Edit = flavor
		ref.AttachPlanes()
		for _, f := range fds {
			for i := range dirty.Tuples {
				pm := cfg.AcquirePairMatcher(f, dirty.Tuples[i])
				for j := range dirty.Tuples {
					for _, tau := range []float64{0.05, 0.3} {
						d1, ok1 := pm.DistWithin(tau, dirty.Tuples[j])
						d2, ok2 := ref.DistWithin(f, tau, dirty.Tuples[i], dirty.Tuples[j])
						if ok1 != ok2 || d1 != d2 {
							t.Fatalf("flavor %d FD %v tau %v tuples %d,%d: matcher (%v,%v) vs plain (%v,%v)",
								flavor, f, tau, i, j, d1, ok1, d2, ok2)
						}
					}
					if d1, d2 := pm.Dist(dirty.Tuples[j]), ref.Dist(f, dirty.Tuples[i], dirty.Tuples[j]); d1 != d2 {
						t.Fatalf("flavor %d FD %v tuples %d,%d: matcher Dist %v vs plain %v", flavor, f, i, j, d1, d2)
					}
				}
				pm.Release()
			}
		}
	}
}

// TestRepairScorerAgrees checks the scorer against RepairDist for fixed-side,
// swapped, and foreign left values (tree scans probe all three shapes), with
// confidences set so the scaling path is covered too.
func TestRepairScorerAgrees(t *testing.T) {
	dirty, _ := gen.Citizens()
	cfg := fd.DefaultDistConfig(dirty)
	cfg.SetConfidence(3, 2.5)
	ref := fd.DefaultDistConfig(dirty)
	ref.SetConfidence(3, 2.5)
	rng := rand.New(rand.NewSource(9))
	for i := range dirty.Tuples {
		tu := dirty.Tuples[i]
		rs := cfg.AcquireRepairScorer(tu)
		for trial := 0; trial < 30; trial++ {
			other := dirty.Tuples[rng.Intn(len(dirty.Tuples))]
			for col := range tu {
				if got, want := rs.RepairDist(col, tu[col], other[col]), ref.RepairDist(col, tu[col], other[col]); got != want {
					t.Fatalf("fixed-left RepairDist(%d,%q,%q) = %v, want %v", col, tu[col], other[col], got, want)
				}
				if got, want := rs.RepairDist(col, other[col], tu[col]), ref.RepairDist(col, other[col], tu[col]); got != want {
					t.Fatalf("swapped RepairDist(%d,%q,%q) = %v, want %v", col, other[col], tu[col], got, want)
				}
			}
		}
		rs.Release()
	}
}

// TestColumnDict covers interning basics: first-occurrence codes, memoized
// rune lengths, and misses for foreign values.
func TestColumnDict(t *testing.T) {
	schema := dataset.Strings("A")
	rel, err := dataset.FromRows(schema, [][]string{{"bb"}, {"aa"}, {"bb"}, {"日本語"}})
	if err != nil {
		t.Fatal(err)
	}
	d := rel.ColumnDict(0)
	if d.Len() != 3 {
		t.Fatalf("Len = %d, want 3", d.Len())
	}
	for i, want := range []string{"bb", "aa", "日本語"} {
		c, ok := d.Code(want)
		if !ok || c != int32(i) {
			t.Fatalf("Code(%q) = %d,%v, want %d", want, c, ok, i)
		}
		if d.Value(c) != want {
			t.Fatalf("Value(%d) = %q, want %q", c, d.Value(c), want)
		}
	}
	if l := d.RuneLen(2); l != 3 {
		t.Fatalf("RuneLen(日本語) = %d, want 3", l)
	}
	if _, ok := d.Code("zz"); ok {
		t.Fatal("Code for foreign value unexpectedly interned")
	}
}
