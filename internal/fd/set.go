package fd

import (
	"fmt"
	"sort"
)

// Set is a set Σ of FDs with a per-FD FT-violation threshold τ.
type Set struct {
	FDs []*FD
	Tau []float64 // aligned with FDs
}

// NewSet pairs FDs with thresholds. A single threshold is broadcast to every
// FD.
func NewSet(fds []*FD, taus ...float64) (*Set, error) {
	if len(fds) == 0 {
		return nil, fmt.Errorf("fd: empty constraint set")
	}
	s := &Set{FDs: fds}
	switch len(taus) {
	case 0:
		return nil, fmt.Errorf("fd: no thresholds given")
	case 1:
		s.Tau = make([]float64, len(fds))
		for i := range s.Tau {
			s.Tau[i] = taus[0]
		}
	case len(fds):
		s.Tau = append([]float64(nil), taus...)
	default:
		return nil, fmt.Errorf("fd: %d thresholds for %d FDs", len(taus), len(fds))
	}
	for i, t := range s.Tau {
		if t < 0 {
			return nil, fmt.Errorf("fd: negative threshold %v for %s", t, fds[i])
		}
	}
	return s, nil
}

// Components partitions the FDs of Σ into connected components of the FD
// graph, in which two FDs are adjacent when they share an attribute (§4.1).
// Components can be repaired independently (Theorem 5). Each component is a
// sorted slice of indices into s.FDs.
func (s *Set) Components() [][]int {
	n := len(s.FDs)
	parent := make([]int, n)
	for i := range parent {
		parent[i] = i
	}
	var find func(int) int
	find = func(x int) int {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	union := func(a, b int) { parent[find(a)] = find(b) }
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if s.FDs[i].SharesAttrs(s.FDs[j]) {
				union(i, j)
			}
		}
	}
	groups := make(map[int][]int)
	for i := 0; i < n; i++ {
		r := find(i)
		groups[r] = append(groups[r], i)
	}
	var out [][]int
	for _, g := range groups {
		sort.Ints(g)
		out = append(out, g)
	}
	sort.Slice(out, func(a, b int) bool { return out[a][0] < out[b][0] })
	return out
}

// Subset returns a new Set restricted to the FDs at the given indices.
func (s *Set) Subset(idx []int) *Set {
	sub := &Set{FDs: make([]*FD, len(idx)), Tau: make([]float64, len(idx))}
	for i, j := range idx {
		sub.FDs[i] = s.FDs[j]
		sub.Tau[i] = s.Tau[j]
	}
	return sub
}
