package fd

import (
	"math/rand"
	"sort"

	"ftrepair/internal/dataset"
)

// TauOptions controls automatic threshold selection.
type TauOptions struct {
	// MaxPatterns caps the number of distinct projections considered; when
	// exceeded, a seeded sample is used. Zero means 512.
	MaxPatterns int
	// Seed drives the sampling RNG, for reproducibility.
	Seed int64
	// Shrink scales the selected threshold down (0 < Shrink <= 1), for
	// precision-oriented deployments; the paper notes that "if precision
	// rather than recall is regarded as the more important criterion, we can
	// conservatively decrease threshold τ". Zero means 1 (no shrink).
	Shrink float64
	// Fallback is returned when no knee is found (e.g. all pairs
	// equidistant). Zero means 0.2.
	Fallback float64
}

func (o TauOptions) withDefaults() TauOptions {
	if o.MaxPatterns <= 0 {
		o.MaxPatterns = 512
	}
	if o.Shrink <= 0 || o.Shrink > 1 {
		o.Shrink = 1
	}
	if o.Fallback <= 0 {
		o.Fallback = 0.2
	}
	return o
}

// SelectTau implements the paper's threshold heuristic: compute pairwise
// distances of distinct projections, sort ascending, and pick the point
// where the gap between adjacent distances "suddenly becomes large",
// returning the smaller value as τ. The sudden-gap point is chosen as the
// adjacent pair with the largest relative jump within the lower half of the
// distance distribution (true violations — typos and swapped values — sit
// near zero; the bulk of unrelated pairs sits high).
func SelectTau(rel *dataset.Relation, f *FD, cfg *DistConfig, opts TauOptions) float64 {
	opts = opts.withDefaults()
	patterns := DistinctProjections(rel, f)
	if len(patterns) > opts.MaxPatterns {
		rng := rand.New(rand.NewSource(opts.Seed))
		rng.Shuffle(len(patterns), func(i, j int) {
			patterns[i], patterns[j] = patterns[j], patterns[i]
		})
		patterns = patterns[:opts.MaxPatterns]
	}
	var dists []float64
	for i := 0; i < len(patterns); i++ {
		for j := i + 1; j < len(patterns); j++ {
			dists = append(dists, cfg.Dist(f, patterns[i], patterns[j]))
		}
	}
	if len(dists) < 2 {
		return opts.Fallback * opts.Shrink
	}
	sort.Float64s(dists)
	// Scan adjacent gaps in the lower half for the largest relative jump.
	const eps = 1e-6
	bestScore := 0.0
	bestTau := -1.0
	half := len(dists) / 2
	if half < 1 {
		half = 1
	}
	for i := 0; i < half && i+1 < len(dists); i++ {
		gap := dists[i+1] - dists[i]
		if gap <= 0 {
			continue
		}
		score := gap / (dists[i] + eps)
		if score > bestScore {
			bestScore = score
			bestTau = dists[i]
		}
	}
	if bestTau < 0 || bestScore < 2 { // no sudden gap: distances are smooth
		return opts.Fallback * opts.Shrink
	}
	if FloatEq(bestTau, 0) {
		// All low-end pairs were identical projections (shouldn't happen
		// with distinct patterns, but weights can zero out a side).
		return opts.Fallback * opts.Shrink
	}
	return bestTau * opts.Shrink
}

// Separation reports how an FD's patterns behave under a threshold.
// MergeMass is the key number: the fraction of (sampled) tuples an FT
// repair of this FD alone would rewrite — per conflict component of the
// pattern graph, everything outside the component's dominant pattern. For
// an FT-safe FD this approximates the data's error rate; for an FD whose
// legitimate patterns sit within tau of each other (e.g. a discovered FD
// with near-identical codes in the LHS) it approaches the table size,
// flagging the FD as unsafe to repair with at this threshold.
type Separation struct {
	// Patterns sampled, Conflicts among them, and the pair rate.
	Patterns  int
	Pairs     int
	Conflicts int
	Rate      float64
	// MergeMass is the estimated rewritten-tuple fraction (see above).
	MergeMass float64
}

// SeparationOptions tunes SeparationCheck.
type SeparationOptions struct {
	// MaxPatterns caps the patterns considered, sampling deterministically
	// by descending multiplicity (default 512).
	MaxPatterns int
}

// SeparationCheck measures pattern separation of f over rel at tau.
func SeparationCheck(rel *dataset.Relation, f *FD, cfg *DistConfig, tau float64, opts SeparationOptions) Separation {
	if opts.MaxPatterns <= 0 {
		opts.MaxPatterns = 512
	}
	type pat struct {
		rep  dataset.Tuple
		mult int
	}
	byKey := make(map[string]*pat)
	var pats []*pat
	for _, t := range rel.Tuples {
		k := t.Key(f.Attrs())
		p, ok := byKey[k]
		if !ok {
			p = &pat{rep: t}
			byKey[k] = p
			pats = append(pats, p)
		}
		p.mult++
	}
	sort.SliceStable(pats, func(i, j int) bool { return pats[i].mult > pats[j].mult })
	if len(pats) > opts.MaxPatterns {
		pats = pats[:opts.MaxPatterns]
	}
	sep := Separation{Patterns: len(pats)}
	// Conflict graph among sampled patterns, with union-find components.
	parent := make([]int, len(pats))
	for i := range parent {
		parent[i] = i
	}
	var find func(int) int
	find = func(x int) int {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	for i := 0; i < len(pats); i++ {
		for j := i + 1; j < len(pats); j++ {
			sep.Pairs++
			if _, within := cfg.DistWithin(f, tau, pats[i].rep, pats[j].rep); within {
				sep.Conflicts++
				parent[find(i)] = find(j)
			}
		}
	}
	if sep.Pairs > 0 {
		sep.Rate = float64(sep.Conflicts) / float64(sep.Pairs)
	}
	// Merge mass: per component, every tuple outside the dominant pattern
	// would be rewritten.
	compTotal := make(map[int]int)
	compMax := make(map[int]int)
	sampled := 0
	for i, p := range pats {
		r := find(i)
		compTotal[r] += p.mult
		if p.mult > compMax[r] {
			compMax[r] = p.mult
		}
		sampled += p.mult
	}
	rewritten := 0
	for r, total := range compTotal {
		rewritten += total - compMax[r]
	}
	if sampled > 0 {
		sep.MergeMass = float64(rewritten) / float64(sampled)
	}
	return sep
}
