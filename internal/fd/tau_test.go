package fd_test

import (
	"fmt"
	"testing"

	"ftrepair/internal/dataset"
	"ftrepair/internal/fd"
	"ftrepair/internal/gen"
)

func TestSeparationCheckSafeFD(t *testing.T) {
	// A well-separated FD: merge mass equals the planted error fraction.
	schema := dataset.Strings("Zip", "City")
	rel := dataset.NewRelation(schema)
	locs := [][2]string{{"11111", "Springfield"}, {"55555", "Lakeside"}, {"99999", "Hillview"}}
	for i := 0; i < 30; i++ {
		l := locs[i%3]
		if err := rel.Append(dataset.Tuple{l[0], l[1]}); err != nil {
			t.Fatal(err)
		}
	}
	// One typo tuple.
	if err := rel.Append(dataset.Tuple{"11112", "Springfield"}); err != nil {
		t.Fatal(err)
	}
	f := fd.MustParse(schema, "Zip->City")
	cfg, err := fd.NewDistConfig(rel, 0.7, 0.3)
	if err != nil {
		t.Fatal(err)
	}
	sep := fd.SeparationCheck(rel, f, cfg, 0.3, fd.SeparationOptions{})
	if sep.Patterns != 4 {
		t.Fatalf("patterns = %d", sep.Patterns)
	}
	if sep.Conflicts != 1 {
		t.Fatalf("conflicts = %d (typo vs its source)", sep.Conflicts)
	}
	// Merge mass: the one typo tuple out of 31.
	if want := 1.0 / 31; sep.MergeMass != want {
		t.Fatalf("MergeMass = %v, want %v", sep.MergeMass, want)
	}
}

func TestSeparationCheckUnsafeFD(t *testing.T) {
	// Near-identical codes in the LHS: every pattern conflicts, merge mass
	// approaches 1.
	schema := dataset.Strings("Code", "City")
	rel := dataset.NewRelation(schema)
	for i := 0; i < 20; i++ {
		code := fmt.Sprintf("MC-00%d", i%10)
		if err := rel.Append(dataset.Tuple{code, "X"}); err != nil {
			t.Fatal(err)
		}
	}
	f := fd.MustParse(schema, "Code->City")
	cfg, err := fd.NewDistConfig(rel, 0.7, 0.3)
	if err != nil {
		t.Fatal(err)
	}
	sep := fd.SeparationCheck(rel, f, cfg, 0.3, fd.SeparationOptions{})
	if sep.MergeMass < 0.8 {
		t.Fatalf("MergeMass = %v, want ~0.9 (one dominant pattern survives)", sep.MergeMass)
	}
	if sep.Rate == 0 {
		t.Fatal("no conflicts detected on near-identical codes")
	}
}

func TestSeparationCheckDiscriminatesOnHOSP(t *testing.T) {
	clean := gen.HOSP{Seed: 31}.Generate(1000)
	fds := gen.HOSPFDs(clean.Schema)
	dirty, _ := gen.Inject(clean, fds, 0.04, 32)
	cfg, err := fd.NewDistConfig(dirty, 0.7, 0.3)
	if err != nil {
		t.Fatal(err)
	}
	// Every planted FD is FT-safe at the benchmark threshold.
	for _, f := range fds {
		sep := fd.SeparationCheck(dirty, f, cfg, 0.3, fd.SeparationOptions{})
		if sep.MergeMass > 0.15 {
			t.Errorf("%s flagged unsafe: merge mass %.3f", f, sep.MergeMass)
		}
	}
	// An FD with a code-embedding LHS is flagged.
	bad := fd.MustParse(clean.Schema, "StateAvg -> City")
	sep := fd.SeparationCheck(dirty, bad, cfg, 0.3, fd.SeparationOptions{})
	if sep.MergeMass < 0.3 {
		t.Errorf("StateAvg->City merge mass %.3f, expected large", sep.MergeMass)
	}
}

func TestSeparationCheckSampling(t *testing.T) {
	clean := gen.Tax{Seed: 33}.Generate(800)
	f := gen.TaxFDs(clean.Schema)[0]
	cfg, err := fd.NewDistConfig(clean, 0.7, 0.3)
	if err != nil {
		t.Fatal(err)
	}
	sep := fd.SeparationCheck(clean, f, cfg, 0.3, fd.SeparationOptions{MaxPatterns: 5})
	if sep.Patterns != 5 {
		t.Fatalf("sampled patterns = %d", sep.Patterns)
	}
	// Clean, well-separated data: nothing merges.
	if sep.MergeMass != 0 || sep.Conflicts != 0 {
		t.Fatalf("clean data: %+v", sep)
	}
}
