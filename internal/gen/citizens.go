// Package gen provides the workloads used in the paper's evaluation: the
// running Citizens example (Table 1), synthetic HOSP- and Tax-like
// relations with the paper's FD structure, and the noise model (LHS/RHS
// active-domain errors and typos in equal proportions).
package gen

import (
	"ftrepair/internal/dataset"
	"ftrepair/internal/fd"
)

// CitizensSchema is the schema of the paper's Table 1.
func CitizensSchema() *dataset.Schema {
	return dataset.MustSchema(
		dataset.Attribute{Name: "Name"},
		dataset.Attribute{Name: "Education"},
		dataset.Attribute{Name: "Level", Type: dataset.Numeric},
		dataset.Attribute{Name: "City"},
		dataset.Attribute{Name: "Street"},
		dataset.Attribute{Name: "District"},
		dataset.Attribute{Name: "State"},
	)
}

// Citizens returns the dirty instance of Table 1 and its ground-truth
// repair. Errors (per the paper): t4[State], t5[City], t6[Education],
// t8[Level], t8[City], t9[Level], t10[Education], t10[State]. Rows are
// zero-indexed (t1 is row 0).
func Citizens() (dirty, clean *dataset.Relation) {
	schema := CitizensSchema()
	dirtyRows := [][]string{
		{"Janaina", "Bachelors", "3", "New York", "Main", "Manhattan", "NY"},
		{"Aloke", "Bachelors", "3", "New York", "Main", "Manhattan", "NY"},
		{"Jieyu", "Bachelors", "3", "New York", "Western", "Queens", "NY"},
		{"Paulo", "Masters", "4", "New York", "Western", "Queens", "MA"},
		{"Zoe", "Masters", "4", "Boston", "Main", "Manhattan", "NY"},
		{"Gara", "Masers", "4", "Boston", "Main", "Financial", "MA"},
		{"Mitchell", "HS-grad", "9", "Boston", "Main", "Financial", "MA"},
		{"Pavol", "Masters", "3", "Boton", "Arlingto", "Brookside", "MA"},
		{"Thilo", "Bachelors", "1", "Boston", "Arlingto", "Brookside", "MA"},
		{"Nenad", "Bachelers", "3", "Boston", "Arlingto", "Brookside", "NY"},
	}
	cleanRows := [][]string{
		{"Janaina", "Bachelors", "3", "New York", "Main", "Manhattan", "NY"},
		{"Aloke", "Bachelors", "3", "New York", "Main", "Manhattan", "NY"},
		{"Jieyu", "Bachelors", "3", "New York", "Western", "Queens", "NY"},
		{"Paulo", "Masters", "4", "New York", "Western", "Queens", "NY"},
		{"Zoe", "Masters", "4", "New York", "Main", "Manhattan", "NY"},
		{"Gara", "Masters", "4", "Boston", "Main", "Financial", "MA"},
		{"Mitchell", "HS-grad", "9", "Boston", "Main", "Financial", "MA"},
		{"Pavol", "Masters", "4", "Boston", "Arlingto", "Brookside", "MA"},
		{"Thilo", "Bachelors", "3", "Boston", "Arlingto", "Brookside", "MA"},
		{"Nenad", "Bachelors", "3", "Boston", "Arlingto", "Brookside", "MA"},
	}
	d, err := dataset.FromRows(schema, dirtyRows)
	if err != nil {
		panic(err)
	}
	c, err := dataset.FromRows(schema, cleanRows)
	if err != nil {
		panic(err)
	}
	return d, c
}

// CitizensFDs returns the three FDs of the running example:
// φ1: Education→Level, φ2: City→State, φ3: City,Street→District.
func CitizensFDs(schema *dataset.Schema) []*fd.FD {
	return []*fd.FD{
		fd.MustParse(schema, "phi1: Education -> Level"),
		fd.MustParse(schema, "phi2: City -> State"),
		fd.MustParse(schema, "phi3: City, Street -> District"),
	}
}
