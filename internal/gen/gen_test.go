package gen_test

import (
	"testing"

	"ftrepair/internal/dataset"
	"ftrepair/internal/fd"
	"ftrepair/internal/gen"
)

func TestCitizensFixture(t *testing.T) {
	dirty, clean := gen.Citizens()
	if dirty.Len() != 10 || clean.Len() != 10 {
		t.Fatalf("lengths: %d, %d", dirty.Len(), clean.Len())
	}
	cells, err := dataset.Diff(dirty, clean)
	if err != nil {
		t.Fatal(err)
	}
	if len(cells) != 8 {
		t.Fatalf("dirty/clean differ in %d cells, want 8 (the paper's highlighted errors)", len(cells))
	}
	fds := gen.CitizensFDs(dirty.Schema)
	if len(fds) != 3 {
		t.Fatalf("fds = %d", len(fds))
	}
	// The clean table satisfies every FD classically.
	for _, f := range fds {
		if !fd.IsConsistent(clean, f) {
			t.Fatalf("clean Citizens violates %s", f)
		}
	}
}

func TestHOSPGeneratorConsistent(t *testing.T) {
	rel := gen.HOSP{Seed: 1}.Generate(2000)
	if rel.Len() != 2000 {
		t.Fatalf("len = %d", rel.Len())
	}
	fds := gen.HOSPFDs(rel.Schema)
	if len(fds) != 9 {
		t.Fatalf("fds = %d", len(fds))
	}
	for _, f := range fds {
		if !fd.IsConsistent(rel, f) {
			t.Fatalf("generated HOSP violates %s", f)
		}
	}
	// Skew: the most frequent provider should cover many tuples.
	prov := rel.Schema.MustIndex("Provider")
	counts := map[string]int{}
	max := 0
	for _, tp := range rel.Tuples {
		counts[tp[prov]]++
		if counts[tp[prov]] > max {
			max = counts[tp[prov]]
		}
	}
	if max < 20 {
		t.Fatalf("max provider multiplicity %d; expected skew", max)
	}
}

func TestHOSPDeterministic(t *testing.T) {
	a := gen.HOSP{Seed: 7}.Generate(100)
	b := gen.HOSP{Seed: 7}.Generate(100)
	cells, err := dataset.Diff(a, b)
	if err != nil || len(cells) != 0 {
		t.Fatalf("same seed differs: %v %v", cells, err)
	}
	c := gen.HOSP{Seed: 8}.Generate(100)
	cells, err = dataset.Diff(a, c)
	if err != nil {
		t.Fatal(err)
	}
	if len(cells) == 0 {
		t.Fatal("different seeds produced identical data")
	}
}

func TestTaxGeneratorConsistent(t *testing.T) {
	rel := gen.Tax{Seed: 2}.Generate(2000)
	fds := gen.TaxFDs(rel.Schema)
	if len(fds) != 9 {
		t.Fatalf("fds = %d", len(fds))
	}
	for _, f := range fds {
		if !fd.IsConsistent(rel, f) {
			t.Fatalf("generated Tax violates %s", f)
		}
	}
}

func TestInjectRateAndKinds(t *testing.T) {
	clean := gen.HOSP{Seed: 3}.Generate(1000)
	fds := gen.HOSPFDs(clean.Schema)
	dirty, injections := gen.Inject(clean, fds, 0.04, 9)
	cells, err := dataset.Diff(clean, dirty)
	if err != nil {
		t.Fatal(err)
	}
	if len(cells) != len(injections) {
		t.Fatalf("ledger %d entries, diff %d cells", len(injections), len(cells))
	}
	// 4% of (1000 tuples x FD-involved columns).
	fdCols := map[int]bool{}
	for _, f := range fds {
		for _, c := range f.Attrs() {
			fdCols[c] = true
		}
	}
	want := int(0.04 * float64(1000*len(fdCols)))
	if len(injections) < want*9/10 || len(injections) > want {
		t.Fatalf("injected %d errors, want about %d", len(injections), want)
	}
	// Equal thirds of kinds (round-robin assignment).
	counts := map[gen.ErrorKind]int{}
	for _, inj := range injections {
		counts[inj.Kind]++
		if dirty.Get(inj.Cell) != inj.Dirty || clean.Get(inj.Cell) != inj.Clean {
			t.Fatalf("ledger inconsistent at %+v", inj)
		}
		if inj.Dirty == inj.Clean {
			t.Fatalf("no-op injection at %+v", inj)
		}
	}
	for k, c := range counts {
		if c < want/3-2 || c > want/3+2 {
			t.Fatalf("kind %v count %d, want about %d", k, c, want/3)
		}
	}
	// Input untouched.
	if !fd.IsConsistent(clean, fds[0]) {
		t.Fatal("clean relation mutated")
	}
}

func TestInjectDeterministic(t *testing.T) {
	clean := gen.Tax{Seed: 4}.Generate(500)
	fds := gen.TaxFDs(clean.Schema)
	d1, i1 := gen.Inject(clean, fds, 0.05, 11)
	d2, i2 := gen.Inject(clean, fds, 0.05, 11)
	cells, err := dataset.Diff(d1, d2)
	if err != nil || len(cells) != 0 || len(i1) != len(i2) {
		t.Fatalf("same seed noise differs: %v %v (%d vs %d)", cells, err, len(i1), len(i2))
	}
}

func TestInjectEdgeCases(t *testing.T) {
	clean := gen.Tax{Seed: 5}.Generate(1)
	fds := gen.TaxFDs(clean.Schema)
	dirty, inj := gen.Inject(clean, fds, 0.5, 1)
	if len(inj) != 0 || dirty.Len() != 1 {
		t.Fatalf("single-tuple injection: %v", inj)
	}
	clean2 := gen.Tax{Seed: 5}.Generate(100)
	_, inj2 := gen.Inject(clean2, fds, 0, 1)
	if len(inj2) != 0 {
		t.Fatal("zero rate injected errors")
	}
}

func TestErrorKindString(t *testing.T) {
	if gen.LHSError.String() != "lhs" || gen.RHSError.String() != "rhs" || gen.Typo.String() != "typo" {
		t.Fatal("ErrorKind.String mismatch")
	}
}

func TestGeneratorOptionsRespected(t *testing.T) {
	rel := gen.HOSP{Seed: 61, Hospitals: 12, Measures: 6}.Generate(300)
	prov := rel.Schema.MustIndex("Provider")
	code := rel.Schema.MustIndex("MeasureCode")
	provs := map[string]bool{}
	codes := map[string]bool{}
	for _, tp := range rel.Tuples {
		provs[tp[prov]] = true
		codes[tp[code]] = true
	}
	if len(provs) > 12 || len(codes) > 6 {
		t.Fatalf("options ignored: %d providers, %d codes", len(provs), len(codes))
	}
	tax := gen.Tax{Seed: 62, Localities: 15}.Generate(300)
	zip := tax.Schema.MustIndex("Zip")
	zips := map[string]bool{}
	for _, tp := range tax.Tuples {
		zips[tp[zip]] = true
	}
	if len(zips) > 15 {
		t.Fatalf("Localities ignored: %d zips", len(zips))
	}
}
