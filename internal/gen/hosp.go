package gen

import (
	"fmt"
	"math/rand"

	"ftrepair/internal/dataset"
	"ftrepair/internal/fd"
)

// HOSP synthesizes a hospital-quality relation shaped like the US
// Department of Health & Human Services HOSP dataset the paper evaluates
// on: 19 attributes, 9 FDs entangled through Provider/Zip/State (one large
// FD-graph component) plus a Measure component. The real download is not
// redistributable; this generator preserves the properties the experiments
// exercise — many tuples per LHS pattern, string-heavy cells, and FDs with
// shared attributes that force joint repair.
type HOSP struct {
	// Hospitals is the number of distinct providers (default 200).
	Hospitals int
	// Measures is the number of distinct measure codes (default 40).
	Measures int
	// Seed drives the deterministic generator.
	Seed int64
}

// HOSPSchema returns the 19-attribute hospital schema.
func HOSPSchema() *dataset.Schema {
	return dataset.MustSchema(
		dataset.Attribute{Name: "Provider"},
		dataset.Attribute{Name: "HospitalName"},
		dataset.Attribute{Name: "Address"},
		dataset.Attribute{Name: "City"},
		dataset.Attribute{Name: "State"},
		dataset.Attribute{Name: "Zip"},
		dataset.Attribute{Name: "County"},
		dataset.Attribute{Name: "Phone"},
		dataset.Attribute{Name: "HospitalType"},
		dataset.Attribute{Name: "Owner"},
		dataset.Attribute{Name: "Emergency"},
		dataset.Attribute{Name: "Condition"},
		dataset.Attribute{Name: "MeasureCode"},
		dataset.Attribute{Name: "MeasureName"},
		dataset.Attribute{Name: "Score", Type: dataset.Numeric},
		dataset.Attribute{Name: "Sample", Type: dataset.Numeric},
		dataset.Attribute{Name: "StateAvg"},
		dataset.Attribute{Name: "Payer"},
		dataset.Attribute{Name: "Region"},
	)
}

// HOSPFDs returns the 9 functional dependencies of the HOSP workload, in
// the order the #-FDs sweeps take prefixes of.
func HOSPFDs(schema *dataset.Schema) []*fd.FD {
	specs := []string{
		"h1: Provider -> HospitalName",
		"h2: Provider -> Phone",
		"h3: Zip -> City",
		"h4: Zip -> State",
		"h5: Provider -> Zip",
		"h6: County -> State",
		"h7: MeasureCode -> MeasureName",
		"h8: MeasureCode -> Condition",
		"h9: Provider -> Address",
	}
	fds := make([]*fd.FD, len(specs))
	for i, s := range specs {
		fds[i] = fd.MustParse(schema, s)
	}
	return fds
}

var (
	hospCityPool = []struct{ city, state, region string }{
		{"Birmingham", "AL", "South"}, {"Montgomery", "AL", "South"},
		{"Phoenix", "AZ", "West"}, {"Scottsdale", "AZ", "West"},
		{"Sacramento", "CA", "West"}, {"Fresno", "CA", "West"},
		{"Denver", "CO", "West"}, {"Hartford", "CT", "Northeast"},
		{"Tampa", "FL", "South"}, {"Atlanta", "GA", "South"},
		{"Boise", "ID", "West"}, {"Chicago", "IL", "Midwest"},
		{"Indianapolis", "IN", "Midwest"}, {"Wichita", "KS", "Midwest"},
		{"Louisville", "KY", "South"}, {"Boston", "MA", "Northeast"},
		{"Baltimore", "MD", "South"}, {"Detroit", "MI", "Midwest"},
		{"Rochester", "MN", "Midwest"}, {"Jackson", "MS", "South"},
		{"Billings", "MT", "West"}, {"Charlotte", "NC", "South"},
		{"Omaha", "NE", "Midwest"}, {"Newark", "NJ", "Northeast"},
		{"Albany", "NY", "Northeast"}, {"Columbus", "OH", "Midwest"},
		{"Portland", "OR", "West"}, {"Memphis", "TN", "South"},
		{"Houston", "TX", "South"}, {"Seattle", "WA", "West"},
	}
	hospNameParts1 = []string{"Saint", "Mercy", "General", "Memorial", "Regional", "University", "Community", "Baptist", "Providence", "Unity"}
	hospNameParts2 = []string{"Medical Center", "Hospital", "Health System", "Clinic", "Care Center"}
	hospStreets    = []string{"Main St", "Oak Ave", "Church Rd", "Hill Blvd", "Lake Dr", "Park Ln", "River Rd", "Cedar St", "Maple Ave", "Sunset Blvd"}
	hospTypes      = []string{"Acute Care", "Critical Access", "Childrens"}
	hospOwners     = []string{"Government", "Proprietary", "Voluntary non-profit", "Physician"}
	hospPayers     = []string{"Medicare", "Medicaid", "Private", "Self"}
	hospConditions = []string{"Heart Attack", "Heart Failure", "Pneumonia", "Surgical Infection Prevention", "Asthma"}
	hospMeasures   = []string{"aspirin at arrival", "aspirin at discharge", "beta blocker at arrival", "ace inhibitor", "smoking cessation advice", "antibiotic timing", "oxygenation assessment", "blood culture", "fibrinolytic within 30 min", "pci within 90 min"}
	hospVersions   = []string{"initial cohort", "expanded cohort", "pediatric cohort", "outpatient cohort"}
)

type hospital struct {
	provider, name, address, city, state, zip, county, phone, htype, owner, emergency, region string
}

type measure struct {
	code, name, condition string
}

// Generate produces n clean tuples. The result is consistent w.r.t. every
// HOSP FD by construction.
func (h HOSP) Generate(n int) *dataset.Relation {
	if h.Hospitals <= 0 {
		// Domain size scales with n so pattern multiplicities stay high
		// enough to witness repairs (the paper's datasets likewise keep a
		// bounded domain as N grows).
		h.Hospitals = n / 40
		if h.Hospitals < 10 {
			h.Hospitals = 10
		}
		if h.Hospitals > 500 {
			h.Hospitals = 500
		}
	}
	if h.Measures <= 0 {
		h.Measures = n / 100
		if h.Measures < 5 {
			h.Measures = 5
		}
		if h.Measures > 100 {
			h.Measures = 100
		}
	}
	rng := rand.New(rand.NewSource(h.Seed))
	// Identifier domains are rejection-sampled for pairwise separation so
	// legitimate keys never fall inside the FT-violation threshold of the
	// benchmark configuration (see sampleDistinct).
	providers := sampleDistinct(rng, h.Hospitals, 3, digits(6))
	zips := sampleDistinct(rng, h.Hospitals, 3, digits(5))
	phones := sampleDistinct(rng, h.Hospitals, 3, digits(10))
	hospitals := make([]hospital, h.Hospitals)
	for i := range hospitals {
		loc := hospCityPool[rng.Intn(len(hospCityPool))]
		// "Co" rather than "County": a long shared suffix dilutes the
		// relative edit distance between legitimate same-state counties
		// below the FT threshold ("Sacramento County" vs "Fresno County"
		// is 7/17 = 0.41, weighted 0.29 <= tau).
		county := loc.city + " Co"
		hospitals[i] = hospital{
			provider:  providers[i],
			name:      hospNameParts1[rng.Intn(len(hospNameParts1))] + " " + loc.city + " " + hospNameParts2[rng.Intn(len(hospNameParts2))],
			address:   fmt.Sprintf("%d %s", 100+rng.Intn(9900), hospStreets[rng.Intn(len(hospStreets))]),
			city:      loc.city,
			state:     loc.state,
			zip:       zips[i], // zip is unique per hospital, so Zip -> City/State holds
			county:    county,
			phone:     phones[i],
			htype:     hospTypes[rng.Intn(len(hospTypes))],
			owner:     hospOwners[rng.Intn(len(hospOwners))],
			emergency: []string{"Yes", "No"}[rng.Intn(2)],
			region:    loc.region,
		}
	}
	// County -> State holds: counties derive from cities, and a city name
	// appears with exactly one state in the pool.
	// Measure codes are separated like the other identifiers; sequential
	// codes ("MC-001", "MC-002") would all FT-violate each other. The
	// separation is 4 edits because the "MC" prefix stretches codes to 8
	// runes: 0.7 * 4/8 = 0.35 keeps legitimate same-condition codes above
	// the threshold, while 3 edits (0.2625) would not.
	codes := sampleDistinct(rng, h.Measures, 4, digits(6))
	measures := make([]measure, h.Measures)
	for i := range measures {
		cond := hospConditions[i%len(hospConditions)]
		measures[i] = measure{
			code:      "MC" + codes[i],
			name:      hospMeasures[i%len(hospMeasures)] + " " + hospVersions[(i/len(hospMeasures))%len(hospVersions)],
			condition: cond,
		}
	}
	rel := dataset.NewRelation(HOSPSchema())
	for i := 0; i < n; i++ {
		// Zipf-ish skew: squaring biases toward low indices, giving some
		// hospitals many records (large pattern multiplicities).
		hi := int(float64(len(hospitals)-1) * rng.Float64() * rng.Float64())
		mi := rng.Intn(len(measures))
		hp, ms := hospitals[hi], measures[mi]
		score := fmt.Sprintf("%d", 40+rng.Intn(60))
		sample := fmt.Sprintf("%d", 10+rng.Intn(990))
		stateAvg := ms.code + "-" + hp.state
		if err := rel.Append(dataset.Tuple{
			hp.provider, hp.name, hp.address, hp.city, hp.state, hp.zip,
			hp.county, hp.phone, hp.htype, hp.owner, hp.emergency,
			ms.condition, ms.code, ms.name, score, sample, stateAvg,
			hospPayers[rng.Intn(len(hospPayers))], hp.region,
		}); err != nil {
			panic(err)
		}
	}
	return rel
}
