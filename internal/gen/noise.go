package gen

import (
	"math/rand"
	"strings"

	"ftrepair/internal/dataset"
	"ftrepair/internal/fd"
)

// ErrorKind labels how a cell was dirtied, following §6.1: active-domain
// replacements on the left-hand or right-hand side of an FD, and random
// typos; the three kinds are injected in equal proportions.
type ErrorKind uint8

const (
	// LHSError replaces a left-hand-side value with a value from another
	// tuple.
	LHSError ErrorKind = iota
	// RHSError replaces a right-hand-side value with a value from another
	// tuple.
	RHSError
	// Typo applies a single-character edit.
	Typo
)

// String names the error kind.
func (k ErrorKind) String() string {
	switch k {
	case LHSError:
		return "lhs"
	case RHSError:
		return "rhs"
	default:
		return "typo"
	}
}

// Injection records one injected error for ground-truth evaluation.
type Injection struct {
	Cell  dataset.Cell
	Clean string
	Dirty string
	Kind  ErrorKind
}

// Inject dirties rate (e.g. 0.04 for the paper's 4%) of the cells on
// FD-involved attributes, in equal thirds of LHS errors, RHS errors and
// typos, with replacement values drawn from other tuples (the active
// domain). It returns the dirty copy and the injection ledger; the input is
// untouched. Cells are dirtied at most once.
func Inject(clean *dataset.Relation, fds []*fd.FD, rate float64, seed int64) (*dataset.Relation, []Injection) {
	rng := rand.New(rand.NewSource(seed))
	dirty := clean.Clone()
	lhsCols, rhsCols := fdColumns(fds)
	allCols := append(append([]int{}, lhsCols...), rhsCols...)
	if len(allCols) == 0 || clean.Len() < 2 {
		return dirty, nil
	}
	nCells := clean.Len() * len(uniqueInts(allCols))
	nErrors := int(rate * float64(nCells))
	var injections []Injection
	used := make(map[dataset.Cell]bool)
	attempts := 0
	for len(injections) < nErrors && attempts < nErrors*50 {
		attempts++
		kind := ErrorKind(len(injections) % 3)
		var col int
		switch kind {
		case LHSError:
			col = lhsCols[rng.Intn(len(lhsCols))]
		case RHSError:
			col = rhsCols[rng.Intn(len(rhsCols))]
		default:
			col = allCols[rng.Intn(len(allCols))]
		}
		row := rng.Intn(clean.Len())
		cell := dataset.Cell{Row: row, Col: col}
		if used[cell] {
			continue
		}
		orig := dirty.Get(cell)
		var val string
		if kind == Typo {
			val = applyTypo(rng, orig)
		} else {
			// Active-domain replacement from another tuple.
			other := rng.Intn(clean.Len())
			val = clean.Tuples[other][col]
		}
		if val == orig {
			continue
		}
		used[cell] = true
		dirty.Set(cell, val)
		injections = append(injections, Injection{Cell: cell, Clean: orig, Dirty: val, Kind: kind})
	}
	return dirty, injections
}

// fdColumns splits the FD-involved columns into LHS and RHS pools (a column
// may appear in both when FDs overlap).
func fdColumns(fds []*fd.FD) (lhs, rhs []int) {
	ls, rs := map[int]bool{}, map[int]bool{}
	for _, f := range fds {
		for _, c := range f.LHS {
			ls[c] = true
		}
		for _, c := range f.RHS {
			rs[c] = true
		}
	}
	for c := range ls {
		lhs = append(lhs, c)
	}
	for c := range rs {
		rhs = append(rhs, c)
	}
	sortInts(lhs)
	sortInts(rhs)
	return lhs, rhs
}

func uniqueInts(xs []int) []int {
	seen := map[int]bool{}
	var out []int
	for _, x := range xs {
		if !seen[x] {
			seen[x] = true
			out = append(out, x)
		}
	}
	return out
}

func sortInts(xs []int) {
	for i := 1; i < len(xs); i++ {
		for j := i; j > 0 && xs[j] < xs[j-1]; j-- {
			xs[j], xs[j-1] = xs[j-1], xs[j]
		}
	}
}

// applyTypo performs one random character edit: substitution, insertion,
// deletion, or transposition. Digits stay digits so numeric cells remain
// parseable.
func applyTypo(rng *rand.Rand, s string) string {
	if s == "" {
		return string(rune('a' + rng.Intn(26)))
	}
	r := []rune(s)
	pos := rng.Intn(len(r))
	randRune := func(old rune) rune {
		if old >= '0' && old <= '9' {
			return rune('0' + rng.Intn(10))
		}
		if old >= 'A' && old <= 'Z' {
			return rune('A' + rng.Intn(26))
		}
		return rune('a' + rng.Intn(26))
	}
	switch rng.Intn(4) {
	case 0: // substitute
		r[pos] = randRune(r[pos])
	case 1: // insert
		r = append(r[:pos], append([]rune{randRune(r[pos])}, r[pos:]...)...)
	case 2: // delete
		if len(r) > 1 && !allDigits(s) {
			r = append(r[:pos], r[pos+1:]...)
		} else {
			r[pos] = randRune(r[pos])
		}
	default: // transpose
		if pos+1 < len(r) && r[pos] != r[pos+1] {
			r[pos], r[pos+1] = r[pos+1], r[pos]
		} else {
			r[pos] = randRune(r[pos])
		}
	}
	return string(r)
}

func allDigits(s string) bool {
	if s == "" {
		return false
	}
	return strings.IndexFunc(s, func(r rune) bool { return r < '0' || r > '9' }) < 0
}
