package gen

import (
	"math/rand"

	"ftrepair/internal/strsim"
)

// sampleDistinct draws n strings from make, rejecting candidates within
// minEdit-1 edits of an already-accepted one. Identifier domains (zips,
// provider numbers, area codes) need this separation so that the
// fault-tolerant semantics at the benchmark configuration (w_l=0.7,
// w_r=0.3, tau=0.3) never confuses two legitimate keys: a pair of distinct
// keys then sits at weighted distance >= 0.7*(minEdit/len), above tau,
// while single-character typos sit far below it.
func sampleDistinct(rng *rand.Rand, n, minEdit int, draw func(*rand.Rand) string) []string {
	out := make([]string, n)
	for i := 0; i < n; i++ {
		for attempt := 0; ; attempt++ {
			cand := draw(rng)
			ok := true
			for j := 0; j < i; j++ {
				if _, within := strsim.LevenshteinBounded(cand, out[j], minEdit-1); within {
					ok = false
					break
				}
			}
			if ok {
				out[i] = cand
				break
			}
			if attempt > 10000 {
				// Domain too dense for the requested separation; accept the
				// candidate rather than loop forever. Callers size their
				// domains to avoid this.
				out[i] = cand
				break
			}
		}
	}
	return out
}

// digits produces a random fixed-width digit string.
func digits(width int) func(*rand.Rand) string {
	return func(rng *rand.Rand) string {
		b := make([]byte, width)
		for i := range b {
			b[i] = byte('0' + rng.Intn(10))
		}
		return string(b)
	}
}
