package gen

import (
	"fmt"
	"strings"

	"ftrepair/internal/dataset"
	"ftrepair/internal/fd"
)

// StreamConfig describes a timed ingest workload: a base relation a session
// starts from, plus a sequence of arrival batches drawn from the same
// generator and dirtied at the same rate — the shape the incremental engine
// and the incrbench experiment replay.
type StreamConfig struct {
	// Workload is "hosp" or "tax".
	Workload string
	// Base is the number of rows in the base relation.
	Base int
	// Batches and BatchSize shape the streamed tail: Batches arrivals of
	// BatchSize rows each.
	Batches   int
	BatchSize int
	// FDs limits how many of the workload's FDs drive the noise model
	// (0 means all).
	FDs int
	// Rate is the §6.1 dirty-cell fraction over base and stream alike.
	Rate float64
	// Seed drives generation and noise.
	Seed int64
	// IntervalMs spaces arrivals: batch i arrives at i*IntervalMs.
	IntervalMs int
}

// StreamBatch is one timed arrival of rows.
type StreamBatch struct {
	// AtMs is the batch's arrival offset from stream start, in milliseconds.
	AtMs int `json:"atMs"`
	// Rows are the arriving tuples, dirty.
	Rows [][]string `json:"rows"`
}

// Stream generates Base+Batches*BatchSize clean rows, dirties them at the
// configured rate, and splits the tail into timed arrival batches. The base
// and the stream come from one generation pass, so streamed rows share the
// base's active domain (their errors can repair toward standing patterns).
// Returns the dirty base, the batches, and the workload's FD list (already
// truncated to cfg.FDs).
func Stream(cfg StreamConfig) (*dataset.Relation, []StreamBatch, []*fd.FD, error) {
	if cfg.Base <= 0 || cfg.Batches < 0 || cfg.BatchSize <= 0 {
		return nil, nil, nil, fmt.Errorf("gen: stream needs positive base and batch size")
	}
	total := cfg.Base + cfg.Batches*cfg.BatchSize
	var clean *dataset.Relation
	var fds []*fd.FD
	switch strings.ToLower(cfg.Workload) {
	case "hosp":
		clean = HOSP{Seed: cfg.Seed}.Generate(total)
		fds = HOSPFDs(clean.Schema)
	case "tax":
		clean = Tax{Seed: cfg.Seed}.Generate(total)
		fds = TaxFDs(clean.Schema)
	default:
		return nil, nil, nil, fmt.Errorf("gen: unknown stream workload %q (hosp, tax)", cfg.Workload)
	}
	if cfg.FDs > 0 {
		if cfg.FDs > len(fds) {
			return nil, nil, nil, fmt.Errorf("gen: workload has %d FDs, %d requested", len(fds), cfg.FDs)
		}
		fds = fds[:cfg.FDs]
	}
	dirty, _ := Inject(clean, fds, cfg.Rate, cfg.Seed+1)
	base := &dataset.Relation{Schema: dirty.Schema, Tuples: dirty.Tuples[:cfg.Base]}
	batches := make([]StreamBatch, 0, cfg.Batches)
	for b := 0; b < cfg.Batches; b++ {
		off := cfg.Base + b*cfg.BatchSize
		rows := make([][]string, cfg.BatchSize)
		for i := range rows {
			rows[i] = dirty.Tuples[off+i]
		}
		batches = append(batches, StreamBatch{AtMs: b * cfg.IntervalMs, Rows: rows})
	}
	return base, batches, fds, nil
}
