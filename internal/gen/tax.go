package gen

import (
	"fmt"
	"math/rand"

	"ftrepair/internal/dataset"
	"ftrepair/internal/fd"
	"ftrepair/internal/strsim"
)

// Tax synthesizes the individual address-and-tax workload the paper's Tax
// generator produces: person records whose locality attributes (Zip, City,
// State, AreaCode) and tax attributes (exemptions, state tax) obey 9 FDs
// entangled through Zip and State.
type Tax struct {
	// Localities is the number of distinct (zip, city, state) triples
	// (default 300).
	Localities int
	// Seed drives the deterministic generator.
	Seed int64
}

// TaxSchema returns the 15-attribute tax schema.
func TaxSchema() *dataset.Schema {
	return dataset.MustSchema(
		dataset.Attribute{Name: "FName"},
		dataset.Attribute{Name: "LName"},
		dataset.Attribute{Name: "Gender"},
		dataset.Attribute{Name: "AreaCode"},
		dataset.Attribute{Name: "Phone"},
		dataset.Attribute{Name: "City"},
		dataset.Attribute{Name: "State"},
		dataset.Attribute{Name: "Zip"},
		dataset.Attribute{Name: "MaritalStatus"},
		dataset.Attribute{Name: "HasChild"},
		dataset.Attribute{Name: "Salary", Type: dataset.Numeric},
		dataset.Attribute{Name: "Rate", Type: dataset.Numeric},
		dataset.Attribute{Name: "SingleExemp", Type: dataset.Numeric},
		dataset.Attribute{Name: "ChildExemp", Type: dataset.Numeric},
		dataset.Attribute{Name: "StateTax"},
	)
}

// TaxFDs returns the 9 functional dependencies of the Tax workload.
func TaxFDs(schema *dataset.Schema) []*fd.FD {
	specs := []string{
		"t1: Zip -> City",
		"t2: Zip -> State",
		"t3: AreaCode -> State",
		"t4: Zip -> AreaCode",
		"t5: State -> SingleExemp",
		"t6: State, MaritalStatus -> Rate",
		"t7: State, HasChild -> ChildExemp",
		"t8: State -> StateTax",
		"t9: City -> State",
	}
	fds := make([]*fd.FD, len(specs))
	for i, s := range specs {
		fds[i] = fd.MustParse(schema, s)
	}
	return fds
}

var (
	taxFirst  = []string{"James", "Mary", "Robert", "Patricia", "John", "Jennifer", "Michael", "Linda", "David", "Elizabeth", "William", "Barbara", "Richard", "Susan", "Joseph", "Jessica", "Thomas", "Sarah", "Charles", "Karen"}
	taxLast   = []string{"Smith", "Johnson", "Williams", "Brown", "Jones", "Garcia", "Miller", "Davis", "Rodriguez", "Martinez", "Hernandez", "Lopez", "Gonzales", "Wilson", "Anderson", "Thomas"}
	taxStates = []string{"AL", "AZ", "CA", "CO", "FL", "GA", "IL", "MA", "NY", "TX", "WA", "OR", "NV", "UT", "OH", "MI", "PA", "NJ", "VA", "NC"}
)

type locality struct {
	zip, city, state, area string
}

// cityNames builds a shuffled pool of synthetic city names from prefix and
// suffix parts, large enough that every state gets several well-separated
// names.
func cityNames(rng *rand.Rand) []string {
	prefixes := []string{"Spring", "River", "Lake", "Hill", "Fair", "Brook", "Ash", "Clay", "Day", "East", "Ful", "George", "Ham", "Irving", "James", "King", "Lex", "Madi", "Nor", "Oak"}
	suffixes := []string{"field", "ton", "ville", "burg", "dale", "port", "wood", "haven", "mont", "side"}
	var names []string
	for _, p := range prefixes {
		for _, s := range suffixes {
			names = append(names, p+s)
		}
	}
	rng.Shuffle(len(names), func(i, j int) { names[i], names[j] = names[j], names[i] })
	return names
}

func indexOf(xs []string, v string) int {
	for i, x := range xs {
		if x == v {
			return i
		}
	}
	return -1
}

// Generate produces n clean tuples consistent with every Tax FD.
func (tx Tax) Generate(n int) *dataset.Relation {
	if tx.Localities <= 0 {
		// Scale the locality domain with n so that localities keep enough
		// witnesses for repairs (see gen.HOSP).
		tx.Localities = n / 30
		if tx.Localities < 10 {
			tx.Localities = 10
		}
		if tx.Localities > 400 {
			tx.Localities = 400
		}
	}
	rng := rand.New(rand.NewSource(tx.Seed))
	// State-level tax tables: every state has fixed exemptions and tax.
	single := make(map[string]string)
	child := make(map[string]map[string]string)
	rate := make(map[string]map[string]string)
	stateTax := make(map[string]string)
	for i, s := range taxStates {
		single[s] = fmt.Sprintf("%d", 1000+i*250)
		child[s] = map[string]string{
			"Y": fmt.Sprintf("%d", 500+i*100),
			"N": "0",
		}
		rate[s] = map[string]string{
			"Single":  fmt.Sprintf("%d.%d", 3+i%5, i%10),
			"Married": fmt.Sprintf("%d.%d", 2+i%4, (i*3)%10),
		}
		stateTax[s] = fmt.Sprintf("TAX-%s-%02d", s, i)
	}
	// Localities: city names are globally unique (City -> State must hold)
	// and, within a state, at least 5 edits apart so that two legitimate
	// same-state cities never fall inside the FT-violation threshold
	// (0.7 * 5/len > 0.3 for our name lengths; cross-state pairs are
	// already covered by the RHS distance). When a state's name budget is
	// exhausted, an existing city is reused — several zips per city is
	// realistic and FD-consistent.
	zips := sampleDistinct(rng, tx.Localities, 3, digits(5))
	areaCodes := sampleDistinct(rng, len(taxStates), 2, digits(3))
	names := cityNames(rng)
	usedGlobally := make(map[string]bool)
	cityByState := make(map[string][]string)
	pickCity := func(state string) string {
		for _, cand := range names {
			if usedGlobally[cand] {
				continue
			}
			ok := true
			for _, prev := range cityByState[state] {
				if _, within := strsim.LevenshteinBounded(cand, prev, 4); within {
					ok = false
					break
				}
			}
			if ok {
				usedGlobally[cand] = true
				cityByState[state] = append(cityByState[state], cand)
				return cand
			}
		}
		// Name budget exhausted for this state: reuse an existing city.
		cs := cityByState[state]
		if len(cs) > 0 {
			return cs[rng.Intn(len(cs))]
		}
		// No usable name at all (tiny pools in tests): fall back to a
		// synthetic unique name.
		c := fmt.Sprintf("Cityville %s%d", state, len(usedGlobally))
		usedGlobally[c] = true
		cityByState[state] = append(cityByState[state], c)
		return c
	}
	locs := make([]locality, tx.Localities)
	for i := range locs {
		state := taxStates[rng.Intn(len(taxStates))]
		locs[i] = locality{
			zip:   zips[i],
			city:  pickCity(state),
			state: state,
			// AreaCode -> State and Zip -> AreaCode hold: one area code
			// per state, zips unique per locality.
			area: areaCodes[indexOf(taxStates, state)],
		}
	}
	rel := dataset.NewRelation(TaxSchema())
	for i := 0; i < n; i++ {
		l := locs[int(float64(len(locs)-1)*rng.Float64()*rng.Float64())]
		marital := []string{"Single", "Married"}[rng.Intn(2)]
		hasChild := []string{"Y", "N"}[rng.Intn(2)]
		salary := fmt.Sprintf("%d", 20000+rng.Intn(180000))
		if err := rel.Append(dataset.Tuple{
			taxFirst[rng.Intn(len(taxFirst))],
			taxLast[rng.Intn(len(taxLast))],
			[]string{"M", "F"}[rng.Intn(2)],
			l.area,
			fmt.Sprintf("%s%03d%04d", l.area, 200+rng.Intn(700), rng.Intn(10000)),
			l.city,
			l.state,
			l.zip,
			marital,
			hasChild,
			salary,
			rate[l.state][marital],
			single[l.state],
			child[l.state][hasChild],
			stateTax[l.state],
		}); err != nil {
			panic(err)
		}
	}
	return rel
}
