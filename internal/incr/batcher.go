package incr

import (
	"context"
	"errors"
	"sync"
	"time"
)

// ErrClosed is returned by Enqueue after Close.
var ErrClosed = errors.New("incr: batcher closed")

// BatcherConfig tunes a Batcher. Zero values take the defaults.
type BatcherConfig struct {
	// MaxBatch flushes as soon as this many rows are queued (default 256).
	MaxBatch int
	// MaxDelay flushes the oldest queued request after this long even when
	// the batch is short (default 25ms).
	MaxDelay time.Duration
	// MaxPending bounds queued rows; Enqueue blocks (backpressure) while
	// the queue is full (default 4×MaxBatch).
	MaxPending int
	// OnFlush, when set, observes every flushed batch, exactly once per
	// flush, from the flusher goroutine.
	OnFlush func(*BatchResult)
}

func (c *BatcherConfig) defaults() {
	if c.MaxBatch <= 0 {
		c.MaxBatch = 256
	}
	if c.MaxDelay <= 0 {
		c.MaxDelay = 25 * time.Millisecond
	}
	if c.MaxPending <= 0 {
		c.MaxPending = 4 * c.MaxBatch
	}
}

// EnqueueResult is what one Enqueue call gets back: its own rows' outcomes
// plus the enclosing batch (shared between the requests it coalesced).
type EnqueueResult struct {
	Rows  []RowResult
	Batch *BatchResult
	// Err carries the flush-level error (repair.ErrCanceled partials).
	Err error
}

type enqueueReq struct {
	rows [][]string
	at   time.Time
	res  *EnqueueResult
	done chan struct{}
}

// Batcher coalesces concurrent appends in front of an Engine: requests
// queue until MaxBatch rows are pending or the oldest request has waited
// MaxDelay, then flush as one engine batch. The queue is bounded by
// MaxPending rows; producers block when it is full. One background
// goroutine owns all flushing, so engine batches never interleave.
type Batcher struct {
	eng *Engine
	cfg BatcherConfig

	mu    sync.Mutex
	work  *sync.Cond // flusher waits here for work / a fired timer / close
	space *sync.Cond // producers wait here for queue space
	queue []*enqueueReq
	rows  int // queued rows
	// timerGen invalidates stale AfterFunc callbacks; timerFired marks the
	// oldest request as overdue; timerFor is the deadline currently armed.
	timerGen   int
	timerFired bool
	timerFor   time.Time
	closed     bool
	done       chan struct{}
}

// NewBatcher starts a batcher over eng.
func NewBatcher(eng *Engine, cfg BatcherConfig) *Batcher {
	cfg.defaults()
	b := &Batcher{eng: eng, cfg: cfg, done: make(chan struct{})}
	b.work = sync.NewCond(&b.mu)
	b.space = sync.NewCond(&b.mu)
	go b.loop()
	return b
}

// Enqueue queues rows and blocks until their batch has flushed, returning
// this request's slice of the batch. It blocks earlier (backpressure) while
// MaxPending rows are already queued. A canceled ctx aborts the wait —
// queued rows still flush, the caller just stops waiting for them.
func (b *Batcher) Enqueue(ctx context.Context, rows [][]string) (*EnqueueResult, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if len(rows) == 0 {
		return &EnqueueResult{}, nil
	}
	// A ctx watcher wakes our cond wait so backpressure stays cancelable.
	stop := context.AfterFunc(ctx, func() {
		b.mu.Lock()
		b.space.Broadcast()
		b.mu.Unlock()
	})
	defer stop()
	b.mu.Lock()
	for b.rows >= b.cfg.MaxPending && !b.closed && ctx.Err() == nil {
		b.space.Wait()
	}
	if err := ctx.Err(); err != nil {
		b.mu.Unlock()
		return nil, err
	}
	if b.closed {
		b.mu.Unlock()
		return nil, ErrClosed
	}
	//lint:ignore nondeterm the arrival stamp only drives MaxWait flush deadlines; batch contents and repair outputs do not depend on it
	req := &enqueueReq{rows: rows, at: time.Now(), done: make(chan struct{})}
	b.queue = append(b.queue, req)
	b.rows += len(rows)
	b.work.Broadcast()
	b.mu.Unlock()
	select {
	case <-req.done:
		return req.res, nil
	case <-ctx.Done():
		return nil, ctx.Err()
	}
}

// Close drains the queue, flushes what remains (reason "close"), stops the
// flusher and releases blocked producers. Idempotent.
func (b *Batcher) Close() {
	b.mu.Lock()
	if b.closed {
		b.mu.Unlock()
		<-b.done
		return
	}
	b.closed = true
	b.work.Broadcast()
	b.space.Broadcast()
	b.mu.Unlock()
	<-b.done
}

// flushable reports (with mu held) whether the flusher should take a batch.
func (b *Batcher) flushable() bool {
	if len(b.queue) == 0 {
		return false
	}
	return b.rows >= b.cfg.MaxBatch || b.timerFired || b.closed
}

// armTimer ensures (with mu held) an AfterFunc covers the oldest request's
// deadline. Already-overdue requests mark timerFired directly.
func (b *Batcher) armTimer() {
	if len(b.queue) == 0 || b.timerFired {
		return
	}
	deadline := b.queue[0].at.Add(b.cfg.MaxDelay)
	if !time.Now().Before(deadline) {
		b.timerFired = true
		return
	}
	if b.timerFor.Equal(deadline) {
		return // already armed for this request
	}
	b.timerGen++
	b.timerFor = deadline
	gen := b.timerGen
	time.AfterFunc(time.Until(deadline), func() {
		b.mu.Lock()
		if gen == b.timerGen {
			b.timerFired = true
			b.work.Broadcast()
		}
		b.mu.Unlock()
	})
}

// take pops (with mu held) whole requests FIFO until MaxBatch rows are
// gathered, and names the flush reason.
func (b *Batcher) take() (reqs []*enqueueReq, rows [][]string, reason string) {
	taken := 0
	for len(b.queue) > 0 && taken < b.cfg.MaxBatch {
		req := b.queue[0]
		b.queue = b.queue[1:]
		reqs = append(reqs, req)
		rows = append(rows, req.rows...)
		taken += len(req.rows)
	}
	b.rows -= taken
	switch {
	case taken >= b.cfg.MaxBatch:
		reason = "size"
	case b.timerFired:
		reason = "interval"
	default:
		reason = "close"
	}
	// Invalidate the armed timer; the loop re-arms for the next head.
	b.timerGen++
	b.timerFired = false
	b.timerFor = time.Time{}
	return reqs, rows, reason
}

func (b *Batcher) loop() {
	defer close(b.done)
	for {
		b.mu.Lock()
		for !b.flushable() {
			if b.closed && len(b.queue) == 0 {
				b.mu.Unlock()
				return
			}
			b.armTimer()
			b.work.Wait()
		}
		reqs, rows, reason := b.take()
		b.space.Broadcast()
		b.mu.Unlock()

		br, err := b.eng.Append(rows, reason, nil)
		off := 0
		for _, req := range reqs {
			req.res = &EnqueueResult{
				Rows:  br.Rows[off : off+len(req.rows)],
				Batch: br,
				Err:   err,
			}
			off += len(req.rows)
			close(req.done)
		}
		if b.cfg.OnFlush != nil {
			b.cfg.OnFlush(br)
		}
	}
}
