package incr_test

import (
	"context"
	"sync"
	"testing"
	"time"

	"ftrepair/internal/dataset"
	"ftrepair/internal/incr"
	"ftrepair/internal/repair"
)

func newTestEngine(t *testing.T, n int) (*incr.Engine, [][]string) {
	t.Helper()
	inst := hospInstance(t, n, 1)
	split := n / 2
	base := &dataset.Relation{Schema: inst.Dirty.Schema, Tuples: inst.Dirty.Tuples[:split]}
	eng, _, err := incr.NewEngine(base, inst.Set, inst.Cfg, incr.Options{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	return eng, rowsOf(inst.Dirty)[split:]
}

// TestBatcherSizeFlush: a request carrying MaxBatch rows flushes immediately
// with reason "size".
func TestBatcherSizeFlush(t *testing.T) {
	eng, rows := newTestEngine(t, 200)
	b := incr.NewBatcher(eng, incr.BatcherConfig{MaxBatch: 10, MaxDelay: time.Hour})
	defer b.Close()
	res, err := b.Enqueue(context.Background(), rows[:10])
	if err != nil {
		t.Fatal(err)
	}
	if res.Batch.Reason != "size" {
		t.Fatalf("reason = %q, want size", res.Batch.Reason)
	}
	if len(res.Rows) != 10 || res.Batch.Accepted != 10 {
		t.Fatalf("rows = %d, accepted = %d", len(res.Rows), res.Batch.Accepted)
	}
}

// TestBatcherMaxDelayFlush: a short batch flushes after MaxDelay with
// reason "interval".
func TestBatcherMaxDelayFlush(t *testing.T) {
	eng, rows := newTestEngine(t, 200)
	b := incr.NewBatcher(eng, incr.BatcherConfig{MaxBatch: 1000, MaxDelay: 30 * time.Millisecond})
	defer b.Close()
	start := time.Now()
	res, err := b.Enqueue(context.Background(), rows[:3])
	if err != nil {
		t.Fatal(err)
	}
	if res.Batch.Reason != "interval" {
		t.Fatalf("reason = %q, want interval", res.Batch.Reason)
	}
	if waited := time.Since(start); waited < 25*time.Millisecond {
		t.Fatalf("flushed after %v, before MaxDelay", waited)
	}
}

// TestBatcherBackpressure: with the queue full, Enqueue blocks and honors
// context cancellation; Close flushes the stranded queue with reason
// "close" and rejects later enqueues.
func TestBatcherBackpressure(t *testing.T) {
	eng, rows := newTestEngine(t, 200)
	b := incr.NewBatcher(eng, incr.BatcherConfig{
		MaxBatch: 1000, MaxDelay: time.Hour, MaxPending: 2,
	})
	var firstRes *incr.EnqueueResult
	var firstErr error
	done := make(chan struct{})
	go func() {
		defer close(done)
		firstRes, firstErr = b.Enqueue(context.Background(), rows[:2])
	}()
	// Give the producer time to queue its rows (fills MaxPending). Even if
	// it were still pending, the assertion below would only be weaker (the
	// enqueue would block awaiting a flush that never comes), not flaky.
	time.Sleep(50 * time.Millisecond)
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
	defer cancel()
	if _, err := b.Enqueue(ctx, rows[3:4]); err != context.DeadlineExceeded {
		t.Fatalf("full-queue enqueue err = %v, want DeadlineExceeded", err)
	}
	b.Close()
	<-done
	if firstErr != nil {
		t.Fatal(firstErr)
	}
	if firstRes.Batch.Reason != "close" {
		t.Fatalf("drain reason = %q, want close", firstRes.Batch.Reason)
	}
	if _, err := b.Enqueue(context.Background(), rows[4:5]); err != incr.ErrClosed {
		t.Fatalf("post-close enqueue err = %v, want ErrClosed", err)
	}
}

// TestBatcherConcurrentProducers hammers the batcher from many goroutines
// (race coverage) and checks nothing is lost, duplicated, or inconsistent:
// the final relation matches the from-scratch oracle over the same rows.
func TestBatcherConcurrentProducers(t *testing.T) {
	inst := hospInstance(t, 320, 1)
	split := 120
	base := &dataset.Relation{Schema: inst.Dirty.Schema, Tuples: inst.Dirty.Tuples[:split]}
	eng, _, err := incr.NewEngine(base, inst.Set, inst.Cfg, incr.Options{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	b := incr.NewBatcher(eng, incr.BatcherConfig{
		MaxBatch: 16, MaxDelay: 2 * time.Millisecond, MaxPending: 32,
	})
	rows := rowsOf(inst.Dirty)[split:]
	const producers = 8
	var wg sync.WaitGroup
	errs := make(chan error, producers)
	for p := 0; p < producers; p++ {
		p := p
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := p; i < len(rows); i += producers {
				if _, err := b.Enqueue(context.Background(), rows[i:i+1]); err != nil {
					errs <- err
					return
				}
			}
		}()
	}
	wg.Wait()
	b.Close()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	st := eng.Stats()
	if st.Accepted != len(rows) {
		t.Fatalf("accepted = %d, want %d", st.Accepted, len(rows))
	}
	if err := repair.VerifyFTConsistent(eng.Snapshot(), inst.Set, inst.Cfg); err != nil {
		t.Fatal(err)
	}
	// Concurrent producers interleave arbitrarily, so compare against the
	// oracle over the rows in the order the engine actually admitted them.
	oracle, _, err := incr.RepairAll(eng.InputSnapshot(), inst.Set, inst.Cfg, incr.Options{})
	if err != nil {
		t.Fatal(err)
	}
	mustEqualRelations(t, eng.Snapshot(), oracle, "concurrent ingest")
}

// TestBatcherOnFlush: the callback fires once per flush with the shared
// batch result.
func TestBatcherOnFlush(t *testing.T) {
	eng, rows := newTestEngine(t, 200)
	var mu sync.Mutex
	var reasons []string
	b := incr.NewBatcher(eng, incr.BatcherConfig{
		MaxBatch: 5, MaxDelay: time.Hour,
		OnFlush: func(br *incr.BatchResult) {
			mu.Lock()
			reasons = append(reasons, br.Reason)
			mu.Unlock()
		},
	})
	if _, err := b.Enqueue(context.Background(), rows[:5]); err != nil {
		t.Fatal(err)
	}
	b.Close()
	mu.Lock()
	defer mu.Unlock()
	if len(reasons) != 1 || reasons[0] != "size" {
		t.Fatalf("OnFlush calls = %v, want [size]", reasons)
	}
}
