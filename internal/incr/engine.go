// Package incr is the sharded incremental repair engine: a long-lived
// dataset session that keeps per-component repair state warm and, on each
// appended batch, re-detects and re-repairs only the shards the batch
// touches.
//
// A shard is a connected component of the link graph over per-FD pattern
// nodes: two patterns of the same FD are linked when they FT-violate each
// other (a violation-graph edge), and every row links its patterns across
// the FDs of one attribute component (Theorem 5 components repair
// independently, so the engine keeps one shard universe per FD component).
// The link set depends only on the rows ingested so far — never on batch
// boundaries or on repaired values — so the shard partition, each shard's
// sub-relation of original input values, and therefore each shard's repair
// are identical no matter how the stream was batched. Feeding the whole
// input as one batch to a fresh engine is the from-scratch reference;
// RepairAll exposes it as the equivalence oracle.
//
// Warm state per FD: the projection-key registry (pattern dedup), a q-gram
// probe index over the probe attribute (mirroring vgraph's candidate
// filter) so a new pattern's violations are found without an O(patterns)
// scan, and the shared distance cache in the DistConfig, which memoizes
// across batches. Repair itself reuses the existing algorithms (GreedyS /
// ExactS on single-FD sets, GreedyM / ApproM / ExactM otherwise) on the
// touched shard's sub-relation; shards with no violation edges skip the
// run entirely.
package incr

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"

	"ftrepair/internal/dataset"
	"ftrepair/internal/fd"
	"ftrepair/internal/ledger"
	"ftrepair/internal/obs"
	"ftrepair/internal/repair"
	"ftrepair/internal/strsim"
)

// Options configures an Engine.
type Options struct {
	// Algorithm names the per-shard repair algorithm (ExactS, GreedyS,
	// ExactM, ApproM, GreedyM). Empty means GreedyM. The single-FD
	// algorithms require a single-FD set.
	Algorithm string
	// Workers bounds concurrent shard repairs per flush; values below 2
	// repair shards sequentially. Shard repairs are independent, so the
	// output is identical at any worker count.
	Workers int
	// Repair carries base options for the per-shard runs. Cancel, Trace,
	// Parallel and Ledger are managed per flush and ignored here.
	Repair repair.Options
	// Trace, when non-nil, collects shardselect/increpair spans.
	Trace *obs.Trace
	// Ledger, when non-nil, receives one committed batch of cell-repair
	// events per flush, describing exactly the cells the flush changed in
	// the repaired view (write-backs, not per-shard intermediate values).
	// Old values are the overwritten repaired-view values, so replaying the
	// ledger backwards restores the pre-flush view precisely. Events carry
	// the justification (FD, violation edge or join-target) recorded by the
	// shard's inner repair run where one exists for the cell.
	Ledger ledger.Sink
}

// RowResult is the outcome of one submitted row.
type RowResult struct {
	// Values is the row as it stands after the flush (repaired in place
	// when its shard's repair changed it). Nil when Err is set.
	Values dataset.Tuple
	// Repaired reports whether the flush modified the row.
	Repaired bool
	// Err carries a per-row rejection (arity, numeric parse); the row was
	// skipped.
	Err error
}

// BatchResult describes one processed flush.
type BatchResult struct {
	// Reason is the flush trigger: "size", "interval", "close", "manual",
	// or "init" for the batch NewEngine runs over the base relation.
	Reason string
	// Rows holds per-submitted-row outcomes, in submission order.
	Rows []RowResult
	// Accepted counts admitted rows; Repaired how many of them the flush
	// modified; Rewritten how many pre-existing rows the flush rewrote
	// (new evidence changed an old shard's repair).
	Accepted  int
	Repaired  int
	Rewritten int
	// ChangedCells counts cell writes that changed a value.
	ChangedCells int
	// ShardsTouched counts shards dirtied by the batch (including shards
	// left dirty by an earlier canceled flush); ShardsRepaired the subset
	// re-run through the algorithm; Merges the merge-on-edge events where
	// the batch linked two previously independent shards.
	ShardsTouched  int
	ShardsRepaired int
	Merges         int
	// MaxShardRows is the row count of the largest touched shard — the
	// quantity per-batch latency is bounded by.
	MaxShardRows int
	// TotalRows is the relation size after the flush.
	TotalRows int
	Elapsed   time.Duration
}

// Stats is a point-in-time snapshot of an engine.
type Stats struct {
	// Rows is the relation size (base + admitted appends).
	Rows int
	// Batches counts flushes, including the initial base flush.
	Batches int
	// Accepted and Repaired count appended rows after the base flush and
	// how many of them were modified on admission; Rewritten counts
	// pre-existing-row rewrites by later batches.
	Accepted  int
	Repaired  int
	Rewritten int
	// Shards is the live shard population; Merges the cumulative
	// merge-on-edge count.
	Shards int
	Merges int
}

// pattern is one distinct projection of an FD, with the first input tuple
// that carried it (original values; repairs never feed back into reps).
type pattern struct {
	elem int // union-find element id
	rep  dataset.Tuple
}

// perFD is the warm per-FD detection state of one component.
type perFD struct {
	phi *fd.FD
	tau float64
	// keys maps projection key -> union-find element of the pattern.
	keys map[string]int
	pats []pattern
	// probe/attrTau/ix/valID/byVal mirror vgraph's q-gram candidate
	// filter: probe < 0 means no eligible attribute (linear scan).
	probe   int
	attrTau float64
	ix      *strsim.Index
	valID   map[string]int
	byVal   [][]int // probe value id -> local pattern indices
}

// shard is one connected component of the link graph: the rows it owns and
// whether its repair is stale.
type shard struct {
	rows  []int
	edges int // violation edges inside the shard; 0 means consistent as-is
	dirty bool
}

// component is one FD-attribute component (Theorem 5): its FD subset, its
// union-find over pattern elements, and its live shards keyed by root.
type component struct {
	name   string
	sub    *fd.Set
	attrs  []int
	fds    []*perFD
	parent []int
	shards map[int]*shard
}

// Engine is the sharded incremental repair engine. mu serializes flushes
// and guards the registries/union-find/shards; stateMu guards the row
// storage and the stats snapshot, and is held only for brief appends,
// write-backs and reads — never across a repair computation — so readers
// (Stats, Snapshot, WriteCSV) do not block behind a slow batch.
type Engine struct {
	mu      sync.Mutex
	stateMu sync.RWMutex

	schema  *dataset.Schema
	set     *fd.Set
	cfg     *fd.DistConfig
	algo    string
	workers int
	ropts   repair.Options
	trace   *obs.Trace
	led     ledger.Sink

	// input holds admitted rows with their original values (what detection
	// and repair consume); out holds the repaired view, row-aligned.
	input *dataset.Relation
	out   *dataset.Relation

	comps []*component

	stats Stats
}

// NewEngine builds an engine over base and flushes the base rows as the
// initial batch (reason "init"), repairing them if they are inconsistent.
// The returned BatchResult describes that initial flush; its ChangedCells
// is the cost of making the base consistent. base itself is not modified.
func NewEngine(base *dataset.Relation, set *fd.Set, cfg *fd.DistConfig, opts Options) (*Engine, *BatchResult, error) {
	if base == nil || base.Schema == nil {
		return nil, nil, fmt.Errorf("incr: nil base relation or schema")
	}
	algo := opts.Algorithm
	if algo == "" {
		algo = "GreedyM"
	}
	switch algo {
	case "ExactS", "GreedyS":
		if len(set.FDs) != 1 {
			return nil, nil, fmt.Errorf("incr: %s repairs a single FD, set has %d", algo, len(set.FDs))
		}
	case "ExactM", "ApproM", "GreedyM":
	default:
		return nil, nil, fmt.Errorf("incr: unknown algorithm %q", opts.Algorithm)
	}
	if cfg.Cache == nil {
		// The cache is what keeps distance work warm across batches; give
		// the engine its own rather than mutating the caller's config.
		cc := *cfg
		cc.Cache = fd.NewDistCache()
		cc.AttachPlanes()
		cfg = &cc
	}
	e := &Engine{
		schema:  base.Schema,
		set:     set,
		cfg:     cfg,
		algo:    algo,
		workers: opts.Workers,
		ropts:   opts.Repair,
		trace:   opts.Trace,
		led:     opts.Ledger,
		input:   &dataset.Relation{Schema: base.Schema},
		out:     &dataset.Relation{Schema: base.Schema},
	}
	for ci, idx := range set.Components() {
		sub := set.Subset(idx)
		c := &component{
			name:   fmt.Sprintf("comp%d", ci),
			sub:    sub,
			attrs:  unionAttrs(sub.FDs),
			shards: make(map[int]*shard),
		}
		for i, phi := range sub.FDs {
			pf := &perFD{phi: phi, tau: sub.Tau[i], keys: make(map[string]int), probe: -1}
			pf.chooseProbe(base.Schema, cfg)
			c.fds = append(c.fds, pf)
		}
		e.comps = append(e.comps, c)
	}
	rows := make([][]string, base.Len())
	for i, t := range base.Tuples {
		rows[i] = t
	}
	br, err := e.append(rows, "init", nil, false)
	if err != nil {
		return nil, br, err
	}
	return e, br, nil
}

// RepairAll is the from-scratch reference: a fresh engine fed the entire
// relation as one batch. Bit-identical to any batched ingest of the same
// rows in the same order — the equivalence oracle for the incremental path.
func RepairAll(rel *dataset.Relation, set *fd.Set, cfg *fd.DistConfig, opts Options) (*dataset.Relation, *BatchResult, error) {
	eng, br, err := NewEngine(rel, set, cfg, opts)
	if err != nil {
		return nil, br, err
	}
	return eng.Snapshot(), br, nil
}

// unionAttrs collects the distinct attributes of the FDs, ascending.
func unionAttrs(fds []*fd.FD) []int {
	seen := make(map[int]bool)
	var out []int
	for _, phi := range fds {
		for _, c := range phi.Attrs() {
			if !seen[c] {
				seen[c] = true
				out = append(out, c)
			}
		}
	}
	sort.Ints(out)
	return out
}

// chooseProbe mirrors vgraph's probe selection: with Levenshtein distances
// and a per-side weight w where tau/w < 1, a violating pair's probe values
// are within tau/w normalized edit distance, so a q-gram index over probe
// values filters candidates. Prefers an LHS string attribute, then RHS.
func (pf *perFD) chooseProbe(schema *dataset.Schema, cfg *fd.DistConfig) {
	if cfg.Edit != fd.EditLevenshtein {
		return
	}
	try := func(cols []int, w float64) int {
		if w <= 0 || pf.tau/w >= 1 {
			return -1
		}
		for _, c := range cols {
			if schema.Attr(c).Type == dataset.String {
				return c
			}
		}
		return -1
	}
	probe, w := -1, 0.0
	if c := try(pf.phi.LHS, cfg.WL); c >= 0 {
		probe, w = c, cfg.WL
	} else if c := try(pf.phi.RHS, cfg.WR); c >= 0 {
		probe, w = c, cfg.WR
	}
	if probe < 0 {
		return
	}
	pf.probe = probe
	pf.attrTau = pf.tau / w
	pf.ix = strsim.NewIndex(2)
	pf.valID = make(map[string]int)
}

// candidates returns the local indices of existing patterns that FT-violate
// t, via the probe index when available, else a linear scan. self is t's own
// just-appended pattern index, excluded from the scan.
func (pf *perFD) candidates(cfg *fd.DistConfig, t dataset.Tuple, self int) []int {
	var out []int
	pm := cfg.AcquirePairMatcher(pf.phi, t)
	defer pm.Release()
	if pf.ix != nil {
		for _, m := range pf.ix.SearchNormalized(t[pf.probe], pf.attrTau) {
			for _, qi := range pf.byVal[m.ID] {
				if qi == self {
					continue
				}
				if _, within := pm.DistWithin(pf.tau, pf.pats[qi].rep); within {
					out = append(out, qi)
				}
			}
		}
		return out
	}
	for qi := range pf.pats {
		if qi == self {
			continue
		}
		if _, within := pm.DistWithin(pf.tau, pf.pats[qi].rep); within {
			out = append(out, qi)
		}
	}
	return out
}

// indexPattern registers the pattern at local index li in the probe index.
func (pf *perFD) indexPattern(li int, t dataset.Tuple) {
	if pf.ix == nil {
		return
	}
	val := t[pf.probe]
	id, ok := pf.valID[val]
	if !ok {
		id = pf.ix.Add(val)
		pf.valID[val] = id
		pf.byVal = append(pf.byVal, nil)
	}
	pf.byVal[id] = append(pf.byVal[id], li)
}

func (c *component) find(x int) int {
	for c.parent[x] != x {
		c.parent[x] = c.parent[c.parent[x]]
		x = c.parent[x]
	}
	return x
}

// union links two elements. It keeps the root whose shard holds more rows
// (ties to the smaller id), merges row lists, edge counts and dirty flags,
// and reports whether two row-bearing shards were merged (merge-on-edge).
func (c *component) union(a, b int) (root int, merged bool) {
	ra, rb := c.find(a), c.find(b)
	if ra == rb {
		return ra, false
	}
	sa, sb := c.shards[ra], c.shards[rb]
	if len(sb.rows) > len(sa.rows) || (len(sb.rows) == len(sa.rows) && rb < ra) {
		ra, rb = rb, ra
		sa, sb = sb, sa
	}
	merged = len(sa.rows) > 0 && len(sb.rows) > 0
	c.parent[rb] = ra
	sa.rows = append(sa.rows, sb.rows...)
	sa.edges += sb.edges
	sa.dirty = sa.dirty || sb.dirty
	delete(c.shards, rb)
	return ra, merged
}

// newElem allocates a union-find element with its own empty shard.
func (c *component) newElem() int {
	id := len(c.parent)
	c.parent = append(c.parent, id)
	c.shards[id] = &shard{}
	return id
}

// register routes one admitted row into the component: it interns the row's
// patterns, detects the new patterns' violations against the warm registry
// (linking on every edge), unions the row's patterns across FDs, and adds
// the row to the resulting shard, dirtying it. Returns merge-on-edge count.
func (c *component) register(cfg *fd.DistConfig, row int, t dataset.Tuple) int {
	merges := 0
	home := -1
	for _, pf := range c.fds {
		k := t.Key(pf.phi.Attrs())
		el, ok := pf.keys[k]
		if !ok {
			el = c.newElem()
			pf.keys[k] = el
			li := len(pf.pats)
			pf.pats = append(pf.pats, pattern{elem: el, rep: t})
			for _, qi := range pf.candidates(cfg, t, li) {
				r, m := c.union(el, pf.pats[qi].elem)
				c.shards[r].edges++
				if m {
					merges++
				}
			}
			pf.indexPattern(li, t)
		}
		if home < 0 {
			home = el
		} else if _, m := c.union(home, el); m {
			merges++
		}
		home = c.find(home)
	}
	sh := c.shards[home]
	sh.rows = append(sh.rows, row)
	sh.dirty = true
	return merges
}

// shardJob is one dirty shard scheduled for re-repair.
type shardJob struct {
	comp *component
	sh   *shard
	rows []int // sorted ascending
	res  *repair.Result
	err  error
	skip bool // no violation edges: consistent without a run
	// buf collects the inner repair run's ledger events (shard-local row
	// numbering); the write-back loop consumes them as justification for
	// the cells it actually changes.
	buf *ledger.Buffer
}

// Append admits a batch of rows: validates and stores them, routes them
// into shards, and re-repairs every dirty shard (including shards left
// dirty by an earlier canceled flush). reason labels the flush in metrics
// and events. When cancel fires mid-flush the remaining shards stay dirty
// and self-heal on the next flush; the error is repair.ErrCanceled and the
// BatchResult describes the partial work.
func (e *Engine) Append(rows [][]string, reason string, cancel <-chan struct{}) (*BatchResult, error) {
	if reason == "" {
		reason = "manual"
	}
	return e.append(rows, reason, cancel, true)
}

func (e *Engine) append(rows [][]string, reason string, cancel <-chan struct{}, countAppends bool) (*BatchResult, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	start := time.Now()
	br := &BatchResult{Reason: reason, Rows: make([]RowResult, len(rows))}

	// Admit rows: validate + store under a brief write lock. Relation.Append
	// checks arity and numeric cells; rejected rows are skipped.
	batchStart := e.input.Len()
	admitted := make([]int, 0, len(rows))
	e.stateMu.Lock()
	for i, row := range rows {
		tp := dataset.Tuple(row).Clone()
		if err := e.input.Append(tp); err != nil {
			br.Rows[i].Err = err
			continue
		}
		if err := e.out.Append(tp.Clone()); err != nil {
			// Unreachable: out mirrors input's schema and tp just passed.
			br.Rows[i].Err = err
			continue
		}
		admitted = append(admitted, i)
	}
	e.stateMu.Unlock()
	br.Accepted = len(admitted)

	// Shard selection: route each admitted row into its shard. Touches only
	// engine-private structures (guarded by mu); input rows are immutable
	// once admitted, so no state lock is needed to read them.
	sel := obs.Begin(e.trace, obs.PhaseShardSelect)
	// The register loop is dominated by candidate scans (probe-index
	// searches plus bounded distance verification); the distance child span
	// makes that share visible under the shardselect phase.
	ds := sel.Child(obs.PhaseDistance)
	for _, c := range e.comps {
		for k := range admitted {
			row := batchStart + k
			br.Merges += c.register(e.cfg, row, e.input.Tuples[row])
		}
	}
	ds.End()
	sel.Add("rows", int64(len(admitted)))
	sel.End()

	// Collect dirty shards, deterministically ordered.
	var jobs []*shardJob
	for _, c := range e.comps {
		var roots []int
		for root, sh := range c.shards {
			if sh.dirty && len(sh.rows) > 0 {
				roots = append(roots, root)
			}
		}
		sort.Ints(roots)
		for _, root := range roots {
			sh := c.shards[root]
			srows := append([]int(nil), sh.rows...)
			sort.Ints(srows)
			jobs = append(jobs, &shardJob{comp: c, sh: sh, rows: srows, skip: sh.edges == 0})
		}
	}
	br.ShardsTouched = len(jobs)
	for _, j := range jobs {
		if len(j.rows) > br.MaxShardRows {
			br.MaxShardRows = len(j.rows)
		}
	}

	// Re-repair dirty shards in parallel. Shards are disjoint row sets per
	// component and components have disjoint attributes, so the jobs commute
	// and the outcome is identical at any worker count.
	var torun []*shardJob
	for _, j := range jobs {
		if !j.skip {
			torun = append(torun, j)
		}
	}
	within := 1
	if len(torun) == 1 {
		within = e.workers
	}
	workers := e.workers
	if workers < 1 {
		workers = 1
	}
	if workers > len(torun) {
		workers = len(torun)
	}
	if len(torun) > 0 {
		var wg sync.WaitGroup
		next := make(chan *shardJob)
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				for j := range next {
					if canceled(cancel) {
						j.err = repair.ErrCanceled
						continue
					}
					sp := obs.Begin(e.trace, obs.PhaseIncRepair)
					sp.SetFD(j.comp.name)
					sp.SetWorker(w)
					j.res, j.err = e.repairShard(j, within, cancel)
					sp.Add("rows", int64(len(j.rows)))
					sp.End()
				}
			}(w)
		}
		for _, j := range torun {
			next <- j
		}
		close(next)
		wg.Wait()
	}

	// Write back under a brief state lock: repaired shards' values for
	// their component's attributes, stats, and per-row outcomes. Failed
	// shards stay dirty and retry on the next flush.
	var firstErr error
	rewrittenOld := make(map[int]bool)
	var pending *ledger.Buffer
	if e.led != nil {
		pending = &ledger.Buffer{}
	}
	e.stateMu.Lock()
	for ji, j := range jobs {
		if j.err != nil {
			if firstErr == nil {
				firstErr = j.err
			}
			continue
		}
		if !j.skip {
			// just maps (shard-local row, col) to the inner run's event so
			// write-back events inherit the justification (FD, edge,
			// join-target, algorithm). Cells the inner run did not touch —
			// possible when a re-repair reverts an earlier batch's change
			// back to the input value — get a bare event.
			var just map[[2]int]ledger.RepairEvent
			if j.buf != nil {
				inner := j.buf.Drain()
				just = make(map[[2]int]ledger.RepairEvent, len(inner))
				for _, ie := range inner {
					just[[2]int{ie.Row, ie.Col}] = ie
				}
			}
			for k, row := range j.rows {
				rep := j.res.Repaired.Tuples[k]
				for _, col := range j.comp.attrs {
					if e.out.Tuples[row][col] != rep[col] {
						if pending != nil {
							ev := just[[2]int{k, col}]
							ev.Row, ev.Col = row, col
							ev.Attr = e.schema.Attr(col).Name
							// Old is the overwritten repaired-view value
							// (not the inner run's input value): reverse
							// replay must restore exactly what stood here.
							ev.Old = e.out.Tuples[row][col]
							ev.New = rep[col]
							ev.CostDelta = e.cfg.RepairDist(col, ev.Old, ev.New)
							if ev.Algorithm == "" {
								ev.Algorithm = e.algo
							}
							// Worker records the deterministic job ordinal,
							// not the goroutine that ran the shard.
							ev.Worker = ji
							pending.Add(ev)
						}
						e.out.Tuples[row][col] = rep[col]
						br.ChangedCells++
						if row < batchStart {
							rewrittenOld[row] = true
						}
					}
				}
			}
			br.ShardsRepaired++
		}
		j.sh.dirty = false
	}
	br.Rewritten = len(rewrittenOld)
	for k, i := range admitted {
		row := batchStart + k
		br.Rows[i].Values = e.out.Tuples[row].Clone()
		br.Rows[i].Repaired = !tupleEqual(e.out.Tuples[row], e.input.Tuples[row])
		if br.Rows[i].Repaired {
			br.Repaired++
		}
	}
	br.TotalRows = e.input.Len()
	shards := 0
	for _, c := range e.comps {
		shards += len(c.shards)
	}
	e.stats.Rows = br.TotalRows
	e.stats.Batches++
	if countAppends {
		e.stats.Accepted += br.Accepted
		e.stats.Repaired += br.Repaired
	}
	e.stats.Rewritten += br.Rewritten
	e.stats.Shards = shards
	e.stats.Merges += br.Merges
	e.stateMu.Unlock()

	if pending != nil {
		// One ledger batch per flush — the same single-flush-point pattern
		// as ObserveIncrBatch below. Commit ignores empty flushes.
		e.led.Commit(pending.Drain())
	}

	br.Elapsed = time.Since(start)
	obs.ObserveIncrBatch(obs.IncrBatch{
		Reason:         reason,
		Rows:           br.Accepted,
		Repaired:       br.Repaired,
		ShardsTouched:  br.ShardsTouched,
		ShardsRepaired: br.ShardsRepaired,
		Merges:         br.Merges,
		Shards:         shards,
		MaxShardRows:   br.MaxShardRows,
		Dur:            br.Elapsed,
	})
	return br, firstErr
}

// repairShard runs the configured algorithm over one shard's sub-relation
// of original input values. Input tuples are immutable once admitted, so
// the sub-relation aliases them without locking.
func (e *Engine) repairShard(j *shardJob, parallel int, cancel <-chan struct{}) (*repair.Result, error) {
	sub := &dataset.Relation{Schema: e.schema, Tuples: make([]dataset.Tuple, len(j.rows))}
	for k, row := range j.rows {
		sub.Tuples[k] = e.input.Tuples[row]
	}
	opts := e.ropts
	opts.Cancel = cancel
	opts.Trace = e.trace
	opts.Parallel = parallel
	opts.Ledger = nil
	if e.led != nil {
		// Collect the inner run's events privately; the write-back loop
		// remaps rows and commits once per flush. The caller's sink never
		// sees shard-local row numbers.
		j.buf = &ledger.Buffer{}
		opts.Ledger = j.buf
	}
	set := j.comp.sub
	switch e.algo {
	case "ExactS":
		return repair.ExactS(sub, set.FDs[0], e.cfg, set.Tau[0], opts)
	case "GreedyS":
		return repair.GreedyS(sub, set.FDs[0], e.cfg, set.Tau[0], opts)
	case "ExactM":
		return repair.ExactM(sub, set, e.cfg, opts)
	case "ApproM":
		return repair.ApproM(sub, set, e.cfg, opts)
	default:
		return repair.GreedyM(sub, set, e.cfg, opts)
	}
}

func canceled(ch <-chan struct{}) bool {
	select {
	case <-ch:
		return true
	default:
		return false
	}
}

func tupleEqual(a, b dataset.Tuple) bool {
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// Stats returns a snapshot of the engine's counters without blocking on an
// in-flight flush.
func (e *Engine) Stats() Stats {
	e.stateMu.RLock()
	defer e.stateMu.RUnlock()
	return e.stats
}

// Snapshot returns a deep copy of the repaired relation.
func (e *Engine) Snapshot() *dataset.Relation {
	e.stateMu.RLock()
	defer e.stateMu.RUnlock()
	return e.out.Clone()
}

// InputSnapshot returns a deep copy of the admitted rows with their
// original (pre-repair) values.
func (e *Engine) InputSnapshot() *dataset.Relation {
	e.stateMu.RLock()
	defer e.stateMu.RUnlock()
	return e.input.Clone()
}

// WriteCSV serializes the repaired relation. The read lock is held for the
// duration of the write; pass an in-memory writer.
func (e *Engine) WriteCSV(w *strings.Builder) error {
	e.stateMu.RLock()
	defer e.stateMu.RUnlock()
	return dataset.WriteCSV(w, e.out)
}
