package incr_test

import (
	"fmt"
	"math/rand"
	"testing"

	"ftrepair/internal/dataset"
	"ftrepair/internal/eval"
	"ftrepair/internal/fd"
	"ftrepair/internal/incr"
	"ftrepair/internal/repair"
)

// hospInstance prepares a HOSP instance with the given FD count.
func hospInstance(t *testing.T, n, nfds int) *eval.Instance {
	t.Helper()
	inst, err := eval.Prepare(eval.Setup{Workload: "hosp", N: n, FDs: nfds, ErrorRate: 0.05, Seed: 17})
	if err != nil {
		t.Fatal(err)
	}
	return inst
}

func rowsOf(rel *dataset.Relation) [][]string {
	out := make([][]string, rel.Len())
	for i, tp := range rel.Tuples {
		out[i] = tp
	}
	return out
}

func mustEqualRelations(t *testing.T, got, want *dataset.Relation, label string) {
	t.Helper()
	if got.Len() != want.Len() {
		t.Fatalf("%s: %d rows, want %d", label, got.Len(), want.Len())
	}
	for i := range want.Tuples {
		for j := range want.Tuples[i] {
			if got.Tuples[i][j] != want.Tuples[i][j] {
				t.Fatalf("%s: cell (%d,%d) = %q, want %q", label, i, j,
					got.Tuples[i][j], want.Tuples[i][j])
			}
		}
	}
}

// ingest feeds rows into a fresh engine over base, in chunks of size chunk.
func ingest(t *testing.T, base *dataset.Relation, rows [][]string, chunk int,
	set *fd.Set, cfg *fd.DistConfig, opts incr.Options) *incr.Engine {
	t.Helper()
	eng, _, err := incr.NewEngine(base, set, cfg, opts)
	if err != nil {
		t.Fatal(err)
	}
	for off := 0; off < len(rows); off += chunk {
		end := off + chunk
		if end > len(rows) {
			end = len(rows)
		}
		if _, err := eng.Append(rows[off:end], "manual", nil); err != nil {
			t.Fatal(err)
		}
	}
	return eng
}

// TestEngineEquivalenceSingleFD is the core oracle: for a single FD, the
// sharded batched ingest must be bit-identical to one-shot GreedyS over the
// full input — at any batch split, any worker count, and any row order.
func TestEngineEquivalenceSingleFD(t *testing.T) {
	inst := hospInstance(t, 400, 1)
	orders := map[string][]int{"natural": nil, "shuffled": rand.New(rand.NewSource(7)).Perm(inst.Dirty.Len())}
	for oname, perm := range orders {
		full := inst.Dirty
		if perm != nil {
			full = &dataset.Relation{Schema: inst.Dirty.Schema}
			for _, i := range perm {
				full.Tuples = append(full.Tuples, inst.Dirty.Tuples[i])
			}
		}
		oneshot, err := repair.GreedyS(full, inst.Set.FDs[0], inst.Cfg, inst.Set.Tau[0], repair.Options{})
		if err != nil {
			t.Fatal(err)
		}
		split := 150
		base := &dataset.Relation{Schema: full.Schema, Tuples: full.Tuples[:split]}
		rows := rowsOf(full)[split:]
		for _, workers := range []int{1, 2, 8} {
			for _, chunk := range []int{5, 40, len(rows)} {
				name := fmt.Sprintf("%s/w%d/chunk%d", oname, workers, chunk)
				eng := ingest(t, base, rows, chunk, inst.Set, inst.Cfg,
					incr.Options{Algorithm: "GreedyS", Workers: workers})
				mustEqualRelations(t, eng.Snapshot(), oneshot.Repaired, name)
				if err := repair.VerifyFTConsistent(eng.Snapshot(), inst.Set, inst.Cfg); err != nil {
					t.Fatalf("%s: %v", name, err)
				}
			}
		}
	}
}

// TestEngineEquivalenceMultiFD pins the batched multi-FD ingest to the
// engine's own from-scratch reference (RepairAll): identical output at any
// batch split and worker count, and FT-consistent throughout.
func TestEngineEquivalenceMultiFD(t *testing.T) {
	inst := hospInstance(t, 300, 0)
	oracle, _, err := incr.RepairAll(inst.Dirty, inst.Set, inst.Cfg, incr.Options{})
	if err != nil {
		t.Fatal(err)
	}
	split := 100
	base := &dataset.Relation{Schema: inst.Dirty.Schema, Tuples: inst.Dirty.Tuples[:split]}
	rows := rowsOf(inst.Dirty)[split:]
	for _, workers := range []int{1, 2, 8} {
		for _, chunk := range []int{7, 60, len(rows)} {
			name := fmt.Sprintf("w%d/chunk%d", workers, chunk)
			eng := ingest(t, base, rows, chunk, inst.Set, inst.Cfg,
				incr.Options{Workers: workers})
			mustEqualRelations(t, eng.Snapshot(), oracle, name)
			if err := repair.VerifyFTConsistent(eng.Snapshot(), inst.Set, inst.Cfg); err != nil {
				t.Fatalf("%s: %v", name, err)
			}
			st := eng.Stats()
			if st.Accepted != len(rows) {
				t.Fatalf("%s: accepted = %d, want %d", name, st.Accepted, len(rows))
			}
		}
	}
}

// TestEngineCancelSelfHeals: a canceled flush leaves its shards dirty and
// provisional (ErrCanceled partial semantics); the next flush re-repairs
// them and converges to the from-scratch result.
func TestEngineCancelSelfHeals(t *testing.T) {
	inst := hospInstance(t, 300, 0)
	split := 200
	base := &dataset.Relation{Schema: inst.Dirty.Schema, Tuples: inst.Dirty.Tuples[:split]}
	eng, _, err := incr.NewEngine(base, inst.Set, inst.Cfg, incr.Options{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	cancel := make(chan struct{})
	close(cancel)
	br, err := eng.Append(rowsOf(inst.Dirty)[split:], "manual", cancel)
	if err != repair.ErrCanceled {
		t.Fatalf("canceled append err = %v, want ErrCanceled", err)
	}
	if br.Accepted != inst.Dirty.Len()-split {
		t.Fatalf("canceled append admitted %d rows, want %d", br.Accepted, inst.Dirty.Len()-split)
	}
	// The rows are admitted with provisional values; a later (empty) flush
	// picks up the leftover dirty shards.
	heal, err := eng.Append(nil, "manual", nil)
	if err != nil {
		t.Fatal(err)
	}
	if heal.ShardsTouched == 0 {
		t.Fatal("healing flush found no leftover dirty shards")
	}
	oracle, _, err := incr.RepairAll(inst.Dirty, inst.Set, inst.Cfg, incr.Options{})
	if err != nil {
		t.Fatal(err)
	}
	mustEqualRelations(t, eng.Snapshot(), oracle, "after heal")
	if err := repair.VerifyFTConsistent(eng.Snapshot(), inst.Set, inst.Cfg); err != nil {
		t.Fatal(err)
	}
}

// TestEngineRejectsBadRows: per-row validation failures are reported and
// skipped without poisoning the batch.
func TestEngineRejectsBadRows(t *testing.T) {
	inst := hospInstance(t, 100, 1)
	eng, _, err := incr.NewEngine(inst.Dirty, inst.Set, inst.Cfg, incr.Options{})
	if err != nil {
		t.Fatal(err)
	}
	good := append([]string(nil), inst.Dirty.Tuples[0]...)
	br, err := eng.Append([][]string{{"too", "short"}, good}, "manual", nil)
	if err != nil {
		t.Fatal(err)
	}
	if br.Rows[0].Err == nil {
		t.Fatal("arity error not reported")
	}
	if br.Rows[1].Err != nil || br.Rows[1].Values == nil {
		t.Fatalf("good row rejected: %+v", br.Rows[1])
	}
	if br.Accepted != 1 {
		t.Fatalf("accepted = %d, want 1", br.Accepted)
	}
}

// TestEngineTouchBoundedWork: a batch touching one small neighborhood must
// not re-repair the whole relation — the largest touched shard stays far
// below the relation size. Uses the 3-FD HOSP subset: the full 9-FD set
// contains low-cardinality FDs whose shared patterns chain every row into
// one shard (locality degrades to from-scratch there, by design).
func TestEngineTouchBoundedWork(t *testing.T) {
	inst := hospInstance(t, 1000, 3)
	eng, _, err := incr.NewEngine(inst.Dirty, inst.Set, inst.Cfg, incr.Options{})
	if err != nil {
		t.Fatal(err)
	}
	// Re-append a copy of an existing row: it lands in that row's shard only.
	br, err := eng.Append([][]string{append([]string(nil), inst.Dirty.Tuples[3]...)}, "manual", nil)
	if err != nil {
		t.Fatal(err)
	}
	st := eng.Stats()
	if br.MaxShardRows >= st.Rows/2 {
		t.Fatalf("touched shard has %d rows of %d — shards are not localizing", br.MaxShardRows, st.Rows)
	}
	if br.ShardsTouched == 0 {
		t.Fatal("no shard touched by an appended row")
	}
}

// TestEngineRejectsUnknownAlgorithm covers constructor validation.
func TestEngineRejectsUnknownAlgorithm(t *testing.T) {
	inst := hospInstance(t, 50, 0)
	if _, _, err := incr.NewEngine(inst.Dirty, inst.Set, inst.Cfg, incr.Options{Algorithm: "Bogus"}); err == nil {
		t.Fatal("unknown algorithm accepted")
	}
	if _, _, err := incr.NewEngine(inst.Dirty, inst.Set, inst.Cfg, incr.Options{Algorithm: "GreedyS"}); err == nil {
		t.Fatal("GreedyS accepted with a multi-FD set")
	}
}
