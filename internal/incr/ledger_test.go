package incr_test

import (
	"fmt"
	"testing"

	"ftrepair/internal/dataset"
	"ftrepair/internal/incr"
	"ftrepair/internal/ledger"
)

// ledgeredEngine ingests rows in fixed-size chunks with a ledger attached.
func ledgeredEngine(t *testing.T, base *dataset.Relation, rows [][]string, chunk, workers int,
	inst interface {
		// matched structurally below; see callers
	}) {
}

// TestEngineLedgerDeterministicAcrossWorkers fixes the batch split and
// varies only the worker count: the ledger's chained run root must be
// bit-identical, because events are addressed by shard ordinal and sorted by
// cell, never by goroutine scheduling. (Different batch splits legitimately
// produce different roots — the chain commits to flush boundaries — so the
// invariant is per-split; cross-split equivalence is undo-replay's job.)
func TestEngineLedgerDeterministicAcrossWorkers(t *testing.T) {
	inst := hospInstance(t, 300, 0)
	split := 100
	base := &dataset.Relation{Schema: inst.Dirty.Schema, Tuples: inst.Dirty.Tuples[:split]}
	rows := rowsOf(inst.Dirty)[split:]
	var ref string
	for _, workers := range []int{1, 2, 8} {
		led := ledger.New()
		ingest(t, base, rows, 40, inst.Set, inst.Cfg,
			incr.Options{Workers: workers, Ledger: led})
		if led.Len() == 0 {
			t.Fatal("ledger is empty; instance too clean to test determinism")
		}
		root := led.RunRootHex()
		if ref == "" {
			ref = root
			continue
		}
		if root != ref {
			t.Fatalf("workers=%d: run root %s != reference %s", workers, root, ref)
		}
	}
}

// TestEngineLedgerUndoRoundTrip checks the incremental ledger's replay
// contract at several batch splits and worker counts: every flush commits
// one batch whose events' Old values are the overwritten repaired-view
// cells, so undoing the whole ledger over the final snapshot reproduces the
// raw input exactly.
func TestEngineLedgerUndoRoundTrip(t *testing.T) {
	inst := hospInstance(t, 300, 0)
	split := 100
	base := &dataset.Relation{Schema: inst.Dirty.Schema, Tuples: inst.Dirty.Tuples[:split]}
	rows := rowsOf(inst.Dirty)[split:]
	for _, workers := range []int{1, 8} {
		for _, chunk := range []int{7, 60, len(rows)} {
			name := fmt.Sprintf("w%d/chunk%d", workers, chunk)
			led := ledger.New()
			eng := ingest(t, base, rows, chunk, inst.Set, inst.Cfg,
				incr.Options{Workers: workers, Ledger: led})
			for _, e := range led.Events() {
				if e.Algorithm == "" {
					t.Fatalf("%s: event seq %d has no algorithm", name, e.Seq)
				}
			}
			reverted, err := ledger.Undo(eng.Snapshot(), led.Events(), 0)
			if err != nil {
				t.Fatalf("%s: undo: %v", name, err)
			}
			mustEqualRelations(t, reverted, eng.InputSnapshot(), name+"/undo")
			// Forward replay over the raw input reproduces the snapshot.
			replayed := eng.InputSnapshot()
			for _, e := range led.Events() {
				if got := replayed.Tuples[e.Row][e.Col]; got != e.Old {
					t.Fatalf("%s: replay seq %d found %q, event recorded old %q", name, e.Seq, got, e.Old)
				}
				replayed.Tuples[e.Row][e.Col] = e.New
			}
			mustEqualRelations(t, replayed, eng.Snapshot(), name+"/replay")
		}
	}
}

// TestEngineLedgerOneBatchPerFlush pins the commit discipline: each flush
// that applied repairs lands as exactly one ledger batch, so batch count
// never exceeds the number of ingest flushes (plus the initial base
// repair), and no committed batch is empty.
func TestEngineLedgerOneBatchPerFlush(t *testing.T) {
	inst := hospInstance(t, 300, 0)
	split := 100
	base := &dataset.Relation{Schema: inst.Dirty.Schema, Tuples: inst.Dirty.Tuples[:split]}
	rows := rowsOf(inst.Dirty)[split:]
	chunk := 40
	led := ledger.New()
	ingest(t, base, rows, chunk, inst.Set, inst.Cfg, incr.Options{Workers: 2, Ledger: led})
	flushes := (len(rows)+chunk-1)/chunk + 1
	batches := led.Batches()
	if len(batches) == 0 || len(batches) > flushes {
		t.Fatalf("%d ledger batches for at most %d flushes", len(batches), flushes)
	}
	for _, b := range batches {
		if b.Count == 0 {
			t.Fatalf("batch %d is empty; empty commits must be no-ops", b.Index)
		}
	}
}
