// Package ind implements inclusion dependencies, the second constraint
// class of the cost-based repair model this paper extends (Bohannon et
// al., SIGMOD 2005, repairs with FDs and INDs): R[X] ⊆ S[Y] — every value
// combination of X in the data must occur as a Y combination in a
// reference relation. Detection lists orphan tuples; repair maps each
// orphan's X values to the closest reference combination (closed world:
// repaired values come from the reference).
package ind

import (
	"fmt"
	"math"
	"sort"

	"ftrepair/internal/dataset"
	"ftrepair/internal/fd"
)

// IND is an inclusion dependency from data attributes into reference
// attributes.
type IND struct {
	Name string
	// Data is the constrained relation's schema; DataAttrs its columns.
	Data      *dataset.Schema
	DataAttrs []int
	// RefAttrs are the aligned columns of the reference relation Ref.
	RefAttrs []int
	Ref      *dataset.Relation
}

// New builds an IND from attribute names.
func New(data *dataset.Schema, dataAttrs []string, ref *dataset.Relation, refAttrs []string, name string) (*IND, error) {
	if len(dataAttrs) == 0 || len(dataAttrs) != len(refAttrs) {
		return nil, fmt.Errorf("ind: %s: attribute lists must be non-empty and aligned", name)
	}
	d, err := data.Indices(dataAttrs...)
	if err != nil {
		return nil, fmt.Errorf("ind: %s: %w", name, err)
	}
	r, err := ref.Schema.Indices(refAttrs...)
	if err != nil {
		return nil, fmt.Errorf("ind: %s: %w", name, err)
	}
	return &IND{Name: name, Data: data, DataAttrs: d, RefAttrs: r, Ref: ref}, nil
}

// String renders the IND.
func (d *IND) String() string {
	names := func(s *dataset.Schema, cols []int) string {
		out := ""
		for i, c := range cols {
			if i > 0 {
				out += ","
			}
			out += s.Attr(c).Name
		}
		return out
	}
	s := fmt.Sprintf("[%s] subseteq ref[%s]", names(d.Data, d.DataAttrs), names(d.Ref.Schema, d.RefAttrs))
	if d.Name != "" {
		return d.Name + ": " + s
	}
	return s
}

// refKeys builds the set of reference combinations.
func (d *IND) refKeys() map[string]int {
	keys := make(map[string]int, d.Ref.Len())
	for i, t := range d.Ref.Tuples {
		k := t.Key(d.RefAttrs)
		if _, ok := keys[k]; !ok {
			keys[k] = i
		}
	}
	return keys
}

// Orphans lists the rows of rel whose projection is absent from the
// reference.
func (d *IND) Orphans(rel *dataset.Relation) []int {
	keys := d.refKeys()
	var out []int
	for i, t := range rel.Tuples {
		if _, ok := keys[t.Key(d.DataAttrs)]; !ok {
			out = append(out, i)
		}
	}
	return out
}

// Consistent reports whether rel satisfies the IND.
func (d *IND) Consistent(rel *dataset.Relation) bool {
	return len(d.Orphans(rel)) == 0
}

// Repair maps every orphan's constrained values to the closest reference
// combination under cfg's per-attribute repair distances, returning the
// repaired copy and the number of rows touched. Orphans sharing a
// projection repair identically (and the nearest-reference search is
// memoized on that projection).
func (d *IND) Repair(rel *dataset.Relation, cfg *fd.DistConfig) (*dataset.Relation, int) {
	out := rel.Clone()
	orphans := d.Orphans(rel)
	if len(orphans) == 0 {
		return out, 0
	}
	// Distinct reference combinations.
	seen := make(map[string]bool)
	var refs [][]string
	for _, t := range d.Ref.Tuples {
		k := t.Key(d.RefAttrs)
		if !seen[k] {
			seen[k] = true
			refs = append(refs, t.Project(d.RefAttrs))
		}
	}
	sort.Slice(refs, func(a, b int) bool {
		for i := range refs[a] {
			if refs[a][i] != refs[b][i] {
				return refs[a][i] < refs[b][i]
			}
		}
		return false
	})
	memo := make(map[string][]string)
	nearest := func(t dataset.Tuple) []string {
		k := t.Key(d.DataAttrs)
		if vals, ok := memo[k]; ok {
			return vals
		}
		best := math.Inf(1)
		var bestVals []string
		for _, ref := range refs {
			var c float64
			for i, col := range d.DataAttrs {
				c += cfg.RepairDist(col, t[col], ref[i])
				if c >= best {
					break
				}
			}
			if c < best {
				best = c
				bestVals = ref
			}
		}
		memo[k] = bestVals
		return bestVals
	}
	for _, row := range orphans {
		vals := nearest(out.Tuples[row])
		if vals == nil {
			continue // empty reference: nothing to map to
		}
		for i, col := range d.DataAttrs {
			out.Tuples[row][col] = vals[i]
		}
	}
	return out, len(orphans)
}
