package ind_test

import (
	"reflect"
	"testing"

	"ftrepair/internal/dataset"
	"ftrepair/internal/fd"
	"ftrepair/internal/ind"
)

func fixture(t *testing.T) (*dataset.Relation, *dataset.Relation, *ind.IND, *fd.DistConfig) {
	t.Helper()
	data, err := dataset.FromRows(dataset.Strings("Name", "Dept"), [][]string{
		{"ann", "sales"},
		{"bob", "salez"}, // orphan: typo
		{"eve", "hr"},
		{"joe", "finance"}, // orphan: missing from the reference
	})
	if err != nil {
		t.Fatal(err)
	}
	ref, err := dataset.FromRows(dataset.Strings("DeptName", "Head"), [][]string{
		{"sales", "x"},
		{"hr", "y"},
		{"marketing", "z"},
	})
	if err != nil {
		t.Fatal(err)
	}
	d, err := ind.New(data.Schema, []string{"Dept"}, ref, []string{"DeptName"}, "dept")
	if err != nil {
		t.Fatal(err)
	}
	cfg, err := fd.NewDistConfig(data, 0.7, 0.3)
	if err != nil {
		t.Fatal(err)
	}
	return data, ref, d, cfg
}

func TestNewValidation(t *testing.T) {
	data := dataset.NewRelation(dataset.Strings("A"))
	ref := dataset.NewRelation(dataset.Strings("B"))
	if _, err := ind.New(data.Schema, nil, ref, nil, "x"); err == nil {
		t.Fatal("empty attrs accepted")
	}
	if _, err := ind.New(data.Schema, []string{"A"}, ref, []string{"A", "B"}, "x"); err == nil {
		t.Fatal("misaligned attrs accepted")
	}
	if _, err := ind.New(data.Schema, []string{"Z"}, ref, []string{"B"}, "x"); err == nil {
		t.Fatal("unknown data attr accepted")
	}
	if _, err := ind.New(data.Schema, []string{"A"}, ref, []string{"Z"}, "x"); err == nil {
		t.Fatal("unknown ref attr accepted")
	}
}

func TestOrphansAndConsistent(t *testing.T) {
	data, _, d, _ := fixture(t)
	got := d.Orphans(data)
	if !reflect.DeepEqual(got, []int{1, 3}) {
		t.Fatalf("Orphans = %v", got)
	}
	if d.Consistent(data) {
		t.Fatal("inconsistent data reported consistent")
	}
}

func TestRepairMapsToNearestReference(t *testing.T) {
	data, _, d, cfg := fixture(t)
	out, touched := d.Repair(data, cfg)
	if touched != 2 {
		t.Fatalf("touched = %d", touched)
	}
	if out.Tuples[1][1] != "sales" {
		t.Fatalf("typo orphan mapped to %q", out.Tuples[1][1])
	}
	// "finance" has no close reference; it still maps to the cheapest one
	// deterministically.
	if out.Tuples[3][1] == "finance" {
		t.Fatal("orphan left unmapped")
	}
	if !d.Consistent(out) {
		t.Fatal("repair left orphans")
	}
	// Input untouched, clean rows untouched.
	if data.Tuples[1][1] != "salez" || out.Tuples[0][1] != "sales" {
		t.Fatal("wrong rows modified")
	}
	// Idempotent.
	again, touched2 := d.Repair(out, cfg)
	if touched2 != 0 {
		t.Fatalf("second repair touched %d", touched2)
	}
	cells, err := dataset.Diff(out, again)
	if err != nil || len(cells) != 0 {
		t.Fatalf("second repair changed %v %v", cells, err)
	}
}

func TestRepairEmptyReference(t *testing.T) {
	data, _ := dataset.FromRows(dataset.Strings("A"), [][]string{{"x"}})
	ref := dataset.NewRelation(dataset.Strings("B"))
	d, err := ind.New(data.Schema, []string{"A"}, ref, []string{"B"}, "")
	if err != nil {
		t.Fatal(err)
	}
	cfg, err := fd.NewDistConfig(data, 0.7, 0.3)
	if err != nil {
		t.Fatal(err)
	}
	out, touched := d.Repair(data, cfg)
	if touched != 1 || out.Tuples[0][0] != "x" {
		t.Fatalf("empty reference handling: touched=%d %v", touched, out.Tuples[0])
	}
}

func TestStringRendering(t *testing.T) {
	data, _, d, _ := fixture(t)
	_ = data
	if got := d.String(); got != "dept: [Dept] subseteq ref[DeptName]" {
		t.Fatalf("String = %q", got)
	}
}

func TestMultiAttributeIND(t *testing.T) {
	data, _ := dataset.FromRows(dataset.Strings("City", "State"), [][]string{
		{"Boston", "MA"},
		{"Boston", "NY"}, // combination absent from the reference
	})
	ref, _ := dataset.FromRows(dataset.Strings("C", "S"), [][]string{
		{"Boston", "MA"},
		{"Albany", "NY"},
	})
	d, err := ind.New(data.Schema, []string{"City", "State"}, ref, []string{"C", "S"}, "loc")
	if err != nil {
		t.Fatal(err)
	}
	cfg, err := fd.NewDistConfig(data, 0.7, 0.3)
	if err != nil {
		t.Fatal(err)
	}
	if got := d.Orphans(data); !reflect.DeepEqual(got, []int{1}) {
		t.Fatalf("Orphans = %v", got)
	}
	out, _ := d.Repair(data, cfg)
	// (Boston, NY) is closer to (Boston, MA) than (Albany, NY)? City
	// identical vs State identical: dist(NY,MA)=1 vs dist(Boston,Albany)
	// ~0.857 — Albany wins narrowly on raw sums; either way the result is
	// a reference combination.
	if !d.Consistent(out) {
		t.Fatal("multi-attribute repair left orphans")
	}
}
