package ledger

import (
	"bufio"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
)

// MarshalJSON encodes the hash as lowercase hex, the form every surface
// (JSONL dumps, the HTTP API, ledgercheck) exchanges roots in.
func (h Hash) MarshalJSON() ([]byte, error) {
	return json.Marshal(hex.EncodeToString(h[:]))
}

// UnmarshalJSON decodes a lowercase-hex hash.
func (h *Hash) UnmarshalJSON(b []byte) error {
	var s string
	if err := json.Unmarshal(b, &s); err != nil {
		return err
	}
	raw, err := hex.DecodeString(s)
	if err != nil {
		return fmt.Errorf("ledger: hash %q: %w", s, err)
	}
	if len(raw) != HashSize {
		return fmt.Errorf("ledger: hash %q has %d bytes, want %d", s, len(raw), HashSize)
	}
	copy(h[:], raw)
	return nil
}

// String returns the hash as lowercase hex.
func (h Hash) String() string { return hex.EncodeToString(h[:]) }

// line is one JSONL record: an event, a batch summary (emitted after the
// batch's events), or the trailing run record.
type line struct {
	Type  string       `json:"type"`
	Event *RepairEvent `json:"event,omitempty"`
	Batch *Batch       `json:"batch,omitempty"`
	// Run-record fields.
	RunRoot *Hash `json:"runRoot,omitempty"`
	Events  int   `json:"events,omitempty"`
	Batches int   `json:"batches,omitempty"`
}

// WriteJSONL dumps the ledger as one JSON object per line: each batch's
// events in Seq order followed by the batch summary, then a trailing run
// record with the chained run root. The dump is self-verifying — see
// Dump.Verify and cmd/ledgercheck.
func (l *Ledger) WriteJSONL(w io.Writer) error {
	l.mu.Lock()
	events := append([]RepairEvent(nil), l.events...)
	batches := append([]Batch(nil), l.batches...)
	root := l.root
	l.mu.Unlock()

	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	enc.SetEscapeHTML(false)
	for bi := range batches {
		b := batches[bi]
		for i := 0; i < b.Count; i++ {
			ev := events[b.Start+i]
			if err := enc.Encode(line{Type: "event", Event: &ev}); err != nil {
				return err
			}
		}
		if err := enc.Encode(line{Type: "batch", Batch: &b}); err != nil {
			return err
		}
	}
	rec := line{Type: "run", RunRoot: &root, Events: len(events), Batches: len(batches)}
	if err := enc.Encode(rec); err != nil {
		return err
	}
	return bw.Flush()
}

// Dump is a parsed JSONL ledger dump.
type Dump struct {
	Events  []RepairEvent
	Batches []Batch
	// RunRoot is the trailing run record's root; RunEvents/RunBatches its
	// counts.
	RunRoot    Hash
	RunEvents  int
	RunBatches int
}

// ReadJSONL parses a dump written by WriteJSONL. Structural problems
// (unknown record type, missing run record) are errors here; hash and
// chain mismatches are Verify's job.
func ReadJSONL(r io.Reader) (*Dump, error) {
	d := &Dump{}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	sawRun := false
	ln := 0
	for sc.Scan() {
		ln++
		raw := sc.Bytes()
		if len(raw) == 0 {
			continue
		}
		if sawRun {
			return nil, fmt.Errorf("ledger: line %d: data after the run record", ln)
		}
		var rec line
		if err := json.Unmarshal(raw, &rec); err != nil {
			return nil, fmt.Errorf("ledger: line %d: %w", ln, err)
		}
		switch rec.Type {
		case "event":
			if rec.Event == nil {
				return nil, fmt.Errorf("ledger: line %d: event record without event", ln)
			}
			d.Events = append(d.Events, *rec.Event)
		case "batch":
			if rec.Batch == nil {
				return nil, fmt.Errorf("ledger: line %d: batch record without batch", ln)
			}
			d.Batches = append(d.Batches, *rec.Batch)
		case "run":
			if rec.RunRoot == nil {
				return nil, fmt.Errorf("ledger: line %d: run record without runRoot", ln)
			}
			d.RunRoot = *rec.RunRoot
			d.RunEvents = rec.Events
			d.RunBatches = rec.Batches
			sawRun = true
		default:
			return nil, fmt.Errorf("ledger: line %d: unknown record type %q", ln, rec.Type)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if !sawRun {
		return nil, fmt.Errorf("ledger: dump has no run record (truncated?)")
	}
	return d, nil
}

// Verify recomputes the dump's entire hash structure offline: every event
// hash, every batch's Merkle root, and the chained run root, comparing each
// against the recorded values. A nil return means the dump is internally
// consistent — any flipped byte in any event or root surfaces as an error.
func (d *Dump) Verify() error {
	if len(d.Batches) != d.RunBatches {
		return fmt.Errorf("ledger: run record lists %d batches, dump has %d", d.RunBatches, len(d.Batches))
	}
	if len(d.Events) != d.RunEvents {
		return fmt.Errorf("ledger: run record lists %d events, dump has %d", d.RunEvents, len(d.Events))
	}
	var prev Hash
	off := 0
	for bi := range d.Batches {
		b := d.Batches[bi]
		if b.Index != bi {
			return fmt.Errorf("ledger: batch %d recorded as index %d", bi, b.Index)
		}
		if b.Start != off || b.Count <= 0 || b.Start+b.Count > len(d.Events) {
			return fmt.Errorf("ledger: batch %d spans [%d,%d), events run to %d (expected start %d)",
				bi, b.Start, b.Start+b.Count, len(d.Events), off)
		}
		leaves := make([]Hash, b.Count)
		for i := 0; i < b.Count; i++ {
			ev := &d.Events[b.Start+i]
			if ev.Seq != uint64(b.Start+i)+1 {
				return fmt.Errorf("ledger: event %d carries seq %d, want %d", b.Start+i, ev.Seq, b.Start+i+1)
			}
			if ev.Batch != bi {
				return fmt.Errorf("ledger: event seq %d carries batch %d, want %d", ev.Seq, ev.Batch, bi)
			}
			leaves[i] = EventHash(ev)
		}
		root := MerkleRoot(leaves)
		if root != b.Root {
			return fmt.Errorf("ledger: batch %d root mismatch: recomputed %s, recorded %s", bi, root, b.Root)
		}
		run := chainHash(prev, root)
		if run != b.RunRoot {
			return fmt.Errorf("ledger: batch %d chained root mismatch: recomputed %s, recorded %s", bi, run, b.RunRoot)
		}
		prev = run
		off += b.Count
	}
	if off != len(d.Events) {
		return fmt.Errorf("ledger: %d events outside any batch", len(d.Events)-off)
	}
	if prev != d.RunRoot {
		return fmt.Errorf("ledger: run root mismatch: recomputed %s, recorded %s", prev, d.RunRoot)
	}
	return nil
}
