// Package ledger is the tamper-evident repair ledger: cell-level
// provenance for every repair the engine applies.
//
// Each applied cell write is recorded as a RepairEvent carrying the cell
// address, both values, the justifying evidence (the FD and violation edge
// for pattern repairs, the chosen join-target for multi-FD plan repairs),
// the per-cell cost delta, and a deterministic worker/batch identity. A
// batch of events commits atomically: events are sorted by cell address,
// assigned monotone sequence numbers, hashed canonically, and folded into a
// Merkle tree whose root chains onto the previous batches' roots to form
// the run root. Prove/VerifyProof produce and check inclusion proofs
// against a batch root without access to the other events, and the chained
// run root commits to the whole history — flipping any byte of any event
// changes it.
//
// Determinism mirrors the repo-wide bit-identical-output discipline: the
// sort by (row, col) is what makes roots independent of worker scheduling
// (concurrently repaired components emit events in arbitrary real-time
// order; the committed order never sees it), and the stable sort keeps
// repeated writes to one cell in apply order, which is what replay-verified
// undo depends on.
package ledger

import (
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"math"
	"sort"
	"sync"

	"ftrepair/internal/dataset"
	"ftrepair/internal/obs"
)

// HashSize is the size of every hash in the ledger (SHA-256).
const HashSize = sha256.Size

// Hash is one ledger hash: an event leaf, a Merkle node, or a chained root.
type Hash [HashSize]byte

// RepairEvent is one applied cell repair. Seq and Batch are assigned by
// Ledger.Commit; everything else is filled by the emitting algorithm.
type RepairEvent struct {
	// Seq is the monotone 1-based sequence number across the whole run;
	// Batch is the 0-based index of the commit that carried the event.
	Seq   uint64 `json:"seq"`
	Batch int    `json:"batch"`
	// Row/Col/Attr address the cell; Old and New are the values before and
	// after the write (Old is the value actually overwritten, so reverse
	// replay restores the exact prior state).
	Row  int    `json:"row"`
	Col  int    `json:"col"`
	Attr string `json:"attr,omitempty"`
	Old  string `json:"old"`
	New  string `json:"new"`
	// FD names the dependency that justified the repair; Algorithm the
	// algorithm that chose it. Multi-FD join repairs label FD with the
	// component's FD set.
	FD        string `json:"fd,omitempty"`
	Algorithm string `json:"algorithm,omitempty"`
	// CostDelta is the per-cell repair distance RepairDist(col, Old, New) —
	// the Eq-4 cost contribution of this write.
	CostDelta float64 `json:"costDelta"`
	// EdgeFrom/EdgeTo/EdgeW/EdgeD describe the justifying violation edge of
	// a pattern repair: the excluded pattern, the chosen in-set neighbor it
	// repairs to, the edge's repair weight, and the violation distance.
	EdgeFrom string  `json:"edgeFrom,omitempty"`
	EdgeTo   string  `json:"edgeTo,omitempty"`
	EdgeW    float64 `json:"edgeW,omitempty"`
	EdgeD    float64 `json:"edgeD,omitempty"`
	// TargetCols/Target carry the chosen join-target of a multi-FD plan
	// repair (the §5 target-tree assignment the cell was rewritten to).
	TargetCols []int    `json:"targetCols,omitempty"`
	Target     []string `json:"target,omitempty"`
	// Worker is the deterministic lane that produced the event: the
	// FD-component index for one-shot repairs, the shard ordinal for
	// incremental batches. Never a scheduling identity — roots must not
	// depend on goroutine interleaving.
	Worker int `json:"worker,omitempty"`
}

// Domain-separation prefixes: leaves, interior Merkle nodes, and the batch
// chain hash each live in their own preimage space.
const (
	tagLeaf  = 0x00
	tagNode  = 0x01
	tagChain = 0x02
)

// eventHasher canonically encodes an event into a SHA-256 state, counting
// the bytes written so Commit can report ledger growth without a second
// serialization.
type eventHasher struct {
	buf []byte
	n   int
}

func (w *eventHasher) u64(v uint64) {
	var b [8]byte
	binary.BigEndian.PutUint64(b[:], v)
	w.buf = append(w.buf, b[:]...)
	w.n += 8
}

func (w *eventHasher) i64(v int) { w.u64(uint64(int64(v))) }

func (w *eventHasher) f64(v float64) {
	// Bit pattern, not text: the encoding must be injective, and the
	// pipeline's determinism discipline guarantees bitwise-equal floats for
	// equal computations.
	var b [8]byte
	binary.BigEndian.PutUint64(b[:], math.Float64bits(v))
	w.buf = append(w.buf, b[:]...)
	w.n += 8
}

func (w *eventHasher) str(s string) {
	w.u64(uint64(len(s)))
	w.buf = append(w.buf, s...)
	w.n += len(s)
}

// EventHash returns the canonical hash of e: a fixed-order, length-prefixed
// encoding of every field under the leaf domain tag. Any field change —
// including Seq and Batch, so replayed or reordered events never collide —
// changes the hash.
func EventHash(e *RepairEvent) Hash {
	h, _ := eventHashSize(e)
	return h
}

// eventHashSize hashes e and reports the canonical encoding size.
func eventHashSize(e *RepairEvent) (Hash, int) {
	w := eventHasher{buf: make([]byte, 1, 256)}
	w.buf[0] = tagLeaf
	w.n = 1
	w.u64(e.Seq)
	w.i64(e.Batch)
	w.i64(e.Row)
	w.i64(e.Col)
	w.str(e.Attr)
	w.str(e.Old)
	w.str(e.New)
	w.str(e.FD)
	w.str(e.Algorithm)
	w.f64(e.CostDelta)
	w.str(e.EdgeFrom)
	w.str(e.EdgeTo)
	w.f64(e.EdgeW)
	w.f64(e.EdgeD)
	w.i64(len(e.TargetCols))
	for _, c := range e.TargetCols {
		w.i64(c)
	}
	w.i64(len(e.Target))
	for _, v := range e.Target {
		w.str(v)
	}
	w.i64(e.Worker)
	return sha256.Sum256(w.buf), w.n
}

// nodeHash combines two Merkle children under the interior-node tag.
func nodeHash(l, r Hash) Hash {
	var b [1 + 2*HashSize]byte
	b[0] = tagNode
	copy(b[1:], l[:])
	copy(b[1+HashSize:], r[:])
	return sha256.Sum256(b[:])
}

// chainHash folds one batch root onto the previous run root.
func chainHash(prev, batchRoot Hash) Hash {
	var b [1 + 2*HashSize]byte
	b[0] = tagChain
	copy(b[1:], prev[:])
	copy(b[1+HashSize:], batchRoot[:])
	return sha256.Sum256(b[:])
}

// MerkleRoot folds leaf hashes bottom-up. Odd nodes carry up unchanged
// (Certificate-Transparency style), so a single leaf's root is the leaf
// itself and no hash is ever paired with a duplicate of itself.
func MerkleRoot(leaves []Hash) Hash {
	if len(leaves) == 0 {
		return Hash{}
	}
	level := append([]Hash(nil), leaves...)
	for len(level) > 1 {
		next := level[: 0 : len(level)/2+1]
		for i := 0; i+1 < len(level); i += 2 {
			next = append(next, nodeHash(level[i], level[i+1]))
		}
		if len(level)%2 == 1 {
			next = append(next, level[len(level)-1])
		}
		level = next
	}
	return level[0]
}

// ProofStep is one sibling on an inclusion path. Left reports the sibling's
// side: true means the sibling hashes on the left of the running value.
type ProofStep struct {
	Hash Hash `json:"hash"`
	Left bool `json:"left"`
}

// Proof is an inclusion proof for one leaf of a batch tree. It carries
// everything VerifyProof needs besides the leaf and the root, so a proof is
// independently checkable offline.
type Proof struct {
	Index int         `json:"index"`
	Steps []ProofStep `json:"steps"`
}

// merkleProve builds the inclusion proof for leaves[i].
func merkleProve(leaves []Hash, i int) Proof {
	p := Proof{Index: i}
	level := append([]Hash(nil), leaves...)
	for len(level) > 1 {
		if sib := i ^ 1; sib < len(level) {
			p.Steps = append(p.Steps, ProofStep{Hash: level[sib], Left: sib < i})
		}
		next := level[: 0 : len(level)/2+1]
		for j := 0; j+1 < len(level); j += 2 {
			next = append(next, nodeHash(level[j], level[j+1]))
		}
		if len(level)%2 == 1 {
			next = append(next, level[len(level)-1])
		}
		level = next
		i /= 2
	}
	return p
}

// VerifyProof folds leaf up p's sibling path and compares against root. It
// is a pure function of its arguments — no registry, no ledger state — so
// third parties can check proofs from a dumped ledger alone.
func VerifyProof(leaf Hash, p Proof, root Hash) bool {
	h := leaf
	for _, s := range p.Steps {
		if s.Left {
			h = nodeHash(s.Hash, h)
		} else {
			h = nodeHash(h, s.Hash)
		}
	}
	return h == root
}

// Batch summarizes one committed batch: its events' position in the run
// and its Merkle root chained onto the run root so far.
type Batch struct {
	Index int `json:"index"`
	// Start is the offset of the batch's first event in Ledger.Events();
	// Count its event count. Seq of event k of the batch is Start+k+1.
	Start int `json:"start"`
	Count int `json:"count"`
	// Root is the Merkle root over the batch's event hashes; RunRoot the
	// chained root after this batch: H(tag ‖ prevRunRoot ‖ Root).
	Root    Hash `json:"root"`
	RunRoot Hash `json:"runRoot"`
}

// Sink receives committed repair events. Ledger is the canonical
// implementation; Buffer collects without committing (the incremental
// engine's inner repairs feed one). Event slices passed to Commit are owned
// by the sink afterwards.
type Sink interface {
	Commit(events []RepairEvent)
}

// Ledger is an append-only, hash-chained event log. Safe for concurrent
// use; each Commit is atomic.
type Ledger struct {
	mu      sync.Mutex
	events  []RepairEvent
	batches []Batch
	root    Hash
	bytes   int
}

// New returns an empty ledger with a zero run root.
func New() *Ledger { return &Ledger{} }

// Commit appends one batch: events are stable-sorted by (Row, Col) —
// making the committed order independent of the emitters' scheduling while
// preserving apply order per cell — assigned Seq/Batch, hashed, and folded
// into a Merkle tree whose root chains onto the run root. Empty batches are
// no-ops (a repair that changed nothing leaves no trace to tamper with).
// The flushed totals land in the obs registry once per commit.
func (l *Ledger) Commit(events []RepairEvent) {
	if len(events) == 0 {
		return
	}
	sort.SliceStable(events, func(i, j int) bool {
		if events[i].Row != events[j].Row {
			return events[i].Row < events[j].Row
		}
		return events[i].Col < events[j].Col
	})
	l.mu.Lock()
	defer l.mu.Unlock()
	b := Batch{Index: len(l.batches), Start: len(l.events), Count: len(events)}
	leaves := make([]Hash, len(events))
	bytes := 0
	for i := range events {
		events[i].Seq = uint64(b.Start+i) + 1
		events[i].Batch = b.Index
		var n int
		leaves[i], n = eventHashSize(&events[i])
		bytes += n
	}
	b.Root = MerkleRoot(leaves)
	b.RunRoot = chainHash(l.root, b.Root)
	l.root = b.RunRoot
	l.events = append(l.events, events...)
	l.batches = append(l.batches, b)
	l.bytes += bytes
	obs.Ledger.Events.AddInt(len(events))
	obs.Ledger.Batches.Inc()
	obs.Ledger.Bytes.AddInt(bytes)
}

// Len returns the number of committed events.
func (l *Ledger) Len() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.events)
}

// RunRoot returns the chained root over every committed batch (zero for an
// empty ledger).
func (l *Ledger) RunRoot() Hash {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.root
}

// RunRootHex is RunRoot as lowercase hex.
func (l *Ledger) RunRootHex() string { r := l.RunRoot(); return fmt.Sprintf("%x", r[:]) }

// Events returns a copy of the committed events in Seq order.
func (l *Ledger) Events() []RepairEvent {
	l.mu.Lock()
	defer l.mu.Unlock()
	return append([]RepairEvent(nil), l.events...)
}

// Batches returns a copy of the committed batch summaries.
func (l *Ledger) Batches() []Batch {
	l.mu.Lock()
	defer l.mu.Unlock()
	return append([]Batch(nil), l.batches...)
}

// Prove returns the event with sequence number seq together with its
// inclusion proof and the containing batch. The proof verifies against the
// batch's Root via VerifyProof(EventHash(&event), proof, batch.Root).
func (l *Ledger) Prove(seq uint64) (RepairEvent, Proof, Batch, bool) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if seq == 0 || seq > uint64(len(l.events)) {
		return RepairEvent{}, Proof{}, Batch{}, false
	}
	ev := l.events[seq-1]
	b := l.batches[ev.Batch]
	leaves := make([]Hash, b.Count)
	for i := 0; i < b.Count; i++ {
		leaves[i] = EventHash(&l.events[b.Start+i])
	}
	return ev, merkleProve(leaves, int(seq)-1-b.Start), b, true
}

// Undo reverses the last n committed events (every event when n <= 0) over
// rel, replay-verified: each event is undone newest-first, and the cell
// must still hold the event's New value before Old is restored — any
// mismatch means the relation diverged from the ledger's history (or the
// ledger was tampered with) and aborts with an error after bumping the
// verify-failure metric. rel is not modified; the reverted copy is
// returned. Undoing every event of a fully-ledgered run reproduces the
// pre-repair relation exactly.
func Undo(rel *dataset.Relation, events []RepairEvent, n int) (*dataset.Relation, error) {
	if n <= 0 || n > len(events) {
		n = len(events)
	}
	out := rel.Clone()
	for i := len(events) - 1; i >= len(events)-n; i-- {
		e := events[i]
		if e.Row < 0 || e.Row >= out.Len() || e.Col < 0 || e.Col >= len(out.Tuples[e.Row]) {
			obs.Ledger.VerifyFailures.Inc()
			return nil, fmt.Errorf("ledger: undo seq %d: cell (%d,%d) outside the relation", e.Seq, e.Row, e.Col)
		}
		if got := out.Tuples[e.Row][e.Col]; got != e.New {
			obs.Ledger.VerifyFailures.Inc()
			return nil, fmt.Errorf("ledger: undo seq %d: cell (%d,%d) holds %q, ledger recorded %q", e.Seq, e.Row, e.Col, got, e.New)
		}
		out.Tuples[e.Row][e.Col] = e.Old
	}
	return out, nil
}

// Buffer is a Sink that only collects. The incremental engine hands one to
// each inner shard repair and later re-addresses the events into engine
// coordinates before committing them to the real ledger; tests use it to
// observe emission without hashing. Collection is the sanctioned append
// path outside this package (the ledgerwrite analyzer flags direct
// []RepairEvent writes elsewhere).
type Buffer struct {
	mu     sync.Mutex
	events []RepairEvent
}

// Commit implements Sink by appending.
func (b *Buffer) Commit(events []RepairEvent) {
	b.mu.Lock()
	b.events = append(b.events, events...)
	b.mu.Unlock()
}

// Add appends a single event.
func (b *Buffer) Add(e RepairEvent) {
	b.mu.Lock()
	b.events = append(b.events, e)
	b.mu.Unlock()
}

// Events returns a copy of the collected events in arrival order.
func (b *Buffer) Events() []RepairEvent {
	b.mu.Lock()
	defer b.mu.Unlock()
	return append([]RepairEvent(nil), b.events...)
}

// Drain returns the collected events and resets the buffer.
func (b *Buffer) Drain() []RepairEvent {
	b.mu.Lock()
	defer b.mu.Unlock()
	out := b.events
	b.events = nil
	return out
}

// Len returns the number of collected events.
func (b *Buffer) Len() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return len(b.events)
}
