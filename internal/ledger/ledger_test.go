package ledger

import (
	"bytes"
	"fmt"
	"strings"
	"testing"

	"ftrepair/internal/dataset"
)

// testEvents builds n distinct events addressing cells of a 2-column
// relation, in an order Commit will re-sort.
func testEvents(n int) []RepairEvent {
	events := make([]RepairEvent, n)
	for i := range events {
		events[i] = RepairEvent{
			Row: n - 1 - i, Col: i % 2, Attr: "A",
			Old: fmt.Sprintf("old%d", i), New: fmt.Sprintf("new%d", i),
			FD: "A -> B", Algorithm: "TestAlgo", CostDelta: float64(i) * 0.5,
			EdgeFrom: "x", EdgeTo: "y", EdgeW: 1, EdgeD: 0.25,
			TargetCols: []int{0, 1}, Target: []string{"u", "v"}, Worker: i % 3,
		}
	}
	return events
}

func TestCommitAssignsSeqAndSortsByCell(t *testing.T) {
	l := New()
	l.Commit(testEvents(5))
	events := l.Events()
	if len(events) != 5 || l.Len() != 5 {
		t.Fatalf("committed %d events, want 5", len(events))
	}
	for i, e := range events {
		if e.Seq != uint64(i)+1 || e.Batch != 0 {
			t.Fatalf("event %d: seq %d batch %d, want seq %d batch 0", i, e.Seq, e.Batch, i+1)
		}
		if i > 0 {
			prev := events[i-1]
			if e.Row < prev.Row || (e.Row == prev.Row && e.Col < prev.Col) {
				t.Fatalf("events not sorted by (Row, Col): %v before %v", prev, e)
			}
		}
	}
}

func TestCommitEmptyIsNoOp(t *testing.T) {
	l := New()
	l.Commit(nil)
	if l.Len() != 0 || l.RunRoot() != (Hash{}) || len(l.Batches()) != 0 {
		t.Fatal("empty commit changed the ledger")
	}
}

// TestProveAndVerify checks every event's inclusion proof across several
// batch sizes, covering the odd-carry shapes of the Merkle fold.
func TestProveAndVerify(t *testing.T) {
	for _, n := range []int{1, 2, 3, 5, 8, 13} {
		l := New()
		l.Commit(testEvents(n))
		for seq := uint64(1); seq <= uint64(n); seq++ {
			ev, proof, batch, ok := l.Prove(seq)
			if !ok {
				t.Fatalf("n=%d: Prove(%d) failed", n, seq)
			}
			leaf := EventHash(&ev)
			if !VerifyProof(leaf, proof, batch.Root) {
				t.Fatalf("n=%d: proof for seq %d does not verify", n, seq)
			}
			// A flipped byte in the leaf must be rejected.
			leaf[0] ^= 0x01
			if VerifyProof(leaf, proof, batch.Root) {
				t.Fatalf("n=%d: tampered leaf for seq %d still verifies", n, seq)
			}
		}
	}
	l := New()
	l.Commit(testEvents(3))
	if _, _, _, ok := l.Prove(0); ok {
		t.Fatal("Prove(0) succeeded")
	}
	if _, _, _, ok := l.Prove(4); ok {
		t.Fatal("Prove past the end succeeded")
	}
}

// TestTamperedProofStepRejected flips a byte inside a proof's sibling hash:
// the fold must land on a different root.
func TestTamperedProofStepRejected(t *testing.T) {
	l := New()
	l.Commit(testEvents(8))
	ev, proof, batch, _ := l.Prove(3)
	proof.Steps[1].Hash[7] ^= 0x80
	if VerifyProof(EventHash(&ev), proof, batch.Root) {
		t.Fatal("proof with a tampered step still verifies")
	}
}

// TestEventHashBindsEveryField flips each field in turn and expects a new
// hash: the canonical encoding must be injective over the whole event.
func TestEventHashBindsEveryField(t *testing.T) {
	base := testEvents(1)[0]
	h0 := EventHash(&base)
	mutations := map[string]func(*RepairEvent){
		"Seq":        func(e *RepairEvent) { e.Seq++ },
		"Batch":      func(e *RepairEvent) { e.Batch++ },
		"Row":        func(e *RepairEvent) { e.Row++ },
		"Col":        func(e *RepairEvent) { e.Col++ },
		"Attr":       func(e *RepairEvent) { e.Attr += "x" },
		"Old":        func(e *RepairEvent) { e.Old += "x" },
		"New":        func(e *RepairEvent) { e.New += "x" },
		"FD":         func(e *RepairEvent) { e.FD += "x" },
		"Algorithm":  func(e *RepairEvent) { e.Algorithm += "x" },
		"CostDelta":  func(e *RepairEvent) { e.CostDelta += 0.125 },
		"EdgeFrom":   func(e *RepairEvent) { e.EdgeFrom += "x" },
		"EdgeTo":     func(e *RepairEvent) { e.EdgeTo += "x" },
		"EdgeW":      func(e *RepairEvent) { e.EdgeW += 1 },
		"EdgeD":      func(e *RepairEvent) { e.EdgeD += 1 },
		"TargetCols": func(e *RepairEvent) { e.TargetCols = append([]int{9}, e.TargetCols...) },
		"Target":     func(e *RepairEvent) { e.Target = append([]string{"z"}, e.Target...) },
		"Worker":     func(e *RepairEvent) { e.Worker++ },
	}
	for name, mutate := range mutations {
		e := base
		e.TargetCols = append([]int(nil), base.TargetCols...)
		e.Target = append([]string(nil), base.Target...)
		mutate(&e)
		if EventHash(&e) == h0 {
			t.Errorf("mutating %s left the event hash unchanged", name)
		}
	}
	// Length-prefixed strings: shifting a boundary must not collide.
	a := RepairEvent{Old: "ab", New: "c"}
	b := RepairEvent{Old: "a", New: "bc"}
	if EventHash(&a) == EventHash(&b) {
		t.Fatal("string boundary shift collides")
	}
}

// TestRunRootChainsBatches commits the same events as one batch and as two:
// the run roots must differ (the chain commits to batch structure), and each
// batch's RunRoot must equal the chain fold so far.
func TestRunRootChainsBatches(t *testing.T) {
	one := New()
	one.Commit(testEvents(6))

	two := New()
	events := testEvents(6)
	two.Commit(events[:3])
	two.Commit(events[3:])

	if one.RunRoot() == two.RunRoot() {
		t.Fatal("different batch splits produced the same run root")
	}
	batches := two.Batches()
	if len(batches) != 2 {
		t.Fatalf("got %d batches, want 2", len(batches))
	}
	if batches[1].RunRoot != two.RunRoot() {
		t.Fatal("last batch's RunRoot is not the ledger's run root")
	}
	if len(two.RunRootHex()) != 2*HashSize || two.RunRootHex() == strings.Repeat("0", 2*HashSize) {
		t.Fatalf("run root hex looks wrong: %q", two.RunRootHex())
	}
}

func TestJSONLRoundTrip(t *testing.T) {
	l := New()
	events := testEvents(7)
	l.Commit(events[:4])
	l.Commit(events[4:])

	var buf bytes.Buffer
	if err := l.WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	dump, err := ReadJSONL(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if err := dump.Verify(); err != nil {
		t.Fatal(err)
	}
	if dump.RunRoot != l.RunRoot() || len(dump.Events) != 7 || len(dump.Batches) != 2 {
		t.Fatalf("dump mismatch: %d events, %d batches", len(dump.Events), len(dump.Batches))
	}
}

// TestJSONLTamperDetected edits one event value in the serialized dump; the
// offline verifier must catch it.
func TestJSONLTamperDetected(t *testing.T) {
	l := New()
	l.Commit(testEvents(5))
	var buf bytes.Buffer
	if err := l.WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	tampered := strings.Replace(buf.String(), `"new2"`, `"evil"`, 1)
	if tampered == buf.String() {
		t.Fatal("tamper target not found in dump")
	}
	dump, err := ReadJSONL(strings.NewReader(tampered))
	if err != nil {
		t.Fatal(err)
	}
	if err := dump.Verify(); err == nil {
		t.Fatal("Verify accepted a tampered dump")
	}
}

func TestReadJSONLRejectsTruncation(t *testing.T) {
	l := New()
	l.Commit(testEvents(3))
	var buf bytes.Buffer
	if err := l.WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSuffix(buf.String(), "\n"), "\n")
	truncated := strings.Join(lines[:len(lines)-1], "\n") + "\n"
	if _, err := ReadJSONL(strings.NewReader(truncated)); err == nil {
		t.Fatal("ReadJSONL accepted a dump without a run record")
	}
	trailing := buf.String() + lines[0] + "\n"
	if _, err := ReadJSONL(strings.NewReader(trailing)); err == nil {
		t.Fatal("ReadJSONL accepted data after the run record")
	}
}

func TestUndoRoundTrip(t *testing.T) {
	schema := dataset.Strings("A", "B")
	rel, err := dataset.FromRows(schema, [][]string{{"a0", "b0"}, {"a1", "b1"}})
	if err != nil {
		t.Fatal(err)
	}
	// Forward history: two writes to (0,0) in apply order, one to (1,1).
	events := []RepairEvent{
		{Row: 0, Col: 0, Old: "a0", New: "mid"},
		{Row: 0, Col: 0, Old: "mid", New: "fin"},
		{Row: 1, Col: 1, Old: "b1", New: "b9"},
	}
	repaired := rel.Clone()
	for _, e := range events {
		repaired.Tuples[e.Row][e.Col] = e.New
	}
	l := New()
	l.Commit(events)

	reverted, err := Undo(repaired, l.Events(), 0)
	if err != nil {
		t.Fatal(err)
	}
	cells, err := dataset.Diff(reverted, rel)
	if err != nil || len(cells) != 0 {
		t.Fatalf("full undo did not reproduce the input: diff %v (%v)", cells, err)
	}
	if repaired.Tuples[0][0] != "fin" {
		t.Fatal("Undo mutated its input relation")
	}

	// Partial undo of the newest event only.
	part, err := Undo(repaired, l.Events(), 1)
	if err != nil {
		t.Fatal(err)
	}
	all := l.Events()
	lastCell := all[len(all)-1]
	if part.Tuples[lastCell.Row][lastCell.Col] != lastCell.Old {
		t.Fatal("partial undo did not restore the newest event's Old value")
	}

	// Divergence: the relation no longer matches the ledger's New value.
	diverged := repaired.Clone()
	diverged.Tuples[1][1] = "corrupted"
	if _, err := Undo(diverged, l.Events(), 0); err == nil {
		t.Fatal("Undo accepted a relation that diverged from the ledger")
	}
}

func TestBufferCollects(t *testing.T) {
	var b Buffer
	b.Add(RepairEvent{Row: 1})
	b.Commit([]RepairEvent{{Row: 2}, {Row: 3}})
	if b.Len() != 3 || len(b.Events()) != 3 {
		t.Fatalf("buffer holds %d events, want 3", b.Len())
	}
	got := b.Drain()
	if len(got) != 3 || b.Len() != 0 {
		t.Fatalf("drain returned %d events, buffer now %d", len(got), b.Len())
	}
}
