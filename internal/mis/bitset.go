package mis

import (
	"math/bits"
	"strconv"
	"strings"
)

// bitset is a fixed-capacity bit vector used to represent vertex sets during
// expansion. All sets in one expansion share the same capacity.
type bitset []uint64

func newBitset(n int) bitset { return make(bitset, (n+63)/64) }

func (b bitset) set(i int)      { b[i/64] |= 1 << (uint(i) % 64) }
func (b bitset) clear(i int)    { b[i/64] &^= 1 << (uint(i) % 64) }
func (b bitset) has(i int) bool { return b[i/64]&(1<<(uint(i)%64)) != 0 }

func (b bitset) clone() bitset {
	c := make(bitset, len(b))
	copy(c, b)
	return c
}

func (b bitset) count() int {
	n := 0
	for _, w := range b {
		n += bits.OnesCount64(w)
	}
	return n
}

// intersects reports whether b and o share a bit.
func (b bitset) intersects(o bitset) bool {
	for i := range b {
		if b[i]&o[i] != 0 {
			return true
		}
	}
	return false
}

// key is a canonical string form for deduplication.
func (b bitset) key() string {
	var sb strings.Builder
	for _, w := range b {
		sb.WriteString(strconv.FormatUint(w, 16))
		sb.WriteByte(',')
	}
	return sb.String()
}

// members lists the set bits in ascending order.
func (b bitset) members() []int {
	var out []int
	for i, w := range b {
		for w != 0 {
			j := bits.TrailingZeros64(w)
			out = append(out, i*64+j)
			w &= w - 1
		}
	}
	return out
}
