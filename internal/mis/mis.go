// Package mis implements the independent-set machinery of §3: predicates on
// (maximal) independent sets of a violation graph, exhaustive enumeration of
// maximal independent sets, and the expansion-based search for the best
// maximal independent set — the one minimizing repair cost — with the
// paper's lower/upper-bound pruning (Theorem 4).
package mis

import (
	"fmt"
	"math"
	"sort"

	"ftrepair/internal/vgraph"
)

// IsIndependent reports whether no two vertices of set are adjacent in g.
func IsIndependent(g *vgraph.Graph, set []int) bool {
	for i := 0; i < len(set); i++ {
		for j := i + 1; j < len(set); j++ {
			if _, ok := g.Edge(set[i], set[j]); ok {
				return false
			}
		}
	}
	return true
}

// IsMaximal reports whether set is a maximal independent set of g.
func IsMaximal(g *vgraph.Graph, set []int) bool {
	if !IsIndependent(g, set) {
		return false
	}
	in := make(map[int]bool, len(set))
	for _, v := range set {
		in[v] = true
	}
	for v := range g.Vertices {
		if in[v] {
			continue
		}
		adjacent := false
		for _, e := range g.Neighbors(v) {
			if in[e.To] {
				adjacent = true
				break
			}
		}
		if !adjacent {
			return false
		}
	}
	return true
}

// RepairCost is the cost of repairing the database with the maximal
// independent set I (§3): every vertex outside I is repaired to its
// cheapest neighbor inside I, paying multiplicity × edge weight. It returns
// an error when I is not a maximal independent set (some vertex would have
// no repair target).
func RepairCost(g *vgraph.Graph, set []int) (float64, error) {
	in := make(map[int]bool, len(set))
	for _, v := range set {
		in[v] = true
	}
	var total float64
	for v := range g.Vertices {
		if in[v] {
			continue
		}
		best := math.Inf(1)
		for _, e := range g.Neighbors(v) {
			if in[e.To] && e.W < best {
				best = e.W
			}
		}
		if math.IsInf(best, 1) {
			return 0, fmt.Errorf("mis: vertex %d has no neighbor in the set; set is not maximal", v)
		}
		total += float64(g.Vertices[v].Mult()) * best
	}
	return total, nil
}

// Result is the outcome of a best-MIS search.
type Result struct {
	Set  []int   // the best maximal independent set, sorted ascending
	Cost float64 // repair cost of using Set
	// NodesExplored counts expansion-tree nodes visited; Pruned counts
	// subtrees cut by the bound test.
	NodesExplored int
	Pruned        int
}

// Options tunes the expansion search.
type Options struct {
	// DisablePruning turns off the LB/UB bound test (ablation).
	DisablePruning bool
	// NaturalOrder processes vertices in id order instead of the
	// frequency-descending order §3.1 recommends (ablation).
	NaturalOrder bool
	// MaxNodes caps the total number of expansion nodes kept per component;
	// 0 means 1<<20. Exceeding the cap aborts with an error: the caller
	// should fall back to the greedy algorithm.
	MaxNodes int
	// Cancel, when non-nil, aborts the search with ErrCanceled as soon as
	// the channel is closed. The expansion loop polls it between levels and
	// every cancelBatch nodes inside a level, so even exponential frontiers
	// stay responsive.
	Cancel <-chan struct{}
}

// ErrTooLarge is returned (wrapped) when the expansion tree exceeds
// Options.MaxNodes.
var ErrTooLarge = fmt.Errorf("mis: expansion tree exceeds node budget")

// ErrCanceled is returned (wrapped) when Options.Cancel fires mid-search.
var ErrCanceled = fmt.Errorf("mis: search canceled")

// cancelBatch is how many frontier nodes are processed between cancellation
// polls inside one expansion level.
const cancelBatch = 256

func canceled(ch <-chan struct{}) bool {
	if ch == nil {
		return false
	}
	select {
	case <-ch:
		return true
	default:
		return false
	}
}

// BestMIS finds the maximal independent set of g with minimum repair cost
// using the expansion algorithm with pruning. The search decomposes into
// connected components (best sets and costs add across components, since no
// edges cross them); isolated vertices join the set for free.
func BestMIS(g *vgraph.Graph, opts Options) (Result, error) {
	if opts.MaxNodes <= 0 {
		opts.MaxNodes = 1 << 20
	}
	var res Result
	for _, comp := range g.Components() {
		if canceled(opts.Cancel) {
			return Result{}, fmt.Errorf("%w: between components", ErrCanceled)
		}
		if len(comp) == 1 {
			res.Set = append(res.Set, comp[0])
			continue
		}
		cr, err := bestInComponent(g, comp, opts)
		if err != nil {
			return Result{}, err
		}
		res.Set = append(res.Set, cr.Set...)
		res.Cost += cr.Cost
		res.NodesExplored += cr.NodesExplored
		res.Pruned += cr.Pruned
	}
	sort.Ints(res.Set)
	return res, nil
}

// node is one expansion-tree node: a maximal independent set of the prefix
// processed so far.
type node struct {
	set bitset
	lb  float64
}

func bestInComponent(g *vgraph.Graph, comp []int, opts Options) (Result, error) {
	n := len(comp)
	// Local indexing of the component.
	local := make(map[int]int, n)
	order := append([]int(nil), comp...)
	if !opts.NaturalOrder {
		sort.SliceStable(order, func(a, b int) bool {
			ma, mb := g.Vertices[order[a]].Mult(), g.Vertices[order[b]].Mult()
			if ma != mb {
				return ma > mb
			}
			return order[a] < order[b]
		})
	}
	for i, v := range order {
		local[v] = i
	}
	// Local adjacency bitsets and weights.
	adj := make([]bitset, n)
	for i := range adj {
		adj[i] = newBitset(n)
	}
	weight := make(map[[2]int]float64, n*4)
	for i, v := range order {
		for _, e := range g.Neighbors(v) {
			j, ok := local[e.To]
			if !ok {
				continue // cannot happen: components are closed under adjacency
			}
			adj[i].set(j)
			weight[[2]int{i, j}] = e.W
		}
	}
	mult := make([]float64, n)
	for i, v := range order {
		mult[i] = float64(g.Vertices[v].Mult())
	}
	// minRepair[i]: cheapest possible repair of vertex i (to any neighbor),
	// the per-vertex term of the lower bound (Eq. 5).
	minRepair := make([]float64, n)
	for i := range minRepair {
		best := math.Inf(1)
		for _, j := range adj[i].members() {
			if w := weight[[2]int{i, j}]; w < best {
				best = w
			}
		}
		minRepair[i] = mult[i] * best
	}
	// costTo(i, j): cost of repairing all tuples of i to j's pattern, for
	// any pair (Eq. 6 repairs even FT-consistent vertices into the set).
	costTo := func(i, j int) float64 {
		if w, ok := weight[[2]int{i, j}]; ok {
			return mult[i] * w
		}
		return mult[i] * g.PatternDist(order[i], order[j])
	}
	// upper bound of a node: repair every vertex outside the set to its
	// cheapest member of the set.
	ub := func(set bitset) float64 {
		mem := set.members()
		var total float64
		for i := 0; i < n; i++ {
			if set.has(i) {
				continue
			}
			best := math.Inf(1)
			for _, j := range mem {
				if c := costTo(i, j); c < best {
					best = c
				}
			}
			total += best
		}
		return total
	}
	lb := func(set bitset, processed int) float64 {
		var total float64
		for i := 0; i < processed; i++ {
			if !set.has(i) {
				total += minRepair[i]
			}
		}
		return total
	}

	root := newBitset(n)
	root.set(0)
	frontier := []*node{{set: root}}
	bestUB := math.Inf(1)
	result := Result{NodesExplored: 1}

	for level := 1; level < n; level++ {
		if canceled(opts.Cancel) {
			return Result{}, fmt.Errorf("%w: at level %d of %d", ErrCanceled, level, n)
		}
		// Refresh the global upper bound from the current frontier
		// (Algorithm 1 lines 4-5).
		if !opts.DisablePruning {
			for i, nd := range frontier {
				if i%cancelBatch == 0 && canceled(opts.Cancel) {
					return Result{}, fmt.Errorf("%w: at level %d of %d", ErrCanceled, level, n)
				}
				if u := ub(nd.set); u < bestUB {
					bestUB = u
				}
			}
		}
		next := make([]*node, 0, len(frontier))
		seen := make(map[string]bool, len(frontier))
		appendNode := func(set bitset) {
			k := set.key()
			if seen[k] {
				return
			}
			seen[k] = true
			next = append(next, &node{set: set})
			result.NodesExplored++
		}
		for fi, nd := range frontier {
			if fi%cancelBatch == 0 && canceled(opts.Cancel) {
				return Result{}, fmt.Errorf("%w: at level %d of %d", ErrCanceled, level, n)
			}
			if !opts.DisablePruning && lb(nd.set, level) > bestUB {
				result.Pruned++
				continue
			}
			if !nd.set.intersects(adj[level]) {
				// level-vertex is FT-consistent with the whole set: the only
				// maximal extension adds it.
				child := nd.set.clone()
				child.set(level)
				appendNode(child)
				continue
			}
			// Left child: keep the set, leaving the new vertex out.
			appendNode(nd.set.clone())
			// Right child: consistent members plus the new vertex, if that
			// set is maximal within the processed prefix.
			right := newBitset(n)
			for _, m := range nd.set.members() {
				if !adj[level].has(m) {
					right.set(m)
				}
			}
			right.set(level)
			if maximalInPrefix(right, adj, level+1) {
				appendNode(right)
			}
		}
		if len(next) == 0 {
			// Everything pruned: the best known bound is achieved by the
			// node that produced bestUB, but we no longer have it. This
			// cannot happen because the node attaining bestUB has
			// lb <= ub = bestUB; guard anyway.
			return Result{}, fmt.Errorf("mis: frontier emptied unexpectedly")
		}
		if len(next) > opts.MaxNodes {
			return Result{}, fmt.Errorf("%w: %d nodes at level %d (component size %d)", ErrTooLarge, len(next), level, n)
		}
		frontier = next
	}

	// Frontier nodes are maximal independent sets of the component; pick
	// the cheapest by actual repair cost.
	best := math.Inf(1)
	var bestSet bitset
	for fi, nd := range frontier {
		if fi%cancelBatch == 0 && canceled(opts.Cancel) {
			return Result{}, fmt.Errorf("%w: scoring %d maximal sets", ErrCanceled, len(frontier))
		}
		var cost float64
		for i := 0; i < n; i++ {
			if nd.set.has(i) {
				continue
			}
			cheapest := math.Inf(1)
			for _, j := range adj[i].members() {
				if nd.set.has(j) {
					if w := weight[[2]int{i, j}]; w < cheapest {
						cheapest = w
					}
				}
			}
			cost += mult[i] * cheapest
		}
		if cost < best {
			best = cost
			bestSet = nd.set
		}
	}
	if bestSet == nil {
		return Result{}, fmt.Errorf("mis: no maximal independent set found")
	}
	out := Result{Cost: best, NodesExplored: result.NodesExplored, Pruned: result.Pruned}
	for _, i := range bestSet.members() {
		out.Set = append(out.Set, order[i])
	}
	sort.Ints(out.Set)
	return out, nil
}

// maximalInPrefix reports whether set is a maximal independent set of the
// first `prefix` local vertices: no excluded prefix vertex is non-adjacent
// to every member.
func maximalInPrefix(set bitset, adj []bitset, prefix int) bool {
	for v := 0; v < prefix; v++ {
		if set.has(v) {
			continue
		}
		if !set.intersects(adj[v]) {
			return false
		}
	}
	return true
}

// EnumerateMaximal returns every maximal independent set of g, sorted
// ascending within each set. It uses the expansion construction without
// pruning, so its output is exactly the leaves of the full expansion tree.
// Intended for tests and tiny graphs; the count can be exponential.
func EnumerateMaximal(g *vgraph.Graph) [][]int {
	n := len(g.Vertices)
	if n == 0 {
		return nil
	}
	adj := make([]bitset, n)
	for i := range adj {
		adj[i] = newBitset(n)
		for _, e := range g.Neighbors(i) {
			adj[i].set(e.To)
		}
	}
	root := newBitset(n)
	root.set(0)
	frontier := []bitset{root}
	for level := 1; level < n; level++ {
		var next []bitset
		seen := make(map[string]bool)
		add := func(s bitset) {
			k := s.key()
			if !seen[k] {
				seen[k] = true
				next = append(next, s)
			}
		}
		for _, s := range frontier {
			if !s.intersects(adj[level]) {
				c := s.clone()
				c.set(level)
				add(c)
				continue
			}
			add(s.clone())
			right := newBitset(n)
			for _, m := range s.members() {
				if !adj[level].has(m) {
					right.set(m)
				}
			}
			right.set(level)
			if maximalInPrefix(right, adj, level+1) {
				add(right)
			}
		}
		frontier = next
	}
	out := make([][]int, len(frontier))
	for i, s := range frontier {
		out[i] = s.members()
	}
	sort.Slice(out, func(a, b int) bool {
		x, y := out[a], out[b]
		for i := 0; i < len(x) && i < len(y); i++ {
			if x[i] != y[i] {
				return x[i] < y[i]
			}
		}
		return len(x) < len(y)
	})
	return out
}
