// Package mis implements the independent-set machinery of §3: predicates on
// (maximal) independent sets of a violation graph, exhaustive enumeration of
// maximal independent sets, and the expansion-based search for the best
// maximal independent set — the one minimizing repair cost — with the
// paper's lower/upper-bound pruning (Theorem 4).
//
// The expansion loop is index-addressed end to end: components are
// re-indexed into a dense local space, adjacency is a flat bitset arena
// plus a CSR list of weighted local edges, right children are built with a
// word-parallel AndNot, and frontier deduplication keys on a bitset hash
// confirmed by word equality — no map[int]bool or map[string]bool (and no
// per-candidate key strings) anywhere in the enumeration.
package mis

import (
	"fmt"
	"math"
	"sort"

	"ftrepair/internal/bitset"
	"ftrepair/internal/vgraph"
)

// IsIndependent reports whether no two vertices of set are adjacent in g.
func IsIndependent(g *vgraph.Graph, set []int) bool {
	for i := 0; i < len(set); i++ {
		for j := i + 1; j < len(set); j++ {
			if _, ok := g.Edge(set[i], set[j]); ok {
				return false
			}
		}
	}
	return true
}

// IsMaximal reports whether set is a maximal independent set of g.
func IsMaximal(g *vgraph.Graph, set []int) bool {
	if !IsIndependent(g, set) {
		return false
	}
	in := bitset.New(len(g.Vertices))
	for _, v := range set {
		in.Set(v)
	}
	for v := range g.Vertices {
		if in.Has(v) {
			continue
		}
		adjacent := false
		for _, e := range g.Neighbors(v) {
			if in.Has(e.To) {
				adjacent = true
				break
			}
		}
		if !adjacent {
			return false
		}
	}
	return true
}

// RepairCost is the cost of repairing the database with the maximal
// independent set I (§3): every vertex outside I is repaired to its
// cheapest neighbor inside I, paying multiplicity × edge weight. It returns
// an error when I is not a maximal independent set (some vertex would have
// no repair target).
func RepairCost(g *vgraph.Graph, set []int) (float64, error) {
	in := bitset.New(len(g.Vertices))
	for _, v := range set {
		in.Set(v)
	}
	var total float64
	for v := range g.Vertices {
		if in.Has(v) {
			continue
		}
		best := math.Inf(1)
		for _, e := range g.Neighbors(v) {
			if in.Has(e.To) && e.W < best {
				best = e.W
			}
		}
		if math.IsInf(best, 1) {
			return 0, fmt.Errorf("mis: vertex %d has no neighbor in the set; set is not maximal", v)
		}
		total += float64(g.Vertices[v].Mult()) * best
	}
	return total, nil
}

// Result is the outcome of a best-MIS search.
type Result struct {
	Set  []int   // the best maximal independent set, sorted ascending
	Cost float64 // repair cost of using Set
	// NodesExplored counts expansion-tree nodes visited; Pruned counts
	// subtrees cut by the bound test.
	NodesExplored int
	Pruned        int
}

// Options tunes the expansion search.
type Options struct {
	// DisablePruning turns off the LB/UB bound test (ablation).
	DisablePruning bool
	// NaturalOrder processes vertices in id order instead of the
	// frequency-descending order §3.1 recommends (ablation).
	NaturalOrder bool
	// MaxNodes caps the total number of expansion nodes kept per component;
	// 0 means 1<<20. Exceeding the cap aborts with an error: the caller
	// should fall back to the greedy algorithm.
	MaxNodes int
	// Cancel, when non-nil, aborts the search with ErrCanceled as soon as
	// the channel is closed. The expansion loop polls it between levels and
	// every cancelBatch nodes inside a level, so even exponential frontiers
	// stay responsive.
	Cancel <-chan struct{}
}

// ErrTooLarge is returned (wrapped) when the expansion tree exceeds
// Options.MaxNodes.
var ErrTooLarge = fmt.Errorf("mis: expansion tree exceeds node budget")

// ErrCanceled is returned (wrapped) when Options.Cancel fires mid-search.
var ErrCanceled = fmt.Errorf("mis: search canceled")

// cancelBatch is how many frontier nodes are processed between cancellation
// polls inside one expansion level.
const cancelBatch = 256

func canceled(ch <-chan struct{}) bool {
	if ch == nil {
		return false
	}
	select {
	case <-ch:
		return true
	default:
		return false
	}
}

// BestMIS finds the maximal independent set of g with minimum repair cost
// using the expansion algorithm with pruning. The search decomposes into
// connected components (best sets and costs add across components, since no
// edges cross them); isolated vertices join the set for free.
func BestMIS(g *vgraph.Graph, opts Options) (Result, error) {
	if opts.MaxNodes <= 0 {
		opts.MaxNodes = 1 << 20
	}
	var res Result
	// localOf maps global vertex ids to component-local indices. Components
	// partition the vertices, so one slice serves every component without
	// resets.
	var localOf []int32
	for _, comp := range g.Components() {
		if canceled(opts.Cancel) {
			return Result{}, fmt.Errorf("%w: between components", ErrCanceled)
		}
		if len(comp) == 1 {
			res.Set = append(res.Set, comp[0])
			continue
		}
		if localOf == nil {
			localOf = make([]int32, len(g.Vertices))
		}
		cr, err := bestInComponent(g, comp, localOf, opts)
		if err != nil {
			return Result{}, err
		}
		res.Set = append(res.Set, cr.Set...)
		res.Cost += cr.Cost
		res.NodesExplored += cr.NodesExplored
		res.Pruned += cr.Pruned
	}
	sort.Ints(res.Set)
	return res, nil
}

// ledge is one local weighted adjacency entry: the neighbor's local index
// and the repair weight ω of the edge.
type ledge struct {
	j int32
	w float64
}

// localGraph is a component re-indexed into [0, n): bitset adjacency over
// one flat word arena plus CSR-packed weighted neighbor lists sorted by
// local index, so weight lookups are binary searches instead of map hits.
type localGraph struct {
	n     int
	order []int // local index -> global vertex id
	adj   []bitset.Set
	loff  []int32
	ln    []ledge
	mult  []float64
}

// buildLocal re-indexes comp (in the given processing order) and packs its
// adjacency.
func buildLocal(g *vgraph.Graph, order []int, localOf []int32) *localGraph {
	n := len(order)
	lg := &localGraph{n: n, order: order}
	for i, v := range order {
		localOf[v] = int32(i)
	}
	words := bitset.WordsFor(n)
	arena := make([]uint64, n*words)
	lg.adj = make([]bitset.Set, n)
	lg.loff = make([]int32, n+1)
	total := 0
	for i, v := range order {
		lg.adj[i] = bitset.Set(arena[i*words : (i+1)*words])
		total += len(g.Neighbors(v))
		lg.loff[i+1] = int32(total)
	}
	lg.ln = make([]ledge, total)
	lg.mult = make([]float64, n)
	for i, v := range order {
		lg.mult[i] = float64(g.Vertices[v].Mult())
		es := lg.ln[lg.loff[i]:lg.loff[i]]
		for _, e := range g.Neighbors(v) {
			j := localOf[e.To]
			lg.adj[i].Set(int(j))
			es = append(es, ledge{j: j, w: e.W})
		}
		// Sort by local index (unique within a vertex) so weight lookups can
		// binary-search; insertion sort keeps this allocation-free.
		for a := 1; a < len(es); a++ {
			le := es[a]
			b := a - 1
			for b >= 0 && es[b].j > le.j {
				es[b+1] = es[b]
				b--
			}
			es[b+1] = le
		}
	}
	return lg
}

// edges returns i's packed weighted neighbor list, sorted by local index.
func (lg *localGraph) edges(i int) []ledge { return lg.ln[lg.loff[i]:lg.loff[i+1]] }

// weightTo returns the edge weight (i, j) if the vertices are adjacent.
func (lg *localGraph) weightTo(i int, j int32) (float64, bool) {
	es := lg.edges(i)
	lo, hi := 0, len(es)
	for lo < hi {
		mid := (lo + hi) / 2
		if es[mid].j < j {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo < len(es) && es[lo].j == j {
		return es[lo].w, true
	}
	return 0, false
}

// dedup is the frontier deduplicator: candidate sets key on their bitset
// hash, and hash collisions resolve by word equality against the sets
// already admitted — so the admitted sequence (and with it the node count
// and the search result) is a pure function of the candidate sequence,
// collisions or not. The map is cleared, not reallocated, between levels.
type dedup struct {
	byHash map[uint64][]int32
	sets   []bitset.Set
}

// add admits set if no equal set was admitted this level, reporting whether
// it was admitted.
func (d *dedup) add(set bitset.Set) bool {
	h := set.Hash()
	for _, k := range d.byHash[h] {
		if d.sets[k].Equal(set) {
			return false
		}
	}
	d.byHash[h] = append(d.byHash[h], int32(len(d.sets)))
	d.sets = append(d.sets, set)
	return true
}

// reset clears the dedup state for the next level, keeping capacity.
func (d *dedup) reset() {
	if d.byHash == nil {
		d.byHash = make(map[uint64][]int32)
	}
	clear(d.byHash)
	d.sets = d.sets[:0]
}

func bestInComponent(g *vgraph.Graph, comp []int, localOf []int32, opts Options) (Result, error) {
	n := len(comp)
	order := append([]int(nil), comp...)
	if !opts.NaturalOrder {
		sort.SliceStable(order, func(a, b int) bool {
			ma, mb := g.Vertices[order[a]].Mult(), g.Vertices[order[b]].Mult()
			if ma != mb {
				return ma > mb
			}
			return order[a] < order[b]
		})
	}
	lg := buildLocal(g, order, localOf)
	// minRepair[i]: cheapest possible repair of vertex i (to any neighbor),
	// the per-vertex term of the lower bound (Eq. 5).
	minRepair := make([]float64, n)
	for i := range minRepair {
		best := math.Inf(1)
		for _, e := range lg.edges(i) {
			if e.w < best {
				best = e.w
			}
		}
		minRepair[i] = lg.mult[i] * best
	}
	// costTo(i, j): cost of repairing all tuples of i to j's pattern, for
	// any pair (Eq. 6 repairs even FT-consistent vertices into the set).
	costTo := func(i, j int) float64 {
		if w, ok := lg.weightTo(i, int32(j)); ok {
			return lg.mult[i] * w
		}
		return lg.mult[i] * g.PatternDist(order[i], order[j])
	}
	// upper bound of a node: repair every vertex outside the set to its
	// cheapest member of the set. mem is the reused member scratch.
	var mem []int
	ub := func(set bitset.Set) float64 {
		mem = set.AppendMembers(mem[:0])
		var total float64
		for i := 0; i < n; i++ {
			if set.Has(i) {
				continue
			}
			best := math.Inf(1)
			for _, j := range mem {
				if c := costTo(i, j); c < best {
					best = c
				}
			}
			total += best
		}
		return total
	}
	lb := func(set bitset.Set, processed int) float64 {
		var total float64
		for i := 0; i < processed; i++ {
			if !set.Has(i) {
				total += minRepair[i]
			}
		}
		return total
	}

	root := bitset.New(n)
	root.Set(0)
	frontier := []bitset.Set{root}
	bestUB := math.Inf(1)
	result := Result{NodesExplored: 1}
	var seen dedup

	for level := 1; level < n; level++ {
		if canceled(opts.Cancel) {
			return Result{}, fmt.Errorf("%w: at level %d of %d", ErrCanceled, level, n)
		}
		// Refresh the global upper bound from the current frontier
		// (Algorithm 1 lines 4-5).
		if !opts.DisablePruning {
			for i, set := range frontier {
				if i%cancelBatch == 0 && canceled(opts.Cancel) {
					return Result{}, fmt.Errorf("%w: at level %d of %d", ErrCanceled, level, n)
				}
				if u := ub(set); u < bestUB {
					bestUB = u
				}
			}
		}
		next := make([]bitset.Set, 0, len(frontier))
		seen.reset()
		appendNode := func(set bitset.Set) {
			if !seen.add(set) {
				return
			}
			next = append(next, set)
			result.NodesExplored++
		}
		for fi, set := range frontier {
			if fi%cancelBatch == 0 && canceled(opts.Cancel) {
				return Result{}, fmt.Errorf("%w: at level %d of %d", ErrCanceled, level, n)
			}
			if !opts.DisablePruning && lb(set, level) > bestUB {
				result.Pruned++
				continue
			}
			if !set.Intersects(lg.adj[level]) {
				// level-vertex is FT-consistent with the whole set: the only
				// maximal extension adds it.
				child := set.Clone()
				child.Set(level)
				appendNode(child)
				continue
			}
			// Left child: keep the set, leaving the new vertex out.
			appendNode(set.Clone())
			// Right child: consistent members plus the new vertex, if that
			// set is maximal within the processed prefix. Word-parallel:
			// right = set \ N(level) ∪ {level}.
			right := set.Clone()
			right.AndNot(right, lg.adj[level])
			right.Set(level)
			if maximalInPrefix(right, lg.adj, level+1) {
				appendNode(right)
			}
		}
		if len(next) == 0 {
			// Everything pruned: the best known bound is achieved by the
			// node that produced bestUB, but we no longer have it. This
			// cannot happen because the node attaining bestUB has
			// lb <= ub = bestUB; guard anyway.
			return Result{}, fmt.Errorf("mis: frontier emptied unexpectedly")
		}
		if len(next) > opts.MaxNodes {
			return Result{}, fmt.Errorf("%w: %d nodes at level %d (component size %d)", ErrTooLarge, len(next), level, n)
		}
		frontier = next
	}

	// Frontier nodes are maximal independent sets of the component; pick
	// the cheapest by actual repair cost.
	best := math.Inf(1)
	var bestSet bitset.Set
	for fi, set := range frontier {
		if fi%cancelBatch == 0 && canceled(opts.Cancel) {
			return Result{}, fmt.Errorf("%w: scoring %d maximal sets", ErrCanceled, len(frontier))
		}
		var cost float64
		for i := 0; i < n; i++ {
			if set.Has(i) {
				continue
			}
			cheapest := math.Inf(1)
			for _, e := range lg.edges(i) {
				if set.Has(int(e.j)) && e.w < cheapest {
					cheapest = e.w
				}
			}
			cost += lg.mult[i] * cheapest
		}
		if cost < best {
			best = cost
			bestSet = set
		}
	}
	if bestSet == nil {
		return Result{}, fmt.Errorf("mis: no maximal independent set found")
	}
	out := Result{Cost: best, NodesExplored: result.NodesExplored, Pruned: result.Pruned}
	bestSet.IterateOnes(func(i int) bool {
		out.Set = append(out.Set, order[i])
		return true
	})
	sort.Ints(out.Set)
	return out, nil
}

// maximalInPrefix reports whether set is a maximal independent set of the
// first `prefix` local vertices: no excluded prefix vertex is non-adjacent
// to every member.
func maximalInPrefix(set bitset.Set, adj []bitset.Set, prefix int) bool {
	for v := 0; v < prefix; v++ {
		if set.Has(v) {
			continue
		}
		if !set.Intersects(adj[v]) {
			return false
		}
	}
	return true
}

// EnumerateMaximal returns every maximal independent set of g, sorted
// ascending within each set. It uses the expansion construction without
// pruning, so its output is exactly the leaves of the full expansion tree.
// Intended for tests and tiny graphs; the count can be exponential.
func EnumerateMaximal(g *vgraph.Graph) [][]int {
	n := len(g.Vertices)
	if n == 0 {
		return nil
	}
	words := bitset.WordsFor(n)
	arena := make([]uint64, n*words)
	adj := make([]bitset.Set, n)
	for i := range adj {
		adj[i] = bitset.Set(arena[i*words : (i+1)*words])
		for _, e := range g.Neighbors(i) {
			adj[i].Set(e.To)
		}
	}
	root := bitset.New(n)
	root.Set(0)
	frontier := []bitset.Set{root}
	var seen dedup
	for level := 1; level < n; level++ {
		var next []bitset.Set
		seen.reset()
		add := func(s bitset.Set) {
			if seen.add(s) {
				next = append(next, s)
			}
		}
		for _, s := range frontier {
			if !s.Intersects(adj[level]) {
				c := s.Clone()
				c.Set(level)
				add(c)
				continue
			}
			add(s.Clone())
			right := s.Clone()
			right.AndNot(right, adj[level])
			right.Set(level)
			if maximalInPrefix(right, adj, level+1) {
				add(right)
			}
		}
		frontier = next
	}
	out := make([][]int, len(frontier))
	for i, s := range frontier {
		out[i] = s.AppendMembers(nil)
	}
	sort.Slice(out, func(a, b int) bool {
		x, y := out[a], out[b]
		for i := 0; i < len(x) && i < len(y); i++ {
			if x[i] != y[i] {
				return x[i] < y[i]
			}
		}
		return len(x) < len(y)
	})
	return out
}
