package mis_test

import (
	"errors"
	"math"
	"math/rand"
	"reflect"
	"sort"
	"testing"

	"ftrepair/internal/dataset"
	"ftrepair/internal/fd"
	"ftrepair/internal/gen"
	"ftrepair/internal/mis"
	"ftrepair/internal/vgraph"
)

func citizensPhi1Graph(t *testing.T) *vgraph.Graph {
	t.Helper()
	dirty, _ := gen.Citizens()
	f := gen.CitizensFDs(dirty.Schema)[0]
	cfg := fd.DefaultDistConfig(dirty)
	// tau=0.2 yields the paper's Fig-2 shape: two triangles plus an
	// isolated vertex (see vgraph tests).
	return vgraph.Build(dirty, f, cfg, 0.2, vgraph.Options{})
}

func patternVertex(g *vgraph.Graph, edu, level string) int {
	for i, v := range g.Vertices {
		if v.Rep[1] == edu && v.Rep[2] == level {
			return i
		}
	}
	return -1
}

func TestPredicates(t *testing.T) {
	g := citizensPhi1Graph(t)
	b3 := patternVertex(g, "Bachelors", "3")
	b1 := patternVertex(g, "Bachelors", "1")
	m4 := patternVertex(g, "Masters", "4")
	hs := patternVertex(g, "HS-grad", "9")
	if !mis.IsIndependent(g, []int{b3, m4, hs}) {
		t.Fatal("cross-triangle set should be independent")
	}
	if mis.IsIndependent(g, []int{b3, b1}) {
		t.Fatal("triangle members reported independent")
	}
	if !mis.IsMaximal(g, []int{b3, m4, hs}) {
		t.Fatal("{b3,m4,hs} should be maximal")
	}
	if mis.IsMaximal(g, []int{b3, m4}) {
		t.Fatal("{b3,m4} misses hs, not maximal")
	}
	if mis.IsMaximal(g, []int{b3, b1, hs}) {
		t.Fatal("non-independent set reported maximal")
	}
}

func TestEnumerateMaximalCitizens(t *testing.T) {
	g := citizensPhi1Graph(t)
	sets := mis.EnumerateMaximal(g)
	// Two disjoint triangles and one isolated vertex: 3*3 = 9 maximal sets.
	if len(sets) != 9 {
		t.Fatalf("enumerated %d maximal sets, want 9: %v", len(sets), sets)
	}
	hs := patternVertex(g, "HS-grad", "9")
	for _, s := range sets {
		if !mis.IsMaximal(g, s) {
			t.Fatalf("%v is not maximal", s)
		}
		found := false
		for _, v := range s {
			if v == hs {
				found = true
			}
		}
		if !found {
			t.Fatalf("maximal set %v misses the isolated vertex", s)
		}
	}
}

// bruteMaximal enumerates maximal independent sets by subset enumeration
// (n <= ~16).
func bruteMaximal(g *vgraph.Graph) [][]int {
	n := len(g.Vertices)
	var out [][]int
	for mask := 0; mask < 1<<n; mask++ {
		var set []int
		for v := 0; v < n; v++ {
			if mask&(1<<v) != 0 {
				set = append(set, v)
			}
		}
		if len(set) == 0 {
			continue
		}
		if mis.IsMaximal(g, set) {
			out = append(out, set)
		}
	}
	sort.Slice(out, func(a, b int) bool {
		x, y := out[a], out[b]
		for i := 0; i < len(x) && i < len(y); i++ {
			if x[i] != y[i] {
				return x[i] < y[i]
			}
		}
		return len(x) < len(y)
	})
	return out
}

func randomCityGraph(rng *rand.Rand, nTuples int, tau float64) *vgraph.Graph {
	cities := []string{"Boston", "Denton", "Dallas", "Austin"}
	states := []string{"MA", "TX", "TX", "TX"}
	schema := dataset.Strings("City", "State")
	rel := dataset.NewRelation(schema)
	for i := 0; i < nTuples; i++ {
		k := rng.Intn(len(cities))
		city, state := cities[k], states[k]
		if rng.Intn(3) == 0 {
			b := []byte(city)
			b[rng.Intn(len(b))] = byte('a' + rng.Intn(26))
			city = string(b)
		}
		if rng.Intn(4) == 0 {
			state = states[rng.Intn(len(states))]
		}
		if err := rel.Append(dataset.Tuple{city, state}); err != nil {
			panic(err)
		}
	}
	f := fd.MustParse(schema, "City->State")
	cfg := fd.DefaultDistConfig(rel)
	return vgraph.Build(rel, f, cfg, tau, vgraph.Options{})
}

func TestEnumerateMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 25; trial++ {
		g := randomCityGraph(rng, 12, 0.3)
		if len(g.Vertices) > 14 {
			continue
		}
		got := mis.EnumerateMaximal(g)
		want := bruteMaximal(g)
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("trial %d: enumerate = %v, brute = %v", trial, got, want)
		}
	}
}

func TestBestMISCitizensMatchesExample8(t *testing.T) {
	// Example 8: the best independent set for phi1 keeps (Bachelors,3),
	// (Masters,4) and (HS-grad,9); t6,t8 repair to t4's pattern and t9,t10
	// to t1's.
	g := citizensPhi1Graph(t)
	res, err := mis.BestMIS(g, mis.Options{})
	if err != nil {
		t.Fatal(err)
	}
	want := []int{
		patternVertex(g, "Bachelors", "3"),
		patternVertex(g, "Masters", "4"),
		patternVertex(g, "HS-grad", "9"),
	}
	got := append([]int(nil), res.Set...)
	if len(got) != 3 {
		t.Fatalf("best set = %v", got)
	}
	for _, w := range want {
		found := false
		for _, v := range got {
			if v == w {
				found = true
			}
		}
		if !found {
			t.Fatalf("best set %v missing vertex %d (%v)", got, w, g.Vertices[w].Rep)
		}
	}
	// Cost: b1->b3 (2/8) + bachelers3->b3 (1/9) + m3->m4 (1/8) +
	// masers4->m4 (1/7).
	wantCost := 2.0/8 + 1.0/9 + 1.0/8 + 1.0/7
	if math.Abs(res.Cost-wantCost) > 1e-9 {
		t.Fatalf("cost = %v, want %v", res.Cost, wantCost)
	}
	// RepairCost agrees.
	c, err := mis.RepairCost(g, res.Set)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(c-res.Cost) > 1e-9 {
		t.Fatalf("RepairCost = %v, BestMIS cost = %v", c, res.Cost)
	}
}

func bruteBestCost(g *vgraph.Graph) float64 {
	best := math.Inf(1)
	for _, s := range bruteMaximal(g) {
		c, err := mis.RepairCost(g, s)
		if err != nil {
			continue
		}
		if c < best {
			best = c
		}
	}
	return best
}

func TestBestMISMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	for trial := 0; trial < 30; trial++ {
		g := randomCityGraph(rng, 14, 0.3)
		if len(g.Vertices) > 14 {
			continue
		}
		want := bruteBestCost(g)
		for _, opts := range []mis.Options{
			{},
			{DisablePruning: true},
			{NaturalOrder: true},
			{DisablePruning: true, NaturalOrder: true},
		} {
			res, err := mis.BestMIS(g, opts)
			if err != nil {
				t.Fatalf("trial %d opts %+v: %v", trial, opts, err)
			}
			if math.Abs(res.Cost-want) > 1e-9 {
				t.Fatalf("trial %d opts %+v: cost = %v, brute = %v", trial, opts, res.Cost, want)
			}
			if !mis.IsMaximal(g, res.Set) {
				t.Fatalf("trial %d: BestMIS returned non-maximal set %v", trial, res.Set)
			}
		}
	}
}

func TestPruningReducesWork(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	var withPruning, without int
	for trial := 0; trial < 10; trial++ {
		g := randomCityGraph(rng, 30, 0.3)
		a, err := mis.BestMIS(g, mis.Options{})
		if err != nil {
			t.Fatal(err)
		}
		b, err := mis.BestMIS(g, mis.Options{DisablePruning: true})
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(a.Cost-b.Cost) > 1e-9 {
			t.Fatalf("pruning changed cost: %v vs %v", a.Cost, b.Cost)
		}
		withPruning += a.NodesExplored
		without += b.NodesExplored
	}
	if withPruning > without {
		t.Fatalf("pruning explored more nodes (%d) than no pruning (%d)", withPruning, without)
	}
}

func TestRepairCostErrorsOnNonMaximal(t *testing.T) {
	g := citizensPhi1Graph(t)
	b3 := patternVertex(g, "Bachelors", "3")
	if _, err := mis.RepairCost(g, []int{b3}); err == nil {
		t.Fatal("RepairCost accepted a non-maximal set")
	}
}

func TestBestMISNodeBudget(t *testing.T) {
	rng := rand.New(rand.NewSource(14))
	g := randomCityGraph(rng, 60, 0.45)
	_, err := mis.BestMIS(g, mis.Options{MaxNodes: 1, DisablePruning: true})
	if err == nil {
		t.Skip("graph too small to exceed a 1-node budget")
	}
	if !errors.Is(err, mis.ErrTooLarge) {
		t.Fatalf("error = %v, want ErrTooLarge", err)
	}
}

func TestEnumerateEmptyGraph(t *testing.T) {
	schema := dataset.Strings("X", "Y")
	rel := dataset.NewRelation(schema)
	f := fd.MustParse(schema, "X->Y")
	cfg := fd.DefaultDistConfig(rel)
	g := vgraph.Build(rel, f, cfg, 0.3, vgraph.Options{})
	if sets := mis.EnumerateMaximal(g); sets != nil {
		t.Fatalf("empty graph enumerated %v", sets)
	}
	res, err := mis.BestMIS(g, mis.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Set) != 0 || res.Cost != 0 {
		t.Fatalf("empty graph best = %+v", res)
	}
}
