package obs

import (
	"encoding/json"
	"io"
	"time"
)

// traceDoc is the plain-JSON export shape.
type traceDoc struct {
	Name  string        `json:"name"`
	Meta  RunMeta       `json:"meta"`
	Spans []SpanSummary `json:"spans"`
}

// WriteJSON renders the trace as an indented JSON document: a header with
// the trace name and run metadata, then every finished span.
func (t *Trace) WriteJSON(w io.Writer) error {
	doc := traceDoc{}
	if t != nil {
		t.mu.Lock()
		doc.Name = t.name
		doc.Meta = t.meta
		t.mu.Unlock()
		doc.Spans = t.Summaries()
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(doc)
}

// chromeEvent is one Chrome trace_event entry (ph "X" = complete event,
// timestamps and durations in microseconds).
type chromeEvent struct {
	Name string           `json:"name"`
	Cat  string           `json:"cat"`
	Ph   string           `json:"ph"`
	TS   float64          `json:"ts"`
	Dur  float64          `json:"dur"`
	PID  int              `json:"pid"`
	TID  int              `json:"tid"`
	Args map[string]int64 `json:"args,omitempty"`
}

// chromeDoc is the trace_event JSON-object container format: an event
// array plus free-form metadata, loadable by chrome://tracing and Perfetto.
type chromeDoc struct {
	TraceEvents []chromeEvent  `json:"traceEvents"`
	OtherData   map[string]any `json:"otherData,omitempty"`
}

// WriteChrome renders the trace in Chrome trace_event format. Spans map to
// complete ("X") events; worker-labeled spans land on tid worker+1 so each
// worker gets its own track, unlabeled spans share tid 0. Run metadata goes
// into otherData.
func (t *Trace) WriteChrome(w io.Writer) error {
	doc := chromeDoc{TraceEvents: []chromeEvent{}}
	if t != nil {
		t.mu.Lock()
		name, meta := t.name, t.meta
		t.mu.Unlock()
		doc.OtherData = map[string]any{
			"trace":      name,
			"goVersion":  meta.GoVersion,
			"gomaxprocs": meta.GOMAXPROCS,
		}
		if meta.Dataset != "" {
			doc.OtherData["dataset"] = meta.Dataset
		}
		if meta.Commit != "" {
			doc.OtherData["commit"] = meta.Commit
			doc.OtherData["dirty"] = meta.Dirty
		}
		for _, s := range t.Summaries() {
			name := string(s.Phase)
			if s.FD != "" {
				name += " " + s.FD
			}
			tid := 0
			if s.Worker >= 0 {
				tid = s.Worker + 1
			}
			ev := chromeEvent{
				Name: name,
				Cat:  "ftrepair",
				Ph:   "X",
				TS:   s.Start * float64(time.Millisecond/time.Microsecond),
				Dur:  s.DurMs * float64(time.Millisecond/time.Microsecond),
				PID:  1,
				TID:  tid,
			}
			if len(s.Attrs) > 0 {
				ev.Args = make(map[string]int64, len(s.Attrs))
				for _, a := range s.Attrs {
					ev.Args[a.Key] = a.Value
				}
			}
			doc.TraceEvents = append(doc.TraceEvents, ev)
		}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(doc)
}
