package obs

import "time"

// std is the process-wide default registry. Pipeline instrumentation and
// the repaird /metrics endpoint share it, so one scrape sees every repair
// the process ran regardless of which subsystem drove it.
var std = NewRegistry()

// Default returns the process-wide registry.
func Default() *Registry { return std }

// Pipeline bundles the pre-registered pipeline metrics. Handles are fetched
// once at init, so instrumentation sites pay one atomic add per flush and
// never touch the registry lock.
//
// Naming scheme: ftrepair_<subsystem>_<thing>_total for counters,
// ftrepair_<what>_seconds for duration histograms. Units always in the
// name; labels only where cardinality is fixed (phase, algorithm).
var Pipeline = struct {
	// GraphBuilds / GraphVertices / GraphEdges flush once per vgraph.Build:
	// builds run, pattern vertices grouped, violation edges verified.
	GraphBuilds   *Counter
	GraphVertices *Counter
	GraphEdges    *Counter
	// DistCacheHits / DistCacheMisses are per-run distance-cache deltas
	// (the "distCacheHits"/"distCacheMisses" Stats entries).
	DistCacheHits   *Counter
	DistCacheMisses *Counter
	// DistPlaneHits / DistPlaneMisses are the per-run distance-plane deltas
	// (the "distPlaneHits"/"distPlaneMisses" Stats entries): pairs answered
	// by one atomic load against a per-column plane versus pairs that fell
	// through to the sharded maps. The plane counts are also folded into
	// the distcache totals above, so these split the cache traffic, they do
	// not add to it.
	DistPlaneHits   *Counter
	DistPlaneMisses *Counter
	// MISNodes / MISPruned count expansion-tree nodes explored and subtrees
	// pruned by the exact single-FD search.
	MISNodes  *Counter
	MISPruned *Counter
	// BnBCombos counts branch-and-bound combinations evaluated by ExactM;
	// BnBIncumbents counts incumbent-watermark updates during the search.
	BnBCombos     *Counter
	BnBIncumbents *Counter
	// TreeVisited counts target-tree nodes visited across nearest-target
	// searches (targettree.Nearest / NearestScan).
	TreeVisited *Counter
	// GreedySetSize accumulates grown independent-set sizes; JoinFallbacks
	// counts empty joined-set fallbacks to sequential per-FD repair.
	GreedySetSize *Counter
	JoinFallbacks *Counter
}{
	GraphBuilds: std.Counter("ftrepair_graph_builds_total",
		"Violation-graph constructions (vgraph.Build calls)."),
	GraphVertices: std.Counter("ftrepair_graph_vertices_total",
		"Pattern vertices grouped across violation-graph builds."),
	GraphEdges: std.Counter("ftrepair_graph_edges_built_total",
		"FT-violation edges verified across violation-graph builds."),
	DistCacheHits: std.Counter("ftrepair_distcache_hits_total",
		"Distance-cache hits reported by finished repair runs."),
	DistCacheMisses: std.Counter("ftrepair_distcache_misses_total",
		"Distance-cache misses reported by finished repair runs."),
	DistPlaneHits: std.Counter("ftrepair_distplane_hits_total",
		"Distance-plane hits (one-atomic-load answers) reported by finished repair runs."),
	DistPlaneMisses: std.Counter("ftrepair_distplane_misses_total",
		"Distance-plane fall-throughs to the sharded maps reported by finished repair runs."),
	MISNodes: std.Counter("ftrepair_mis_nodes_explored_total",
		"Expansion-tree nodes explored by the exact MIS search."),
	MISPruned: std.Counter("ftrepair_mis_subtrees_pruned_total",
		"Expansion subtrees cut by bound pruning in the exact MIS search."),
	BnBCombos: std.Counter("ftrepair_bnb_combinations_total",
		"Independent-set combinations evaluated by ExactM branch-and-bound."),
	BnBIncumbents: std.Counter("ftrepair_bnb_incumbent_updates_total",
		"Incumbent-watermark improvements during ExactM branch-and-bound."),
	TreeVisited: std.Counter("ftrepair_targettree_nodes_visited_total",
		"Target-tree nodes visited across nearest-target searches."),
	GreedySetSize: std.Counter("ftrepair_greedy_set_vertices_total",
		"Vertices admitted into greedily grown independent sets."),
	JoinFallbacks: std.Counter("ftrepair_join_fallbacks_total",
		"Empty joined-set fallbacks to sequential per-FD greedy repair."),
}

// Incr bundles the incremental-engine metrics. The batcher/engine flush one
// IncrBatch per processed append batch, so every counter here moves once per
// flush, never per tuple. The ftrepair_incr_ prefix marks the
// streaming-ingest subsystem; the smoke tests grep for these names.
var Incr = struct {
	// Rows / RowsRepaired count appended rows admitted and how many of them
	// their flush modified.
	Rows         *Counter
	RowsRepaired *Counter
	// ShardsTouched counts shards dirtied by a batch; ShardsRepaired counts
	// the subset actually re-run through a repair algorithm (shards with no
	// violation edges skip the run); ShardMerges counts merge-on-edge events
	// where a batch linked two previously independent shards.
	ShardsTouched  *Counter
	ShardsRepaired *Counter
	ShardMerges    *Counter
	// Shards / MaxTouchedRows are point-in-time gauges refreshed per flush:
	// the live shard population and the row count of the largest shard the
	// last batch touched.
	Shards         *Gauge
	MaxTouchedRows *Gauge
	// BatchSeconds is the per-flush wall-clock histogram — the latency the
	// locality claim is about (bounded by the touched components, not N).
	BatchSeconds *Histogram
}{
	Rows: std.Counter("ftrepair_incr_rows_total",
		"Rows admitted by incremental-engine batches."),
	RowsRepaired: std.Counter("ftrepair_incr_rows_repaired_total",
		"Admitted rows modified by their flush."),
	ShardsTouched: std.Counter("ftrepair_incr_shards_touched_total",
		"Shards dirtied by incremental batches."),
	ShardsRepaired: std.Counter("ftrepair_incr_shard_repairs_total",
		"Touched shards re-run through a repair algorithm."),
	ShardMerges: std.Counter("ftrepair_incr_shard_merges_total",
		"Merge-on-edge events (a batch linked two shards)."),
	Shards: std.Gauge("ftrepair_incr_shards",
		"Live shards in the incremental engine."),
	MaxTouchedRows: std.Gauge("ftrepair_incr_max_touched_shard_rows",
		"Rows in the largest shard the last batch touched."),
	BatchSeconds: std.Histogram("ftrepair_incr_batch_duration_seconds",
		"Wall-clock duration of incremental-engine flushes.",
		DurationBuckets()),
}

// IncrBatch is one processed append batch, as reported to the registry.
type IncrBatch struct {
	Reason         string // why the batch flushed: size, interval, close, manual
	Rows           int
	Repaired       int
	ShardsTouched  int
	ShardsRepaired int
	Merges         int
	Shards         int // live shard population after the flush
	MaxShardRows   int // largest touched shard, in rows
	Dur            time.Duration
}

// ObserveIncrBatch flushes one batch's numbers into the default registry.
// Called once per flush, so the labeled-counter lookup for the reason is
// off any hot path.
func ObserveIncrBatch(b IncrBatch) {
	std.Counter("ftrepair_incr_batches_total",
		"Incremental-engine batches flushed, by trigger.",
		Label{Key: "reason", Value: b.Reason}).Inc()
	Incr.Rows.AddInt(b.Rows)
	Incr.RowsRepaired.AddInt(b.Repaired)
	Incr.ShardsTouched.AddInt(b.ShardsTouched)
	Incr.ShardsRepaired.AddInt(b.ShardsRepaired)
	Incr.ShardMerges.AddInt(b.Merges)
	Incr.Shards.Set(float64(b.Shards))
	Incr.MaxTouchedRows.Set(float64(b.MaxShardRows))
	Incr.BatchSeconds.Observe(b.Dur.Seconds())
}

// phaseDurations maps each pipeline phase to its pre-created duration
// histogram, so Span.End observes without a registry lookup.
var phaseDurations = func() map[Phase]*Histogram {
	m := make(map[Phase]*Histogram, len(Phases()))
	for _, p := range Phases() {
		m[p] = std.Histogram("ftrepair_phase_duration_seconds",
			"Wall-clock duration of pipeline phases.",
			DurationBuckets(), Label{Key: "phase", Value: string(p)})
	}
	return m
}()

// ObservePhase records one phase duration in the default registry.
func ObservePhase(p Phase, d time.Duration) {
	if h := phaseDurations[p]; h != nil {
		h.Observe(d.Seconds())
	}
}

// ObserveRepair records one finished repair run: a per-algorithm run
// counter and duration histogram. Called once per Result, far from hot
// loops, so the registry lookup for the algorithm label is fine.
func ObserveRepair(algorithm string, d time.Duration) {
	std.Counter("ftrepair_repairs_total",
		"Finished repair runs by algorithm.",
		Label{Key: "algorithm", Value: algorithm}).Inc()
	std.Histogram("ftrepair_repair_duration_seconds",
		"End-to-end repair wall-clock by algorithm.",
		DurationBuckets(), Label{Key: "algorithm", Value: algorithm}).Observe(d.Seconds())
}

// runStatCounters maps repair Stats keys to their registry counters. The
// "vertices"/"edges" keys are deliberately absent: vgraph.Build flushes
// those itself (covering builds outside finished Results too), and a second
// flush here would double count.
var runStatCounters = map[string]*Counter{
	"nodes":           Pipeline.MISNodes,
	"pruned":          Pipeline.MISPruned,
	"combinations":    Pipeline.BnBCombos,
	"bnbIncumbents":   Pipeline.BnBIncumbents,
	"treeVisited":     Pipeline.TreeVisited,
	"setSize":         Pipeline.GreedySetSize,
	"joinFallback":    Pipeline.JoinFallbacks,
	"distCacheHits":   Pipeline.DistCacheHits,
	"distCacheMisses": Pipeline.DistCacheMisses,
	"distPlaneHits":   Pipeline.DistPlaneHits,
	"distPlaneMisses": Pipeline.DistPlaneMisses,
}

// Ledger bundles the repair-ledger metrics. internal/ledger flushes the
// first three once per Commit (never per event); VerifyFailures moves when
// a replay verification or proof check fails — in a healthy deployment it
// stays at zero, which is exactly what makes it worth alerting on.
var Ledger = struct {
	Events         *Counter
	Batches        *Counter
	Bytes          *Counter
	VerifyFailures *Counter
}{
	Events: std.Counter("ftrepair_ledger_events_total",
		"Repair events committed to ledgers."),
	Batches: std.Counter("ftrepair_ledger_batches_total",
		"Ledger batches committed (one Merkle tree each)."),
	Bytes: std.Counter("ftrepair_ledger_bytes_total",
		"Canonical encoded bytes of committed ledger events."),
	VerifyFailures: std.Counter("ftrepair_ledger_verify_failures_total",
		"Ledger replay or proof verifications that failed."),
}

// FlushRunStats folds a finished run's Stats map into the registry. This is
// what makes the Stats maps a thin view over the registry: the algorithms
// keep accumulating into their deterministic per-run maps, and the totals
// land here exactly once, when the run's Result is finalized.
func FlushRunStats(stats map[string]int) {
	for k, v := range stats {
		if c := runStatCounters[k]; c != nil {
			c.AddInt(v)
		}
	}
}
