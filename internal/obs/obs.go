// Package obs is the pipeline's observability layer: a phase-scoped tracer
// and a metrics registry, both stdlib-only and safe for concurrent use.
//
// The repair pipeline has sharply distinct cost phases — candidate
// detection, violation-graph construction, MIS expansion, greedy growth,
// target search, repair application — and the package models exactly that
// taxonomy:
//
//   - Trace/Span record wall-clock spans per phase with counter
//     attachments, FD labels, and worker ids. Spans export as plain JSON or
//     Chrome trace_event format (chrome://tracing, Perfetto) and mirror
//     into runtime/trace regions so `go tool trace` shows the same phases.
//   - Registry holds counters, gauges, and fixed-bucket histograms backed
//     by atomics, with Prometheus text exposition and a JSON snapshot.
//
// Collection is read-only with respect to repair decisions and O(1)
// amortized per event: hot loops keep accumulating into their existing
// local counters (the repair Stats maps, atomic visit totals), and the
// totals flush into the registry once per phase or per run.
package obs

import (
	"runtime"
	"runtime/debug"
)

// Phase names one stage of the repair pipeline. The set is closed: every
// span carries one of these, so dashboards and trace viewers can group by
// phase without free-form string matching.
type Phase string

const (
	// PhaseDetect covers violation detection over the whole FD set.
	PhaseDetect Phase = "detect"
	// PhaseGraphBuild covers one violation-graph construction (per FD).
	PhaseGraphBuild Phase = "graphbuild"
	// PhaseExpand covers MIS expansion/enumeration (ExactS/ExactM).
	PhaseExpand Phase = "expand"
	// PhaseGreedyGrow covers greedy independent-set growth (GreedyS,
	// ApproM's per-FD growth, GreedyM's joint growth).
	PhaseGreedyGrow Phase = "greedygrow"
	// PhaseTargetSearch covers joined-plan evaluation: target-tree builds
	// plus nearest-target searches, including ExactM's branch-and-bound.
	PhaseTargetSearch Phase = "targetsearch"
	// PhaseDistance covers the distance-dominated inner work nested inside
	// other phases: target-tree nearest searches inside targetsearch and
	// candidate scans inside the incremental engine's shardselect. Always a
	// child span, so trace exports show distance time separately from its
	// parent phase.
	PhaseDistance Phase = "distance"
	// PhaseApply covers writing chosen repairs back into the relation.
	PhaseApply Phase = "apply"
	// PhaseShardSelect covers incremental-engine shard selection: registering
	// a batch's patterns, detecting their violations against the warm
	// registry, and union-finding the touched shards.
	PhaseShardSelect Phase = "shardselect"
	// PhaseIncRepair covers one incremental shard re-repair (the touched
	// shard's sub-relation run through the configured algorithm).
	PhaseIncRepair Phase = "increpair"
)

// Phases lists every phase in pipeline order.
func Phases() []Phase {
	return []Phase{PhaseDetect, PhaseGraphBuild, PhaseExpand,
		PhaseGreedyGrow, PhaseTargetSearch, PhaseDistance, PhaseApply,
		PhaseShardSelect, PhaseIncRepair}
}

// RunMeta is the run metadata embedded in trace headers and BENCH_*.json
// documents, so measurements stay interpretable after the fact.
type RunMeta struct {
	GoVersion  string `json:"goVersion"`
	GOMAXPROCS int    `json:"gomaxprocs"`
	GOOS       string `json:"goos"`
	GOARCH     string `json:"goarch"`
	// Commit is the VCS revision baked in by the Go toolchain, when the
	// binary was built from a checkout (debug.ReadBuildInfo); Dirty marks
	// uncommitted changes.
	Commit string `json:"commit,omitempty"`
	Dirty  bool   `json:"dirty,omitempty"`
	// Dataset names the input the run processed (file path, workload name).
	Dataset string `json:"dataset,omitempty"`
}

// CollectMeta gathers the run metadata for the current process.
func CollectMeta(dataset string) RunMeta {
	m := RunMeta{
		GoVersion:  runtime.Version(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		GOOS:       runtime.GOOS,
		GOARCH:     runtime.GOARCH,
		Dataset:    dataset,
	}
	if bi, ok := debug.ReadBuildInfo(); ok {
		for _, s := range bi.Settings {
			switch s.Key {
			case "vcs.revision":
				m.Commit = s.Value
			case "vcs.modified":
				m.Dirty = s.Value == "true"
			}
		}
	}
	return m
}
