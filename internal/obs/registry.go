package obs

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing metric. All methods are safe for
// concurrent use; a zero Counter is ready to use.
type Counter struct{ v atomic.Uint64 }

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// AddInt adds n when it is positive (repair stat deltas are occasionally
// zero and must never go negative).
func (c *Counter) AddInt(n int) {
	if n > 0 {
		c.v.Add(uint64(n))
	}
}

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

// Gauge is a settable instantaneous value (float64 under atomic bits).
type Gauge struct{ bits atomic.Uint64 }

// Set stores v.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Add adds delta with a CAS loop.
func (g *Gauge) Add(delta float64) {
	for {
		old := g.bits.Load()
		cur := math.Float64frombits(old)
		if g.bits.CompareAndSwap(old, math.Float64bits(cur+delta)) {
			return
		}
	}
}

// Value returns the current value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// Histogram is a fixed-bucket histogram: counts per upper bound plus a
// +Inf overflow bucket, a total count, and a sum. Observe is lock-free.
type Histogram struct {
	bounds  []float64 // ascending upper bounds; +Inf is implicit
	counts  []atomic.Uint64
	count   atomic.Uint64
	sumBits atomic.Uint64
}

func newHistogram(bounds []float64) *Histogram {
	return &Histogram{bounds: bounds, counts: make([]atomic.Uint64, len(bounds)+1)}
}

// Observe records one measurement.
func (h *Histogram) Observe(v float64) {
	// Bucket search is linear: duration histograms have ~15 buckets, and a
	// branchy scan over a short slice beats binary search in practice.
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sumBits.Load()
		cur := math.Float64frombits(old)
		if h.sumBits.CompareAndSwap(old, math.Float64bits(cur+v)) {
			return
		}
	}
}

// Count returns the total number of observations.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// Sum returns the sum of all observations.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sumBits.Load()) }

// DurationBuckets is the default upper-bound ladder for phase-duration
// histograms, in seconds: half-millisecond to ten-second phases.
func DurationBuckets() []float64 {
	return []float64{0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05,
		0.1, 0.25, 0.5, 1, 2.5, 5, 10}
}

// Label is one metric label pair.
type Label struct{ Key, Value string }

// labelSignature canonicalizes a label set: sorted by key, rendered in
// exposition form. Used both as the series map key and in output.
func labelSignature(labels []Label) string {
	if len(labels) == 0 {
		return ""
	}
	ls := append([]Label(nil), labels...)
	sort.Slice(ls, func(i, j int) bool { return ls[i].Key < ls[j].Key })
	var b strings.Builder
	b.WriteByte('{')
	for i, l := range ls {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(l.Key)
		b.WriteString(`="`)
		b.WriteString(escapeLabel(l.Value))
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

func escapeLabel(v string) string {
	v = strings.ReplaceAll(v, `\`, `\\`)
	v = strings.ReplaceAll(v, "\n", `\n`)
	return strings.ReplaceAll(v, `"`, `\"`)
}

type metricKind int

const (
	kindCounter metricKind = iota
	kindGauge
	kindHistogram
)

func (k metricKind) String() string {
	switch k {
	case kindCounter:
		return "counter"
	case kindGauge:
		return "gauge"
	default:
		return "histogram"
	}
}

// series is one (metric family, label set) time series.
type series struct {
	sig    string
	labels []Label
	c      *Counter
	g      *Gauge
	h      *Histogram
}

// family groups every series sharing a metric name.
type family struct {
	name   string
	help   string
	kind   metricKind
	bounds []float64
	series map[string]*series
	order  []string
}

// Registry is a get-or-create metric store. Metric handles returned by
// Counter/Gauge/Histogram are stable: hot paths fetch them once and update
// via atomics, never touching the registry lock again.
type Registry struct {
	mu       sync.Mutex
	families map[string]*family
	order    []string
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: make(map[string]*family)}
}

func (r *Registry) family(name, help string, kind metricKind, bounds []float64) *family {
	f, ok := r.families[name]
	if !ok {
		f = &family{name: name, help: help, kind: kind, bounds: bounds,
			series: make(map[string]*series)}
		r.families[name] = f
		r.order = append(r.order, name)
		return f
	}
	if f.kind != kind {
		panic(fmt.Sprintf("obs: metric %q registered as %s, requested as %s", name, f.kind, kind))
	}
	return f
}

func (f *family) get(labels []Label) *series {
	sig := labelSignature(labels)
	s, ok := f.series[sig]
	if !ok {
		s = &series{sig: sig, labels: append([]Label(nil), labels...)}
		switch f.kind {
		case kindCounter:
			s.c = &Counter{}
		case kindGauge:
			s.g = &Gauge{}
		default:
			s.h = newHistogram(f.bounds)
		}
		f.series[sig] = s
		f.order = append(f.order, sig)
		sort.Strings(f.order)
	}
	return s
}

// Counter returns the counter for (name, labels), creating it on first use.
func (r *Registry) Counter(name, help string, labels ...Label) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.family(name, help, kindCounter, nil).get(labels).c
}

// Gauge returns the gauge for (name, labels), creating it on first use.
func (r *Registry) Gauge(name, help string, labels ...Label) *Gauge {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.family(name, help, kindGauge, nil).get(labels).g
}

// Histogram returns the histogram for (name, labels) with the given bucket
// upper bounds (+Inf implicit), creating it on first use. Bounds are fixed
// at creation; later calls reuse the first bounds.
func (r *Registry) Histogram(name, help string, bounds []float64, labels ...Label) *Histogram {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.family(name, help, kindHistogram, bounds).get(labels).h
}

func formatFloat(v float64) string {
	if math.IsInf(v, 1) {
		return "+Inf"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// WritePrometheus renders the registry in the Prometheus text exposition
// format (version 0.0.4): families sorted by name, series sorted by label
// signature, histograms with cumulative le buckets plus _sum and _count.
func (r *Registry) WritePrometheus(w io.Writer) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	names := append([]string(nil), r.order...)
	sort.Strings(names)
	var b strings.Builder
	for _, name := range names {
		f := r.families[name]
		fmt.Fprintf(&b, "# HELP %s %s\n", f.name, f.help)
		fmt.Fprintf(&b, "# TYPE %s %s\n", f.name, f.kind)
		for _, sig := range f.order {
			s := f.series[sig]
			switch f.kind {
			case kindCounter:
				fmt.Fprintf(&b, "%s%s %d\n", f.name, sig, s.c.Value())
			case kindGauge:
				fmt.Fprintf(&b, "%s%s %s\n", f.name, sig, formatFloat(s.g.Value()))
			default:
				writeHistogram(&b, f.name, s)
			}
		}
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// writeHistogram renders one histogram series: cumulative buckets with the
// le label merged into the series labels, then _sum and _count.
func writeHistogram(b *strings.Builder, name string, s *series) {
	cum := uint64(0)
	for i := range s.h.counts {
		cum += s.h.counts[i].Load()
		bound := math.Inf(1)
		if i < len(s.h.bounds) {
			bound = s.h.bounds[i]
		}
		labels := append(append([]Label(nil), s.labels...), Label{Key: "le", Value: formatFloat(bound)})
		fmt.Fprintf(b, "%s_bucket%s %d\n", name, labelSignature(labels), cum)
	}
	fmt.Fprintf(b, "%s_sum%s %s\n", name, s.sig, formatFloat(s.h.Sum()))
	fmt.Fprintf(b, "%s_count%s %d\n", name, s.sig, s.h.Count())
}

// BucketSnapshot is one histogram bucket in a snapshot (cumulative count).
// JSON cannot encode +Inf, so the overflow bucket sets Inf instead of LE.
type BucketSnapshot struct {
	LE    float64 `json:"le"`
	Inf   bool    `json:"inf,omitempty"`
	Count uint64  `json:"count"`
}

// SeriesSnapshot is one series in a snapshot.
type SeriesSnapshot struct {
	Labels map[string]string `json:"labels,omitempty"`
	// Value holds counter and gauge readings.
	Value *float64 `json:"value,omitempty"`
	// Histogram readings.
	Count   uint64           `json:"count,omitempty"`
	Sum     float64          `json:"sum,omitempty"`
	Buckets []BucketSnapshot `json:"buckets,omitempty"`
}

// MetricSnapshot is one metric family in a snapshot.
type MetricSnapshot struct {
	Name   string           `json:"name"`
	Type   string           `json:"type"`
	Help   string           `json:"help"`
	Series []SeriesSnapshot `json:"series"`
}

// Snapshot returns a point-in-time JSON-marshalable view of every metric,
// families sorted by name.
func (r *Registry) Snapshot() []MetricSnapshot {
	r.mu.Lock()
	defer r.mu.Unlock()
	names := append([]string(nil), r.order...)
	sort.Strings(names)
	out := make([]MetricSnapshot, 0, len(names))
	for _, name := range names {
		f := r.families[name]
		ms := MetricSnapshot{Name: f.name, Type: f.kind.String(), Help: f.help}
		for _, sig := range f.order {
			s := f.series[sig]
			ss := SeriesSnapshot{}
			if len(s.labels) > 0 {
				ss.Labels = make(map[string]string, len(s.labels))
				for _, l := range s.labels {
					ss.Labels[l.Key] = l.Value
				}
			}
			switch f.kind {
			case kindCounter:
				v := float64(s.c.Value())
				ss.Value = &v
			case kindGauge:
				v := s.g.Value()
				ss.Value = &v
			default:
				ss.Count = s.h.Count()
				ss.Sum = s.h.Sum()
				cum := uint64(0)
				for i := range s.h.counts {
					cum += s.h.counts[i].Load()
					bs := BucketSnapshot{Count: cum}
					if i < len(s.h.bounds) {
						bs.LE = s.h.bounds[i]
					} else {
						bs.Inf = true
					}
					ss.Buckets = append(ss.Buckets, bs)
				}
			}
			ms.Series = append(ms.Series, ss)
		}
		out = append(out, ms)
	}
	return out
}
