package obs

import (
	"encoding/json"
	"strings"
	"sync"
	"testing"
)

func TestCounterGaugeBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c_total", "help")
	c.Inc()
	c.Add(4)
	c.AddInt(3)
	c.AddInt(-5) // ignored
	if got := c.Value(); got != 8 {
		t.Fatalf("counter = %d, want 8", got)
	}
	g := r.Gauge("g", "help")
	g.Set(2.5)
	g.Add(-1)
	if got := g.Value(); got != 1.5 {
		t.Fatalf("gauge = %v, want 1.5", got)
	}
	// Get-or-create returns the same handle.
	if r.Counter("c_total", "help") != c {
		t.Fatal("second Counter call returned a different handle")
	}
}

func TestHistogramBuckets(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("h_seconds", "help", []float64{0.1, 1})
	for _, v := range []float64{0.05, 0.1, 0.5, 2, 3} {
		h.Observe(v)
	}
	if h.Count() != 5 {
		t.Fatalf("count = %d, want 5", h.Count())
	}
	if got, want := h.Sum(), 5.65; got != want {
		t.Fatalf("sum = %v, want %v", got, want)
	}
	// Buckets: le=0.1 holds {0.05, 0.1}, le=1 adds {0.5}, +Inf adds {2, 3}.
	want := []uint64{2, 1, 2}
	for i := range want {
		if got := h.counts[i].Load(); got != want[i] {
			t.Fatalf("bucket[%d] = %d, want %d", i, got, want[i])
		}
	}
}

func TestRegistryKindMismatchPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("m", "help")
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on kind mismatch")
		}
	}()
	r.Gauge("m", "help")
}

// TestConcurrentUpdates hammers one counter, gauge, and histogram from many
// goroutines; meaningful under -race, and the totals must be exact.
func TestConcurrentUpdates(t *testing.T) {
	r := NewRegistry()
	const workers, perWorker = 8, 2000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			// Get-or-create from every goroutine too: the registry path
			// itself must be race-clean, not just the handles.
			c := r.Counter("hits_total", "help")
			g := r.Gauge("load", "help")
			h := r.Histogram("lat_seconds", "help", DurationBuckets())
			for i := 0; i < perWorker; i++ {
				c.Inc()
				g.Add(1)
				h.Observe(0.002)
			}
		}()
	}
	wg.Wait()
	if got := r.Counter("hits_total", "help").Value(); got != workers*perWorker {
		t.Fatalf("counter = %d, want %d", got, workers*perWorker)
	}
	if got := r.Gauge("load", "help").Value(); got != workers*perWorker {
		t.Fatalf("gauge = %v, want %d", got, workers*perWorker)
	}
	h := r.Histogram("lat_seconds", "help", DurationBuckets())
	if h.Count() != workers*perWorker {
		t.Fatalf("histogram count = %d, want %d", h.Count(), workers*perWorker)
	}
}

// TestWritePrometheusGolden pins the exposition format byte-for-byte on a
// fresh registry: sorted families, sorted series, cumulative buckets,
// _sum/_count, escaping.
func TestWritePrometheusGolden(t *testing.T) {
	r := NewRegistry()
	r.Counter("zz_total", "registered first, rendered last").Add(7)
	r.Counter("aa_total", "labeled counter",
		Label{Key: "algorithm", Value: "exact-s"}).Add(3)
	r.Counter("aa_total", "labeled counter",
		Label{Key: "algorithm", Value: `quo"te`}).Inc()
	r.Gauge("mid_gauge", "a gauge").Set(1.5)
	h := r.Histogram("dur_seconds", "a histogram", []float64{0.1, 1},
		Label{Key: "phase", Value: "apply"})
	h.Observe(0.05)
	h.Observe(0.5)
	h.Observe(3)

	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	want := `# HELP aa_total labeled counter
# TYPE aa_total counter
aa_total{algorithm="exact-s"} 3
aa_total{algorithm="quo\"te"} 1
# HELP dur_seconds a histogram
# TYPE dur_seconds histogram
dur_seconds_bucket{le="0.1",phase="apply"} 1
dur_seconds_bucket{le="1",phase="apply"} 2
dur_seconds_bucket{le="+Inf",phase="apply"} 3
dur_seconds_sum{phase="apply"} 3.55
dur_seconds_count{phase="apply"} 3
# HELP mid_gauge a gauge
# TYPE mid_gauge gauge
mid_gauge 1.5
# HELP zz_total registered first, rendered last
# TYPE zz_total counter
zz_total 7
`
	if got := b.String(); got != want {
		t.Errorf("exposition mismatch\n--- got ---\n%s--- want ---\n%s", got, want)
	}
}

func TestSnapshotJSON(t *testing.T) {
	r := NewRegistry()
	r.Counter("c_total", "help").Add(2)
	h := r.Histogram("h_seconds", "help", []float64{1})
	h.Observe(0.5)
	h.Observe(2)

	snap := r.Snapshot()
	raw, err := json.Marshal(snap)
	if err != nil {
		t.Fatalf("snapshot must be JSON-marshalable: %v", err)
	}
	var back []MetricSnapshot
	if err := json.Unmarshal(raw, &back); err != nil {
		t.Fatal(err)
	}
	if len(back) != 2 {
		t.Fatalf("families = %d, want 2", len(back))
	}
	if back[0].Name != "c_total" || back[0].Series[0].Value == nil || *back[0].Series[0].Value != 2 {
		t.Fatalf("counter snapshot wrong: %+v", back[0])
	}
	hs := back[1].Series[0]
	if hs.Count != 2 || hs.Sum != 2.5 {
		t.Fatalf("histogram snapshot wrong: %+v", hs)
	}
	if len(hs.Buckets) != 2 || !hs.Buckets[1].Inf || hs.Buckets[1].Count != 2 {
		t.Fatalf("buckets wrong: %+v", hs.Buckets)
	}
}

func TestFlushRunStats(t *testing.T) {
	before := Pipeline.BnBCombos.Value()
	beforeTree := Pipeline.TreeVisited.Value()
	FlushRunStats(map[string]int{
		"combinations": 10,
		"treeVisited":  4,
		"vertices":     99, // not a run-stat key: vgraph flushes vertices
		"unknown":      1,
	})
	if got := Pipeline.BnBCombos.Value() - before; got != 10 {
		t.Fatalf("combinations delta = %d, want 10", got)
	}
	if got := Pipeline.TreeVisited.Value() - beforeTree; got != 4 {
		t.Fatalf("treeVisited delta = %d, want 4", got)
	}
}
