package obs

import (
	"context"
	rtrace "runtime/trace"
	"sort"
	"sync"
	"time"
)

// Trace collects phase-scoped spans for one run (a CLI invocation, a
// repaird job). A nil *Trace is valid everywhere: spans started on a nil
// Trace still time themselves and feed phase-duration histograms, they just
// are not retained for export.
type Trace struct {
	name  string
	start time.Time

	mu    sync.Mutex
	meta  RunMeta
	spans []*Span
	seq   int
	open  int
}

// NewTrace starts an empty trace.
func NewTrace(name string) *Trace {
	return &Trace{name: name, start: time.Now()}
}

// Name returns the trace's name.
func (t *Trace) Name() string {
	if t == nil {
		return ""
	}
	return t.name
}

// SetMeta attaches run metadata, embedded in export headers.
func (t *Trace) SetMeta(m RunMeta) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.meta = m
	t.mu.Unlock()
}

// Span is one timed phase region. Spans are created through Begin or
// Span.Child and closed with End; attachments (FD label, worker id, named
// counters) may be set any time before End. Methods are safe on a nil Span
// and safe for concurrent use with other spans, but one span must not be
// mutated from multiple goroutines.
type Span struct {
	tr     *Trace
	parent *Span

	phase  Phase
	fd     string
	worker int
	start  time.Time
	endT   time.Time
	attrs  []Attr
	ended  bool

	rt *rtrace.Region
}

// Attr is one named counter attached to a span.
type Attr struct {
	Key   string `json:"key"`
	Value int64  `json:"value"`
}

// Begin opens a top-level span for phase p. Always returns a usable span:
// with a nil trace the span is detached — it still mirrors into
// runtime/trace and observes the phase-duration histogram at End, it just
// is not exported.
func Begin(t *Trace, p Phase) *Span {
	return newSpan(t, nil, p)
}

// Child opens a sub-span of s (same trace) for phase p. Valid on nil or
// detached spans.
func (s *Span) Child(p Phase) *Span {
	if s == nil {
		return newSpan(nil, nil, p)
	}
	return newSpan(s.tr, s, p)
}

func newSpan(t *Trace, parent *Span, p Phase) *Span {
	s := &Span{tr: t, parent: parent, phase: p, worker: -1, start: time.Now()}
	if rtrace.IsEnabled() {
		s.rt = rtrace.StartRegion(context.Background(), "ftrepair/"+string(p))
	}
	if t != nil {
		t.mu.Lock()
		t.seq++
		t.spans = append(t.spans, s)
		t.open++
		t.mu.Unlock()
	}
	return s
}

// SetFD labels the span with the FD it processed.
func (s *Span) SetFD(fd string) {
	if s != nil {
		s.fd = fd
	}
}

// SetWorker labels the span with a worker id (>= 0).
func (s *Span) SetWorker(w int) {
	if s != nil {
		s.worker = w
	}
}

// Add attaches (or accumulates into) a named counter on the span.
func (s *Span) Add(key string, n int64) {
	if s == nil {
		return
	}
	for i := range s.attrs {
		if s.attrs[i].Key == key {
			s.attrs[i].Value += n
			return
		}
	}
	s.attrs = append(s.attrs, Attr{Key: key, Value: n})
}

// End closes the span, records its phase duration in the default registry,
// and closes the mirrored runtime/trace region. Idempotent: second and
// later calls are no-ops, so cancel paths can End eagerly while an outer
// defer stays as the safety net.
func (s *Span) End() {
	if s == nil || s.ended {
		return
	}
	s.ended = true
	s.endT = time.Now()
	if s.rt != nil {
		s.rt.End()
		s.rt = nil
	}
	ObservePhase(s.phase, s.endT.Sub(s.start))
	if s.tr != nil {
		s.tr.mu.Lock()
		s.tr.open--
		s.tr.mu.Unlock()
	}
}

// Duration returns the span's wall time (time since start if still open).
func (s *Span) Duration() time.Duration {
	if s == nil {
		return 0
	}
	if !s.ended {
		return time.Since(s.start)
	}
	return s.endT.Sub(s.start)
}

// OpenSpans returns the number of spans started but not yet ended.
func (t *Trace) OpenSpans() int {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.open
}

// CloseOpen force-ends every open span, oldest last so children close
// before parents. Exporters call it as a safety net before rendering a
// trace from a canceled run; on a fully ended trace it is a no-op.
func (t *Trace) CloseOpen() {
	if t == nil {
		return
	}
	t.mu.Lock()
	spans := append([]*Span(nil), t.spans...)
	t.mu.Unlock()
	for i := len(spans) - 1; i >= 0; i-- {
		spans[i].End()
	}
}

// SpanSummary is the export/reporting form of one finished span.
type SpanSummary struct {
	Phase  Phase  `json:"phase"`
	FD     string `json:"fd,omitempty"`
	Worker int    `json:"worker,omitempty"`
	// Depth is the nesting level (0 = top-level phase span).
	Depth int     `json:"depth,omitempty"`
	Start float64 `json:"startMs"`
	DurMs float64 `json:"durMs"`
	Attrs []Attr  `json:"attrs,omitempty"`
}

func (s *Span) depth() int {
	d := 0
	for p := s.parent; p != nil; p = p.parent {
		d++
	}
	return d
}

// Summaries returns every ended span in start order, with timestamps
// relative to the trace start. Open spans are skipped — run CloseOpen
// first if the trace may have been abandoned mid-phase.
func (t *Trace) Summaries() []SpanSummary {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]SpanSummary, 0, len(t.spans))
	for _, s := range t.spans {
		if !s.ended {
			continue
		}
		out = append(out, SpanSummary{
			Phase:  s.phase,
			FD:     s.fd,
			Worker: s.worker,
			Depth:  s.depth(),
			Start:  float64(s.start.Sub(t.start)) / float64(time.Millisecond),
			DurMs:  float64(s.endT.Sub(s.start)) / float64(time.Millisecond),
			Attrs:  append([]Attr(nil), s.attrs...),
		})
	}
	sort.SliceStable(out, func(i, j int) bool { return out[i].Start < out[j].Start })
	return out
}
