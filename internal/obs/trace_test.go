package obs

import (
	"bytes"
	"encoding/json"
	"testing"
	"time"
)

func TestSpanNestingAndSummaries(t *testing.T) {
	tr := NewTrace("test")
	root := Begin(tr, PhaseGraphBuild)
	root.SetFD("City->State")
	root.Add("edges", 5)
	root.Add("edges", 2)
	child := root.Child(PhaseExpand)
	child.SetWorker(3)
	child.End()
	root.End()

	if n := tr.OpenSpans(); n != 0 {
		t.Fatalf("open spans = %d, want 0", n)
	}
	sums := tr.Summaries()
	if len(sums) != 2 {
		t.Fatalf("summaries = %d, want 2", len(sums))
	}
	if sums[0].Phase != PhaseGraphBuild || sums[0].Depth != 0 || sums[0].FD != "City->State" {
		t.Fatalf("root summary wrong: %+v", sums[0])
	}
	if len(sums[0].Attrs) != 1 || sums[0].Attrs[0] != (Attr{Key: "edges", Value: 7}) {
		t.Fatalf("attrs wrong: %+v", sums[0].Attrs)
	}
	if sums[1].Phase != PhaseExpand || sums[1].Depth != 1 || sums[1].Worker != 3 {
		t.Fatalf("child summary wrong: %+v", sums[1])
	}
}

func TestEndIdempotent(t *testing.T) {
	tr := NewTrace("test")
	s := Begin(tr, PhaseApply)
	s.End()
	d := s.Duration()
	time.Sleep(time.Millisecond)
	s.End()
	if s.Duration() != d {
		t.Fatal("second End changed the recorded duration")
	}
	if n := tr.OpenSpans(); n != 0 {
		t.Fatalf("open spans = %d, want 0 (double End must not go negative)", n)
	}
}

func TestCloseOpen(t *testing.T) {
	tr := NewTrace("test")
	root := Begin(tr, PhaseGreedyGrow)
	root.Child(PhaseTargetSearch) // deliberately left open (simulated cancel)
	if n := tr.OpenSpans(); n != 2 {
		t.Fatalf("open spans = %d, want 2", n)
	}
	tr.CloseOpen()
	if n := tr.OpenSpans(); n != 0 {
		t.Fatalf("open spans after CloseOpen = %d, want 0", n)
	}
	if len(tr.Summaries()) != 2 {
		t.Fatal("CloseOpen must make abandoned spans exportable")
	}
}

func TestNilSafety(t *testing.T) {
	var tr *Trace
	s := Begin(tr, PhaseDetect)
	if s == nil {
		t.Fatal("Begin on nil trace must return a usable span")
	}
	s.SetFD("x")
	s.Add("n", 1)
	c := s.Child(PhaseApply)
	c.End()
	s.End()
	tr.SetMeta(RunMeta{})
	tr.CloseOpen()
	if tr.OpenSpans() != 0 || tr.Summaries() != nil || tr.Name() != "" {
		t.Fatal("nil trace accessors must be inert")
	}
	var ns *Span
	ns.SetWorker(1)
	ns.Add("k", 1)
	ns.End()
	if ns.Child(PhaseApply) == nil {
		t.Fatal("Child on nil span must return a usable span")
	}
}

func TestDetachedSpanFeedsPhaseHistogram(t *testing.T) {
	h := phaseDurations[PhaseDetect]
	before := h.Count()
	s := Begin(nil, PhaseDetect)
	s.End()
	if got := h.Count() - before; got != 1 {
		t.Fatalf("phase histogram delta = %d, want 1", got)
	}
}

func TestWriteChrome(t *testing.T) {
	tr := NewTrace("unit")
	tr.SetMeta(RunMeta{GoVersion: "go1.x", GOMAXPROCS: 4, Dataset: "hosp"})
	root := Begin(tr, PhaseGraphBuild)
	root.SetFD("A->B")
	root.SetWorker(0)
	root.Add("edges", 12)
	root.End()
	Begin(tr, PhaseApply).End()

	var buf bytes.Buffer
	if err := tr.WriteChrome(&buf); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Name string           `json:"name"`
			Ph   string           `json:"ph"`
			PID  int              `json:"pid"`
			TID  int              `json:"tid"`
			Dur  float64          `json:"dur"`
			Args map[string]int64 `json:"args"`
		} `json:"traceEvents"`
		OtherData map[string]any `json:"otherData"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("chrome export is not valid JSON: %v", err)
	}
	if len(doc.TraceEvents) != 2 {
		t.Fatalf("events = %d, want 2", len(doc.TraceEvents))
	}
	ev := doc.TraceEvents[0]
	if ev.Name != "graphbuild A->B" || ev.Ph != "X" || ev.PID != 1 || ev.TID != 1 {
		t.Fatalf("event wrong: %+v", ev)
	}
	if ev.Args["edges"] != 12 {
		t.Fatalf("args wrong: %+v", ev.Args)
	}
	if doc.OtherData["dataset"] != "hosp" {
		t.Fatalf("otherData wrong: %+v", doc.OtherData)
	}
}

func TestWriteJSON(t *testing.T) {
	tr := NewTrace("unit")
	Begin(tr, PhaseDetect).End()
	var buf bytes.Buffer
	if err := tr.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		Name  string        `json:"name"`
		Meta  RunMeta       `json:"meta"`
		Spans []SpanSummary `json:"spans"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatal(err)
	}
	if doc.Name != "unit" || len(doc.Spans) != 1 || doc.Spans[0].Phase != PhaseDetect {
		t.Fatalf("json export wrong: %+v", doc)
	}
}

func TestCollectMeta(t *testing.T) {
	m := CollectMeta("dataset.csv")
	if m.GoVersion == "" || m.GOMAXPROCS < 1 || m.GOOS == "" || m.Dataset != "dataset.csv" {
		t.Fatalf("meta incomplete: %+v", m)
	}
}
