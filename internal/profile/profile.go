// Package profile computes lightweight column statistics over a relation:
// inferred domain types (so CSV loading doesn't need a hand-written type
// spec), distinct counts, value-length statistics, and candidate keys. The
// repair pipeline uses it to configure distances, and the CLI to infer
// column types.
package profile

import (
	"sort"

	"ftrepair/internal/dataset"
)

// Column is one attribute's profile.
type Column struct {
	Name string
	// Inferred is the domain type inference: Numeric when at least
	// NumericThreshold of the non-empty values parse as numbers.
	Inferred dataset.Type
	// Distinct counts distinct values; Nulls counts empty cells.
	Distinct int
	Nulls    int
	// MinLen/MaxLen/AvgLen are value-length statistics in runes (over
	// non-empty values).
	MinLen, MaxLen int
	AvgLen         float64
	// MaxMult is the largest value multiplicity.
	MaxMult int
	// IsKey reports whether every non-empty value is unique.
	IsKey bool
}

// NumericThreshold is the fraction of parseable values required to infer a
// numeric column.
const NumericThreshold = 0.95

// Columns profiles every attribute of rel.
func Columns(rel *dataset.Relation) []Column {
	n := rel.Schema.Len()
	out := make([]Column, n)
	for c := 0; c < n; c++ {
		out[c] = profileColumn(rel, c)
	}
	return out
}

func profileColumn(rel *dataset.Relation, col int) Column {
	p := Column{Name: rel.Schema.Attr(col).Name, MinLen: -1}
	counts := make(map[string]int)
	numeric := 0
	nonEmpty := 0
	totalLen := 0
	for _, t := range rel.Tuples {
		v := t[col]
		if v == "" {
			p.Nulls++
			continue
		}
		nonEmpty++
		counts[v]++
		l := len([]rune(v))
		totalLen += l
		if p.MinLen < 0 || l < p.MinLen {
			p.MinLen = l
		}
		if l > p.MaxLen {
			p.MaxLen = l
		}
		if _, err := dataset.ParseFloat(v); err == nil {
			numeric++
		}
	}
	p.Distinct = len(counts)
	for _, c := range counts {
		if c > p.MaxMult {
			p.MaxMult = c
		}
	}
	if p.MinLen < 0 {
		p.MinLen = 0
	}
	if nonEmpty > 0 {
		p.AvgLen = float64(totalLen) / float64(nonEmpty)
		if float64(numeric)/float64(nonEmpty) >= NumericThreshold && !identifierShaped(counts) {
			p.Inferred = dataset.Numeric
		}
		p.IsKey = p.MaxMult == 1
	}
	return p
}

// identifierShaped reports whether the values look like fixed-width digit
// identifiers (zip codes, provider numbers, phones): all digits, all the
// same length of at least 4. Such columns parse as numbers but compare
// meaningfully as strings — Euclidean distance between zip codes is
// noise.
func identifierShaped(counts map[string]int) bool {
	width := -1
	for v := range counts {
		if len(v) < 4 {
			return false
		}
		for i := 0; i < len(v); i++ {
			if v[i] < '0' || v[i] > '9' {
				return false
			}
		}
		if width < 0 {
			width = len(v)
		} else if len(v) != width {
			return false
		}
	}
	return width >= 4
}

// InferTypes returns the inferred type per attribute, suitable for
// re-reading a CSV with typed columns.
func InferTypes(rel *dataset.Relation) []dataset.Type {
	cols := Columns(rel)
	out := make([]dataset.Type, len(cols))
	for i, c := range cols {
		out[i] = c.Inferred
	}
	return out
}

// Retype returns a copy of rel whose schema carries the inferred types.
// Cells of a column inferred numeric that do not parse keep their string
// value; the distance layer compares them as strings.
func Retype(rel *dataset.Relation) *dataset.Relation {
	types := InferTypes(rel)
	attrs := make([]dataset.Attribute, rel.Schema.Len())
	changed := false
	for i := range attrs {
		attrs[i] = dataset.Attribute{Name: rel.Schema.Attr(i).Name, Type: types[i]}
		if types[i] != rel.Schema.Attr(i).Type {
			changed = true
		}
	}
	if !changed {
		return rel
	}
	schema := dataset.MustSchema(attrs...)
	out := dataset.NewRelation(schema)
	out.Tuples = make([]dataset.Tuple, len(rel.Tuples))
	for i, t := range rel.Tuples {
		out.Tuples[i] = t.Clone()
	}
	return out
}

// CandidateKeys lists single attributes and attribute pairs whose values
// uniquely identify tuples (no duplicates among non-empty projections),
// smallest first. Pairs are only reported when neither member is a key by
// itself.
func CandidateKeys(rel *dataset.Relation) [][]int {
	n := rel.Schema.Len()
	var keys [][]int
	single := make([]bool, n)
	for c := 0; c < n; c++ {
		if uniqueOn(rel, []int{c}) {
			keys = append(keys, []int{c})
			single[c] = true
		}
	}
	for a := 0; a < n; a++ {
		if single[a] {
			continue
		}
		for b := a + 1; b < n; b++ {
			if single[b] {
				continue
			}
			if uniqueOn(rel, []int{a, b}) {
				keys = append(keys, []int{a, b})
			}
		}
	}
	sort.Slice(keys, func(i, j int) bool {
		if len(keys[i]) != len(keys[j]) {
			return len(keys[i]) < len(keys[j])
		}
		for k := range keys[i] {
			if keys[i][k] != keys[j][k] {
				return keys[i][k] < keys[j][k]
			}
		}
		return false
	})
	return keys
}

func uniqueOn(rel *dataset.Relation, cols []int) bool {
	if rel.Len() == 0 {
		return false
	}
	seen := make(map[string]bool, rel.Len())
	for _, t := range rel.Tuples {
		k := t.Key(cols)
		if seen[k] {
			return false
		}
		seen[k] = true
	}
	return true
}
