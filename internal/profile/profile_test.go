package profile_test

import (
	"reflect"
	"testing"

	"ftrepair/internal/dataset"
	"ftrepair/internal/gen"
	"ftrepair/internal/profile"
)

func fixture(t *testing.T) *dataset.Relation {
	t.Helper()
	rel, err := dataset.FromRows(dataset.Strings("ID", "City", "Score", "Note"), [][]string{
		{"1", "Boston", "85", "fine"},
		{"2", "Boston", "90", ""},
		{"3", "Albany", "77.5", "ok"},
		{"4", "Albany", "n/a", "ok"},
	})
	if err != nil {
		t.Fatal(err)
	}
	return rel
}

func TestColumns(t *testing.T) {
	cols := profile.Columns(fixture(t))
	if len(cols) != 4 {
		t.Fatalf("columns = %d", len(cols))
	}
	id := cols[0]
	if !id.IsKey || id.Distinct != 4 || id.Inferred != dataset.Numeric {
		t.Fatalf("ID profile = %+v", id)
	}
	city := cols[1]
	if city.IsKey || city.Distinct != 2 || city.MaxMult != 2 || city.Inferred != dataset.String {
		t.Fatalf("City profile = %+v", city)
	}
	if city.MinLen != 6 || city.MaxLen != 6 {
		t.Fatalf("City lengths = %+v", city)
	}
	// Score: 3 of 4 parse — below the 0.95 threshold, stays string.
	if cols[2].Inferred != dataset.String {
		t.Fatalf("Score inferred %v despite n/a", cols[2].Inferred)
	}
	note := cols[3]
	if note.Nulls != 1 || note.Distinct != 2 {
		t.Fatalf("Note profile = %+v", note)
	}
}

func TestInferTypesAndRetype(t *testing.T) {
	rel := fixture(t)
	types := profile.InferTypes(rel)
	want := []dataset.Type{dataset.Numeric, dataset.String, dataset.String, dataset.String}
	if !reflect.DeepEqual(types, want) {
		t.Fatalf("InferTypes = %v", types)
	}
	retyped := profile.Retype(rel)
	if retyped.Schema.Attr(0).Type != dataset.Numeric {
		t.Fatal("Retype did not apply the inferred type")
	}
	if retyped == rel {
		t.Fatal("Retype returned the original despite changes")
	}
	// Idempotent when nothing changes.
	again := profile.Retype(retyped)
	if again != retyped {
		t.Fatal("Retype copied without changes")
	}
	// Data preserved.
	cells, err := dataset.Diff(&dataset.Relation{Schema: rel.Schema, Tuples: rel.Tuples}, &dataset.Relation{Schema: rel.Schema, Tuples: retyped.Tuples})
	if err != nil || len(cells) != 0 {
		t.Fatalf("Retype changed data: %v %v", cells, err)
	}
}

func TestCandidateKeys(t *testing.T) {
	rel, err := dataset.FromRows(dataset.Strings("A", "B", "C"), [][]string{
		{"1", "x", "p"},
		{"2", "x", "q"},
		{"3", "y", "p"},
		{"4", "y", "q"},
	})
	if err != nil {
		t.Fatal(err)
	}
	keys := profile.CandidateKeys(rel)
	// A is a key; (B,C) is a composite key; (A,B) etc. not reported since
	// A alone is a key.
	want := [][]int{{0}, {1, 2}}
	if !reflect.DeepEqual(keys, want) {
		t.Fatalf("CandidateKeys = %v, want %v", keys, want)
	}
	empty := dataset.NewRelation(dataset.Strings("A"))
	if got := profile.CandidateKeys(empty); got != nil {
		t.Fatalf("empty relation keys = %v", got)
	}
}

func TestProfileOnWorkload(t *testing.T) {
	rel := gen.HOSP{Seed: 41}.Generate(500)
	cols := profile.Columns(rel)
	byName := map[string]profile.Column{}
	for _, c := range cols {
		byName[c.Name] = c
	}
	if byName["Score"].Inferred != dataset.Numeric || byName["Sample"].Inferred != dataset.Numeric {
		t.Fatal("numeric workload columns not inferred")
	}
	if byName["City"].Inferred != dataset.String {
		t.Fatal("City inferred numeric")
	}
	if byName["Provider"].IsKey {
		t.Fatal("Provider marked key despite repeats")
	}
}

func TestIdentifierShapedStaysString(t *testing.T) {
	rel, err := dataset.FromRows(dataset.Strings("Zip", "Amount"), [][]string{
		{"02134", "12"},
		{"10001", "9.5"},
		{"60601", "140"},
	})
	if err != nil {
		t.Fatal(err)
	}
	types := profile.InferTypes(rel)
	if types[0] != dataset.String {
		t.Fatal("fixed-width digit identifier inferred numeric")
	}
	if types[1] != dataset.Numeric {
		t.Fatal("variable-width amounts not inferred numeric")
	}
}
