package repair

import (
	"fmt"

	"ftrepair/internal/bitset"
	"ftrepair/internal/dataset"
	"ftrepair/internal/fd"
	"ftrepair/internal/targettree"
	"ftrepair/internal/vgraph"
)

// This file exposes the repair-phase hot loops to the benchmark harness
// (internal/eval's RepairBench and the Go benchmarks), which need to time
// the naive and fast paths separately without re-deriving fixtures.

// GrowGreedy runs one Algorithm-2 growth over the graph: the retained
// full-rescan reference when naive is set, the indexed-heap path
// otherwise. Both return the same set on any input; only the time differs.
func GrowGreedy(g *vgraph.Graph, naive bool) []int {
	if naive {
		return greedySetNaive(g, nil)
	}
	return greedySet(g, nil)
}

// GrowGreedyInto is GrowGreedy with a caller-owned result buffer: the
// chosen set is appended to dst[:0] and returned. With a warm buffer the
// heap path performs zero allocations per run — the property the
// alloc-regression gate (TestGreedyGrowthSteadyStateAllocs) asserts. The
// naive path keeps its internal allocations; only the result lands in dst.
func GrowGreedyInto(g *vgraph.Graph, naive bool, dst []int) []int {
	if naive {
		return append(dst[:0], greedySetNaive(g, nil)...)
	}
	return growInto(g, nil, dst)
}

// GrowJoint runs one Algorithm-4 joint growth over the per-FD graphs:
// naive full-rescan reference or indexed-heap path.
func GrowJoint(rel *dataset.Relation, graphs []*vgraph.Graph, naive bool) [][]int {
	if naive {
		return jointGreedySetsNaive(rel, graphs, nil)
	}
	return jointGreedySets(rel, graphs, nil)
}

// PlanBench times repair-plan evaluation — one target-tree build plus a
// nearest-target search per repairing tuple group — over a fixed
// component, at configurable worker counts. Graphs, greedy sets, and
// grouping are prepared once; Run re-evaluates the plan only.
type PlanBench struct {
	p      *planner
	chosen []bitset.Set
	levels []targettree.Level
	// Groups counts the repairing tuple groups each evaluation searches.
	Groups int
	// FDs is the number of FDs in the chosen component.
	FDs int
}

// NewPlanBench prepares a plan evaluation over the largest multi-FD
// component of the set (plan evaluation is only interesting when targets
// join across FDs). It errors when every component is a single FD.
func NewPlanBench(rel *dataset.Relation, set *fd.Set, cfg *fd.DistConfig, disableTree bool) (*PlanBench, error) {
	var comp []int
	for _, c := range set.Components() {
		if len(c) >= 2 && len(c) > len(comp) {
			comp = c
		}
	}
	if comp == nil {
		return nil, fmt.Errorf("repair: no multi-FD component to benchmark plan evaluation on")
	}
	sub := set.Subset(comp)
	graphs := buildGraphs(rel, sub, cfg, Options{})
	sets := make([][]int, len(graphs))
	for i, g := range graphs {
		sets[i] = greedySet(g, nil)
	}
	groups := groupTuples(rel, unionAttrs(sub.FDs))
	b := &PlanBench{
		p:      newPlanner(groups, graphs, cfg, disableTree, nil, 0),
		chosen: chosenBits(graphs, sets),
		levels: levelsFor(graphs, sets),
		FDs:    len(sub.FDs),
	}
	for gi := range groups {
		if b.p.needsRepair(gi, b.chosen) {
			b.Groups++
		}
	}
	return b, nil
}

// Run evaluates the prepared plan once with the given tuple-group worker
// count, returning its total cost and target-tree visit count.
func (b *PlanBench) Run(workers int) (cost float64, visited int, err error) {
	b.p.workers = workers
	_, cost, visited, ok := b.p.costs(b.chosen, b.levels, nil)
	if !ok {
		return cost, visited, fmt.Errorf("repair: plan evaluation failed (empty join?)")
	}
	return cost, visited, nil
}
