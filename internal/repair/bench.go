package repair

import (
	"fmt"

	"ftrepair/internal/dataset"
	"ftrepair/internal/fd"
	"ftrepair/internal/targettree"
	"ftrepair/internal/vgraph"
)

// This file exposes the repair-phase hot loops to the benchmark harness
// (internal/eval's RepairBench and the Go benchmarks), which need to time
// the naive and fast paths separately without re-deriving fixtures.

// GrowGreedy runs one Algorithm-2 growth over the graph: the retained
// full-rescan reference when naive is set, the indexed-heap path
// otherwise. Both return the same set on any input; only the time differs.
func GrowGreedy(g *vgraph.Graph, naive bool) []int {
	if naive {
		return greedySetNaive(g, nil)
	}
	return greedySet(g, nil)
}

// GrowJoint runs one Algorithm-4 joint growth over the per-FD graphs:
// naive full-rescan reference or indexed-heap path.
func GrowJoint(rel *dataset.Relation, graphs []*vgraph.Graph, naive bool) [][]int {
	if naive {
		return jointGreedySetsNaive(rel, graphs, nil)
	}
	return jointGreedySets(rel, graphs, nil)
}

// PlanBench times repair-plan evaluation — one target-tree build plus a
// nearest-target search per repairing tuple group — over a fixed
// component, at configurable worker counts. Graphs, greedy sets, and
// grouping are prepared once; Run re-evaluates the plan only.
type PlanBench struct {
	p      *planner
	keys   []map[string]bool
	levels []targettree.Level
	// Groups counts the repairing tuple groups each evaluation searches.
	Groups int
	// FDs is the number of FDs in the chosen component.
	FDs int
}

// NewPlanBench prepares a plan evaluation over the largest multi-FD
// component of the set (plan evaluation is only interesting when targets
// join across FDs). It errors when every component is a single FD.
func NewPlanBench(rel *dataset.Relation, set *fd.Set, cfg *fd.DistConfig, disableTree bool) (*PlanBench, error) {
	var comp []int
	for _, c := range set.Components() {
		if len(c) >= 2 && len(c) > len(comp) {
			comp = c
		}
	}
	if comp == nil {
		return nil, fmt.Errorf("repair: no multi-FD component to benchmark plan evaluation on")
	}
	sub := set.Subset(comp)
	graphs := buildGraphs(rel, sub, cfg, Options{})
	sets := make([][]int, len(graphs))
	for i, g := range graphs {
		sets[i] = greedySet(g, nil)
	}
	groups := groupTuples(rel, unionAttrs(sub.FDs))
	b := &PlanBench{
		p: &planner{
			groups:      groups,
			graphs:      graphs,
			cfg:         cfg,
			disableTree: disableTree,
		},
		keys:   chosenKeys(graphs, sets),
		levels: levelsFor(graphs, sets),
		FDs:    len(sub.FDs),
	}
	for gi := range groups {
		if needsRepair(groups[gi].rep, graphs, b.keys) {
			b.Groups++
		}
	}
	return b, nil
}

// Run evaluates the prepared plan once with the given tuple-group worker
// count, returning its total cost and target-tree visit count.
func (b *PlanBench) Run(workers int) (cost float64, visited int, err error) {
	b.p.workers = workers
	_, cost, visited, ok := b.p.costs(b.keys, b.levels, nil)
	if !ok {
		return cost, visited, fmt.Errorf("repair: plan evaluation failed (empty join?)")
	}
	return cost, visited, nil
}
