package repair_test

import (
	"fmt"
	"testing"

	"ftrepair/internal/eval"
	"ftrepair/internal/obs"
	"ftrepair/internal/repair"
	"ftrepair/internal/vgraph"
)

// The Go benchmarks cover the repair-phase hot paths for quick local runs
// and the CI -benchtime=1x smoke; the calibrated measurements live in the
// repairbench experiment (BENCH_repair.json).

func greedyBenchGraph(b *testing.B) *vgraph.Graph {
	b.Helper()
	inst, err := eval.Prepare(eval.Setup{Workload: "hosp", N: 1000, FDs: 1, ErrorRate: 0.1, Seed: 7})
	if err != nil {
		b.Fatal(err)
	}
	f, tau := inst.Set.FDs[0], inst.Set.Tau[0]
	return vgraph.Build(inst.Dirty, f, inst.Cfg, tau, vgraph.Options{})
}

func BenchmarkGreedyGrowth(b *testing.B) {
	g := greedyBenchGraph(b)
	for _, mode := range []string{"naive", "heap"} {
		b.Run(mode, func(b *testing.B) {
			// One warm-up run primes the pooled grower and the result buffer,
			// so -benchmem reports the steady state: 0 allocs/op on the heap
			// path (the naive reference allocates per run by design).
			set := repair.GrowGreedyInto(g, mode == "naive", nil)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				set = repair.GrowGreedyInto(g, mode == "naive", set)
			}
		})
	}
}

// TestGreedyGrowthSteadyStateAllocs is the alloc-regression gate the CI
// smoke runs: after one warm-up growth primes the sync.Pool'd grower and
// the caller's result buffer, further heap-path rounds must not allocate
// at all. A nonzero count means per-round scratch leaked out of the pools
// (a closure, a fresh slice, a map) and the zero-alloc property regressed.
func TestGreedyGrowthSteadyStateAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation allocates and drops pool items; counts are meaningless")
	}
	inst, err := eval.Prepare(eval.Setup{Workload: "hosp", N: 1000, FDs: 1, ErrorRate: 0.1, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	f, tau := inst.Set.FDs[0], inst.Set.Tau[0]
	g := vgraph.Build(inst.Dirty, f, inst.Cfg, tau, vgraph.Options{})
	set := repair.GrowGreedyInto(g, false, nil) // warm-up: pools + dst
	allocs := testing.AllocsPerRun(10, func() {
		set = repair.GrowGreedyInto(g, false, set)
	})
	if allocs > 0 {
		t.Fatalf("steady-state greedy growth allocates %.1f allocs/run, want 0", allocs)
	}
	if len(set) == 0 {
		t.Fatal("greedy growth returned an empty set on a violating instance")
	}
}

// BenchmarkObsOverhead guards the observability budget: "instrumented"
// wraps the same greedy growth in exactly the per-run obs work a traced
// repair performs (trace + span + attrs + registry flush) and must stay
// within 2% of the bare loop. The span/flush cost is constant per phase
// while the growth is superlinear in the graph, so headroom grows with N.
func BenchmarkObsOverhead(b *testing.B) {
	g := greedyBenchGraph(b)
	b.Run("noop", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			repair.GrowGreedy(g, false)
		}
	})
	b.Run("instrumented", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			tr := obs.NewTrace("bench")
			sp := obs.Begin(tr, obs.PhaseGreedyGrow)
			set := repair.GrowGreedy(g, false)
			sp.Add("setSize", int64(len(set)))
			sp.End()
			obs.FlushRunStats(map[string]int{"setSize": len(set)})
		}
	})
}

func BenchmarkJointGrowth(b *testing.B) {
	inst, err := eval.Prepare(eval.Setup{Workload: "hosp", N: 600, FDs: 2, ErrorRate: 0.1, Seed: 7})
	if err != nil {
		b.Fatal(err)
	}
	graphs := make([]*vgraph.Graph, len(inst.Set.FDs))
	for i, f := range inst.Set.FDs {
		graphs[i] = vgraph.Build(inst.Dirty, f, inst.Cfg, inst.Set.Tau[i], vgraph.Options{})
	}
	for _, mode := range []string{"naive", "heap"} {
		b.Run(mode, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				repair.GrowJoint(inst.Dirty, graphs, mode == "naive")
			}
		})
	}
}

func BenchmarkExactCombos(b *testing.B) {
	inst, err := eval.Prepare(eval.Setup{Workload: "hosp", N: 120, FDs: 3, ErrorRate: 0.05, Seed: 7})
	if err != nil {
		b.Fatal(err)
	}
	for _, workers := range []int{1, 2} {
		b.Run(fmt.Sprintf("w%d", workers), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := repair.ExactM(inst.Dirty, inst.Set, inst.Cfg,
					repair.Options{Parallel: workers}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkPlanCosts(b *testing.B) {
	inst, err := eval.Prepare(eval.Setup{Workload: "hosp", N: 1000, ErrorRate: 0.04, Seed: 7})
	if err != nil {
		b.Fatal(err)
	}
	pb, err := repair.NewPlanBench(inst.Dirty, inst.Set, inst.Cfg, false)
	if err != nil {
		b.Fatal(err)
	}
	for _, workers := range []int{1, 2} {
		b.Run(fmt.Sprintf("w%d", workers), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, _, err := pb.Run(workers); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
