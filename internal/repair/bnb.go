package repair

import (
	"math"
	"sync"
	"sync/atomic"

	"ftrepair/internal/bitset"
	"ftrepair/internal/targettree"
	"ftrepair/internal/vgraph"
)

// This file implements ExactM's parallel branch-and-bound over the
// Cartesian product of per-FD maximal-independent-set families. Workers
// claim combination indices from an atomic counter, decode them
// mixed-radix into per-FD family members (levels and chosen-member bitsets
// are memoized per family member, so combinations sharing a set reuse its
// targettree.Build input), evaluate the joined plan, and prune against a
// shared incumbent watermark. The result is deterministic at any worker
// count: the winner is the lexicographic minimum of (exact cost,
// combination index), and a plan at least as cheap as the final incumbent
// can never be pruned (its group-ordered prefix costs are bounded by its
// total, which never exceeds the incumbent).

// watermark shares the branch-and-bound incumbent between workers. cost
// is a lock-free read used for pruning; offer installs a strictly cheaper
// plan, or an equal-cost plan with a lower combination index, so the
// surviving winner does not depend on scheduling.
type watermark struct {
	bits    atomic.Uint64 // math.Float64bits of the incumbent cost
	updates atomic.Int64  // accepted offers (incumbent improvements)
	mu      sync.Mutex
	idx     int
	targets []*targettree.Target
	has     bool
}

func newWatermark() *watermark {
	w := &watermark{}
	w.bits.Store(math.Float64bits(math.Inf(1)))
	return w
}

// cost returns the current incumbent cost (+Inf before the first offer).
func (w *watermark) cost() float64 { return math.Float64frombits(w.bits.Load()) }

// offer proposes a fully evaluated plan. The incumbent is replaced when
// the candidate is cheaper, or costs exactly the same with a lower
// combination index (the deterministic tie-break; sequential evaluation
// kept the first — lowest — index, and this reproduces that at any worker
// count).
func (w *watermark) offer(cost float64, idx int, targets []*targettree.Target) {
	w.mu.Lock()
	defer w.mu.Unlock()
	cur := math.Float64frombits(w.bits.Load())
	if cost > cur {
		return
	}
	if cost < cur || idx < w.idx || !w.has {
		w.idx = idx
		w.targets = targets
		w.has = true
		w.bits.Store(math.Float64bits(cost))
		w.updates.Add(1)
	}
}

// searchCombos runs the branch-and-bound over all combos combinations of
// family members (families[i] holds FD i's enumerated maximal independent
// sets). Combination index idx decodes mixed-radix with the last FD
// varying fastest — the same order the sequential loop used. It returns
// the winning plan's targets (nil when no combination joins into targets),
// the total target-tree visit count, the number of incumbent-watermark
// updates, and ErrCanceled if the search was cut short. The update count
// is observability only — it depends on worker scheduling (how offers
// interleave), unlike the winning plan, which is deterministic.
func searchCombos(groups []tupleGroup, graphs []*vgraph.Graph, families [][][]int, combos int, opts Options, p *planner) (bestTargets []*targettree.Target, visited, updates int, err error) {
	n := len(families)
	levelCache := make([][]targettree.Level, n)
	memberCache := make([][]bitset.Set, n)
	for i, fam := range families {
		levelCache[i] = make([]targettree.Level, len(fam))
		memberCache[i] = make([]bitset.Set, len(fam))
		for j, set := range fam {
			levelCache[i][j] = levelFor(graphs[i], set)
			memberCache[i][j] = memberBits(graphs[i], set)
		}
	}
	workers := opts.Parallel
	if workers < 2 {
		workers = 1
	}
	if workers > combos {
		workers = combos
	}
	w := newWatermark()
	var visitedTotal atomic.Int64
	var next atomic.Int64
	run := func() error {
		levels := make([]targettree.Level, n)
		chosen := make([]bitset.Set, n)
		for {
			idx := int(next.Add(1) - 1)
			if idx >= combos {
				return nil
			}
			if canceled(opts.Cancel) {
				return ErrCanceled
			}
			rem := idx
			for i := n - 1; i >= 0; i-- {
				j := rem % len(families[i])
				rem /= len(families[i])
				levels[i] = levelCache[i][j]
				chosen[i] = memberCache[i][j]
			}
			targets, cost, v, ok := p.costs(chosen, levels, w.cost)
			visitedTotal.Add(int64(v))
			if ok {
				w.offer(cost, idx, targets)
			}
		}
	}
	if workers == 1 {
		err = run()
	} else {
		errs := make(chan error, workers)
		for k := 0; k < workers; k++ {
			go func() { errs <- run() }()
		}
		for k := 0; k < workers; k++ {
			if e := <-errs; e != nil && err == nil {
				err = e
			}
		}
	}
	if err != nil {
		return nil, int(visitedTotal.Load()), int(w.updates.Load()), err
	}
	return w.targets, int(visitedTotal.Load()), int(w.updates.Load()), nil
}
