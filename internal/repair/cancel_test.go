package repair

import (
	"errors"
	"fmt"
	"testing"
	"time"

	"ftrepair/internal/dataset"
	"ftrepair/internal/fd"
)

// pathInstance builds a relation whose violation graph under A -> B is a
// path of n pattern vertices: A is numeric 0..n-1 with tau placed so only
// consecutive values FT-violate. The expansion search over a path frontier
// grows exponentially, making the instance arbitrarily slow for ExactS
// while trivial for the greedy algorithms.
func pathInstance(t testing.TB, n int) (*dataset.Relation, *fd.Set, *fd.DistConfig) {
	t.Helper()
	schema := dataset.MustSchema(
		dataset.Attribute{Name: "A", Type: dataset.Numeric},
		dataset.Attribute{Name: "B", Type: dataset.String},
	)
	rel := dataset.NewRelation(schema)
	for i := 0; i < n; i++ {
		if err := rel.Append(dataset.Tuple{fmt.Sprintf("%d", i), "x"}); err != nil {
			t.Fatal(err)
		}
	}
	f, err := fd.New(schema, "", []string{"A"}, []string{"B"})
	if err != nil {
		t.Fatal(err)
	}
	cfg, err := fd.NewDistConfig(rel, 0.5, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	set, err := fd.NewSet([]*fd.FD{f}, 0.75/float64(n-1))
	if err != nil {
		t.Fatal(err)
	}
	return rel, set, cfg
}

func TestExactSCancel(t *testing.T) {
	rel, set, cfg := pathInstance(t, 200)
	cancel := make(chan struct{})
	type outcome struct {
		res *Result
		err error
	}
	done := make(chan outcome, 1)
	go func() {
		res, err := ExactS(rel, set.FDs[0], cfg, set.Tau[0], Options{Cancel: cancel})
		done <- outcome{res, err}
	}()
	time.Sleep(50 * time.Millisecond)
	close(cancel)
	select {
	case o := <-done:
		if !errors.Is(o.err, ErrCanceled) {
			t.Fatalf("err = %v, want ErrCanceled", o.err)
		}
		if o.res == nil || o.res.Repaired == nil {
			t.Fatal("canceled ExactS returned no partial result")
		}
		if o.res.Repaired.Len() != rel.Len() {
			t.Fatalf("partial result has %d tuples, want %d", o.res.Repaired.Len(), rel.Len())
		}
	case <-time.After(2 * time.Second):
		t.Fatal("ExactS did not return within 2s of cancellation")
	}
}

func TestExactSPreCanceled(t *testing.T) {
	rel, set, cfg := pathInstance(t, 50)
	cancel := make(chan struct{})
	close(cancel)
	_, err := ExactS(rel, set.FDs[0], cfg, set.Tau[0], Options{Cancel: cancel})
	if !errors.Is(err, ErrCanceled) {
		t.Fatalf("err = %v, want ErrCanceled", err)
	}
}

func TestMultiAlgorithmsPreCanceled(t *testing.T) {
	rel, set, cfg := pathInstance(t, 60)
	cancel := make(chan struct{})
	close(cancel)
	for name, run := range map[string]func() (*Result, error){
		"GreedyM": func() (*Result, error) { return GreedyM(rel, set, cfg, Options{Cancel: cancel}) },
		"ApproM":  func() (*Result, error) { return ApproM(rel, set, cfg, Options{Cancel: cancel}) },
		"ExactM":  func() (*Result, error) { return ExactM(rel, set, cfg, Options{Cancel: cancel}) },
		"GreedyS": func() (*Result, error) {
			return GreedyS(rel, set.FDs[0], cfg, set.Tau[0], Options{Cancel: cancel})
		},
	} {
		res, err := run()
		if !errors.Is(err, ErrCanceled) {
			t.Errorf("%s: err = %v, want ErrCanceled", name, err)
			continue
		}
		if res == nil || res.Repaired == nil {
			t.Errorf("%s: canceled run returned no partial result", name)
			continue
		}
		// A pre-canceled run must not have modified anything.
		if diff, _ := dataset.Diff(rel, res.Repaired); len(diff) != 0 {
			t.Errorf("%s: pre-canceled partial result changed %d cells", name, len(diff))
		}
	}
}

func TestNilCancelUnaffected(t *testing.T) {
	rel, set, cfg := pathInstance(t, 30)
	res, err := GreedyM(rel, set, cfg, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := VerifyFTConsistent(res.Repaired, set, cfg); err != nil {
		t.Fatalf("repair not FT-consistent: %v", err)
	}
}
