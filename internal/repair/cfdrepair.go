package repair

import (
	"errors"
	"fmt"
	"time"

	"ftrepair/internal/dataset"
	"ftrepair/internal/fd"
)

// CFDSet pairs conditional functional dependencies with FT thresholds.
type CFDSet struct {
	CFDs []*fd.CFD
	Tau  []float64
}

// NewCFDSet validates and pairs CFDs with thresholds (one broadcast to all,
// or one per CFD).
func NewCFDSet(cfds []*fd.CFD, taus ...float64) (*CFDSet, error) {
	if len(cfds) == 0 {
		return nil, fmt.Errorf("repair: empty CFD set")
	}
	s := &CFDSet{CFDs: cfds}
	switch len(taus) {
	case 1:
		s.Tau = make([]float64, len(cfds))
		for i := range s.Tau {
			s.Tau[i] = taus[0]
		}
	case len(cfds):
		s.Tau = append([]float64(nil), taus...)
	default:
		return nil, fmt.Errorf("repair: %d thresholds for %d CFDs", len(taus), len(cfds))
	}
	return s, nil
}

// allWildcard reports whether the CFD is a plain FD (every tableau row all
// wildcards).
func allWildcard(c *fd.CFD) bool {
	for _, row := range c.Tableau {
		for _, v := range row.LHS {
			if v != fd.Wildcard {
				return false
			}
		}
		for _, v := range row.RHS {
			if v != fd.Wildcard {
				return false
			}
		}
	}
	return true
}

// RepairCFDSet repairs rel against a set of CFDs. Plain-FD constraints
// (all-wildcard tableaux) are repaired jointly with the multi-FD greedy
// algorithm; conditional constraints are then applied in rounds — constant
// right-hand sides first (deterministic rule repairs), then the restricted
// FT repair of each CFD's matching tuples — until a fixpoint or the round
// budget. It returns the repaired relation and accounting.
func RepairCFDSet(rel *dataset.Relation, s *CFDSet, cfg *fd.DistConfig, opts Options) (*Result, error) {
	start := time.Now()
	snap := snapCacheStats(cfg)
	stats := make(map[string]int)
	// CFD repairs are not ledgered: the nested GreedyS runs operate on
	// restricted sub-relations whose row numbering does not match rel, and
	// the fixpoint rounds overwrite cells repeatedly outside any single
	// apply site. Strip the sink so nested runs cannot commit misaddressed
	// events; the ledger covers the five core algorithms and the
	// incremental engine.
	opts.Ledger = nil
	// done stamps the distance-cache deltas for the whole CFD run (the
	// nested GreedyM/GreedyS results carry only their own slices).
	done := func() { addCacheStats(stats, cfg, snap) }

	var plainFDs []*fd.FD
	var plainTaus []float64
	var conditional []*fd.CFD
	var condTaus []float64
	for i, c := range s.CFDs {
		if allWildcard(c) {
			plainFDs = append(plainFDs, c.Embedded)
			plainTaus = append(plainTaus, s.Tau[i])
		} else {
			conditional = append(conditional, c)
			condTaus = append(condTaus, s.Tau[i])
		}
	}

	out := rel.Clone()
	if len(plainFDs) > 0 {
		fdSet, err := fd.NewSet(plainFDs, plainTaus...)
		if err != nil {
			return nil, err
		}
		res, err := GreedyM(out, fdSet, cfg, opts)
		if err != nil && !errors.Is(err, ErrCanceled) {
			return nil, err
		}
		out = res.Repaired
		stats["plainFDRepairs"] = len(res.Changed)
		if err != nil {
			done()
			return finishCanceled(rel, out, cfg, "CFDSet", time.Since(start), stats)
		}
	}

	const maxRounds = 4
	for round := 0; round < maxRounds && len(conditional) > 0; round++ {
		changed := 0
		// Constant-RHS rule repairs: a tuple matching a row's LHS pattern
		// but disagreeing with an RHS constant takes the constant.
		for _, c := range conditional {
			changed += applyConstantRows(out, c)
		}
		// Variable-RHS conditional repairs: restrict and run the greedy
		// single-FD repair on the matching sub-relation.
		for i, c := range conditional {
			if canceled(opts.Cancel) {
				done()
				return finishCanceled(rel, out, cfg, "CFDSet", time.Since(start), stats)
			}
			sub, rows := c.Restrict(out)
			if sub.Len() < 2 {
				continue
			}
			res, err := GreedyS(sub, c.Embedded, cfg, condTaus[i], opts)
			if err != nil && !errors.Is(err, ErrCanceled) {
				return nil, err
			}
			for j, row := range rows {
				for _, col := range c.Embedded.Attrs() {
					if out.Tuples[row][col] != res.Repaired.Tuples[j][col] {
						out.Tuples[row][col] = res.Repaired.Tuples[j][col]
						changed++
					}
				}
			}
			if err != nil {
				done()
				return finishCanceled(rel, out, cfg, "CFDSet", time.Since(start), stats)
			}
		}
		stats["cfdRounds"]++
		if changed == 0 {
			break
		}
	}
	done()
	return finish(rel, out, cfg, "CFDSet", time.Since(start), stats, nil, nil)
}

// finishCanceled packages the work done so far as a partial result paired
// with ErrCanceled, matching the partial-on-cancel contract of GreedyS and
// GreedyM.
func finishCanceled(rel, out *dataset.Relation, cfg *fd.DistConfig, name string, elapsed time.Duration, stats map[string]int) (*Result, error) {
	res, err := finish(rel, out, cfg, name, elapsed, stats, nil, nil)
	if err != nil {
		return nil, err
	}
	return res, ErrCanceled
}

// applyConstantRows enforces constant RHS patterns and returns the number
// of cells changed.
func applyConstantRows(out *dataset.Relation, c *fd.CFD) int {
	changed := 0
	for _, t := range out.Tuples {
		row := c.MatchRow(t)
		if row < 0 {
			continue
		}
		pat := c.Tableau[row]
		for i, col := range c.Embedded.RHS {
			if pat.RHS[i] != fd.Wildcard && t[col] != pat.RHS[i] {
				t[col] = pat.RHS[i]
				changed++
			}
		}
	}
	return changed
}

// VerifyCFDs checks classic CFD satisfaction (pairwise and single-tuple) of
// rel, returning the first violation found.
func VerifyCFDs(rel *dataset.Relation, cfds []*fd.CFD) error {
	for _, c := range cfds {
		for i, t := range rel.Tuples {
			if c.SingleViolates(t) {
				return fmt.Errorf("repair: tuple %d violates constant pattern of %s", i, c.Embedded)
			}
		}
		// Pairwise: group matching tuples by LHS.
		byLHS := make(map[string]dataset.Tuple)
		for i, t := range rel.Tuples {
			if c.MatchRow(t) < 0 {
				continue
			}
			k := t.Key(c.Embedded.LHS)
			if prev, ok := byLHS[k]; ok {
				if c.Violates(prev, t) {
					return fmt.Errorf("repair: tuples violate %s on LHS %v (tuple %d)", c.Embedded, t.Project(c.Embedded.LHS), i)
				}
				continue
			}
			byLHS[k] = t
		}
	}
	return nil
}
