package repair_test

import (
	"testing"

	"ftrepair/internal/dataset"
	"ftrepair/internal/fd"
	"ftrepair/internal/repair"
)

func TestNewCFDSetValidation(t *testing.T) {
	schema := dataset.Strings("A", "B")
	c, err := fd.ParseCFD(schema, "A->B")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := repair.NewCFDSet(nil, 0.3); err == nil {
		t.Fatal("empty set accepted")
	}
	if _, err := repair.NewCFDSet([]*fd.CFD{c}, 0.1, 0.2); err == nil {
		t.Fatal("mismatched thresholds accepted")
	}
	s, err := repair.NewCFDSet([]*fd.CFD{c, c}, 0.3)
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Tau) != 2 || s.Tau[1] != 0.3 {
		t.Fatalf("broadcast taus = %v", s.Tau)
	}
}

func TestRepairCFDSetMixed(t *testing.T) {
	schema := dataset.Strings("City", "AC", "State")
	// The (Boston,617,MA) pattern needs enough witnesses that absorbing it
	// into the typo spelling is more expensive than repairing the RI
	// conflict — the cost model trades the two by multiplicity.
	rel, err := dataset.FromRows(schema, [][]string{
		{"NYC", "212", "NY"},
		{"NYC", "212", "NY"},
		{"NYC", "212", "CA"}, // violates the constant row NYC -> NY
		{"Boston", "617", "MA"},
		{"Boston", "617", "MA"},
		{"Boston", "617", "MA"},
		{"Boston", "617", "MA"},
		{"Boston", "617", "MA"},
		{"Boston", "617", "MA"},
		{"Boston", "617", "MA"},
		{"Boston", "617", "RI"}, // plain-FD violation: same city+AC, diff state
		{"Bostom", "617", "MA"}, // typo caught by the FT semantics
	})
	if err != nil {
		t.Fatal(err)
	}
	constant, err := fd.ParseCFD(schema, "City -> State | NYC, NY")
	if err != nil {
		t.Fatal(err)
	}
	plain, err := fd.ParseCFD(schema, "City, AC -> State")
	if err != nil {
		t.Fatal(err)
	}
	s, err := repair.NewCFDSet([]*fd.CFD{constant, plain}, 0.3)
	if err != nil {
		t.Fatal(err)
	}
	cfg, err := fd.NewDistConfig(rel, 0.7, 0.3)
	if err != nil {
		t.Fatal(err)
	}
	res, err := repair.RepairCFDSet(rel, s, cfg, repair.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Repaired.Tuples[2][2] != "NY" {
		t.Errorf("constant row not enforced: %v", res.Repaired.Tuples[2])
	}
	if res.Repaired.Tuples[10][2] != "MA" {
		t.Errorf("plain-FD violation unrepaired: %v", res.Repaired.Tuples[10])
	}
	if res.Repaired.Tuples[11][0] != "Boston" {
		t.Errorf("typo unrepaired: %v", res.Repaired.Tuples[11])
	}
	if err := repair.VerifyCFDs(res.Repaired, s.CFDs); err != nil {
		t.Fatal(err)
	}
	if res.Algorithm != "CFDSet" || len(res.Changed) == 0 {
		t.Fatalf("result metadata: %+v", res.Algorithm)
	}
	// Input untouched.
	if rel.Tuples[2][2] != "CA" {
		t.Fatal("input mutated")
	}
}

func TestRepairCFDSetConditionalOnly(t *testing.T) {
	schema := dataset.Strings("Plan", "Tier")
	rel, err := dataset.FromRows(schema, [][]string{
		{"gold", "3"}, {"gold", "3"}, {"gold", "2"},
		{"free", "0"}, {"free", "9"}, // unconstrained by the gold-only CFD
	})
	if err != nil {
		t.Fatal(err)
	}
	c, err := fd.ParseCFD(schema, "Plan -> Tier | gold, _")
	if err != nil {
		t.Fatal(err)
	}
	s, err := repair.NewCFDSet([]*fd.CFD{c}, 0.3)
	if err != nil {
		t.Fatal(err)
	}
	cfg, err := fd.NewDistConfig(rel, 0.7, 0.3)
	if err != nil {
		t.Fatal(err)
	}
	res, err := repair.RepairCFDSet(rel, s, cfg, repair.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Repaired.Tuples[2][1] != "3" {
		t.Errorf("gold conflict unrepaired: %v", res.Repaired.Tuples[2])
	}
	if res.Repaired.Tuples[4][1] != "9" {
		t.Errorf("free tuple modified: %v", res.Repaired.Tuples[4])
	}
	if err := repair.VerifyCFDs(res.Repaired, s.CFDs); err != nil {
		t.Fatal(err)
	}
}

func TestVerifyCFDsDetects(t *testing.T) {
	schema := dataset.Strings("A", "B")
	rel, _ := dataset.FromRows(schema, [][]string{{"x", "1"}, {"x", "2"}})
	c, err := fd.ParseCFD(schema, "A->B")
	if err != nil {
		t.Fatal(err)
	}
	if err := repair.VerifyCFDs(rel, []*fd.CFD{c}); err == nil {
		t.Fatal("pairwise violation missed")
	}
	cc, err := fd.ParseCFD(schema, "A -> B | x, 9")
	if err != nil {
		t.Fatal(err)
	}
	if err := repair.VerifyCFDs(rel, []*fd.CFD{cc}); err == nil {
		t.Fatal("single-tuple violation missed")
	}
	ok, _ := dataset.FromRows(schema, [][]string{{"x", "1"}, {"x", "1"}})
	if err := repair.VerifyCFDs(ok, []*fd.CFD{c}); err != nil {
		t.Fatal(err)
	}
}

func TestDetectCFDs(t *testing.T) {
	schema := dataset.Strings("City", "State")
	rel, err := dataset.FromRows(schema, [][]string{
		{"NYC", "NY"},
		{"NYC", "CA"}, // constant-row violation AND pairwise with row 0
		{"Boston", "MA"},
		{"Boston", "RI"}, // pairwise only (wildcard CFD)
	})
	if err != nil {
		t.Fatal(err)
	}
	constant, err := fd.ParseCFD(schema, "City -> State | NYC, NY")
	if err != nil {
		t.Fatal(err)
	}
	wildcard, err := fd.ParseCFD(schema, "City -> State")
	if err != nil {
		t.Fatal(err)
	}
	got := repair.DetectCFDs(rel, []*fd.CFD{constant, wildcard})
	singles, pairs := 0, 0
	for _, v := range got {
		switch len(v.Rows) {
		case 1:
			singles++
			if v.Rows[0] != 1 {
				t.Fatalf("constant violation at row %d", v.Rows[0])
			}
		case 2:
			pairs++
		}
	}
	// One constant violation (row 1); pairwise: constant CFD (0,1) and
	// wildcard CFD (0,1) + (2,3).
	if singles != 1 || pairs != 3 {
		t.Fatalf("singles=%d pairs=%d: %+v", singles, pairs, got)
	}
	// Sorted: singles first.
	if len(got[0].Rows) != 1 {
		t.Fatalf("ordering: %+v", got)
	}
	// Clean relation: nothing.
	ok, _ := dataset.FromRows(schema, [][]string{{"NYC", "NY"}, {"Boston", "MA"}})
	if vs := repair.DetectCFDs(ok, []*fd.CFD{constant, wildcard}); len(vs) != 0 {
		t.Fatalf("clean relation produced %v", vs)
	}
}
