package repair_test

import (
	"testing"

	"ftrepair/internal/dataset"
	"ftrepair/internal/fd"
	"ftrepair/internal/repair"
)

// TestConfidenceSteersRepairDirection: with two FDs sharing attribute A, a
// conflicted tuple can repair either by restoring A or by changing B and C.
// Attribute confidences tip the choice.
func TestConfidenceSteersRepairDirection(t *testing.T) {
	schema := dataset.Strings("A", "B", "C")
	rows := [][]string{
		{"karla", "blue", "cold"},
		{"karla", "blue", "cold"},
		{"marta", "gold", "warm"},
		{"marta", "gold", "warm"},
		{"marla", "blue", "cold"}, // conflicted: A one edit from both legit keys
	}
	rel, err := dataset.FromRows(schema, rows)
	if err != nil {
		t.Fatal(err)
	}
	set, err := fd.NewSet([]*fd.FD{
		fd.MustParse(schema, "A->B"),
		fd.MustParse(schema, "A->C"),
	}, 0.3)
	if err != nil {
		t.Fatal(err)
	}
	run := func(confA float64) *repair.Result {
		cfg, err := fd.NewDistConfig(rel, 0.7, 0.3)
		if err != nil {
			t.Fatal(err)
		}
		if confA != 1 {
			cfg.SetConfidence(schema.MustIndex("A"), confA)
		}
		res, err := repair.GreedyM(rel, set, cfg, repair.Options{})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	// With trusted A (expensive to touch), the repair keeps "marla"... but
	// FT-consistency forces the A-conflict away regardless, so instead
	// compare the chosen target direction: cheap A means the last tuple's
	// key restores to "karla" (1 edit); expensive A pushes the repair the
	// other way only if a valid alternative exists. At minimum, lowering
	// A's confidence must not increase the number of non-A cells changed.
	cheap := run(0.05)
	baseline := run(1)
	countNonA := func(res *repair.Result) int {
		n := 0
		for _, c := range res.Changed {
			if c.Col != schema.MustIndex("A") {
				n++
			}
		}
		return n
	}
	if countNonA(cheap) > countNonA(baseline) {
		t.Fatalf("cheap A changed more non-A cells (%d) than baseline (%d)", countNonA(cheap), countNonA(baseline))
	}
	// With cheap A, the conflicted tuple repairs by fixing A only.
	foundA := false
	for _, c := range cheap.Changed {
		if c.Row == 4 && c.Col == schema.MustIndex("A") {
			foundA = true
		}
	}
	if !foundA {
		t.Fatalf("cheap-A repair did not touch A: %v", cheap.Changed)
	}
	if err := repair.VerifyFTConsistent(cheap.Repaired, set, cfg(t, rel)); err != nil {
		t.Fatal(err)
	}
}

func cfg(t *testing.T, rel *dataset.Relation) *fd.DistConfig {
	t.Helper()
	c, err := fd.NewDistConfig(rel, 0.7, 0.3)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestSetConfidenceValidation(t *testing.T) {
	rel, _ := dataset.FromRows(dataset.Strings("A"), [][]string{{"x"}})
	c := fd.DefaultDistConfig(rel)
	defer func() {
		if recover() == nil {
			t.Fatal("non-positive confidence accepted")
		}
	}()
	c.SetConfidence(0, 0)
}

func TestRepairDistScaling(t *testing.T) {
	rel, _ := dataset.FromRows(dataset.Strings("A", "B"), [][]string{{"ab", "cd"}})
	c := fd.DefaultDistConfig(rel)
	base := c.RepairDist(0, "ab", "ax")
	c.SetConfidence(0, 3)
	if got := c.RepairDist(0, "ab", "ax"); got != 3*base {
		t.Fatalf("RepairDist = %v, want %v", got, 3*base)
	}
	// Other columns unaffected; detection distance unaffected.
	if c.RepairDist(1, "cd", "cx") != c.AttrDist(1, "cd", "cx") {
		t.Fatal("unconfigured column scaled")
	}
	if c.AttrDist(0, "ab", "ax") != base {
		t.Fatal("detection distance scaled by confidence")
	}
}
