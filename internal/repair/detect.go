package repair

import (
	"sort"

	"ftrepair/internal/dataset"
	"ftrepair/internal/fd"
	"ftrepair/internal/obs"
)

// Violation describes one fault-tolerant violation: a pair of distinct
// patterns of one FD within the FT threshold, with the tuples carrying each
// side. This is the error-detection half of the paper's pipeline (§1),
// exposed independently of repairing.
type Violation struct {
	// FD is the violated dependency; Tau the threshold it was detected at.
	FD  *fd.FD
	Tau float64
	// Left and Right are the two conflicting patterns, projected onto the
	// FD's attributes (X then Y).
	Left, Right []string
	// LeftRows and RightRows are the indices of the tuples carrying each
	// pattern.
	LeftRows, RightRows []int
	// Dist is the weighted Eq-2 distance that put the pair inside the
	// threshold; Weight the unweighted Eq-3 repair cost between the
	// patterns.
	Dist, Weight float64
	// Classic marks pairs that are also violations under the traditional
	// equality semantics (equal on X, different on Y).
	Classic bool
}

// CFDViolation describes one classic CFD violation: either a single tuple
// disagreeing with a constant pattern, or a pair of pattern-matching tuples
// agreeing on X and differing on Y.
type CFDViolation struct {
	CFD *fd.CFD
	// Rows carries one index for constant-row violations and two for
	// pairwise violations.
	Rows []int
}

// DetectCFDs lists the classic violations of a set of conditional
// functional dependencies: constant-row violations first, then pairwise
// conflicts grouped by left-hand side.
func DetectCFDs(rel *dataset.Relation, cfds []*fd.CFD) []CFDViolation {
	var out []CFDViolation
	for _, c := range cfds {
		for i, t := range rel.Tuples {
			if c.SingleViolates(t) {
				out = append(out, CFDViolation{CFD: c, Rows: []int{i}})
			}
		}
		byLHS := make(map[string][]int)
		for i, t := range rel.Tuples {
			if c.MatchRow(t) < 0 {
				continue
			}
			byLHS[t.Key(c.Embedded.LHS)] = append(byLHS[t.Key(c.Embedded.LHS)], i)
		}
		for _, rows := range byLHS {
			for a := 0; a < len(rows); a++ {
				for b := a + 1; b < len(rows); b++ {
					if c.Violates(rel.Tuples[rows[a]], rel.Tuples[rows[b]]) {
						out = append(out, CFDViolation{CFD: c, Rows: []int{rows[a], rows[b]}})
					}
				}
			}
		}
	}
	sort.SliceStable(out, func(i, j int) bool {
		if len(out[i].Rows) != len(out[j].Rows) {
			return len(out[i].Rows) < len(out[j].Rows)
		}
		return out[i].Rows[0] < out[j].Rows[0]
	})
	return out
}

// Detect lists every FT-violation of rel w.r.t. the constraint set, sorted
// by FD order, then ascending distance (most-similar — most typo-like —
// pairs first), then by first left row for determinism. The per-FD graphs
// are independent, so they build concurrently, and each violation's Dist is
// the distance the graph builder already evaluated (Edge.D) rather than a
// recomputation.
func Detect(rel *dataset.Relation, set *fd.Set, cfg *fd.DistConfig, opts Options) []Violation {
	sp := obs.Begin(opts.Trace, obs.PhaseDetect)
	defer sp.End()
	var out []Violation
	defer func() { sp.Add("violations", int64(len(out))) }()
	graphs := buildGraphs(rel, set, cfg, opts)
	for i, f := range set.FDs {
		g := graphs[i]
		attrs := f.Attrs()
		start := len(out)
		for u := range g.Vertices {
			for _, e := range g.Neighbors(u) {
				if e.To <= u {
					continue
				}
				left, right := g.Vertices[u], g.Vertices[e.To]
				out = append(out, Violation{
					FD:        f,
					Tau:       set.Tau[i],
					Left:      left.Rep.Project(attrs),
					Right:     right.Rep.Project(attrs),
					LeftRows:  append([]int(nil), left.Rows...),
					RightRows: append([]int(nil), right.Rows...),
					Dist:      e.D,
					Weight:    e.W,
					Classic:   f.Violates(left.Rep, right.Rep),
				})
			}
		}
		chunk := out[start:]
		sort.Slice(chunk, func(a, b int) bool {
			if !fd.FloatEq(chunk[a].Dist, chunk[b].Dist) {
				return chunk[a].Dist < chunk[b].Dist
			}
			return chunk[a].LeftRows[0] < chunk[b].LeftRows[0]
		})
	}
	return out
}
