package repair_test

import (
	"testing"

	"ftrepair/internal/fd"
	"ftrepair/internal/gen"
	"ftrepair/internal/repair"
)

func TestDetectCitizensPhi2(t *testing.T) {
	dirty, _ := gen.Citizens()
	fds := gen.CitizensFDs(dirty.Schema)
	set, err := fd.NewSet(fds[1:2], 0.5) // phi2: City -> State
	if err != nil {
		t.Fatal(err)
	}
	cfg := fd.DefaultDistConfig(dirty)
	violations := repair.Detect(dirty, set, cfg, repair.Options{})
	if len(violations) == 0 {
		t.Fatal("no violations detected")
	}
	// The typo pair (Boton,MA)-(Boston,MA) must be detected — the paper's
	// Example 3 — and as a non-classic (similarity-only) violation.
	foundTypo := false
	foundClassic := false
	for _, v := range violations {
		if (v.Left[0] == "Boton" && v.Right[0] == "Boston") || (v.Left[0] == "Boston" && v.Right[0] == "Boton") {
			if v.Left[1] == "MA" && v.Right[1] == "MA" {
				foundTypo = true
				if v.Classic {
					t.Error("typo pair flagged as classic violation")
				}
			}
		}
		if v.Classic {
			foundClassic = true
			if v.Left[0] != v.Right[0] {
				t.Errorf("classic violation with different LHS: %v vs %v", v.Left, v.Right)
			}
		}
		if v.Dist > v.Tau {
			t.Errorf("violation beyond threshold: %+v", v)
		}
		if len(v.LeftRows) == 0 || len(v.RightRows) == 0 {
			t.Errorf("violation without carrier rows: %+v", v)
		}
	}
	if !foundTypo {
		t.Error("(Boton,MA)-(Boston,MA) not detected")
	}
	if !foundClassic {
		t.Error("no classic violation detected (e.g. (New York,NY)-(New York,MA))")
	}
	// Sorted ascending by distance within the FD.
	for i := 1; i < len(violations); i++ {
		if violations[i-1].Dist > violations[i].Dist {
			t.Fatalf("violations not sorted by distance at %d", i)
		}
	}
}

func TestDetectCleanRelation(t *testing.T) {
	_, clean := gen.Citizens()
	fds := gen.CitizensFDs(clean.Schema)
	set, err := fd.NewSet(fds, 0.1, 0.1, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	cfg := fd.DefaultDistConfig(clean)
	if vs := repair.Detect(clean, set, cfg, repair.Options{}); len(vs) != 0 {
		t.Fatalf("clean relation produced %d violations at tight threshold", len(vs))
	}
}

func TestDetectDistMatchesDistFunction(t *testing.T) {
	// Detect reuses the violation distance the graph builder recorded on
	// each edge (Edge.D) instead of re-deriving it; the reported Dist must
	// still equal the Eq-2 distance between the patterns.
	dirty, _ := gen.Citizens()
	fds := gen.CitizensFDs(dirty.Schema)
	set, err := fd.NewSet(fds, 0.2, 0.5, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	cfg := fd.DefaultDistConfig(dirty)
	vs := repair.Detect(dirty, set, cfg, repair.Options{})
	if len(vs) == 0 {
		t.Fatal("no violations detected")
	}
	for _, v := range vs {
		left, right := dirty.Tuples[v.LeftRows[0]], dirty.Tuples[v.RightRows[0]]
		if want := cfg.Dist(v.FD, left, right); !fd.FloatEq(v.Dist, want) {
			t.Fatalf("violation Dist = %v, cfg.Dist = %v for %v vs %v", v.Dist, want, v.Left, v.Right)
		}
	}
}

func TestDetectMultipleFDsOrdered(t *testing.T) {
	dirty, _ := gen.Citizens()
	fds := gen.CitizensFDs(dirty.Schema)
	set, err := fd.NewSet(fds, 0.2, 0.5, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	cfg := fd.DefaultDistConfig(dirty)
	vs := repair.Detect(dirty, set, cfg, repair.Options{})
	// Violations group by FD in set order.
	lastFD := -1
	index := map[*fd.FD]int{fds[0]: 0, fds[1]: 1, fds[2]: 2}
	for _, v := range vs {
		i := index[v.FD]
		if i < lastFD {
			t.Fatal("violations not grouped by FD order")
		}
		lastFD = i
	}
	// All three FDs have at least one violation on the dirty table.
	seen := map[int]bool{}
	for _, v := range vs {
		seen[index[v.FD]] = true
	}
	if len(seen) != 3 {
		t.Fatalf("violations found for %d FDs, want 3", len(seen))
	}
}
