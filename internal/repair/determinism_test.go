package repair_test

import (
	"math"
	"testing"

	"ftrepair/internal/dataset"
	"ftrepair/internal/eval"
	"ftrepair/internal/repair"
)

// TestMultiDeterministicAcrossWorkers is the repair-phase analogue of
// vgraph's worker-determinism test: ExactM, ApproM, and GreedyM must
// produce bit-identical repairs (every cell equal, Cost bits equal) at
// every Parallel setting. ExactM additionally exercises the
// branch-and-bound combination workers; the heuristics exercise the
// component fan-out and the parallel nearest-target planner. Runs under
// the race CI job, so it doubles as a data-race probe for the worker
// pools.
func TestMultiDeterministicAcrossWorkers(t *testing.T) {
	inst, err := eval.Prepare(eval.Setup{Workload: "hosp", N: 400, ErrorRate: 0.06, Seed: 17})
	if err != nil {
		t.Fatal(err)
	}
	// ExactM needs a smaller instance: its combination budget overflows on
	// the full nine-FD HOSP slice, and 2k combinations already exercise the
	// branch-and-bound workers.
	exactInst, err := eval.Prepare(eval.Setup{Workload: "hosp", N: 120, FDs: 4, ErrorRate: 0.03, Seed: 17})
	if err != nil {
		t.Fatal(err)
	}
	algos := []struct {
		name string
		inst *eval.Instance
		run  multiAlgo
	}{
		{"ExactM", exactInst, repair.ExactM},
		{"ApproM", inst, repair.ApproM},
		{"GreedyM", inst, repair.GreedyM},
	}
	for _, algo := range algos {
		var ref *repair.Result
		for _, parallel := range []int{0, 1, 2, 8} {
			res, err := algo.run(algo.inst.Dirty, algo.inst.Set, algo.inst.Cfg, repair.Options{Parallel: parallel})
			if err != nil {
				t.Fatalf("%s Parallel=%d: %v", algo.name, parallel, err)
			}
			if ref == nil {
				ref = res
				if len(ref.Changed) == 0 {
					t.Fatalf("%s repaired nothing; instance too clean to test determinism", algo.name)
				}
				continue
			}
			cells, err := dataset.Diff(ref.Repaired, res.Repaired)
			if err != nil || len(cells) != 0 {
				t.Fatalf("%s Parallel=%d: repair differs from Parallel=0 at %v (%v)",
					algo.name, parallel, cells, err)
			}
			if math.Float64bits(res.Cost) != math.Float64bits(ref.Cost) {
				t.Fatalf("%s Parallel=%d: Cost %v (bits %x) != reference %v (bits %x)",
					algo.name, parallel, res.Cost, math.Float64bits(res.Cost),
					ref.Cost, math.Float64bits(ref.Cost))
			}
			if len(res.Changed) != len(ref.Changed) {
				t.Fatalf("%s Parallel=%d: changed-cell counts differ: %d vs %d",
					algo.name, parallel, len(res.Changed), len(ref.Changed))
			}
		}
	}
}

// TestExactMDeterministicOnCitizens pins the branch-and-bound to the
// paper's Table 1 ground truth at several worker counts: the winning
// combination (and therefore every repaired cell) must not depend on
// scheduling even when equal-cost combinations exist.
func TestExactMDeterministicOnCitizens(t *testing.T) {
	dirty, clean, set, cfg := citizensSet(t)
	for _, parallel := range []int{0, 2, 8} {
		res, err := repair.ExactM(dirty, set, cfg, repair.Options{Parallel: parallel})
		if err != nil {
			t.Fatalf("Parallel=%d: %v", parallel, err)
		}
		cells, err := dataset.Diff(res.Repaired, clean)
		if err != nil {
			t.Fatal(err)
		}
		if len(cells) != 0 {
			t.Fatalf("Parallel=%d: repair deviates from ground truth at %v", parallel, cells)
		}
	}
}
