package repair

import (
	"testing"

	"ftrepair/internal/dataset"
	"ftrepair/internal/fd"
)

// TestSequentialFallback exercises the defensive path used when the joined
// independent sets admit no target: per-FD greedy rounds must converge to
// an FT-consistent state.
func TestSequentialFallback(t *testing.T) {
	schema := dataset.Strings("A", "B", "C")
	rel, err := dataset.FromRows(schema, [][]string{
		{"karla", "blue", "cold"},
		{"karla", "blue", "cold"},
		{"karla", "bluw", "cold"},
		{"marta", "gold", "warm"},
		{"marta", "gold", "wurm"},
	})
	if err != nil {
		t.Fatal(err)
	}
	set, err := fd.NewSet([]*fd.FD{
		fd.MustParse(schema, "A->B"),
		fd.MustParse(schema, "A->C"),
	}, 0.3)
	if err != nil {
		t.Fatal(err)
	}
	cfg, err := fd.NewDistConfig(rel, 0.7, 0.3)
	if err != nil {
		t.Fatal(err)
	}
	out := rel.Clone()
	if err := sequentialFallback(out, set, cfg, Options{}, nil); err != nil {
		t.Fatal(err)
	}
	if err := VerifyFTConsistent(out, set, cfg); err != nil {
		t.Fatalf("fallback left violations: %v", err)
	}
	if out.Tuples[2][1] != "blue" || out.Tuples[4][2] != "warm" {
		t.Fatalf("fallback repairs: %v", out.Tuples)
	}
	// A clean relation is a no-op.
	clean := out.Clone()
	if err := sequentialFallback(clean, set, cfg, Options{}, nil); err != nil {
		t.Fatal(err)
	}
	cells, err := dataset.Diff(out, clean)
	if err != nil || len(cells) != 0 {
		t.Fatalf("fallback modified a consistent relation: %v %v", cells, err)
	}
}
