package repair

import (
	"math"
	"sync"

	"ftrepair/internal/fd"
	"ftrepair/internal/vgraph"
)

// This file implements the indexed-heap fast path for the greedy growth
// loops (GreedyS's Algorithm 2 and GreedyM's Algorithm 4). The naive loops
// rescan every unchosen candidate each round — O(V²·deg) growth — but
// adding a vertex only perturbs the scores of candidates near it (distance
// 2 for the single-FD score, distance 3 for the joint score), so the heap
// path maintains candidate scores incrementally: a lazy min-heap holds one
// live entry per candidate, version stamps invalidate entries whose vertex
// was rescored, and each round pops near the minimum instead of rescanning.
//
// The invariant is bit-identical output with the retained naive
// implementations (greedySetNaive, jointGreedySetsNaive) on any input:
//
//   - Scores are computed by the same functions in the same summation
//     order, so cached heap scores are the exact floats the naive rescan
//     would recompute (a candidate is rescored whenever any input of its
//     score changes, so cached values never go stale).
//   - Selection replicates the naive scan's fd.Eps tie-breaking, which is
//     not a total order (comparisons within eps fall through to
//     multiplicity), so the heap cannot simply pop its minimum. Instead
//     each round pops the eps-gap closure of the minimum — the live
//     minimum plus every live candidate reachable from it by score steps
//     of at most fd.Eps — and replays the exact naive comparison loop over
//     the closure in naive scan order. This is provably equivalent to the
//     full scan: every candidate outside the closure scores more than eps
//     above every candidate inside it, so in the naive scan (a) the first
//     closure member scanned always takes over any outside incumbent (it
//     is strictly smaller by more than eps), and (b) no outside candidate
//     can ever take over a closure incumbent (neither the strict nor the
//     within-eps arm can fire across the gap). From the first closure
//     takeover on, the naive trajectory involves closure members only, in
//     scan order — exactly the replay. Closure losers are pushed back for
//     later rounds.
//
// greedyStepHook, when set (tests only), observes every growth round of
// all four loops — it fires with the current set size immediately before
// each round's cancellation poll, letting tests cancel deterministically
// after a fixed number of rounds and assert heap/naive partial-set parity.
var greedyStepHook func(added int)

// scoreEntry is one heap candidate: a (graph, vertex) pair with its cached
// selection score. Entries whose ver no longer matches the vertex's current
// version are stale and discarded on pop.
type scoreEntry struct {
	score float64
	mult  int
	fd    int
	id    int
	ver   uint32
}

// entryLess orders the heap: score ascending, then multiplicity descending,
// then graph and vertex id ascending — the same priority the naive
// tie-breaks express, so closure pops surface candidates in a stable
// order. Exact float comparison is deliberate; the eps tolerance is
// applied by the closure replay, not the heap order.
func entryLess(a, b scoreEntry) bool {
	if a.score < b.score {
		return true
	}
	if b.score < a.score {
		return false
	}
	if a.mult != b.mult {
		return a.mult > b.mult
	}
	if a.fd != b.fd {
		return a.fd < b.fd
	}
	return a.id < b.id
}

// scoreHeap is a binary min-heap of scoreEntry under entryLess, hand-rolled
// to keep entries unboxed on the hot path.
type scoreHeap []scoreEntry

func (h *scoreHeap) push(e scoreEntry) {
	*h = append(*h, e)
	s := *h
	i := len(s) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !entryLess(s[i], s[parent]) {
			break
		}
		s[i], s[parent] = s[parent], s[i]
		i = parent
	}
}

func (h *scoreHeap) pop() scoreEntry {
	s := *h
	top := s[0]
	last := len(s) - 1
	s[0] = s[last]
	*h = s[:last]
	h.siftDown(0)
	return top
}

func (h *scoreHeap) siftDown(i int) {
	s := *h
	n := len(s)
	for {
		l, r := 2*i+1, 2*i+2
		small := i
		if l < n && entryLess(s[l], s[small]) {
			small = l
		}
		if r < n && entryLess(s[r], s[small]) {
			small = r
		}
		if small == i {
			return
		}
		s[i], s[small] = s[small], s[i]
		i = small
	}
}

// init establishes the heap invariant over an arbitrarily ordered slice.
func (h *scoreHeap) init() {
	for i := len(*h)/2 - 1; i >= 0; i-- {
		h.siftDown(i)
	}
}

// popClosure pops the eps-gap closure of the live minimum: the minimum
// live entry plus every live entry within fd.Eps of the maximum popped so
// far. Stale entries encountered on the way are discarded. The result is
// in ascending score order; the caller replays the naive selection over it
// and pushes the losers back. Returns nil when no live candidate remains.
func (h *scoreHeap) popClosure(live func(scoreEntry) bool) []scoreEntry {
	var out []scoreEntry
	var maxScore float64
	for len(*h) > 0 {
		if !live((*h)[0]) {
			h.pop()
			continue
		}
		if out != nil && (*h)[0].score > maxScore+fd.Eps {
			break
		}
		e := h.pop()
		out = append(out, e)
		maxScore = e.score
	}
	return out
}

// greedyScorer holds the shared growth state of Algorithm 2: the chosen
// set, the blocked frontier, and the normalized Eq 7/8 cost model (see the
// greedySetNaive comment for the normalization rationale). Both the naive
// rescan and the heap path drive the same scorer, so their scores are
// bitwise equal by construction.
type greedyScorer struct {
	g *vgraph.Graph
	// minOmega[v]: v's cheapest outgoing edge — the floor of its repair
	// cost if it ends up excluded (0 for isolated vertices, which are
	// never repaired). avoided[v] scales it by multiplicity.
	minOmega []float64
	avoided  []float64
	inSet    []bool
	// blocked[v]: v has a neighbor in the set (cannot join; must repair).
	blocked []bool
	// repairCost[v]: current min_{u∈Î∩N(v)} ω(v,u) for blocked v.
	repairCost []float64
	set        []int
}

func newGreedyScorer(g *vgraph.Graph) *greedyScorer {
	s := &greedyScorer{}
	s.reset(g)
	return s
}

// reset re-initializes the scorer over g, reusing every slice whose
// capacity suffices — the reset is allocation-free once the scorer has seen
// a graph at least this large.
func (s *greedyScorer) reset(g *vgraph.Graph) {
	n := len(g.Vertices)
	s.g = g
	s.minOmega = growFloats(s.minOmega, n)
	s.avoided = growFloats(s.avoided, n)
	s.inSet = growBools(s.inSet, n)
	s.blocked = growBools(s.blocked, n)
	s.repairCost = growFloats(s.repairCost, n)
	s.set = s.set[:0]
	for v := 0; v < n; v++ {
		best := math.Inf(1)
		for _, e := range g.Neighbors(v) {
			if e.W < best {
				best = e.W
			}
		}
		if math.IsInf(best, 1) {
			best = 0
		}
		s.minOmega[v] = best
		s.avoided[v] = float64(g.Vertices[v].Mult()) * best
		s.inSet[v] = false
		s.blocked[v] = false
		s.repairCost[v] = math.Inf(1)
	}
}

// growFloats returns a float slice of length n, reusing s's capacity.
func growFloats(s []float64, n int) []float64 {
	if cap(s) < n {
		return make([]float64, n)
	}
	return s[:n]
}

// growBools returns a bool slice of length n, reusing s's capacity.
func growBools(s []bool, n int) []bool {
	if cap(s) < n {
		return make([]bool, n)
	}
	return s[:n]
}

// valid reports whether v is still a candidate (neither chosen nor doomed).
func (s *greedyScorer) valid(v int) bool { return !s.inSet[v] && !s.blocked[v] }

// score is the normalized Eq-8 incremental cost of adding candidate v: per
// neighbor it dooms, only the cost above that neighbor's unavoidable
// minimum repair, minus v's own avoided repair cost. Summation follows
// adjacency order so every caller computes bitwise-identical values.
func (s *greedyScorer) score(v int) float64 {
	var inc float64
	for _, e := range s.g.Neighbors(v) {
		if s.blocked[e.To] {
			// Neighbor already doomed: adding v can only lower its
			// repair cost.
			if e.W < s.repairCost[e.To] {
				inc += float64(s.g.Vertices[e.To].Mult()) * (e.W - s.repairCost[e.To])
			}
		} else if !s.inSet[e.To] {
			// Newly doomed neighbor pays its repair to v, above the
			// floor it pays in any case.
			inc += float64(s.g.Vertices[e.To].Mult()) * (e.W - s.minOmega[e.To])
		}
	}
	return inc - s.avoided[v]
}

// better orders candidates: smaller net cost first; ties (exact ties are
// common — a typo vertex's incremental equals its legitimate source's
// avoided cost) break toward higher multiplicity, then lower id for
// determinism.
func (s *greedyScorer) better(cost float64, v int, bestCost float64, bestV int) bool {
	if cost < bestCost-fd.Eps {
		return true
	}
	if cost > bestCost+fd.Eps {
		return false
	}
	if bestV < 0 {
		return true
	}
	mv, mb := s.g.Vertices[v].Mult(), s.g.Vertices[bestV].Mult()
	if mv != mb {
		return mv > mb
	}
	return v < bestV
}

// add commits v to the set and dooms its unchosen neighbors.
func (s *greedyScorer) add(v int) {
	s.inSet[v] = true
	s.set = append(s.set, v)
	for _, e := range s.g.Neighbors(v) {
		if s.inSet[e.To] {
			continue
		}
		s.blocked[e.To] = true
		if e.W < s.repairCost[e.To] {
			s.repairCost[e.To] = e.W
		}
	}
}

// greedyGrower is the pooled per-run state of the indexed-heap growth path:
// the scorer, the lazy heap, version stamps, and the round's closure
// buffer. Every round is driven by methods (no closures) over these pooled
// slices, so steady-state runs at a stable graph size allocate nothing —
// the property the alloc-regression gate asserts.
type greedyGrower struct {
	s     greedyScorer
	ver   []uint32
	h     scoreHeap
	stamp []int
	cands []scoreEntry
	round int
}

var greedyGrowerPool = sync.Pool{New: func() any { return new(greedyGrower) }}

// reset re-seeds the grower over g, reusing pooled capacity.
func (gr *greedyGrower) reset(g *vgraph.Graph) {
	n := len(g.Vertices)
	gr.s.reset(g)
	if cap(gr.ver) < n {
		gr.ver = make([]uint32, n)
	}
	gr.ver = gr.ver[:n]
	if cap(gr.h) < n {
		gr.h = make(scoreHeap, n)
	}
	gr.h = gr.h[:n]
	for v := 0; v < n; v++ {
		gr.ver[v] = 0
		gr.h[v] = scoreEntry{score: gr.s.score(v), mult: g.Vertices[v].Mult(), id: v}
	}
	gr.h.init()
	if cap(gr.stamp) < n {
		gr.stamp = make([]int, n)
	}
	// stamp dedupes the distance-2 rescore walk within one round.
	gr.stamp = gr.stamp[:n]
	for i := range gr.stamp {
		gr.stamp[i] = -1
	}
	gr.round = 0
}

// live reports whether a heap entry is current: its version matches and its
// vertex is still a candidate.
func (gr *greedyGrower) live(e scoreEntry) bool {
	return e.ver == gr.ver[e.id] && gr.s.valid(e.id)
}

// popClosure is scoreHeap.popClosure specialized to the grower: it pops
// into the reused cands buffer with the liveness test inlined, so rounds
// allocate neither a closure nor an output slice.
func (gr *greedyGrower) popClosure() []scoreEntry {
	out := gr.cands[:0]
	var maxScore float64
	for len(gr.h) > 0 {
		if !gr.live(gr.h[0]) {
			gr.h.pop()
			continue
		}
		if len(out) > 0 && gr.h[0].score > maxScore+fd.Eps {
			break
		}
		e := gr.h.pop()
		out = append(out, e)
		maxScore = e.score
	}
	gr.cands = out
	return out
}

// rescore refreshes u's heap entry if its score inputs may have changed
// this round.
func (gr *greedyGrower) rescore(u int) {
	if gr.stamp[u] == gr.round {
		return
	}
	gr.stamp[u] = gr.round
	if !gr.s.valid(u) {
		return
	}
	gr.ver[u]++
	gr.h.push(scoreEntry{score: gr.s.score(u), mult: gr.s.g.Vertices[u].Mult(), id: u, ver: gr.ver[u]})
}

// grow runs the round loop until no live candidate remains or cancel
// fires; the chosen set accumulates in gr.s.set.
func (gr *greedyGrower) grow(cancel <-chan struct{}) {
	g := gr.s.g
	for {
		if greedyStepHook != nil {
			greedyStepHook(len(gr.s.set))
		}
		if canceled(cancel) {
			return
		}
		cands := gr.popClosure()
		if len(cands) == 0 {
			return
		}
		// Replay the naive selection over the closure in naive scan order.
		sortEntriesByID(cands)
		best, bestCost := -1, math.Inf(1)
		for _, e := range cands {
			if gr.s.better(e.score, e.id, bestCost, best) {
				best, bestCost = e.id, e.score
			}
		}
		for _, e := range cands {
			if e.id != best {
				gr.h.push(e)
			}
		}
		gr.s.add(best)
		// Adding best perturbs exactly the scores of candidates within
		// distance 2: direct neighbors lose their contribution for best
		// (now chosen), and second-hop candidates see a neighbor newly
		// blocked or its repair floor lowered.
		gr.round++
		for _, e := range g.Neighbors(best) {
			gr.rescore(e.To)
			for _, e2 := range g.Neighbors(e.To) {
				gr.rescore(e2.To)
			}
		}
	}
}

// sortEntriesByID orders closure entries by vertex id — the naive scan
// order. Ids are unique within a closure, so this insertion sort yields the
// exact order sort.Slice did, without its closure and swap-reflection
// allocations.
func sortEntriesByID(es []scoreEntry) {
	for i := 1; i < len(es); i++ {
		e := es[i]
		j := i - 1
		for j >= 0 && es[j].id > e.id {
			es[j+1] = es[j]
			j--
		}
		es[j+1] = e
	}
}

// sortEntriesByFDID orders closure entries by (FD index, vertex id) — the
// joint loop's naive scan order. The pair is unique within a closure, so
// the order matches what sort.Slice produced.
func sortEntriesByFDID(es []scoreEntry) {
	for i := 1; i < len(es); i++ {
		e := es[i]
		j := i - 1
		for j >= 0 && (es[j].fd > e.fd || (es[j].fd == e.fd && es[j].id > e.id)) {
			es[j+1] = es[j]
			j--
		}
		es[j+1] = e
	}
}

// greedySet runs Algorithm 2 on the pattern graph and returns the chosen
// maximal independent set, using the indexed-heap growth path. When cancel
// fires mid-growth the set built so far is returned (independent, but
// possibly not maximal); the caller decides how to surface the
// cancellation. Output is bit-identical to greedySetNaive on any input.
func greedySet(g *vgraph.Graph, cancel <-chan struct{}) []int {
	return growInto(g, cancel, nil)
}

// growInto is greedySet with a caller-owned result buffer: the chosen set
// is appended to dst[:0]. The growth state itself comes from a pool, so a
// steady-state caller reusing dst performs zero allocations per run.
func growInto(g *vgraph.Graph, cancel <-chan struct{}, dst []int) []int {
	dst = dst[:0]
	if canceled(cancel) || len(g.Vertices) == 0 {
		return dst
	}
	gr := greedyGrowerPool.Get().(*greedyGrower)
	gr.reset(g)
	gr.grow(cancel)
	dst = append(dst, gr.s.set...)
	// Drop the graph reference so the pooled grower does not pin it.
	gr.s.g = nil
	greedyGrowerPool.Put(gr)
	return dst
}

// greedySetNaive is the retained reference implementation of Algorithm 2:
// every round rescans every unchosen, unblocked candidate. O(V²·deg)
// growth — the heap path exists because of it — but trivially correct, so
// it anchors the equivalence tests and the repairbench speedup series.
//
// Selection uses a normalized form of Eq. 7/8: a candidate is charged, per
// neighbor it dooms, only the cost *above* that neighbor's unavoidable
// minimum repair (its cheapest edge — paid in any maximal set excluding
// it), and is credited its own avoided repair cost. The literal Eq. 8 is
// myopic on two common shapes: a one-tuple typo pattern dooms its
// high-multiplicity source cheaply and gets picked first (flipping every
// legitimate tuple to the typo spelling), and a legitimate pattern
// surrounded by error patterns is charged their full — but inevitable —
// repair cost. The normalized score keeps the paper's complexity and
// resolves both.
func greedySetNaive(g *vgraph.Graph, cancel <-chan struct{}) []int {
	if canceled(cancel) {
		return nil
	}
	n := len(g.Vertices)
	if n == 0 {
		return nil
	}
	s := newGreedyScorer(g)
	for {
		if greedyStepHook != nil {
			greedyStepHook(len(s.set))
		}
		if canceled(cancel) {
			return s.set
		}
		best, bestCost := -1, math.Inf(1)
		for v := 0; v < n; v++ {
			if !s.valid(v) {
				continue
			}
			if c := s.score(v); s.better(c, v, bestCost, best) {
				best, bestCost = v, c
			}
		}
		if best < 0 {
			break
		}
		s.add(best)
	}
	return s.set
}
