package repair

import (
	"math"
	"sort"

	"ftrepair/internal/fd"
	"ftrepair/internal/vgraph"
)

// This file implements the indexed-heap fast path for the greedy growth
// loops (GreedyS's Algorithm 2 and GreedyM's Algorithm 4). The naive loops
// rescan every unchosen candidate each round — O(V²·deg) growth — but
// adding a vertex only perturbs the scores of candidates near it (distance
// 2 for the single-FD score, distance 3 for the joint score), so the heap
// path maintains candidate scores incrementally: a lazy min-heap holds one
// live entry per candidate, version stamps invalidate entries whose vertex
// was rescored, and each round pops near the minimum instead of rescanning.
//
// The invariant is bit-identical output with the retained naive
// implementations (greedySetNaive, jointGreedySetsNaive) on any input:
//
//   - Scores are computed by the same functions in the same summation
//     order, so cached heap scores are the exact floats the naive rescan
//     would recompute (a candidate is rescored whenever any input of its
//     score changes, so cached values never go stale).
//   - Selection replicates the naive scan's fd.Eps tie-breaking, which is
//     not a total order (comparisons within eps fall through to
//     multiplicity), so the heap cannot simply pop its minimum. Instead
//     each round pops the eps-gap closure of the minimum — the live
//     minimum plus every live candidate reachable from it by score steps
//     of at most fd.Eps — and replays the exact naive comparison loop over
//     the closure in naive scan order. This is provably equivalent to the
//     full scan: every candidate outside the closure scores more than eps
//     above every candidate inside it, so in the naive scan (a) the first
//     closure member scanned always takes over any outside incumbent (it
//     is strictly smaller by more than eps), and (b) no outside candidate
//     can ever take over a closure incumbent (neither the strict nor the
//     within-eps arm can fire across the gap). From the first closure
//     takeover on, the naive trajectory involves closure members only, in
//     scan order — exactly the replay. Closure losers are pushed back for
//     later rounds.
//
// greedyStepHook, when set (tests only), observes every growth round of
// all four loops — it fires with the current set size immediately before
// each round's cancellation poll, letting tests cancel deterministically
// after a fixed number of rounds and assert heap/naive partial-set parity.
var greedyStepHook func(added int)

// scoreEntry is one heap candidate: a (graph, vertex) pair with its cached
// selection score. Entries whose ver no longer matches the vertex's current
// version are stale and discarded on pop.
type scoreEntry struct {
	score float64
	mult  int
	fd    int
	id    int
	ver   uint32
}

// entryLess orders the heap: score ascending, then multiplicity descending,
// then graph and vertex id ascending — the same priority the naive
// tie-breaks express, so closure pops surface candidates in a stable
// order. Exact float comparison is deliberate; the eps tolerance is
// applied by the closure replay, not the heap order.
func entryLess(a, b scoreEntry) bool {
	if a.score < b.score {
		return true
	}
	if b.score < a.score {
		return false
	}
	if a.mult != b.mult {
		return a.mult > b.mult
	}
	if a.fd != b.fd {
		return a.fd < b.fd
	}
	return a.id < b.id
}

// scoreHeap is a binary min-heap of scoreEntry under entryLess, hand-rolled
// to keep entries unboxed on the hot path.
type scoreHeap []scoreEntry

func (h *scoreHeap) push(e scoreEntry) {
	*h = append(*h, e)
	s := *h
	i := len(s) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !entryLess(s[i], s[parent]) {
			break
		}
		s[i], s[parent] = s[parent], s[i]
		i = parent
	}
}

func (h *scoreHeap) pop() scoreEntry {
	s := *h
	top := s[0]
	last := len(s) - 1
	s[0] = s[last]
	*h = s[:last]
	h.siftDown(0)
	return top
}

func (h *scoreHeap) siftDown(i int) {
	s := *h
	n := len(s)
	for {
		l, r := 2*i+1, 2*i+2
		small := i
		if l < n && entryLess(s[l], s[small]) {
			small = l
		}
		if r < n && entryLess(s[r], s[small]) {
			small = r
		}
		if small == i {
			return
		}
		s[i], s[small] = s[small], s[i]
		i = small
	}
}

// init establishes the heap invariant over an arbitrarily ordered slice.
func (h *scoreHeap) init() {
	for i := len(*h)/2 - 1; i >= 0; i-- {
		h.siftDown(i)
	}
}

// popClosure pops the eps-gap closure of the live minimum: the minimum
// live entry plus every live entry within fd.Eps of the maximum popped so
// far. Stale entries encountered on the way are discarded. The result is
// in ascending score order; the caller replays the naive selection over it
// and pushes the losers back. Returns nil when no live candidate remains.
func (h *scoreHeap) popClosure(live func(scoreEntry) bool) []scoreEntry {
	var out []scoreEntry
	var maxScore float64
	for len(*h) > 0 {
		if !live((*h)[0]) {
			h.pop()
			continue
		}
		if out != nil && (*h)[0].score > maxScore+fd.Eps {
			break
		}
		e := h.pop()
		out = append(out, e)
		maxScore = e.score
	}
	return out
}

// greedyScorer holds the shared growth state of Algorithm 2: the chosen
// set, the blocked frontier, and the normalized Eq 7/8 cost model (see the
// greedySetNaive comment for the normalization rationale). Both the naive
// rescan and the heap path drive the same scorer, so their scores are
// bitwise equal by construction.
type greedyScorer struct {
	g *vgraph.Graph
	// minOmega[v]: v's cheapest outgoing edge — the floor of its repair
	// cost if it ends up excluded (0 for isolated vertices, which are
	// never repaired). avoided[v] scales it by multiplicity.
	minOmega []float64
	avoided  []float64
	inSet    []bool
	// blocked[v]: v has a neighbor in the set (cannot join; must repair).
	blocked []bool
	// repairCost[v]: current min_{u∈Î∩N(v)} ω(v,u) for blocked v.
	repairCost []float64
	set        []int
}

func newGreedyScorer(g *vgraph.Graph) *greedyScorer {
	n := len(g.Vertices)
	s := &greedyScorer{
		g:          g,
		minOmega:   make([]float64, n),
		avoided:    make([]float64, n),
		inSet:      make([]bool, n),
		blocked:    make([]bool, n),
		repairCost: make([]float64, n),
	}
	for v := 0; v < n; v++ {
		best := math.Inf(1)
		for _, e := range g.Neighbors(v) {
			if e.W < best {
				best = e.W
			}
		}
		if math.IsInf(best, 1) {
			best = 0
		}
		s.minOmega[v] = best
		s.avoided[v] = float64(g.Vertices[v].Mult()) * best
		s.repairCost[v] = math.Inf(1)
	}
	return s
}

// valid reports whether v is still a candidate (neither chosen nor doomed).
func (s *greedyScorer) valid(v int) bool { return !s.inSet[v] && !s.blocked[v] }

// score is the normalized Eq-8 incremental cost of adding candidate v: per
// neighbor it dooms, only the cost above that neighbor's unavoidable
// minimum repair, minus v's own avoided repair cost. Summation follows
// adjacency order so every caller computes bitwise-identical values.
func (s *greedyScorer) score(v int) float64 {
	var inc float64
	for _, e := range s.g.Neighbors(v) {
		if s.blocked[e.To] {
			// Neighbor already doomed: adding v can only lower its
			// repair cost.
			if e.W < s.repairCost[e.To] {
				inc += float64(s.g.Vertices[e.To].Mult()) * (e.W - s.repairCost[e.To])
			}
		} else if !s.inSet[e.To] {
			// Newly doomed neighbor pays its repair to v, above the
			// floor it pays in any case.
			inc += float64(s.g.Vertices[e.To].Mult()) * (e.W - s.minOmega[e.To])
		}
	}
	return inc - s.avoided[v]
}

// better orders candidates: smaller net cost first; ties (exact ties are
// common — a typo vertex's incremental equals its legitimate source's
// avoided cost) break toward higher multiplicity, then lower id for
// determinism.
func (s *greedyScorer) better(cost float64, v int, bestCost float64, bestV int) bool {
	if cost < bestCost-fd.Eps {
		return true
	}
	if cost > bestCost+fd.Eps {
		return false
	}
	if bestV < 0 {
		return true
	}
	mv, mb := s.g.Vertices[v].Mult(), s.g.Vertices[bestV].Mult()
	if mv != mb {
		return mv > mb
	}
	return v < bestV
}

// add commits v to the set and dooms its unchosen neighbors.
func (s *greedyScorer) add(v int) {
	s.inSet[v] = true
	s.set = append(s.set, v)
	for _, e := range s.g.Neighbors(v) {
		if s.inSet[e.To] {
			continue
		}
		s.blocked[e.To] = true
		if e.W < s.repairCost[e.To] {
			s.repairCost[e.To] = e.W
		}
	}
}

// greedySet runs Algorithm 2 on the pattern graph and returns the chosen
// maximal independent set, using the indexed-heap growth path. When cancel
// fires mid-growth the set built so far is returned (independent, but
// possibly not maximal); the caller decides how to surface the
// cancellation. Output is bit-identical to greedySetNaive on any input.
func greedySet(g *vgraph.Graph, cancel <-chan struct{}) []int {
	if canceled(cancel) {
		return nil
	}
	n := len(g.Vertices)
	if n == 0 {
		return nil
	}
	s := newGreedyScorer(g)
	ver := make([]uint32, n)
	h := make(scoreHeap, n)
	for v := 0; v < n; v++ {
		h[v] = scoreEntry{score: s.score(v), mult: g.Vertices[v].Mult(), id: v}
	}
	h.init()
	live := func(e scoreEntry) bool { return e.ver == ver[e.id] && s.valid(e.id) }
	// stamp dedupes the distance-2 rescore walk within one round.
	stamp := make([]int, n)
	for i := range stamp {
		stamp[i] = -1
	}
	round := 0
	rescore := func(u int) {
		if stamp[u] == round {
			return
		}
		stamp[u] = round
		if !s.valid(u) {
			return
		}
		ver[u]++
		h.push(scoreEntry{score: s.score(u), mult: g.Vertices[u].Mult(), id: u, ver: ver[u]})
	}
	for {
		if greedyStepHook != nil {
			greedyStepHook(len(s.set))
		}
		if canceled(cancel) {
			return s.set
		}
		cands := h.popClosure(live)
		if cands == nil {
			break
		}
		// Replay the naive selection over the closure in naive scan order.
		sort.Slice(cands, func(a, b int) bool { return cands[a].id < cands[b].id })
		best, bestCost := -1, math.Inf(1)
		for _, e := range cands {
			if s.better(e.score, e.id, bestCost, best) {
				best, bestCost = e.id, e.score
			}
		}
		for _, e := range cands {
			if e.id != best {
				h.push(e)
			}
		}
		s.add(best)
		// Adding best perturbs exactly the scores of candidates within
		// distance 2: direct neighbors lose their contribution for best
		// (now chosen), and second-hop candidates see a neighbor newly
		// blocked or its repair floor lowered.
		round++
		for _, e := range g.Neighbors(best) {
			rescore(e.To)
			for _, e2 := range g.Neighbors(e.To) {
				rescore(e2.To)
			}
		}
	}
	return s.set
}

// greedySetNaive is the retained reference implementation of Algorithm 2:
// every round rescans every unchosen, unblocked candidate. O(V²·deg)
// growth — the heap path exists because of it — but trivially correct, so
// it anchors the equivalence tests and the repairbench speedup series.
//
// Selection uses a normalized form of Eq. 7/8: a candidate is charged, per
// neighbor it dooms, only the cost *above* that neighbor's unavoidable
// minimum repair (its cheapest edge — paid in any maximal set excluding
// it), and is credited its own avoided repair cost. The literal Eq. 8 is
// myopic on two common shapes: a one-tuple typo pattern dooms its
// high-multiplicity source cheaply and gets picked first (flipping every
// legitimate tuple to the typo spelling), and a legitimate pattern
// surrounded by error patterns is charged their full — but inevitable —
// repair cost. The normalized score keeps the paper's complexity and
// resolves both.
func greedySetNaive(g *vgraph.Graph, cancel <-chan struct{}) []int {
	if canceled(cancel) {
		return nil
	}
	n := len(g.Vertices)
	if n == 0 {
		return nil
	}
	s := newGreedyScorer(g)
	for {
		if greedyStepHook != nil {
			greedyStepHook(len(s.set))
		}
		if canceled(cancel) {
			return s.set
		}
		best, bestCost := -1, math.Inf(1)
		for v := 0; v < n; v++ {
			if !s.valid(v) {
				continue
			}
			if c := s.score(v); s.better(c, v, bestCost, best) {
				best, bestCost = v, c
			}
		}
		if best < 0 {
			break
		}
		s.add(best)
	}
	return s.set
}
