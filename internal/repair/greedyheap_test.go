package repair

import (
	"math/rand"
	"testing"

	"ftrepair/internal/dataset"
	"ftrepair/internal/fd"
	"ftrepair/internal/vgraph"
)

// noisyPairRelation builds a City->State relation with tunable typo and
// shuffle noise. High noise yields dense violation graphs with many
// single-row typo vertices; repeated clean draws yield heavy
// multiplicities; the small alphabet of states makes exact score ties
// common — the shapes the heap/naive equivalence must survive.
func noisyPairRelation(t testing.TB, rng *rand.Rand, rows int, noise float64) *dataset.Relation {
	t.Helper()
	cities := []string{"Boston", "New York", "Chicago", "Seattle", "Denver", "Austin", "Portland", "Houston"}
	states := []string{"MA", "NY", "IL", "WA", "CO", "TX", "OR", "TX"}
	rel := dataset.NewRelation(dataset.Strings("City", "State"))
	for i := 0; i < rows; i++ {
		k := rng.Intn(len(cities))
		city, state := cities[k], states[k]
		if rng.Float64() < noise {
			b := []byte(city)
			b[rng.Intn(len(b))] = byte('a' + rng.Intn(26))
			city = string(b)
		}
		if rng.Float64() < noise/2 {
			state = states[rng.Intn(len(states))]
		}
		if err := rel.Append(dataset.Tuple{city, state}); err != nil {
			t.Fatal(err)
		}
	}
	return rel
}

// noisyTripleRelation adds a Country column depending on State, giving two
// FDs (City->State, State->Country) that share State — the overlap the
// joint greedy's syncDelta term exists for.
func noisyTripleRelation(t testing.TB, rng *rand.Rand, rows int, noise float64) *dataset.Relation {
	t.Helper()
	cities := []string{"Boston", "Toronto", "Chicago", "Vancouver", "Denver", "Montreal"}
	states := []string{"MA", "ON", "IL", "BC", "CO", "QC"}
	countries := []string{"USA", "Canada", "USA", "Canada", "USA", "Canada"}
	rel := dataset.NewRelation(dataset.Strings("City", "State", "Country"))
	for i := 0; i < rows; i++ {
		k := rng.Intn(len(cities))
		city, state, country := cities[k], states[k], countries[k]
		if rng.Float64() < noise {
			b := []byte(city)
			b[rng.Intn(len(b))] = byte('a' + rng.Intn(26))
			city = string(b)
		}
		if rng.Float64() < noise/2 {
			state = states[rng.Intn(len(states))]
		}
		if rng.Float64() < noise/3 {
			country = countries[rng.Intn(len(countries))]
		}
		if err := rel.Append(dataset.Tuple{city, state, country}); err != nil {
			t.Fatal(err)
		}
	}
	return rel
}

func sameIntSlice(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestGreedySetMatchesNaive grows sets on randomized graphs of varied
// density, multiplicity skew, and tie frequency, asserting the heap path
// picks the exact same vertices in the exact same order as the naive
// rescan.
func TestGreedySetMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	taus := []float64{0.2, 0.3, 0.5}
	noises := []float64{0.1, 0.25, 0.5}
	edged := 0
	for trial := 0; trial < 30; trial++ {
		rows := 40 + rng.Intn(200)
		rel := noisyPairRelation(t, rng, rows, noises[trial%len(noises)])
		f := fd.MustParse(rel.Schema, "City->State")
		cfg := fd.DefaultDistConfig(rel)
		g := vgraph.Build(rel, f, cfg, taus[trial%len(taus)], vgraph.Options{})
		if g.NumEdges() > 0 {
			edged++
		}
		naive := greedySetNaive(g, nil)
		fast := greedySet(g, nil)
		if !sameIntSlice(naive, fast) {
			t.Fatalf("trial %d (%d rows, %d vertices, %d edges): heap set %v != naive set %v",
				trial, rows, len(g.Vertices), g.NumEdges(), fast, naive)
		}
	}
	if edged < 20 {
		t.Fatalf("only %d/30 trials had violation edges; fixtures too clean to exercise growth", edged)
	}
}

// TestGreedySetCancelParity cancels both growth paths after exactly k
// rounds (via greedyStepHook) and asserts the partial sets are identical
// for every k up to full growth.
func TestGreedySetCancelParity(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	rel := noisyPairRelation(t, rng, 180, 0.35)
	f := fd.MustParse(rel.Schema, "City->State")
	g := vgraph.Build(rel, f, fd.DefaultDistConfig(rel), 0.3, vgraph.Options{})
	full := greedySetNaive(g, nil)
	if len(full) < 3 {
		t.Fatalf("degenerate instance: full set has only %d vertices", len(full))
	}
	defer func() { greedyStepHook = nil }()
	grow := func(k int, f func(*vgraph.Graph, <-chan struct{}) []int) []int {
		cancel := make(chan struct{})
		fired := false
		greedyStepHook = func(added int) {
			if added >= k && !fired {
				fired = true
				close(cancel)
			}
		}
		return f(g, cancel)
	}
	for k := 0; k <= len(full); k++ {
		naive := grow(k, greedySetNaive)
		fast := grow(k, greedySet)
		if !sameIntSlice(naive, fast) {
			t.Fatalf("cancel after %d rounds: heap partial %v != naive partial %v", k, fast, naive)
		}
		if len(naive) != k {
			t.Fatalf("cancel after %d rounds: partial set has %d vertices", k, len(naive))
		}
	}
}

// jointGraphs builds the two overlapping per-FD violation graphs of a
// triple relation.
func jointGraphs(t testing.TB, rel *dataset.Relation, cfg *fd.DistConfig) []*vgraph.Graph {
	t.Helper()
	f1 := fd.MustParse(rel.Schema, "City->State")
	f2 := fd.MustParse(rel.Schema, "State->Country")
	return []*vgraph.Graph{
		vgraph.Build(rel, f1, cfg, 0.3, vgraph.Options{}),
		vgraph.Build(rel, f2, cfg, 0.3, vgraph.Options{}),
	}
}

// TestJointGreedySetsMatchNaive is the multi-FD equivalence: interleaved
// growth over overlapping FDs must pick identical (FD, vertex) sequences
// on heap and naive paths.
func TestJointGreedySetsMatchNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	for trial := 0; trial < 12; trial++ {
		rows := 50 + rng.Intn(150)
		rel := noisyTripleRelation(t, rng, rows, 0.15+0.3*float64(trial%3))
		cfg := fd.DefaultDistConfig(rel)
		graphs := jointGraphs(t, rel, cfg)
		naive := jointGreedySetsNaive(rel, graphs, nil)
		fast := jointGreedySets(rel, graphs, nil)
		if len(naive) != len(fast) {
			t.Fatalf("trial %d: set count %d != %d", trial, len(fast), len(naive))
		}
		for i := range naive {
			if !sameIntSlice(naive[i], fast[i]) {
				t.Fatalf("trial %d FD %d: heap set %v != naive set %v", trial, i, fast[i], naive[i])
			}
		}
	}
}

// TestJointGreedySetsCancelParity is the joint-growth analogue of
// TestGreedySetCancelParity: identical partial sets at every cancellation
// round.
func TestJointGreedySetsCancelParity(t *testing.T) {
	rng := rand.New(rand.NewSource(29))
	rel := noisyTripleRelation(t, rng, 160, 0.35)
	cfg := fd.DefaultDistConfig(rel)
	graphs := jointGraphs(t, rel, cfg)
	full := jointGreedySetsNaive(rel, graphs, nil)
	added := len(full[0]) + len(full[1])
	if added < 3 {
		t.Fatalf("degenerate instance: only %d joint additions", added)
	}
	defer func() { greedyStepHook = nil }()
	grow := func(k int, f func(*dataset.Relation, []*vgraph.Graph, <-chan struct{}) [][]int) [][]int {
		cancel := make(chan struct{})
		fired := false
		greedyStepHook = func(n int) {
			if n >= k && !fired {
				fired = true
				close(cancel)
			}
		}
		return f(rel, graphs, cancel)
	}
	for k := 0; k <= added; k++ {
		naive := grow(k, jointGreedySetsNaive)
		fast := grow(k, jointGreedySets)
		for i := range naive {
			if !sameIntSlice(naive[i], fast[i]) {
				t.Fatalf("cancel after %d additions, FD %d: heap partial %v != naive partial %v",
					k, i, fast[i], naive[i])
			}
		}
	}
}

// TestPopClosureChains checks the eps-gap closure directly: entries chained
// within fd.Eps of each other are popped together even when the full chain
// spans more than one eps, and the closure stops at the first gap.
func TestPopClosureChains(t *testing.T) {
	var h scoreHeap
	scores := []float64{0, fd.Eps / 2, 1.4 * fd.Eps, 5 * fd.Eps, 5.5 * fd.Eps}
	for i, s := range scores {
		h.push(scoreEntry{score: s, id: i})
	}
	alive := func(scoreEntry) bool { return true }
	first := h.popClosure(alive)
	if len(first) != 3 {
		t.Fatalf("first closure popped %d entries, want 3 (chain 0, eps/2, 1.4eps)", len(first))
	}
	second := h.popClosure(alive)
	if len(second) != 2 {
		t.Fatalf("second closure popped %d entries, want 2 (5eps, 5.5eps)", len(second))
	}
	if h.popClosure(alive) != nil {
		t.Fatal("empty heap should yield nil closure")
	}
	// Stale entries hide live ones: a dead minimum must be skipped, not
	// anchor the closure.
	h.push(scoreEntry{score: 0, id: 0})
	h.push(scoreEntry{score: 10 * fd.Eps, id: 1})
	dead0 := func(e scoreEntry) bool { return e.id != 0 }
	got := h.popClosure(dead0)
	if len(got) != 1 || got[0].id != 1 {
		t.Fatalf("closure over stale minimum = %v, want only id 1", got)
	}
}
