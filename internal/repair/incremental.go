package repair

import (
	"fmt"

	"ftrepair/internal/dataset"
	"ftrepair/internal/fd"
	"ftrepair/internal/targettree"
)

// Incremental maintains FT-consistency as tuples are appended to an
// already-consistent relation, without recomputing a full repair: each new
// tuple is checked against the accepted patterns of every FD; when it
// FT-violates one, its constrained attributes repair to the nearest
// existing join-target (incremental bias — the standing data wins). Tuples
// whose patterns are genuinely new (beyond every threshold) are accepted
// and extend the pattern sets.
//
// An Incremental is not safe for concurrent use; serialize Add calls.
type Incremental struct {
	set *fd.Set
	cfg *fd.DistConfig
	rel *dataset.Relation
	// comps partitions the FDs (Theorem 5); repairs stay component-local.
	comps []*incComponent
	// accepted counts tuples appended; repaired how many were modified.
	accepted, repaired int
}

type incComponent struct {
	fdIdx []int // indices into set.FDs
	attrs []int // union of constrained attributes
	// patterns[f] holds one representative per accepted distinct
	// projection of FD fdIdx[f]; keys[f] the projection-key set.
	patterns [][]dataset.Tuple
	keys     []map[string]bool
	// tree is the memoized nearest-target index. Multi-FD components
	// rebuild it lazily when treeDirty (a new pattern arrived since the
	// last build). Single-FD components defer harder: tree covers only
	// patterns[0][:treeBuilt], fresher patterns are scanned linearly
	// alongside the tree search, and the tree refolds only once the fresh
	// tail outgrows incFreshFold — so alternating absorb/repair workloads
	// stop paying a full O(patterns) rebuild per repaired tuple.
	tree      *targettree.Tree
	treeDirty bool
	treeBuilt int
	// treeBuilds counts Build calls (observability for the memoization).
	treeBuilds int
}

// incFreshFold is the single-FD fresh-tail length that triggers a refold.
const incFreshFold = 64

// NewIncremental builds incremental state over base, which must already be
// FT-consistent w.r.t. the set (e.g. the Repaired relation of a prior
// Repair call). The base relation is cloned.
func NewIncremental(base *dataset.Relation, set *fd.Set, cfg *fd.DistConfig) (*Incremental, error) {
	if err := VerifyFTConsistent(base, set, cfg); err != nil {
		return nil, fmt.Errorf("repair: incremental base: %w", err)
	}
	inc := &Incremental{set: set, cfg: cfg, rel: base.Clone()}
	for _, comp := range set.Components() {
		c := &incComponent{fdIdx: comp, treeDirty: true}
		var fds []*fd.FD
		for _, i := range comp {
			fds = append(fds, set.FDs[i])
		}
		c.attrs = unionAttrs(fds)
		c.patterns = make([][]dataset.Tuple, len(comp))
		c.keys = make([]map[string]bool, len(comp))
		for f := range comp {
			c.keys[f] = make(map[string]bool)
		}
		for _, t := range base.Tuples {
			c.absorb(set, t)
		}
		inc.comps = append(inc.comps, c)
	}
	return inc, nil
}

// absorb records t's projections as accepted patterns.
func (c *incComponent) absorb(set *fd.Set, t dataset.Tuple) {
	for f, i := range c.fdIdx {
		k := t.Key(set.FDs[i].Attrs())
		if !c.keys[f][k] {
			c.keys[f][k] = true
			c.patterns[f] = append(c.patterns[f], t.Clone())
			c.treeDirty = true
		}
	}
}

// Add appends one tuple, repairing it if needed, and returns the accepted
// version together with whether it was modified. The tuple must match the
// relation's schema.
func (inc *Incremental) Add(t dataset.Tuple) (dataset.Tuple, bool, error) {
	if len(t) != inc.rel.Schema.Len() {
		return nil, false, fmt.Errorf("repair: tuple has %d cells, schema has %d", len(t), inc.rel.Schema.Len())
	}
	out := t.Clone()
	changed := false
	for _, c := range inc.comps {
		repaired, err := c.accept(inc.set, inc.cfg, out)
		if err != nil {
			return nil, false, err
		}
		if repaired {
			changed = true
		}
	}
	if err := inc.rel.Append(out); err != nil {
		return nil, false, err
	}
	inc.accepted++
	if changed {
		inc.repaired++
	}
	return out, changed, nil
}

// accept checks the tuple against one component and repairs it in place
// when it FT-violates an accepted pattern. Returns whether it modified the
// tuple.
func (c *incComponent) accept(set *fd.Set, cfg *fd.DistConfig, t dataset.Tuple) (bool, error) {
	violates := false
	for f, i := range c.fdIdx {
		phi := set.FDs[i]
		k := t.Key(phi.Attrs())
		if c.keys[f][k] {
			continue // exact existing pattern: consistent by construction
		}
		pm := cfg.AcquirePairMatcher(phi, t)
		for _, p := range c.patterns[f] {
			if _, within := pm.DistWithin(set.Tau[i], p); within {
				violates = true
				break
			}
		}
		pm.Release()
		if violates {
			break
		}
	}
	if !violates {
		// Genuinely new patterns: accept and extend the state.
		c.absorb(set, t)
		return false, nil
	}
	tg, err := c.nearestTarget(set, cfg, t)
	if err != nil {
		return false, err
	}
	changed := false
	for j, col := range tg.Cols {
		if t[col] != tg.Vals[j] {
			t[col] = tg.Vals[j]
			changed = true
		}
	}
	return changed, nil
}

// nearestTarget finds the closest accepted join-target for t. Single-FD
// components search the memoized tree prefix plus a linear scan of the
// fresh tail (refolding past incFreshFold); multi-FD components rebuild
// the joined tree when dirty.
func (c *incComponent) nearestTarget(set *fd.Set, cfg *fd.DistConfig, t dataset.Tuple) (targettree.Target, error) {
	if len(c.fdIdx) == 1 {
		return c.nearestSingle(set, cfg, t)
	}
	if c.treeDirty {
		tree, err := c.buildTree(set)
		if err != nil {
			return targettree.Target{}, err
		}
		c.tree = tree
		c.treeDirty = false
	}
	rs := cfg.AcquireRepairScorer(t)
	tg, _, _ := c.tree.Nearest(t, rs.RepairDist, nil)
	rs.Release()
	return tg, nil
}

// nearestSingle is the single-FD search: best of the tree over the folded
// prefix and a scan of the fresh tail. The tree wins distance ties, so a
// refold never changes which of two equidistant targets is picked away
// from the earlier-accepted one.
func (c *incComponent) nearestSingle(set *fd.Set, cfg *fd.DistConfig, t dataset.Tuple) (targettree.Target, error) {
	if len(c.patterns[0])-c.treeBuilt > incFreshFold {
		tree, err := c.buildTree(set)
		if err != nil {
			return targettree.Target{}, err
		}
		c.tree = tree
		c.treeBuilt = len(c.patterns[0])
		c.treeDirty = false
	}
	attrs := set.FDs[c.fdIdx[0]].Attrs()
	rs := cfg.AcquireRepairScorer(t)
	defer rs.Release()
	var best targettree.Target
	bestDist := -1.0
	if c.treeBuilt > 0 {
		tg, d, _ := c.tree.Nearest(t, rs.RepairDist, nil)
		best, bestDist = tg, d
	}
	for _, p := range c.patterns[0][c.treeBuilt:] {
		var d float64
		for _, col := range attrs {
			d += rs.RepairDist(col, t[col], p[col])
		}
		if bestDist < 0 || d < bestDist {
			best = targettree.Target{Cols: attrs, Vals: p.Project(attrs)}
			bestDist = d
		}
	}
	return best, nil
}

func (c *incComponent) buildTree(set *fd.Set) (*targettree.Tree, error) {
	c.treeBuilds++
	levels := make([]targettree.Level, len(c.fdIdx))
	for f, i := range c.fdIdx {
		attrs := set.FDs[i].Attrs()
		l := targettree.Level{Attrs: attrs}
		for _, p := range c.patterns[f] {
			l.Patterns = append(l.Patterns, p.Project(attrs))
		}
		levels[f] = l
	}
	return targettree.Build(levels)
}

// Relation returns the maintained relation (base plus accepted tuples).
// Callers must not modify it.
func (inc *Incremental) Relation() *dataset.Relation { return inc.rel }

// Stats reports how many tuples were appended and how many needed repair.
func (inc *Incremental) Stats() (accepted, repaired int) {
	return inc.accepted, inc.repaired
}

// TreeBuilds reports how many target-tree constructions the stream has
// paid for across components — the cost the fresh-tail memoization bounds.
func (inc *Incremental) TreeBuilds() int {
	n := 0
	for _, c := range inc.comps {
		n += c.treeBuilds
	}
	return n
}
