package repair_test

import (
	"fmt"
	"testing"

	"ftrepair/internal/dataset"
	"ftrepair/internal/eval"
	"ftrepair/internal/fd"
	"ftrepair/internal/repair"
)

func incrementalFixture(t *testing.T) (*repair.Incremental, *fd.Set, *fd.DistConfig) {
	t.Helper()
	dirty, _, set, cfg := citizensSet(t)
	res, err := repair.ExactM(dirty, set, cfg, repair.Options{})
	if err != nil {
		t.Fatal(err)
	}
	inc, err := repair.NewIncremental(res.Repaired, set, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return inc, set, cfg
}

func TestNewIncrementalRejectsInconsistentBase(t *testing.T) {
	dirty, _, set, cfg := citizensSet(t)
	if _, err := repair.NewIncremental(dirty, set, cfg); err == nil {
		t.Fatal("inconsistent base accepted")
	}
}

func TestIncrementalAcceptsCleanTuple(t *testing.T) {
	inc, set, cfg := incrementalFixture(t)
	// A tuple matching existing patterns exactly is accepted untouched.
	out, changed, err := inc.Add(dataset.Tuple{"Iris", "Bachelors", "3", "New York", "Main", "Manhattan", "NY"})
	if err != nil {
		t.Fatal(err)
	}
	if changed {
		t.Fatalf("clean tuple modified: %v", out)
	}
	if err := repair.VerifyFTConsistent(inc.Relation(), set, cfg); err != nil {
		t.Fatal(err)
	}
	accepted, repaired := inc.Stats()
	if accepted != 1 || repaired != 0 {
		t.Fatalf("stats = %d/%d", accepted, repaired)
	}
}

func TestIncrementalRepairsTypo(t *testing.T) {
	inc, set, cfg := incrementalFixture(t)
	// "Bostn" FT-violates the accepted (Boston, ...) patterns and repairs
	// toward them; the tuple's own evidence (Arlingto/Brookside/MA) pins
	// the right target.
	out, changed, err := inc.Add(dataset.Tuple{"Uwe", "HS-grad", "9", "Bostn", "Arlingto", "Brookside", "MA"})
	if err != nil {
		t.Fatal(err)
	}
	if !changed {
		t.Fatal("typo tuple accepted untouched")
	}
	city := inc.Relation().Schema.MustIndex("City")
	if out[city] != "Boston" {
		t.Fatalf("City = %q, want Boston", out[city])
	}
	if err := repair.VerifyFTConsistent(inc.Relation(), set, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestIncrementalAcceptsNovelPattern(t *testing.T) {
	inc, set, cfg := incrementalFixture(t)
	// A brand-new city far from everything extends the pattern sets.
	out, changed, err := inc.Add(dataset.Tuple{"Vik", "PhD", "12", "Sacramento", "Capitol", "Midtown", "CA"})
	if err != nil {
		t.Fatal(err)
	}
	if changed {
		t.Fatalf("novel tuple modified: %v", out)
	}
	// And a second tuple near the new pattern now repairs toward it.
	out2, changed2, err := inc.Add(dataset.Tuple{"Wen", "PhD", "12", "Sacramneto", "Capitol", "Midtown", "CA"})
	if err != nil {
		t.Fatal(err)
	}
	if !changed2 {
		t.Fatal("near-novel tuple accepted untouched")
	}
	city := inc.Relation().Schema.MustIndex("City")
	if out2[city] != "Sacramento" {
		t.Fatalf("City = %q, want Sacramento", out2[city])
	}
	if err := repair.VerifyFTConsistent(inc.Relation(), set, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestIncrementalArityCheck(t *testing.T) {
	inc, _, _ := incrementalFixture(t)
	if _, _, err := inc.Add(dataset.Tuple{"too", "short"}); err == nil {
		t.Fatal("wrong arity accepted")
	}
}

func TestIncrementalTreeBuildsBounded(t *testing.T) {
	// Alternate novel patterns (each dirties the tree) with violating
	// tuples (each needs a nearest-target search). The fresh-tail
	// memoization must not rebuild the tree per violation: builds stay
	// bounded by patterns/incFreshFold-ish, not by the violation count.
	schema := dataset.MustSchema(
		dataset.Attribute{Name: "City", Type: dataset.String},
		dataset.Attribute{Name: "State", Type: dataset.String},
	)
	rel := dataset.NewRelation(schema)
	if err := rel.Append(dataset.Tuple{"Boston", "MA"}); err != nil {
		t.Fatal(err)
	}
	f, err := fd.Parse(schema, "City -> State")
	if err != nil {
		t.Fatal(err)
	}
	set, err := fd.NewSet([]*fd.FD{f}, 0.3)
	if err != nil {
		t.Fatal(err)
	}
	cfg, err := fd.NewDistConfig(rel, 0.7, 0.3)
	if err != nil {
		t.Fatal(err)
	}
	inc, err := repair.NewIncremental(rel, set, cfg)
	if err != nil {
		t.Fatal(err)
	}
	const rounds = 300
	for i := 0; i < rounds; i++ {
		// A novel pattern extends the state. Tripling two base-26 digits
		// keeps every pair of names >= 3 edits apart (normalized 0.5, past
		// the city budget tau/wl = 0.43) while a 1-char typo stays at 1/6.
		a, b := rune('a'+i/26), rune('a'+i%26)
		city := fmt.Sprintf("%c%c%c%c%c%c", a, a, a, b, b, b)
		if _, changed, err := inc.Add(dataset.Tuple{city, "ZZ"}); err != nil || changed {
			t.Fatalf("novel tuple %d: changed=%v err=%v", i, changed, err)
		}
		// ...and a typo of it violates and repairs toward it.
		typo := city[:len(city)-1]
		out, changed, err := inc.Add(dataset.Tuple{typo, "ZZ"})
		if err != nil || !changed {
			t.Fatalf("typo tuple %d: changed=%v err=%v", i, changed, err)
		}
		if out[0] != city {
			t.Fatalf("typo %d repaired to %q, want %q", i, out[0], city)
		}
	}
	builds := inc.TreeBuilds()
	if builds == 0 {
		t.Fatal("no tree was ever built despite violations")
	}
	// Pre-fix behavior rebuilt once per violation (~rounds builds); the
	// fold threshold of 64 fresh patterns caps it near rounds/64.
	if builds > rounds/8 {
		t.Fatalf("tree built %d times over %d violations — memoization is not deferring", builds, rounds)
	}
	if err := repair.VerifyFTConsistent(inc.Relation(), set, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestIncrementalStreamStaysConsistent(t *testing.T) {
	// Repair a HOSP prefix, then stream the (dirty) remainder through the
	// incremental path; the result must stay FT-consistent throughout.
	inst, err := eval.Prepare(eval.Setup{Workload: "hosp", N: 600, ErrorRate: 0.05, Seed: 13})
	if err != nil {
		t.Fatal(err)
	}
	split := 400
	prefix := &dataset.Relation{Schema: inst.Dirty.Schema, Tuples: inst.Dirty.Tuples[:split]}
	res, err := repair.GreedyM(prefix, inst.Set, inst.Cfg, repair.Options{})
	if err != nil {
		t.Fatal(err)
	}
	inc, err := repair.NewIncremental(res.Repaired, inst.Set, inst.Cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, tp := range inst.Dirty.Tuples[split:] {
		if _, _, err := inc.Add(tp); err != nil {
			t.Fatal(err)
		}
	}
	if err := repair.VerifyFTConsistent(inc.Relation(), inst.Set, inst.Cfg); err != nil {
		t.Fatal(err)
	}
	accepted, repaired := inc.Stats()
	if accepted != inst.Dirty.Len()-split {
		t.Fatalf("accepted = %d", accepted)
	}
	if repaired == 0 {
		t.Fatal("no streamed tuple needed repair despite 5% noise")
	}
	t.Logf("streamed %d tuples, repaired %d", accepted, repaired)
	// Quality of the streamed region should be meaningful: most streamed
	// dirty cells whose patterns exist in the standing data get fixed.
	full := inc.Relation()
	q, err := eval.Evaluate(inst.Clean, inst.Dirty, full, eval.Options{})
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("overall P=%.3f R=%.3f", q.Precision, q.Recall)
}
