package repair

import (
	"math"

	"ftrepair/internal/dataset"
	"ftrepair/internal/fd"
	"ftrepair/internal/vgraph"
)

// jointTraceHook, when set (tests only), observes every Eq-12 candidate
// score computation of the joint greedy growth (both the naive and the
// heap path evaluate each (FD, vertex) candidate through tupleCost).
var jointTraceHook func(fdIndex, vertex int, cost float64)

// jointState is the shared growth state of Algorithm 4 (§4.4): one
// independent set per FD growing interleaved, plus the Eq-12 cost model
// with its cross-FD synchronization term. The naive rescan
// (jointGreedySetsNaive) and the heap path (jointGreedySets) drive the
// same state, so their candidate scores are bitwise equal by construction.
type jointState struct {
	rel    *dataset.Relation
	graphs []*vgraph.Graph
	inSet  [][]bool
	// blocked[i][v]: v conflicts with FD i's chosen set.
	blocked [][]bool
	sets    [][]int
	// overlaps[i] lists the FDs j != i sharing an attribute with i.
	overlaps [][]int
	// violCache memoizes ViolatorCount per FD by projection key, since
	// hypothetical repairs repeatedly produce the same patterns.
	violCache []map[string]int
	scratch   dataset.Tuple
	// minOmega[i][v]: the floor of v's repair cost in FD i if excluded,
	// under the same multiplicity restriction bestRepairCost applies
	// (falling back to the overall cheapest edge when no neighbor is
	// frequent enough).
	minOmega [][]float64
	added    int
}

func newJointState(rel *dataset.Relation, graphs []*vgraph.Graph) *jointState {
	n := len(graphs)
	js := &jointState{
		rel:       rel,
		graphs:    graphs,
		inSet:     make([][]bool, n),
		blocked:   make([][]bool, n),
		sets:      make([][]int, n),
		overlaps:  make([][]int, n),
		violCache: make([]map[string]int, n),
		scratch:   make(dataset.Tuple, rel.Schema.Len()),
		minOmega:  make([][]float64, n),
	}
	for i, g := range graphs {
		js.inSet[i] = make([]bool, len(g.Vertices))
		js.blocked[i] = make([]bool, len(g.Vertices))
		js.violCache[i] = make(map[string]int)
		for j := range graphs {
			if i != j && g.FD.SharesAttrs(graphs[j].FD) {
				js.overlaps[i] = append(js.overlaps[i], j)
			}
		}
		js.minOmega[i] = make([]float64, len(g.Vertices))
		for v := range g.Vertices {
			best := math.Inf(1)
			restricted := math.Inf(1)
			for _, e := range g.Neighbors(v) {
				if e.W < best {
					best = e.W
				}
				if g.Vertices[e.To].Mult() >= g.Vertices[v].Mult() && e.W < restricted {
					restricted = e.W
				}
			}
			switch {
			case !math.IsInf(restricted, 1):
				js.minOmega[i][v] = restricted
			case !math.IsInf(best, 1):
				js.minOmega[i][v] = best
			}
		}
	}
	return js
}

// valid reports whether vertex v of FD i is still a candidate.
func (js *jointState) valid(i, v int) bool { return !js.inSet[i][v] && !js.blocked[i][v] }

func (js *jointState) violators(j int, t dataset.Tuple) int {
	k := t.Key(js.graphs[j].FD.Attrs())
	if c, ok := js.violCache[j][k]; ok {
		return c
	}
	c := js.graphs[j].ViolatorCount(t)
	js.violCache[j][k] = c
	return c
}

// syncDelta scores the cross-FD effect of repairing row r's FD-i
// attributes to the pattern of vertex w: for every overlapping FD j,
// (violations of the row's new j-projection) minus (violations of its
// old one). The old pattern still counts as a violator of the new one
// unless the row was its only carrier.
func (js *jointState) syncDelta(i, row, w int) int {
	delta := 0
	rowTuple := js.rel.Tuples[row]
	wRep := js.graphs[i].Vertices[w].Rep
	scratch := js.scratch
	for _, j := range js.overlaps[i] {
		gj := js.graphs[j]
		// Build the row's hypothetical tuple after the FD-i repair.
		copy(scratch, rowTuple)
		changed := false
		for _, c := range js.graphs[i].FD.Attrs() {
			if scratch[c] != wRep[c] {
				scratch[c] = wRep[c]
				changed = true
			}
		}
		if !changed {
			continue
		}
		oldV, ok := gj.Lookup(rowTuple)
		if !ok {
			continue // cannot happen: every row has a pattern vertex
		}
		// Did the j-projection actually change?
		same := true
		for _, c := range gj.FD.Attrs() {
			if scratch[c] != rowTuple[c] {
				same = false
				break
			}
		}
		if same {
			continue
		}
		newViol := js.violators(j, scratch)
		if gj.Vertices[oldV].Mult() == 1 && gj.FTAdjacent(scratch, oldV) {
			// The old pattern is vacated by this repair, so it no
			// longer counts as a triggered violation.
			newViol--
		}
		delta += newViol - gj.Degree(oldV)
	}
	return delta
}

// bestRepairCost picks, per row of doomed vertex u (FD i), the target
// w minimizing (syncDelta, weight) among the allowed targets — the
// candidate v itself, members of the set, or vertices not in conflict
// with the set — and returns the summed repair weight (Eq. 12).
//
// Targets are additionally restricted to multiplicity at least u's own:
// repairs flow toward equally or more frequent patterns. Without this,
// the cost model's absorption property (see DESIGN.md §6) lets a
// one-tuple typo become the designated repair target of the
// high-multiplicity pattern it derives from, and the joint greedy then
// dooms the legitimate pattern "for free".
func (js *jointState) bestRepairCost(i, u, v int) float64 {
	g := js.graphs[i]
	uMult := g.Vertices[u].Mult()
	type choice struct {
		w  int
		wt float64
	}
	var allowed []choice
	for _, e := range g.Neighbors(u) {
		w := e.To
		if g.Vertices[w].Mult() < uMult {
			continue
		}
		if w != v {
			if js.blocked[i][w] {
				continue // conflicts with the chosen set
			}
			if _, adj := g.Edge(w, v); adj {
				continue // conflicts with the candidate
			}
		}
		allowed = append(allowed, choice{w, e.W})
	}
	if len(allowed) == 0 {
		// No frequent-enough target: account the doom as a repair to
		// the candidate itself. This is what makes dooming a
		// high-multiplicity pattern expensive for a junk candidate.
		if w, ok := g.Edge(u, v); ok {
			return float64(uMult) * w
		}
		// u is doomed but not adjacent to v (cannot happen: u comes
		// from N(v)); fall back to the cheapest neighbor.
		best := math.Inf(1)
		for _, e := range g.Neighbors(u) {
			if e.W < best {
				best = e.W
			}
		}
		return float64(uMult) * best
	}
	var total float64
	for _, row := range g.Vertices[u].Rows {
		bestWt := math.Inf(1)
		bestSync := 1 << 30
		for _, c := range allowed {
			s := js.syncDelta(i, row, c.w)
			if s < bestSync || (s == bestSync && c.wt < bestWt) {
				bestSync, bestWt = s, c.wt
			}
		}
		total += bestWt
	}
	return total
}

// tupleCost is Eq. 12 for candidate v of FD i — the best-repair cost of
// every neighbor this addition newly dooms, normalized by each
// neighbor's unavoidable floor — minus the candidate's own avoided
// repair cost (the same normalization GreedyS uses; see greedySetNaive).
func (js *jointState) tupleCost(i, v int) float64 {
	g := js.graphs[i]
	var total float64
	for _, e := range g.Neighbors(v) {
		if !js.blocked[i][e.To] && !js.inSet[i][e.To] {
			total += js.bestRepairCost(i, e.To, v) - float64(g.Vertices[e.To].Mult())*js.minOmega[i][e.To]
		}
	}
	total -= float64(g.Vertices[v].Mult()) * js.minOmega[i][v]
	if jointTraceHook != nil {
		jointTraceHook(i, v, total)
	}
	return total
}

// takeOver replicates the naive selection comparison: candidate (i, v)
// with cost c displaces the incumbent (bestI, bestV) at bestCost when it
// is cheaper beyond fd.Eps, or within eps with strictly higher
// multiplicity (then FD order, then id — the scan order), or when there is
// no incumbent yet.
func (js *jointState) takeOver(c float64, i, v int, bestCost float64, bestI, bestV int) bool {
	take := c < bestCost-fd.Eps
	if !take && c <= bestCost+fd.Eps && bestI >= 0 {
		// Exact ties break toward higher multiplicity (see
		// greedyScorer.better), then FD order, then id.
		mv, mb := js.graphs[i].Vertices[v].Mult(), js.graphs[bestI].Vertices[bestV].Mult()
		take = mv > mb
	}
	return take || bestI < 0
}

// add commits vertex v to FD i's set, dooms its unchosen neighbors, and
// reports every candidate whose cached cost may have changed through mark.
// A candidate's cost reads the blocked status of its neighbors' allowed
// targets — vertices up to two hops from the candidate — and blocking
// reaches one hop from v, so costs within three hops of v can change.
func (js *jointState) add(i, v int, mark func(fdIdx, u int)) {
	g := js.graphs[i]
	js.inSet[i][v] = true
	js.sets[i] = append(js.sets[i], v)
	js.added++
	for _, e := range g.Neighbors(v) {
		if !js.inSet[i][e.To] {
			js.blocked[i][e.To] = true
		}
	}
	for _, e := range g.Neighbors(v) {
		mark(i, e.To)
		for _, e2 := range g.Neighbors(e.To) {
			mark(i, e2.To)
			for _, e3 := range g.Neighbors(e2.To) {
				mark(i, e3.To)
			}
		}
	}
}

// jointGreedySets grows one independent set per FD, interleaved (§4.4,
// Algorithm 4), on the indexed-heap growth path. Each step adds the
// (FD, pattern) candidate with the smallest tuple cost (Eq. 12): the cost
// of repairing the candidate's newly-doomed neighbors to their per-row
// best targets, where a row's best target is chosen to maximize violations
// eliminated minus violations triggered across the connected FDs (ties
// broken by repair weight). This is what lets the same doomed pattern
// repair differently in different tuples — (Boston, NY) becomes
// (New York, NY) in t5 but (Boston, MA) in t10 of the running example.
// Output is bit-identical to jointGreedySetsNaive on any input.
func jointGreedySets(rel *dataset.Relation, graphs []*vgraph.Graph, cancel <-chan struct{}) [][]int {
	js := newJointState(rel, graphs)
	ver := make([][]uint32, len(graphs))
	total := 0
	for i, g := range graphs {
		ver[i] = make([]uint32, len(g.Vertices))
		total += len(g.Vertices)
	}
	h := make(scoreHeap, 0, total)
	for i, g := range graphs {
		for v := range g.Vertices {
			h = append(h, scoreEntry{score: js.tupleCost(i, v), mult: g.Vertices[v].Mult(), fd: i, id: v})
		}
	}
	h.init()
	live := func(e scoreEntry) bool { return e.ver == ver[e.fd][e.id] && js.valid(e.fd, e.id) }
	// stamp dedupes the three-hop rescore walk within one round.
	stamp := make([][]int, len(graphs))
	for i, g := range graphs {
		stamp[i] = make([]int, len(g.Vertices))
		for v := range stamp[i] {
			stamp[i][v] = -1
		}
	}
	round := 0
	rescore := func(fdIdx, u int) {
		if stamp[fdIdx][u] == round {
			return
		}
		stamp[fdIdx][u] = round
		if !js.valid(fdIdx, u) {
			return
		}
		ver[fdIdx][u]++
		h.push(scoreEntry{
			score: js.tupleCost(fdIdx, u),
			mult:  js.graphs[fdIdx].Vertices[u].Mult(),
			fd:    fdIdx,
			id:    u,
			ver:   ver[fdIdx][u],
		})
	}
	for {
		if greedyStepHook != nil {
			greedyStepHook(js.added)
		}
		if canceled(cancel) {
			break
		}
		cands := h.popClosure(live)
		if cands == nil {
			break
		}
		// Replay the naive selection over the closure in naive scan order:
		// FD index, then vertex id.
		sortEntriesByFDID(cands)
		bestI, bestV := -1, -1
		bestCost := math.Inf(1)
		var bestK int
		for k, e := range cands {
			if js.takeOver(e.score, e.fd, e.id, bestCost, bestI, bestV) {
				bestI, bestV, bestCost, bestK = e.fd, e.id, e.score, k
			}
		}
		for k, e := range cands {
			if k != bestK {
				h.push(e)
			}
		}
		round++
		js.add(bestI, bestV, rescore)
	}
	return js.sets
}

// jointGreedySetsNaive is the retained reference implementation of the
// joint greedy growth: every round rescans every unchosen candidate of
// every FD, caching Eq-12 costs and recomputing only those within three
// hops of the previous addition. It anchors the heap path's equivalence
// tests and the repairbench speedup series.
func jointGreedySetsNaive(rel *dataset.Relation, graphs []*vgraph.Graph, cancel <-chan struct{}) [][]int {
	js := newJointState(rel, graphs)
	cost := make([][]float64, len(graphs))
	dirty := make([][]bool, len(graphs))
	for i, g := range graphs {
		cost[i] = make([]float64, len(g.Vertices))
		dirty[i] = make([]bool, len(g.Vertices))
		for v := range dirty[i] {
			dirty[i][v] = true
		}
	}
	mark := func(fdIdx, u int) { dirty[fdIdx][u] = true }
	for {
		if greedyStepHook != nil {
			greedyStepHook(js.added)
		}
		if canceled(cancel) {
			break
		}
		bestI, bestV := -1, -1
		bestCost := math.Inf(1)
		for i := range graphs {
			for v := range graphs[i].Vertices {
				if !js.valid(i, v) {
					continue
				}
				if dirty[i][v] {
					cost[i][v] = js.tupleCost(i, v)
					dirty[i][v] = false
				}
				if js.takeOver(cost[i][v], i, v, bestCost, bestI, bestV) {
					bestI, bestV, bestCost = i, v, cost[i][v]
				}
			}
		}
		if bestI < 0 {
			break
		}
		js.add(bestI, bestV, mark)
	}
	return js.sets
}
