package repair_test

import (
	"testing"

	"ftrepair/internal/dataset"
	"ftrepair/internal/eval"
	"ftrepair/internal/ledger"
	"ftrepair/internal/repair"
)

// runLedgered runs a multi-FD algorithm with a fresh ledger attached.
func runLedgered(t *testing.T, algo multiAlgo, inst *eval.Instance, parallel int) (*repair.Result, *ledger.Ledger) {
	t.Helper()
	led := ledger.New()
	res, err := algo(inst.Dirty, inst.Set, inst.Cfg, repair.Options{Parallel: parallel, Ledger: led})
	if err != nil {
		t.Fatalf("Parallel=%d: %v", parallel, err)
	}
	return res, led
}

// TestLedgerRunRootDeterministicAcrossWorkers is the tamper-evidence
// analogue of TestMultiDeterministicAcrossWorkers: the chained run root —
// which commits to every event byte, including the per-cell justifications
// and worker lanes — must be bit-identical at every Parallel setting. Runs
// under the race CI job, so the per-component event buffers double as a
// data-race probe.
func TestLedgerRunRootDeterministicAcrossWorkers(t *testing.T) {
	inst, err := eval.Prepare(eval.Setup{Workload: "hosp", N: 400, ErrorRate: 0.06, Seed: 17})
	if err != nil {
		t.Fatal(err)
	}
	exactInst, err := eval.Prepare(eval.Setup{Workload: "hosp", N: 120, FDs: 4, ErrorRate: 0.03, Seed: 17})
	if err != nil {
		t.Fatal(err)
	}
	algos := []struct {
		name string
		inst *eval.Instance
		run  multiAlgo
	}{
		{"ExactM", exactInst, repair.ExactM},
		{"ApproM", inst, repair.ApproM},
		{"GreedyM", inst, repair.GreedyM},
	}
	for _, algo := range algos {
		var ref string
		for _, parallel := range []int{0, 1, 2, 8} {
			res, led := runLedgered(t, algo.run, algo.inst, parallel)
			if led.Len() == 0 {
				t.Fatalf("%s: ledger is empty; instance too clean to test determinism", algo.name)
			}
			if led.Len() != len(res.Changed) {
				// One event per applied write; on these instances no cell is
				// written twice, so events and changed cells line up 1:1.
				t.Fatalf("%s Parallel=%d: %d events for %d changed cells",
					algo.name, parallel, led.Len(), len(res.Changed))
			}
			root := led.RunRootHex()
			if ref == "" {
				ref = root
				continue
			}
			if root != ref {
				t.Fatalf("%s Parallel=%d: run root %s != reference %s", algo.name, parallel, root, ref)
			}
		}
	}
}

// TestLedgerSingleFDJustifiedAndDeterministic covers ExactS and GreedyS on
// the paper's Citizens instance: repeated runs produce the same run root,
// and every event carries the §3 pattern-repair justification (the FD and
// the violation edge's in-set endpoint).
func TestLedgerSingleFDJustifiedAndDeterministic(t *testing.T) {
	dirty, _, f, cfg, tau := phi1Fixture(t)
	for _, algo := range []struct {
		name string
		run  func(opts repair.Options) (*repair.Result, error)
	}{
		{"ExactS", func(opts repair.Options) (*repair.Result, error) {
			return repair.ExactS(dirty, f, cfg, tau, opts)
		}},
		{"GreedyS", func(opts repair.Options) (*repair.Result, error) {
			return repair.GreedyS(dirty, f, cfg, tau, opts)
		}},
	} {
		var ref string
		for _, parallel := range []int{0, 1, 2, 8} {
			led := ledger.New()
			res, err := algo.run(repair.Options{Parallel: parallel, Ledger: led})
			if err != nil {
				t.Fatalf("%s: %v", algo.name, err)
			}
			if led.Len() == 0 || led.Len() != len(res.Changed) {
				t.Fatalf("%s: %d events for %d changed cells", algo.name, led.Len(), len(res.Changed))
			}
			for _, e := range led.Events() {
				if e.FD == "" || e.EdgeTo == "" || e.Old == e.New || e.Algorithm != res.Algorithm {
					t.Fatalf("%s: event lacks justification: %+v", algo.name, e)
				}
				if e.CostDelta <= 0 {
					t.Fatalf("%s: event seq %d has cost delta %v", algo.name, e.Seq, e.CostDelta)
				}
			}
			root := led.RunRootHex()
			if ref == "" {
				ref = root
			} else if root != ref {
				t.Fatalf("%s Parallel=%d: run root %s != reference %s", algo.name, parallel, root, ref)
			}
		}
	}
}

// TestLedgerReplayAndUndoRoundTrip checks the ledger's core contract: the
// events replayed forward over the dirty input reproduce the repaired
// relation, and the replay-verified undo reproduces the dirty input — each
// event's Old is the value the write actually overwrote.
func TestLedgerReplayAndUndoRoundTrip(t *testing.T) {
	inst, err := eval.Prepare(eval.Setup{Workload: "hosp", N: 400, ErrorRate: 0.06, Seed: 17})
	if err != nil {
		t.Fatal(err)
	}
	for _, algo := range []struct {
		name string
		run  multiAlgo
	}{{"GreedyM", repair.GreedyM}, {"ApproM", repair.ApproM}} {
		res, led := runLedgered(t, algo.run, inst, 4)
		events := led.Events()

		// Forward replay: every event's Old must match the cell it found.
		replayed := inst.Dirty.Clone()
		for _, e := range events {
			if got := replayed.Tuples[e.Row][e.Col]; got != e.Old {
				t.Fatalf("%s: replay seq %d found %q, event recorded old %q", algo.name, e.Seq, got, e.Old)
			}
			replayed.Tuples[e.Row][e.Col] = e.New
		}
		cells, err := dataset.Diff(replayed, res.Repaired)
		if err != nil || len(cells) != 0 {
			t.Fatalf("%s: forward replay deviates from the repair at %v (%v)", algo.name, cells, err)
		}

		// Reverse replay: full undo reproduces the pre-repair relation.
		reverted, err := ledger.Undo(res.Repaired, events, 0)
		if err != nil {
			t.Fatalf("%s: undo: %v", algo.name, err)
		}
		cells, err = dataset.Diff(reverted, inst.Dirty)
		if err != nil || len(cells) != 0 {
			t.Fatalf("%s: undo deviates from the input at %v (%v)", algo.name, cells, err)
		}
	}
}

// TestLedgerCanceledRunCommitsAppliedWork submits a canceled run and checks
// the partial repair is still fully ledgered: whatever was applied can be
// undone back to the input.
func TestLedgerCanceledRunCommitsAppliedWork(t *testing.T) {
	inst, err := eval.Prepare(eval.Setup{Workload: "hosp", N: 400, ErrorRate: 0.06, Seed: 17})
	if err != nil {
		t.Fatal(err)
	}
	cancel := make(chan struct{})
	close(cancel)
	led := ledger.New()
	res, err := repair.GreedyM(inst.Dirty, inst.Set, inst.Cfg, repair.Options{Cancel: cancel, Ledger: led})
	if err == nil || res == nil {
		t.Fatalf("expected a canceled partial result, got res=%v err=%v", res, err)
	}
	if led.Len() != len(res.Changed) {
		t.Fatalf("%d events for %d applied cells", led.Len(), len(res.Changed))
	}
	reverted, uerr := ledger.Undo(res.Repaired, led.Events(), 0)
	if uerr != nil {
		t.Fatal(uerr)
	}
	cells, derr := dataset.Diff(reverted, inst.Dirty)
	if derr != nil || len(cells) != 0 {
		t.Fatalf("undo of the partial run deviates from the input at %v (%v)", cells, derr)
	}
}

// BenchmarkLedgerOverhead measures the full GreedyM repair with and without
// a ledger attached; the delta is the per-run cost of provenance capture and
// Merkle hashing (acceptance target: under a few percent).
func BenchmarkLedgerOverhead(b *testing.B) {
	inst, err := eval.Prepare(eval.Setup{Workload: "hosp", N: 1000, ErrorRate: 0.06, Seed: 17})
	if err != nil {
		b.Fatal(err)
	}
	b.Run("off", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := repair.GreedyM(inst.Dirty, inst.Set, inst.Cfg, repair.Options{}); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("on", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := repair.GreedyM(inst.Dirty, inst.Set, inst.Cfg, repair.Options{Ledger: ledger.New()}); err != nil {
				b.Fatal(err)
			}
		}
	})
}
