package repair

import (
	"errors"
	"fmt"
	"math"
	"runtime"
	"sync"
	"time"

	"ftrepair/internal/dataset"
	"ftrepair/internal/fd"
	"ftrepair/internal/mis"
	"ftrepair/internal/targettree"
	"ftrepair/internal/vgraph"
)

// ErrTooManyMIS is returned (wrapped) when ExactM's enumeration exceeds
// Options.MaxMISPerFD or the combination budget; the instance should be
// repaired with ApproM or GreedyM instead.
var ErrTooManyMIS = fmt.Errorf("repair: too many maximal independent sets for exact repair")

// maxCombos bounds the Cartesian product ExactM is willing to evaluate.
const maxCombos = 1 << 20

// ExactM repairs rel w.r.t. a set of FDs optimally (§4.2): per connected
// component of the FD graph, it enumerates the maximal independent sets of
// every FD's violation graph, joins each combination into targets, assigns
// every tuple its nearest target, and keeps the cheapest combination.
// Combinations are abandoned as soon as their accumulated cost exceeds the
// best known one, which plays the role of the paper's bound-based pruning
// while remaining exact.
func ExactM(rel *dataset.Relation, set *fd.Set, cfg *fd.DistConfig, opts Options) (*Result, error) {
	return multiRepair(rel, set, cfg, opts, "ExactM", exactComponent)
}

// ApproM repairs rel w.r.t. a set of FDs with the §4.3 heuristic: the
// single-FD greedy algorithm picks one independent set per FD
// independently; the sets are joined and every tuple repairs to its nearest
// target.
func ApproM(rel *dataset.Relation, set *fd.Set, cfg *fd.DistConfig, opts Options) (*Result, error) {
	return multiRepair(rel, set, cfg, opts, "ApproM", approComponent)
}

// GreedyM repairs rel w.r.t. a set of FDs with the §4.4 joint greedy: the
// per-FD independent sets grow interleaved, each step adding the globally
// cheapest pattern where the cost includes a cross-FD synchronization term
// (patterns conflicting on shared attributes with already-chosen patterns
// of connected FDs are penalized by the extra repair distance they would
// force).
func GreedyM(rel *dataset.Relation, set *fd.Set, cfg *fd.DistConfig, opts Options) (*Result, error) {
	return multiRepair(rel, set, cfg, opts, "GreedyM", greedyComponent)
}

// jointTraceHook, when set (tests only), observes every candidate score
// evaluation of jointGreedySets' selection loop.
var jointTraceHook func(fdIndex, vertex int, cost float64)

// componentFunc repairs one connected component of the FD graph in place.
type componentFunc func(rel, out *dataset.Relation, sub *fd.Set, cfg *fd.DistConfig, opts Options, stats map[string]int) error

func multiRepair(rel *dataset.Relation, set *fd.Set, cfg *fd.DistConfig, opts Options, name string, repairComp componentFunc) (*Result, error) {
	start := time.Now()
	snap := snapCacheStats(cfg)
	out := rel.Clone()
	stats := make(map[string]int)
	comps := set.Components()
	// partial finishes the result over whatever components committed before
	// a cancellation and surfaces the typed error alongside it.
	partial := func() (*Result, error) {
		addCacheStats(stats, cfg, snap)
		res, ferr := finish(rel, out, cfg, name, start, stats)
		if ferr != nil {
			return nil, ferr
		}
		return res, ErrCanceled
	}
	if opts.Parallel >= 2 && len(comps) > 1 {
		if err := repairComponentsParallel(rel, out, set, cfg, opts, stats, comps, repairComp); err != nil {
			if errors.Is(err, ErrCanceled) {
				return partial()
			}
			return nil, err
		}
	} else {
		for _, comp := range comps {
			if canceled(opts.Cancel) {
				return partial()
			}
			sub := set.Subset(comp)
			if err := repairComp(rel, out, sub, cfg, opts, stats); err != nil {
				if errors.Is(err, ErrCanceled) {
					return partial()
				}
				return nil, err
			}
		}
	}
	addCacheStats(stats, cfg, snap)
	return finish(rel, out, cfg, name, start, stats)
}

// repairComponentsParallel runs component repairs on up to opts.Parallel
// goroutines. Components write disjoint attribute columns of out, so the
// repairs commute; stats merge under a lock.
func repairComponentsParallel(rel, out *dataset.Relation, set *fd.Set, cfg *fd.DistConfig, opts Options, stats map[string]int, comps [][]int, repairComp componentFunc) error {
	sem := make(chan struct{}, opts.Parallel)
	errs := make(chan error, len(comps))
	var mu sync.Mutex
	var wg sync.WaitGroup
	for _, comp := range comps {
		if canceled(opts.Cancel) {
			// Stop submitting; in-flight workers observe the same channel
			// and unwind on their own.
			break
		}
		comp := comp
		wg.Add(1)
		sem <- struct{}{}
		go func() {
			defer wg.Done()
			defer func() { <-sem }()
			local := make(map[string]int)
			err := repairComp(rel, out, set.Subset(comp), cfg, opts, local)
			if err != nil {
				errs <- err
				return
			}
			mu.Lock()
			for k, v := range local {
				stats[k] += v
			}
			mu.Unlock()
		}()
	}
	wg.Wait()
	close(errs)
	// Prefer a real failure over a cancellation when both occurred.
	var firstCancel error
	for err := range errs {
		if errors.Is(err, ErrCanceled) {
			firstCancel = err
			continue
		}
		return err
	}
	if firstCancel == nil && canceled(opts.Cancel) {
		// The submission loop stopped before any worker noticed; surface
		// the cancellation instead of a silently partial repair.
		firstCancel = ErrCanceled
	}
	return firstCancel
}

func buildGraphs(rel *dataset.Relation, sub *fd.Set, cfg *fd.DistConfig, opts Options) []*vgraph.Graph {
	gopts := graphOpts(opts)
	graphs := make([]*vgraph.Graph, len(sub.FDs))
	if len(sub.FDs) == 1 {
		graphs[0] = vgraph.Build(rel, sub.FDs[0], cfg, sub.Tau[0], gopts)
		return graphs
	}
	// Per-FD graphs are independent and Build is deterministic regardless of
	// scheduling, so the builds always fan out; opts.Parallel only gates
	// component-repair concurrency, which does commit order-sensitive work.
	workers := runtime.GOMAXPROCS(0)
	if workers > len(sub.FDs) {
		workers = len(sub.FDs)
	}
	sem := make(chan struct{}, workers)
	var wg sync.WaitGroup
	for i, f := range sub.FDs {
		i, f := i, f
		if canceled(opts.Cancel) {
			// Canceled: fill the remaining slots inline. With a fired Cancel
			// threaded into gopts, Build stops verifying pairs immediately
			// and returns a vertex-only graph, so no slot is ever nil and
			// callers surface the cancellation themselves.
			graphs[i] = vgraph.Build(rel, f, cfg, sub.Tau[i], gopts)
			continue
		}
		wg.Add(1)
		sem <- struct{}{}
		go func() {
			defer wg.Done()
			defer func() { <-sem }()
			graphs[i] = vgraph.Build(rel, f, cfg, sub.Tau[i], gopts)
		}()
	}
	wg.Wait()
	return graphs
}

// exactComponent implements Algorithm 3 for one component.
func exactComponent(rel, out *dataset.Relation, sub *fd.Set, cfg *fd.DistConfig, opts Options, stats map[string]int) error {
	graphs := buildGraphs(rel, sub, cfg, opts)
	if len(sub.FDs) == 1 {
		// Single-FD component: the expansion algorithm is optimal
		// (Theorem 5) and far cheaper than enumeration + join.
		res, err := mis.BestMIS(graphs[0], mis.Options{
			DisablePruning: opts.DisablePruning,
			NaturalOrder:   opts.NaturalOrder,
			MaxNodes:       opts.MaxNodes,
			Cancel:         opts.Cancel,
		})
		if errors.Is(err, mis.ErrCanceled) {
			return ErrCanceled
		}
		if err != nil {
			return err
		}
		stats["nodes"] += res.NodesExplored
		applyInPlace(out, graphs[0], repairTargets(graphs[0], res.Set))
		return nil
	}

	families := make([][][]int, len(sub.FDs))
	combos := 1
	for i, g := range graphs {
		if canceled(opts.Cancel) {
			return ErrCanceled
		}
		families[i] = mis.EnumerateMaximal(g)
		if opts.MaxMISPerFD > 0 && len(families[i]) > opts.MaxMISPerFD {
			return fmt.Errorf("%w: %d sets for %s (cap %d)", ErrTooManyMIS, len(families[i]), sub.FDs[i], opts.MaxMISPerFD)
		}
		combos *= len(families[i])
		if combos > maxCombos || combos <= 0 {
			return fmt.Errorf("%w: combination count overflows budget", ErrTooManyMIS)
		}
	}
	stats["combinations"] += combos

	groups := groupTuples(rel, unionAttrs(sub.FDs))
	best := math.Inf(1)
	var bestTargets []*targettree.Target
	idx := make([]int, len(families))
	for {
		if canceled(opts.Cancel) {
			return ErrCanceled
		}
		sets := make([][]int, len(families))
		for i, j := range idx {
			sets[i] = families[i][j]
		}
		targets, cost, visited, ok := planCosts(groups, graphs, sets, cfg, opts.DisableTargetTree, opts.Cancel, best)
		stats["treeVisited"] += visited
		if ok && cost < best {
			best = cost
			bestTargets = targets
		}
		// Advance the mixed-radix counter.
		k := len(idx) - 1
		for k >= 0 {
			idx[k]++
			if idx[k] < len(families[k]) {
				break
			}
			idx[k] = 0
			k--
		}
		if k < 0 {
			break
		}
	}
	if bestTargets == nil {
		return fmt.Errorf("repair: no feasible combination of independent sets joins into targets")
	}
	applyPlan(out, groups, bestTargets)
	return nil
}

// approComponent implements §4.3 for one component.
func approComponent(rel, out *dataset.Relation, sub *fd.Set, cfg *fd.DistConfig, opts Options, stats map[string]int) error {
	graphs := buildGraphs(rel, sub, cfg, opts)
	sets := make([][]int, len(graphs))
	for i, g := range graphs {
		sets[i] = greedySet(g, opts.Cancel)
		if canceled(opts.Cancel) {
			return ErrCanceled
		}
	}
	return applyJoinedSets(rel, out, sub, cfg, opts, stats, graphs, sets)
}

// greedyComponent implements §4.4 for one component.
func greedyComponent(rel, out *dataset.Relation, sub *fd.Set, cfg *fd.DistConfig, opts Options, stats map[string]int) error {
	graphs := buildGraphs(rel, sub, cfg, opts)
	sets := jointGreedySets(rel, graphs, opts.Cancel)
	if canceled(opts.Cancel) {
		// The joint growth stopped early; leave this component untouched
		// rather than applying a half-grown plan.
		return ErrCanceled
	}
	return applyJoinedSets(rel, out, sub, cfg, opts, stats, graphs, sets)
}

// applyJoinedSets joins per-FD independent sets into targets and repairs
// every tuple whose projections fall outside them. When the join is empty
// (the chosen sets disagree on every shared value — possible for heuristic
// sets), it falls back to iterated per-FD greedy repair.
func applyJoinedSets(rel, out *dataset.Relation, sub *fd.Set, cfg *fd.DistConfig, opts Options, stats map[string]int, graphs []*vgraph.Graph, sets [][]int) error {
	if len(graphs) == 1 {
		applyInPlace(out, graphs[0], repairTargets(graphs[0], sets[0]))
		return nil
	}
	groups := groupTuples(rel, unionAttrs(sub.FDs))
	targets, _, visited, ok := planCosts(groups, graphs, sets, cfg, opts.DisableTargetTree, opts.Cancel, math.Inf(1))
	stats["treeVisited"] += visited
	if canceled(opts.Cancel) {
		return ErrCanceled
	}
	if !ok {
		stats["joinFallback"]++
		return sequentialFallback(out, sub, cfg, opts)
	}
	applyPlan(out, groups, targets)
	return nil
}

// sequentialFallback repairs the component FD by FD with the single-FD
// greedy algorithm, iterating until the component is FT-consistent or a
// round budget is exhausted. It is only used when the joined independent
// sets admit no target.
func sequentialFallback(out *dataset.Relation, sub *fd.Set, cfg *fd.DistConfig, opts Options) error {
	const maxRounds = 5
	for round := 0; round < maxRounds; round++ {
		clean := true
		for i, f := range sub.FDs {
			if canceled(opts.Cancel) {
				return ErrCanceled
			}
			g := vgraph.Build(out, f, cfg, sub.Tau[i], graphOpts(opts))
			if g.NumEdges() == 0 {
				continue
			}
			clean = false
			applyInPlace(out, g, repairTargets(g, greedySet(g, opts.Cancel)))
		}
		if clean {
			return nil
		}
	}
	return nil // best effort; verification reports any residual violations
}

// applyInPlace is applyVertexRepairs writing directly into out (whose rows
// align with the graph's source relation).
func applyInPlace(out *dataset.Relation, g *vgraph.Graph, target map[int]int) {
	for from, to := range target {
		pattern := g.Vertices[to].Rep
		for _, row := range g.Vertices[from].Rows {
			for _, c := range g.FD.Attrs() {
				out.Tuples[row][c] = pattern[c]
			}
		}
	}
}

// jointGreedySets grows one independent set per FD, interleaved (§4.4,
// Algorithm 4). Each step adds the (FD, pattern) candidate with the
// smallest tuple cost (Eq. 12): the cost of repairing the candidate's
// newly-doomed neighbors to their per-row best targets, where a row's best
// target is chosen to maximize violations eliminated minus violations
// triggered across the connected FDs (ties broken by repair weight). This
// is what lets the same doomed pattern repair differently in different
// tuples — (Boston, NY) becomes (New York, NY) in t5 but (Boston, MA) in
// t10 of the running example.
func jointGreedySets(rel *dataset.Relation, graphs []*vgraph.Graph, cancel <-chan struct{}) [][]int {
	n := len(graphs)
	type state struct {
		inSet, blocked []bool
		set            []int
		cost           []float64 // cached Eq-12 cost per candidate
		dirty          []bool
	}
	states := make([]*state, n)
	for i, g := range graphs {
		st := &state{
			inSet:   make([]bool, len(g.Vertices)),
			blocked: make([]bool, len(g.Vertices)),
			cost:    make([]float64, len(g.Vertices)),
			dirty:   make([]bool, len(g.Vertices)),
		}
		for v := range st.dirty {
			st.dirty[v] = true
		}
		states[i] = st
	}
	// overlaps[i] lists the FDs j != i sharing an attribute with i.
	overlaps := make([][]int, n)
	for i := range graphs {
		for j := range graphs {
			if i != j && graphs[i].FD.SharesAttrs(graphs[j].FD) {
				overlaps[i] = append(overlaps[i], j)
			}
		}
	}
	// violCache memoizes ViolatorCount per FD by projection key, since
	// hypothetical repairs repeatedly produce the same patterns.
	violCache := make([]map[string]int, n)
	for i := range violCache {
		violCache[i] = make(map[string]int)
	}
	violators := func(j int, t dataset.Tuple) int {
		k := t.Key(graphs[j].FD.Attrs())
		if c, ok := violCache[j][k]; ok {
			return c
		}
		c := graphs[j].ViolatorCount(t)
		violCache[j][k] = c
		return c
	}

	// syncDelta scores the cross-FD effect of repairing row r's FD-i
	// attributes to the pattern of vertex w: for every overlapping FD j,
	// (violations of the row's new j-projection) minus (violations of its
	// old one). The old pattern still counts as a violator of the new one
	// unless the row was its only carrier.
	scratch := make(dataset.Tuple, rel.Schema.Len())
	syncDelta := func(i int, row int, w int) int {
		delta := 0
		rowTuple := rel.Tuples[row]
		wRep := graphs[i].Vertices[w].Rep
		for _, j := range overlaps[i] {
			gj := graphs[j]
			// Build the row's hypothetical tuple after the FD-i repair.
			copy(scratch, rowTuple)
			changed := false
			for _, c := range graphs[i].FD.Attrs() {
				if scratch[c] != wRep[c] {
					scratch[c] = wRep[c]
					changed = true
				}
			}
			if !changed {
				continue
			}
			oldV, ok := gj.Lookup(rowTuple)
			if !ok {
				continue // cannot happen: every row has a pattern vertex
			}
			// Did the j-projection actually change?
			same := true
			for _, c := range gj.FD.Attrs() {
				if scratch[c] != rowTuple[c] {
					same = false
					break
				}
			}
			if same {
				continue
			}
			newViol := violators(j, scratch)
			if gj.Vertices[oldV].Mult() == 1 && gj.FTAdjacent(scratch, oldV) {
				// The old pattern is vacated by this repair, so it no
				// longer counts as a triggered violation.
				newViol--
			}
			delta += newViol - gj.Degree(oldV)
		}
		return delta
	}

	// bestRepairCost picks, per row of doomed vertex u (FD i), the target
	// w minimizing (syncDelta, weight) among the allowed targets — the
	// candidate v itself, members of the set, or vertices not in conflict
	// with the set — and returns the summed repair weight (Eq. 12).
	//
	// Targets are additionally restricted to multiplicity at least u's own:
	// repairs flow toward equally or more frequent patterns. Without this,
	// the cost model's absorption property (see DESIGN.md §6) lets a
	// one-tuple typo become the designated repair target of the
	// high-multiplicity pattern it derives from, and the joint greedy then
	// dooms the legitimate pattern "for free".
	bestRepairCost := func(i, u, v int) float64 {
		st := states[i]
		uMult := graphs[i].Vertices[u].Mult()
		type choice struct {
			w  int
			wt float64
		}
		var allowed []choice
		for _, e := range graphs[i].Neighbors(u) {
			w := e.To
			if graphs[i].Vertices[w].Mult() < uMult {
				continue
			}
			if w != v {
				if st.blocked[w] {
					continue // conflicts with the chosen set
				}
				if _, adj := graphs[i].Edge(w, v); adj {
					continue // conflicts with the candidate
				}
			}
			allowed = append(allowed, choice{w, e.W})
		}
		if len(allowed) == 0 {
			// No frequent-enough target: account the doom as a repair to
			// the candidate itself. This is what makes dooming a
			// high-multiplicity pattern expensive for a junk candidate.
			if w, ok := graphs[i].Edge(u, v); ok {
				return float64(uMult) * w
			}
			// u is doomed but not adjacent to v (cannot happen: u comes
			// from N(v)); fall back to the cheapest neighbor.
			best := math.Inf(1)
			for _, e := range graphs[i].Neighbors(u) {
				if e.W < best {
					best = e.W
				}
			}
			return float64(uMult) * best
		}
		var total float64
		for _, row := range graphs[i].Vertices[u].Rows {
			bestWt := math.Inf(1)
			bestSync := 1 << 30
			for _, c := range allowed {
				s := syncDelta(i, row, c.w)
				if s < bestSync || (s == bestSync && c.wt < bestWt) {
					bestSync, bestWt = s, c.wt
				}
			}
			total += bestWt
		}
		return total
	}

	// minOmega[i][v]: the floor of v's repair cost in FD i if excluded,
	// under the same multiplicity restriction bestRepairCost applies
	// (falling back to the overall cheapest edge when no neighbor is
	// frequent enough).
	minOmega := make([][]float64, n)
	for i, g := range graphs {
		minOmega[i] = make([]float64, len(g.Vertices))
		for v := range g.Vertices {
			best := math.Inf(1)
			restricted := math.Inf(1)
			for _, e := range g.Neighbors(v) {
				if e.W < best {
					best = e.W
				}
				if g.Vertices[e.To].Mult() >= g.Vertices[v].Mult() && e.W < restricted {
					restricted = e.W
				}
			}
			switch {
			case !math.IsInf(restricted, 1):
				minOmega[i][v] = restricted
			case !math.IsInf(best, 1):
				minOmega[i][v] = best
			}
		}
	}

	// tupleCost is Eq. 12 for candidate v of FD i — the best-repair cost of
	// every neighbor this addition newly dooms, normalized by each
	// neighbor's unavoidable floor — minus the candidate's own avoided
	// repair cost (the same normalization GreedyS uses; see greedySet).
	tupleCost := func(i, v int) float64 {
		st := states[i]
		var total float64
		for _, e := range graphs[i].Neighbors(v) {
			if !st.blocked[e.To] && !st.inSet[e.To] {
				total += bestRepairCost(i, e.To, v) - float64(graphs[i].Vertices[e.To].Mult())*minOmega[i][e.To]
			}
		}
		return total - float64(graphs[i].Vertices[v].Mult())*minOmega[i][v]
	}

	add := func(i, v int) {
		st := states[i]
		st.inSet[v] = true
		st.set = append(st.set, v)
		for _, e := range graphs[i].Neighbors(v) {
			if !st.inSet[e.To] {
				st.blocked[e.To] = true
			}
		}
		// A candidate's cost reads the blocked status of its neighbors'
		// allowed targets — vertices up to two hops from the candidate —
		// and blocking reaches one hop from v, so costs within three hops
		// of v can change.
		for _, e := range graphs[i].Neighbors(v) {
			st.dirty[e.To] = true
			for _, e2 := range graphs[i].Neighbors(e.To) {
				st.dirty[e2.To] = true
				for _, e3 := range graphs[i].Neighbors(e2.To) {
					st.dirty[e3.To] = true
				}
			}
		}
	}

	for {
		if canceled(cancel) {
			break
		}
		bestI, bestV := -1, -1
		bestCost := math.Inf(1)
		for i := range graphs {
			st := states[i]
			for v := range graphs[i].Vertices {
				if st.inSet[v] || st.blocked[v] {
					continue
				}
				if st.dirty[v] {
					st.cost[v] = tupleCost(i, v)
					st.dirty[v] = false
				}
				if jointTraceHook != nil {
					jointTraceHook(i, v, st.cost[v])
				}
				c := st.cost[v]
				take := c < bestCost-fd.Eps
				if !take && c <= bestCost+fd.Eps && bestI >= 0 {
					// Exact ties break toward higher multiplicity (see
					// greedySet), then FD order, then id.
					mv, mb := graphs[i].Vertices[v].Mult(), graphs[bestI].Vertices[bestV].Mult()
					take = mv > mb
				}
				if take || bestI < 0 {
					bestI, bestV, bestCost = i, v, c
				}
			}
		}
		if bestI < 0 {
			break
		}
		add(bestI, bestV)
	}
	sets := make([][]int, n)
	for i, st := range states {
		sets[i] = st.set
	}
	return sets
}
