package repair

import (
	"errors"
	"fmt"
	"runtime"
	"sync"
	"time"

	"ftrepair/internal/dataset"
	"ftrepair/internal/fd"
	"ftrepair/internal/ledger"
	"ftrepair/internal/mis"
	"ftrepair/internal/obs"
	"ftrepair/internal/vgraph"
)

// ErrTooManyMIS is returned (wrapped) when ExactM's enumeration exceeds
// Options.MaxMISPerFD or the combination budget; the instance should be
// repaired with ApproM or GreedyM instead.
var ErrTooManyMIS = fmt.Errorf("repair: too many maximal independent sets for exact repair")

// maxCombos bounds the Cartesian product ExactM is willing to evaluate.
const maxCombos = 1 << 20

// ExactM repairs rel w.r.t. a set of FDs optimally (§4.2): per connected
// component of the FD graph, it enumerates the maximal independent sets of
// every FD's violation graph, joins each combination into targets, assigns
// every tuple its nearest target, and keeps the cheapest combination.
// Combinations are abandoned as soon as their accumulated cost exceeds the
// best known one, which plays the role of the paper's bound-based pruning
// while remaining exact.
func ExactM(rel *dataset.Relation, set *fd.Set, cfg *fd.DistConfig, opts Options) (*Result, error) {
	return multiRepair(rel, set, cfg, opts, "ExactM", exactComponent)
}

// ApproM repairs rel w.r.t. a set of FDs with the §4.3 heuristic: the
// single-FD greedy algorithm picks one independent set per FD
// independently; the sets are joined and every tuple repairs to its nearest
// target.
func ApproM(rel *dataset.Relation, set *fd.Set, cfg *fd.DistConfig, opts Options) (*Result, error) {
	return multiRepair(rel, set, cfg, opts, "ApproM", approComponent)
}

// GreedyM repairs rel w.r.t. a set of FDs with the §4.4 joint greedy: the
// per-FD independent sets grow interleaved, each step adding the globally
// cheapest pattern where the cost includes a cross-FD synchronization term
// (patterns conflicting on shared attributes with already-chosen patterns
// of connected FDs are penalized by the extra repair distance they would
// force).
func GreedyM(rel *dataset.Relation, set *fd.Set, cfg *fd.DistConfig, opts Options) (*Result, error) {
	return multiRepair(rel, set, cfg, opts, "GreedyM", greedyComponent)
}

// componentFunc repairs one connected component of the FD graph in place,
// recording applied cells into ev when non-nil.
type componentFunc func(rel, out *dataset.Relation, sub *fd.Set, cfg *fd.DistConfig, opts Options, stats map[string]int, ev *eventBuf) error

func multiRepair(rel *dataset.Relation, set *fd.Set, cfg *fd.DistConfig, opts Options, name string, repairComp componentFunc) (*Result, error) {
	start := time.Now()
	snap := snapCacheStats(cfg)
	out := rel.Clone()
	stats := make(map[string]int)
	comps := set.Components()
	// Each component gets a private event buffer: components repair disjoint
	// attribute columns, so buffers never race, and flattening them in
	// component order makes the collected stream independent of which
	// goroutine finished first. Worker records the component index (stable
	// across worker counts), not a goroutine id.
	var bufs []*eventBuf
	if opts.Ledger != nil {
		bufs = make([]*eventBuf, len(comps))
		for i := range bufs {
			bufs[i] = &eventBuf{}
		}
	}
	gather := func() []ledger.RepairEvent {
		var all []ledger.RepairEvent
		for ci, b := range bufs {
			for _, e := range b.take() {
				e.Worker = ci
				all = append(all, e)
			}
		}
		return all
	}
	// partial finishes the result over whatever components committed before
	// a cancellation and surfaces the typed error alongside it.
	partial := func() (*Result, error) {
		addCacheStats(stats, cfg, snap)
		res, ferr := finish(rel, out, cfg, name, time.Since(start), stats, opts.Ledger, gather())
		if ferr != nil {
			return nil, ferr
		}
		return res, ErrCanceled
	}
	compBuf := func(i int) *eventBuf {
		if bufs == nil {
			return nil
		}
		return bufs[i]
	}
	if opts.Parallel >= 2 && len(comps) > 1 {
		if err := repairComponentsParallel(rel, out, set, cfg, opts, stats, comps, repairComp, compBuf); err != nil {
			if errors.Is(err, ErrCanceled) {
				return partial()
			}
			return nil, err
		}
	} else {
		for i, comp := range comps {
			if canceled(opts.Cancel) {
				return partial()
			}
			sub := set.Subset(comp)
			if err := repairComp(rel, out, sub, cfg, opts, stats, compBuf(i)); err != nil {
				if errors.Is(err, ErrCanceled) {
					return partial()
				}
				return nil, err
			}
		}
	}
	addCacheStats(stats, cfg, snap)
	return finish(rel, out, cfg, name, time.Since(start), stats, opts.Ledger, gather())
}

// repairComponentsParallel runs component repairs on up to opts.Parallel
// goroutines. Components write disjoint attribute columns of out, so the
// repairs commute; stats merge under a lock, and each worker records events
// into its own component buffer (fetched via compBuf by component index).
func repairComponentsParallel(rel, out *dataset.Relation, set *fd.Set, cfg *fd.DistConfig, opts Options, stats map[string]int, comps [][]int, repairComp componentFunc, compBuf func(int) *eventBuf) error {
	sem := make(chan struct{}, opts.Parallel)
	errs := make(chan error, len(comps))
	var mu sync.Mutex
	var wg sync.WaitGroup
	for ci, comp := range comps {
		if canceled(opts.Cancel) {
			// Stop submitting; in-flight workers observe the same channel
			// and unwind on their own.
			break
		}
		ci, comp := ci, comp
		wg.Add(1)
		sem <- struct{}{}
		go func() {
			defer wg.Done()
			defer func() { <-sem }()
			local := make(map[string]int)
			err := repairComp(rel, out, set.Subset(comp), cfg, opts, local, compBuf(ci))
			if err != nil {
				errs <- err
				return
			}
			mu.Lock()
			for k, v := range local {
				stats[k] += v
			}
			mu.Unlock()
		}()
	}
	wg.Wait()
	close(errs)
	// Prefer a real failure over a cancellation when both occurred.
	var firstCancel error
	for err := range errs {
		if errors.Is(err, ErrCanceled) {
			firstCancel = err
			continue
		}
		return err
	}
	if firstCancel == nil && canceled(opts.Cancel) {
		// The submission loop stopped before any worker noticed; surface
		// the cancellation instead of a silently partial repair.
		firstCancel = ErrCanceled
	}
	return firstCancel
}

func buildGraphs(rel *dataset.Relation, sub *fd.Set, cfg *fd.DistConfig, opts Options) []*vgraph.Graph {
	gopts := graphOpts(opts)
	graphs := make([]*vgraph.Graph, len(sub.FDs))
	if len(sub.FDs) == 1 {
		graphs[0] = vgraph.Build(rel, sub.FDs[0], cfg, sub.Tau[0], gopts)
		return graphs
	}
	// Per-FD graphs are independent and Build is deterministic regardless of
	// scheduling, so the builds always fan out; opts.Parallel only gates
	// component-repair concurrency, which does commit order-sensitive work.
	workers := runtime.GOMAXPROCS(0)
	if workers > len(sub.FDs) {
		workers = len(sub.FDs)
	}
	sem := make(chan struct{}, workers)
	var wg sync.WaitGroup
	for i, f := range sub.FDs {
		i, f := i, f
		// Each concurrent build gets its own 1-based slot label so trace
		// viewers show per-FD builds on separate tracks.
		slot := gopts
		slot.Worker = i + 1
		if canceled(opts.Cancel) {
			// Canceled: fill the remaining slots inline. With a fired Cancel
			// threaded into gopts, Build stops verifying pairs immediately
			// and returns a vertex-only graph, so no slot is ever nil and
			// callers surface the cancellation themselves.
			graphs[i] = vgraph.Build(rel, f, cfg, sub.Tau[i], slot)
			continue
		}
		wg.Add(1)
		sem <- struct{}{}
		go func() {
			defer wg.Done()
			defer func() { <-sem }()
			graphs[i] = vgraph.Build(rel, f, cfg, sub.Tau[i], slot)
		}()
	}
	wg.Wait()
	return graphs
}

// exactComponent implements Algorithm 3 for one component.
func exactComponent(rel, out *dataset.Relation, sub *fd.Set, cfg *fd.DistConfig, opts Options, stats map[string]int, ev *eventBuf) error {
	graphs := buildGraphs(rel, sub, cfg, opts)
	if len(sub.FDs) == 1 {
		// Single-FD component: the expansion algorithm is optimal
		// (Theorem 5) and far cheaper than enumeration + join.
		sp := obs.Begin(opts.Trace, obs.PhaseExpand)
		sp.SetFD(sub.FDs[0].String())
		res, err := mis.BestMIS(graphs[0], mis.Options{
			DisablePruning: opts.DisablePruning,
			NaturalOrder:   opts.NaturalOrder,
			MaxNodes:       opts.MaxNodes,
			Cancel:         opts.Cancel,
		})
		sp.Add("nodes", int64(res.NodesExplored))
		sp.End()
		if errors.Is(err, mis.ErrCanceled) {
			return ErrCanceled
		}
		if err != nil {
			return err
		}
		stats["nodes"] += res.NodesExplored
		ap := obs.Begin(opts.Trace, obs.PhaseApply)
		applyInPlace(out, graphs[0], repairTargets(graphs[0], res.Set), cfg, ev)
		ap.End()
		return nil
	}

	sp := obs.Begin(opts.Trace, obs.PhaseExpand)
	families := make([][][]int, len(sub.FDs))
	combos := 1
	for i, g := range graphs {
		if canceled(opts.Cancel) {
			sp.End()
			return ErrCanceled
		}
		families[i] = mis.EnumerateMaximal(g)
		if opts.MaxMISPerFD > 0 && len(families[i]) > opts.MaxMISPerFD {
			sp.End()
			return fmt.Errorf("%w: %d sets for %s (cap %d)", ErrTooManyMIS, len(families[i]), sub.FDs[i], opts.MaxMISPerFD)
		}
		combos *= len(families[i])
		if combos > maxCombos || combos <= 0 {
			sp.End()
			return fmt.Errorf("%w: combination count overflows budget", ErrTooManyMIS)
		}
	}
	sp.Add("combinations", int64(combos))
	sp.End()
	stats["combinations"] += combos

	groups := groupTuples(rel, unionAttrs(sub.FDs))
	p := newPlanner(groups, graphs, cfg, opts.DisableTargetTree, opts.Cancel,
		planWorkers(opts.Parallel >= 2 && combos > 1))
	ts := obs.Begin(opts.Trace, obs.PhaseTargetSearch)
	bestTargets, visited, updates, err := searchCombos(groups, graphs, families, combos, opts, p)
	ts.Add("treeVisited", int64(visited))
	ts.Add("incumbents", int64(updates))
	ts.End()
	stats["treeVisited"] += visited
	stats["bnbIncumbents"] += updates
	if err != nil {
		return err
	}
	if bestTargets == nil {
		return fmt.Errorf("repair: no feasible combination of independent sets joins into targets")
	}
	if ev != nil {
		ev.fdLabel = fdSetLabel(sub)
	}
	ap := obs.Begin(opts.Trace, obs.PhaseApply)
	applyPlan(out, groups, bestTargets, cfg, ev)
	ap.End()
	return nil
}

// approComponent implements §4.3 for one component.
func approComponent(rel, out *dataset.Relation, sub *fd.Set, cfg *fd.DistConfig, opts Options, stats map[string]int, ev *eventBuf) error {
	graphs := buildGraphs(rel, sub, cfg, opts)
	sp := obs.Begin(opts.Trace, obs.PhaseGreedyGrow)
	sets := make([][]int, len(graphs))
	for i, g := range graphs {
		sets[i] = greedySet(g, opts.Cancel)
		if canceled(opts.Cancel) {
			sp.End()
			return ErrCanceled
		}
	}
	sp.End()
	return applyJoinedSets(rel, out, sub, cfg, opts, stats, graphs, sets, ev)
}

// greedyComponent implements §4.4 for one component.
func greedyComponent(rel, out *dataset.Relation, sub *fd.Set, cfg *fd.DistConfig, opts Options, stats map[string]int, ev *eventBuf) error {
	graphs := buildGraphs(rel, sub, cfg, opts)
	sp := obs.Begin(opts.Trace, obs.PhaseGreedyGrow)
	sets := jointGreedySets(rel, graphs, opts.Cancel)
	sp.End()
	if canceled(opts.Cancel) {
		// The joint growth stopped early; leave this component untouched
		// rather than applying a half-grown plan.
		return ErrCanceled
	}
	return applyJoinedSets(rel, out, sub, cfg, opts, stats, graphs, sets, ev)
}

// applyJoinedSets joins per-FD independent sets into targets and repairs
// every tuple whose projections fall outside them. When the join is empty
// (the chosen sets disagree on every shared value — possible for heuristic
// sets), it falls back to iterated per-FD greedy repair.
func applyJoinedSets(rel, out *dataset.Relation, sub *fd.Set, cfg *fd.DistConfig, opts Options, stats map[string]int, graphs []*vgraph.Graph, sets [][]int, ev *eventBuf) error {
	if len(graphs) == 1 {
		ap := obs.Begin(opts.Trace, obs.PhaseApply)
		applyInPlace(out, graphs[0], repairTargets(graphs[0], sets[0]), cfg, ev)
		ap.End()
		return nil
	}
	groups := groupTuples(rel, unionAttrs(sub.FDs))
	p := newPlanner(groups, graphs, cfg, opts.DisableTargetTree, opts.Cancel, planWorkers(false))
	ts := obs.Begin(opts.Trace, obs.PhaseTargetSearch)
	p.span = ts
	targets, _, visited, ok := p.costs(chosenBits(graphs, sets), levelsFor(graphs, sets), nil)
	ts.Add("treeVisited", int64(visited))
	ts.End()
	stats["treeVisited"] += visited
	if canceled(opts.Cancel) {
		return ErrCanceled
	}
	if !ok {
		stats["joinFallback"]++
		return sequentialFallback(out, sub, cfg, opts, ev)
	}
	if ev != nil {
		ev.fdLabel = fdSetLabel(sub)
	}
	ap := obs.Begin(opts.Trace, obs.PhaseApply)
	applyPlan(out, groups, targets, cfg, ev)
	ap.End()
	return nil
}

// sequentialFallback repairs the component FD by FD with the single-FD
// greedy algorithm, iterating until the component is FT-consistent or a
// round budget is exhausted. It is only used when the joined independent
// sets admit no target.
func sequentialFallback(out *dataset.Relation, sub *fd.Set, cfg *fd.DistConfig, opts Options, ev *eventBuf) error {
	const maxRounds = 5
	for round := 0; round < maxRounds; round++ {
		clean := true
		for i, f := range sub.FDs {
			if canceled(opts.Cancel) {
				return ErrCanceled
			}
			g := vgraph.Build(out, f, cfg, sub.Tau[i], graphOpts(opts))
			if g.NumEdges() == 0 {
				continue
			}
			clean = false
			applyInPlace(out, g, repairTargets(g, greedySet(g, opts.Cancel)), cfg, ev)
		}
		if clean {
			return nil
		}
	}
	return nil // best effort; verification reports any residual violations
}

// applyInPlace is applyVertexRepairs writing directly into out (whose rows
// align with the graph's source relation). When ev is non-nil, every cell
// whose value actually changes is recorded with the violation edge (from →
// to) that justified the repair; unchanged cells stay silent, so the ledger
// matches dataset.Diff exactly for single-write repairs.
func applyInPlace(out *dataset.Relation, g *vgraph.Graph, target map[int]int, cfg *fd.DistConfig, ev *eventBuf) {
	for from, to := range target {
		pattern := g.Vertices[to].Rep
		var tmpl ledger.RepairEvent
		if ev != nil {
			tmpl = vertexTemplate(g, from, to)
		}
		for _, row := range g.Vertices[from].Rows {
			for _, c := range g.FD.Attrs() {
				old := out.Tuples[row][c]
				out.Tuples[row][c] = pattern[c]
				if ev != nil && old != pattern[c] {
					ev.record(cellEvent(tmpl, out, cfg, row, c, old, pattern[c]))
				}
			}
		}
	}
}

// The joint greedy growth (jointGreedySets and its retained naive
// reference jointGreedySetsNaive) lives in joint.go alongside the shared
// jointState cost model.
