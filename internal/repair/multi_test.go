package repair_test

import (
	"errors"
	"math"
	"math/rand"
	"testing"

	"ftrepair/internal/dataset"
	"ftrepair/internal/fd"
	"ftrepair/internal/gen"
	"ftrepair/internal/repair"
)

// citizensSet returns the Citizens instance with the full constraint set.
// Thresholds: phi1's Level distances are small, so tau=0.2 captures its
// errors; phi2/phi3 repair two-letter states (dist 1, weighted 0.5), so
// tau=0.5 is needed to cover classic violations (Theorem 1 boundary) — and
// reproduces the paper's Example 10 independent-set families exactly.
func citizensSet(t *testing.T) (*dataset.Relation, *dataset.Relation, *fd.Set, *fd.DistConfig) {
	t.Helper()
	dirty, clean := gen.Citizens()
	fds := gen.CitizensFDs(dirty.Schema)
	set, err := fd.NewSet(fds, 0.2, 0.5, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	return dirty, clean, set, fd.DefaultDistConfig(dirty)
}

type multiAlgo func(*dataset.Relation, *fd.Set, *fd.DistConfig, repair.Options) (*repair.Result, error)

func TestExactMCitizensFullRepair(t *testing.T) {
	// The headline end-to-end result: on the paper's Table 1 with all
	// three FDs, the exact multi-FD algorithm recovers the ground truth on
	// every constrained attribute (8 erroneous cells, all fixed, nothing
	// else touched).
	dirty, clean, set, cfg := citizensSet(t)
	res, err := repair.ExactM(dirty, set, cfg, repair.Options{})
	if err != nil {
		t.Fatal(err)
	}
	cells, err := dataset.Diff(res.Repaired, clean)
	if err != nil {
		t.Fatal(err)
	}
	if len(cells) != 0 {
		for _, c := range cells {
			t.Errorf("cell %v: got %q, want %q", c, res.Repaired.Get(c), clean.Get(c))
		}
		t.Fatalf("repair differs from ground truth in %d cells", len(cells))
	}
	if len(res.Changed) != 8 {
		t.Fatalf("changed %d cells, want 8: %v", len(res.Changed), res.Changed)
	}
	if err := repair.VerifyFTConsistent(res.Repaired, set, cfg); err != nil {
		t.Fatal(err)
	}
	if err := repair.VerifyValid(dirty, res.Repaired, set); err != nil {
		t.Fatal(err)
	}
}

func TestExample10And14Component(t *testing.T) {
	// Restricting to {phi2, phi3}: t4 repairs to (New York, Western,
	// Queens, NY) (Example 14), t5's City repairs to New York (Example 3),
	// t8's City to Boston, t10's State to MA.
	dirty, clean, set, cfg := citizensSet(t)
	sub := set.Subset([]int{1, 2})
	res, err := repair.ExactM(dirty, sub, cfg, repair.Options{})
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"City", "Street", "District", "State"} {
		c := dirty.Schema.MustIndex(name)
		for i := range res.Repaired.Tuples {
			if got, want := res.Repaired.Tuples[i][c], clean.Tuples[i][c]; got != want {
				t.Errorf("tuple %d %s = %q, want %q", i+1, name, got, want)
			}
		}
	}
	// Education/Level untouched (phi1 not in the set).
	edu := dirty.Schema.MustIndex("Education")
	if res.Repaired.Tuples[5][edu] != "Masers" {
		t.Error("phi1 attribute modified by a phi2/phi3 repair")
	}
}

func TestHeuristicsCitizens(t *testing.T) {
	// GreedyM's cross-FD synchronization fully recovers Citizens, while
	// ApproM — per-FD greedy with no synchronization — seeds phi2's
	// independent set with the low-degree typo pattern (Boton, MA) and
	// repairs toward it. This is exactly the quality gap between the two
	// heuristics the paper reports (§6.2): GreedyM > ApproM in precision.
	dirty, clean, set, cfg := citizensSet(t)
	exact, err := repair.ExactM(dirty, set, cfg, repair.Options{})
	if err != nil {
		t.Fatal(err)
	}
	greedy, err := repair.GreedyM(dirty, set, cfg, repair.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if greedy.Algorithm != "GreedyM" {
		t.Fatalf("algorithm tag %q", greedy.Algorithm)
	}
	cells, err := dataset.Diff(greedy.Repaired, clean)
	if err != nil {
		t.Fatal(err)
	}
	if len(cells) != 0 {
		t.Fatalf("GreedyM differs from ground truth at %v", cells)
	}
	appro, err := repair.ApproM(dirty, set, cfg, repair.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if appro.Algorithm != "ApproM" {
		t.Fatalf("algorithm tag %q", appro.Algorithm)
	}
	// Both heuristics still produce FT-consistent, valid repairs and never
	// beat the exact cost.
	for _, res := range []*repair.Result{appro, greedy} {
		if err := repair.VerifyFTConsistent(res.Repaired, set, cfg); err != nil {
			t.Fatalf("%s: %v", res.Algorithm, err)
		}
		if err := repair.VerifyValid(dirty, res.Repaired, set); err != nil {
			t.Fatalf("%s: %v", res.Algorithm, err)
		}
		if exact.Cost > res.Cost+1e-9 {
			t.Fatalf("%s cost %v beats ExactM %v", res.Algorithm, res.Cost, exact.Cost)
		}
	}
	// And the documented ApproM weakness is real: it repairs toward the
	// (Boton, MA) typo pattern, losing precision against the ground truth.
	approCells, err := dataset.Diff(appro.Repaired, clean)
	if err != nil {
		t.Fatal(err)
	}
	if len(approCells) == 0 {
		t.Log("ApproM unexpectedly recovered the ground truth; the Boton seed behaviour may have changed")
	}
}

func randomMultiInstance(rng *rand.Rand, n int) (*dataset.Relation, *fd.Set, *fd.DistConfig) {
	// Schema with two overlapping FDs (City->State, City,Street->District)
	// mirroring phi2/phi3.
	type loc struct{ city, street, district, state string }
	locs := []loc{
		{"Boston", "Main", "Financial", "MA"},
		{"Boston", "Arlingto", "Brookside", "MA"},
		{"New York", "Main", "Manhattan", "NY"},
		{"New York", "Western", "Queens", "NY"},
	}
	schema := dataset.Strings("City", "Street", "District", "State")
	rel := dataset.NewRelation(schema)
	for i := 0; i < n; i++ {
		l := locs[rng.Intn(len(locs))]
		city, state, district := l.city, l.state, l.district
		switch rng.Intn(6) {
		case 0:
			b := []byte(city)
			b[rng.Intn(len(b))] = byte('a' + rng.Intn(26))
			city = string(b)
		case 1:
			state = locs[rng.Intn(len(locs))].state
		case 2:
			district = locs[rng.Intn(len(locs))].district
		}
		if err := rel.Append(dataset.Tuple{city, l.street, district, state}); err != nil {
			panic(err)
		}
	}
	set, err := fd.NewSet([]*fd.FD{
		fd.MustParse(schema, "City->State"),
		fd.MustParse(schema, "City,Street->District"),
	}, 0.5)
	if err != nil {
		panic(err)
	}
	return rel, set, fd.DefaultDistConfig(rel)
}

func TestMultiFDInvariants(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	for trial := 0; trial < 10; trial++ {
		rel, set, cfg := randomMultiInstance(rng, 30)
		exact, err := repair.ExactM(rel, set, cfg, repair.Options{})
		if errors.Is(err, repair.ErrTooManyMIS) {
			continue
		}
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		for name, algo := range map[string]multiAlgo{"ApproM": repair.ApproM, "GreedyM": repair.GreedyM} {
			res, err := algo(rel, set, cfg, repair.Options{})
			if err != nil {
				t.Fatalf("trial %d %s: %v", trial, name, err)
			}
			if err := repair.VerifyFTConsistent(res.Repaired, set, cfg); err != nil {
				t.Fatalf("trial %d %s: %v", trial, name, err)
			}
			if err := repair.VerifyValid(rel, res.Repaired, set); err != nil {
				t.Fatalf("trial %d %s: %v", trial, name, err)
			}
			if exact.Cost > res.Cost+1e-9 {
				t.Fatalf("trial %d: ExactM cost %v > %s cost %v", trial, exact.Cost, name, res.Cost)
			}
		}
		if err := repair.VerifyFTConsistent(exact.Repaired, set, cfg); err != nil {
			t.Fatalf("trial %d ExactM: %v", trial, err)
		}
		if err := repair.VerifyValid(rel, exact.Repaired, set); err != nil {
			t.Fatalf("trial %d ExactM: %v", trial, err)
		}
	}
}

func TestTheorem5DisjointFDsIndependent(t *testing.T) {
	// Two FDs with no shared attributes: the multi-FD exact repair equals
	// applying the single-FD exact repair per FD, in cost and content.
	schema := dataset.Strings("A", "B", "C", "D")
	rng := rand.New(rand.NewSource(42))
	rel := dataset.NewRelation(schema)
	vals := []string{"alpha", "betas", "gamma"}
	for i := 0; i < 20; i++ {
		a, c := vals[rng.Intn(3)], vals[rng.Intn(3)]
		b, d := a+"1", c+"2"
		if rng.Intn(4) == 0 {
			b = vals[rng.Intn(3)] + "1"
		}
		if rng.Intn(4) == 0 {
			x := []byte(c)
			x[0] = 'z'
			c = string(x)
		}
		if err := rel.Append(dataset.Tuple{a, b, c, d}); err != nil {
			t.Fatal(err)
		}
	}
	f1 := fd.MustParse(schema, "A->B")
	f2 := fd.MustParse(schema, "C->D")
	set, err := fd.NewSet([]*fd.FD{f1, f2}, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	cfg := fd.DefaultDistConfig(rel)
	multi, err := repair.ExactM(rel, set, cfg, repair.Options{})
	if err != nil {
		t.Fatal(err)
	}
	s1, err := repair.ExactS(rel, f1, cfg, 0.5, repair.Options{})
	if err != nil {
		t.Fatal(err)
	}
	s2, err := repair.ExactS(s1.Repaired, f2, cfg, 0.5, repair.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(multi.Cost-cfg.DatabaseCost(rel, s2.Repaired)) > 1e-9 {
		t.Fatalf("multi cost %v != sequential cost %v", multi.Cost, cfg.DatabaseCost(rel, s2.Repaired))
	}
}

func TestExactMMISBudget(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	rel, set, cfg := randomMultiInstance(rng, 40)
	_, err := repair.ExactM(rel, set, cfg, repair.Options{MaxMISPerFD: 1})
	if err == nil {
		t.Skip("instance too easy to exceed a 1-MIS budget")
	}
	if !errors.Is(err, repair.ErrTooManyMIS) {
		t.Fatalf("error = %v, want ErrTooManyMIS", err)
	}
}

func TestDisableTargetTreeSameResult(t *testing.T) {
	dirty, _, set, cfg := citizensSet(t)
	a, err := repair.ExactM(dirty, set, cfg, repair.Options{})
	if err != nil {
		t.Fatal(err)
	}
	b, err := repair.ExactM(dirty, set, cfg, repair.Options{DisableTargetTree: true})
	if err != nil {
		t.Fatal(err)
	}
	cells, err := dataset.Diff(a.Repaired, b.Repaired)
	if err != nil || len(cells) != 0 {
		t.Fatalf("tree vs scan differ: %v %v", cells, err)
	}
	if math.Abs(a.Cost-b.Cost) > 1e-9 {
		t.Fatalf("costs differ: %v vs %v", a.Cost, b.Cost)
	}
}

func TestMultiAlgorithmsLeaveInputUntouched(t *testing.T) {
	dirty, _, set, cfg := citizensSet(t)
	orig := dirty.Clone()
	for _, algo := range []multiAlgo{repair.ExactM, repair.ApproM, repair.GreedyM} {
		if _, err := algo(dirty, set, cfg, repair.Options{}); err != nil {
			t.Fatal(err)
		}
		cells, err := dataset.Diff(orig, dirty)
		if err != nil || len(cells) != 0 {
			t.Fatalf("input mutated: %v %v", cells, err)
		}
	}
}

func TestConsistentMultiInputNoop(t *testing.T) {
	_, clean, set, _ := citizensSet(t)
	cfg := fd.DefaultDistConfig(clean)
	for _, algo := range []multiAlgo{repair.ExactM, repair.ApproM, repair.GreedyM} {
		res, err := algo(clean, set, cfg, repair.Options{})
		if err != nil {
			t.Fatal(err)
		}
		if len(res.Changed) != 0 {
			t.Fatalf("%s repaired a consistent database: %v", res.Algorithm, res.Changed)
		}
	}
}
