package repair

import (
	"bytes"
	"encoding/json"
	"errors"
	"math/rand"
	"reflect"
	"testing"

	"ftrepair/internal/fd"
	"ftrepair/internal/obs"
)

// phasesOf collects the distinct phases of a trace's ended spans.
func phasesOf(tr *obs.Trace) map[obs.Phase]int {
	out := make(map[obs.Phase]int)
	for _, s := range tr.Summaries() {
		out[s.Phase]++
	}
	return out
}

// TestGreedySTraceSpans runs a traced single-FD greedy repair and checks
// the span taxonomy: one graph build, one greedy growth, one apply, all
// closed, and the whole thing exportable as Chrome-trace JSON.
func TestGreedySTraceSpans(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	rel := noisyPairRelation(t, rng, 120, 0.3)
	cfg := fd.DefaultDistConfig(rel)
	f := fd.MustParse(rel.Schema, "City->State")

	tr := obs.NewTrace("test")
	if _, err := GreedyS(rel, f, cfg, 0.3, Options{Trace: tr}); err != nil {
		t.Fatal(err)
	}
	if n := tr.OpenSpans(); n != 0 {
		t.Fatalf("open spans after repair = %d, want 0", n)
	}
	got := phasesOf(tr)
	for _, p := range []obs.Phase{obs.PhaseGraphBuild, obs.PhaseGreedyGrow, obs.PhaseApply} {
		if got[p] == 0 {
			t.Fatalf("no %s span; phases = %v", p, got)
		}
	}
	var buf bytes.Buffer
	if err := tr.WriteChrome(&buf); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("chrome export invalid: %v", err)
	}
	if len(doc.TraceEvents) != len(tr.Summaries()) {
		t.Fatalf("events = %d, spans = %d", len(doc.TraceEvents), len(tr.Summaries()))
	}
}

// TestExactMTraceSpans runs a traced multi-FD exact repair over two
// overlapping FDs and expects expansion and target-search spans on top of
// the per-FD graph builds.
func TestExactMTraceSpans(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	rel := noisyTripleRelation(t, rng, 60, 0.3)
	cfg := fd.DefaultDistConfig(rel)
	set, err := fd.NewSet([]*fd.FD{
		fd.MustParse(rel.Schema, "City->State"),
		fd.MustParse(rel.Schema, "State->Country"),
	}, 0.3)
	if err != nil {
		t.Fatal(err)
	}

	tr := obs.NewTrace("test")
	res, err := ExactM(rel, set, cfg, Options{Trace: tr})
	if err != nil {
		t.Fatal(err)
	}
	if n := tr.OpenSpans(); n != 0 {
		t.Fatalf("open spans after repair = %d, want 0", n)
	}
	got := phasesOf(tr)
	if got[obs.PhaseGraphBuild] < 2 || got[obs.PhaseExpand] == 0 || got[obs.PhaseTargetSearch] == 0 {
		t.Fatalf("phases = %v, want >=2 graphbuild, >=1 expand, >=1 targetsearch", got)
	}
	if res.Stats["combinations"] == 0 {
		t.Fatalf("no combinations recorded: %v", res.Stats)
	}
}

// TestTraceClosesOnCancel fires the cancel mid-greedy-growth (via the
// test hook the determinism suite uses) and asserts the ErrCanceled
// partial leaves no dangling open spans.
func TestTraceClosesOnCancel(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	rel := noisyPairRelation(t, rng, 150, 0.35)
	cfg := fd.DefaultDistConfig(rel)
	f := fd.MustParse(rel.Schema, "City->State")

	cancel := make(chan struct{})
	fired := false
	greedyStepHook = func(n int) {
		if n >= 1 && !fired {
			fired = true
			close(cancel)
		}
	}
	defer func() { greedyStepHook = nil }()

	tr := obs.NewTrace("test")
	_, err := GreedyS(rel, f, cfg, 0.3, Options{Cancel: cancel, Trace: tr})
	if !errors.Is(err, ErrCanceled) {
		t.Fatalf("err = %v, want ErrCanceled", err)
	}
	if n := tr.OpenSpans(); n != 0 {
		t.Fatalf("open spans after canceled repair = %d, want 0", n)
	}
}

// TestExactSTraceClosesOnCancel covers the exact path: a pre-fired cancel
// aborts the expansion immediately and every span still closes.
func TestExactSTraceClosesOnCancel(t *testing.T) {
	rel, set, cfg := pathInstance(t, 60)
	cancel := make(chan struct{})
	close(cancel)
	tr := obs.NewTrace("test")
	_, err := ExactS(rel, set.FDs[0], cfg, set.Tau[0], Options{Cancel: cancel, Trace: tr})
	if !errors.Is(err, ErrCanceled) {
		t.Fatalf("err = %v, want ErrCanceled", err)
	}
	if n := tr.OpenSpans(); n != 0 {
		t.Fatalf("open spans after canceled repair = %d, want 0", n)
	}
}

// TestTraceDoesNotChangeOutput is the read-only guarantee: the same input
// repaired with and without a trace attached produces bit-identical
// relations, costs, and stats.
func TestTraceDoesNotChangeOutput(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	rel := noisyTripleRelation(t, rng, 80, 0.3)
	cfg := fd.DefaultDistConfig(rel)
	set, err := fd.NewSet([]*fd.FD{
		fd.MustParse(rel.Schema, "City->State"),
		fd.MustParse(rel.Schema, "State->Country"),
	}, 0.3)
	if err != nil {
		t.Fatal(err)
	}
	plain, err := GreedyM(rel, set, cfg, Options{})
	if err != nil {
		t.Fatal(err)
	}
	// Fresh config for the traced run: a shared one would warm the distance
	// cache and shift hit/miss stats for reasons unrelated to tracing.
	traced, err := GreedyM(rel, set, fd.DefaultDistConfig(rel), Options{Trace: obs.NewTrace("t")})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(plain.Repaired.Tuples, traced.Repaired.Tuples) {
		t.Fatal("tracing changed the repaired relation")
	}
	if plain.Cost != traced.Cost {
		t.Fatalf("tracing changed cost: %v != %v", plain.Cost, traced.Cost)
	}
	if !reflect.DeepEqual(plain.Stats, traced.Stats) {
		t.Fatalf("tracing changed stats: %v != %v", plain.Stats, traced.Stats)
	}
}

// TestMetricsFlowFromRepair checks the registry view: one greedy run must
// bump graph-build and set-size counters in obs.Default() (the Stats map
// is flushed by finish, the graph totals by vgraph.Build).
func TestMetricsFlowFromRepair(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	rel := noisyPairRelation(t, rng, 100, 0.3)
	cfg := fd.DefaultDistConfig(rel)
	f := fd.MustParse(rel.Schema, "City->State")

	builds := obs.Pipeline.GraphBuilds.Value()
	setSize := obs.Pipeline.GreedySetSize.Value()
	res, err := GreedyS(rel, f, cfg, 0.3, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if d := obs.Pipeline.GraphBuilds.Value() - builds; d != 1 {
		t.Fatalf("graph-build counter delta = %d, want 1", d)
	}
	if d := int(obs.Pipeline.GreedySetSize.Value() - setSize); d != res.Stats["setSize"] {
		t.Fatalf("set-size counter delta = %d, want %d", d, res.Stats["setSize"])
	}
	var buf bytes.Buffer
	if err := obs.Default().WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"ftrepair_phase_duration_seconds_bucket",
		`phase="greedygrow"`,
		"ftrepair_graph_edges_built_total",
		`ftrepair_repairs_total{algorithm="GreedyS"}`,
	} {
		if !bytes.Contains(buf.Bytes(), []byte(want)) {
			t.Fatalf("exposition missing %q", want)
		}
	}
}
