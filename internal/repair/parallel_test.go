package repair_test

import (
	"testing"

	"ftrepair/internal/dataset"
	"ftrepair/internal/eval"
	"ftrepair/internal/repair"
)

func TestParallelMatchesSequential(t *testing.T) {
	inst, err := eval.Prepare(eval.Setup{Workload: "hosp", N: 600, ErrorRate: 0.05, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	for _, algo := range []multiAlgo{repair.ApproM, repair.GreedyM} {
		seq, err := algo(inst.Dirty, inst.Set, inst.Cfg, repair.Options{})
		if err != nil {
			t.Fatal(err)
		}
		par, err := algo(inst.Dirty, inst.Set, inst.Cfg, repair.Options{Parallel: 4})
		if err != nil {
			t.Fatal(err)
		}
		cells, err := dataset.Diff(seq.Repaired, par.Repaired)
		if err != nil || len(cells) != 0 {
			t.Fatalf("%s: parallel differs from sequential at %v (%v)", seq.Algorithm, cells, err)
		}
		if len(seq.Changed) != len(par.Changed) {
			t.Fatalf("%s: changed-cell counts differ: %d vs %d", seq.Algorithm, len(seq.Changed), len(par.Changed))
		}
	}
}

func TestParallelSingleComponentFallsBack(t *testing.T) {
	// A set whose FD graph is one component exercises the sequential path
	// even with Parallel set.
	dirty, _, set, cfg := citizensSet(t)
	sub := set.Subset([]int{1, 2})
	res, err := repair.GreedyM(dirty, sub, cfg, repair.Options{Parallel: 8})
	if err != nil {
		t.Fatal(err)
	}
	if err := repair.VerifyFTConsistent(res.Repaired, sub, cfg); err != nil {
		t.Fatal(err)
	}
}
