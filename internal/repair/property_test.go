package repair_test

import (
	"math/rand"
	"testing"
	"testing/quick"

	"ftrepair/internal/dataset"
	"ftrepair/internal/fd"
	"ftrepair/internal/repair"
)

// randomRelation builds a small two-FD relation from a bounded alphabet,
// driven by quick's random source.
func randomRelation(rng *rand.Rand) (*dataset.Relation, *fd.Set, *fd.DistConfig) {
	schema := dataset.Strings("A", "B", "C")
	keys := []string{"alpha", "bravo", "charlie", "delta"}
	vals := []string{"red", "green", "blue"}
	rel := dataset.NewRelation(schema)
	n := 6 + rng.Intn(14)
	for i := 0; i < n; i++ {
		k := keys[rng.Intn(len(keys))]
		v := vals[rng.Intn(len(vals))]
		// Random dirt: typo in the key or a swapped value.
		if rng.Intn(4) == 0 {
			b := []byte(k)
			b[rng.Intn(len(b))] = byte('a' + rng.Intn(26))
			k = string(b)
		}
		if err := rel.Append(dataset.Tuple{k, v, k + v}); err != nil {
			panic(err)
		}
	}
	set, err := fd.NewSet([]*fd.FD{
		fd.MustParse(schema, "A->B"),
		fd.MustParse(schema, "A->C"),
	}, 0.3)
	if err != nil {
		panic(err)
	}
	cfg, err := fd.NewDistConfig(rel, 0.7, 0.3)
	if err != nil {
		panic(err)
	}
	return rel, set, cfg
}

// TestRepairInvariantsQuick drives the multi-FD heuristics over random
// instances and checks the paper's contract on every output: the repair is
// FT-consistent, closed-world valid, costs what DatabaseCost says, and is
// a fixpoint (repairing again changes nothing).
func TestRepairInvariantsQuick(t *testing.T) {
	check := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		rel, set, cfg := randomRelation(rng)
		for _, algo := range []multiAlgo{repair.ApproM, repair.GreedyM} {
			res, err := algo(rel, set, cfg, repair.Options{})
			if err != nil {
				t.Logf("seed %d: %v", seed, err)
				return false
			}
			if err := repair.VerifyFTConsistent(res.Repaired, set, cfg); err != nil {
				t.Logf("seed %d: %v", seed, err)
				return false
			}
			if err := repair.VerifyValid(rel, res.Repaired, set); err != nil {
				t.Logf("seed %d: %v", seed, err)
				return false
			}
			if got := cfg.DatabaseCost(rel, res.Repaired); got != res.Cost {
				t.Logf("seed %d: cost mismatch %v vs %v", seed, got, res.Cost)
				return false
			}
			// Fixpoint: a second repair is a no-op.
			again, err := algo(res.Repaired, set, cfg, repair.Options{})
			if err != nil {
				t.Logf("seed %d: second repair: %v", seed, err)
				return false
			}
			if len(again.Changed) != 0 {
				t.Logf("seed %d: second repair changed %v", seed, again.Changed)
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// TestDetectRepairConsistency: every pattern pair Detect reports before the
// repair is gone afterwards.
func TestDetectRepairConsistency(t *testing.T) {
	for seed := int64(0); seed < 10; seed++ {
		rng := rand.New(rand.NewSource(seed))
		rel, set, cfg := randomRelation(rng)
		before := repair.Detect(rel, set, cfg, repair.Options{})
		res, err := repair.GreedyM(rel, set, cfg, repair.Options{})
		if err != nil {
			t.Fatal(err)
		}
		after := repair.Detect(res.Repaired, set, cfg, repair.Options{})
		if len(before) > 0 && len(after) != 0 {
			t.Fatalf("seed %d: %d residual violations", seed, len(after))
		}
	}
}
