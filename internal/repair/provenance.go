package repair

import (
	"strings"

	"ftrepair/internal/dataset"
	"ftrepair/internal/fd"
	"ftrepair/internal/ledger"
	"ftrepair/internal/vgraph"
)

// eventBuf collects one run's (or one component's) ledger events while the
// repair applies. A nil *eventBuf disables collection — the apply paths pay
// one nil check per written cell and nothing else, which is what keeps the
// ledgered hot path within the documented overhead budget. Buffers are
// never shared across goroutines: multiRepair gives each component its own
// and flattens them in component order, so the collected stream is
// scheduling-independent before Ledger.Commit even sorts it.
type eventBuf struct {
	// fdLabel names the FD context of join-target events, which span every
	// FD of a component and have no single justifying dependency.
	fdLabel string
	events  []ledger.RepairEvent
}

// newEventBuf returns a collector when the run wants one, nil otherwise.
func newEventBuf(opts Options) *eventBuf {
	if opts.Ledger == nil {
		return nil
	}
	return &eventBuf{}
}

// take returns the collected events (nil-safe).
func (b *eventBuf) take() []ledger.RepairEvent {
	if b == nil {
		return nil
	}
	return b.events
}

// fdSetLabel names a component's FD set for join-target events.
func fdSetLabel(sub *fd.Set) string {
	parts := make([]string, len(sub.FDs))
	for i, f := range sub.FDs {
		parts[i] = f.String()
	}
	return strings.Join(parts, " & ")
}

// vertexTemplate pre-fills the justification shared by every cell event of
// one pattern repair: the FD, both pattern projections, and the violation
// edge's repair weight and distance.
func vertexTemplate(g *vgraph.Graph, from, to int) ledger.RepairEvent {
	attrs := g.FD.Attrs()
	e := ledger.RepairEvent{
		FD:       g.FD.String(),
		EdgeFrom: strings.Join(g.Vertices[from].Rep.Project(attrs), "|"),
		EdgeTo:   strings.Join(g.Vertices[to].Rep.Project(attrs), "|"),
	}
	for _, n := range g.Neighbors(from) {
		if n.To == to {
			e.EdgeW, e.EdgeD = n.W, n.D
			break
		}
	}
	return e
}

// record appends one cell event. Callers check b != nil and old != new
// first, so the disabled path never constructs events.
func (b *eventBuf) record(e ledger.RepairEvent) {
	b.events = append(b.events, e)
}

// cellEvent fills the cell-address half of an event from a template.
func cellEvent(tmpl ledger.RepairEvent, rel *dataset.Relation, cfg *fd.DistConfig, row, col int, old, new string) ledger.RepairEvent {
	e := tmpl
	e.Row, e.Col = row, col
	e.Attr = rel.Schema.Attr(col).Name
	e.Old, e.New = old, new
	e.CostDelta = cfg.RepairDist(col, old, new)
	return e
}
