//go:build !race

package repair_test

// raceEnabled reports whether the race detector instruments this build.
const raceEnabled = false
