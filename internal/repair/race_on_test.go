//go:build race

package repair_test

// raceEnabled reports whether the race detector instruments this build.
// Race mode adds bookkeeping allocations and intentionally drops
// sync.Pool items to shake out misuse, so allocation-count assertions
// are meaningless under it.
const raceEnabled = true
