// Package repair implements the paper's contribution: cost-based
// fault-tolerant data repairing. It provides the single-FD algorithms of §3
// (ExactS, the expansion-based optimal algorithm, and GreedyS, the greedy
// approximation) and the multi-FD algorithms of §4 (ExactM over joined
// maximal independent sets, ApproM joining per-FD greedy results, and
// GreedyM, the synchronization-aware joint greedy), together with validity
// and FT-consistency verification.
//
// Algorithm inventory (paper Table 2):
//
//	ExactS  §3.1  O(μ·|V|·|E|)    optimal, single FD
//	GreedyS §3.2  O(|Î|·|V|)      heuristic, single FD
//	ExactM  §4.2  O(|V|^(|Σ|+1))  optimal, multiple FDs
//	ApproM  §4.3  O(|V|²·|Σ|)     per-FD greedy + join
//	GreedyM §4.4  O(|Σ|·|V|²)     joint greedy with cross-FD synchronization
package repair

import (
	"errors"
	"fmt"
	"time"

	"ftrepair/internal/dataset"
	"ftrepair/internal/fd"
	"ftrepair/internal/ledger"
	"ftrepair/internal/obs"
	"ftrepair/internal/vgraph"
)

// Result reports a repair: the repaired relation plus accounting.
type Result struct {
	Repaired *dataset.Relation
	// Cost is the Eq-4 repair cost between the input and the repaired
	// database (sum of per-cell distances).
	Cost float64
	// Changed lists the modified cells.
	Changed []dataset.Cell
	// Algorithm names the algorithm that produced the repair.
	Algorithm string
	// Elapsed is the wall-clock repair time.
	Elapsed time.Duration
	// Stats carries algorithm-specific counters (expansion nodes, pruned
	// subtrees, targets considered, ...). May be nil. Write through AddStat
	// (enforced by the obsguard repairlint analyzer outside this package)
	// so counters stay a consistent view over the obs registry.
	Stats map[string]int
}

// AddStat accumulates n into the named Stats counter, allocating the map on
// first use. This is the sanctioned write path for Stats outside
// internal/repair: direct map writes bypass the registry bookkeeping and
// are flagged by the obsguard analyzer.
func (res *Result) AddStat(key string, n int) {
	if res.Stats == nil {
		res.Stats = make(map[string]int)
	}
	res.Stats[key] += n
}

// Options tunes the repair algorithms.
type Options struct {
	// Graph options (index on/off) for violation-graph construction.
	Graph vgraph.Options
	// DisablePruning turns off expansion-tree bound pruning (exact
	// algorithms; ablation).
	DisablePruning bool
	// NaturalOrder disables the frequency-descending access order
	// (ablation).
	NaturalOrder bool
	// MaxNodes caps expansion-tree width for the exact algorithms.
	MaxNodes int
	// DisableTargetTree makes the multi-FD algorithms search targets by
	// linear scan instead of the §5 target tree (ablation).
	DisableTargetTree bool
	// MaxMISPerFD caps how many maximal independent sets ExactM enumerates
	// per FD; 0 means unlimited. When the cap is hit ExactM returns an
	// error (the instance needs the greedy algorithms).
	MaxMISPerFD int
	// Parallel repairs up to this many FD-graph components concurrently.
	// Components have disjoint attribute sets (that is what makes them
	// components), so their repairs commute and the result is identical to
	// the sequential one. Values below 2 mean sequential.
	Parallel int
	// Cancel, when non-nil, makes the algorithms abandon the computation as
	// soon as the channel is closed: the hot loops (the ExactS/ExactM
	// expansion search, the greedy set growth, the GreedyM joint selection)
	// poll it and return the work committed so far together with
	// ErrCanceled. Long-running repairs driven by servers or CLIs close the
	// channel from a signal handler or a cancel endpoint.
	Cancel <-chan struct{}
	// Trace, when non-nil, collects phase-scoped spans (graph builds, MIS
	// expansion, greedy growth, target search, apply) for this run. Purely
	// observational: the algorithms never consult it, so tracing cannot
	// perturb repair decisions. Metrics flow into the obs default registry
	// whether or not a trace is attached.
	Trace *obs.Trace
	// Ledger, when non-nil, receives every applied cell repair as a
	// structured event with its justification (FD, violation edge or
	// join-target, per-cell cost delta). Each run commits exactly once, in
	// finish — the same single-flush-point pattern as FlushRunStats — and
	// partial (canceled) runs commit the work they applied. Like Trace,
	// purely observational: repair decisions never consult the sink, and
	// the committed event stream is bit-identical at any worker count.
	Ledger ledger.Sink
}

// ErrCanceled is returned when Options.Cancel fires mid-repair. The Result
// returned alongside it is a partial repair: components (or, for the greedy
// algorithms, set-growth steps) completed before the cancellation are
// applied, the rest of the relation is untouched. Partial results are not
// FT-consistent in general.
var ErrCanceled = errors.New("repair: canceled")

// graphOpts returns the graph-construction options with the repair-level
// cancellation threaded through, so a cancel fired mid-build also stops
// pair verification instead of waiting for the whole graph.
func graphOpts(opts Options) vgraph.Options {
	g := opts.Graph
	if g.Cancel == nil {
		g.Cancel = opts.Cancel
	}
	if g.Trace == nil {
		g.Trace = opts.Trace
	}
	return g
}

// cacheSnap freezes the distance-cache counters at the start of a repair so
// per-run deltas can be reported even though the cache (and its cumulative
// counters) outlives individual runs. Plane counts are snapped separately:
// they split the cache totals into fast-path and fall-through traffic.
type cacheSnap struct{ hits, misses, planeHits, planeMisses uint64 }

func snapCacheStats(cfg *fd.DistConfig) cacheSnap {
	if cfg.Cache == nil {
		return cacheSnap{}
	}
	h, m := cfg.Cache.Counters()
	ph, pm := cfg.Cache.PlaneCounters()
	return cacheSnap{hits: h, misses: m, planeHits: ph, planeMisses: pm}
}

// addCacheStats records the distance-cache hit/miss deltas since snap into
// the stats map under "distCacheHits"/"distCacheMisses", and the
// distance-plane share of that traffic under
// "distPlaneHits"/"distPlaneMisses".
func addCacheStats(stats map[string]int, cfg *fd.DistConfig, snap cacheSnap) {
	if cfg.Cache == nil || stats == nil {
		return
	}
	h, m := cfg.Cache.Counters()
	stats["distCacheHits"] += int(h - snap.hits)
	stats["distCacheMisses"] += int(m - snap.misses)
	ph, pm := cfg.Cache.PlaneCounters()
	stats["distPlaneHits"] += int(ph - snap.planeHits)
	stats["distPlaneMisses"] += int(pm - snap.planeMisses)
}

// canceled reports whether the cancel channel (possibly nil) has fired.
func canceled(ch <-chan struct{}) bool {
	if ch == nil {
		return false
	}
	select {
	case <-ch:
		return true
	default:
		return false
	}
}

// finish takes the elapsed wall time rather than the start instant so that
// repair decision code never holds a clock reading as data — callers pass
// time.Since(start) at the return point (nondeterm invariant, DESIGN.md §15).
//
// It is also the run's single ledger flush point, mirroring FlushRunStats:
// every algorithm funnels its applied events here exactly once, canceled
// partial runs included, so a sink sees each applied cell exactly once.
func finish(orig *dataset.Relation, repaired *dataset.Relation, cfg *fd.DistConfig, algorithm string, elapsed time.Duration, stats map[string]int, sink ledger.Sink, events []ledger.RepairEvent) (*Result, error) {
	changed, err := dataset.Diff(orig, repaired)
	if err != nil {
		return nil, err
	}
	// The one flush point for run-level stats: every algorithm funnels its
	// finished (or canceled-partial) Result through finish, so registry
	// totals see each run exactly once. Graph vertex/edge totals are
	// excluded — vgraph.Build flushes those at construction.
	obs.FlushRunStats(stats)
	obs.ObserveRepair(algorithm, elapsed)
	if sink != nil && len(events) > 0 {
		for i := range events {
			events[i].Algorithm = algorithm
		}
		sink.Commit(events)
	}
	return &Result{
		Repaired:  repaired,
		Cost:      cfg.DatabaseCost(orig, repaired),
		Changed:   changed,
		Algorithm: algorithm,
		Elapsed:   elapsed,
		Stats:     stats,
	}, nil
}

// Partial applies only the selected repaired cells onto the original
// relation, for human-in-the-loop workflows where a reviewer approves a
// subset of the proposed repairs (the user-guided complement the paper
// discusses). Cells not in res.Changed are ignored. The result may not be
// FT-consistent — it reflects exactly the approved subset.
func (res *Result) Partial(orig *dataset.Relation, approved []dataset.Cell) *dataset.Relation {
	proposed := make(map[dataset.Cell]bool, len(res.Changed))
	for _, c := range res.Changed {
		proposed[c] = true
	}
	out := orig.Clone()
	for _, c := range approved {
		if proposed[c] {
			out.Set(c, res.Repaired.Get(c))
		}
	}
	return out
}

// VerifyFTConsistent checks that rel is FT-consistent w.r.t. every FD in
// set, returning a descriptive error for the first violation found.
func VerifyFTConsistent(rel *dataset.Relation, set *fd.Set, cfg *fd.DistConfig) error {
	for i, f := range set.FDs {
		patterns := fd.DistinctProjections(rel, f)
		for a := 0; a < len(patterns); a++ {
			for b := a + 1; b < len(patterns); b++ {
				if cfg.FTViolates(f, set.Tau[i], patterns[a], patterns[b]) {
					return fmt.Errorf("repair: FT-violation of %s between %v and %v (dist %.4f, tau %.4f)",
						f, patterns[a].Project(f.Attrs()), patterns[b].Project(f.Attrs()),
						cfg.Dist(f, patterns[a], patterns[b]), set.Tau[i])
				}
			}
		}
	}
	return nil
}

// VerifyValid checks the closed-world validity of a repair: for every tuple
// of repaired and every FD, the projected values must occur together in some
// tuple of the original database (§2.2, valid tuple repair).
func VerifyValid(orig, repaired *dataset.Relation, set *fd.Set) error {
	for _, f := range set.FDs {
		keys := make(map[string]bool, orig.Len())
		for _, t := range orig.Tuples {
			keys[t.Key(f.Attrs())] = true
		}
		for i, t := range repaired.Tuples {
			if !keys[t.Key(f.Attrs())] {
				return fmt.Errorf("repair: tuple %d has projection %v on %s absent from the original database",
					i, t.Project(f.Attrs()), f)
			}
		}
	}
	return nil
}

// applyVertexRepairs writes pattern repairs into a cloned relation: each
// entry maps a graph vertex to the vertex whose pattern its rows adopt.
// When ev is non-nil, every actually changed cell is recorded with the
// violation edge that justified the repair.
func applyVertexRepairs(rel *dataset.Relation, g *vgraph.Graph, target map[int]int, cfg *fd.DistConfig, ev *eventBuf) *dataset.Relation {
	out := rel.Clone()
	applyInPlace(out, g, target, cfg, ev)
	return out
}
