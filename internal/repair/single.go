package repair

import (
	"errors"
	"math"
	"time"

	"ftrepair/internal/bitset"
	"ftrepair/internal/dataset"
	"ftrepair/internal/fd"
	"ftrepair/internal/mis"
	"ftrepair/internal/obs"
	"ftrepair/internal/vgraph"
)

// ExactS repairs rel w.r.t. a single FD optimally (§3.1): it finds the best
// maximal independent set of the violation graph by expansion with
// lower/upper-bound pruning, then repairs every excluded pattern to its
// cheapest neighbor in the set. The search is exponential in the worst case
// (the problem is NP-hard, Theorem 3); Options.MaxNodes bounds the tree and
// yields an error when exceeded.
func ExactS(rel *dataset.Relation, f *fd.FD, cfg *fd.DistConfig, tau float64, opts Options) (*Result, error) {
	start := time.Now()
	snap := snapCacheStats(cfg)
	g := vgraph.Build(rel, f, cfg, tau, graphOpts(opts))
	sp := obs.Begin(opts.Trace, obs.PhaseExpand)
	sp.SetFD(f.String())
	res, err := mis.BestMIS(g, mis.Options{
		DisablePruning: opts.DisablePruning,
		NaturalOrder:   opts.NaturalOrder,
		MaxNodes:       opts.MaxNodes,
		Cancel:         opts.Cancel,
	})
	sp.Add("nodes", int64(res.NodesExplored))
	sp.Add("pruned", int64(res.Pruned))
	sp.End()
	if errors.Is(err, mis.ErrCanceled) {
		// Canceled mid-search: no set was chosen, so the partial repair is
		// the untouched input.
		stats := map[string]int{
			"vertices": len(g.Vertices),
			"edges":    g.NumEdges(),
		}
		addCacheStats(stats, cfg, snap)
		partial, ferr := finish(rel, rel.Clone(), cfg, "ExactS", time.Since(start), stats, opts.Ledger, nil)
		if ferr != nil {
			return nil, ferr
		}
		return partial, ErrCanceled
	}
	if err != nil {
		return nil, err
	}
	ev := newEventBuf(opts)
	ap := obs.Begin(opts.Trace, obs.PhaseApply)
	repaired := applyVertexRepairs(rel, g, repairTargets(g, res.Set), cfg, ev)
	ap.End()
	stats := map[string]int{
		"vertices": len(g.Vertices),
		"edges":    g.NumEdges(),
		"nodes":    res.NodesExplored,
		"pruned":   res.Pruned,
	}
	addCacheStats(stats, cfg, snap)
	return finish(rel, repaired, cfg, "ExactS", time.Since(start), stats, opts.Ledger, ev.take())
}

// repairTargets maps every vertex outside the independent set to its
// cheapest neighbor inside it.
func repairTargets(g *vgraph.Graph, set []int) map[int]int {
	in := bitset.New(len(g.Vertices))
	for _, v := range set {
		in.Set(v)
	}
	target := make(map[int]int)
	for v := range g.Vertices {
		if in.Has(v) {
			continue
		}
		best, bestW := -1, math.Inf(1)
		for _, e := range g.Neighbors(v) {
			if in.Has(e.To) && e.W < bestW {
				best, bestW = e.To, e.W
			}
		}
		if best >= 0 {
			target[v] = best
		}
	}
	return target
}

// GreedyS repairs rel w.r.t. a single FD with the greedy heuristic of §3.2
// (Algorithm 2): grow an expected-best independent set by repeatedly adding
// the pattern with the smallest incremental repair cost (Eq. 8), then
// repair excluded patterns to their cheapest chosen neighbor.
func GreedyS(rel *dataset.Relation, f *fd.FD, cfg *fd.DistConfig, tau float64, opts Options) (*Result, error) {
	start := time.Now()
	snap := snapCacheStats(cfg)
	g := vgraph.Build(rel, f, cfg, tau, graphOpts(opts))
	sp := obs.Begin(opts.Trace, obs.PhaseGreedyGrow)
	sp.SetFD(f.String())
	set := greedySet(g, opts.Cancel)
	sp.Add("setSize", int64(len(set)))
	sp.End()
	ev := newEventBuf(opts)
	ap := obs.Begin(opts.Trace, obs.PhaseApply)
	repaired := applyVertexRepairs(rel, g, repairTargets(g, set), cfg, ev)
	ap.End()
	stats := map[string]int{
		"vertices": len(g.Vertices),
		"edges":    g.NumEdges(),
		"setSize":  len(set),
	}
	addCacheStats(stats, cfg, snap)
	res, err := finish(rel, repaired, cfg, "GreedyS", time.Since(start), stats, opts.Ledger, ev.take())
	if err == nil && canceled(opts.Cancel) {
		// The greedy growth stopped early: excluded vertices without an
		// in-set neighbor stay unrepaired.
		return res, ErrCanceled
	}
	return res, err
}

// The greedy growth loop itself (greedySet and its retained naive
// reference greedySetNaive) lives in greedyheap.go alongside the indexed
// min-heap that makes it fast.
