package repair

import (
	"errors"
	"math"
	"time"

	"ftrepair/internal/dataset"
	"ftrepair/internal/fd"
	"ftrepair/internal/mis"
	"ftrepair/internal/vgraph"
)

// ExactS repairs rel w.r.t. a single FD optimally (§3.1): it finds the best
// maximal independent set of the violation graph by expansion with
// lower/upper-bound pruning, then repairs every excluded pattern to its
// cheapest neighbor in the set. The search is exponential in the worst case
// (the problem is NP-hard, Theorem 3); Options.MaxNodes bounds the tree and
// yields an error when exceeded.
func ExactS(rel *dataset.Relation, f *fd.FD, cfg *fd.DistConfig, tau float64, opts Options) (*Result, error) {
	start := time.Now()
	snap := snapCacheStats(cfg)
	g := vgraph.Build(rel, f, cfg, tau, graphOpts(opts))
	res, err := mis.BestMIS(g, mis.Options{
		DisablePruning: opts.DisablePruning,
		NaturalOrder:   opts.NaturalOrder,
		MaxNodes:       opts.MaxNodes,
		Cancel:         opts.Cancel,
	})
	if errors.Is(err, mis.ErrCanceled) {
		// Canceled mid-search: no set was chosen, so the partial repair is
		// the untouched input.
		stats := map[string]int{
			"vertices": len(g.Vertices),
			"edges":    g.NumEdges(),
		}
		addCacheStats(stats, cfg, snap)
		partial, ferr := finish(rel, rel.Clone(), cfg, "ExactS", start, stats)
		if ferr != nil {
			return nil, ferr
		}
		return partial, ErrCanceled
	}
	if err != nil {
		return nil, err
	}
	repaired := applyVertexRepairs(rel, g, repairTargets(g, res.Set))
	stats := map[string]int{
		"vertices": len(g.Vertices),
		"edges":    g.NumEdges(),
		"nodes":    res.NodesExplored,
		"pruned":   res.Pruned,
	}
	addCacheStats(stats, cfg, snap)
	return finish(rel, repaired, cfg, "ExactS", start, stats)
}

// repairTargets maps every vertex outside the independent set to its
// cheapest neighbor inside it.
func repairTargets(g *vgraph.Graph, set []int) map[int]int {
	in := make(map[int]bool, len(set))
	for _, v := range set {
		in[v] = true
	}
	target := make(map[int]int)
	for v := range g.Vertices {
		if in[v] {
			continue
		}
		best, bestW := -1, math.Inf(1)
		for _, e := range g.Neighbors(v) {
			if in[e.To] && e.W < bestW {
				best, bestW = e.To, e.W
			}
		}
		if best >= 0 {
			target[v] = best
		}
	}
	return target
}

// GreedyS repairs rel w.r.t. a single FD with the greedy heuristic of §3.2
// (Algorithm 2): grow an expected-best independent set by repeatedly adding
// the pattern with the smallest incremental repair cost (Eq. 8), then
// repair excluded patterns to their cheapest chosen neighbor.
func GreedyS(rel *dataset.Relation, f *fd.FD, cfg *fd.DistConfig, tau float64, opts Options) (*Result, error) {
	start := time.Now()
	snap := snapCacheStats(cfg)
	g := vgraph.Build(rel, f, cfg, tau, graphOpts(opts))
	set := greedySet(g, opts.Cancel)
	repaired := applyVertexRepairs(rel, g, repairTargets(g, set))
	stats := map[string]int{
		"vertices": len(g.Vertices),
		"edges":    g.NumEdges(),
		"setSize":  len(set),
	}
	addCacheStats(stats, cfg, snap)
	res, err := finish(rel, repaired, cfg, "GreedyS", start, stats)
	if err == nil && canceled(opts.Cancel) {
		// The greedy growth stopped early: excluded vertices without an
		// in-set neighbor stay unrepaired.
		return res, ErrCanceled
	}
	return res, err
}

// greedySet runs Algorithm 2 on the pattern graph and returns the chosen
// maximal independent set. When cancel fires mid-growth the set built so far
// is returned (independent, but possibly not maximal); the caller decides
// how to surface the cancellation.
//
// Selection uses a normalized form of Eq. 7/8: a candidate is charged, per
// neighbor it dooms, only the cost *above* that neighbor's unavoidable
// minimum repair (its cheapest edge — paid in any maximal set excluding
// it), and is credited its own avoided repair cost. The literal Eq. 8 is
// myopic on two common shapes: a one-tuple typo pattern dooms its
// high-multiplicity source cheaply and gets picked first (flipping every
// legitimate tuple to the typo spelling), and a legitimate pattern
// surrounded by error patterns is charged their full — but inevitable —
// repair cost. The normalized score keeps the paper's complexity and
// resolves both.
func greedySet(g *vgraph.Graph, cancel <-chan struct{}) []int {
	if canceled(cancel) {
		return nil
	}
	n := len(g.Vertices)
	mult := func(v int) float64 { return float64(g.Vertices[v].Mult()) }

	// minOmega(v): v's cheapest outgoing edge — the floor of its repair
	// cost if it ends up excluded. avoided(v) scales it by multiplicity.
	minOmega := make([]float64, n)
	avoided := make([]float64, n)
	for v := 0; v < n; v++ {
		best := math.Inf(1)
		for _, e := range g.Neighbors(v) {
			if e.W < best {
				best = e.W
			}
		}
		if math.IsInf(best, 1) {
			best = 0 // isolated vertices are never repaired
		}
		minOmega[v] = best
		avoided[v] = mult(v) * best
	}

	// Initial cost (Eq. 7, normalized): the above-minimum cost of
	// repairing all neighbors of v to v.
	initial := make([]float64, n)
	for v := 0; v < n; v++ {
		for _, e := range g.Neighbors(v) {
			initial[v] += mult(e.To) * (e.W - minOmega[e.To])
		}
	}

	inSet := make([]bool, n)
	// blocked[v]: v has a neighbor in the set (cannot join; must repair).
	blocked := make([]bool, n)
	// repairCost[v]: current min_{u∈Î∩N(v)} ω(v,u) for blocked v.
	repairCost := make([]float64, n)
	for i := range repairCost {
		repairCost[i] = math.Inf(1)
	}
	var set []int
	add := func(v int) {
		inSet[v] = true
		set = append(set, v)
		for _, e := range g.Neighbors(v) {
			if inSet[e.To] {
				continue
			}
			blocked[e.To] = true
			if e.W < repairCost[e.To] {
				repairCost[e.To] = e.W
			}
		}
	}

	// better orders candidates: smaller net cost first; ties (exact ties
	// are common — a typo vertex's incremental equals its legitimate
	// source's avoided cost) break toward higher multiplicity, then lower
	// id for determinism.
	better := func(cost float64, v int, bestCost float64, bestV int) bool {
		if cost < bestCost-fd.Eps {
			return true
		}
		if cost > bestCost+fd.Eps {
			return false
		}
		if bestV < 0 {
			return true
		}
		mv, mb := g.Vertices[v].Mult(), g.Vertices[bestV].Mult()
		if mv != mb {
			return mv > mb
		}
		return v < bestV
	}

	// Seed with the smallest net initial cost.
	first, best := -1, math.Inf(1)
	for v := 0; v < n; v++ {
		net := initial[v] - avoided[v]
		if better(net, v, best, first) {
			first, best = v, net
		}
	}
	if first < 0 {
		return nil
	}
	add(first)

	for {
		if canceled(cancel) {
			return set
		}
		// Candidates: not chosen, not blocked.
		cand, candCost := -1, math.Inf(1)
		for v := 0; v < n; v++ {
			if inSet[v] || blocked[v] {
				continue
			}
			// Incremental cost (Eq. 8, normalized per neighbor by its
			// unavoidable minimum).
			var inc float64
			for _, e := range g.Neighbors(v) {
				if blocked[e.To] {
					// Neighbor already doomed: adding v can only lower its
					// repair cost.
					if e.W < repairCost[e.To] {
						inc += mult(e.To) * (e.W - repairCost[e.To])
					}
				} else if !inSet[e.To] {
					// Newly doomed neighbor pays its repair to v, above the
					// floor it pays in any case.
					inc += mult(e.To) * (e.W - minOmega[e.To])
				}
			}
			inc -= avoided[v]
			if better(inc, v, candCost, cand) {
				cand, candCost = v, inc
			}
		}
		if cand < 0 {
			break
		}
		add(cand)
	}
	return set
}
