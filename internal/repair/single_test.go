package repair_test

import (
	"math"
	"math/rand"
	"testing"

	"ftrepair/internal/dataset"
	"ftrepair/internal/fd"
	"ftrepair/internal/gen"
	"ftrepair/internal/repair"
)

// phi1Fixture returns the Citizens instance with phi1 and the tau producing
// the paper's Fig-2 graph shape.
func phi1Fixture(t *testing.T) (*dataset.Relation, *dataset.Relation, *fd.FD, *fd.DistConfig, float64) {
	t.Helper()
	dirty, clean := gen.Citizens()
	f := gen.CitizensFDs(dirty.Schema)[0]
	return dirty, clean, f, fd.DefaultDistConfig(dirty), 0.2
}

func TestExactSCitizensExample8(t *testing.T) {
	dirty, clean, f, cfg, tau := phi1Fixture(t)
	res, err := repair.ExactS(dirty, f, cfg, tau, repair.Options{})
	if err != nil {
		t.Fatal(err)
	}
	// Example 8: t6, t8 repair to (Masters,4); t9, t10 to (Bachelors,3).
	// On phi1's attributes the repaired table must match the ground truth.
	edu, lvl := dirty.Schema.MustIndex("Education"), dirty.Schema.MustIndex("Level")
	for i := range res.Repaired.Tuples {
		for _, c := range []int{edu, lvl} {
			if got, want := res.Repaired.Tuples[i][c], clean.Tuples[i][c]; got != want {
				t.Errorf("tuple %d attr %d = %q, want %q", i, c, got, want)
			}
		}
	}
	if len(res.Changed) != 4 {
		t.Fatalf("changed cells = %v, want 4", res.Changed)
	}
	if res.Algorithm != "ExactS" || res.Cost <= 0 || res.Stats["vertices"] != 7 {
		t.Fatalf("result metadata: %+v", res)
	}
	// Input must be untouched.
	if dirty.Tuples[5][edu] != "Masers" {
		t.Fatal("ExactS mutated its input")
	}
}

func TestGreedySCitizensExample9(t *testing.T) {
	dirty, clean, f, cfg, tau := phi1Fixture(t)
	res, err := repair.GreedyS(dirty, f, cfg, tau, repair.Options{})
	if err != nil {
		t.Fatal(err)
	}
	edu, lvl := dirty.Schema.MustIndex("Education"), dirty.Schema.MustIndex("Level")
	for i := range res.Repaired.Tuples {
		for _, c := range []int{edu, lvl} {
			if got, want := res.Repaired.Tuples[i][c], clean.Tuples[i][c]; got != want {
				t.Errorf("tuple %d attr %d = %q, want %q", i, c, got, want)
			}
		}
	}
}

func randomInstance(rng *rand.Rand, n int) (*dataset.Relation, *fd.FD, *fd.DistConfig) {
	cities := []string{"Boston", "Camden", "Dallas", "Austin", "Reno"}
	states := []string{"MA", "NJ", "TX", "TX", "NV"}
	schema := dataset.Strings("City", "State")
	rel := dataset.NewRelation(schema)
	for i := 0; i < n; i++ {
		k := rng.Intn(len(cities))
		city, state := cities[k], states[k]
		if rng.Intn(3) == 0 {
			b := []byte(city)
			b[rng.Intn(len(b))] = byte('a' + rng.Intn(26))
			city = string(b)
		}
		if rng.Intn(4) == 0 {
			state = states[rng.Intn(len(states))]
		}
		if err := rel.Append(dataset.Tuple{city, state}); err != nil {
			panic(err)
		}
	}
	f := fd.MustParse(schema, "City->State")
	return rel, f, fd.DefaultDistConfig(rel)
}

func TestSingleFDInvariants(t *testing.T) {
	// On random noisy instances: both algorithms produce FT-consistent,
	// closed-world-valid repairs, and ExactS never costs more than GreedyS.
	rng := rand.New(rand.NewSource(21))
	for trial := 0; trial < 15; trial++ {
		rel, f, cfg := randomInstance(rng, 25)
		const tau = 0.3
		set, err := fd.NewSet([]*fd.FD{f}, tau)
		if err != nil {
			t.Fatal(err)
		}
		exact, err := repair.ExactS(rel, f, cfg, tau, repair.Options{})
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		greedy, err := repair.GreedyS(rel, f, cfg, tau, repair.Options{})
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		for _, res := range []*repair.Result{exact, greedy} {
			if err := repair.VerifyFTConsistent(res.Repaired, set, cfg); err != nil {
				t.Fatalf("trial %d %s: %v", trial, res.Algorithm, err)
			}
			if err := repair.VerifyValid(rel, res.Repaired, set); err != nil {
				t.Fatalf("trial %d %s: %v", trial, res.Algorithm, err)
			}
		}
		if exact.Cost > greedy.Cost+1e-9 {
			t.Fatalf("trial %d: exact cost %v > greedy cost %v", trial, exact.Cost, greedy.Cost)
		}
	}
}

func TestExactSOptimalAmongVertexRepairs(t *testing.T) {
	// Cross-check Theorem 2 on small instances: no assignment of excluded
	// patterns to adjacent patterns beats the ExactS cost. (Brute force
	// over maximal independent sets is covered in the mis package; here we
	// sanity-check the end-to-end cost.)
	rng := rand.New(rand.NewSource(22))
	for trial := 0; trial < 10; trial++ {
		rel, f, cfg := randomInstance(rng, 12)
		exact, err := repair.ExactS(rel, f, cfg, 0.3, repair.Options{})
		if err != nil {
			t.Fatal(err)
		}
		greedy, err := repair.GreedyS(rel, f, cfg, 0.3, repair.Options{})
		if err != nil {
			t.Fatal(err)
		}
		if exact.Cost > greedy.Cost+1e-9 {
			t.Fatalf("trial %d: exact %v beaten by greedy %v", trial, exact.Cost, greedy.Cost)
		}
	}
}

func TestAlreadyConsistentIsNoop(t *testing.T) {
	schema := dataset.Strings("City", "State")
	rel, _ := dataset.FromRows(schema, [][]string{
		{"Boston", "MA"}, {"Boston", "MA"}, {"Seattle", "WA"},
	})
	f := fd.MustParse(schema, "City->State")
	cfg := fd.DefaultDistConfig(rel)
	for _, fn := range []func(*dataset.Relation, *fd.FD, *fd.DistConfig, float64, repair.Options) (*repair.Result, error){
		repair.ExactS, repair.GreedyS,
	} {
		res, err := fn(rel, f, cfg, 0.2, repair.Options{})
		if err != nil {
			t.Fatal(err)
		}
		if len(res.Changed) != 0 || res.Cost != 0 {
			t.Fatalf("consistent input repaired: %+v", res)
		}
	}
}

func TestGreedySIsolatedOnlyGraph(t *testing.T) {
	schema := dataset.Strings("City", "State")
	rel, _ := dataset.FromRows(schema, [][]string{
		{"Alpha", "A"}, {"Omega12345", "B"},
	})
	f := fd.MustParse(schema, "City->State")
	cfg := fd.DefaultDistConfig(rel)
	res, err := repair.GreedyS(rel, f, cfg, 0.1, repair.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Changed) != 0 {
		t.Fatal("isolated vertices repaired")
	}
}

func TestExactSDeterministic(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	rel, f, cfg := randomInstance(rng, 20)
	a, err := repair.ExactS(rel, f, cfg, 0.3, repair.Options{})
	if err != nil {
		t.Fatal(err)
	}
	b, err := repair.ExactS(rel, f, cfg, 0.3, repair.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(a.Cost-b.Cost) > 1e-12 || len(a.Changed) != len(b.Changed) {
		t.Fatal("ExactS not deterministic")
	}
	cells, err := dataset.Diff(a.Repaired, b.Repaired)
	if err != nil || len(cells) != 0 {
		t.Fatalf("repairs differ: %v %v", cells, err)
	}
}

func TestResultPartial(t *testing.T) {
	dirty, _, f, cfg, tau := func() (*dataset.Relation, *dataset.Relation, *fd.FD, *fd.DistConfig, float64) {
		d, c := gen.Citizens()
		return d, c, gen.CitizensFDs(d.Schema)[0], fd.DefaultDistConfig(d), 0.2
	}()
	res, err := repair.ExactS(dirty, f, cfg, tau, repair.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Changed) != 4 {
		t.Fatalf("changed = %v", res.Changed)
	}
	// Approve only the first repair.
	partial := res.Partial(dirty, res.Changed[:1])
	cells, err := dataset.Diff(dirty, partial)
	if err != nil {
		t.Fatal(err)
	}
	if len(cells) != 1 || cells[0] != res.Changed[0] {
		t.Fatalf("partial applied %v", cells)
	}
	// Approving a cell the repair never proposed is a no-op.
	bogus := res.Partial(dirty, []dataset.Cell{{Row: 0, Col: 0}})
	cells, err = dataset.Diff(dirty, bogus)
	if err != nil || len(cells) != 0 {
		t.Fatalf("bogus approval applied %v %v", cells, err)
	}
}
