package repair

import (
	"runtime"
	"sort"
	"sync"

	"ftrepair/internal/dataset"
	"ftrepair/internal/fd"
	"ftrepair/internal/targettree"
	"ftrepair/internal/vgraph"
)

// unionAttrs returns the sorted union of constraint attributes of the FDs.
func unionAttrs(fds []*fd.FD) []int {
	seen := make(map[int]bool)
	var out []int
	for _, f := range fds {
		for _, c := range f.Attrs() {
			if !seen[c] {
				seen[c] = true
				out = append(out, c)
			}
		}
	}
	sort.Ints(out)
	return out
}

// levelFor turns one FD's independent set (vertex ids) into a target-tree
// level.
func levelFor(g *vgraph.Graph, set []int) targettree.Level {
	attrs := g.FD.Attrs()
	l := targettree.Level{Attrs: attrs}
	for _, v := range set {
		l.Patterns = append(l.Patterns, g.Vertices[v].Rep.Project(attrs))
	}
	return l
}

// levelsFor turns per-FD independent sets into target-tree levels.
func levelsFor(graphs []*vgraph.Graph, sets [][]int) []targettree.Level {
	levels := make([]targettree.Level, len(graphs))
	for i, g := range graphs {
		levels[i] = levelFor(g, sets[i])
	}
	return levels
}

// tupleGroup is a set of rows sharing the same projection over the
// component's attributes; they repair identically.
type tupleGroup struct {
	rep  dataset.Tuple
	rows []int
}

// groupTuples groups the relation's rows by their projection over attrs.
func groupTuples(rel *dataset.Relation, attrs []int) []tupleGroup {
	byKey := make(map[string]int)
	var groups []tupleGroup
	for i, t := range rel.Tuples {
		k := t.Key(attrs)
		gi, ok := byKey[k]
		if !ok {
			gi = len(groups)
			byKey[k] = gi
			groups = append(groups, tupleGroup{rep: t})
		}
		groups[gi].rows = append(groups[gi].rows, i)
	}
	return groups
}

// keysFor builds the set of projection keys of one FD's chosen independent
// set.
func keysFor(g *vgraph.Graph, set []int) map[string]bool {
	m := make(map[string]bool, len(set))
	for _, v := range set {
		m[g.Vertices[v].Rep.Key(g.FD.Attrs())] = true
	}
	return m
}

// chosenKeys builds, per FD, the set of projection keys of the chosen
// independent set.
func chosenKeys(graphs []*vgraph.Graph, sets [][]int) []map[string]bool {
	keys := make([]map[string]bool, len(graphs))
	for i, g := range graphs {
		keys[i] = keysFor(g, sets[i])
	}
	return keys
}

// needsRepair reports whether the group's representative has a projection
// outside some FD's chosen set.
func needsRepair(rep dataset.Tuple, graphs []*vgraph.Graph, keys []map[string]bool) bool {
	for i, g := range graphs {
		if !keys[i][rep.Key(g.FD.Attrs())] {
			return true
		}
	}
	return false
}

// planWorkers picks the tuple-group fan-out for one plan evaluation: the
// machine width when the caller is not already evaluating plans
// concurrently, 1 otherwise (exactComponent's combination workers own the
// cores then, and nesting the fan-outs would only oversubscribe them).
func planWorkers(parallelPlans bool) int {
	if parallelPlans {
		return 1
	}
	return runtime.GOMAXPROCS(0)
}

// planner evaluates repair plans — per-FD independent sets joined into a
// target tree — over a fixed grouping of the relation's rows. The group
// Nearest searches of one plan are independent, so costs fans them across
// workers goroutines; the cost reduction always folds in group order, so
// totals are bitwise identical at any worker count.
type planner struct {
	groups      []tupleGroup
	graphs      []*vgraph.Graph
	cfg         *fd.DistConfig
	disableTree bool
	cancel      <-chan struct{}
	// workers bounds the per-plan fan-out; values below 2 evaluate
	// sequentially.
	workers int
}

// groupResult is one group's nearest-target answer.
type groupResult struct {
	tg      targettree.Target
	cost    float64
	visited int
}

// costs evaluates the total cost of repairing the relation with the given
// chosen-set keys and target-tree levels, also returning the chosen target
// per group (nil for groups that keep their values). abortAbove, when
// non-nil, supplies the incumbent cost to prune against: evaluation stops
// with ok=false as soon as the accumulated (group-ordered) cost exceeds
// it. It is re-read as the fold advances, so a concurrently improving
// incumbent (exactComponent's watermark) tightens pruning mid-plan; since
// the incumbent never rises and the fold order is fixed, a plan at least
// as cheap as the final incumbent is never aborted. A fired cancel channel
// also stops evaluation with ok=false.
func (p *planner) costs(keys []map[string]bool, levels []targettree.Level, abortAbove func() float64) (targets []*targettree.Target, cost float64, visited int, ok bool) {
	tree, err := targettree.Build(levels)
	if err != nil {
		return nil, 0, 0, false
	}
	targets = make([]*targettree.Target, len(p.groups))
	// needs collects the indices of groups that actually repair; the
	// nearest-target searches below only run for those.
	var needs []int
	for gi := range p.groups {
		if needsRepair(p.groups[gi].rep, p.graphs, keys) {
			needs = append(needs, gi)
		}
	}
	if p.workers >= 2 && len(needs) >= 2*p.workers {
		return p.costsParallel(tree, targets, needs, abortAbove)
	}
	for _, gi := range needs {
		if canceled(p.cancel) {
			return nil, cost, visited, false
		}
		g := &p.groups[gi]
		res := p.nearest(tree, g.rep)
		visited += res.visited
		targets[gi] = &res.tg
		cost += float64(len(g.rows)) * res.cost
		if abortAbove != nil && cost > abortAbove() {
			return nil, cost, visited, false
		}
	}
	return targets, cost, visited, true
}

// costsParallel is the fan-out path of costs: chunks of groups are
// searched concurrently (strided across workers), then folded
// sequentially in group order so cost accumulation and abort decisions are
// independent of scheduling. Pruning happens at chunk granularity — a
// chunk is searched in full before its fold can abort — trading a bounded
// amount of wasted search for determinism.
func (p *planner) costsParallel(tree *targettree.Tree, targets []*targettree.Target, needs []int, abortAbove func() float64) (_ []*targettree.Target, cost float64, visited int, ok bool) {
	res := make([]groupResult, len(needs))
	chunk := p.workers * 8
	for base := 0; base < len(needs); base += chunk {
		end := base + chunk
		if end > len(needs) {
			end = len(needs)
		}
		var wg sync.WaitGroup
		for w := 0; w < p.workers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				for k := base + w; k < end; k += p.workers {
					if canceled(p.cancel) {
						return
					}
					res[k] = p.nearest(tree, p.groups[needs[k]].rep)
				}
			}(w)
		}
		wg.Wait()
		if canceled(p.cancel) {
			return nil, cost, visited, false
		}
		for k := base; k < end; k++ {
			gi := needs[k]
			visited += res[k].visited
			targets[gi] = &res[k].tg
			cost += float64(len(p.groups[gi].rows)) * res[k].cost
			if abortAbove != nil && cost > abortAbove() {
				return nil, cost, visited, false
			}
		}
	}
	return targets, cost, visited, true
}

// nearest runs one group's target search through the configured strategy.
func (p *planner) nearest(tree *targettree.Tree, rep dataset.Tuple) groupResult {
	var r groupResult
	if p.disableTree {
		r.tg, r.cost, r.visited = tree.NearestScan(rep, p.cfg.RepairDist, p.cancel)
	} else {
		r.tg, r.cost, r.visited = tree.Nearest(rep, p.cfg.RepairDist, p.cancel)
	}
	return r
}

// applyPlan writes the chosen targets into out.
func applyPlan(out *dataset.Relation, groups []tupleGroup, targets []*targettree.Target) {
	for gi, tg := range targets {
		if tg == nil {
			continue
		}
		for _, row := range groups[gi].rows {
			for i, c := range tg.Cols {
				out.Tuples[row][c] = tg.Vals[i]
			}
		}
	}
}
