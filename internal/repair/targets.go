package repair

import (
	"sort"

	"ftrepair/internal/dataset"
	"ftrepair/internal/fd"
	"ftrepair/internal/targettree"
	"ftrepair/internal/vgraph"
)

// unionAttrs returns the sorted union of constraint attributes of the FDs.
func unionAttrs(fds []*fd.FD) []int {
	seen := make(map[int]bool)
	var out []int
	for _, f := range fds {
		for _, c := range f.Attrs() {
			if !seen[c] {
				seen[c] = true
				out = append(out, c)
			}
		}
	}
	sort.Ints(out)
	return out
}

// levelsFor turns per-FD independent sets (vertex ids) into target-tree
// levels.
func levelsFor(graphs []*vgraph.Graph, sets [][]int) []targettree.Level {
	levels := make([]targettree.Level, len(graphs))
	for i, g := range graphs {
		attrs := g.FD.Attrs()
		l := targettree.Level{Attrs: attrs}
		for _, v := range sets[i] {
			l.Patterns = append(l.Patterns, g.Vertices[v].Rep.Project(attrs))
		}
		levels[i] = l
	}
	return levels
}

// tupleGroup is a set of rows sharing the same projection over the
// component's attributes; they repair identically.
type tupleGroup struct {
	rep  dataset.Tuple
	rows []int
}

// groupTuples groups the relation's rows by their projection over attrs.
func groupTuples(rel *dataset.Relation, attrs []int) []tupleGroup {
	byKey := make(map[string]int)
	var groups []tupleGroup
	for i, t := range rel.Tuples {
		k := t.Key(attrs)
		gi, ok := byKey[k]
		if !ok {
			gi = len(groups)
			byKey[k] = gi
			groups = append(groups, tupleGroup{rep: t})
		}
		groups[gi].rows = append(groups[gi].rows, i)
	}
	return groups
}

// chosenKeys builds, per FD, the set of projection keys of the chosen
// independent set.
func chosenKeys(graphs []*vgraph.Graph, sets [][]int) []map[string]bool {
	keys := make([]map[string]bool, len(graphs))
	for i, g := range graphs {
		m := make(map[string]bool, len(sets[i]))
		for _, v := range sets[i] {
			m[g.Vertices[v].Rep.Key(g.FD.Attrs())] = true
		}
		keys[i] = m
	}
	return keys
}

// needsRepair reports whether the group's representative has a projection
// outside some FD's chosen set.
func needsRepair(rep dataset.Tuple, graphs []*vgraph.Graph, keys []map[string]bool) bool {
	for i, g := range graphs {
		if !keys[i][rep.Key(g.FD.Attrs())] {
			return true
		}
	}
	return false
}

// planCosts evaluates the total cost of repairing rel with the given per-FD
// independent sets, also returning the chosen target per group (nil for
// groups that keep their values). abortAbove enables early exit: when the
// accumulated cost exceeds it, evaluation stops with ok=false. A fired
// cancel channel also stops evaluation with ok=false.
func planCosts(groups []tupleGroup, graphs []*vgraph.Graph, sets [][]int, cfg *fd.DistConfig, disableTree bool, cancel <-chan struct{}, abortAbove float64) (targets []*targettree.Target, cost float64, visited int, ok bool) {
	tree, err := targettree.Build(levelsFor(graphs, sets))
	if err != nil {
		return nil, 0, 0, false
	}
	keys := chosenKeys(graphs, sets)
	targets = make([]*targettree.Target, len(groups))
	for gi := range groups {
		if canceled(cancel) {
			return nil, cost, visited, false
		}
		g := &groups[gi]
		if !needsRepair(g.rep, graphs, keys) {
			continue
		}
		var tg targettree.Target
		var c float64
		var v int
		if disableTree {
			tg, c, v = tree.NearestScan(g.rep, cfg.RepairDist, cancel)
		} else {
			tg, c, v = tree.Nearest(g.rep, cfg.RepairDist, cancel)
		}
		visited += v
		targets[gi] = &tg
		cost += float64(len(g.rows)) * c
		if cost > abortAbove {
			return nil, cost, visited, false
		}
	}
	return targets, cost, visited, true
}

// applyPlan writes the chosen targets into out.
func applyPlan(out *dataset.Relation, groups []tupleGroup, targets []*targettree.Target) {
	for gi, tg := range targets {
		if tg == nil {
			continue
		}
		for _, row := range groups[gi].rows {
			for i, c := range tg.Cols {
				out.Tuples[row][c] = tg.Vals[i]
			}
		}
	}
}
