package repair

import (
	"runtime"
	"sort"
	"sync"

	"ftrepair/internal/bitset"
	"ftrepair/internal/dataset"
	"ftrepair/internal/fd"
	"ftrepair/internal/ledger"
	"ftrepair/internal/obs"
	"ftrepair/internal/targettree"
	"ftrepair/internal/vgraph"
)

// unionAttrs returns the sorted union of constraint attributes of the FDs.
func unionAttrs(fds []*fd.FD) []int {
	seen := make(map[int]bool)
	var out []int
	for _, f := range fds {
		for _, c := range f.Attrs() {
			if !seen[c] {
				seen[c] = true
				out = append(out, c)
			}
		}
	}
	sort.Ints(out)
	return out
}

// levelFor turns one FD's independent set (vertex ids) into a target-tree
// level.
func levelFor(g *vgraph.Graph, set []int) targettree.Level {
	attrs := g.FD.Attrs()
	l := targettree.Level{Attrs: attrs}
	for _, v := range set {
		l.Patterns = append(l.Patterns, g.Vertices[v].Rep.Project(attrs))
	}
	return l
}

// levelsFor turns per-FD independent sets into target-tree levels.
func levelsFor(graphs []*vgraph.Graph, sets [][]int) []targettree.Level {
	levels := make([]targettree.Level, len(graphs))
	for i, g := range graphs {
		levels[i] = levelFor(g, sets[i])
	}
	return levels
}

// tupleGroup is a set of rows sharing the same projection over the
// component's attributes; they repair identically.
type tupleGroup struct {
	rep  dataset.Tuple
	rows []int
}

// groupTuples groups the relation's rows by their projection over attrs.
func groupTuples(rel *dataset.Relation, attrs []int) []tupleGroup {
	byKey := make(map[string]int)
	var groups []tupleGroup
	for i, t := range rel.Tuples {
		k := t.Key(attrs)
		gi, ok := byKey[k]
		if !ok {
			gi = len(groups)
			byKey[k] = gi
			groups = append(groups, tupleGroup{rep: t})
		}
		groups[gi].rows = append(groups[gi].rows, i)
	}
	return groups
}

// memberBits builds the membership bitset of one FD's chosen independent
// set, canonicalized per projection-key class: bit Canon(v) stands for
// "some vertex with v's projection is chosen" — exactly the predicate the
// former map[string]bool of projection keys answered, without the
// per-query key-string allocation.
func memberBits(g *vgraph.Graph, set []int) bitset.Set {
	b := bitset.New(len(g.Vertices))
	for _, v := range set {
		b.Set(g.Canon(v))
	}
	return b
}

// chosenBits builds, per FD, the canonical membership bitset of the chosen
// independent set.
func chosenBits(graphs []*vgraph.Graph, sets [][]int) []bitset.Set {
	chosen := make([]bitset.Set, len(graphs))
	for i, g := range graphs {
		chosen[i] = memberBits(g, sets[i])
	}
	return chosen
}

// planWorkers picks the tuple-group fan-out for one plan evaluation: the
// machine width when the caller is not already evaluating plans
// concurrently, 1 otherwise (exactComponent's combination workers own the
// cores then, and nesting the fan-outs would only oversubscribe them).
func planWorkers(parallelPlans bool) int {
	if parallelPlans {
		return 1
	}
	return runtime.GOMAXPROCS(0)
}

// planner evaluates repair plans — per-FD independent sets joined into a
// target tree — over a fixed grouping of the relation's rows. The group
// Nearest searches of one plan are independent, so costs fans them across
// workers goroutines; the cost reduction always folds in group order, so
// totals are bitwise identical at any worker count.
//
// costs may be called from many goroutines over one planner (ExactM's
// combination workers share it), so all per-evaluation scratch comes from
// a sync.Pool rather than planner fields.
type planner struct {
	groups      []tupleGroup
	graphs      []*vgraph.Graph
	cfg         *fd.DistConfig
	disableTree bool
	cancel      <-chan struct{}
	// workers bounds the per-plan fan-out; values below 2 evaluate
	// sequentially.
	workers int
	// vertexOf[i][gi] is graph i's canonical vertex carrying group gi's
	// projection, or -1 when the projection has no vertex (then the group
	// always repairs). Precomputed once, it turns the per-combination
	// needs-repair test into a bitset probe — no key strings, no map hits.
	vertexOf [][]int32
	// span, when non-nil, is the parent span under which costs opens a
	// distance child covering the nearest-target searches. Only the
	// single-evaluation callers (applyJoinedSets) set it: ExactM calls costs
	// once per combination and a per-combination child span would swamp the
	// trace.
	span *obs.Span
}

// newPlanner builds a planner over a fixed grouping, precomputing the
// group-to-vertex resolution per graph.
func newPlanner(groups []tupleGroup, graphs []*vgraph.Graph, cfg *fd.DistConfig, disableTree bool, cancel <-chan struct{}, workers int) *planner {
	p := &planner{
		groups:      groups,
		graphs:      graphs,
		cfg:         cfg,
		disableTree: disableTree,
		cancel:      cancel,
		workers:     workers,
	}
	p.vertexOf = make([][]int32, len(graphs))
	for i, g := range graphs {
		col := make([]int32, len(groups))
		for gi := range groups {
			if v, ok := g.Lookup(groups[gi].rep); ok {
				col[gi] = int32(g.Canon(v))
			} else {
				col[gi] = -1
			}
		}
		p.vertexOf[i] = col
	}
	return p
}

// needsRepair reports whether group gi's representative has a projection
// outside some FD's chosen set.
func (p *planner) needsRepair(gi int, chosen []bitset.Set) bool {
	for i := range chosen {
		v := p.vertexOf[i][gi]
		if v < 0 || !chosen[i].Has(int(v)) {
			return true
		}
	}
	return false
}

// planScratch is the pooled per-evaluation scratch of planner.costs: the
// repairing-group index list and the parallel path's result buffer.
type planScratch struct {
	needs []int
	res   []groupResult
}

var planScratchPool = sync.Pool{New: func() any { return new(planScratch) }}

// groupResult is one group's nearest-target answer.
type groupResult struct {
	tg      targettree.Target
	cost    float64
	visited int
}

// costs evaluates the total cost of repairing the relation with the given
// chosen-set keys and target-tree levels, also returning the chosen target
// per group (nil for groups that keep their values). abortAbove, when
// non-nil, supplies the incumbent cost to prune against: evaluation stops
// with ok=false as soon as the accumulated (group-ordered) cost exceeds
// it. It is re-read as the fold advances, so a concurrently improving
// incumbent (exactComponent's watermark) tightens pruning mid-plan; since
// the incumbent never rises and the fold order is fixed, a plan at least
// as cheap as the final incumbent is never aborted. A fired cancel channel
// also stops evaluation with ok=false.
func (p *planner) costs(chosen []bitset.Set, levels []targettree.Level, abortAbove func() float64) (targets []*targettree.Target, cost float64, visited int, ok bool) {
	tree, err := targettree.Build(levels)
	if err != nil {
		return nil, 0, 0, false
	}
	if p.span != nil {
		// The remainder of the evaluation is the distance-dominated nearest
		// searches; the child span makes that share visible under the
		// parent targetsearch phase.
		ds := p.span.Child(obs.PhaseDistance)
		defer ds.End()
	}
	sc := planScratchPool.Get().(*planScratch)
	defer planScratchPool.Put(sc)
	targets = make([]*targettree.Target, len(p.groups))
	// needs collects the indices of groups that actually repair; the
	// nearest-target searches below only run for those.
	needs := sc.needs[:0]
	for gi := range p.groups {
		if p.needsRepair(gi, chosen) {
			needs = append(needs, gi)
		}
	}
	sc.needs = needs
	if p.workers >= 2 && len(needs) >= 2*p.workers {
		return p.costsParallel(tree, targets, needs, sc, abortAbove)
	}
	for _, gi := range needs {
		if canceled(p.cancel) {
			return nil, cost, visited, false
		}
		g := &p.groups[gi]
		res := p.nearest(tree, g.rep)
		visited += res.visited
		targets[gi] = &res.tg
		cost += float64(len(g.rows)) * res.cost
		if abortAbove != nil && cost > abortAbove() {
			return nil, cost, visited, false
		}
	}
	return targets, cost, visited, true
}

// costsParallel is the fan-out path of costs: chunks of groups are
// searched concurrently (strided across workers), then folded
// sequentially in group order so cost accumulation and abort decisions are
// independent of scheduling. Pruning happens at chunk granularity — a
// chunk is searched in full before its fold can abort — trading a bounded
// amount of wasted search for determinism. The result buffer is pooled
// scratch, so each accepted target is copied out before the fold moves on.
func (p *planner) costsParallel(tree *targettree.Tree, targets []*targettree.Target, needs []int, sc *planScratch, abortAbove func() float64) (_ []*targettree.Target, cost float64, visited int, ok bool) {
	if cap(sc.res) < len(needs) {
		sc.res = make([]groupResult, len(needs))
	}
	res := sc.res[:len(needs)]
	chunk := p.workers * 8
	for base := 0; base < len(needs); base += chunk {
		end := base + chunk
		if end > len(needs) {
			end = len(needs)
		}
		var wg sync.WaitGroup
		for w := 0; w < p.workers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				for k := base + w; k < end; k += p.workers {
					if canceled(p.cancel) {
						return
					}
					res[k] = p.nearest(tree, p.groups[needs[k]].rep)
				}
			}(w)
		}
		wg.Wait()
		if canceled(p.cancel) {
			return nil, cost, visited, false
		}
		for k := base; k < end; k++ {
			gi := needs[k]
			visited += res[k].visited
			tg := res[k].tg
			targets[gi] = &tg
			cost += float64(len(p.groups[gi].rows)) * res[k].cost
			if abortAbove != nil && cost > abortAbove() {
				return nil, cost, visited, false
			}
		}
	}
	return targets, cost, visited, true
}

// nearest runs one group's target search through the configured strategy.
// The group's representative is held fixed in a RepairScorer so its
// bit-parallel tables are shared across every candidate the search visits.
func (p *planner) nearest(tree *targettree.Tree, rep dataset.Tuple) groupResult {
	var r groupResult
	rs := p.cfg.AcquireRepairScorer(rep)
	if p.disableTree {
		r.tg, r.cost, r.visited = tree.NearestScan(rep, rs.RepairDist, p.cancel)
	} else {
		r.tg, r.cost, r.visited = tree.Nearest(rep, rs.RepairDist, p.cancel)
	}
	rs.Release()
	return r
}

// applyPlan writes the chosen targets into out. When ev is non-nil, every
// cell whose value actually changes is recorded with its join-target
// justification (the target's columns and values plus the component's FD
// label, set by the caller on ev.fdLabel — plan repairs span every FD of
// the component, so no single violation edge applies).
func applyPlan(out *dataset.Relation, groups []tupleGroup, targets []*targettree.Target, cfg *fd.DistConfig, ev *eventBuf) {
	for gi, tg := range targets {
		if tg == nil {
			continue
		}
		var tmpl ledger.RepairEvent
		if ev != nil {
			tmpl = ledger.RepairEvent{
				FD:         ev.fdLabel,
				TargetCols: tg.Cols,
				Target:     tg.Vals,
			}
		}
		for _, row := range groups[gi].rows {
			for i, c := range tg.Cols {
				old := out.Tuples[row][c]
				out.Tuples[row][c] = tg.Vals[i]
				if ev != nil && old != tg.Vals[i] {
					ev.record(cellEvent(tmpl, out, cfg, row, c, old, tg.Vals[i]))
				}
			}
		}
	}
}
