// Package report renders human-readable accounts of detection and repair
// runs: what was violated before, what remains after, which attributes
// changed and how, and a sample of the concrete edits. It is the surface
// the ftrepair command prints with -report, and a convenient audit trail
// for library users.
package report

import (
	"fmt"
	"io"
	"sort"
	"text/tabwriter"

	"ftrepair/internal/dataset"
	"ftrepair/internal/fd"
	"ftrepair/internal/repair"
)

// Options tunes report rendering.
type Options struct {
	// MaxSamples bounds the per-attribute sample of concrete edits
	// (default 5).
	MaxSamples int
}

// Write renders a full repair report to w.
func Write(w io.Writer, orig *dataset.Relation, res *repair.Result, set *fd.Set, cfg *fd.DistConfig, opts Options) error {
	if opts.MaxSamples <= 0 {
		opts.MaxSamples = 5
	}
	rowsTouched := map[int]bool{}
	for _, c := range res.Changed {
		rowsTouched[c.Row] = true
	}
	fmt.Fprintf(w, "repair report — %s\n", res.Algorithm)
	fmt.Fprintf(w, "  %d cells changed across %d of %d tuples, repair cost %.3f, wall time %v\n",
		len(res.Changed), len(rowsTouched), orig.Len(), res.Cost, res.Elapsed)

	// Violations before and after, per FD.
	before := countByFD(repair.Detect(orig, set, cfg, repair.Options{}))
	after := countByFD(repair.Detect(res.Repaired, set, cfg, repair.Options{}))
	fmt.Fprintln(w, "\nFT-violations by constraint (pattern pairs):")
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "  constraint\tbefore\tafter")
	for _, f := range set.FDs {
		fmt.Fprintf(tw, "  %s\t%d\t%d\n", f, before[f], after[f])
	}
	tw.Flush()

	// Changes per attribute with samples.
	byCol := map[int][]dataset.Cell{}
	for _, c := range res.Changed {
		byCol[c.Col] = append(byCol[c.Col], c)
	}
	cols := make([]int, 0, len(byCol))
	for c := range byCol {
		cols = append(cols, c)
	}
	sort.Ints(cols)
	fmt.Fprintln(w, "\nrepairs by attribute:")
	for _, col := range cols {
		cells := byCol[col]
		fmt.Fprintf(w, "  %s: %d cells\n", orig.Schema.Attr(col).Name, len(cells))
		for i, cell := range cells {
			if i >= opts.MaxSamples {
				fmt.Fprintf(w, "    ... %d more\n", len(cells)-opts.MaxSamples)
				break
			}
			fmt.Fprintf(w, "    row %d: %q -> %q\n", cell.Row+1, orig.Get(cell), res.Repaired.Get(cell))
		}
	}
	if len(cols) == 0 {
		fmt.Fprintln(w, "  (none — the input was already FT-consistent)")
	}
	return nil
}

func countByFD(violations []repair.Violation) map[*fd.FD]int {
	out := make(map[*fd.FD]int)
	for _, v := range violations {
		out[v.FD]++
	}
	return out
}

// WriteViolations renders a detection-only report: every FT-violation with
// its distance, carriers, and classic/similarity classification.
func WriteViolations(w io.Writer, violations []repair.Violation) {
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "constraint\tkind\tdist\tleft (rows)\tright (rows)")
	for _, v := range violations {
		kind := "similar"
		if v.Classic {
			kind = "classic"
		}
		fmt.Fprintf(tw, "%s\t%s\t%.3f\t%v %v\t%v %v\n",
			v.FD.Name, kind, v.Dist, v.Left, oneBased(v.LeftRows), v.Right, oneBased(v.RightRows))
	}
	tw.Flush()
	fmt.Fprintf(w, "%d FT-violations\n", len(violations))
}

func oneBased(rows []int) []int {
	out := make([]int, len(rows))
	for i, r := range rows {
		out[i] = r + 1
	}
	return out
}
