package report_test

import (
	"regexp"
	"strings"
	"testing"

	"ftrepair/internal/fd"
	"ftrepair/internal/gen"
	"ftrepair/internal/repair"
	"ftrepair/internal/report"
)

func TestWriteRepairReport(t *testing.T) {
	dirty, _ := gen.Citizens()
	set, err := fd.NewSet(gen.CitizensFDs(dirty.Schema), 0.2, 0.5, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	cfg := fd.DefaultDistConfig(dirty)
	res, err := repair.ExactM(dirty, set, cfg, repair.Options{})
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := report.Write(&sb, dirty, res, set, cfg, report.Options{MaxSamples: 2}); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"repair report — ExactM",
		"8 cells changed",
		"FT-violations by constraint",
		"repairs by attribute",
		`"Masers" -> "Masters"`,
		"phi1",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("report missing %q:\n%s", want, out)
		}
	}
	// The repaired database has zero residual violations (tabwriter
	// expands tabs, so match per line).
	if !regexp.MustCompile(`(?m)phi1.*\s0$`).MatchString(out) {
		t.Errorf("expected zero after-count for phi1:\n%s", out)
	}
}

func TestWriteReportNoRepairs(t *testing.T) {
	_, clean := gen.Citizens()
	set, err := fd.NewSet(gen.CitizensFDs(clean.Schema), 0.2, 0.5, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	cfg := fd.DefaultDistConfig(clean)
	res, err := repair.GreedyM(clean, set, cfg, repair.Options{})
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := report.Write(&sb, clean, res, set, cfg, report.Options{}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "already FT-consistent") {
		t.Errorf("noop report:\n%s", sb.String())
	}
}

func TestWriteViolations(t *testing.T) {
	dirty, _ := gen.Citizens()
	set, err := fd.NewSet(gen.CitizensFDs(dirty.Schema)[1:2], 0.5)
	if err != nil {
		t.Fatal(err)
	}
	cfg := fd.DefaultDistConfig(dirty)
	violations := repair.Detect(dirty, set, cfg, repair.Options{})
	var sb strings.Builder
	report.WriteViolations(&sb, violations)
	out := sb.String()
	if !strings.Contains(out, "classic") || !strings.Contains(out, "similar") {
		t.Errorf("violation kinds missing:\n%s", out)
	}
	if !strings.Contains(out, "FT-violations") {
		t.Errorf("summary line missing:\n%s", out)
	}
}
